package cops

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wire"
)

func deploy(t *testing.T, dcs, parts int) (*transport.Local, []*Server, ring.Ring) {
	t.Helper()
	net := transport.NewLocal(transport.LatencyModel{})
	r := ring.New(parts)
	var servers []*Server
	for dc := 0; dc < dcs; dc++ {
		for p := 0; p < parts; p++ {
			s, err := NewServer(Config{DC: dc, Part: p, NumDCs: dcs, NumParts: parts}, net)
			if err != nil {
				t.Fatal(err)
			}
			s.Start()
			servers = append(servers, s)
		}
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
		net.Close()
	})
	return net, servers, r
}

func client(t *testing.T, net *transport.Local, r ring.Ring, dc, id int) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{DC: dc, ID: id, Ring: r}, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBasicOps(t *testing.T) {
	net, _, r := deploy(t, 1, 2)
	c := client(t, net, r, 0, 1)
	ctx := context.Background()
	if _, err := c.Put(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(ctx, "a")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	kvs, err := c.ROT(ctx, []string{"a", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if string(kvs[0].Value) != "1" || kvs[1].Value != nil {
		t.Fatalf("ROT = %q %q", kvs[0].Value, kvs[1].Value)
	}
}

// TestContextNeverCollapses pins the COPS-GT context discipline: unlike
// CC-LO's nearest dependencies, a PUT must NOT clear the accumulated set
// (the two-round ROT cut computation depends on per-key domination of the
// transitive closure).
func TestContextNeverCollapses(t *testing.T) {
	net, _, r := deploy(t, 1, 2)
	c := client(t, net, r, 0, 1)
	w := client(t, net, r, 0, 2)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := w.Put(ctx, fmt.Sprintf("seed-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.ROT(ctx, []string{"seed-0", "seed-1", "seed-2"}); err != nil {
		t.Fatal(err)
	}
	if c.DepCount() != 3 {
		t.Fatalf("deps = %d, want 3", c.DepCount())
	}
	if _, err := c.Put(ctx, "mine", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if c.DepCount() != 4 {
		t.Fatalf("deps after PUT = %d, want 4 (context must keep growing)", c.DepCount())
	}
}

// TestSecondRoundClosesTheGap reproduces §3's COPS walkthrough (Figure 1):
// the first round may return X0 and Y1 with "Y1 depends on X1"; the client
// must detect the gap from the returned dependencies and fetch X1 in a
// second round.
func TestSecondRoundClosesTheGap(t *testing.T) {
	net, servers, r := deploy(t, 1, 2)
	x := "x"
	y := ""
	for i := 0; ; i++ {
		y = fmt.Sprintf("y%d", i)
		if r.Owner(y) != r.Owner(x) {
			break
		}
	}
	ctx := context.Background()
	c2 := client(t, net, r, 0, 1)
	if _, err := c2.Put(ctx, x, []byte("X0")); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Put(ctx, x, []byte("X1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Put(ctx, y, []byte("Y1")); err != nil {
		t.Fatal(err)
	}

	// Simulate the adversarial interleaving at the protocol level: a raw
	// round-1 answer holding stale X0 next to fresh Y1 (whose deps include
	// x@tsX1) must trigger a second round.
	sx := servers[r.Owner(x)]
	vx0, ok := sx.store.at(x, 1, 0) // chain bottom: the stale X0
	if !ok {
		t.Fatal("no retained version of x")
	}
	sy := servers[r.Owner(y)]
	vy1, _ := sy.store.latest(y)
	round1 := map[string]wire.DepKV{
		x: {KV: wire.KV{Key: x, Value: vx0.value, TS: vx0.ts}, Deps: vx0.deps},
		y: {KV: wire.KV{Key: y, Value: vy1.value, TS: vy1.ts}, Deps: vy1.deps},
	}
	if !Rounds2Needed(round1) {
		t.Fatalf("stale X0 + fresh Y1 must need a second round (deps %v)", vy1.deps)
	}

	// The full client ROT returns a consistent (and here, fresh) snapshot.
	c3 := client(t, net, r, 0, 2)
	kvs, err := c3.ROT(ctx, []string{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if string(kvs[0].Value) != "X1" || string(kvs[1].Value) != "Y1" {
		t.Fatalf("ROT = %q %q, want X1 Y1", kvs[0].Value, kvs[1].Value)
	}
}

func TestStoreAtExactAndFallback(t *testing.T) {
	s := newStore(4, 1)
	for ts := uint64(1); ts <= 10; ts++ {
		s.install("k", version{value: []byte{byte(ts)}, ts: ts})
	}
	// Exact retained version.
	if v, ok := s.at("k", 9, 0); !ok || v.ts != 9 {
		t.Fatalf("at(9) = %+v ok=%v", v, ok)
	}
	// Trimmed version: next retained one above stands in.
	if v, ok := s.at("k", 3, 0); !ok || v.ts < 3 {
		t.Fatalf("at(3) after trim = %+v ok=%v, want ts ≥ 3", v, ok)
	}
	if _, ok := s.at("nope", 1, 0); ok {
		t.Fatal("missing key must miss")
	}
}

func TestStoreDuplicateInstall(t *testing.T) {
	s := newStore(0, 1)
	s.install("k", version{ts: 5, srcDC: 1})
	s.install("k", version{ts: 5, srcDC: 1})
	v, _ := s.latest("k")
	if v.ts != 5 {
		t.Fatalf("latest = %+v", v)
	}
	count := 0
	s.forEachLatest(func(string, version) { count++ })
	if count != 1 {
		t.Fatalf("keys = %d", count)
	}
}

func TestReplicationAcrossDCs(t *testing.T) {
	net, _, r := deploy(t, 2, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	w := client(t, net, r, 0, 1)
	rd := client(t, net, r, 1, 1)
	if _, err := w.Put(ctx, "geo-a", []byte("va")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Put(ctx, "geo-b", []byte("vb")); err != nil { // depends on geo-a
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		kvs, err := rd.ROT(ctx, []string{"geo-a", "geo-b"})
		if err != nil {
			t.Fatal(err)
		}
		if string(kvs[1].Value) == "vb" {
			if string(kvs[0].Value) != "va" {
				t.Fatalf("geo-b visible without its dependency geo-a")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replication never delivered")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRounds2NeededFalseWhenConsistent(t *testing.T) {
	vals := map[string]wire.DepKV{
		"x": {KV: wire.KV{Key: "x", TS: 10}},
		"y": {KV: wire.KV{Key: "y", TS: 12}, Deps: []wire.LoDep{{Key: "x", TS: 10}}},
	}
	if Rounds2Needed(vals) {
		t.Fatal("consistent round-1 results must not need a second round")
	}
}
