package cops

import (
	"strconv"
	"time"

	"repro/internal/metrics"
)

// Observability surface of a COPS partition server. COPS runs on Lamport
// clocks, so — like CC-LO — its replication-lag gauge is the wall-clock age
// of the last replicated update received from each peer DC.

// RegisterMetrics exposes the server's per-op histograms, store occupancy,
// and replication-receipt ages under r. Labels should identify the
// partition (dc, partition, family).
func (s *Server) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	s.ops.Register(r, "kv_server_op_seconds",
		"End-to-end server handler latency by operation.", labels...)
	s.store.eng.Register(r, labels...)
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		dc := dc
		r.GaugeFunc("kv_replication_last_update_age_seconds",
			"Seconds since the last replication batch was received from the peer DC (server start if none yet).",
			func() float64 { return s.lastRepAge(dc).Seconds() },
			append(append([]metrics.Label(nil), labels...), metrics.Label{Name: "peer_dc", Value: strconv.Itoa(dc)})...)
	}
}

// lastRepAge returns the wall-clock age of the newest replicated update
// received from dc, falling back to the server's start time before the
// first one.
func (s *Server) lastRepAge(dc int) time.Duration {
	if dc < 0 || dc >= len(s.lastRep) {
		return 0
	}
	at := s.lastRep[dc].Load()
	if at == 0 {
		at = s.started
	}
	return time.Duration(time.Now().UnixNano() - at)
}

// noteRep stamps receipt of a replicated update from dc.
func (s *Server) noteRep(dc int) {
	if dc >= 0 && dc < len(s.lastRep) {
		s.lastRep[dc].Store(time.Now().UnixNano())
	}
}
