// Package cops implements the COPS-GT baseline that Section 3 of the paper
// walks through: the first causally consistent ROT design, using explicit
// per-version dependency lists instead of timestamps.
//
// ROTs take at most two rounds and may transfer two versions of a key: the
// first round returns each key's latest version together with its nearest
// dependencies; if those dependencies reveal a snapshot gap (Figure 1's
// "Y1 depends on X1" while the client got X0), a second round fetches the
// exact versions of the causal cut. Reads are nonblocking and writes carry
// the session's full dependency set — the fine-grained metadata the paper
// notes "has been shown to limit scalability" (§7, Table 2 row "COPS").
//
// Geo-replication ships (version, deps) and installs after a COPS-style
// dependency check, with no readers check — COPS predates latency
// optimality, so its writes are cheap compared to CC-LO while its reads
// cost up to one round and one version more than Contrarian's.
package cops

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hlc"
	"repro/internal/metrics"
	"repro/internal/ring"
	storeeng "repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Config parameterizes one COPS partition server.
type Config struct {
	DC       int
	Part     int
	NumDCs   int
	NumParts int

	// CallTimeout bounds dependency-check calls.
	CallTimeout time.Duration
	// RepRetryTimeout bounds one replication attempt before retry.
	RepRetryTimeout time.Duration
	// RepWindow is the number of replication updates in flight per DC.
	RepWindow int
	// MaxVersions caps per-key version chains.
	MaxVersions int
	// StoreShards is the storage engine shard count (0 = auto from
	// GOMAXPROCS; see internal/store).
	StoreShards int

	// Durable, when non-nil, makes every install — with its dependency
	// list, which COPS needs to recompute causal cuts — durable before it
	// is acknowledged (see wal.Durability).
	Durable wal.Durability

	// Slow, when non-nil, receives a trace record for every handler
	// invocation that exceeds the ring's threshold (shared process-wide;
	// see metrics.SlowRing). Nil disables capture at zero cost.
	Slow *metrics.SlowRing
}

func (c Config) withDefaults() Config {
	if c.NumDCs <= 0 {
		c.NumDCs = 1
	}
	if c.NumParts <= 0 {
		c.NumParts = 1
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 10 * time.Second
	}
	if c.RepRetryTimeout <= 0 {
		c.RepRetryTimeout = 2 * time.Second
	}
	if c.RepWindow <= 0 {
		c.RepWindow = 64
	}
	if c.MaxVersions <= 0 {
		c.MaxVersions = 64
	}
	return c
}

// version is one stored version with its nearest dependencies.
type version struct {
	value []byte
	ts    uint64
	srcDC uint8
	deps  []wire.LoDep
}

func (v *version) before(o *version) bool {
	if v.ts != o.ts {
		return v.ts < o.ts
	}
	return v.srcDC < o.srcDC
}

// store is the COPS partition storage: version chains with dependency
// lists, supporting latest reads and exact-version fetches. It is a thin
// adapter over the shared engine (internal/store) with deps as the
// per-version payload; latest/at/hasVersion/forEachLatest are lock-free.
type store struct {
	eng *storeeng.Engine[[]wire.LoDep, struct{}]
}

func newStore(maxVersions, shards int) *store {
	return &store{eng: storeeng.New[[]wire.LoDep, struct{}](maxVersions, shards)}
}

func fromEngine(ev *storeeng.Version[[]wire.LoDep]) version {
	return version{value: ev.Value, ts: ev.TS, srcDC: ev.Src, deps: ev.Extra}
}

func (s *store) install(key string, v version) {
	s.eng.Install(key, storeeng.Version[[]wire.LoDep]{Value: v.value, TS: v.ts, Src: v.srcDC, Extra: v.deps})
}

func (s *store) latest(key string) (version, bool) {
	ev := s.eng.Latest(key)
	if ev == nil {
		return version{}, false
	}
	return fromEngine(ev), true
}

// at returns the version of key identified by (ts, src); if it was
// trimmed, the oldest retained version above it stands in.
func (s *store) at(key string, ts uint64, src uint8) (version, bool) {
	var chain []storeeng.Version[[]wire.LoDep]
	if c := s.eng.View(key); c != nil {
		chain = c.Versions
	}
	want := storeeng.Version[[]wire.LoDep]{TS: ts, Src: src}
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].TS == ts && chain[i].Src == src {
			return fromEngine(&chain[i]), true
		}
		if chain[i].Before(&want) {
			// Exact version gone (trimmed); the next retained one above it
			// is the closest safe answer.
			if i+1 < len(chain) {
				return fromEngine(&chain[i+1]), true
			}
			return version{}, false
		}
	}
	if len(chain) > 0 {
		return fromEngine(&chain[0]), true
	}
	return version{}, false
}

// hasVersion reports whether the version of key identified by (ts, src) is
// installed (dependency-check predicate). Exact identity, not "any newer
// timestamp": Lamport timestamps collide across DCs, and a same-timestamp
// version from another DC satisfying the check would break the causal
// install order. A chain whose oldest retained version is LWW-above the
// identity proves it was installed and trimmed — the engine's Trimmed flag
// records that precisely (the old at-capacity heuristic answered true for a
// full chain that had never dropped anything; see TestHasVersionAtCapacity).
func (s *store) hasVersion(key string, ts uint64, src uint8) bool {
	c := s.eng.View(key)
	if c.Len() == 0 {
		return false
	}
	want := storeeng.Version[[]wire.LoDep]{TS: ts, Src: src}
	if c.Trimmed && want.Before(&c.Versions[0]) {
		return true
	}
	return c.Find(ts, src) >= 0
}

func (s *store) forEachLatest(fn func(key string, v version)) {
	s.eng.ForEach(func(key string, c *storeeng.Chain[[]wire.LoDep]) bool {
		fn(key, fromEngine(c.Latest()))
		return true
	})
}

// Server is one COPS partition replica.
type Server struct {
	cfg   Config
	clock *hlc.Lamport
	store *store
	node  transport.Node
	ring  ring.Ring

	installMu   sync.Mutex
	installCond *sync.Cond

	// Observability (obs.go): per-op latency histograms, the process-wide
	// slow-op trace ring (nil-safe), per-peer last-replication receipt
	// stamps, and the server's start time as their pre-first-update floor.
	ops     metrics.OpHists
	slow    *metrics.SlowRing
	lastRep []atomic.Int64 // unix nanos, indexed by source DC
	started int64          // unix nanos at construction

	repl *replicator
	stop chan struct{}
}

// NewServer builds the partition server and attaches it to net.
func NewServer(cfg Config, net transport.Network) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		clock: hlc.NewLamport(0),
		store: newStore(cfg.MaxVersions, cfg.StoreShards),
		ring:  ring.New(cfg.NumParts),
		stop:  make(chan struct{}),
	}
	s.slow = cfg.Slow
	s.lastRep = make([]atomic.Int64, cfg.NumDCs)
	s.started = time.Now().UnixNano()
	s.installCond = sync.NewCond(&s.installMu)
	var recovered []*wire.LoRepUpdate
	if cfg.Durable != nil {
		var err error
		if recovered, err = s.recover(); err != nil {
			return nil, err
		}
	}
	// The replicator must exist before the server is reachable: the first
	// PUT to arrive enqueues into its streams.
	s.repl = newReplicator(s, recovered)
	// The server is reachable the instant Attach returns, but handlers need
	// s.node: gate dispatch on construction completing so an early message
	// cannot observe a half-built server.
	ready := make(chan struct{})
	node, err := net.Attach(wire.ServerAddr(cfg.DC, cfg.Part), transport.HandlerFunc(
		func(n transport.Node, src wire.From, reqID uint64, m wire.Message) {
			<-ready
			s.Handle(n, src, reqID, m)
		}))
	if err != nil {
		return nil, err
	}
	s.node = node
	close(ready)
	return s, nil
}

// recover replays the durable log — dependency lists included — into the
// store, advances the clock past every recovered timestamp, and registers
// the snapshot source. It returns the recovered LOCAL updates in timestamp
// order for the replicator's re-enqueue.
func (s *Server) recover() ([]*wire.LoRepUpdate, error) {
	var maxTS uint64
	var local []*wire.LoRepUpdate
	err := s.cfg.Durable.Replay(func(rec wal.Record) error {
		s.store.install(rec.Key, version{value: rec.Value, ts: rec.TS, srcDC: rec.SrcDC, deps: rec.Deps})
		maxTS = max(maxTS, rec.TS)
		if int(rec.SrcDC) == s.cfg.DC {
			local = append(local, &wire.LoRepUpdate{
				SrcDC:   rec.SrcDC,
				SrcPart: uint32(s.cfg.Part),
				Key:     rec.Key,
				Value:   rec.Value,
				TS:      rec.TS,
				Deps:    rec.Deps,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(local, func(i, j int) bool { return local[i].TS < local[j].TS })
	if maxTS > 0 {
		s.clock.Update(maxTS)
	}
	s.cfg.Durable.SetSnapshotSource(func(emit func(wal.Record) error) error {
		var ferr error
		s.store.forEachLatest(func(key string, v version) {
			if ferr != nil {
				return
			}
			ferr = emit(wal.Record{Key: key, Value: v.value, TS: v.ts, SrcDC: v.srcDC, Deps: v.deps})
		})
		return ferr
	})
	return local, nil
}

// Addr returns the server's wire address.
func (s *Server) Addr() wire.Addr { return s.node.Addr() }

// Start launches replication streams.
func (s *Server) Start() { s.repl.start() }

// Close stops background work and detaches from the network.
func (s *Server) Close() error {
	close(s.stop)
	s.repl.stopAll()
	s.installMu.Lock()
	s.installCond.Broadcast()
	s.installMu.Unlock()
	return s.node.Close()
}

// Preload installs an initial version (ts 1, DC 0) of each key directly.
func (s *Server) Preload(keys []string, val []byte) {
	for _, k := range keys {
		s.store.install(k, version{value: val, ts: 1, srcDC: 0})
	}
	s.clock.Update(1)
}

// ForEachLatest visits every key's newest version (tests, convergence).
func (s *Server) ForEachLatest(fn func(key string, value []byte, ts uint64, srcDC uint8)) {
	s.store.forEachLatest(func(k string, v version) {
		fn(k, v.value, v.ts, v.srcDC)
	})
}

// VersionsOf returns the identities of key's retained version chain, oldest
// first (tests and fault diagnostics).
func (s *Server) VersionsOf(key string) []wire.LoDep {
	c := s.store.eng.View(key)
	out := make([]wire.LoDep, 0, c.Len())
	for i := range c.Len() {
		out = append(out, wire.LoDep{Key: key, TS: c.Versions[i].TS, Src: c.Versions[i].Src})
	}
	return out
}

// Latest returns key's newest version with its dependency list (tests:
// crash recovery must preserve the deps COPS uses to compute causal cuts).
func (s *Server) Latest(key string) (value []byte, ts uint64, deps []wire.LoDep, ok bool) {
	v, ok := s.store.latest(key)
	return v.value, v.ts, v.deps, ok
}

// Handle dispatches one incoming message.
func (s *Server) Handle(n transport.Node, src wire.From, reqID uint64, m wire.Message) {
	switch msg := m.(type) {
	case *wire.CopsRotReq:
		s.handleRot(src, reqID, msg)
	case *wire.CopsVerReq:
		s.handleVer(src, reqID, msg)
	case *wire.LoPutReq:
		s.handlePut(src, reqID, msg)
	case *wire.LoRepUpdate:
		s.handleRepUpdate(src, reqID, msg)
	case *wire.DepCheckReq:
		s.handleDepCheck(src, reqID, msg)
	case *wire.Ping:
		_ = n.Respond(src, reqID, &wire.Pong{Nonce: msg.Nonce})
	default:
		if reqID != 0 {
			transport.RespondError(n, src, reqID, 400, "cops: unexpected message")
		}
	}
}

// handleRot serves the first ROT round: latest versions with their
// dependency lists (the metadata COPS reads pay for).
func (s *Server) handleRot(src wire.From, reqID uint64, m *wire.CopsRotReq) {
	start := time.Now()
	defer func() {
		total := time.Since(start)
		s.ops.ReadHist(len(m.Keys)).Record(total)
		var kh uint64
		if len(m.Keys) > 0 {
			kh = metrics.KeyHash(m.Keys[0])
		}
		op := "rot"
		if len(m.Keys) == 1 {
			op = "get"
		}
		s.slow.Record(metrics.SlowOp{
			Start: start.UnixNano(), Op: op, KeyHash: kh, Total: total,
		})
	}()
	vals := make([]wire.DepKV, len(m.Keys))
	for i, k := range m.Keys {
		if v, ok := s.store.latest(k); ok {
			vals[i] = wire.DepKV{
				KV:   wire.KV{Key: k, Value: v.value, TS: v.ts, Src: v.srcDC},
				Deps: v.deps,
			}
		} else {
			vals[i] = wire.DepKV{KV: wire.KV{Key: k}}
		}
	}
	_ = s.node.Respond(src, reqID, &wire.CopsRotResp{Vals: vals})
}

// handleVer serves the second ROT round: a specific version.
func (s *Server) handleVer(src wire.From, reqID uint64, m *wire.CopsVerReq) {
	start := time.Now()
	defer func() { s.ops.Get.Record(time.Since(start)) }()
	if v, ok := s.store.at(m.Key, m.TS, m.Src); ok {
		_ = s.node.Respond(src, reqID, &wire.CopsVerResp{Val: wire.KV{Key: m.Key, Value: v.value, TS: v.ts, Src: v.srcDC}})
		return
	}
	_ = s.node.Respond(src, reqID, &wire.CopsVerResp{Val: wire.KV{Key: m.Key}})
}

// handlePut installs a new version carrying the client's dependency set.
// COPS writes are one round trip with no server-to-server communication in
// the local DC — the cheap-writes end of the paper's design space.
func (s *Server) handlePut(src wire.From, reqID uint64, m *wire.LoPutReq) {
	start := time.Now()
	var fsyncDur time.Duration
	defer func() {
		total := time.Since(start)
		s.ops.Put.Record(total)
		s.slow.Record(metrics.SlowOp{
			Start: start.UnixNano(), Op: "put", KeyHash: metrics.KeyHash(m.Key),
			Total: total, Fsync: fsyncDur,
		})
	}()
	high := uint64(0)
	for _, d := range m.Deps {
		high = max(high, d.TS)
	}
	ts := s.clock.Update(high)
	// Register the timestamp with the replication cursor trackers BEFORE
	// the append: a durable update unknown to the tracker could be skipped
	// by the recovery re-enqueue (crash between fsync and enqueue).
	s.repl.track(ts)
	// Durability gates VISIBILITY as well as replication and the
	// acknowledgment: the fsync runs before the install so no read or
	// dependency check can observe a version a crash could still take
	// back, the update is enqueued only after the real fsync (never ship
	// what the origin could lose), and same-partition dependencies keep
	// launching no later than their dependents.
	if s.cfg.Durable != nil {
		fs := time.Now()
		err := wal.AppendAndSync(s.cfg.Durable, []wal.Record{{
			Key: m.Key, Value: m.Value, TS: ts, SrcDC: uint8(s.cfg.DC), Deps: m.Deps,
		}})
		fsyncDur = time.Since(fs)
		if err != nil {
			transport.RespondError(s.node, src, reqID, 500, "cops: wal: "+err.Error())
			return
		}
	}
	s.install(m.Key, version{value: m.Value, ts: ts, srcDC: uint8(s.cfg.DC), deps: m.Deps})
	s.repl.enqueue(&wire.LoRepUpdate{
		SrcDC:   uint8(s.cfg.DC),
		SrcPart: uint32(s.cfg.Part),
		Key:     m.Key,
		Value:   m.Value,
		TS:      ts,
		Deps:    m.Deps,
	})
	_ = s.node.Respond(src, reqID, &wire.LoPutResp{TS: ts})
}

func (s *Server) install(key string, v version) {
	s.store.install(key, v)
	s.installMu.Lock()
	s.installCond.Broadcast()
	s.installMu.Unlock()
}

// waitForVersion blocks until the (ts, src) version of key is installed;
// false means the server is stopping and the dependency was NOT verified.
func (s *Server) waitForVersion(key string, ts uint64, src uint8) bool {
	if s.store.hasVersion(key, ts, src) {
		return true
	}
	s.installMu.Lock()
	defer s.installMu.Unlock()
	for !s.store.hasVersion(key, ts, src) {
		select {
		case <-s.stop:
			return false
		default:
		}
		s.installCond.Wait()
	}
	return true
}

// handleDepCheck blocks until this partition holds a version of Key with
// timestamp ≥ TS (COPS dependency checking). A shutdown abort answers with
// an error — never success.
func (s *Server) handleDepCheck(src wire.From, reqID uint64, m *wire.DepCheckReq) {
	if !s.waitForVersion(m.Key, m.TS, m.Src) {
		transport.RespondError(s.node, src, reqID, 503, "cops: dep check aborted: server stopping")
		return
	}
	_ = s.node.Respond(src, reqID, &wire.DepCheckResp{})
}

// handleRepUpdate installs a replicated version after its dependencies are
// present in this DC. A failed or shutdown-aborted dependency check
// withholds the install and the ack; the origin retries the (idempotent)
// update.
func (s *Server) handleRepUpdate(src wire.From, reqID uint64, m *wire.LoRepUpdate) {
	start := time.Now()
	var depDur, fsyncDur time.Duration
	defer func() {
		s.noteRep(int(m.SrcDC))
		total := time.Since(start)
		s.ops.Rep.Record(total)
		s.slow.Record(metrics.SlowOp{
			Start: start.UnixNano(), Op: "rep", KeyHash: metrics.KeyHash(m.Key),
			Total: total, Queue: depDur, Fsync: fsyncDur,
		})
	}()
	var wg sync.WaitGroup
	errCh := make(chan error, len(m.Deps))
	for _, d := range m.Deps {
		p := s.ring.Owner(d.Key)
		if p == s.cfg.Part {
			wg.Add(1)
			go func(d wire.LoDep) {
				defer wg.Done()
				if !s.waitForVersion(d.Key, d.TS, d.Src) {
					errCh <- transport.ErrClosed
				}
			}(d)
			continue
		}
		wg.Add(1)
		go func(p int, d wire.LoDep) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CallTimeout)
			defer cancel()
			if _, err := s.node.Call(ctx, wire.ServerAddr(s.cfg.DC, p), &wire.DepCheckReq{Key: d.Key, TS: d.TS, Src: d.Src}); err != nil {
				errCh <- err
			}
		}(p, d)
	}
	wg.Wait()
	depDur = time.Since(start)
	select {
	case err := <-errCh:
		transport.RespondError(s.node, src, reqID, 500, "cops: dep check: "+err.Error())
		return
	default:
	}
	s.clock.Update(m.TS)
	// Durability before visibility and before the ack, waiting for the
	// real fsync even in background-sync mode: a pre-fsync install could
	// clear dependency checks a crash then invalidates, and the ack
	// advances the origin's durable cursor, which must never outrun our
	// own durability. An unacked update is retried idempotently.
	if s.cfg.Durable != nil {
		fs := time.Now()
		err := wal.AppendAndSync(s.cfg.Durable, []wal.Record{{
			Key: m.Key, Value: m.Value, TS: m.TS, SrcDC: m.SrcDC, Deps: m.Deps,
		}})
		fsyncDur = time.Since(fs)
		if err != nil {
			transport.RespondError(s.node, src, reqID, 500, "cops: wal: "+err.Error())
			return
		}
	}
	s.install(m.Key, version{value: m.Value, ts: m.TS, srcDC: m.SrcDC, deps: m.Deps})
	_ = s.node.Respond(src, reqID, &wire.LoRepAck{Seq: m.Seq})
}

// Client is a COPS-GT session. Unlike CC-LO's nearest-dependency contexts,
// COPS-GT contexts are never collapsed by a PUT: the two-round ROT's cut
// computation is only sound when a version's stored dependency list
// per-key dominates its entire transitive dependency closure, which
// requires carrying the full accumulated set (the metadata growth the
// paper's Table 2 writes as |deps|).
type Client struct {
	dc   int
	ring ring.Ring
	node transport.Node

	// busyRetries counts operations re-sent after the server shed them
	// with wire.Busy (admission control); benchmarks report the sum.
	busyRetries atomic.Uint64

	mu   sync.Mutex
	deps map[string]wire.LoDep
}

// ClientConfig parameterizes a COPS client session.
type ClientConfig struct {
	DC   int
	ID   int
	Ring ring.Ring
}

// NewClient attaches a COPS client to net at its own address.
func NewClient(cfg ClientConfig, net transport.Network) (*Client, error) {
	return newClient(cfg, func(h transport.Handler) (transport.Node, error) {
		return net.Attach(wire.ClientAddr(cfg.DC, cfg.ID), h)
	})
}

// NewSessionClient runs the client as logical session id on mux, sharing
// the mux's connection pool with any number of sibling sessions.
func NewSessionClient(cfg ClientConfig, mux transport.Mux, id wire.SessionID) (*Client, error) {
	return newClient(cfg, func(h transport.Handler) (transport.Node, error) {
		return mux.Session(id, h)
	})
}

func newClient(cfg ClientConfig, attach func(transport.Handler) (transport.Node, error)) (*Client, error) {
	c := &Client{dc: cfg.DC, ring: cfg.Ring, deps: make(map[string]wire.LoDep)}
	node, err := attach(transport.HandlerFunc(
		func(transport.Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		return nil, err
	}
	c.node = node
	return c, nil
}

// Close detaches the client.
func (c *Client) Close() error { return c.node.Close() }

// BusyRetries returns how many times this client's operations were shed
// with Busy and retried.
func (c *Client) BusyRetries() uint64 { return c.busyRetries.Load() }

func (c *Client) countRetry() { c.busyRetries.Add(1) }

// DepCount returns the size of the session's dependency set (tests; this
// is the metadata COPS-GT cannot prune).
func (c *Client) DepCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.deps)
}

func (c *Client) depList() []wire.LoDep {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.LoDep, 0, len(c.deps))
	for _, d := range c.deps {
		out = append(out, d)
	}
	return out
}

func (c *Client) observe(key string, ts uint64, src uint8) {
	c.mu.Lock()
	if prev, ok := c.deps[key]; !ok || ts > prev.TS || (ts == prev.TS && src > prev.Src) {
		c.deps[key] = wire.LoDep{Key: key, TS: ts, Src: src}
	}
	c.mu.Unlock()
}

// Put installs a new version of key carrying the session's dependencies.
func (c *Client) Put(ctx context.Context, key string, value []byte) (uint64, error) {
	owner := wire.ServerAddr(c.dc, c.ring.Owner(key))
	resp, err := transport.CallRetry(ctx, c.node, owner, &wire.LoPutReq{Key: key, Value: value, Deps: c.depList()}, c.countRetry)
	if err != nil {
		return 0, fmt.Errorf("cops: put %q: %w", key, err)
	}
	pr, ok := resp.(*wire.LoPutResp)
	if !ok {
		return 0, fmt.Errorf("cops: put %q: unexpected response %T", key, resp)
	}
	c.observe(key, pr.TS, uint8(c.dc))
	return pr.TS, nil
}

// Get reads one key causally.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	kvs, err := c.ROT(ctx, []string{key})
	if err != nil {
		return nil, err
	}
	return kvs[0].Value, nil
}

// ROT executes COPS' two-round read-only transaction: read the latest
// versions with their dependencies, compute the causal cut, and — only
// when the first round straddles a write — fetch the cut's exact versions
// in a second round.
func (c *Client) ROT(ctx context.Context, keys []string) ([]wire.KV, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	groups := c.ring.Group(keys)
	inSet := make(map[string]bool, len(keys))
	for _, k := range keys {
		inSet[k] = true
	}

	// Round 1: latest versions + dependency lists.
	type r1 struct {
		vals []wire.DepKV
		err  error
	}
	ch := make(chan r1, len(groups))
	for p, ks := range groups {
		go func(p int, ks []string) {
			resp, err := transport.CallRetry(ctx, c.node, wire.ServerAddr(c.dc, p), &wire.CopsRotReq{Keys: ks}, c.countRetry)
			if err != nil {
				ch <- r1{err: err}
				return
			}
			rr, ok := resp.(*wire.CopsRotResp)
			if !ok {
				ch <- r1{err: fmt.Errorf("unexpected response %T", resp)}
				return
			}
			ch <- r1{vals: rr.Vals}
		}(p, ks)
	}
	got := make(map[string]wire.DepKV, len(keys))
	for range groups {
		r := <-ch
		if r.err != nil {
			return nil, fmt.Errorf("cops: rot round 1: %w", r.err)
		}
		for _, v := range r.vals {
			got[v.KV.Key] = v
			// Inherit the read version's dependency list into the session
			// context. Stored lists dominate a version's transitive closure
			// only because every observer folds them in: without this, a
			// session that read X (which depends on k@ts) but never k could
			// write a version whose stored deps omit k@ts, and a later
			// two-round ROT over {that version, k} would miss the causal
			// cut — the gap the checker's writes-follow-reads test catches.
			for _, d := range v.Deps {
				c.observe(d.Key, d.TS, d.Src)
			}
		}
	}

	// Causal cut: the newest version of each read key that any returned
	// version depends on. LWW order (TS, Src) decides "newer": an
	// equal-timestamp dependency from a higher DC is a different, newer
	// version than the one round 1 returned.
	lwwAfter := func(ts uint64, src uint8, ts2 uint64, src2 uint8) bool {
		return ts > ts2 || (ts == ts2 && src > src2)
	}
	cut := make(map[string]wire.LoDep)
	for _, v := range got {
		for _, d := range v.Deps {
			if !inSet[d.Key] {
				continue
			}
			cur := got[d.Key].KV
			if lwwAfter(d.TS, d.Src, cur.TS, cur.Src) {
				if prev, ok := cut[d.Key]; !ok || lwwAfter(d.TS, d.Src, prev.TS, prev.Src) {
					cut[d.Key] = d
				}
			}
		}
	}

	// Round 2 (only when needed): fetch the cut's exact versions.
	if len(cut) > 0 {
		type r2 struct {
			val wire.KV
			err error
		}
		ch2 := make(chan r2, len(cut))
		for k, d := range cut {
			go func(k string, d wire.LoDep) {
				dst := wire.ServerAddr(c.dc, c.ring.Owner(k))
				resp, err := transport.CallRetry(ctx, c.node, dst, &wire.CopsVerReq{Key: k, TS: d.TS, Src: d.Src}, c.countRetry)
				if err != nil {
					ch2 <- r2{err: err}
					return
				}
				vr, ok := resp.(*wire.CopsVerResp)
				if !ok {
					ch2 <- r2{err: fmt.Errorf("unexpected response %T", resp)}
					return
				}
				ch2 <- r2{val: vr.Val}
			}(k, d)
		}
		for range cut {
			r := <-ch2
			if r.err != nil {
				return nil, fmt.Errorf("cops: rot round 2: %w", r.err)
			}
			if r.val.TS > 0 {
				// A miss cannot happen when the cut identity is real (the
				// version carrying the dependency installed after it), but
				// never replace a served version with emptiness.
				prev := got[r.val.Key]
				prev.KV = r.val
				got[r.val.Key] = prev
			}
		}
	}

	out := make([]wire.KV, len(keys))
	for i, k := range keys {
		out[i] = got[k].KV
		if out[i].TS > 0 {
			c.observe(k, out[i].TS, out[i].Src)
		}
	}
	return out, nil
}

// Rounds2Needed is exposed for tests: it reports whether the given round-1
// results would require a second round (LWW identity order).
func Rounds2Needed(vals map[string]wire.DepKV) bool {
	for _, v := range vals {
		for _, d := range v.Deps {
			if other, ok := vals[d.Key]; ok &&
				(d.TS > other.KV.TS || (d.TS == other.KV.TS && d.Src > other.KV.Src)) {
				return true
			}
		}
	}
	return false
}
