package cops

import (
	"context"
	"time"

	"repro/internal/wal"
	"repro/internal/wire"
)

// replicator ships local PUTs with their dependency lists to sibling
// replicas; receivers enforce causal order by dependency checks, so a
// window of updates can be in flight concurrently.
//
// Durability mirrors the CC-LO streams: each stream tracks its
// acknowledged frontier with a wal.CursorTracker and persists it as a
// replication cursor, and a recovering partition re-enqueues recovered
// local updates above the cursor (COPS records persist their dependency
// lists, so re-enqueued updates dependency-check exactly like the
// originals). Window streams have no receiver-side sequence cursor, so the
// persisted Seq mirrors HighTS.
type replicator struct {
	s       *Server
	streams []*stream
}

type stream struct {
	s       *Server
	dst     wire.Addr
	dstDC   int
	seq     uint64
	backlog []*wire.LoRepUpdate // recovered-but-unacked tail, sent before ch
	tracker wal.CursorTracker
	ch      chan *wire.LoRepUpdate
	sem     chan struct{}
	ctx     context.Context
	cancel  context.CancelFunc
	stop    chan struct{}
	done    chan struct{}
}

// newReplicator builds one stream per remote DC, seeding each with the
// recovered local updates its durable cursor says that DC has not
// acknowledged.
func newReplicator(s *Server, recovered []*wire.LoRepUpdate) *replicator {
	cursors := make(map[int]wal.Cursor)
	if s.cfg.Durable != nil {
		for _, c := range s.cfg.Durable.Cursors() {
			cursors[int(c.DstDC)] = c
		}
	}
	r := &replicator{s: s}
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		st := &stream{
			s:      s,
			dst:    wire.ServerAddr(dc, s.cfg.Part),
			dstDC:  dc,
			ch:     make(chan *wire.LoRepUpdate, 8192),
			sem:    make(chan struct{}, s.cfg.RepWindow),
			ctx:    ctx,
			cancel: cancel,
			stop:   make(chan struct{}),
			done:   make(chan struct{}),
		}
		for _, u := range recovered {
			if u.TS > cursors[dc].HighTS {
				cp := *u
				st.track(cp.TS)
				st.backlog = append(st.backlog, &cp)
			}
		}
		r.streams = append(r.streams, st)
	}
	return r
}

func (r *replicator) start() {
	for _, st := range r.streams {
		go st.run()
	}
}

func (r *replicator) stopAll() {
	for _, st := range r.streams {
		close(st.stop)
		st.cancel()
	}
	for _, st := range r.streams {
		<-st.done
	}
}

// track registers a local update's timestamp with every stream's
// ack-frontier tracker. It MUST run before the update's WAL append (see
// the cclo twin): a durable update unknown to the tracker could be skipped
// by the recovery re-enqueue if a crash lands between fsync and enqueue.
func (r *replicator) track(ts uint64) {
	if r.s.cfg.Durable == nil {
		return
	}
	for _, st := range r.streams {
		st.tracker.Enqueue(ts)
	}
}

func (r *replicator) enqueue(u *wire.LoRepUpdate) {
	for _, st := range r.streams {
		// Per-stream copy: run() stamps Seq, and sharing one update across
		// streams would race their stamps.
		cp := *u
		select {
		case st.ch <- &cp:
		case <-st.stop:
		}
	}
}

func (st *stream) track(ts uint64) {
	if st.s.cfg.Durable != nil {
		st.tracker.Enqueue(ts)
	}
}

func (st *stream) run() {
	defer close(st.done)
	for _, u := range st.backlog {
		if !st.launch(u) {
			return
		}
	}
	st.backlog = nil
	for {
		select {
		case <-st.stop:
			return
		case u := <-st.ch:
			if !st.launch(u) {
				return
			}
		}
	}
}

// launch stamps the update's sequence, claims a window slot, and delivers
// in the background. Launch order preserves the property that an update's
// same-partition dependencies are sent no later than the update itself.
func (st *stream) launch(u *wire.LoRepUpdate) bool {
	st.seq++
	u.Seq = st.seq
	select {
	case st.sem <- struct{}{}:
	case <-st.stop:
		return false
	}
	go func(u *wire.LoRepUpdate) {
		defer func() { <-st.sem }()
		if st.deliver(u) {
			st.ackCursor(u.TS)
		}
	}(u)
	return true
}

// ackCursor folds one acknowledgment into the frontier and persists the
// cursor when it advanced; failures are ignored (a stale cursor only
// re-ships an acknowledged, idempotent suffix on recovery).
func (st *stream) ackCursor(ts uint64) {
	if st.s.cfg.Durable == nil {
		return
	}
	if high, advanced := st.tracker.Ack(ts); advanced {
		_ = st.s.cfg.Durable.AppendCursor(wal.Cursor{
			DstDC: uint8(st.dstDC), Seq: high, HighTS: high,
		})
	}
}

// deliver retries the update until acknowledged (true) or the stream stops.
func (st *stream) deliver(u *wire.LoRepUpdate) bool {
	for {
		ctx, cancel := context.WithTimeout(st.ctx, st.s.cfg.RepRetryTimeout)
		resp, err := st.s.node.Call(ctx, st.dst, u)
		cancel()
		if err == nil {
			if _, ok := resp.(*wire.LoRepAck); ok {
				return true
			}
		}
		if st.ctx.Err() != nil {
			return false
		}
		select {
		case <-st.stop:
			return false
		case <-time.After(10 * time.Millisecond):
		}
	}
}
