package cops

import (
	"context"
	"time"

	"repro/internal/wire"
)

// replicator ships local PUTs with their dependency lists to sibling
// replicas; receivers enforce causal order by dependency checks, so a
// window of updates can be in flight concurrently.
type replicator struct {
	s       *Server
	streams []*stream
}

type stream struct {
	s      *Server
	dst    wire.Addr
	ch     chan *wire.LoRepUpdate
	sem    chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}
}

func newReplicator(s *Server) *replicator {
	r := &replicator{s: s}
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		r.streams = append(r.streams, &stream{
			s:      s,
			dst:    wire.ServerAddr(dc, s.cfg.Part),
			ch:     make(chan *wire.LoRepUpdate, 8192),
			sem:    make(chan struct{}, s.cfg.RepWindow),
			ctx:    ctx,
			cancel: cancel,
			stop:   make(chan struct{}),
			done:   make(chan struct{}),
		})
	}
	return r
}

func (r *replicator) start() {
	for _, st := range r.streams {
		go st.run()
	}
}

func (r *replicator) stopAll() {
	for _, st := range r.streams {
		close(st.stop)
		st.cancel()
	}
	for _, st := range r.streams {
		<-st.done
	}
}

func (r *replicator) enqueue(u *wire.LoRepUpdate) {
	for _, st := range r.streams {
		select {
		case st.ch <- u:
		case <-st.stop:
		}
	}
}

func (st *stream) run() {
	defer close(st.done)
	seq := uint64(0)
	for {
		select {
		case <-st.stop:
			return
		case u := <-st.ch:
			seq++
			u.Seq = seq
			select {
			case st.sem <- struct{}{}:
			case <-st.stop:
				return
			}
			go func(u *wire.LoRepUpdate) {
				defer func() { <-st.sem }()
				st.deliver(u)
			}(u)
		}
	}
}

func (st *stream) deliver(u *wire.LoRepUpdate) {
	for {
		ctx, cancel := context.WithTimeout(st.ctx, st.s.cfg.RepRetryTimeout)
		resp, err := st.s.node.Call(ctx, st.dst, u)
		cancel()
		if err == nil {
			if _, ok := resp.(*wire.LoRepAck); ok {
				return
			}
		}
		if st.ctx.Err() != nil {
			return
		}
		select {
		case <-st.stop:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}
