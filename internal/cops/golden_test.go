package cops

import (
	"fmt"
	"math/rand"
	"testing"
)

// refCopsStore is the pre-refactor COPS store logic, vendored verbatim
// (minus locking and sharding): the golden oracle for install ordering, the
// at() rewind rule, and hasVersion — with ONE deliberate divergence. The
// old hasVersion used `len(chain) >= maxVersions` as its "was trimmed"
// proxy, which false-positives on a chain that merely GREW to capacity; the
// engine tracks an exact Trimmed flag, so the oracle does too (the corner
// itself is pinned by TestHasVersionAtCapacity).
type refCopsStore struct {
	m           map[string]*refCopsChain
	maxVersions int
}

type refCopsChain struct {
	versions []version
	trimmed  bool
}

func newRefCopsStore(maxVersions int) *refCopsStore {
	return &refCopsStore{m: make(map[string]*refCopsChain), maxVersions: maxVersions}
}

func (s *refCopsStore) install(key string, v version) {
	c := s.m[key]
	if c == nil {
		c = &refCopsChain{}
		s.m[key] = c
	}
	chain := c.versions
	i := len(chain)
	for i > 0 && v.before(&chain[i-1]) {
		i--
	}
	if i > 0 && chain[i-1].ts == v.ts && chain[i-1].srcDC == v.srcDC {
		return // duplicate
	}
	chain = append(chain, version{})
	copy(chain[i+1:], chain[i:])
	chain[i] = v
	if len(chain) > s.maxVersions {
		chain = append(chain[:0:0], chain[len(chain)-s.maxVersions:]...)
		c.trimmed = true
	}
	c.versions = chain
}

func (s *refCopsStore) latest(key string) (version, bool) {
	c := s.m[key]
	if c == nil || len(c.versions) == 0 {
		return version{}, false
	}
	return c.versions[len(c.versions)-1], true
}

func (s *refCopsStore) at(key string, ts uint64, src uint8) (version, bool) {
	var chain []version
	if c := s.m[key]; c != nil {
		chain = c.versions
	}
	want := version{ts: ts, srcDC: src}
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].ts == ts && chain[i].srcDC == src {
			return chain[i], true
		}
		if chain[i].before(&want) {
			if i+1 < len(chain) {
				return chain[i+1], true
			}
			return version{}, false
		}
	}
	if len(chain) > 0 {
		return chain[0], true
	}
	return version{}, false
}

func (s *refCopsStore) hasVersion(key string, ts uint64, src uint8) bool {
	c := s.m[key]
	if c == nil || len(c.versions) == 0 {
		return false
	}
	chain := c.versions
	want := version{ts: ts, srcDC: src}
	if c.trimmed && want.before(&chain[0]) {
		return true
	}
	for i := len(chain) - 1; i >= 0 && chain[i].ts >= ts; i-- {
		if chain[i].ts == ts && chain[i].srcDC == src {
			return true
		}
	}
	return false
}

func sameCopsVersion(a, b version) bool {
	return a.ts == b.ts && a.srcDC == b.srcDC && string(a.value) == string(b.value)
}

// TestGoldenTraceMatchesPreRefactorStore replays a deterministic trace of
// installs, latest/at reads, and dependency-check probes against the
// engine-backed store and the vendored pre-refactor logic, requiring
// identical answers at every step.
func TestGoldenTraceMatchesPreRefactorStore(t *testing.T) {
	const maxVersions = 4
	r := rand.New(rand.NewSource(20180413))
	eng := newStore(maxVersions, 1)
	ref := newRefCopsStore(maxVersions)

	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	for op := 0; op < 8000; op++ {
		key := keys[r.Intn(len(keys))]
		ts, src := uint64(r.Intn(48)+1), uint8(r.Intn(3))
		switch r.Intn(5) {
		case 0, 1:
			v := version{value: []byte(fmt.Sprintf("%s@%d.%d", key, ts, src)), ts: ts, srcDC: src}
			eng.install(key, v)
			ref.install(key, v)
		case 2:
			gv, gok := eng.latest(key)
			wv, wok := ref.latest(key)
			if gok != wok || (gok && !sameCopsVersion(gv, wv)) {
				t.Fatalf("op %d: latest(%s) = (%+v, %v), golden (%+v, %v)", op, key, gv, gok, wv, wok)
			}
		case 3:
			gv, gok := eng.at(key, ts, src)
			wv, wok := ref.at(key, ts, src)
			if gok != wok || (gok && !sameCopsVersion(gv, wv)) {
				t.Fatalf("op %d: at(%s, %d, %d) = (%+v, %v), golden (%+v, %v)", op, key, ts, src, gv, gok, wv, wok)
			}
		case 4:
			if got, want := eng.hasVersion(key, ts, src), ref.hasVersion(key, ts, src); got != want {
				t.Fatalf("op %d: hasVersion(%s, %d, %d) = %v, golden %v", op, key, ts, src, got, want)
			}
		}
	}
	// Final sweep: the full dependency-check and rewind surface agrees.
	for _, key := range keys {
		for ts := uint64(1); ts <= 48; ts++ {
			for src := uint8(0); src < 3; src++ {
				if got, want := eng.hasVersion(key, ts, src), ref.hasVersion(key, ts, src); got != want {
					t.Fatalf("final sweep: hasVersion(%s, %d, %d) = %v, golden %v", key, ts, src, got, want)
				}
				gv, gok := eng.at(key, ts, src)
				wv, wok := ref.at(key, ts, src)
				if gok != wok || (gok && !sameCopsVersion(gv, wv)) {
					t.Fatalf("final sweep: at(%s, %d, %d) = (%+v, %v), golden (%+v, %v)", key, ts, src, gv, gok, wv, wok)
				}
			}
		}
	}
}

// TestHasVersionAtCapacity pins the deliberate divergence from the
// pre-refactor heuristic: a chain that GREW to exactly maxVersions but was
// never trimmed must not claim below-window versions were installed, while
// a genuinely trimmed chain must. The old `len(chain) >= maxVersions` proxy
// got the first half wrong, passing dependency checks for versions that
// were never written.
func TestHasVersionAtCapacity(t *testing.T) {
	const cap = 4
	s := newStore(cap, 1)
	for i := 1; i <= cap; i++ { // exactly at capacity, nothing trimmed
		s.install("k", version{value: []byte{byte(i)}, ts: uint64(i + 10), srcDC: 1})
	}
	if s.hasVersion("k", 5, 0) {
		t.Fatal("at-capacity untrimmed chain claimed a never-installed below-window version")
	}
	if !s.hasVersion("k", 11, 1) {
		t.Fatal("retained version denied")
	}
	// One more install trims ts=11; now — and only now — below-window
	// identities are provably installed-and-trimmed.
	s.install("k", version{value: []byte{9}, ts: 99, srcDC: 1})
	if !s.hasVersion("k", 11, 1) {
		t.Fatal("trimmed-away version denied after a real trim")
	}
	if !s.hasVersion("k", 5, 0) {
		t.Fatal("below-window version denied on a trimmed chain")
	}
}
