package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// tearWALTail appends a half-written record to the newest segment of the
// (dc,p) partition's WAL, simulating the torn final write a SIGKILL (or
// power cut) mid-commit leaves behind. Recovery must shrug it off: a torn
// record was never acknowledged.
func tearWALTail(t *testing.T, c *Cluster, dc, p int) {
	t.Helper()
	dir := c.WALDir(dc, p)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatalf("no WAL segments in %s", dir)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(filepath.Join(dir, segs[len(segs)-1]), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A record header claiming a 400-byte body, followed by only 9 bytes.
	torn := append([]byte{0x90, 1, 0, 0, 0xde, 0xad, 0xbe, 0xef}, []byte("truncated")...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestCrashRecoveryDurable is the kill-and-restart fault test for the
// durability subsystem, run against all three protocol families so every
// server logs installs uniformly: write through the protocol, hard-stop
// both partitions (plus a torn final WAL record on partition 0), restart
// them over the same data dir, and require every previously acknowledged
// write to come back with its original value AND timestamp — then require
// the cluster to still be live for new writes.
func TestCrashRecoveryDurable(t *testing.T) {
	for _, proto := range []Protocol{Contrarian, CCLO, COPS} {
		t.Run(proto.String(), func(t *testing.T) {
			c := startCluster(t, Config{
				Protocol:   proto,
				DCs:        1,
				Partitions: 2,
				Latency:    NoLatency(),
				DataDir:    t.TempDir(),
				// Small segments force rotation under the test's write volume
				// so recovery stitches multiple segments.
				WALSegmentBytes: 2048,
			})
			ctx := testCtx(t)
			w, err := c.NewClient(0)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()

			const keys = 40
			acked := map[string]struct {
				val []byte
				ts  uint64
			}{}
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("crash-%02d", i)
				val := []byte(fmt.Sprintf("value-%02d", i))
				ts, err := w.Put(ctx, key, val)
				if err != nil {
					t.Fatal(err)
				}
				acked[key] = struct {
					val []byte
					ts  uint64
				}{val, ts}
			}
			// Overwrite a few keys so recovery must respect version order.
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("crash-%02d", i)
				val := []byte(fmt.Sprintf("rewrite-%02d", i))
				ts, err := w.Put(ctx, key, val)
				if err != nil {
					t.Fatal(err)
				}
				acked[key] = struct {
					val []byte
					ts  uint64
				}{val, ts}
			}

			// COPS: capture the durable dependency lists before the crash.
			wantDeps := map[string][]wire.LoDep{}
			if proto == COPS {
				for key := range acked {
					idx := c.Ring().Owner(key)
					_, _, deps, ok := c.COPSServers()[idx].Latest(key)
					if !ok {
						t.Fatalf("key %s missing before crash", key)
					}
					wantDeps[key] = deps
				}
			}

			// Crash both partitions; partition 0 additionally gets a torn
			// final record, as a real mid-commit kill would leave.
			if err := c.RestartPartition(0, 1); err != nil {
				t.Fatal(err)
			}
			c.stopServer(0)
			tearWALTail(t, c, 0, 0)
			if err := c.RestartPartition(0, 0); err != nil {
				t.Fatal(err)
			}
			if v := c.WALView(); v.RecoveredRecords == 0 || v.TornTails != 1 {
				t.Fatalf("recovery stats: recovered %d records, %d torn tails (want >0, 1)",
					v.RecoveredRecords, v.TornTails)
			}

			// Every acknowledged write must be readable with its original
			// value and timestamp.
			r, err := c.NewClient(0)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for key, want := range acked {
				kvs, err := r.ROT(ctx, []string{key})
				if err != nil {
					t.Fatalf("read %s after restart: %v", key, err)
				}
				if !bytes.Equal(kvs[0].Value, want.val) {
					t.Fatalf("key %s after restart: value %q, want %q", key, kvs[0].Value, want.val)
				}
				if kvs[0].TS != want.ts {
					t.Fatalf("key %s after restart: ts %d, want original %d", key, kvs[0].TS, want.ts)
				}
			}
			// COPS dependency lists must survive byte-for-byte.
			for key, want := range wantDeps {
				idx := c.Ring().Owner(key)
				_, _, got, ok := c.COPSServers()[idx].Latest(key)
				if !ok || len(got) != len(want) {
					t.Fatalf("key %s deps after restart: %v, want %v", key, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("key %s dep %d: %+v, want %+v", key, i, got[i], want[i])
					}
				}
			}

			// The cluster must remain live: new writes land above recovered
			// timestamps and are immediately readable.
			for i := 0; i < 5; i++ {
				key := fmt.Sprintf("crash-%02d", i)
				ts, err := w.Put(ctx, key, []byte("post-restart"))
				if err != nil {
					t.Fatalf("put after restart: %v", err)
				}
				if ts <= acked[key].ts {
					t.Fatalf("post-restart ts %d not above recovered %d (clock not recovered)", ts, acked[key].ts)
				}
				got, err := r.Get(ctx, key)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != "post-restart" {
					t.Fatalf("post-restart write invisible: got %q", got)
				}
			}
		})
	}
}

// TestDurableReplicationAcrossDCs checks the durability gate does not
// stall geo-replication: with WALs on, writes still become visible in the
// remote DC (the replication cut waits for each update's fsync), and —
// after a partition restart — fresh writes keep replicating (the stream's
// sequence base stays above the receiver's dedup cursor).
func TestDurableReplicationAcrossDCs(t *testing.T) {
	c := startCluster(t, Config{
		Protocol:   Contrarian,
		DCs:        2,
		Partitions: 2,
		Latency:    NoLatency(),
		DataDir:    t.TempDir(),
	})
	ctx := testCtx(t)
	w, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := c.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	waitVisible := func(key string, want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			got, err := r.Get(ctx, key)
			if err != nil {
				t.Fatal(err)
			}
			if got != nil && seqOf(got) == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %s (seq %d) never visible in remote DC", key, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("geo-%d", i)
		if _, err := w.Put(ctx, key, seqVal(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
		waitVisible(key, uint64(i+1))
	}

	// Restart both DC0 partitions; post-restart writes must still cross.
	for p := 0; p < 2; p++ {
		if err := c.RestartPartition(0, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 8; i < 12; i++ {
		key := fmt.Sprintf("geo-%d", i)
		if _, err := w.Put(ctx, key, seqVal(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
		waitVisible(key, uint64(i+1))
	}
}

// TestRecoveryWithSnapshot covers the snapshot + tail replay composition at
// the cluster level: snapshot mid-workload (truncating sealed segments),
// keep writing, crash, restart, and check both pre- and post-snapshot
// writes recovered.
func TestRecoveryWithSnapshot(t *testing.T) {
	c := startCluster(t, Config{
		Protocol:        Contrarian,
		DCs:             1,
		Partitions:      1,
		Latency:         NoLatency(),
		DataDir:         t.TempDir(),
		WALSegmentBytes: 1024,
	})
	ctx := testCtx(t)
	w, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ts := map[string]uint64{}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("snap-%02d", i)
		ts[key], err = w.Put(ctx, key, seqVal(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.logs[0].Snapshot(); err != nil {
		t.Fatal(err)
	}
	if v := c.WALView(); v.Snapshots != 1 || v.Truncated == 0 {
		t.Fatalf("snapshot did not truncate: %+v", v)
	}
	for i := 30; i < 45; i++ {
		key := fmt.Sprintf("snap-%02d", i)
		ts[key], err = w.Put(ctx, key, seqVal(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RestartPartition(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 45; i++ {
		key := fmt.Sprintf("snap-%02d", i)
		kvs, err := w.ROT(ctx, []string{key})
		if err != nil {
			t.Fatal(err)
		}
		if seqOf(kvs[0].Value) != uint64(i) || kvs[0].TS != ts[key] {
			t.Fatalf("key %s: got (seq %d, ts %d), want (%d, %d)",
				key, seqOf(kvs[0].Value), kvs[0].TS, i, ts[key])
		}
	}
}
