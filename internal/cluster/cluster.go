// Package cluster assembles complete multi-DC deployments of the protocols
// — Contrarian, Cure, CC-LO, and COPS — over the in-process transport,
// mirroring the paper's testbed (§5.2): N partitions per DC, M DCs, a
// stabilization service per DC for the timestamp-based protocols, and
// closed-loop clients homed in a DC.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/cclo"
	"repro/internal/cops"
	"repro/internal/core"
	"repro/internal/mvstore"
	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// mvstoreVersion builds the canonical preload version.
func mvstoreVersion(val []byte, dv []uint64) mvstore.Version {
	return mvstore.Version{Value: val, TS: 1, SrcDC: 0, DV: vclock.Vec(dv)}
}

// Protocol selects the consistency protocol a cluster runs.
type Protocol int

const (
	// Contrarian is the paper's design: HLC clocks, nonblocking one-version
	// ROTs in 1 1/2 rounds.
	Contrarian Protocol = iota
	// ContrarianTwoRound trades ROT latency for fewer messages (§5.3).
	ContrarianTwoRound
	// Cure is the physical-clock baseline: 2-round ROTs that block on
	// clock skew.
	Cure
	// CCLO is the latency-optimal COPS-SNOW design: one-round ROTs,
	// readers checks on writes.
	CCLO
	// COPS is the original dependency-list design (§3): nonblocking ROTs
	// in at most 2 rounds and 2 versions, cheap writes, heavy metadata.
	COPS
)

// String names the protocol as in the paper's figures.
func (p Protocol) String() string {
	switch p {
	case Contrarian:
		return "Contrarian 1 1/2 rounds"
	case ContrarianTwoRound:
		return "Contrarian 2 rounds"
	case Cure:
		return "Cure"
	case CCLO:
		return "CC-LO"
	case COPS:
		return "COPS"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config parameterizes a cluster.
type Config struct {
	Protocol   Protocol
	DCs        int
	Partitions int

	// Latency is the injected network latency model; the zero value means
	// transport.DefaultLatency. Use NoLatency for fast correctness tests.
	Latency *transport.LatencyModel
	// MaxSkew bounds per-node physical clock skew (default 1 ms, NTP-ish).
	MaxSkew time.Duration
	// StabilizeEvery is the stabilization period (default 5 ms, as §5.2).
	StabilizeEvery time.Duration
	// GCWindow is CC-LO's reader GC window (default 500 ms, as §5.2).
	GCWindow time.Duration
	// MaxVersions caps per-key version chains.
	MaxVersions int
	// Seed randomizes clock skews deterministically.
	Seed int64
	// ClockOverride forces a clock mode for the timestamp-based protocols
	// (ablations: Contrarian on plain logical clocks loses GSS freshness —
	// §4 "Freshness of the snapshots").
	ClockOverride *core.ClockMode
}

// NoLatency is a latency model for correctness tests: messages still pay
// full marshalling costs but fly instantly.
func NoLatency() *transport.LatencyModel { return &transport.LatencyModel{} }

// Client is the operation interface shared by all protocol clients.
type Client interface {
	// Put installs a new version of key and returns its timestamp.
	Put(ctx context.Context, key string, value []byte) (uint64, error)
	// Get reads one key causally.
	Get(ctx context.Context, key string) ([]byte, error)
	// ROT reads keys from one causally consistent snapshot.
	ROT(ctx context.Context, keys []string) ([]wire.KV, error)
	// Close detaches the client.
	Close() error
}

// Cluster is a running deployment.
type Cluster struct {
	cfg  Config
	net  *transport.Local
	ring ring.Ring

	coreServers []*core.Server // all DCs, flattened
	ccloServers []*cclo.Server
	copsServers []*cops.Server
	stabs       []*core.Stabilizer

	clientSeq []atomic.Int64 // per DC
}

// Start builds and starts a cluster.
func Start(cfg Config) (*Cluster, error) {
	if cfg.DCs <= 0 {
		cfg.DCs = 1
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.MaxSkew == 0 {
		cfg.MaxSkew = time.Millisecond
	}
	lat := transport.DefaultLatency()
	if cfg.Latency != nil {
		lat = *cfg.Latency
	}
	c := &Cluster{
		cfg:       cfg,
		net:       transport.NewLocal(lat),
		ring:      ring.New(cfg.Partitions),
		clientSeq: make([]atomic.Int64, cfg.DCs),
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	skew := func() time.Duration {
		if cfg.MaxSkew <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(2*cfg.MaxSkew))) - cfg.MaxSkew
	}

	for dc := 0; dc < cfg.DCs; dc++ {
		for p := 0; p < cfg.Partitions; p++ {
			if err := c.startServer(dc, p, skew()); err != nil {
				c.Close()
				return nil, err
			}
		}
		if cfg.Protocol != CCLO && cfg.Protocol != COPS {
			st, err := core.NewStabilizer(dc, cfg.Partitions, cfg.DCs, cfg.StabilizeEvery, c.net)
			if err != nil {
				c.Close()
				return nil, err
			}
			st.Start()
			c.stabs = append(c.stabs, st)
		}
	}
	for _, s := range c.coreServers {
		s.Start()
	}
	for _, s := range c.ccloServers {
		s.Start()
	}
	for _, s := range c.copsServers {
		s.Start()
	}
	return c, nil
}

func (c *Cluster) startServer(dc, p int, skew time.Duration) error {
	if c.cfg.Protocol == COPS {
		s, err := cops.NewServer(cops.Config{
			DC: dc, Part: p, NumDCs: c.cfg.DCs, NumParts: c.cfg.Partitions,
			MaxVersions: c.cfg.MaxVersions,
		}, c.net)
		if err != nil {
			return err
		}
		c.copsServers = append(c.copsServers, s)
		return nil
	}
	if c.cfg.Protocol == CCLO {
		s, err := cclo.NewServer(cclo.Config{
			DC: dc, Part: p, NumDCs: c.cfg.DCs, NumParts: c.cfg.Partitions,
			GCWindow:    c.cfg.GCWindow,
			MaxVersions: c.cfg.MaxVersions,
		}, c.net)
		if err != nil {
			return err
		}
		c.ccloServers = append(c.ccloServers, s)
		return nil
	}
	clock := core.ClockHLC
	if c.cfg.Protocol == Cure {
		clock = core.ClockPhysical
	}
	if c.cfg.ClockOverride != nil {
		clock = *c.cfg.ClockOverride
	}
	s, err := core.NewServer(core.Config{
		DC: dc, Part: p, NumDCs: c.cfg.DCs, NumParts: c.cfg.Partitions,
		Clock:          clock,
		Skew:           skew,
		StabilizeEvery: c.cfg.StabilizeEvery,
		MaxVersions:    c.cfg.MaxVersions,
	}, c.net)
	if err != nil {
		return err
	}
	c.coreServers = append(c.coreServers, s)
	return nil
}

// Close stops every component.
func (c *Cluster) Close() {
	for _, s := range c.coreServers {
		s.Close()
	}
	for _, s := range c.ccloServers {
		s.Close()
	}
	for _, s := range c.copsServers {
		s.Close()
	}
	for _, st := range c.stabs {
		st.Close()
	}
	c.net.Close()
}

// Ring returns the key-to-partition mapping.
func (c *Cluster) Ring() ring.Ring { return c.ring }

// Net returns the underlying in-process network (for stats).
func (c *Cluster) Net() *transport.Local { return c.net }

// NewClient attaches a new client session homed in dc.
func (c *Cluster) NewClient(dc int) (Client, error) {
	if dc < 0 || dc >= c.cfg.DCs {
		return nil, fmt.Errorf("cluster: no such DC %d", dc)
	}
	id := int(c.clientSeq[dc].Add(1))
	if c.cfg.Protocol == CCLO {
		return cclo.NewClient(cclo.ClientConfig{DC: dc, ID: id, Ring: c.ring}, c.net)
	}
	if c.cfg.Protocol == COPS {
		return cops.NewClient(cops.ClientConfig{DC: dc, ID: id, Ring: c.ring}, c.net)
	}
	mode := core.OneAndHalfRounds
	if c.cfg.Protocol == ContrarianTwoRound || c.cfg.Protocol == Cure {
		mode = core.TwoRounds
	}
	return core.NewClient(core.ClientConfig{
		DC: dc, ID: id, NumDCs: c.cfg.DCs, Ring: c.ring, Mode: mode,
	}, c.net)
}

// CCLOStats sums readers-check counters over every CC-LO server.
func (c *Cluster) CCLOStats() cclo.StatsSnapshot {
	var sum cclo.StatsSnapshot
	for _, s := range c.ccloServers {
		snap := s.Stats().Snapshot()
		sum.Checks += snap.Checks
		sum.KeysChecked += snap.KeysChecked
		sum.PartitionsAsked += snap.PartitionsAsked
		sum.IDsCumulative += snap.IDsCumulative
		sum.IDsDistinct += snap.IDsDistinct
		sum.CheckBytes += snap.CheckBytes
		sum.ReplicationChecks += snap.ReplicationChecks
	}
	return sum
}

// Preload installs an initial version of every key directly into every
// replica's store, bypassing the protocols. keysByPartition[p] must hold
// keys owned by partition p (as built by workload.BuildKeySpace). Preloaded
// versions carry timestamp 1 from DC 0 and depend on nothing, so they are
// visible in any snapshot; benchmarks use this to stand up the paper's 1M
// keys/partition data set without paying millions of protocol PUTs.
func (c *Cluster) Preload(keysByPartition [][]string, valueSize int) error {
	if len(keysByPartition) != c.cfg.Partitions {
		return fmt.Errorf("cluster: preload expects %d partitions, got %d", c.cfg.Partitions, len(keysByPartition))
	}
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte(i)
	}
	for dc := 0; dc < c.cfg.DCs; dc++ {
		for p, keys := range keysByPartition {
			idx := dc*c.cfg.Partitions + p
			if c.cfg.Protocol == CCLO {
				c.ccloServers[idx].Preload(keys, val)
				continue
			}
			if c.cfg.Protocol == COPS {
				c.copsServers[idx].Preload(keys, val)
				continue
			}
			s := c.coreServers[idx]
			dv := make([]uint64, c.cfg.DCs)
			dv[0] = 1
			for _, k := range keys {
				s.Store().Install(k, mvstoreVersion(val, dv))
			}
		}
	}
	return nil
}

// CoreServers exposes the timestamp-based servers (tests).
func (c *Cluster) CoreServers() []*core.Server { return c.coreServers }

// CCLOServers exposes the CC-LO servers (tests).
func (c *Cluster) CCLOServers() []*cclo.Server { return c.ccloServers }

// COPSServers exposes the COPS servers (tests).
func (c *Cluster) COPSServers() []*cops.Server { return c.copsServers }
