// Package cluster assembles complete multi-DC deployments of the protocols
// — Contrarian, Cure, CC-LO, and COPS — over the in-process transport,
// mirroring the paper's testbed (§5.2): N partitions per DC, M DCs, a
// stabilization service per DC for the timestamp-based protocols, and
// closed-loop clients homed in a DC.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cclo"
	"repro/internal/cops"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mvstore"
	"repro/internal/ring"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wal"
	"repro/internal/wire"
)

// mvstoreVersion builds the canonical preload version.
func mvstoreVersion(val []byte, dv []uint64) mvstore.Version {
	return mvstore.Version{Value: val, TS: 1, SrcDC: 0, DV: vclock.Vec(dv)}
}

// Protocol selects the consistency protocol a cluster runs.
type Protocol int

const (
	// Contrarian is the paper's design: HLC clocks, nonblocking one-version
	// ROTs in 1 1/2 rounds.
	Contrarian Protocol = iota
	// ContrarianTwoRound trades ROT latency for fewer messages (§5.3).
	ContrarianTwoRound
	// Cure is the physical-clock baseline: 2-round ROTs that block on
	// clock skew.
	Cure
	// CCLO is the latency-optimal COPS-SNOW design: one-round ROTs,
	// readers checks on writes.
	CCLO
	// COPS is the original dependency-list design (§3): nonblocking ROTs
	// in at most 2 rounds and 2 versions, cheap writes, heavy metadata.
	COPS
)

// String names the protocol as in the paper's figures.
func (p Protocol) String() string {
	switch p {
	case Contrarian:
		return "Contrarian 1 1/2 rounds"
	case ContrarianTwoRound:
		return "Contrarian 2 rounds"
	case Cure:
		return "Cure"
	case CCLO:
		return "CC-LO"
	case COPS:
		return "COPS"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config parameterizes a cluster.
type Config struct {
	Protocol   Protocol
	DCs        int
	Partitions int

	// Latency is the injected network latency model; the zero value means
	// transport.DefaultLatency. Use NoLatency for fast correctness tests.
	Latency *transport.LatencyModel
	// MaxSkew bounds per-node physical clock skew (default 1 ms, NTP-ish).
	MaxSkew time.Duration
	// StabilizeEvery is the stabilization period (default 5 ms, as §5.2).
	StabilizeEvery time.Duration
	// ReaderGCWindow is CC-LO's reader GC window (default 500 ms, as §5.2):
	// how long reader records, old-reader entries, and invisibility marks
	// live. Crash tests shrink or stretch it to make reader-state expiry
	// deterministic around a kill/restart.
	ReaderGCWindow time.Duration
	// MaxVersions caps per-key version chains.
	MaxVersions int
	// StoreShards sets every partition store's shard count (0 = auto-size
	// from GOMAXPROCS; values are rounded up to a power of two and capped at
	// store.MaxShards).
	StoreShards int
	// Seed randomizes clock skews deterministically.
	Seed int64
	// ClockOverride forces a clock mode for the timestamp-based protocols
	// (ablations: Contrarian on plain logical clocks loses GSS freshness —
	// §4 "Freshness of the snapshots").
	ClockOverride *core.ClockMode

	// DataDir, when non-empty, gives every partition server a durable
	// write-ahead log under DataDir/dc<d>-p<p>: acknowledged installs
	// survive a crash and RestartPartition recovers them. Empty (the
	// default) keeps the cluster purely in memory, so benchmark figures are
	// unaffected unless durability is asked for.
	DataDir string
	// WALSnapshotEvery enables periodic WAL snapshots (store serialization
	// plus sealed-segment truncation); 0 disables them. Only meaningful
	// with DataDir set.
	WALSnapshotEvery time.Duration
	// WALSegmentBytes overrides the WAL segment size (tests force small
	// segments to exercise rotation); 0 uses the wal default.
	WALSegmentBytes int64
	// WALSync selects the WAL acknowledgment contract: wal.SyncAlways
	// (default; acked ⇒ fsynced) or wal.SyncBackground (acked ⇒ written,
	// fsynced within WALFsyncEvery — the bounded loss window).
	WALSync wal.SyncMode
	// WALFsyncEvery bounds the SyncBackground loss window (0 = wal
	// default).
	WALFsyncEvery time.Duration
	// RepFlushEvery overrides the timestamp-based engine's replication
	// flush period (fault tests stretch it to hold replication back while
	// they crash the origin); 0 uses the core default.
	RepFlushEvery time.Duration

	// FlushBudget bounds how long the transport's batching engine keeps a
	// coalesced batch open gathering more frames (the adaptive flush
	// policy; batches still flush immediately when the send queue goes
	// idle). 0 applies transport.DefaultFlushBudget; negative selects
	// greedy drain-until-idle (the pre-engine behavior, for ablations).
	FlushBudget time.Duration
	// MaxBatchBytes caps one coalesced transport batch (0 = engine
	// default). Checker tests crank it up together with a tiny budget to
	// stress batch-boundary reordering.
	MaxBatchBytes int

	// Slow, when non-nil, is handed to every partition server: handler
	// invocations exceeding the ring's threshold are captured in it (see
	// metrics.SlowRing). Nil disables capture.
	Slow *metrics.SlowRing

	// AdmitLimit enables client admission control: it caps concurrently
	// running client handlers per partition server; excess client requests
	// are shed with wire.Busy and a retry-after hint. 0 (the default)
	// disables the gate — intra-cluster traffic is never gated either way.
	AdmitLimit int
	// ShedQueueFrames sheds client load early when the transport send
	// queue reaches this depth (0 = signal unused).
	ShedQueueFrames int64
	// ShedFsyncP99 sheds client load early when the WAL p99 fsync delay
	// reaches this (0 = signal unused).
	ShedFsyncP99 time.Duration

	// SocketPool caps connections per destination for the session-mux
	// client endpoints handed out by NewSessionClient (0 = 1 shared
	// connection). The in-process transport has no sockets and ignores it;
	// it is plumbed so TCP-backed harnesses can reuse this Config shape.
	SocketPool int
}

// NoLatency is a latency model for correctness tests: messages still pay
// full marshalling costs but fly instantly.
func NoLatency() *transport.LatencyModel { return &transport.LatencyModel{} }

// Client is the operation interface shared by all protocol clients.
type Client interface {
	// Put installs a new version of key and returns its timestamp.
	Put(ctx context.Context, key string, value []byte) (uint64, error)
	// Get reads one key causally.
	Get(ctx context.Context, key string) ([]byte, error)
	// ROT reads keys from one causally consistent snapshot.
	ROT(ctx context.Context, keys []string) ([]wire.KV, error)
	// Close detaches the client.
	Close() error
}

// Cluster is a running deployment.
type Cluster struct {
	cfg  Config
	net  *transport.Local
	ring ring.Ring

	// The active protocol's slice is indexed dc*Partitions+p; the others
	// stay empty. logs and skews share the same indexing (logs holds nils
	// when DataDir is unset).
	coreServers []*core.Server
	ccloServers []*cclo.Server
	copsServers []*cops.Server
	stabs       []*core.Stabilizer
	logs        []*wal.Log
	skews       []time.Duration

	clientSeq []atomic.Int64 // per DC; shared by plain clients and sessions

	// muxes holds the per-DC session-mux endpoints, created lazily by the
	// first NewSessionClient in a DC. Each lives at the reserved client
	// address muxClientID and carries any number of logical sessions.
	muxMu sync.Mutex
	muxes []transport.Mux

	// ccloClients tracks CC-LO sessions handed out by NewClient so
	// CCLOStats can aggregate their client-side epoch-fence retry counters
	// (closed sessions keep their counts readable).
	ccloClientMu sync.Mutex
	ccloClients  []*cclo.Client

	// retriers tracks every session handed out by NewClient so
	// AdmissionView can aggregate client-side Busy-retry counters.
	retrierMu sync.Mutex
	retriers  []interface{ BusyRetries() uint64 }

	// logMu guards the c.logs slots against the admission gate's fsync
	// probe (a transport goroutine) racing partition restarts.
	logMu sync.RWMutex
}

// Start builds and starts a cluster.
func Start(cfg Config) (*Cluster, error) {
	if cfg.DCs <= 0 {
		cfg.DCs = 1
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.MaxSkew == 0 {
		cfg.MaxSkew = time.Millisecond
	}
	if cfg.StoreShards < 0 || cfg.StoreShards > store.MaxShards {
		return nil, fmt.Errorf("cluster: StoreShards %d out of range [0, %d]", cfg.StoreShards, store.MaxShards)
	}
	lat := transport.DefaultLatency()
	if cfg.Latency != nil {
		lat = *cfg.Latency
	}
	n := cfg.DCs * cfg.Partitions
	c := &Cluster{
		cfg: cfg,
		net: transport.NewLocalOpts(lat, transport.BatchPolicy{
			FlushBudget:   transport.ResolveFlushBudget(cfg.FlushBudget),
			MaxBatchBytes: cfg.MaxBatchBytes,
		}),
		ring:      ring.New(cfg.Partitions),
		logs:      make([]*wal.Log, n),
		skews:     make([]time.Duration, n),
		clientSeq: make([]atomic.Int64, cfg.DCs),
		muxes:     make([]transport.Mux, cfg.DCs),
	}
	if cfg.AdmitLimit > 0 {
		c.net.SetAdmission(transport.AdmitConfig{
			Limit:           cfg.AdmitLimit,
			ShedQueueFrames: cfg.ShedQueueFrames,
			ShedFsyncP99:    cfg.ShedFsyncP99,
			QueueDepth:      c.net.Stats().SendQueue.Load,
			FsyncP99:        c.fsyncP99,
		})
	}
	switch cfg.Protocol {
	case COPS:
		c.copsServers = make([]*cops.Server, n)
	case CCLO:
		c.ccloServers = make([]*cclo.Server, n)
	default:
		c.coreServers = make([]*core.Server, n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	for i := range c.skews {
		if cfg.MaxSkew > 0 {
			c.skews[i] = time.Duration(rng.Int63n(int64(2*cfg.MaxSkew))) - cfg.MaxSkew
		}
	}

	for dc := 0; dc < cfg.DCs; dc++ {
		for p := 0; p < cfg.Partitions; p++ {
			if err := c.startServer(dc, p); err != nil {
				c.Close()
				return nil, err
			}
		}
		if cfg.Protocol != CCLO && cfg.Protocol != COPS {
			st, err := core.NewStabilizer(dc, cfg.Partitions, cfg.DCs, cfg.StabilizeEvery, c.net)
			if err != nil {
				c.Close()
				return nil, err
			}
			st.Start()
			c.stabs = append(c.stabs, st)
		}
	}
	for _, s := range c.coreServers {
		s.Start()
	}
	for _, s := range c.ccloServers {
		s.Start()
	}
	for _, s := range c.copsServers {
		s.Start()
	}
	return c, nil
}

// openLog opens the (dc,p) partition's WAL when durability is configured.
func (c *Cluster) openLog(dc, p int) (*wal.Log, error) {
	if c.cfg.DataDir == "" {
		return nil, nil
	}
	return wal.Open(wal.Options{
		Dir:           filepath.Join(c.cfg.DataDir, fmt.Sprintf("dc%d-p%d", dc, p)),
		SegmentBytes:  c.cfg.WALSegmentBytes,
		SnapshotEvery: c.cfg.WALSnapshotEvery,
		Sync:          c.cfg.WALSync,
		FsyncEvery:    c.cfg.WALFsyncEvery,
	})
}

// startServer builds and registers the (dc,p) partition server, opening
// its WAL (and thereby replaying any previous state) when DataDir is set.
// The server is placed at index dc*Partitions+p; it is not Start()ed.
func (c *Cluster) startServer(dc, p int) error {
	idx := dc*c.cfg.Partitions + p
	log, err := c.openLog(dc, p)
	if err != nil {
		return err
	}
	// wal.Durability is an interface: a typed-nil *wal.Log must become a
	// true nil so servers see "no durability".
	var durable wal.Durability
	if log != nil {
		durable = log
	}
	switch c.cfg.Protocol {
	case COPS:
		s, err := cops.NewServer(cops.Config{
			DC: dc, Part: p, NumDCs: c.cfg.DCs, NumParts: c.cfg.Partitions,
			MaxVersions: c.cfg.MaxVersions,
			StoreShards: c.cfg.StoreShards,
			Durable:     durable,
			Slow:        c.cfg.Slow,
		}, c.net)
		if err != nil {
			closeLog(log)
			return err
		}
		c.copsServers[idx] = s
	case CCLO:
		s, err := cclo.NewServer(cclo.Config{
			DC: dc, Part: p, NumDCs: c.cfg.DCs, NumParts: c.cfg.Partitions,
			GCWindow:    c.cfg.ReaderGCWindow,
			MaxVersions: c.cfg.MaxVersions,
			StoreShards: c.cfg.StoreShards,
			Durable:     durable,
			Slow:        c.cfg.Slow,
		}, c.net)
		if err != nil {
			closeLog(log)
			return err
		}
		c.ccloServers[idx] = s
	default:
		clock := core.ClockHLC
		if c.cfg.Protocol == Cure {
			clock = core.ClockPhysical
		}
		if c.cfg.ClockOverride != nil {
			clock = *c.cfg.ClockOverride
		}
		s, err := core.NewServer(core.Config{
			DC: dc, Part: p, NumDCs: c.cfg.DCs, NumParts: c.cfg.Partitions,
			Clock:          clock,
			Skew:           c.skews[idx],
			StabilizeEvery: c.cfg.StabilizeEvery,
			RepFlushEvery:  c.cfg.RepFlushEvery,
			MaxVersions:    c.cfg.MaxVersions,
			StoreShards:    c.cfg.StoreShards,
			Durable:        durable,
			Slow:           c.cfg.Slow,
		}, c.net)
		if err != nil {
			closeLog(log)
			return err
		}
		c.coreServers[idx] = s
	}
	c.logMu.Lock()
	c.logs[idx] = log
	c.logMu.Unlock()
	return nil
}

// fsyncP99 is the admission gate's durability overload signal: the worst
// p99 fsync delay across every partition WAL (0 when durability is off).
func (c *Cluster) fsyncP99() time.Duration {
	var worst time.Duration
	c.logMu.RLock()
	for _, l := range c.logs {
		if l == nil {
			continue
		}
		if p := l.Stats().FsyncDelay.Percentile(99); p > worst {
			worst = p
		}
	}
	c.logMu.RUnlock()
	return worst
}

func closeLog(l *wal.Log) {
	if l != nil {
		l.Close()
	}
}

// stopServer closes the (dc,p) partition server and its WAL, clearing the
// slots. Safe on partially started clusters.
func (c *Cluster) stopServer(idx int) {
	switch {
	case c.coreServers != nil && c.coreServers[idx] != nil:
		c.coreServers[idx].Close()
		c.coreServers[idx] = nil
	case c.ccloServers != nil && c.ccloServers[idx] != nil:
		c.ccloServers[idx].Close()
		c.ccloServers[idx] = nil
	case c.copsServers != nil && c.copsServers[idx] != nil:
		c.copsServers[idx].Close()
		c.copsServers[idx] = nil
	}
	c.logMu.Lock()
	log := c.logs[idx]
	c.logs[idx] = nil
	c.logMu.Unlock()
	closeLog(log)
}

// RestartPartition stops the (dc,p) partition server — flushed or not,
// every acknowledged write is already on disk — and starts a fresh server
// over the same data directory, driving WAL recovery. It requires DataDir;
// tests use it as the in-process stand-in for kill -9 + restart (the torn
// final record a real crash can leave is injected by the fault tests
// directly into the segment file between stop and restart).
func (c *Cluster) RestartPartition(dc, p int) error {
	if c.cfg.DataDir == "" {
		return fmt.Errorf("cluster: RestartPartition requires DataDir")
	}
	if dc < 0 || dc >= c.cfg.DCs || p < 0 || p >= c.cfg.Partitions {
		return fmt.Errorf("cluster: no such partition dc%d/p%d", dc, p)
	}
	idx := dc*c.cfg.Partitions + p
	c.stopServer(idx)
	if err := c.startServer(dc, p); err != nil {
		return err
	}
	switch {
	case c.coreServers != nil:
		c.coreServers[idx].Start()
	case c.ccloServers != nil:
		c.ccloServers[idx].Start()
	case c.copsServers != nil:
		c.copsServers[idx].Start()
	}
	return nil
}

// CrashPartition hard-kills the (dc,p) partition: the WAL is crashed first
// — discarding every byte the last fsync did not cover, exactly as a power
// cut discards the kernel page cache — and the server is then torn down,
// failing whatever was in flight. The partition stays down (its address
// unreachable) until RestartPartition brings it back over the same data
// directory. Together they are the in-process kill -9.
func (c *Cluster) CrashPartition(dc, p int) error {
	if c.cfg.DataDir == "" {
		return fmt.Errorf("cluster: CrashPartition requires DataDir")
	}
	if dc < 0 || dc >= c.cfg.DCs || p < 0 || p >= c.cfg.Partitions {
		return fmt.Errorf("cluster: no such partition dc%d/p%d", dc, p)
	}
	idx := dc*c.cfg.Partitions + p
	if l := c.logs[idx]; l != nil {
		if err := l.Crash(); err != nil {
			return err
		}
	}
	c.stopServer(idx)
	return nil
}

// WALViewOf returns the (dc,p) partition's own WAL counters (fault tests
// assert per-side effects — e.g. that a recovered tail reached the remote
// WAL exactly once), or the zero view when durability is off.
func (c *Cluster) WALViewOf(dc, p int) wal.StatsView {
	idx := dc*c.cfg.Partitions + p
	if idx < 0 || idx >= len(c.logs) || c.logs[idx] == nil {
		return wal.StatsView{}
	}
	return c.logs[idx].Stats().View()
}

// WALCursors returns the (dc,p) partition's durable replication cursor
// table (nil when durability is off).
func (c *Cluster) WALCursors(dc, p int) []wal.Cursor {
	idx := dc*c.cfg.Partitions + p
	if idx < 0 || idx >= len(c.logs) || c.logs[idx] == nil {
		return nil
	}
	return c.logs[idx].Cursors()
}

// SetInterDCLoss adjusts the simulated WAN loss at runtime (fault tests
// sever and heal cross-DC links around crashes).
func (c *Cluster) SetInterDCLoss(frac float64) { c.net.SetInterDCLoss(frac) }

// WALDir returns the (dc,p) partition's WAL directory (fault tests corrupt
// segment tails there), or "" when durability is off.
func (c *Cluster) WALDir(dc, p int) string {
	if c.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(c.cfg.DataDir, fmt.Sprintf("dc%d-p%d", dc, p))
}

// WALView aggregates WAL counters over every partition log (zero when
// durability is off).
func (c *Cluster) WALView() wal.StatsView {
	var v wal.StatsView
	for _, l := range c.logs {
		if l != nil {
			v.Merge(l.Stats().View())
		}
	}
	return v
}

// Close stops every component: servers first (draining their appends),
// then their logs, then the stabilizers and the network.
func (c *Cluster) Close() {
	for _, s := range c.coreServers {
		if s != nil {
			s.Close()
		}
	}
	for _, s := range c.ccloServers {
		if s != nil {
			s.Close()
		}
	}
	for _, s := range c.copsServers {
		if s != nil {
			s.Close()
		}
	}
	for _, l := range c.logs {
		closeLog(l)
	}
	for _, st := range c.stabs {
		st.Close()
	}
	c.muxMu.Lock()
	for _, m := range c.muxes {
		if m != nil {
			m.Close()
		}
	}
	c.muxMu.Unlock()
	c.net.Close()
}

// Ring returns the key-to-partition mapping.
func (c *Cluster) Ring() ring.Ring { return c.ring }

// Net returns the underlying in-process network (for stats).
func (c *Cluster) Net() *transport.Local { return c.net }

// NewClient attaches a new client session homed in dc.
func (c *Cluster) NewClient(dc int) (Client, error) {
	if dc < 0 || dc >= c.cfg.DCs {
		return nil, fmt.Errorf("cluster: no such DC %d", dc)
	}
	id := int(c.clientSeq[dc].Add(1))
	if c.cfg.Protocol == CCLO {
		cli, err := cclo.NewClient(cclo.ClientConfig{DC: dc, ID: id, Ring: c.ring}, c.net)
		if err != nil {
			return nil, err
		}
		c.ccloClientMu.Lock()
		c.ccloClients = append(c.ccloClients, cli)
		c.ccloClientMu.Unlock()
		c.trackRetrier(cli)
		return cli, nil
	}
	if c.cfg.Protocol == COPS {
		cli, err := cops.NewClient(cops.ClientConfig{DC: dc, ID: id, Ring: c.ring}, c.net)
		if err != nil {
			return nil, err
		}
		c.trackRetrier(cli)
		return cli, nil
	}
	mode := core.OneAndHalfRounds
	if c.cfg.Protocol == ContrarianTwoRound || c.cfg.Protocol == Cure {
		mode = core.TwoRounds
	}
	cli, err := core.NewClient(core.ClientConfig{
		DC: dc, ID: id, NumDCs: c.cfg.DCs, Ring: c.ring, Mode: mode,
	}, c.net)
	if err != nil {
		return nil, err
	}
	c.trackRetrier(cli)
	return cli, nil
}

// muxClientID is the per-DC client id reserved for the session-mux
// endpoint. clientSeq allocates ordinary ids upward from 1, so the top of
// the id space stays free.
const muxClientID = 0xFFFE

// Mux returns dc's session-mux client endpoint, creating it on first use.
// All session clients of a DC share it (and, on a real transport, its
// connection pool).
func (c *Cluster) Mux(dc int) (transport.Mux, error) {
	if dc < 0 || dc >= c.cfg.DCs {
		return nil, fmt.Errorf("cluster: no such DC %d", dc)
	}
	c.muxMu.Lock()
	defer c.muxMu.Unlock()
	if c.muxes[dc] == nil {
		m, err := c.net.AttachMux(wire.ClientAddr(dc, muxClientID), c.cfg.SocketPool)
		if err != nil {
			return nil, err
		}
		c.muxes[dc] = m
	}
	return c.muxes[dc], nil
}

// NewSessionClient opens a client session homed in dc as a logical session
// of the given tenant on the DC's shared mux endpoint, instead of
// attaching its own address. The session's local id is allocated from the
// same per-DC counter as plain client addresses, so rot identities stay
// unique across both construction paths.
func (c *Cluster) NewSessionClient(dc int, tenant uint16) (Client, error) {
	mux, err := c.Mux(dc)
	if err != nil {
		return nil, err
	}
	id := int(c.clientSeq[dc].Add(1))
	if id >= muxClientID {
		return nil, fmt.Errorf("cluster: DC %d exhausted its session id space (%d)", dc, id)
	}
	sess := wire.MakeSession(tenant, uint16(id))
	if c.cfg.Protocol == CCLO {
		cli, err := cclo.NewSessionClient(cclo.ClientConfig{DC: dc, ID: id, Ring: c.ring}, mux, sess)
		if err != nil {
			return nil, err
		}
		c.ccloClientMu.Lock()
		c.ccloClients = append(c.ccloClients, cli)
		c.ccloClientMu.Unlock()
		c.trackRetrier(cli)
		return cli, nil
	}
	if c.cfg.Protocol == COPS {
		cli, err := cops.NewSessionClient(cops.ClientConfig{DC: dc, ID: id, Ring: c.ring}, mux, sess)
		if err != nil {
			return nil, err
		}
		c.trackRetrier(cli)
		return cli, nil
	}
	mode := core.OneAndHalfRounds
	if c.cfg.Protocol == ContrarianTwoRound || c.cfg.Protocol == Cure {
		mode = core.TwoRounds
	}
	cli, err := core.NewSessionClient(core.ClientConfig{
		DC: dc, ID: id, NumDCs: c.cfg.DCs, Ring: c.ring, Mode: mode,
	}, mux, sess)
	if err != nil {
		return nil, err
	}
	c.trackRetrier(cli)
	return cli, nil
}

// TenantShed returns how many of tenant's requests the admission gate has
// shed (0 while admission is disabled).
func (c *Cluster) TenantShed(tenant uint16) uint64 {
	return c.net.AdmitStats().TenantShed(tenant)
}

// trackRetrier records a session for AdmissionView's retry aggregation
// (closed sessions keep their counts readable).
func (c *Cluster) trackRetrier(cli interface{ BusyRetries() uint64 }) {
	c.retrierMu.Lock()
	c.retriers = append(c.retriers, cli)
	c.retrierMu.Unlock()
}

// ClientBusyRetries sums the Busy-retry counters of every session this
// cluster created.
func (c *Cluster) ClientBusyRetries() uint64 {
	var sum uint64
	c.retrierMu.Lock()
	for _, cli := range c.retriers {
		sum += cli.BusyRetries()
	}
	c.retrierMu.Unlock()
	return sum
}

// AdmissionView is a frozen copy of the cluster's admission-control
// counters plus the client-side retry total (all zero while admission is
// disabled).
type AdmissionView struct {
	transport.AdmitStatsView
	ClientRetries uint64
}

// Admission returns the current admission-control counters.
func (c *Cluster) Admission() AdmissionView {
	return AdmissionView{
		AdmitStatsView: c.net.AdmitStats().View(),
		ClientRetries:  c.ClientBusyRetries(),
	}
}

// CCLOStats sums readers-check counters over every CC-LO server, plus the
// epoch-fence retry counters of every CC-LO session this cluster created.
func (c *Cluster) CCLOStats() cclo.StatsSnapshot {
	var sum cclo.StatsSnapshot
	for _, s := range c.ccloServers {
		if s == nil {
			continue
		}
		snap := s.Stats().Snapshot()
		sum.Checks += snap.Checks
		sum.KeysChecked += snap.KeysChecked
		sum.PartitionsAsked += snap.PartitionsAsked
		sum.IDsCumulative += snap.IDsCumulative
		sum.IDsDistinct += snap.IDsDistinct
		sum.CheckBytes += snap.CheckBytes
		sum.ReplicationChecks += snap.ReplicationChecks
	}
	c.ccloClientMu.Lock()
	for _, cli := range c.ccloClients {
		sum.FenceRetries += cli.FenceRetries()
	}
	c.ccloClientMu.Unlock()
	return sum
}

// Preload installs an initial version of every key directly into every
// replica's store, bypassing the protocols. keysByPartition[p] must hold
// keys owned by partition p (as built by workload.BuildKeySpace). Preloaded
// versions carry timestamp 1 from DC 0 and depend on nothing, so they are
// visible in any snapshot; benchmarks use this to stand up the paper's 1M
// keys/partition data set without paying millions of protocol PUTs.
func (c *Cluster) Preload(keysByPartition [][]string, valueSize int) error {
	if len(keysByPartition) != c.cfg.Partitions {
		return fmt.Errorf("cluster: preload expects %d partitions, got %d", c.cfg.Partitions, len(keysByPartition))
	}
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte(i)
	}
	for dc := 0; dc < c.cfg.DCs; dc++ {
		for p, keys := range keysByPartition {
			idx := dc*c.cfg.Partitions + p
			if c.cfg.Protocol == CCLO {
				c.ccloServers[idx].Preload(keys, val)
				continue
			}
			if c.cfg.Protocol == COPS {
				c.copsServers[idx].Preload(keys, val)
				continue
			}
			s := c.coreServers[idx]
			dv := make([]uint64, c.cfg.DCs)
			dv[0] = 1
			for _, k := range keys {
				s.Store().Install(k, mvstoreVersion(val, dv))
			}
		}
	}
	return nil
}

// CoreServers exposes the timestamp-based servers (tests).
func (c *Cluster) CoreServers() []*core.Server { return c.coreServers }

// CCLOServers exposes the CC-LO servers (tests).
func (c *Cluster) CCLOServers() []*cclo.Server { return c.ccloServers }

// COPSServers exposes the COPS servers (tests).
func (c *Cluster) COPSServers() []*cops.Server { return c.copsServers }
