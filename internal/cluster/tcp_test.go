package cluster

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cclo"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wire"
)

// freeAddr reserves an ephemeral localhost port for a test topology, so
// tests never flake on a hard-coded port another process holds.
func freeAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestParseTopology(t *testing.T) {
	src := `
# comment
0 0    127.0.0.1:7000
0 1    127.0.0.1:7001
0 stab 127.0.0.1:7099
1 0    127.0.0.1:7100
1 1    127.0.0.1:7101
1 stab 127.0.0.1:7199
`
	topo, err := ParseTopology(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if topo.DCs != 2 || topo.Partitions != 2 {
		t.Fatalf("topo = %d DCs, %d partitions", topo.DCs, topo.Partitions)
	}
	if topo.Directory[wire.ServerAddr(1, 1)] != "127.0.0.1:7101" {
		t.Fatalf("directory wrong: %v", topo.Directory)
	}
	if topo.Directory[wire.StabilizerAddr(0)] != "127.0.0.1:7099" {
		t.Fatalf("stabilizer missing: %v", topo.Directory)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := []string{
		"0 0",                // too few fields
		"x 0 127.0.0.1:7000", // bad dc
		"0 y 127.0.0.1:7000", // bad partition
		"0 0 a:1\n0 0 b:2",   // duplicate
		"# only comments",    // no partitions
	}
	for _, src := range cases {
		if _, err := ParseTopology(strings.NewReader(src)); err == nil {
			t.Errorf("ParseTopology(%q) succeeded, want error", src)
		}
	}
}

// TestTCPDeployment runs a 2-partition Contrarian deployment over real TCP
// sockets on localhost — the cmd/kvserver + cmd/kvctl path — and checks
// basic causal operation.
func TestTCPDeployment(t *testing.T) {
	topo := &Topology{
		DCs:        1,
		Partitions: 2,
		Directory: map[wire.Addr]string{
			wire.ServerAddr(0, 0):  freeAddr(t),
			wire.ServerAddr(0, 1):  freeAddr(t),
			wire.StabilizerAddr(0): freeAddr(t),
		},
	}
	net := transport.NewTCP(topo.Directory)
	defer net.Close()

	for p := 0; p < 2; p++ {
		s, err := core.NewServer(core.Config{
			DC: 0, Part: p, NumDCs: 1, NumParts: 2, Clock: core.ClockHLC,
		}, net)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		defer s.Close()
	}
	st, err := core.NewStabilizer(0, 2, 1, 2*time.Millisecond, net)
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.Close()

	cli, err := core.NewClient(core.ClientConfig{
		DC: 0, ID: 900, NumDCs: 1, Ring: ring.New(2), Mode: core.OneAndHalfRounds,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := cli.Put(ctx, "tcp-a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Put(ctx, "tcp-b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	kvs, err := cli.ROT(ctx, []string{"tcp-a", "tcp-b", "tcp-missing"})
	if err != nil {
		t.Fatal(err)
	}
	if string(kvs[0].Value) != "1" || string(kvs[1].Value) != "2" || kvs[2].Value != nil {
		t.Fatalf("ROT over TCP returned %q %q %q", kvs[0].Value, kvs[1].Value, kvs[2].Value)
	}

	// Regression: a FRESH client whose first operation is a multi-partition
	// ROT needs warmed return paths — without Warm, the non-coordinator
	// partition cannot dial back and the ROT would time out.
	fresh, err := core.NewClient(core.ClientConfig{
		DC: 0, ID: 901, NumDCs: 1, Ring: ring.New(2), Mode: core.OneAndHalfRounds,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.Warm(ctx); err != nil {
		t.Fatal(err)
	}
	kvs, err = fresh.ROT(ctx, []string{"tcp-a", "tcp-b"})
	if err != nil {
		t.Fatal(err)
	}
	if string(kvs[0].Value) != "1" || string(kvs[1].Value) != "2" {
		t.Fatalf("fresh-client ROT returned %q %q", kvs[0].Value, kvs[1].Value)
	}
}

// TestTCPDeploymentCCLO exercises the CC-LO readers-check path over real
// sockets, including a cross-partition dependency.
func TestTCPDeploymentCCLO(t *testing.T) {
	topo := &Topology{
		DCs:        1,
		Partitions: 2,
		Directory: map[wire.Addr]string{
			wire.ServerAddr(0, 0): freeAddr(t),
			wire.ServerAddr(0, 1): freeAddr(t),
		},
	}
	net := transport.NewTCP(topo.Directory)
	defer net.Close()
	for p := 0; p < 2; p++ {
		s, err := cclo.NewServer(cclo.Config{DC: 0, Part: p, NumDCs: 1, NumParts: 2}, net)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		defer s.Close()
	}
	cli, err := cclo.NewClient(cclo.ClientConfig{DC: 0, ID: 905, Ring: ring.New(2)}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	r := ring.New(2)
	x := "x"
	y := ""
	for i := 0; ; i++ {
		y = strings.Repeat("y", i+1)
		if r.Owner(y) != r.Owner(x) {
			break
		}
	}
	if _, err := cli.Put(ctx, x, []byte("X0")); err != nil {
		t.Fatal(err)
	}
	// This PUT depends on x (cross-partition readers check over TCP).
	if _, err := cli.Put(ctx, y, []byte("Y0")); err != nil {
		t.Fatal(err)
	}
	kvs, err := cli.ROT(ctx, []string{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if string(kvs[0].Value) != "X0" || string(kvs[1].Value) != "Y0" {
		t.Fatalf("ROT over TCP returned %q %q", kvs[0].Value, kvs[1].Value)
	}
}
