package cluster

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/wire"
)

// Topology maps server addresses to TCP endpoints for real deployments
// (cmd/kvserver, cmd/kvctl).
type Topology struct {
	DCs        int
	Partitions int
	Directory  map[wire.Addr]string
}

// ParseTopology reads a topology description, one entry per line:
//
//	<dc> <partition|stab> <host:port>
//
// Blank lines and lines starting with '#' are ignored. The DC and
// partition counts are inferred from the entries.
func ParseTopology(r io.Reader) (*Topology, error) {
	t := &Topology{Directory: make(map[wire.Addr]string)}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("topology line %d: want 3 fields, got %d", line, len(fields))
		}
		dc, err := strconv.Atoi(fields[0])
		if err != nil || dc < 0 || dc > wire.MaxDC {
			return nil, fmt.Errorf("topology line %d: bad dc %q (max %d)", line, fields[0], wire.MaxDC)
		}
		if dc+1 > t.DCs {
			t.DCs = dc + 1
		}
		var addr wire.Addr
		if fields[1] == "stab" {
			addr = wire.StabilizerAddr(dc)
		} else {
			part, err := strconv.Atoi(fields[1])
			if err != nil || part < 0 || part > wire.MaxPartition {
				return nil, fmt.Errorf("topology line %d: bad partition %q (max %d)", line, fields[1], wire.MaxPartition)
			}
			if part+1 > t.Partitions {
				t.Partitions = part + 1
			}
			addr = wire.ServerAddr(dc, part)
		}
		if _, dup := t.Directory[addr]; dup {
			return nil, fmt.Errorf("topology line %d: duplicate entry for %v", line, addr)
		}
		t.Directory[addr] = fields[2]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Partitions == 0 {
		return nil, fmt.Errorf("topology: no partitions defined")
	}
	return t, nil
}
