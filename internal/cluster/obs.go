package cluster

import (
	"strconv"

	"repro/internal/metrics"
)

// slug is the Protocol's metric-label value: the figure name flattened to
// the Prometheus label-value conventions (no spaces to quote in queries).
func (p Protocol) slug() string {
	switch p {
	case Contrarian:
		return "contrarian"
	case ContrarianTwoRound:
		return "contrarian2r"
	case Cure:
		return "cure"
	case CCLO:
		return "cclo"
	case COPS:
		return "cops"
	default:
		return "unknown"
	}
}

// RegisterMetrics exposes the whole simulated cluster under one registry:
// the shared transport, every partition server's per-op histograms,
// replication-lag gauges and store occupancy, every WAL, and (for CC-LO)
// the aggregate client fence-retry counter. Series are labeled by family,
// dc, and partition.
//
// Call it at most once per cluster, after Start. Partition servers
// restarted afterwards (crash tests) allocate fresh stats structs and
// detach from the registered series; the benchmark and serving paths never
// restart partitions, so scrapes there stay live.
func (c *Cluster) RegisterMetrics(r *metrics.Registry) {
	c.net.Stats().Register(r)
	fam := metrics.Label{Name: "family", Value: c.cfg.Protocol.slug()}
	if c.cfg.AdmitLimit > 0 {
		c.net.AdmitStats().Register(r, fam)
		r.CounterFunc("kv_admission_client_retries_total",
			"Client-side Busy retries, summed over all sessions.",
			func() float64 { return float64(c.ClientBusyRetries()) }, fam)
	}
	for dc := 0; dc < c.cfg.DCs; dc++ {
		for p := 0; p < c.cfg.Partitions; p++ {
			idx := dc*c.cfg.Partitions + p
			labels := []metrics.Label{
				fam,
				{Name: "dc", Value: strconv.Itoa(dc)},
				{Name: "partition", Value: strconv.Itoa(p)},
			}
			switch {
			case c.coreServers != nil && c.coreServers[idx] != nil:
				c.coreServers[idx].RegisterMetrics(r, labels...)
			case c.ccloServers != nil && c.ccloServers[idx] != nil:
				c.ccloServers[idx].RegisterMetrics(r, labels...)
			case c.copsServers != nil && c.copsServers[idx] != nil:
				c.copsServers[idx].RegisterMetrics(r, labels...)
			}
			if l := c.logs[idx]; l != nil {
				l.Stats().Register(r, labels...)
			}
		}
	}
	if c.cfg.Protocol == CCLO {
		r.CounterFunc("kv_cclo_fence_retries_total",
			"Client-side epoch-fence ROT retries, summed over all sessions.",
			func() float64 {
				var sum uint64
				c.ccloClientMu.Lock()
				for _, cli := range c.ccloClients {
					sum += cli.FenceRetries()
				}
				c.ccloClientMu.Unlock()
				return float64(sum)
			}, fam)
	}
}
