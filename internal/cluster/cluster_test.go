package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mvstore"
	"repro/internal/ring"
	"repro/internal/transport"
)

var allProtocols = []Protocol{Contrarian, ContrarianTwoRound, Cure, CCLO, COPS}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// distinctPartKeys returns two keys owned by different partitions.
func distinctPartKeys(r ring.Ring, tag string) (string, string) {
	x := fmt.Sprintf("x-%s", tag)
	for i := 0; ; i++ {
		y := fmt.Sprintf("y-%s-%d", tag, i)
		if r.Owner(y) != r.Owner(x) {
			return x, y
		}
	}
}

func seqVal(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

func seqOf(b []byte) uint64 {
	if len(b) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func startCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestStoreShardsKnob pins the end-to-end shard knob: out-of-range values
// are rejected up front, and an in-range value still yields a working
// cluster for every protocol family (the engine rounds it up internally).
func TestStoreShardsKnob(t *testing.T) {
	if _, err := Start(Config{StoreShards: -1, Latency: NoLatency()}); err == nil {
		t.Fatal("negative StoreShards accepted")
	}
	if _, err := Start(Config{StoreShards: 1 << 20, Latency: NoLatency()}); err == nil {
		t.Fatal("StoreShards beyond store.MaxShards accepted")
	}
	for _, p := range []Protocol{Contrarian, CCLO, COPS} {
		t.Run(p.String(), func(t *testing.T) {
			c := startCluster(t, Config{Protocol: p, Partitions: 1, StoreShards: 2, Latency: NoLatency()})
			ctx := testCtx(t)
			cli, err := c.NewClient(0)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			if _, err := cli.Put(ctx, "k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			if got, err := cli.Get(ctx, "k"); err != nil || string(got) != "v" {
				t.Fatalf("get over a 2-shard store: %q %v", got, err)
			}
		})
	}
}

func TestPutGetROTAllProtocols(t *testing.T) {
	for _, p := range allProtocols {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, Config{Protocol: p, DCs: 1, Partitions: 4, Latency: NoLatency()})
			ctx := testCtx(t)
			cli, err := c.NewClient(0)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()

			if _, err := cli.Put(ctx, "album", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if _, err := cli.Put(ctx, "photo", []byte("p1")); err != nil {
				t.Fatal(err)
			}
			got, err := cli.Get(ctx, "album")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "v1" {
				t.Fatalf("Get(album) = %q, want v1 (read-your-writes)", got)
			}
			kvs, err := cli.ROT(ctx, []string{"album", "photo", "missing"})
			if err != nil {
				t.Fatal(err)
			}
			if string(kvs[0].Value) != "v1" || string(kvs[1].Value) != "p1" {
				t.Fatalf("ROT = %q,%q", kvs[0].Value, kvs[1].Value)
			}
			if kvs[2].Value != nil {
				t.Fatalf("missing key returned %q, want nil", kvs[2].Value)
			}
		})
	}
}

func TestOverwriteVisible(t *testing.T) {
	for _, p := range allProtocols {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, Config{Protocol: p, DCs: 1, Partitions: 2, Latency: NoLatency()})
			ctx := testCtx(t)
			cli, _ := c.NewClient(0)
			defer cli.Close()
			for i := uint64(1); i <= 10; i++ {
				if _, err := cli.Put(ctx, "k", seqVal(i)); err != nil {
					t.Fatal(err)
				}
				got, err := cli.Get(ctx, "k")
				if err != nil {
					t.Fatal(err)
				}
				if seqOf(got) != i {
					t.Fatalf("after put %d read back %d", i, seqOf(got))
				}
			}
		})
	}
}

// TestCausalSnapshotRandomized is the central correctness test, the
// randomized version of the paper's Figure 1 anomaly. A writer issues the
// causally chained PUT(x, i); PUT(y, i) while readers run ROT{x, y}. A
// causally consistent snapshot may be stale, but it can never hold y = i
// with x < i: the version of y causally depends on version i of x.
func TestCausalSnapshotRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	for _, p := range allProtocols {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			lat := &transport.LatencyModel{IntraDC: 100 * time.Microsecond, JitterFrac: 1.0}
			c := startCluster(t, Config{Protocol: p, DCs: 1, Partitions: 4, Latency: lat})
			ctx := testCtx(t)
			x, y := distinctPartKeys(c.Ring(), "snap")

			var stop atomic.Bool
			var wg sync.WaitGroup
			errCh := make(chan error, 16)

			wg.Add(1)
			go func() {
				defer wg.Done()
				w, err := c.NewClient(0)
				if err != nil {
					errCh <- err
					return
				}
				defer w.Close()
				for i := uint64(1); !stop.Load(); i++ {
					if _, err := w.Put(ctx, x, seqVal(i)); err != nil {
						errCh <- err
						return
					}
					if _, err := w.Put(ctx, y, seqVal(i)); err != nil {
						errCh <- err
						return
					}
				}
			}()

			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					cli, err := c.NewClient(0)
					if err != nil {
						errCh <- err
						return
					}
					defer cli.Close()
					for !stop.Load() {
						kvs, err := cli.ROT(ctx, []string{x, y})
						if err != nil {
							errCh <- err
							return
						}
						xi, yi := seqOf(kvs[0].Value), seqOf(kvs[1].Value)
						if yi > xi {
							errCh <- fmt.Errorf("causal snapshot violation: x=%d y=%d (y depends on x@%d)", xi, yi, yi)
							return
						}
					}
				}()
			}

			time.Sleep(2 * time.Second)
			stop.Store(true)
			wg.Wait()
			close(errCh)
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCausalChainAcrossClients checks transitivity through reads: writer A
// writes x; writer B reads x and then writes y (so y depends on x through
// B's session); readers must never see the new y with the old x.
func TestCausalChainAcrossClients(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	for _, p := range allProtocols {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			lat := &transport.LatencyModel{IntraDC: 100 * time.Microsecond, JitterFrac: 1.0}
			c := startCluster(t, Config{Protocol: p, DCs: 1, Partitions: 4, Latency: lat})
			ctx := testCtx(t)
			x, y := distinctPartKeys(c.Ring(), "chain")

			var stop atomic.Bool
			var wg sync.WaitGroup
			errCh := make(chan error, 16)

			// Writer A bumps x.
			wg.Add(1)
			go func() {
				defer wg.Done()
				a, err := c.NewClient(0)
				if err != nil {
					errCh <- err
					return
				}
				defer a.Close()
				for i := uint64(1); !stop.Load(); i++ {
					if _, err := a.Put(ctx, x, seqVal(i)); err != nil {
						errCh <- err
						return
					}
				}
			}()

			// Writer B copies x into y; y's value causally depends on the x
			// version it read.
			wg.Add(1)
			go func() {
				defer wg.Done()
				b, err := c.NewClient(0)
				if err != nil {
					errCh <- err
					return
				}
				defer b.Close()
				for !stop.Load() {
					v, err := b.Get(ctx, x)
					if err != nil {
						errCh <- err
						return
					}
					if v == nil {
						continue
					}
					if _, err := b.Put(ctx, y, v); err != nil {
						errCh <- err
						return
					}
				}
			}()

			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					cli, err := c.NewClient(0)
					if err != nil {
						errCh <- err
						return
					}
					defer cli.Close()
					for !stop.Load() {
						kvs, err := cli.ROT(ctx, []string{x, y})
						if err != nil {
							errCh <- err
							return
						}
						xi, yi := seqOf(kvs[0].Value), seqOf(kvs[1].Value)
						if yi > xi {
							errCh <- fmt.Errorf("cross-client causality violation: x=%d y=%d", xi, yi)
							return
						}
					}
				}()
			}

			time.Sleep(2 * time.Second)
			stop.Store(true)
			wg.Wait()
			close(errCh)
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEventualVisibilityTwoDCs(t *testing.T) {
	for _, p := range allProtocols {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, Config{Protocol: p, DCs: 2, Partitions: 4, Latency: NoLatency()})
			ctx := testCtx(t)
			w, _ := c.NewClient(0)
			defer w.Close()
			r, _ := c.NewClient(1)
			defer r.Close()

			if _, err := w.Put(ctx, "geo", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				got, err := r.Get(ctx, "geo")
				if err != nil {
					t.Fatal(err)
				}
				if string(got) == "hello" {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			t.Fatal("value never became visible in remote DC")
		})
	}
}

// TestCausalSnapshotTwoDCs runs the chained-writer checker with the writer
// and readers in different DCs: remote readers may see stale data but never
// an inconsistent snapshot.
func TestCausalSnapshotTwoDCs(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	for _, p := range allProtocols {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			lat := &transport.LatencyModel{IntraDC: 100 * time.Microsecond, InterDC: time.Millisecond, JitterFrac: 1.0}
			c := startCluster(t, Config{Protocol: p, DCs: 2, Partitions: 4, Latency: lat})
			ctx := testCtx(t)
			x, y := distinctPartKeys(c.Ring(), "geo-snap")

			var stop atomic.Bool
			var wg sync.WaitGroup
			errCh := make(chan error, 8)

			wg.Add(1)
			go func() {
				defer wg.Done()
				w, err := c.NewClient(0)
				if err != nil {
					errCh <- err
					return
				}
				defer w.Close()
				for i := uint64(1); !stop.Load(); i++ {
					if _, err := w.Put(ctx, x, seqVal(i)); err != nil {
						errCh <- err
						return
					}
					if _, err := w.Put(ctx, y, seqVal(i)); err != nil {
						errCh <- err
						return
					}
				}
			}()

			for dc := 0; dc < 2; dc++ {
				wg.Add(1)
				go func(dc int) {
					defer wg.Done()
					cli, err := c.NewClient(dc)
					if err != nil {
						errCh <- err
						return
					}
					defer cli.Close()
					for !stop.Load() {
						kvs, err := cli.ROT(ctx, []string{x, y})
						if err != nil {
							errCh <- err
							return
						}
						xi, yi := seqOf(kvs[0].Value), seqOf(kvs[1].Value)
						if yi > xi {
							errCh <- fmt.Errorf("dc%d snapshot violation: x=%d y=%d", dc, xi, yi)
							return
						}
					}
				}(dc)
			}

			time.Sleep(2 * time.Second)
			stop.Store(true)
			wg.Wait()
			close(errCh)
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConvergenceTwoDCs checks last-writer-wins convergence: after
// concurrent writes in both DCs quiesce, all replicas agree on every key.
func TestConvergenceTwoDCs(t *testing.T) {
	for _, p := range allProtocols {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, Config{Protocol: p, DCs: 2, Partitions: 2, Latency: NoLatency()})
			ctx := testCtx(t)

			var wg sync.WaitGroup
			for dc := 0; dc < 2; dc++ {
				wg.Add(1)
				go func(dc int) {
					defer wg.Done()
					cli, _ := c.NewClient(dc)
					defer cli.Close()
					for i := 0; i < 50; i++ {
						key := fmt.Sprintf("conv-%d", i%10)
						cli.Put(ctx, key, []byte(fmt.Sprintf("dc%d-%d", dc, i)))
					}
				}(dc)
			}
			wg.Wait()
			time.Sleep(500 * time.Millisecond) // replication + stabilization quiesce

			latest := make(map[string]map[string]string) // key -> server -> "ts/dc/value"
			record := func(server, key string, ts uint64, srcDC uint8, val []byte) {
				if latest[key] == nil {
					latest[key] = make(map[string]string)
				}
				latest[key][server] = fmt.Sprintf("%d/%d/%s", ts, srcDC, val)
			}
			switch {
			case p == CCLO:
				for i, s := range c.CCLOServers() {
					name := fmt.Sprintf("s%d", i)
					s.ForEachLatest(func(k string, v []byte, ts uint64, srcDC uint8) {
						record(name, k, ts, srcDC, v)
					})
				}
			case p == COPS:
				for i, s := range c.COPSServers() {
					name := fmt.Sprintf("s%d", i)
					s.ForEachLatest(func(k string, v []byte, ts uint64, srcDC uint8) {
						record(name, k, ts, srcDC, v)
					})
				}
			default:
				for i, s := range c.CoreServers() {
					name := fmt.Sprintf("s%d", i)
					s.Store().ForEachLatest(func(k string, ver mvstore.Version) {
						record(name, k, ver.TS, ver.SrcDC, ver.Value)
					})
				}
			}
			for key, per := range latest {
				var want string
				for _, v := range per {
					if want == "" {
						want = v
					} else if v != want {
						t.Fatalf("key %q diverged: %v", key, per)
					}
				}
				if len(per) != 2 {
					t.Fatalf("key %q present on %d replicas, want 2", key, len(per))
				}
			}
		})
	}
}

// TestCureBlocksOnSkew verifies the qualitative Figure 4 effect: under
// clock skew, Cure's ROT latency has a floor near the skew, while
// Contrarian's HLC-based ROTs do not block.
func TestCureBlocksOnSkew(t *testing.T) {
	measure := func(p Protocol) time.Duration {
		c := startCluster(t, Config{
			Protocol: p, DCs: 1, Partitions: 4,
			Latency: NoLatency(), MaxSkew: 5 * time.Millisecond, Seed: 42,
		})
		ctx := testCtx(t)
		cli, _ := c.NewClient(0)
		defer cli.Close()
		x, y := distinctPartKeys(c.Ring(), "skew")
		cli.Put(ctx, x, []byte("a"))
		cli.Put(ctx, y, []byte("b"))
		start := time.Now()
		const n = 30
		for i := 0; i < n; i++ {
			if _, err := cli.ROT(ctx, []string{x, y}); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / n
	}
	cure := measure(Cure)
	contrarian := measure(Contrarian)
	t.Logf("avg ROT latency: cure=%v contrarian=%v", cure, contrarian)
	if cure < 2*contrarian || cure < 500*time.Microsecond {
		t.Fatalf("expected Cure to block on skew: cure=%v contrarian=%v", cure, contrarian)
	}
}

// TestContrarianModesEquivalent runs the same workload under 1 1/2- and
// 2-round modes and checks both return consistent, fresh results.
func TestContrarianModesEquivalent(t *testing.T) {
	for _, p := range []Protocol{Contrarian, ContrarianTwoRound} {
		t.Run(p.String(), func(t *testing.T) {
			c := startCluster(t, Config{Protocol: p, DCs: 1, Partitions: 4, Latency: NoLatency()})
			ctx := testCtx(t)
			cli, _ := c.NewClient(0)
			defer cli.Close()
			keys := make([]string, 6)
			for i := range keys {
				keys[i] = fmt.Sprintf("mode-%d", i)
				if _, err := cli.Put(ctx, keys[i], seqVal(uint64(i+1))); err != nil {
					t.Fatal(err)
				}
			}
			kvs, err := cli.ROT(ctx, keys)
			if err != nil {
				t.Fatal(err)
			}
			for i, kv := range kvs {
				if seqOf(kv.Value) != uint64(i+1) {
					t.Fatalf("key %s = %d, want %d", kv.Key, seqOf(kv.Value), i+1)
				}
			}
		})
	}
}

func TestManyClientsSmoke(t *testing.T) {
	for _, p := range allProtocols {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, Config{Protocol: p, DCs: 1, Partitions: 4, Latency: NoLatency()})
			ctx := testCtx(t)
			var wg sync.WaitGroup
			errs := make(chan error, 32)
			for w := 0; w < 16; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cli, err := c.NewClient(0)
					if err != nil {
						errs <- err
						return
					}
					defer cli.Close()
					for i := 0; i < 30; i++ {
						k := fmt.Sprintf("smoke-%d", (w*31+i)%64)
						if i%5 == 0 {
							if _, err := cli.Put(ctx, k, seqVal(uint64(i))); err != nil {
								errs <- err
								return
							}
						} else {
							if _, err := cli.ROT(ctx, []string{k, fmt.Sprintf("smoke-%d", (i+1)%64)}); err != nil {
								errs <- err
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		})
	}
}
