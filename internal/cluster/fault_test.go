package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/transport"
)

// TestReplicationSurvivesWANLoss injects 30% cross-DC message loss and
// checks that acked, retried replication still delivers every write: a
// DC0 write becomes visible in DC1 despite the drops.
func TestReplicationSurvivesWANLoss(t *testing.T) {
	for _, p := range []Protocol{Contrarian, CCLO} {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			lat := &transport.LatencyModel{
				IntraDC:     50 * time.Microsecond,
				InterDC:     200 * time.Microsecond,
				InterDCLoss: 0.3,
			}
			c := startCluster(t, Config{Protocol: p, DCs: 2, Partitions: 2, Latency: lat})
			ctx := testCtx(t)
			w, _ := c.NewClient(0)
			defer w.Close()
			r, _ := c.NewClient(1)
			defer r.Close()

			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("lossy-%d", i)
				if _, err := w.Put(ctx, key, seqVal(uint64(i+1))); err != nil {
					t.Fatal(err)
				}
			}
			deadline := time.Now().Add(20 * time.Second)
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("lossy-%d", i)
				for {
					got, err := r.Get(ctx, key)
					if err != nil {
						t.Fatal(err)
					}
					if seqOf(got) == uint64(i+1) {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("key %s never visible under 30%% WAN loss", key)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			if _, _, dropped := c.Net().Stats().Snapshot(); dropped == 0 {
				t.Fatal("loss injection did not drop anything; test is vacuous")
			}
		})
	}
}

// TestCCLOSessionGuaranteesAcrossCrashes drives CC-LO sessions through
// repeated kill -9 + restart cycles of both partitions and holds every
// recorded operation to the checker's session guarantees: observed writes
// must never rewind for a session once acknowledged, across however many
// recoveries happen in between. The long ReaderGCWindow keeps the
// persisted old-reader records live across each restart (the knob this PR
// adds for exactly this kind of deterministic crash test).
func TestCCLOSessionGuaranteesAcrossCrashes(t *testing.T) {
	c := startCluster(t, Config{
		Protocol:       CCLO,
		DCs:            2,
		Partitions:     2,
		Latency:        NoLatency(),
		DataDir:        t.TempDir(),
		ReaderGCWindow: 30 * time.Second,
	})
	h := check.New()
	kx, ky := "fx", ""
	for i := 0; ; i++ {
		ky = fmt.Sprintf("fy%d", i)
		if c.Ring().Owner(ky) != c.Ring().Owner(kx) {
			break
		}
	}
	w, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	wrec, rrec := h.Client("writer"), h.Client("reader")

	op := func(ctx context.Context, round int) {
		xv := fmt.Sprintf("x-%d", round)
		yv := fmt.Sprintf("y-%d", round)
		if ts, err := w.Put(ctx, kx, []byte(xv)); err == nil {
			wrec.Put(kx, xv, ts)
		}
		if ts, err := w.Put(ctx, ky, []byte(yv)); err == nil {
			wrec.Put(ky, yv, ts)
		}
		if kvs, err := r.ROT(ctx, []string{kx, ky}); err == nil {
			reads := make([]check.Read, len(kvs))
			for i, kv := range kvs {
				reads[i] = check.Read{Key: kv.Key, Val: string(kv.Value), TS: kv.TS}
			}
			rrec.ReadTx(reads)
		}
	}
	ctx := testCtx(t)
	for round := 1; round <= 12; round++ {
		op(ctx, round)
		if round%4 == 0 {
			// Alternate which partition dies; both reads and the readers
			// checks between kx and ky cross the crashed node.
			p := (round / 4) % 2
			if err := c.CrashPartition(0, p); err != nil {
				t.Fatal(err)
			}
			if err := c.RestartPartition(0, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := h.Err(); err != nil {
		for _, v := range h.Violations() {
			t.Error(v)
		}
		t.FailNow()
	}
	if puts, reads := h.Ops(); puts == 0 || reads == 0 {
		t.Fatalf("vacuous run: %d puts, %d reads", puts, reads)
	}
}

// TestLogicalClockLaggardPinsGSS demonstrates the §4 "Freshness of the
// snapshots" problem that motivates HLCs: with plain logical clocks, a
// partition that receives no PUTs never advances its clock, its VV entry
// pins the remote GSS, and a DC0 write stays invisible in DC1 until every
// partition has moved — HLCs avoid this because idle clocks advance with
// physical time.
func TestLogicalClockLaggardPinsGSS(t *testing.T) {
	logical := core.ClockLogical
	c := startCluster(t, Config{
		Protocol:      Contrarian,
		DCs:           2,
		Partitions:    4,
		Latency:       NoLatency(),
		ClockOverride: &logical,
	})
	ctx := testCtx(t)
	w, _ := c.NewClient(0)
	defer w.Close()
	r, _ := c.NewClient(1)
	defer r.Close()

	if _, err := w.Put(ctx, "pinned", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Idle laggard partitions pin the GSS: the write must NOT become
	// visible remotely while the other partitions' logical clocks are
	// stuck at zero.
	time.Sleep(300 * time.Millisecond)
	if got, err := r.Get(ctx, "pinned"); err != nil {
		t.Fatal(err)
	} else if got != nil {
		t.Fatalf("write visible remotely despite pinned GSS (got %q); laggard model broken", got)
	}

	// Touching every partition advances every logical clock past the
	// marker's timestamp, unpinning the GSS.
	for round := 0; round < 8; round++ {
		for i := 0; i < 64; i++ {
			if _, err := w.Put(ctx, fmt.Sprintf("unpin-%d", i), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := r.Get(ctx, "pinned")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("write never became visible after unpinning all partitions")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHLCAvoidsLaggardPinning is the counterpart: same scenario on HLCs,
// where idle partitions' clocks advance with physical time and the write
// becomes visible promptly with no background traffic at all.
func TestHLCAvoidsLaggardPinning(t *testing.T) {
	c := startCluster(t, Config{Protocol: Contrarian, DCs: 2, Partitions: 4, Latency: NoLatency()})
	ctx := testCtx(t)
	w, _ := c.NewClient(0)
	defer w.Close()
	r, _ := c.NewClient(1)
	defer r.Close()
	if _, err := w.Put(ctx, "fresh", []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := r.Get(ctx, "fresh")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("HLC visibility took more than 5s with idle partitions")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
