package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// TestReplicationSurvivesWANLoss injects 30% cross-DC message loss and
// checks that acked, retried replication still delivers every write: a
// DC0 write becomes visible in DC1 despite the drops.
func TestReplicationSurvivesWANLoss(t *testing.T) {
	for _, p := range []Protocol{Contrarian, CCLO} {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			lat := &transport.LatencyModel{
				IntraDC:     50 * time.Microsecond,
				InterDC:     200 * time.Microsecond,
				InterDCLoss: 0.3,
			}
			c := startCluster(t, Config{Protocol: p, DCs: 2, Partitions: 2, Latency: lat})
			ctx := testCtx(t)
			w, _ := c.NewClient(0)
			defer w.Close()
			r, _ := c.NewClient(1)
			defer r.Close()

			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("lossy-%d", i)
				if _, err := w.Put(ctx, key, seqVal(uint64(i+1))); err != nil {
					t.Fatal(err)
				}
			}
			deadline := time.Now().Add(20 * time.Second)
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("lossy-%d", i)
				for {
					got, err := r.Get(ctx, key)
					if err != nil {
						t.Fatal(err)
					}
					if seqOf(got) == uint64(i+1) {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("key %s never visible under 30%% WAN loss", key)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			if _, _, dropped := c.Net().Stats().Snapshot(); dropped == 0 {
				t.Fatal("loss injection did not drop anything; test is vacuous")
			}
		})
	}
}

// TestLogicalClockLaggardPinsGSS demonstrates the §4 "Freshness of the
// snapshots" problem that motivates HLCs: with plain logical clocks, a
// partition that receives no PUTs never advances its clock, its VV entry
// pins the remote GSS, and a DC0 write stays invisible in DC1 until every
// partition has moved — HLCs avoid this because idle clocks advance with
// physical time.
func TestLogicalClockLaggardPinsGSS(t *testing.T) {
	logical := core.ClockLogical
	c := startCluster(t, Config{
		Protocol:      Contrarian,
		DCs:           2,
		Partitions:    4,
		Latency:       NoLatency(),
		ClockOverride: &logical,
	})
	ctx := testCtx(t)
	w, _ := c.NewClient(0)
	defer w.Close()
	r, _ := c.NewClient(1)
	defer r.Close()

	if _, err := w.Put(ctx, "pinned", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Idle laggard partitions pin the GSS: the write must NOT become
	// visible remotely while the other partitions' logical clocks are
	// stuck at zero.
	time.Sleep(300 * time.Millisecond)
	if got, err := r.Get(ctx, "pinned"); err != nil {
		t.Fatal(err)
	} else if got != nil {
		t.Fatalf("write visible remotely despite pinned GSS (got %q); laggard model broken", got)
	}

	// Touching every partition advances every logical clock past the
	// marker's timestamp, unpinning the GSS.
	for round := 0; round < 8; round++ {
		for i := 0; i < 64; i++ {
			if _, err := w.Put(ctx, fmt.Sprintf("unpin-%d", i), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := r.Get(ctx, "pinned")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("write never became visible after unpinning all partitions")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHLCAvoidsLaggardPinning is the counterpart: same scenario on HLCs,
// where idle partitions' clocks advance with physical time and the write
// becomes visible promptly with no background traffic at all.
func TestHLCAvoidsLaggardPinning(t *testing.T) {
	c := startCluster(t, Config{Protocol: Contrarian, DCs: 2, Partitions: 4, Latency: NoLatency()})
	ctx := testCtx(t)
	w, _ := c.NewClient(0)
	defer w.Close()
	r, _ := c.NewClient(1)
	defer r.Close()
	if _, err := w.Put(ctx, "fresh", []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := r.Get(ctx, "fresh")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("HLC visibility took more than 5s with idle partitions")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
