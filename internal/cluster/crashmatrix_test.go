package cluster

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// walSegments lists the (dc,p) partition's WAL segment file names, oldest
// first, and the newest one's sequence number.
func walSegments(t *testing.T, c *Cluster, dc, p int) (segs []string, newestSeq uint64) {
	t.Helper()
	entries, err := os.ReadDir(c.WALDir(dc, p))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatalf("no WAL segments in %s", c.WALDir(dc, p))
	}
	sort.Strings(segs)
	if _, err := fmt.Sscanf(segs[len(segs)-1], "seg-%d.wal", &newestSeq); err != nil {
		t.Fatal(err)
	}
	return segs, newestSeq
}

// waitRemote polls until key is visible in dc with value want.
func waitRemote(t *testing.T, cli Client, ctx context.Context, key string, want []byte) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, err := cli.Get(ctx, key)
		if err == nil && bytes.Equal(got, want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("key %s never visible remotely (last=%q err=%v)", key, got, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrashMatrixPostFsyncPreReplicate is the stage the wall-clock sequence
// hack could never handle exactly-once: the WAN is severed so acknowledged
// writes pile up durable-but-unreplicated, the origin is hard-killed and
// restarted, and the recovered tail must reach the remote DC — exactly
// once, asserted by the remote WAL's append counter (installs are
// idempotent, so the store alone cannot distinguish one delivery from
// five).
func TestCrashMatrixPostFsyncPreReplicate(t *testing.T) {
	for _, proto := range []Protocol{Contrarian, CCLO, COPS} {
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, Config{
				Protocol:   proto,
				DCs:        2,
				Partitions: 1,
				Latency:    NoLatency(),
				DataDir:    t.TempDir(),
			})
			ctx := testCtx(t)
			w, err := c.NewClient(0)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()

			// Sever the WAN: puts are acked and fsynced locally, replication
			// retries into the void.
			c.SetInterDCLoss(1.0)
			const keys = 12
			for i := 0; i < keys; i++ {
				if _, err := w.Put(ctx, fmt.Sprintf("tail-%02d", i), []byte(fmt.Sprintf("v-%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			installAppends := func(dc, p int) uint64 {
				// Old-reader records (the polling reader below is recorded as
				// a negative reader, so CC-LO installs persist marks for it)
				// ride the same log; exactly-once is about INSTALL records.
				v := c.WALViewOf(dc, p)
				return v.Appends - v.ReaderRecords
			}
			remoteBefore := installAppends(1, 0)

			// Kill -9 the origin between local fsync and remote delivery.
			if err := c.CrashPartition(0, 0); err != nil {
				t.Fatal(err)
			}
			if err := c.RestartPartition(0, 0); err != nil {
				t.Fatal(err)
			}
			c.SetInterDCLoss(0)

			r, err := c.NewClient(1)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for i := 0; i < keys; i++ {
				waitRemote(t, r, ctx, fmt.Sprintf("tail-%02d", i), []byte(fmt.Sprintf("v-%02d", i)))
			}
			// Exactly once: the remote WAL gained one install record per key
			// and nothing else (no local writes happened in DC1; heartbeats
			// append nothing; duplicate deliveries would append again).
			if delta := installAppends(1, 0) - remoteBefore; delta != keys {
				t.Fatalf("remote WAL appends delta = %d, want exactly %d (dedup after recovery)", delta, keys)
			}
			// And the origin's own state survived intact.
			for i := 0; i < keys; i++ {
				got, err := w.Get(ctx, fmt.Sprintf("tail-%02d", i))
				if err != nil || !bytes.Equal(got, []byte(fmt.Sprintf("v-%02d", i))) {
					t.Fatalf("origin lost tail-%02d: %q %v", i, got, err)
				}
			}
		})
	}
}

// TestCrashMatrixPreFsyncAsync covers the pre-fsync kill under the
// background-sync mode: writes acknowledged inside the loss window may
// vanish, but (a) writes fsynced before the window always survive, and
// (b) the DCs never diverge — a write lost at the origin was gated out of
// replication, so it is lost everywhere.
func TestCrashMatrixPreFsyncAsync(t *testing.T) {
	c := startCluster(t, Config{
		Protocol:      Contrarian,
		DCs:           2,
		Partitions:    1,
		Latency:       NoLatency(),
		DataDir:       t.TempDir(),
		WALSync:       wal.SyncBackground,
		WALFsyncEvery: 40 * time.Millisecond,
	})
	ctx := testCtx(t)
	w, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// First half, then wait out well over one fsync window so it is durable.
	for i := 0; i < 6; i++ {
		if _, err := w.Put(ctx, fmt.Sprintf("pref-%d", i), []byte("early")); err != nil {
			t.Fatal(err)
		}
	}
	fsyncs := func() uint64 { return c.WALViewOf(0, 0).Fsyncs }
	base := fsyncs()
	deadline := time.Now().Add(5 * time.Second)
	for fsyncs() == base {
		if time.Now().After(deadline) {
			t.Fatal("background fsync never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Second half: acked inside the (fresh) window, then kill -9 at once.
	for i := 6; i < 12; i++ {
		if _, err := w.Put(ctx, fmt.Sprintf("pref-%d", i), []byte("window")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CrashPartition(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartPartition(0, 0); err != nil {
		t.Fatal(err)
	}

	r, err := c.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// (a) Pre-window writes survive and replicate.
	for i := 0; i < 6; i++ {
		waitRemote(t, r, ctx, fmt.Sprintf("pref-%d", i), []byte("early"))
	}
	// (b) No divergence: whatever each window write's fate, origin and
	// remote must agree on it once replication quiesces.
	time.Sleep(300 * time.Millisecond)
	lost := 0
	for i := 6; i < 12; i++ {
		key := fmt.Sprintf("pref-%d", i)
		deadline := time.Now().Add(10 * time.Second)
		for {
			lv, err := w.Get(ctx, key)
			if err != nil {
				t.Fatal(err)
			}
			rv, err := r.Get(ctx, key)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(lv, rv) {
				if lv == nil {
					lost++
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("window key %s diverged: origin=%q remote=%q", key, lv, rv)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Logf("loss window dropped %d of 6 acked-in-window writes (contract: any number, consistently)", lost)
}

// TestCrashMatrixMidSnapshot: a crash can leave a half-written snapshot
// temp file next to a torn segment tail; recovery must discard the temp,
// tolerate the tear, and replay everything acknowledged.
func TestCrashMatrixMidSnapshot(t *testing.T) {
	c := startCluster(t, Config{
		Protocol:        Contrarian,
		DCs:             1,
		Partitions:      1,
		Latency:         NoLatency(),
		DataDir:         t.TempDir(),
		WALSegmentBytes: 1024,
	})
	ctx := testCtx(t)
	w, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 30; i++ {
		if _, err := w.Put(ctx, fmt.Sprintf("snapc-%02d", i), seqVal(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CrashPartition(0, 0); err != nil {
		t.Fatal(err)
	}
	// Manufacture the mid-snapshot debris: an abandoned snapshot temp file
	// plus a torn record at the newest segment's tail.
	dir := c.WALDir(0, 0)
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000099.snap.tmp"),
		[]byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	tearWALTail(t, c, 0, 0)
	if err := c.RestartPartition(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		got, err := w.Get(ctx, fmt.Sprintf("snapc-%02d", i))
		if err != nil || seqOf(got) != uint64(i) {
			t.Fatalf("snapc-%02d after mid-snapshot crash: %q %v", i, got, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000099.snap.tmp")); !os.IsNotExist(err) {
		t.Fatal("abandoned snapshot temp file not cleaned up")
	}
}

// TestCrashMatrixMidRotateTornHeader: a kill -9 during segment rotation —
// after the new segment file was created but before its header's fsync —
// leaves a next-sequence segment with a short or garbled header. The header
// is synced before any record can land in a segment, so the debris provably
// holds nothing acknowledged; recovery must discard it and replay every
// acknowledged write, for all three protocol families.
func TestCrashMatrixMidRotateTornHeader(t *testing.T) {
	for _, proto := range []Protocol{Contrarian, CCLO, COPS} {
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, Config{
				Protocol:        proto,
				DCs:             1,
				Partitions:      1,
				Latency:         NoLatency(),
				DataDir:         t.TempDir(),
				WALSegmentBytes: 1024, // force real rotations before the crash
			})
			ctx := testCtx(t)
			w, err := c.NewClient(0)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			const keys = 30
			for i := 0; i < keys; i++ {
				if _, err := w.Put(ctx, fmt.Sprintf("rot-%02d", i), seqVal(uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.CrashPartition(0, 0); err != nil {
				t.Fatal(err)
			}
			// Manufacture the mid-rotate debris: the next segment in sequence,
			// its header torn three bytes in.
			_, seq := walSegments(t, c, 0, 0)
			torn := filepath.Join(c.WALDir(0, 0), fmt.Sprintf("seg-%016d.wal", seq+1))
			if err := os.WriteFile(torn, []byte{0x43, 0x4b, 0x56}, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := c.RestartPartition(0, 0); err != nil {
				t.Fatalf("recovery refused mid-rotate debris: %v", err)
			}
			for i := 0; i < keys; i++ {
				got, err := w.Get(ctx, fmt.Sprintf("rot-%02d", i))
				if err != nil || seqOf(got) != uint64(i) {
					t.Fatalf("rot-%02d after mid-rotate crash: %q %v", i, got, err)
				}
			}
			if v := c.WALViewOf(0, 0); v.TornSegments != 1 {
				t.Fatalf("TornSegments = %d, want 1", v.TornSegments)
			}
			// Still live: the reopened log accepts and recovers new writes.
			if _, err := w.Put(ctx, "rot-after", seqVal(99)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashMatrixTornSealedSegmentFailsLoudly is the other half of the
// mid-rotate contract: a torn record at the END of a SEALED (non-final)
// segment means acknowledged records once followed it — rotation seals a
// segment only after its last record's fsync — so data is gone and recovery
// must refuse to start, not silently skip the damage.
func TestCrashMatrixTornSealedSegmentFailsLoudly(t *testing.T) {
	c := startCluster(t, Config{
		Protocol:        Contrarian,
		DCs:             1,
		Partitions:      1,
		Latency:         NoLatency(),
		DataDir:         t.TempDir(),
		WALSegmentBytes: 1024,
	})
	ctx := testCtx(t)
	w, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 30; i++ {
		if _, err := w.Put(ctx, fmt.Sprintf("seal-%02d", i), seqVal(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CrashPartition(0, 0); err != nil {
		t.Fatal(err)
	}
	segs, _ := walSegments(t, c, 0, 0)
	if len(segs) < 2 {
		t.Fatalf("need a sealed segment; rotation produced only %d", len(segs))
	}
	// A torn record at the seal of the FIRST (oldest) segment: records in
	// later segments durably followed it.
	f, err := os.OpenFile(filepath.Join(c.WALDir(0, 0), segs[0]), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x90, 1, 0, 0, 0xde, 0xad, 0xbe, 0xef, 't', 'o', 'r', 'n'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := c.RestartPartition(0, 0); err == nil {
		t.Fatal("recovery silently skipped a torn record inside a sealed segment: acknowledged writes were lost without a report")
	}
}

// TestCrashMatrixTornCursorRecord: tearing the WAL tail right after cursor
// records were persisted makes recovery fall back to an older (or the torn
// write's predecessor) cursor; the sender must re-ship an acknowledged
// suffix that the receiver detects — liveness and exactly-once visible
// state, never duplicates in the store.
func TestCrashMatrixTornCursorRecord(t *testing.T) {
	c := startCluster(t, Config{
		Protocol:   Contrarian,
		DCs:        2,
		Partitions: 1,
		Latency:    NoLatency(),
		DataDir:    t.TempDir(),
	})
	ctx := testCtx(t)
	w, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := c.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for i := 0; i < 8; i++ {
		if _, err := w.Put(ctx, fmt.Sprintf("torn-%d", i), seqVal(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
		waitRemote(t, r, ctx, fmt.Sprintf("torn-%d", i), seqVal(uint64(i+1)))
	}
	// Wait for a cursor to be persisted at the origin.
	deadline := time.Now().Add(5 * time.Second)
	for len(c.WALCursors(0, 0)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("origin never persisted a replication cursor")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := c.CrashPartition(0, 0); err != nil {
		t.Fatal(err)
	}
	tearWALTail(t, c, 0, 0) // the torn record may sit right on a cursor
	if err := c.RestartPartition(0, 0); err != nil {
		t.Fatal(err)
	}

	// Liveness: new writes still cross, re-shipped suffixes are dropped by
	// the receiver's dedup, and the stores agree per key.
	for i := 8; i < 12; i++ {
		if _, err := w.Put(ctx, fmt.Sprintf("torn-%d", i), seqVal(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
		waitRemote(t, r, ctx, fmt.Sprintf("torn-%d", i), seqVal(uint64(i+1)))
	}
	for i := 0; i < 12; i++ {
		got, err := r.Get(ctx, fmt.Sprintf("torn-%d", i))
		if err != nil || seqOf(got) != uint64(i+1) {
			t.Fatalf("torn-%d after torn-cursor recovery: %q %v", i, got, err)
		}
	}
}

// TestSenderResumesAtReceiverCursor is the regression test for the removed
// wall-clock sequence base: a restarted sender must resume from its durable
// cursor — small, ordinal sequence numbers that continue where the receiver
// expects them — rather than re-basing at wall-clock nanoseconds (~1e18).
func TestSenderResumesAtReceiverCursor(t *testing.T) {
	c := startCluster(t, Config{
		Protocol:   Contrarian,
		DCs:        2,
		Partitions: 1,
		Latency:    NoLatency(),
		DataDir:    t.TempDir(),
	})
	ctx := testCtx(t)
	w, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := c.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := w.Put(ctx, "resume", seqVal(1)); err != nil {
		t.Fatal(err)
	}
	waitRemote(t, r, ctx, "resume", seqVal(1))
	var c1 uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cur := c.WALCursors(0, 0); len(cur) == 1 {
			c1 = cur[0].Seq
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cursor persisted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c1 == 0 || c1 > 1_000_000 {
		t.Fatalf("cursor seq %d: not a small ordinal (wall-clock bases are ~1e18)", c1)
	}

	if err := c.RestartPartition(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Put(ctx, "resume", seqVal(2)); err != nil {
		t.Fatal(err)
	}
	waitRemote(t, r, ctx, "resume", seqVal(2))

	var c2 uint64
	deadline = time.Now().Add(5 * time.Second)
	for {
		if cur := c.WALCursors(0, 0); len(cur) == 1 && cur[0].Seq > c1 {
			c2 = cur[0].Seq
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cursor did not advance after restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The restarted stream continued from the durable cursor: its sequence
	// numbers stay ordinal and contiguous-ish (heartbeats may add a few),
	// and the receiver's dedup cursor advanced with it instead of jumping
	// eighteen orders of magnitude.
	if c2-c1 > 100_000 {
		t.Fatalf("post-restart cursor jumped %d → %d: wall-clock re-base is back?", c1, c2)
	}
	nextIn := c.CoreServers()[1].NextIn(0) // dc1-p0's dedup cursor for source DC0
	if nextIn > 1_000_000 {
		t.Fatalf("receiver dedup cursor %d: not ordinal", nextIn)
	}
	if nextIn <= c1 {
		t.Fatalf("receiver dedup cursor %d did not advance past pre-restart cursor %d", nextIn, c1)
	}
}
