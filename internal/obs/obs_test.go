package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func surface(t *testing.T) (*httptest.Server, *metrics.SlowRing) {
	t.Helper()
	reg := metrics.NewRegistry()
	var c metrics.Counter
	c.Add(7)
	reg.Counter("kv_test_ops_total", "Test counter.", &c)
	var h metrics.StaticHist
	h.Record(3 * time.Millisecond)
	reg.Histogram("kv_test_latency_seconds", "Test histogram.", &h)

	ring := metrics.NewSlowRing(16, time.Millisecond)
	ring.Record(metrics.SlowOp{
		Start: time.Now().UnixNano(), Op: "put",
		KeyHash: metrics.KeyHash("k"), Total: 5 * time.Millisecond,
		Fsync: 2 * time.Millisecond,
	})

	s := New(Config{
		Registry: reg,
		Slow:     ring,
		Status: func() Status {
			return Status{
				Protocol: "contrarian", DC: 1, Partition: 2,
				NumDCs: 3, NumParts: 4,
				StartedAt: time.Now().Add(-time.Minute),
				Extra:     map[string]string{"wal": "sync"},
			}
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, ring
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", url, resp.StatusCode, b)
	}
	return string(b), resp
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := surface(t)
	body, resp := get(t, ts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks the exposition version", ct)
	}
	for _, want := range []string{
		"# TYPE kv_test_ops_total counter",
		"kv_test_ops_total 7",
		"# TYPE kv_test_latency_seconds histogram",
		"kv_test_latency_seconds_count 1",
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestStatusz(t *testing.T) {
	ts, _ := surface(t)
	body, _ := get(t, ts.URL+"/statusz")
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz not JSON: %v\n%s", err, body)
	}
	if st.Protocol != "contrarian" || st.DC != 1 || st.Partition != 2 {
		t.Fatalf("statusz identity wrong: %+v", st)
	}
	if st.UptimeSec < 59 {
		t.Fatalf("uptime not derived from StartedAt: %v", st.UptimeSec)
	}
	if st.Extra["wal"] != "sync" {
		t.Fatalf("extra not carried: %+v", st.Extra)
	}
}

func TestSlowOps(t *testing.T) {
	ts, _ := surface(t)
	body, _ := get(t, ts.URL+"/debug/slowops")
	var doc struct {
		ThresholdSec float64 `json:"threshold_sec"`
		Captured     uint64  `json:"captured_total"`
		Ops          []struct {
			Op      string  `json:"op"`
			KeyHash string  `json:"key_hash"`
			Total   float64 `json:"total_sec"`
			Fsync   float64 `json:"fsync_sec"`
		} `json:"ops"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("slowops not JSON: %v\n%s", err, body)
	}
	if doc.Captured != 1 || len(doc.Ops) != 1 {
		t.Fatalf("expected one captured op: %s", body)
	}
	op := doc.Ops[0]
	if op.Op != "put" || op.Total < 0.004 || op.Fsync < 0.001 {
		t.Fatalf("op fields wrong: %+v", op)
	}
	if len(op.KeyHash) != 16 {
		t.Fatalf("key hash not 16 hex chars: %q", op.KeyHash)
	}
}

func TestPprofIndex(t *testing.T) {
	ts, _ := surface(t)
	body, _ := get(t, ts.URL+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%s", body)
	}
}

func TestListenAndClose(t *testing.T) {
	s := New(Config{Registry: metrics.NewRegistry()})
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	body, _ := get(t, "http://"+s.Addr()+"/metrics")
	_ = body
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("listener still serving after Close")
	}
}
