// Package obs is the process's scrapeable observability surface: a plain
// net/http server exposing the metrics registry in Prometheus text format,
// a JSON status snapshot, the slow-op trace ring, and the standard pprof
// profiling handlers. It has no dependencies beyond the standard library
// and internal/metrics, and it is strictly read-only: nothing served here
// can mutate server state.
//
// The surface is bound to its own listener (kvserver -obs-addr), separate
// from the protocol port, so operators can firewall it independently and a
// scrape stampede cannot occupy protocol accept queues.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
)

// Status is the /statusz document: the process's static identity plus a
// few live readings. Extra holds deployment-specific fields (topology
// path, WAL mode, restart epoch, ...).
type Status struct {
	Protocol  string            `json:"protocol"`
	DC        int               `json:"dc"`
	Partition int               `json:"partition"`
	NumDCs    int               `json:"num_dcs"`
	NumParts  int               `json:"num_partitions"`
	StartedAt time.Time         `json:"started_at"`
	UptimeSec float64           `json:"uptime_sec"`
	// Overload is the admission-control verdict: "" when admission is
	// disabled, "admitting" while client load fits the gate, "shedding"
	// while the gate is refusing client requests.
	Overload string            `json:"overload,omitempty"`
	Extra    map[string]string `json:"extra,omitempty"`
}

// Server serves the observability surface.
type Server struct {
	reg     *metrics.Registry
	ring    *metrics.SlowRing
	status  func() Status
	mux     *http.ServeMux
	httpSrv *http.Server
	ln      net.Listener
}

// Config parameterizes a Server. Registry is required; Slow and Status may
// be nil (the corresponding endpoints then serve empty documents).
type Config struct {
	Registry *metrics.Registry
	Slow     *metrics.SlowRing
	Status   func() Status
}

// New builds the server and its handler mux (also usable standalone via
// Handler, e.g. mounted into a test mux).
func New(cfg Config) *Server {
	s := &Server{reg: cfg.Registry, ring: cfg.Slow, status: cfg.Status}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/debug/slowops", s.handleSlowOps)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the surface's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds addr and serves in a background goroutine until Close.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listener address ("" before Listen), so callers
// using port 0 can discover the chosen port.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.reg != nil {
		_ = s.reg.WritePrometheus(w)
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var st Status
	if s.status != nil {
		st = s.status()
	}
	st.UptimeSec = time.Since(st.StartedAt).Seconds()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// slowOpJSON is the /debug/slowops wire form of one captured op: phase
// timings in seconds, the key as a hash (keys must not leak onto an HTTP
// surface), newest first.
type slowOpJSON struct {
	At      string  `json:"at"` // RFC3339Nano op start
	Op      string  `json:"op"`
	KeyHash string  `json:"key_hash"` // hex
	Total   float64 `json:"total_sec"`
	Queue   float64 `json:"queue_sec,omitempty"`
	Fsync   float64 `json:"fsync_sec,omitempty"`
	Repl    float64 `json:"repl_sec,omitempty"`
}

func (s *Server) handleSlowOps(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	type doc struct {
		ThresholdSec float64      `json:"threshold_sec"`
		Captured     uint64       `json:"captured_total"`
		Ops          []slowOpJSON `json:"ops"`
	}
	d := doc{
		ThresholdSec: s.ring.Threshold().Seconds(),
		Captured:     s.ring.Len(),
		Ops:          []slowOpJSON{},
	}
	for _, op := range s.ring.Snapshot() {
		d.Ops = append(d.Ops, slowOpJSON{
			At:      time.Unix(0, op.Start).UTC().Format(time.RFC3339Nano),
			Op:      op.Op,
			KeyHash: fmt.Sprintf("%016x", op.KeyHash),
			Total:   op.Total.Seconds(),
			Queue:   op.Queue.Seconds(),
			Fsync:   op.Fsync.Seconds(),
			Repl:    op.Repl.Seconds(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(d)
}
