package hlc

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPackMicros(t *testing.T) {
	ts := Pack(123, 7)
	if Micros(ts) != 123 {
		t.Fatalf("Micros = %d, want 123", Micros(ts))
	}
	if ts&0xFFFF != 7 {
		t.Fatalf("logical = %d, want 7", ts&0xFFFF)
	}
}

func TestLamportTickStrictlyIncreasing(t *testing.T) {
	l := NewLamport(0)
	prev := l.Tick()
	for i := 0; i < 1000; i++ {
		cur := l.Tick()
		if cur <= prev {
			t.Fatalf("Tick not increasing: %d then %d", prev, cur)
		}
		prev = cur
	}
}

func TestLamportUpdate(t *testing.T) {
	l := NewLamport(5)
	got := l.Update(100)
	if got != 101 {
		t.Fatalf("Update(100) = %d, want 101", got)
	}
	if got := l.Update(3); got != 102 {
		t.Fatalf("Update(3) = %d, want 102", got)
	}
	if !l.CanJump() {
		t.Fatal("Lamport must be able to jump")
	}
}

func TestLamportConcurrentUnique(t *testing.T) {
	l := NewLamport(0)
	const workers, per = 8, 500
	ts := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ts[w] = make([]uint64, per)
			for i := 0; i < per; i++ {
				ts[w][i] = l.Tick()
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*per)
	for _, s := range ts {
		for _, v := range s {
			if seen[v] {
				t.Fatalf("duplicate timestamp %d", v)
			}
			seen[v] = true
		}
	}
}

func TestHLCMonotonicAndAboveRemote(t *testing.T) {
	var src ManualSource
	h := NewHLC(src.Now)
	a := h.Tick()
	b := h.Update(a + 500)
	if b <= a+500 {
		t.Fatalf("Update must exceed remote: %d <= %d", b, a+500)
	}
	c := h.Tick()
	if c <= b {
		t.Fatalf("Tick after Update not increasing: %d <= %d", c, b)
	}
	if !h.CanJump() {
		t.Fatal("HLC must be able to jump")
	}
}

func TestHLCTracksPhysical(t *testing.T) {
	var src ManualSource
	h := NewHLC(src.Now)
	src.Set(1000)
	ts := h.Tick()
	if Micros(ts) != 1000 {
		t.Fatalf("HLC should adopt physical reading: micros = %d, want 1000", Micros(ts))
	}
	// Idle Now() advances with physical time even without events.
	src.Set(2000)
	if Micros(h.Now()) != 2000 {
		t.Fatalf("idle Now should track physical: %d", Micros(h.Now()))
	}
}

func TestHLCLogicalWithinSameMicro(t *testing.T) {
	var src ManualSource
	src.Set(50)
	h := NewHLC(src.Now)
	a := h.Tick()
	b := h.Tick()
	if Micros(a) != 50 || Micros(b) != 50 {
		t.Fatalf("physical part should stay at 50: %d %d", Micros(a), Micros(b))
	}
	if b != a+1 {
		t.Fatalf("logical counter should increment: %d %d", a, b)
	}
}

func TestQuickHLCUpdateDominates(t *testing.T) {
	var src ManualSource
	h := NewHLC(src.Now)
	f := func(remote uint64, phys uint32) bool {
		src.Set(uint64(phys))
		got := h.Update(remote % (1 << 40))
		return got > remote%(1<<40) && Micros(got) >= uint64(phys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPhysicalCannotJump(t *testing.T) {
	var src ManualSource
	p := NewPhysical(src.Now)
	if p.CanJump() {
		t.Fatal("physical clocks must not jump")
	}
	src.Set(100)
	ts := p.Tick()
	if Micros(ts) != 100 {
		t.Fatalf("Tick micros = %d, want 100", Micros(ts))
	}
}

func TestPhysicalUpdateBlocks(t *testing.T) {
	// A physical clock asked to pass a timestamp ahead of its reading must
	// wait for (real or injected) time. Use a wall source with a negative
	// skew and confirm Update takes roughly the skew to catch up.
	p := NewPhysical(WallSource(0))
	target := Pack(uint64(time.Since(epoch)/time.Microsecond)+3000, 0) // 3ms ahead
	start := time.Now()
	got := p.Update(target)
	elapsed := time.Since(start)
	if got <= target {
		t.Fatalf("Update result %d not past target %d", got, target)
	}
	if elapsed < 2*time.Millisecond {
		t.Fatalf("Update should have blocked ~3ms, took %v", elapsed)
	}
}

func TestWallSourceSkew(t *testing.T) {
	ahead := WallSource(10 * time.Millisecond)
	behind := WallSource(-10 * time.Millisecond)
	// The negative-skew source clamps at zero until 10 ms of process
	// lifetime have elapsed; wait out the clamp.
	for behind() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Scheduling can separate the two readings under parallel test load;
	// take several samples and keep the tightest delta.
	best := uint64(1 << 62)
	for i := 0; i < 20; i++ {
		b := behind() // read "behind" first: any delay only shrinks the delta
		a := ahead()
		if a <= b {
			t.Fatalf("skewed sources out of order: ahead=%d behind=%d", a, b)
		}
		if d := a - b; d < best {
			best = d
		}
	}
	// The true delta is 20 ms; allow generous scheduling noise.
	if best < 15000 || best > 25000 {
		t.Fatalf("tightest skew delta = %dµs, want ≈20000µs", best)
	}
}

func TestHLCConcurrentMonotone(t *testing.T) {
	h := NewHLC(WallSource(0))
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := h.Tick()
			for i := 0; i < 2000; i++ {
				cur := h.Tick()
				if cur <= prev {
					errs <- cur
					return
				}
				prev = cur
			}
		}()
	}
	wg.Wait()
	close(errs)
	if v, ok := <-errs; ok {
		t.Fatalf("non-monotone concurrent tick: %d", v)
	}
}

func BenchmarkLamportTick(b *testing.B) {
	l := NewLamport(0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Tick()
		}
	})
}

func BenchmarkHLCTick(b *testing.B) {
	h := NewHLC(WallSource(0))
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Tick()
		}
	})
}

func BenchmarkHLCUpdate(b *testing.B) {
	h := NewHLC(WallSource(0))
	for i := 0; i < b.N; i++ {
		h.Update(uint64(i) << LogicalBits)
	}
}
