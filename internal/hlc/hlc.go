// Package hlc provides the three clock families used by the protocols in
// this repository:
//
//   - Lamport: plain logical clocks (COPS, Eiger, CC-LO),
//   - HLC: hybrid logical-physical clocks (Contrarian, per Kulkarni et al.),
//   - Physical: loosely synchronized physical clocks that can NOT be moved
//     forward on demand (Cure, GentleRain) and therefore force blocking.
//
// Timestamps are uint64. For HLC and Physical clocks the value packs the
// physical time in microseconds in the upper 48 bits and a logical counter
// in the lower 16 bits, so timestamp comparison orders first by physical
// time. Lamport timestamps are unstructured counters; only their relative
// order matters.
//
// All clocks are safe for concurrent use and lock-free.
package hlc

import (
	"runtime"
	"sync/atomic"
	"time"
)

// LogicalBits is the width of the logical counter in packed HLC/physical
// timestamps.
const LogicalBits = 16

// epoch anchors physical readings so that timestamps are small and
// comparable across every clock in the process (all our simulated nodes
// live in one process; across real deployments NTP plays this role).
var epoch = time.Now()

// Source yields the current physical time in microseconds. Distinct nodes
// get distinct Sources so clock skew can be injected.
type Source func() uint64

// WallSource returns a Source reading the host monotonic clock offset by
// skew. Negative skews model nodes running behind.
func WallSource(skew time.Duration) Source {
	return func() uint64 {
		d := time.Since(epoch) + skew
		if d < 0 {
			return 0
		}
		return uint64(d / time.Microsecond)
	}
}

// ManualSource is a settable Source for tests.
type ManualSource struct{ v atomic.Uint64 }

// Set moves the manual clock to micros.
func (m *ManualSource) Set(micros uint64) { m.v.Store(micros) }

// Add advances the manual clock by micros.
func (m *ManualSource) Add(micros uint64) { m.v.Add(micros) }

// Now returns the current manual reading.
func (m *ManualSource) Now() uint64 { return m.v.Load() }

// Pack combines a physical microsecond reading and a logical counter into a
// timestamp.
func Pack(micros uint64, logical uint16) uint64 {
	return micros<<LogicalBits | uint64(logical)
}

// Micros extracts the physical microsecond component of a packed timestamp.
func Micros(ts uint64) uint64 { return ts >> LogicalBits }

// Clock generates event timestamps.
type Clock interface {
	// Now returns the current reading without creating an event.
	Now() uint64
	// Tick returns a timestamp for a new local event, strictly greater
	// than every timestamp previously returned by this clock.
	Tick() uint64
	// Update incorporates a remote timestamp and returns a new local
	// timestamp strictly greater than both the remote timestamp and all
	// previously returned ones. Physical clocks cannot jump: their Update
	// sleeps until the clock passes remote (this is Cure's blocking).
	Update(remote uint64) uint64
	// CanJump reports whether the clock can be moved forward instantly to
	// satisfy an incoming snapshot timestamp (true for Lamport and HLC).
	// Servers use this to decide whether an incoming ROT must block.
	CanJump() bool
}

// Lamport is a classic logical clock.
type Lamport struct{ last atomic.Uint64 }

// NewLamport returns a Lamport clock starting at start.
func NewLamport(start uint64) *Lamport {
	l := &Lamport{}
	l.last.Store(start)
	return l
}

// Now returns the current counter value.
func (l *Lamport) Now() uint64 { return l.last.Load() }

// Tick increments and returns the counter.
func (l *Lamport) Tick() uint64 { return l.last.Add(1) }

// Update advances the counter beyond remote and returns the new value.
func (l *Lamport) Update(remote uint64) uint64 {
	for {
		old := l.last.Load()
		next := max(old, remote) + 1
		if l.last.CompareAndSwap(old, next) {
			return next
		}
	}
}

// CanJump reports true: logical clocks can always be moved forward.
func (l *Lamport) CanJump() bool { return true }

// HLC is a hybrid logical-physical clock. The packed representation makes
// the classic HLC update rules collapse to max() on the packed value: the
// logical component overflows into physical time only after 2^16 events in
// the same microsecond, which is harmless drift (see Kulkarni et al.).
type HLC struct {
	src  Source
	last atomic.Uint64
}

// NewHLC returns an HLC drawing physical readings from src.
func NewHLC(src Source) *HLC { return &HLC{src: src} }

// Now returns the current reading without creating an event. The result is
// monotone with past Tick/Update results and advances with physical time
// even when the node is idle (this is what keeps the GSS fresh).
func (h *HLC) Now() uint64 {
	return max(h.last.Load(), Pack(h.src(), 0))
}

// Tick returns a timestamp for a new local event.
func (h *HLC) Tick() uint64 { return h.update(0) }

// Update incorporates a remote timestamp.
func (h *HLC) Update(remote uint64) uint64 { return h.update(remote) }

func (h *HLC) update(remote uint64) uint64 {
	for {
		old := h.last.Load()
		next := max(old+1, remote+1, Pack(h.src(), 0))
		if h.last.CompareAndSwap(old, next) {
			return next
		}
	}
}

// CanJump reports true: the logical half of an HLC absorbs jumps.
func (h *HLC) CanJump() bool { return true }

// Physical is a loosely synchronized physical clock. Tick never returns a
// value behind the physical reading, and Update must wait for real time to
// pass rather than jumping (Section 3 of the paper: "physical clocks...
// can only move forward with the passage of time").
type Physical struct {
	src  Source
	last atomic.Uint64
}

// NewPhysical returns a physical clock drawing from src.
func NewPhysical(src Source) *Physical { return &Physical{src: src} }

// Now returns the current reading.
func (p *Physical) Now() uint64 {
	return max(p.last.Load(), Pack(p.src(), 0))
}

// Tick returns a timestamp for a new local event. The 16-bit logical suffix
// disambiguates events within one microsecond but never runs ahead of the
// physical reading by more than that suffix.
func (p *Physical) Tick() uint64 {
	for {
		old := p.last.Load()
		next := max(old+1, Pack(p.src(), 0))
		if p.last.CompareAndSwap(old, next) {
			return next
		}
	}
}

// Update waits until the physical reading passes remote, then ticks. The
// wait is the blocking behaviour Cure exhibits under clock skew.
func (p *Physical) Update(remote uint64) uint64 {
	p.Sleep(remote)
	for {
		old := p.last.Load()
		next := max(old+1, remote+1, Pack(p.src(), 0))
		if p.last.CompareAndSwap(old, next) {
			return next
		}
	}
}

// Sleep blocks until the physical reading reaches at least ts. Waits below
// the host timer slack (~2 ms on coarse kernels) spin-yield instead of
// sleeping, so Cure's skew-induced blocking is measured at its true
// magnitude rather than at the kernel tick.
func (p *Physical) Sleep(ts uint64) {
	for {
		cur := Pack(p.src(), 1<<LogicalBits-1)
		if cur >= ts {
			return
		}
		wait := time.Duration(Micros(ts)-Micros(cur)) * time.Microsecond
		if wait > 4*time.Millisecond {
			time.Sleep(wait - 2*time.Millisecond)
		} else {
			runtime.Gosched()
		}
	}
}

// CanJump reports false: incoming snapshots ahead of this clock block.
func (p *Physical) CanJump() bool { return false }
