package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// freeAddr reserves an ephemeral localhost port for a test topology. The
// probe listener is closed immediately; the tiny reuse window beats
// flaking on hard-coded ports already held by another process.
func freeAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// echoHandler answers Ping with Pong and counts one-way messages.
type echoHandler struct{ oneways atomic.Uint64 }

func (e *echoHandler) Handle(n Node, src wire.From, reqID uint64, m wire.Message) {
	if reqID == 0 {
		e.oneways.Add(1)
		return
	}
	switch msg := m.(type) {
	case *wire.Ping:
		n.Respond(src, reqID, &wire.Pong{Nonce: msg.Nonce})
	default:
		RespondError(n, src, reqID, 1, "unexpected type")
	}
}

func testNetworkBasics(t *testing.T, mk func(t *testing.T) (Network, func())) {
	t.Helper()
	net, done := mk(t)
	defer done()

	srvAddr := wire.ServerAddr(0, 0)
	cliAddr := wire.ClientAddr(0, 1)
	h := &echoHandler{}
	if _, err := net.Attach(srvAddr, h); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach(cliAddr, HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	resp, err := cli.Call(ctx, srvAddr, &wire.Ping{Nonce: 42})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if pong, ok := resp.(*wire.Pong); !ok || pong.Nonce != 42 {
		t.Fatalf("resp = %+v", resp)
	}

	// Error responses surface as errors.
	if _, err := cli.Call(ctx, srvAddr, &wire.Pong{}); err == nil {
		t.Fatal("expected error response")
	}

	// One-way send.
	if err := cli.Send(srvAddr, &wire.Ping{Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.oneways.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.oneways.Load() != 1 {
		t.Fatalf("one-way not delivered")
	}

	// Concurrent calls keep request/response correlation straight.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cli.Call(ctx, srvAddr, &wire.Ping{Nonce: uint64(i)})
			if err != nil {
				errs <- err
				return
			}
			if resp.(*wire.Pong).Nonce != uint64(i) {
				errs <- fmt.Errorf("nonce mismatch: want %d got %d", i, resp.(*wire.Pong).Nonce)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestLocalBasics(t *testing.T) {
	testNetworkBasics(t, func(t *testing.T) (Network, func()) {
		n := NewLocal(LatencyModel{})
		return n, func() { n.Close() }
	})
}

func TestTCPBasics(t *testing.T) {
	testNetworkBasics(t, func(t *testing.T) (Network, func()) {
		dir := map[wire.Addr]string{wire.ServerAddr(0, 0): freeAddr(t)}
		n := NewTCP(dir)
		return n, func() { n.Close() }
	})
}

func TestLocalLatencyInjection(t *testing.T) {
	net := NewLocal(LatencyModel{IntraDC: 5 * time.Millisecond})
	defer net.Close()
	srv := wire.ServerAddr(0, 0)
	h := &echoHandler{}
	if _, err := net.Attach(srv, h); err != nil {
		t.Fatal(err)
	}
	cli, _ := net.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	ctx := context.Background()
	start := time.Now()
	if _, err := cli.Call(ctx, srv, &wire.Ping{}); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 10*time.Millisecond {
		t.Fatalf("round trip %v, want ≥ 2×5ms", rtt)
	}
}

func TestLocalInterDCLatency(t *testing.T) {
	m := LatencyModel{IntraDC: time.Millisecond, InterDC: 10 * time.Millisecond}
	same := m.Delay(wire.ServerAddr(0, 0), wire.ServerAddr(0, 1))
	cross := m.Delay(wire.ServerAddr(0, 0), wire.ServerAddr(1, 0))
	if same != time.Millisecond || cross != 10*time.Millisecond {
		t.Fatalf("delays: same=%v cross=%v", same, cross)
	}
}

func TestCallTimeout(t *testing.T) {
	net := NewLocal(LatencyModel{})
	defer net.Close()
	// Server that never responds.
	srv := wire.ServerAddr(0, 0)
	net.Attach(srv, HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	cli, _ := net.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, srv, &wire.Ping{}); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestLocalCloseAbortsInFlightCall is the regression test for Local.Close
// stranding Calls: dispatch drops in-flight messages at close, so a Call
// holding a background context used to wait forever for a response that
// could never arrive.
func TestLocalCloseAbortsInFlightCall(t *testing.T) {
	net := NewLocal(LatencyModel{})
	srv := wire.ServerAddr(0, 0)
	// Server that never responds, so the Call is parked when Close runs.
	net.Attach(srv, HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	cli, _ := net.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))

	callErr := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), srv, &wire.Ping{Nonce: 1})
		callErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call reach the server

	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-callErr:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call hung across Local.Close")
	}
}

// TestLocalNodeCloseAbortsInFlightCall mirrors the network-level test for
// an individual node Close.
func TestLocalNodeCloseAbortsInFlightCall(t *testing.T) {
	net := NewLocal(LatencyModel{})
	defer net.Close()
	srv := wire.ServerAddr(0, 0)
	net.Attach(srv, HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	cli, _ := net.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))

	callErr := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), srv, &wire.Ping{Nonce: 1})
		callErr <- err
	}()
	time.Sleep(20 * time.Millisecond)

	cli.Close()
	select {
	case err := <-callErr:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call hung across node Close")
	}
}

func TestCallToMissingNodeTimesOut(t *testing.T) {
	net := NewLocal(LatencyModel{})
	defer net.Close()
	cli, _ := net.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, wire.ServerAddr(0, 9), &wire.Ping{}); err == nil {
		t.Fatal("expected timeout to unknown destination")
	}
	if _, _, dropped := net.Stats().Snapshot(); dropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestDuplicateAttach(t *testing.T) {
	net := NewLocal(LatencyModel{})
	defer net.Close()
	a := wire.ServerAddr(0, 0)
	if _, err := net.Attach(a, &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(a, &echoHandler{}); err != ErrAttached {
		t.Fatalf("err = %v, want ErrAttached", err)
	}
}

func TestStatsCounting(t *testing.T) {
	net := NewLocal(LatencyModel{})
	defer net.Close()
	srv := wire.ServerAddr(0, 0)
	net.Attach(srv, &echoHandler{})
	cli, _ := net.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	cli.Call(context.Background(), srv, &wire.Ping{})
	msgs, bytes, _ := net.Stats().Snapshot()
	if msgs != 2 || bytes == 0 {
		t.Fatalf("stats = msgs %d bytes %d, want 2 msgs", msgs, bytes)
	}
}

func TestClosedNodeSendFails(t *testing.T) {
	net := NewLocal(LatencyModel{})
	defer net.Close()
	cli, _ := net.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	cli.Close()
	if err := cli.Send(wire.ServerAddr(0, 0), &wire.Ping{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPServerToServer(t *testing.T) {
	dir := map[wire.Addr]string{
		wire.ServerAddr(0, 0): freeAddr(t),
		wire.ServerAddr(0, 1): freeAddr(t),
	}
	net := NewTCP(dir)
	defer net.Close()
	h0, h1 := &echoHandler{}, &echoHandler{}
	n0, err := net.Attach(wire.ServerAddr(0, 0), h0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(wire.ServerAddr(0, 1), h1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := n0.Call(ctx, wire.ServerAddr(0, 1), &wire.Ping{Nonce: 7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*wire.Pong).Nonce != 7 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPNoRoute(t *testing.T) {
	net := NewTCP(nil)
	defer net.Close()
	cli, _ := net.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err := cli.Send(wire.ServerAddr(0, 0), &wire.Ping{}); err == nil {
		t.Fatal("expected no-route error")
	}
}

func BenchmarkLocalCallNoLatency(b *testing.B) {
	net := NewLocal(LatencyModel{})
	defer net.Close()
	srv := wire.ServerAddr(0, 0)
	net.Attach(srv, &echoHandler{})
	cli, _ := net.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ctx, srv, &wire.Ping{Nonce: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalCallWithLatency(b *testing.B) {
	// Round trip through the spin-accurate delivery wheels at 100µs/hop;
	// expect ≈200µs+processing per op.
	net := NewLocal(LatencyModel{IntraDC: 100 * time.Microsecond})
	defer net.Close()
	srv := wire.ServerAddr(0, 0)
	net.Attach(srv, &echoHandler{})
	cli, _ := net.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ctx, srv, &wire.Ping{Nonce: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
