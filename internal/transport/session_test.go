package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// pushEchoHandler answers Ping{Nonce} with Pong{Nonce} AND pushes a
// one-way Busy{Echo: Nonce} straight back to the calling session — the
// shape of the 1 1/2-round ROT's direct partition-to-client answer. The
// push must land on exactly the session that called; the mux correctness
// test asserts no cross-session delivery.
type pushEchoHandler struct{}

func (pushEchoHandler) Handle(n Node, src wire.From, reqID uint64, m wire.Message) {
	ping, ok := m.(*wire.Ping)
	if !ok || reqID == 0 {
		return
	}
	_ = n.SendTo(src, &wire.Busy{Echo: ping.Nonce, RetryAfterMicros: 1})
	_ = n.Respond(src, reqID, &wire.Pong{Nonce: ping.Nonce})
}

// sessionRecorder records every push a session's handler receives.
type sessionRecorder struct {
	mu     sync.Mutex
	echoes []uint64
}

func (r *sessionRecorder) Handle(_ Node, _ wire.From, _ uint64, m wire.Message) {
	if b, ok := m.(*wire.Busy); ok {
		r.mu.Lock()
		r.echoes = append(r.echoes, b.Echo)
		r.mu.Unlock()
	}
}

// testMuxInterleaving is the session-mux correctness property: many
// concurrent sessions interleaved over one shared endpoint (a single
// socket on TCP) round-trip every request byte-exactly, and direct server
// pushes reach only the session they were addressed to. Nonces are
// namespaced sessLocal<<32|seq, so any cross-session delivery or payload
// corruption is detected exactly.
func testMuxInterleaving(t *testing.T, net Network, done func()) {
	t.Helper()
	defer done()
	srv := wire.ServerAddr(0, 0)
	if _, err := net.Attach(srv, pushEchoHandler{}); err != nil {
		t.Fatal(err)
	}
	mux, err := net.AttachMux(wire.ClientAddr(0, 1), 1)
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 16
	const callsPer = 50
	recs := make([]*sessionRecorder, sessions)
	nodes := make([]Session, sessions)
	for i := 0; i < sessions; i++ {
		recs[i] = &sessionRecorder{}
		s, err := mux.Session(wire.MakeSession(uint16(i%3), uint16(i+1)), recs[i])
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = s
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i, s := range nodes {
		wg.Add(1)
		go func(i int, s Session) {
			defer wg.Done()
			for seq := 0; seq < callsPer; seq++ {
				nonce := uint64(i+1)<<32 | uint64(seq)
				resp, err := s.Call(ctx, srv, &wire.Ping{Nonce: nonce})
				if err != nil {
					errs <- fmt.Errorf("session %d call %d: %w", i, seq, err)
					return
				}
				pong, ok := resp.(*wire.Pong)
				if !ok || pong.Nonce != nonce {
					errs <- fmt.Errorf("session %d call %d: resp %#v, want Pong{%d}", i, seq, resp, nonce)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Every push must have landed on its own session: all echoes carry the
	// session's index in the high bits, and all callsPer arrive.
	for i, rec := range recs {
		waitUntil(t, fmt.Sprintf("session %d pushes", i), func() bool {
			rec.mu.Lock()
			defer rec.mu.Unlock()
			return len(rec.echoes) >= callsPer
		})
		rec.mu.Lock()
		for _, e := range rec.echoes {
			if e>>32 != uint64(i+1) {
				t.Fatalf("session %d received push %#x addressed to session %d", i, e, e>>32-1)
			}
		}
		if len(rec.echoes) != callsPer {
			t.Fatalf("session %d received %d pushes, want %d", i, len(rec.echoes), callsPer)
		}
		rec.mu.Unlock()
	}
}

func TestTCPMuxInterleaving(t *testing.T) {
	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): freeAddr(t)}
	net := NewTCP(dir)
	testMuxInterleaving(t, net, func() { net.Close() })
}

func TestLocalMuxInterleaving(t *testing.T) {
	net := NewLocal(LatencyModel{})
	testMuxInterleaving(t, net, func() { net.Close() })
}

// slowEchoHandler answers Ping after a fixed service time, giving the
// admission gate a real per-request cost to protect.
type slowEchoHandler struct{ delay time.Duration }

func (h slowEchoHandler) Handle(n Node, src wire.From, reqID uint64, m wire.Message) {
	ping, ok := m.(*wire.Ping)
	if !ok || reqID == 0 {
		return
	}
	time.Sleep(h.delay)
	_ = n.Respond(src, reqID, &wire.Pong{Nonce: ping.Nonce})
}

// testTenantFairness saturates an admit-limited server with a hot tenant
// and sends a trickle tenant through the same gate. Deficit round-robin
// parking must keep the trickle tenant live: its fixed batch of requests
// completes with a bounded p99 while the hot tenant is shedding, and
// cluster traffic is never gated (the liveness invariant).
func testTenantFairness(t *testing.T, net Network, stats *AdmitStats, done func()) {
	t.Helper()
	defer done()
	srv := wire.ServerAddr(0, 0)
	peer := wire.ServerAddr(0, 1)
	if _, err := net.Attach(srv, slowEchoHandler{delay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	pn, err := net.Attach(peer, &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	mux, err := net.AttachMux(wire.ClientAddr(0, 1), 2)
	if err != nil {
		t.Fatal(err)
	}

	const hotTenant, trickleTenant = 1, 2
	const hotSessions = 16
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Hot tenant: a storm of sessions in a tight closed loop. Errors are
	// expected (that is what shedding is); only the trickle tenant's
	// results are asserted.
	stop := make(chan struct{})
	var stormWG sync.WaitGroup
	for i := 0; i < hotSessions; i++ {
		s, err := mux.Session(wire.MakeSession(hotTenant, uint16(i+1)), nil)
		if err != nil {
			t.Fatal(err)
		}
		stormWG.Add(1)
		go func(s Session) {
			defer stormWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
				_, _ = s.Call(cctx, srv, &wire.Ping{Nonce: 1})
				ccancel()
			}
		}(s)
	}
	// Let the storm occupy the gate before the trickle tenant arrives.
	waitUntil(t, "gate saturation", func() bool {
		return stats.Depth.Load() >= 2 || stats.Parked.Load() > 0
	})

	// Trickle tenant: a fixed batch of sequential requests with retries.
	tr, err := mux.Session(wire.MakeSession(trickleTenant, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	const trickleOps = 30
	var worst time.Duration
	for i := 0; i < trickleOps; i++ {
		start := time.Now()
		if _, err := CallRetry(ctx, tr, srv, &wire.Ping{Nonce: uint64(i)}, nil); err != nil {
			t.Fatalf("trickle op %d starved: %v", i, err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	// Generous CI bound: with Limit 2 and 2ms service time, a fair gate
	// serves a parked trickle request within a few queue rotations; only a
	// starved tenant pushes multi-second worst cases.
	if worst > 5*time.Second {
		t.Fatalf("trickle tenant worst latency %v under hot-tenant storm", worst)
	}

	// Liveness invariant: cluster traffic flows mid-storm, ungated.
	resp, err := pn.Call(ctx, srv, &wire.Ping{Nonce: 77})
	if err != nil {
		t.Fatalf("server→server call under tenant storm: %v", err)
	}
	if pong, ok := resp.(*wire.Pong); !ok || pong.Nonce != 77 {
		t.Fatalf("server→server resp = %#v, want Pong{77}", resp)
	}

	close(stop)
	stormWG.Wait()
	if shed := stats.TenantShed(hotTenant); shed == 0 {
		t.Fatal("hot tenant was never shed; storm did not exercise the gate")
	}
	waitUntil(t, "admission depth to drain", func() bool { return stats.Depth.Load() == 0 })
}

func TestTCPTenantFairness(t *testing.T) {
	dir := map[wire.Addr]string{
		wire.ServerAddr(0, 0): freeAddr(t),
		wire.ServerAddr(0, 1): freeAddr(t),
	}
	net := NewTCP(dir)
	net.SetAdmission(AdmitConfig{Limit: 2, ParkPerTenant: 8, RetryAfter: 2 * time.Millisecond})
	testTenantFairness(t, net, net.AdmitStats(), func() { net.Close() })
}

func TestLocalTenantFairness(t *testing.T) {
	net := NewLocal(LatencyModel{})
	net.SetAdmission(AdmitConfig{Limit: 2, ParkPerTenant: 8, RetryAfter: 2 * time.Millisecond})
	testTenantFairness(t, net, net.AdmitStats(), func() { net.Close() })
}

// TestTCPSessionTeardownRecycles extends the counting-Reset probe to
// session teardown: a pooled one-way push delivered to a live session is
// recycled after its handler returns, and one arriving after the session
// closed takes the dropped path — which must also recycle, or teardown
// leaks every in-flight pooled message of a departing session.
func TestTCPSessionTeardownRecycles(t *testing.T) {
	srv := wire.ServerAddr(0, 0)
	dir := map[wire.Addr]string{srv: freeAddr(t)}
	net := NewTCP(dir)
	defer net.Close()

	var echo echoHandler
	sn, err := net.Attach(srv, &echo)
	if err != nil {
		t.Fatal(err)
	}
	mux, err := net.AttachMux(wire.ClientAddr(0, 9), 1)
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Uint64
	id := wire.MakeSession(3, 1)
	sess, err := mux.Session(id, HandlerFunc(func(_ Node, _ wire.From, _ uint64, m wire.Message) {
		if _, ok := m.(*probeMsg); ok {
			got.Add(1)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Teach the server this client's route (and socket).
	if _, err := sess.Call(ctx, srv, &wire.Ping{Nonce: 1}); err != nil {
		t.Fatal(err)
	}

	to := wire.From{Addr: wire.ClientAddr(0, 9), Sess: id}
	before := probeResets.Load()
	if err := sn.SendTo(to, &probeMsg{N: 42}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "live session to receive the probe", func() bool { return got.Load() == 1 })
	waitUntil(t, "live-session probe recycle", func() bool { return probeResets.Load() > before })

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	before = probeResets.Load()
	drops := net.Stats().Dropped.Load()
	if err := sn.SendTo(to, &probeMsg{N: 43}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "post-teardown probe to be dropped", func() bool { return net.Stats().Dropped.Load() > drops })
	waitUntil(t, "post-teardown probe recycle", func() bool { return probeResets.Load() > before })
	if got.Load() != 1 {
		t.Fatalf("closed session still received a push (%d deliveries)", got.Load())
	}
}

// TestTCPThousandSessionsSocketBound is the connection-scale property: a
// thousand concurrent sessions against two servers stay within the mux's
// socket pool — O(servers × pool) sockets, not O(sessions) — while every
// session round-trips traffic, and teardown returns both gauges to zero.
func TestTCPThousandSessionsSocketBound(t *testing.T) {
	if testing.Short() {
		t.Skip("connection-scale test")
	}
	const pool = 8
	srvA, srvB := wire.ServerAddr(0, 0), wire.ServerAddr(0, 1)
	dir := map[wire.Addr]string{srvA: freeAddr(t), srvB: freeAddr(t)}
	net := NewTCP(dir)
	defer net.Close()
	for _, a := range []wire.Addr{srvA, srvB} {
		if _, err := net.Attach(a, &echoHandler{}); err != nil {
			t.Fatal(err)
		}
	}
	mux, err := net.AttachMux(wire.ClientAddr(0, 1), pool)
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 1000
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	nodes := make([]Session, sessions)
	for i := 0; i < sessions; i++ {
		s, err := mux.Session(wire.MakeSession(uint16(i%4), uint16(i+1)), nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = s
		wg.Add(1)
		go func(i int, s Session) {
			defer wg.Done()
			for _, dst := range []wire.Addr{srvA, srvB} {
				nonce := uint64(i)<<16 | uint64(dst)&0xFFFF
				resp, err := s.Call(ctx, dst, &wire.Ping{Nonce: nonce})
				if err != nil {
					errs <- fmt.Errorf("session %d → %v: %w", i, dst, err)
					return
				}
				if pong, ok := resp.(*wire.Pong); !ok || pong.Nonce != nonce {
					errs <- fmt.Errorf("session %d → %v: resp %#v", i, dst, resp)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	v := net.Stats().View()
	if v.Sessions != sessions {
		t.Fatalf("sessions gauge = %d, want %d", v.Sessions, sessions)
	}
	// At most pool sockets per server, and both ends live in this process
	// (client and servers share one TCP instance, hence one gauge): the
	// mux dials ≤ pool×2 sockets and the two servers hold their accepted
	// ends, so the in-process peak is pool × servers × 2 ends.
	if maxConns := int64(pool * 2 * 2); v.OpenConnsPeak > maxConns {
		t.Fatalf("socket peak = %d for %d sessions, want <= %d", v.OpenConnsPeak, sessions, maxConns)
	}
	if v.OpenConnsPeak < 2 {
		t.Fatalf("socket peak = %d; the pool was never exercised", v.OpenConnsPeak)
	}
	for _, s := range nodes {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := net.Stats().Sessions.Load(); got != 0 {
		t.Fatalf("sessions gauge after teardown = %d, want 0", got)
	}
}
