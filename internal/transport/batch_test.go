package transport

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// countSink records batch sizes. With gate set, every WriteBatch counts
// its batch and then parks until the test sends one release — making batch
// boundaries fully deterministic: the test enqueues each burst while the
// writer is parked, so gather timing can never race frame arrival.
type countSink struct {
	gate     chan struct{}
	frames   atomic.Uint64
	batches  atomic.Uint64
	maxBatch atomic.Uint64
}

func (s *countSink) WriteBatch(frames []*wire.FrameBuf) error {
	n := uint64(len(frames))
	for _, f := range frames {
		wire.PutFrame(f)
	}
	s.frames.Add(n)
	s.batches.Add(1)
	for {
		old := s.maxBatch.Load()
		if n <= old || s.maxBatch.CompareAndSwap(old, n) {
			break
		}
	}
	if s.gate != nil {
		<-s.gate
	}
	return nil
}

// testFrame returns a pooled frame holding n payload bytes.
func testFrame(n int) *wire.FrameBuf {
	f := wire.GetFrame()
	for len(f.B) < n {
		f.B = append(f.B, byte(len(f.B)))
	}
	return f
}

// runGatedLoad drives `rounds` bursts of `burst` frames (frameBytes each)
// through a Batcher with pol, using the gated sink so every burst is
// enqueued while the writer is parked mid-flush: the whole burst is a
// ready backlog when the writer next gathers, so the batch boundaries are
// decided by the POLICY (byte cap / budget), not by scheduling races.
func runGatedLoad(t *testing.T, pol BatchPolicy, rounds, burst, frameBytes int) StatsView {
	t.Helper()
	sink := &countSink{gate: make(chan struct{})}
	stats := &Stats{}
	b := NewBatcher(sink, pol, stats)
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.Run()
	}()
	waitParked := func(batches uint64) {
		deadline := time.Now().Add(20 * time.Second)
		for sink.batches.Load() < batches {
			if time.Now().After(deadline) {
				t.Fatalf("writer never parked in flush %d", batches)
			}
			time.Sleep(10 * time.Microsecond)
		}
	}
	// Bootstrap: one sentinel frame parks the writer in its first flush.
	if err := b.Enqueue(context.Background(), testFrame(frameBytes)); err != nil {
		t.Fatal(err)
	}
	waitParked(1)
	total, released := uint64(1), uint64(0)
	for r := 0; r < rounds; r++ {
		for i := 0; i < burst; i++ {
			if err := b.Enqueue(context.Background(), testFrame(frameBytes)); err != nil {
				t.Fatal(err)
			}
		}
		total += uint64(burst)
		sink.gate <- struct{}{} // release the parked flush; the writer gathers the burst
		released++
		waitParked(released + 1)
	}
	// Drain: keep releasing until everything is flushed and nothing parks.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if released < sink.batches.Load() {
			sink.gate <- struct{}{}
			released++
			continue
		}
		if sink.frames.Load() == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained %d/%d frames", sink.frames.Load(), total)
		}
		time.Sleep(10 * time.Microsecond)
	}
	b.Close()
	<-done
	if q := stats.SendQueue.Load(); q != 0 {
		t.Fatalf("send-queue gauge left at %d after drain", q)
	}
	return stats.View()
}

// TestBatcherGreedyDrainReachable pins that FlushBudget=0 is still the
// seed's greedy drain-until-idle: a pre-queued backlog is retired in ONE
// flush, no matter how old its frames are.
func TestBatcherGreedyDrainReachable(t *testing.T) {
	stats := &Stats{}
	sink := &countSink{}
	b := NewBatcher(sink, BatchPolicy{FlushBudget: 0, QueueLen: 64}, stats)
	const n = 40
	for i := 0; i < n; i++ {
		if err := b.Enqueue(context.Background(), testFrame(64)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.Run()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for sink.frames.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.Close()
	<-done
	if sink.frames.Load() != n {
		t.Fatalf("delivered %d/%d", sink.frames.Load(), n)
	}
	if got := sink.batches.Load(); got != 1 {
		t.Fatalf("greedy drain split a ready backlog into %d flushes, want 1", got)
	}
	v := stats.View()
	if v.Flushes != 1 || v.FramesCoalesced != n-1 {
		t.Fatalf("stats: flushes=%d coalesced=%d, want 1/%d", v.Flushes, v.FramesCoalesced, n-1)
	}
}

// TestBatcherBudgetCutsOpenBatches pins the adaptive half: with a latency
// budget, a large ready backlog is cut into multiple batches (the budget
// bounds how long one batch stays open) where greedy drain would retire it
// in a single flush.
func TestBatcherBudgetCutsOpenBatches(t *testing.T) {
	const n = 20000
	mk := func(budget time.Duration) uint64 {
		sink := &countSink{}
		stats := &Stats{}
		b := NewBatcher(sink, BatchPolicy{FlushBudget: budget, MaxBatchBytes: 1 << 30, QueueLen: n}, stats)
		for i := 0; i < n; i++ {
			if err := b.Enqueue(context.Background(), testFrame(8)); err != nil {
				t.Fatal(err)
			}
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			b.Run()
		}()
		deadline := time.Now().Add(20 * time.Second)
		for sink.frames.Load() < n && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		b.Close()
		<-done
		if sink.frames.Load() != n {
			t.Fatalf("delivered %d/%d", sink.frames.Load(), n)
		}
		return sink.batches.Load()
	}
	if got := mk(0); got != 1 {
		t.Fatalf("greedy: %d flushes for a ready backlog, want 1", got)
	}
	// Gathering 20k frames takes far longer than 50µs (each iteration is a
	// channel receive plus a clock read), so the budget must cut the
	// backlog into several batches.
	if got := mk(50 * time.Microsecond); got < 2 {
		t.Fatalf("adaptive: budget never cut the open batch (%d flushes)", got)
	}
}

// TestBatcherIdleFlushIsImmediate pins that the budget adds no idle
// latency: a lone frame flushes as soon as the queue goes idle, not after
// FlushBudget.
func TestBatcherIdleFlushIsImmediate(t *testing.T) {
	sink := &countSink{}
	stats := &Stats{}
	b := NewBatcher(sink, BatchPolicy{FlushBudget: 5 * time.Second}, stats)
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.Run()
	}()
	start := time.Now()
	if err := b.Enqueue(context.Background(), testFrame(64)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sink.frames.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if sink.frames.Load() == 0 {
		t.Fatal("lone frame not flushed: idle queue must flush immediately")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("lone frame waited %v; the budget must not delay idle flushes", waited)
	}
	b.Close()
	<-done
}

// TestBatcherAdaptiveFlushUnderLoad is the loaded-transport acceptance
// test: bursts of 64×2 KiB frames land as ready backlogs (the gated sink
// removes scheduling races), and the adaptive policy must (a) keep the p99
// enqueue→flush delay at or under the configured budget and (b) coalesce
// at least as many frames per flush as the seed's greedy drain, whose
// batches the 64 KiB bufio buffer used to cut at 32 frames.
func TestBatcherAdaptiveFlushUnderLoad(t *testing.T) {
	const (
		rounds     = 20
		burst      = 64
		frameBytes = 2048
		budget     = 100 * time.Millisecond
	)
	framesPerFlush := func(v StatsView) float64 {
		if v.Flushes == 0 {
			return 0
		}
		return float64(v.FramesCoalesced+v.Flushes) / float64(v.Flushes)
	}

	// Seed-equivalent greedy baseline: no budget, batches cut at the old
	// bufio buffer size (64 KiB / 2 KiB = 32 frames per flush).
	seed := runGatedLoad(t, BatchPolicy{FlushBudget: 0, MaxBatchBytes: 64 << 10}, rounds, burst, frameBytes)
	adap := runGatedLoad(t, BatchPolicy{FlushBudget: budget, MaxBatchBytes: 256 << 10}, rounds, burst, frameBytes)

	if adap.FlushP99Delay <= 0 {
		t.Fatal("FlushP99Delay not recorded")
	}
	if adap.FlushP99Delay > budget {
		t.Fatalf("p99 enqueue→flush delay %v exceeds the %v budget", adap.FlushP99Delay, budget)
	}
	if framesPerFlush(adap) < framesPerFlush(seed) {
		t.Fatalf("adaptive coalescing regressed: %.1f frames/flush < greedy baseline %.1f",
			framesPerFlush(adap), framesPerFlush(seed))
	}
	// The full 128 KiB burst fits one adaptive batch but two seed batches,
	// so adaptive must come out strictly ahead, not merely equal.
	if framesPerFlush(adap) < 1.5*framesPerFlush(seed) {
		t.Fatalf("adaptive coalescing %.1f frames/flush not ahead of the seed's bufio-capped %.1f",
			framesPerFlush(adap), framesPerFlush(seed))
	}
	t.Logf("greedy(seed): %.1f frames/flush p99=%v; adaptive: %.1f frames/flush p99=%v",
		framesPerFlush(seed), seed.FlushP99Delay, framesPerFlush(adap), adap.FlushP99Delay)
}
