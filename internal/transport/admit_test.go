package transport

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// probeMsg is a pooled test-only message type whose Reset counts into a
// package atomic, so tests can observe that a transport actually recycled
// a response nobody claimed (the late-response regression).
const probeType = 200

var probeResets atomic.Uint64

type probeMsg struct{ N uint64 }

func (*probeMsg) Type() uint16            { return probeType }
func (m *probeMsg) Encode(b *wire.Buffer) { b.U64(m.N) }
func (m *probeMsg) Decode(r *wire.Reader) { m.N = r.U64() }
func (m *probeMsg) Reset()                { m.N = 0; probeResets.Add(1) }

func init() {
	wire.Register(probeType, func() wire.Message { return new(probeMsg) })
	wire.Pool(probeType)
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNewAdmitGateDisabled(t *testing.T) {
	if g := NewAdmitGate(AdmitConfig{}, nil); g != nil {
		t.Fatalf("Limit 0 must disable the gate, got %v", g)
	}
}

func TestAdmitGateTokens(t *testing.T) {
	var stats AdmitStats
	g := NewAdmitGate(AdmitConfig{Limit: 2, ParkPerTenant: 1}, &stats)
	if g == nil {
		t.Fatal("enabled config returned nil gate")
	}
	noop := func() {}
	if g.Submit(1, noop, noop) != AdmitGranted || g.Submit(1, noop, noop) != AdmitGranted {
		t.Fatal("gate refused requests within the limit")
	}
	// Tokens exhausted: the next request parks, the one after (queue full)
	// is shed and counted against its tenant.
	ran := make(chan struct{})
	if got := g.Submit(1, func() { close(ran); g.Release() }, noop); got != AdmitQueued {
		t.Fatalf("third submit = %v, want AdmitQueued", got)
	}
	if got := g.Submit(1, noop, noop); got != AdmitShed {
		t.Fatalf("fourth submit = %v, want AdmitShed (park queue full)", got)
	}
	v := stats.View()
	if v.Admitted != 2 || v.Shed != 1 || v.Depth != 2 || v.DepthPeak != 2 || v.Parked != 1 {
		t.Fatalf("stats = %+v, want admitted=2 shed=1 depth=2 peak=2 parked=1", v)
	}
	if got := stats.TenantShed(1); got != 1 {
		t.Fatalf("TenantShed(1) = %d, want 1", got)
	}
	// Releasing a token hands it to the parked waiter, not the free pool.
	g.Release()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("parked waiter did not run after Release")
	}
	g.Release()
	waitUntil(t, "depth to drain", func() bool { return stats.Depth.Load() == 0 })
	if g.RetryAfter() != DefaultRetryAfter {
		t.Fatalf("RetryAfter = %v, want default %v", g.RetryAfter(), DefaultRetryAfter)
	}
}

// TestAdmitGateTenantRoundRobin parks waiters of a hot tenant and a
// trickle tenant while every token is held, then releases tokens one at a
// time: grants must alternate between the tenants (deficit round-robin
// with unit quantum), not drain the hot tenant's queue first.
func TestAdmitGateTenantRoundRobin(t *testing.T) {
	var stats AdmitStats
	g := NewAdmitGate(AdmitConfig{Limit: 1, ParkPerTenant: 8}, &stats)
	noop := func() {}
	if g.Submit(1, noop, noop) != AdmitGranted {
		t.Fatal("first submit not granted")
	}
	order := make(chan uint16, 8)
	park := func(tenant uint16) {
		if g.Submit(tenant, func() { order <- tenant; g.Release() }, noop) != AdmitQueued {
			t.Fatalf("tenant %d did not park", tenant)
		}
	}
	// Hot tenant parks 3 requests before the trickle tenant parks 1.
	park(1)
	park(1)
	park(1)
	park(2)
	g.Release() // cascade: each parked run releases, granting the next
	var got []uint16
	for i := 0; i < 4; i++ {
		select {
		case tn := <-order:
			got = append(got, tn)
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of 4 parked waiters ran: %v", i, got)
		}
	}
	// Round-robin: 1, 2, 1, 1 — the trickle tenant is served second, not
	// last.
	want := []uint16{1, 2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
	waitUntil(t, "depth to drain", func() bool { return stats.Depth.Load() == 0 })
}

// TestAdmitGateCloseDrainsParked verifies Close fires every parked
// waiter's drop closure so shutdown accounting is released.
func TestAdmitGateCloseDrainsParked(t *testing.T) {
	var stats AdmitStats
	g := NewAdmitGate(AdmitConfig{Limit: 1, ParkPerTenant: 4}, &stats)
	noop := func() {}
	if g.Submit(1, noop, noop) != AdmitGranted {
		t.Fatal("first submit not granted")
	}
	var dropped atomic.Int64
	for i := 0; i < 3; i++ {
		if g.Submit(uint16(i%2), func() { t.Error("parked run fired across Close") }, func() { dropped.Add(1) }) != AdmitQueued {
			t.Fatalf("submit %d did not park", i)
		}
	}
	g.Close()
	if dropped.Load() != 3 {
		t.Fatalf("dropped %d parked waiters, want 3", dropped.Load())
	}
	if got := g.Submit(1, noop, noop); got != AdmitShed {
		t.Fatalf("submit after Close = %v, want AdmitShed", got)
	}
	if p := stats.Parked.Load(); p != 0 {
		t.Fatalf("parked gauge after Close = %d, want 0", p)
	}
}

// TestAdmitGateOverloadHysteresis drives the queue-depth detector through
// trip, hold, and clear: it must trip at the threshold, KEEP shedding while
// the signal sits between half and full threshold, and clear only at or
// below half. lastProbe is reset before each evaluation to defeat the
// probe rate limit deterministically.
func TestAdmitGateOverloadHysteresis(t *testing.T) {
	var depth atomic.Int64
	var stats AdmitStats
	g := NewAdmitGate(AdmitConfig{Limit: 4, ShedQueueFrames: 100, QueueDepth: depth.Load}, &stats)
	probe := func() bool {
		g.lastProbe.Store(0)
		return g.overloadedNow()
	}
	if probe() {
		t.Fatal("detector tripped with an empty queue")
	}
	depth.Store(100)
	if !probe() {
		t.Fatal("detector did not trip at the threshold")
	}
	if stats.Overloaded.Load() != 1 {
		t.Fatalf("overloaded gauge = %d, want 1", stats.Overloaded.Load())
	}
	g.lastProbe.Store(0)
	if g.Submit(0, func() {}, func() {}) != AdmitShed {
		t.Fatal("gate admitted while the detector is tripped, despite free tokens")
	}
	if stats.Shed.Load() == 0 {
		t.Fatal("overload shed not counted")
	}
	depth.Store(60) // below trip, above half: hysteresis must hold
	if !probe() {
		t.Fatal("detector cleared above half the threshold (flapping)")
	}
	depth.Store(50) // at half: clears
	if probe() {
		t.Fatal("detector did not clear at half the threshold")
	}
	if stats.Overloaded.Load() != 0 {
		t.Fatalf("overloaded gauge = %d after clear, want 0", stats.Overloaded.Load())
	}
	g.lastProbe.Store(0)
	if g.Submit(0, func() {}, func() {}) != AdmitGranted {
		t.Fatal("gate still shedding after the detector cleared")
	}
	g.Release()
}

func TestAdmitGateFsyncSignal(t *testing.T) {
	var p99 atomic.Int64
	var stats AdmitStats
	g := NewAdmitGate(AdmitConfig{
		Limit:        4,
		ShedFsyncP99: 10 * time.Millisecond,
		FsyncP99:     func() time.Duration { return time.Duration(p99.Load()) },
	}, &stats)
	probe := func() bool {
		g.lastProbe.Store(0)
		return g.overloadedNow()
	}
	if probe() {
		t.Fatal("detector tripped with zero fsync delay")
	}
	p99.Store(int64(10 * time.Millisecond))
	if !probe() {
		t.Fatal("detector did not trip at the fsync threshold")
	}
	p99.Store(int64(4 * time.Millisecond))
	if probe() {
		t.Fatal("detector did not clear below half the fsync threshold")
	}
}

func TestBusyBackoffBounds(t *testing.T) {
	hint := 100 * time.Microsecond
	for attempt := 0; attempt < 12; attempt++ {
		want := hint
		for i := 0; i < attempt && want < maxBusyBackoff; i++ {
			want *= 2
		}
		if want > maxBusyBackoff {
			want = maxBusyBackoff
		}
		for i := 0; i < 32; i++ {
			got := BusyBackoff(attempt, hint)
			if got < want/2 || got > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, want/2, want)
			}
		}
	}
	// A zero hint falls back to the default.
	if got := BusyBackoff(0, 0); got < DefaultRetryAfter/2 || got > DefaultRetryAfter {
		t.Fatalf("zero-hint backoff %v outside [%v, %v]", got, DefaultRetryAfter/2, DefaultRetryAfter)
	}
}

// busyHandler responds Busy to the first busyN requests, then serves
// normally.
type busyHandler struct {
	busyN int64
	calls atomic.Int64
}

func (h *busyHandler) Handle(n Node, src wire.From, reqID uint64, m wire.Message) {
	if reqID == 0 {
		return
	}
	if h.calls.Add(1) <= h.busyN {
		n.Respond(src, reqID, &wire.Busy{RetryAfterMicros: 50})
		return
	}
	if p, ok := m.(*wire.Ping); ok {
		n.Respond(src, reqID, &wire.Pong{Nonce: p.Nonce})
	}
}

func TestCallRetryExhaustsToErrOverloaded(t *testing.T) {
	net := NewLocal(LatencyModel{})
	defer net.Close()
	srv := wire.ServerAddr(0, 0)
	if _, err := net.Attach(srv, &busyHandler{busyN: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach(wire.ClientAddr(0, 1), &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var retries int
	_, err = CallRetry(ctx, cli, srv, &wire.Ping{}, func() { retries++ })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if retries != DefaultBusyRetries {
		t.Fatalf("onRetry ran %d times, want %d", retries, DefaultBusyRetries)
	}
}

func TestCallRetryRecoversAfterBusy(t *testing.T) {
	net := NewLocal(LatencyModel{})
	defer net.Close()
	srv := wire.ServerAddr(0, 0)
	if _, err := net.Attach(srv, &busyHandler{busyN: 3}); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach(wire.ClientAddr(0, 1), &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var retries int
	resp, err := CallRetry(ctx, cli, srv, &wire.Ping{Nonce: 9}, func() { retries++ })
	if err != nil {
		t.Fatal(err)
	}
	if pong, ok := resp.(*wire.Pong); !ok || pong.Nonce != 9 {
		t.Fatalf("resp = %#v, want Pong{9}", resp)
	}
	if retries != 3 {
		t.Fatalf("onRetry ran %d times, want 3", retries)
	}
}

// gatedParkHandler parks client-sourced Pings until release closes;
// server-sourced Pings are answered immediately. It models client handlers
// occupying every admission token while cluster traffic must stay live.
type gatedParkHandler struct {
	release chan struct{}
	parked  atomic.Int64
}

func (p *gatedParkHandler) Handle(n Node, src wire.From, reqID uint64, m wire.Message) {
	ping, ok := m.(*wire.Ping)
	if !ok || reqID == 0 {
		return
	}
	if src.Addr.IsClient() {
		p.parked.Add(1)
		<-p.release
	}
	n.Respond(src, reqID, &wire.Pong{Nonce: ping.Nonce})
}

// testAdmissionLiveness is the gate's liveness invariant, shared by both
// transports: with every admission token held by parked client handlers,
// (a) further client requests are shed with a typed Busy, and (b)
// cluster-sourced requests still dispatch and complete — the gate must
// never apply to them.
func testAdmissionLiveness(t *testing.T, net Network, stats *AdmitStats, done func()) {
	t.Helper()
	defer done()
	srv := wire.ServerAddr(0, 0)
	peer := wire.ServerAddr(0, 1)
	h := &gatedParkHandler{release: make(chan struct{})}
	if _, err := net.Attach(srv, h); err != nil {
		t.Fatal(err)
	}
	pn, err := net.Attach(peer, &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Two clients park inside the handler, holding both tokens.
	parked := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cli, err := net.Attach(wire.ClientAddr(0, i+1), &echoHandler{})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			_, err := cli.Call(ctx, srv, &wire.Ping{Nonce: 1})
			parked <- err
		}()
	}
	waitUntil(t, "both clients parked", func() bool { return h.parked.Load() == 2 })

	// A third client parks in the gate's per-tenant queue (cap 1 here)
	// instead of spilling into the handler pool.
	c3, err := net.Attach(wire.ClientAddr(0, 3), &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := c3.Call(ctx, srv, &wire.Ping{Nonce: 2})
		queued <- err
	}()
	waitUntil(t, "third client to park in the gate", func() bool { return stats.Parked.Load() == 1 })

	// A fourth client finds the park queue full and must be shed with
	// Busy, not queued behind the parked handlers.
	c4, err := net.Attach(wire.ClientAddr(0, 4), &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c4.Call(ctx, srv, &wire.Ping{Nonce: 3})
	var busy *wire.Busy
	if !errors.As(err, &busy) {
		t.Fatalf("fourth client err = %v, want *wire.Busy", err)
	}
	if busy.RetryAfter() <= 0 {
		t.Fatalf("Busy carried no retry-after hint: %+v", busy)
	}

	// Cluster traffic must still flow while every token is held.
	resp, err := pn.Call(ctx, srv, &wire.Ping{Nonce: 7})
	if err != nil {
		t.Fatalf("server→server call under full gate: %v", err)
	}
	if pong, ok := resp.(*wire.Pong); !ok || pong.Nonce != 7 {
		t.Fatalf("server→server resp = %#v, want Pong{7}", resp)
	}

	close(h.release)
	for i := 0; i < 2; i++ {
		if err := <-parked; err != nil {
			t.Fatalf("parked client call failed after release: %v", err)
		}
	}
	// The gate-parked third client is granted a freed token and completes.
	if err := <-queued; err != nil {
		t.Fatalf("gate-parked client call failed after release: %v", err)
	}
	v := stats.View()
	if v.Admitted != 3 || v.Shed < 1 {
		t.Fatalf("stats = %+v, want admitted=3 shed>=1", v)
	}
	waitUntil(t, "admission depth to drain", func() bool { return stats.Depth.Load() == 0 })
}

func TestTCPAdmissionGateLiveness(t *testing.T) {
	dir := map[wire.Addr]string{
		wire.ServerAddr(0, 0): freeAddr(t),
		wire.ServerAddr(0, 1): freeAddr(t),
	}
	net := NewTCP(dir)
	net.SetAdmission(AdmitConfig{Limit: 2, ParkPerTenant: 1})
	testAdmissionLiveness(t, net, net.AdmitStats(), func() { net.Close() })
}

func TestLocalAdmissionGateLiveness(t *testing.T) {
	net := NewLocal(LatencyModel{})
	net.SetAdmission(AdmitConfig{Limit: 2, ParkPerTenant: 1})
	testAdmissionLiveness(t, net, net.AdmitStats(), func() { net.Close() })
}

// lateRespHandler holds the response until the test releases it, after the
// caller's ctx is already cancelled — manufacturing a response nobody
// claims.
type lateRespHandler struct {
	got     chan struct{}
	proceed chan struct{}
}

func (h *lateRespHandler) Handle(n Node, src wire.From, reqID uint64, m wire.Message) {
	if reqID == 0 {
		return
	}
	h.got <- struct{}{}
	<-h.proceed
	n.Respond(src, reqID, &probeMsg{N: 9})
}

// testLateResponse is the regression for the silent late-response leak:
// a response arriving after its Call gave up must be counted as dropped
// AND recycled back to the message pool (observed via probeMsg's counting
// Reset), on both transports.
func testLateResponse(t *testing.T, net Network, stats *Stats, done func()) {
	t.Helper()
	defer done()
	srv := wire.ServerAddr(0, 0)
	h := &lateRespHandler{got: make(chan struct{}), proceed: make(chan struct{})}
	if _, err := net.Attach(srv, h); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach(wire.ClientAddr(0, 1), &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := cli.Call(ctx, srv, &wire.Ping{})
		errCh <- err
	}()
	<-h.got
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v, want context.Canceled", err)
	}
	// The Call has returned, so its pending entry is gone. Release the
	// response and require both the drop accounting and the pool return.
	drop0 := stats.Dropped.Load()
	resets0 := probeResets.Load()
	close(h.proceed)
	waitUntil(t, "late response dropped with accounting", func() bool {
		return stats.Dropped.Load() > drop0
	})
	waitUntil(t, "late response recycled to the pool", func() bool {
		return probeResets.Load() > resets0
	})
}

func TestTCPLateResponseRecycledAndCounted(t *testing.T) {
	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): freeAddr(t)}
	net := NewTCP(dir)
	testLateResponse(t, net, net.Stats(), func() { net.Close() })
}

func TestLocalLateResponseRecycledAndCounted(t *testing.T) {
	net := NewLocal(LatencyModel{})
	testLateResponse(t, net, net.Stats(), func() { net.Close() })
}

// TestTCPWorkQueueCoversWorkers is the regression for the spurious
// HandlerOverflow on large machines: with GOMAXPROCS above the fixed queue
// length, dispatch could reserve an idle worker and still find the queue
// full, spilling despite the reservation. Attach must size the queue to
// cover the worker pool.
func TestTCPWorkQueueCoversWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(handlerQueueLen + 64)
	defer runtime.GOMAXPROCS(old)

	net := NewTCP(map[wire.Addr]string{})
	defer net.Close()
	n, err := net.Attach(wire.ServerAddr(0, 0), &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	node := n.(*tcpNode)
	workers := handlerWorkers()
	if workers <= handlerQueueLen {
		t.Fatalf("test setup: worker count %d does not exceed queue length %d", workers, handlerQueueLen)
	}
	if cap(node.workq) < workers {
		t.Fatalf("workq cap %d < worker count %d: reserved dispatches can spuriously overflow", cap(node.workq), workers)
	}
}
