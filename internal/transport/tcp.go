package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// maxFrame bounds a single TCP frame.
const maxFrame = 1 << 26 // 64 MiB

const (
	// readBufSize sizes the per-connection buffered reader.
	readBufSize = 64 << 10
	// handlerQueueLen bounds the per-node inbound request queue feeding
	// the worker pool. It is a hand-off buffer, not a backlog: dispatch
	// only queues a request after reserving an idle worker, so nothing
	// ever waits in it behind a blocked handler. Attach widens it to the
	// worker count when that is larger — a reserved dispatch must always
	// find queue room, or reservations spuriously spill (HandlerOverflow).
	handlerQueueLen = 256

	// shedQueueLen bounds the per-node queue feeding the Busy responder.
	// Shedding must never block the read path, so a full queue drops the
	// shed notice instead (the client's deadline is the backstop).
	shedQueueLen = 256
)

// handlerWorkers is the size of the per-node inbound worker pool.
func handlerWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

// TCP is a Network over real sockets. Server addresses must appear in the
// directory; clients need not listen — peers respond over the connection a
// request arrived on.
type TCP struct {
	stats      Stats
	pol        BatchPolicy
	admit      AdmitConfig
	admitStats AdmitStats

	mu     sync.Mutex
	dir    map[wire.Addr]string
	nodes  map[wire.Addr]*tcpNode
	closed bool
}

// NewTCP returns a TCP network with the given address directory
// (wire address → "host:port") and the default adaptive batch policy.
func NewTCP(directory map[wire.Addr]string) *TCP {
	return NewTCPOpts(directory, DefaultPolicy())
}

// NewTCPOpts is NewTCP with an explicit batch policy (kvserver wires its
// -flush-budget/-writev-bytes flags through here).
func NewTCPOpts(directory map[wire.Addr]string, pol BatchPolicy) *TCP {
	dir := make(map[wire.Addr]string, len(directory))
	for a, hp := range directory {
		dir[a] = hp
	}
	return &TCP{pol: pol.withDefaults(), dir: dir, nodes: make(map[wire.Addr]*tcpNode)}
}

// Stats exposes traffic counters.
func (t *TCP) Stats() *Stats { return &t.stats }

// AdmitStats exposes the admission-control counters (all zero while
// admission is disabled).
func (t *TCP) AdmitStats() *AdmitStats { return &t.admitStats }

// SetAdmission configures client admission control for nodes attached
// AFTER the call: each server-address node gets its own gate (token cap +
// overload detector) applied only to requests whose source carries the
// client flag. Call it before Attach; already-attached nodes are
// unaffected.
func (t *TCP) SetAdmission(cfg AdmitConfig) {
	t.mu.Lock()
	t.admit = cfg
	t.mu.Unlock()
}

// Attach registers addr. If addr is in the directory the node listens on
// its directory endpoint; otherwise it is a client-only node that can dial
// out but not accept.
func (t *TCP) Attach(addr wire.Addr, h Handler) (Node, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, dup := t.nodes[addr]; dup {
		return nil, ErrAttached
	}
	// The queue must hold at least one entry per worker: dispatch reserves
	// an idle worker before queueing, and a reservation finding the queue
	// full would spill despite the idle worker.
	workers := handlerWorkers()
	n := &tcpNode{
		t:     t,
		addr:  addr,
		h:     h,
		conns: make(map[wire.Addr]*tcpConn),
		all:   make(map[*tcpConn]struct{}),
		workq: make(chan inbound, max(handlerQueueLen, workers)),
		stop:  make(chan struct{}),
	}
	if addr.IsServer() && t.admit.Enabled() {
		n.gate = NewAdmitGate(t.admit, &t.admitStats)
		n.shedq = make(chan shedNote, shedQueueLen)
		n.wg.Add(1)
		go n.shedResponder()
	}
	if hp, ok := t.dir[addr]; ok {
		ln, err := net.Listen("tcp", hp)
		if err != nil {
			close(n.stop)
			n.wg.Wait()
			return nil, fmt.Errorf("transport: listen %s: %w", hp, err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop()
	}
	for i := 0; i < workers; i++ {
		n.wg.Add(1)
		go n.worker()
	}
	t.nodes[addr] = n
	return n, nil
}

// Close shuts down every attached node.
func (t *TCP) Close() error {
	t.mu.Lock()
	nodes := make([]*tcpNode, 0, len(t.nodes))
	for _, n := range t.nodes {
		nodes = append(nodes, n)
	}
	t.closed = true
	t.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
	return nil
}

// tcpConn owns one socket. Its send path is one Batcher (the engine shared
// with the Local simulator) whose sink scatter-gathers each coalesced batch
// into the socket.
type tcpConn struct {
	c net.Conn
	b *Batcher

	peer atomic.Uint32 // learned wire.Addr, 0 until known
	once sync.Once
}

func newTCPConn(c net.Conn, pol BatchPolicy, stats *Stats) *tcpConn {
	pol = pol.withDefaults()
	tc := &tcpConn{c: c}
	tc.b = NewBatcher(&tcpSink{c: c, stats: stats, writevMin: pol.WritevBytes}, pol, stats)
	return tc
}

// close shuts the socket down and releases the writer. Idempotent.
func (tc *tcpConn) close() {
	tc.once.Do(func() {
		tc.b.Close()
		tc.c.Close()
	})
}

// tcpSink turns one coalesced batch into one scatter-gather socket write.
// Frames below the writev threshold are copied into a staging buffer whose
// chunks become iovecs; frames at or above it contribute their own bytes as
// an iovec directly — AppendEnvelope put the length prefix in the same
// buffer, so large frames reach the kernel with zero copies. The whole
// batch then goes out via net.Buffers.WriteTo, which is writev(2) on a
// *net.TCPConn.
//
// Ownership: staged frames are recycled as soon as their bytes are copied;
// writev frames must outlive the write they used to be insulated from by
// the bufio copy, so they are held in owned and recycled only after WriteTo
// returns.
type tcpSink struct {
	c         net.Conn
	stats     *Stats
	writevMin int

	stage []byte
	bufs  [][]byte
	owned []*wire.FrameBuf
}

func (s *tcpSink) WriteBatch(frames []*wire.FrameBuf) error {
	// Pre-size the staging buffer so chunk slices recorded in bufs are
	// never invalidated by a growth reallocation mid-batch.
	small := 0
	for _, f := range frames {
		if len(f.B) < s.writevMin {
			small += len(f.B)
		}
	}
	if cap(s.stage) < small {
		s.stage = make([]byte, 0, small)
	}
	stage, bufs := s.stage[:0], s.bufs[:0]
	chunk := 0 // start of the staging chunk not yet recorded in bufs
	for _, f := range frames {
		if len(f.B) >= s.writevMin {
			if len(stage) > chunk {
				bufs = append(bufs, stage[chunk:len(stage):len(stage)])
				chunk = len(stage)
			}
			bufs = append(bufs, f.B)
			s.owned = append(s.owned, f)
			s.stats.WritevBytes.Add(uint64(len(f.B)))
		} else {
			stage = append(stage, f.B...)
			wire.PutFrame(f)
		}
	}
	if len(stage) > chunk {
		bufs = append(bufs, stage[chunk:])
	}
	var err error
	if len(bufs) > 0 {
		nb := net.Buffers(bufs)
		_, err = nb.WriteTo(s.c)
	}
	for i, f := range s.owned {
		wire.PutFrame(f)
		s.owned[i] = nil
	}
	s.owned = s.owned[:0]
	clear(bufs) // drop stale references so recycled arrays are collectable
	s.stage, s.bufs = stage[:0], bufs[:0]
	return err
}

// inbound is one request waiting for a handler worker. gate, when non-nil,
// holds the admission token the request was admitted under; whoever runs
// the handler releases it after Handle returns.
type inbound struct {
	src   wire.Addr
	reqID uint64
	msg   wire.Message
	gate  *AdmitGate
}

// shedNote queues one shed client request for the Busy responder: either a
// reqID to respond to, or (one-way correlated requests) an echo id.
type shedNote struct {
	src   wire.Addr
	reqID uint64
	echo  uint64
}

type tcpNode struct {
	t    *TCP
	addr wire.Addr
	h    Handler
	ln   net.Listener

	// gate, when non-nil, admission-controls client-sourced requests;
	// shedq feeds the Busy responder goroutine.
	gate  *AdmitGate
	shedq chan shedNote

	mu    sync.Mutex
	conns map[wire.Addr]*tcpConn // routable by learned/dialed peer
	all   map[*tcpConn]struct{}  // every live conn, learned or not

	workq chan inbound
	idle  atomic.Int64 // workers ready to receive minus requests queued for them
	stop  chan struct{}
	wg    sync.WaitGroup

	reqSeq  atomic.Uint64
	pending sync.Map // reqID -> chan *wire.Envelope
	closed  atomic.Bool
}

func (n *tcpNode) Addr() wire.Addr { return n.addr }

func (n *tcpNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.startConn(newTCPConn(c, n.t.pol, &n.t.stats))
	}
}

// startConn registers tc and launches its reader and writer goroutines.
// Returns false (and closes tc) if the node is already shut down.
func (n *tcpNode) startConn(tc *tcpConn) bool {
	n.mu.Lock()
	if n.closed.Load() {
		n.mu.Unlock()
		tc.close()
		return false
	}
	n.all[tc] = struct{}{}
	// Add under n.mu: Close sets closed before taking n.mu to snapshot
	// conns, so this Add is always ordered before Close's wg.Wait (Add
	// racing Wait at counter zero is documented WaitGroup misuse).
	n.wg.Add(2)
	n.mu.Unlock()
	go n.readLoop(tc)
	go n.writeLoop(tc)
	return true
}

// writeLoop hosts the conn's batching engine and tears the endpoint down
// when it stops (socket error or close).
func (n *tcpNode) writeLoop(tc *tcpConn) {
	defer n.wg.Done()
	tc.b.Run()
	n.forget(tc)
	tc.close()
}

// learn records that frames from peer arrive on tc, so responses can flow
// back over the same connection. First learner wins the routing entry; a
// conn that loses (a symmetric dial race, or a fresh conn racing a stale
// one) still remembers its peer and is promoted by forget when the
// registered conn dies, so the peer never becomes unroutable (clients are
// not in the directory) and the read hot path stays one atomic load.
func (n *tcpNode) learn(peer wire.Addr, tc *tcpConn) {
	tc.peer.Store(uint32(peer))
	n.mu.Lock()
	if _, dup := n.conns[peer]; !dup {
		n.conns[peer] = tc
	}
	n.mu.Unlock()
}

// forget removes tc from both connection maps. If tc held the routing
// entry for its peer, another live conn that knows the same peer (a learn
// race loser) is promoted in its place.
func (n *tcpNode) forget(tc *tcpConn) {
	n.mu.Lock()
	delete(n.all, tc)
	if peer := wire.Addr(tc.peer.Load()); peer.Valid() && n.conns[peer] == tc {
		delete(n.conns, peer)
		for other := range n.all {
			if wire.Addr(other.peer.Load()) == peer {
				n.conns[peer] = other
				break
			}
		}
	}
	n.mu.Unlock()
}

// readLoop decodes frames from tc, learning the peer's address from the
// first envelope carrying a valid source. Responses are matched to pending
// Calls inline; requests go to the worker pool.
func (n *tcpNode) readLoop(tc *tcpConn) {
	defer n.wg.Done()
	defer func() {
		n.forget(tc)
		tc.close()
	}()
	br := bufio.NewReaderSize(tc.c, readBufSize)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[:])
		if size > maxFrame {
			return
		}
		f := wire.GetFrameLen(int(size))
		if _, err := io.ReadFull(br, f.B); err != nil {
			wire.PutFrame(f)
			return
		}
		env, err := wire.DecodeEnvelope(f.B)
		wire.PutFrame(f) // DecodeEnvelope copies fields out; safe to recycle
		if err != nil {
			n.t.stats.Dropped.Add(1)
			continue
		}
		if !wire.Addr(tc.peer.Load()).Valid() && env.Src.Valid() {
			n.learn(env.Src, tc)
		}
		if env.Resp {
			n.deliverResponse(env)
			continue
		}
		n.dispatch(env)
	}
}

// dispatch hands a request to the worker pool only when an idle worker is
// reserved for it, spilling to a fresh goroutine otherwise. Spilling on a
// busy pool — not merely a full queue — is a liveness requirement: handlers
// may park on cluster state (a COPS dep check waiting for replication), and
// the very message that would unblock them must never sit queued behind
// them with every worker parked. The spill lane is deliberately unbounded:
// any cap on concurrently running handlers recreates that deadlock for the
// requests beyond the cap, so under saturation this degrades to the (safe)
// goroutine-per-request design and HandlerOverflow records how often.
//
// Client-sourced requests are the exception: they first pass the admission
// gate (when configured), and excess client load is shed with a typed Busy
// instead of growing the spill lane. The deadlock argument does not apply
// to them — no cluster-state transition waits on a client request — so
// capping client handlers is safe, and it is what keeps a client stampede
// from starving the intra-cluster traffic that must stay unbounded.
func (n *tcpNode) dispatch(env *wire.Envelope) {
	in := inbound{src: env.Src, reqID: env.ReqID, msg: env.Msg}
	if n.gate != nil && env.Src.IsClient() {
		if !n.gate.Admit() {
			n.shed(env)
			return
		}
		in.gate = n.gate
	}
	if n.idle.Add(-1) >= 0 {
		// Reserved one worker receive; exactly one worker iteration will
		// consume what we queue, so this request cannot strand.
		select {
		case n.workq <- in:
			return
		default:
			// Queue full despite the reservation (only possible if the
			// worker count ever exceeds handlerQueueLen); give it back.
			n.idle.Add(1)
		}
	} else {
		n.idle.Add(1)
	}
	n.t.stats.HandlerOverflow.Add(1)
	// Safe to Add here: the calling readLoop holds a wg slot, so the
	// counter cannot be zero while Close's Wait is racing us.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.h.Handle(n, in.src, in.reqID, in.msg)
		wire.Recycle(in.msg)
		if in.gate != nil {
			in.gate.Release()
		}
	}()
}

// shed answers one declined client request with Busy, off the read path:
// the note goes to a bounded queue served by the shed responder, so a
// congested send path can never park the readLoop behind a Busy write. A
// request that is neither awaited (reqID) nor correlated has no address to
// send Busy to and is dropped with accounting.
func (n *tcpNode) shed(env *wire.Envelope) {
	note := shedNote{src: env.Src, reqID: env.ReqID}
	if note.reqID == 0 {
		corr, ok := env.Msg.(wire.Correlated)
		if !ok {
			wire.Recycle(env.Msg)
			n.t.stats.Dropped.Add(1)
			return
		}
		note.echo = corr.CorrelationID()
	}
	wire.Recycle(env.Msg)
	select {
	case n.shedq <- note:
	default:
		n.t.stats.Dropped.Add(1)
	}
}

// shedResponder turns queued shed notes into Busy responses.
func (n *tcpNode) shedResponder() {
	defer n.wg.Done()
	for {
		select {
		case note := <-n.shedq:
			hint := busyHintMicros(n.gate)
			if note.reqID != 0 {
				_ = n.Respond(note.src, note.reqID, &wire.Busy{RetryAfterMicros: hint})
			} else {
				_ = n.Send(note.src, &wire.Busy{Echo: note.echo, RetryAfterMicros: hint})
			}
		case <-n.stop:
			return
		}
	}
}

// worker is one member of the node's inbound handler pool. Each loop
// iteration publishes one idle token before receiving, pairing every queued
// request with a worker receive.
func (n *tcpNode) worker() {
	defer n.wg.Done()
	for {
		n.idle.Add(1)
		select {
		case in := <-n.workq:
			n.h.Handle(n, in.src, in.reqID, in.msg)
			wire.Recycle(in.msg)
			if in.gate != nil {
				in.gate.Release()
			}
		case <-n.stop:
			return
		}
	}
}

// getConn returns the connection to dst, dialing through the directory if
// none is learned yet. The dial respects ctx, so a Call deadline bounds
// connection establishment too, not just queueing.
func (n *tcpNode) getConn(ctx context.Context, dst wire.Addr) (*tcpConn, error) {
	n.mu.Lock()
	if tc, ok := n.conns[dst]; ok {
		n.mu.Unlock()
		return tc, nil
	}
	n.mu.Unlock()

	n.t.mu.Lock()
	hp, ok := n.t.dir[dst]
	n.t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, dst)
	}
	// Abort the dial on node shutdown too: Send/Respond dial with a
	// Background context, and Close must not sit in wg.Wait for the
	// kernel connect timeout behind a blackholed peer.
	dialCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-n.stop:
			cancel()
		case <-dialCtx.Done():
		}
	}()
	var d net.Dialer
	c, err := d.DialContext(dialCtx, "tcp", hp)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %v at %s: %w", dst, hp, err)
	}
	tc := newTCPConn(c, n.t.pol, &n.t.stats)
	tc.peer.Store(uint32(dst))
	n.mu.Lock()
	if prev, dup := n.conns[dst]; dup {
		n.mu.Unlock()
		// Tear the whole loser endpoint down, not just its socket: close()
		// also stops the Batcher, so a frame enqueued on the loser before
		// registration could never strand in a writerless queue.
		tc.close()
		return prev, nil
	}
	n.conns[dst] = tc
	n.mu.Unlock()
	if !n.startConn(tc) {
		return nil, ErrClosed
	}
	return tc, nil
}

func (n *tcpNode) send(ctx context.Context, env *wire.Envelope) error {
	if n.closed.Load() {
		return ErrClosed
	}
	tc, err := n.getConn(ctx, env.Dst)
	if err != nil {
		return err
	}
	f := wire.GetFrame()
	f.AppendEnvelope(env)
	// Exclude the 4-byte length prefix so BytesSent counts envelope bytes
	// on both transports (Local has no framing), keeping the paper's
	// communication-overhead metrics comparable across deployments. Sized
	// before enqueue (which takes ownership of f) and counted only after
	// it succeeds, so aborted sends don't inflate the traffic metrics.
	bytes := uint64(len(f.B) - wire.FrameHdrLen)
	if err := tc.b.Enqueue(ctx, f); err != nil {
		return err
	}
	n.t.stats.MsgsSent.Add(1)
	n.t.stats.BytesSent.Add(bytes)
	return nil
}

// Send delivers a one-way message. Backpressure from a stalled peer blocks
// until the connection or node closes.
func (n *tcpNode) Send(dst wire.Addr, m wire.Message) error {
	return n.send(context.Background(), &wire.Envelope{Src: n.addr, Dst: dst, Msg: m})
}

// Respond answers request reqID at dst.
func (n *tcpNode) Respond(dst wire.Addr, reqID uint64, m wire.Message) error {
	return n.send(context.Background(), &wire.Envelope{Src: n.addr, Dst: dst, ReqID: reqID, Resp: true, Msg: m})
}

// Call sends a request and waits for the matching response.
func (n *tcpNode) Call(ctx context.Context, dst wire.Addr, m wire.Message) (wire.Message, error) {
	id := n.reqSeq.Add(1)
	ch := make(chan *wire.Envelope, 1)
	n.pending.Store(id, ch)
	defer n.pending.Delete(id)
	if err := n.send(ctx, &wire.Envelope{Src: n.addr, Dst: dst, ReqID: id, Msg: m}); err != nil {
		return nil, err
	}
	select {
	case env := <-ch:
		return unwrapResp(env)
	case <-n.stop:
		// Node shut down while waiting. Prefer a response that already
		// arrived (select picks ready cases at random) over reporting a
		// completed operation as failed; otherwise return promptly —
		// this also lets handler workers parked in nested Calls finish,
		// so Close's wg.Wait cannot hang on them.
		select {
		case env := <-ch:
			return unwrapResp(env)
		default:
		}
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deliverResponse matches one response to its waiting Call. A response
// nobody claims — the Call's context expired and deleted the pending entry,
// or a duplicate already filled the channel — is dropped WITH accounting:
// no waiter will ever retain the message, so pooled decodes go back to the
// pool and stats.Dropped records the loss.
func (n *tcpNode) deliverResponse(env *wire.Envelope) {
	if ch, ok := n.pending.Load(env.ReqID); ok {
		select {
		case ch.(chan *wire.Envelope) <- env:
			return
		default:
		}
	}
	n.t.stats.Dropped.Add(1)
	wire.Recycle(env.Msg)
}

// Close shuts the node down: listener, handler workers, and every live
// connection — learned or not — so no readLoop/writeLoop goroutine or file
// descriptor outlives the node.
func (n *tcpNode) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	if n.ln != nil {
		n.ln.Close()
	}
	close(n.stop)
	n.mu.Lock()
	conns := make([]*tcpConn, 0, len(n.all))
	for tc := range n.all {
		conns = append(conns, tc)
	}
	n.mu.Unlock()
	for _, tc := range conns {
		tc.close()
	}
	n.t.mu.Lock()
	delete(n.t.nodes, n.addr)
	n.t.mu.Unlock()
	n.wg.Wait()
	return nil
}
