package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// maxFrame bounds a single TCP frame.
const maxFrame = 1 << 26 // 64 MiB

// TCP is a Network over real sockets. Server addresses must appear in the
// directory; clients need not listen — peers respond over the connection a
// request arrived on.
type TCP struct {
	stats Stats

	mu     sync.Mutex
	dir    map[wire.Addr]string
	nodes  map[wire.Addr]*tcpNode
	closed bool
}

// NewTCP returns a TCP network with the given address directory
// (wire address → "host:port").
func NewTCP(directory map[wire.Addr]string) *TCP {
	dir := make(map[wire.Addr]string, len(directory))
	for a, hp := range directory {
		dir[a] = hp
	}
	return &TCP{dir: dir, nodes: make(map[wire.Addr]*tcpNode)}
}

// Stats exposes traffic counters.
func (t *TCP) Stats() *Stats { return &t.stats }

// Attach registers addr. If addr is in the directory the node listens on
// its directory endpoint; otherwise it is a client-only node that can dial
// out but not accept.
func (t *TCP) Attach(addr wire.Addr, h Handler) (Node, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, dup := t.nodes[addr]; dup {
		return nil, ErrAttached
	}
	n := &tcpNode{t: t, addr: addr, h: h, conns: make(map[wire.Addr]*lockedConn)}
	if hp, ok := t.dir[addr]; ok {
		ln, err := net.Listen("tcp", hp)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", hp, err)
		}
		n.ln = ln
		go n.acceptLoop()
	}
	t.nodes[addr] = n
	return n, nil
}

// Close shuts down every attached node.
func (t *TCP) Close() error {
	t.mu.Lock()
	nodes := make([]*tcpNode, 0, len(t.nodes))
	for _, n := range t.nodes {
		nodes = append(nodes, n)
	}
	t.closed = true
	t.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
	return nil
}

type lockedConn struct {
	mu sync.Mutex
	c  net.Conn
}

func (lc *lockedConn) writeFrame(buf []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(buf)))
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if _, err := lc.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := lc.c.Write(buf)
	return err
}

type tcpNode struct {
	t    *TCP
	addr wire.Addr
	h    Handler
	ln   net.Listener

	mu    sync.Mutex
	conns map[wire.Addr]*lockedConn

	reqSeq  atomic.Uint64
	pending sync.Map // reqID -> chan *wire.Envelope
	closed  atomic.Bool
}

func (n *tcpNode) Addr() wire.Addr { return n.addr }

func (n *tcpNode) acceptLoop() {
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		go n.readLoop(c)
	}
}

// readLoop decodes frames from c, learning the peer's address from the
// first envelope so responses can flow back over the same connection.
func (n *tcpNode) readLoop(c net.Conn) {
	defer c.Close()
	lc := &lockedConn{c: c}
	var learned wire.Addr
	hdr := make([]byte, 4)
	for {
		if _, err := io.ReadFull(c, hdr); err != nil {
			break
		}
		size := binary.LittleEndian.Uint32(hdr)
		if size > maxFrame {
			break
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(c, buf); err != nil {
			break
		}
		env, err := wire.DecodeEnvelope(buf)
		if err != nil {
			n.t.stats.Dropped.Add(1)
			continue
		}
		if learned == 0 && env.Src != 0 {
			learned = env.Src
			n.mu.Lock()
			if _, dup := n.conns[learned]; !dup {
				n.conns[learned] = lc
			}
			n.mu.Unlock()
		}
		if env.Resp {
			n.deliverResponse(env)
			continue
		}
		go n.h.Handle(n, env.Src, env.ReqID, env.Msg)
	}
	if learned != 0 {
		n.mu.Lock()
		if n.conns[learned] == lc {
			delete(n.conns, learned)
		}
		n.mu.Unlock()
	}
}

func (n *tcpNode) getConn(dst wire.Addr) (*lockedConn, error) {
	n.mu.Lock()
	if lc, ok := n.conns[dst]; ok {
		n.mu.Unlock()
		return lc, nil
	}
	n.mu.Unlock()

	n.t.mu.Lock()
	hp, ok := n.t.dir[dst]
	n.t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, dst)
	}
	c, err := net.Dial("tcp", hp)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %v at %s: %w", dst, hp, err)
	}
	lc := &lockedConn{c: c}
	n.mu.Lock()
	if prev, dup := n.conns[dst]; dup {
		n.mu.Unlock()
		c.Close()
		return prev, nil
	}
	n.conns[dst] = lc
	n.mu.Unlock()
	go n.readLoop(c) // responses to our calls come back on this conn
	return lc, nil
}

func (n *tcpNode) send(env *wire.Envelope) error {
	if n.closed.Load() {
		return ErrClosed
	}
	lc, err := n.getConn(env.Dst)
	if err != nil {
		return err
	}
	buf := wire.EncodeEnvelope(nil, env)
	n.t.stats.MsgsSent.Add(1)
	n.t.stats.BytesSent.Add(uint64(len(buf)))
	if err := lc.writeFrame(buf); err != nil {
		// Connection broke; forget it so the next send redials.
		n.mu.Lock()
		if n.conns[env.Dst] == lc {
			delete(n.conns, env.Dst)
		}
		n.mu.Unlock()
		return err
	}
	return nil
}

// Send delivers a one-way message.
func (n *tcpNode) Send(dst wire.Addr, m wire.Message) error {
	return n.send(&wire.Envelope{Src: n.addr, Dst: dst, Msg: m})
}

// Respond answers request reqID at dst.
func (n *tcpNode) Respond(dst wire.Addr, reqID uint64, m wire.Message) error {
	return n.send(&wire.Envelope{Src: n.addr, Dst: dst, ReqID: reqID, Resp: true, Msg: m})
}

// Call sends a request and waits for the matching response.
func (n *tcpNode) Call(ctx context.Context, dst wire.Addr, m wire.Message) (wire.Message, error) {
	id := n.reqSeq.Add(1)
	ch := make(chan *wire.Envelope, 1)
	n.pending.Store(id, ch)
	defer n.pending.Delete(id)
	if err := n.send(&wire.Envelope{Src: n.addr, Dst: dst, ReqID: id, Msg: m}); err != nil {
		return nil, err
	}
	select {
	case env := <-ch:
		if e, ok := env.Msg.(*wire.ErrorResp); ok {
			return nil, e
		}
		return env.Msg, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (n *tcpNode) deliverResponse(env *wire.Envelope) {
	if ch, ok := n.pending.Load(env.ReqID); ok {
		select {
		case ch.(chan *wire.Envelope) <- env:
		default:
		}
	}
}

// Close shuts the node down, closing its listener and connections.
func (n *tcpNode) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	if n.ln != nil {
		n.ln.Close()
	}
	n.mu.Lock()
	for a, lc := range n.conns {
		lc.c.Close()
		delete(n.conns, a)
	}
	n.mu.Unlock()
	n.t.mu.Lock()
	delete(n.t.nodes, n.addr)
	n.t.mu.Unlock()
	return nil
}
