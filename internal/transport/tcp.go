package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// maxFrame bounds a single TCP frame.
const maxFrame = 1 << 26 // 64 MiB

const (
	// readBufSize sizes the per-connection buffered reader.
	readBufSize = 64 << 10
	// handlerQueueLen bounds the per-node inbound request queue feeding
	// the worker pool. It is a hand-off buffer, not a backlog: dispatch
	// only queues a request after reserving an idle worker, so nothing
	// ever waits in it behind a blocked handler. Attach widens it to the
	// worker count when that is larger — a reserved dispatch must always
	// find queue room, or reservations spuriously spill (HandlerOverflow).
	handlerQueueLen = 256

	// shedQueueLen bounds the per-node queue feeding the Busy responder.
	// Shedding must never block the read path, so a full queue drops the
	// shed notice instead (the client's deadline is the backstop).
	shedQueueLen = 256

	// maxConnPool bounds a mux's socket pool per destination (the slot is
	// one byte of the connection key).
	maxConnPool = 255
)

// handlerWorkers is the size of the per-node inbound worker pool.
func handlerWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

// TCP is a Network over real sockets. Server addresses must appear in the
// directory; clients need not listen — peers respond over the connection a
// request arrived on.
type TCP struct {
	stats      Stats
	pol        BatchPolicy
	admit      AdmitConfig
	admitStats AdmitStats

	mu     sync.Mutex
	dir    map[wire.Addr]string
	nodes  map[wire.Addr]*tcpNode
	closed bool
}

// NewTCP returns a TCP network with the given address directory
// (wire address → "host:port") and the default adaptive batch policy.
func NewTCP(directory map[wire.Addr]string) *TCP {
	return NewTCPOpts(directory, DefaultPolicy())
}

// NewTCPOpts is NewTCP with an explicit batch policy (kvserver wires its
// -flush-budget/-writev-bytes flags through here).
func NewTCPOpts(directory map[wire.Addr]string, pol BatchPolicy) *TCP {
	dir := make(map[wire.Addr]string, len(directory))
	for a, hp := range directory {
		dir[a] = hp
	}
	return &TCP{pol: pol.withDefaults(), dir: dir, nodes: make(map[wire.Addr]*tcpNode)}
}

// Stats exposes traffic counters.
func (t *TCP) Stats() *Stats { return &t.stats }

// AdmitStats exposes the admission-control counters (all zero while
// admission is disabled).
func (t *TCP) AdmitStats() *AdmitStats { return &t.admitStats }

// SetAdmission configures client admission control for nodes attached
// AFTER the call: each server-address node gets its own gate (token cap +
// overload detector) applied only to requests whose source carries the
// client flag. Call it before Attach; already-attached nodes are
// unaffected.
func (t *TCP) SetAdmission(cfg AdmitConfig) {
	t.mu.Lock()
	t.admit = cfg
	t.mu.Unlock()
}

// Attach registers addr. If addr is in the directory the node listens on
// its directory endpoint; otherwise it is a client-only node that can dial
// out but not accept.
func (t *TCP) Attach(addr wire.Addr, h Handler) (Node, error) {
	return t.attach(addr, h, 1)
}

// AttachMux registers addr as a multiplexed client endpoint: any number of
// logical sessions share a pool of at most pool sockets per destination
// (one tcpConn/Batcher per socket). Frames a session sends carry its id;
// inbound frames carrying a registered session id are demultiplexed to
// that session's handler. The endpoint itself has no base handler — a
// frame for no live session is dropped with accounting.
func (t *TCP) AttachMux(addr wire.Addr, pool int) (Mux, error) {
	if pool < 1 {
		pool = 1
	}
	if pool > maxConnPool {
		pool = maxConnPool
	}
	return t.attach(addr, nil, pool)
}

func (t *TCP) attach(addr wire.Addr, h Handler, pool int) (*tcpNode, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, dup := t.nodes[addr]; dup {
		return nil, ErrAttached
	}
	// The queue must hold at least one entry per worker: dispatch reserves
	// an idle worker before queueing, and a reservation finding the queue
	// full would spill despite the idle worker.
	workers := handlerWorkers()
	n := &tcpNode{
		t:     t,
		addr:  addr,
		h:     h,
		pool:  uint8(pool),
		conns:   make(map[connKey]*tcpConn),
		all:     make(map[*tcpConn]struct{}),
		dialing: make(map[connKey]chan struct{}),
		workq: make(chan inbound, max(handlerQueueLen, workers)),
		stop:  make(chan struct{}),
	}
	if addr.IsServer() && t.admit.Enabled() {
		n.gate = NewAdmitGate(t.admit, &t.admitStats)
		n.shedq = make(chan shedNote, shedQueueLen)
		n.wg.Add(1)
		go n.shedResponder()
	}
	if hp, ok := t.dir[addr]; ok {
		ln, err := net.Listen("tcp", hp)
		if err != nil {
			close(n.stop)
			n.wg.Wait()
			return nil, fmt.Errorf("transport: listen %s: %w", hp, err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop()
	}
	for i := 0; i < workers; i++ {
		n.wg.Add(1)
		go n.worker()
	}
	t.nodes[addr] = n
	return n, nil
}

// Close shuts down every attached node.
func (t *TCP) Close() error {
	t.mu.Lock()
	nodes := make([]*tcpNode, 0, len(t.nodes))
	for _, n := range t.nodes {
		nodes = append(nodes, n)
	}
	t.closed = true
	t.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
	return nil
}

// tcpConn owns one socket. Its send path is one Batcher (the engine shared
// with the Local simulator) whose sink scatter-gathers each coalesced batch
// into the socket.
type tcpConn struct {
	c     net.Conn
	b     *Batcher
	stats *Stats

	peer atomic.Uint32 // learned wire.Addr, 0 until known
	slot uint8         // dial slot within the pool; 0 for accepted conns
	once sync.Once
}

func newTCPConn(c net.Conn, pol BatchPolicy, stats *Stats) *tcpConn {
	pol = pol.withDefaults()
	tc := &tcpConn{c: c, stats: stats}
	tc.b = NewBatcher(&tcpSink{c: c, stats: stats, writevMin: pol.WritevBytes}, pol, stats)
	stats.OpenConns.Add(1)
	return tc
}

// close shuts the socket down and releases the writer. Idempotent.
func (tc *tcpConn) close() {
	tc.once.Do(func() {
		tc.b.Close()
		tc.c.Close()
		tc.stats.OpenConns.Add(-1)
	})
}

// tcpSink turns one coalesced batch into one scatter-gather socket write.
// Frames below the writev threshold are copied into a staging buffer whose
// chunks become iovecs; frames at or above it contribute their own bytes as
// an iovec directly — AppendEnvelope put the length prefix in the same
// buffer, so large frames reach the kernel with zero copies. The whole
// batch then goes out via net.Buffers.WriteTo, which is writev(2) on a
// *net.TCPConn.
//
// Ownership: staged frames are recycled as soon as their bytes are copied;
// writev frames must outlive the write they used to be insulated from by
// the bufio copy, so they are held in owned and recycled only after WriteTo
// returns.
type tcpSink struct {
	c         net.Conn
	stats     *Stats
	writevMin int

	stage []byte
	bufs  [][]byte
	owned []*wire.FrameBuf
}

func (s *tcpSink) WriteBatch(frames []*wire.FrameBuf) error {
	// Pre-size the staging buffer so chunk slices recorded in bufs are
	// never invalidated by a growth reallocation mid-batch.
	small := 0
	for _, f := range frames {
		if len(f.B) < s.writevMin {
			small += len(f.B)
		}
	}
	if cap(s.stage) < small {
		s.stage = make([]byte, 0, small)
	}
	stage, bufs := s.stage[:0], s.bufs[:0]
	chunk := 0 // start of the staging chunk not yet recorded in bufs
	for _, f := range frames {
		if len(f.B) >= s.writevMin {
			if len(stage) > chunk {
				bufs = append(bufs, stage[chunk:len(stage):len(stage)])
				chunk = len(stage)
			}
			bufs = append(bufs, f.B)
			s.owned = append(s.owned, f)
			s.stats.WritevBytes.Add(uint64(len(f.B)))
		} else {
			stage = append(stage, f.B...)
			wire.PutFrame(f)
		}
	}
	if len(stage) > chunk {
		bufs = append(bufs, stage[chunk:])
	}
	var err error
	if len(bufs) > 0 {
		nb := net.Buffers(bufs)
		_, err = nb.WriteTo(s.c)
	}
	for i, f := range s.owned {
		wire.PutFrame(f)
		s.owned[i] = nil
	}
	s.owned = s.owned[:0]
	clear(bufs) // drop stale references so recycled arrays are collectable
	s.stage, s.bufs = stage[:0], bufs[:0]
	return err
}

// inbound is one request waiting for a handler worker: the handler and
// node to run it against (a session's own when the frame was a direct push
// to a registered session, the endpoint's otherwise), the full origin, and
// — when non-nil — the admission gate whose token the request was admitted
// under; whoever runs the handler releases it after Handle returns.
type inbound struct {
	node  Node
	h     Handler
	src   wire.From
	reqID uint64
	msg   wire.Message
	gate  *AdmitGate
}

// shedNote queues one shed client request for the Busy responder: either a
// reqID to respond to, or (one-way correlated requests) an echo id. sess
// routes the Busy back to the right session and keys the retry-after hint
// to the tenant's queue pressure.
type shedNote struct {
	src   wire.Addr
	sess  wire.SessionID
	reqID uint64
	echo  uint64
}

// connKey routes outbound frames: the destination endpoint plus the pool
// slot. Plain nodes and learned (accepted) connections always use slot 0;
// a mux spreads its sessions over slots [0, pool).
type connKey struct {
	addr wire.Addr
	slot uint8
}

type tcpNode struct {
	t    *TCP
	addr wire.Addr
	h    Handler // nil for mux endpoints
	pool uint8   // socket pool size per destination (1 for plain nodes)
	ln   net.Listener

	// gate, when non-nil, admission-controls client-sourced requests;
	// shedq feeds the Busy responder goroutine.
	gate  *AdmitGate
	shedq chan shedNote

	mu      sync.Mutex
	conns   map[connKey]*tcpConn     // routable by learned/dialed peer + slot
	all     map[*tcpConn]struct{}    // every live conn, learned or not
	dialing map[connKey]chan struct{} // single-flight latches for in-progress dials

	// sessions holds the registered logical sessions of a mux endpoint
	// (uint32(wire.SessionID) → *tcpSession); empty on plain nodes.
	sessions sync.Map

	workq chan inbound
	idle  atomic.Int64 // workers ready to receive minus requests queued for them
	stop  chan struct{}
	wg    sync.WaitGroup

	reqSeq  atomic.Uint64
	pending sync.Map // reqID -> chan *wire.Envelope
	closed  atomic.Bool
}

func (n *tcpNode) Addr() wire.Addr { return n.addr }

// Session registers a logical session on this endpoint. Sessions share the
// node's sockets, request-id space, and worker pool; frames the session
// sends carry its id, and inbound one-way frames carrying the id reach h.
func (n *tcpNode) Session(id wire.SessionID, h Handler) (Session, error) {
	if id == 0 {
		return nil, fmt.Errorf("transport: zero session id")
	}
	if n.closed.Load() {
		return nil, ErrClosed
	}
	s := &tcpSession{n: n, id: id, h: h}
	if _, dup := n.sessions.LoadOrStore(uint32(id), s); dup {
		return nil, ErrAttached
	}
	n.t.stats.Sessions.Add(1)
	return s, nil
}

func (n *tcpNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.startConn(newTCPConn(c, n.t.pol, &n.t.stats))
	}
}

// startConn registers tc and launches its reader and writer goroutines.
// Returns false (and closes tc) if the node is already shut down.
func (n *tcpNode) startConn(tc *tcpConn) bool {
	n.mu.Lock()
	if n.closed.Load() {
		n.mu.Unlock()
		tc.close()
		return false
	}
	n.all[tc] = struct{}{}
	// Add under n.mu: Close sets closed before taking n.mu to snapshot
	// conns, so this Add is always ordered before Close's wg.Wait (Add
	// racing Wait at counter zero is documented WaitGroup misuse).
	n.wg.Add(2)
	n.mu.Unlock()
	go n.readLoop(tc)
	go n.writeLoop(tc)
	return true
}

// writeLoop hosts the conn's batching engine and tears the endpoint down
// when it stops (socket error or close).
func (n *tcpNode) writeLoop(tc *tcpConn) {
	defer n.wg.Done()
	tc.b.Run()
	n.forget(tc)
	tc.close()
}

// learn records that frames from peer arrive on tc, so responses can flow
// back over the same connection. First learner wins the routing entry; a
// conn that loses (a symmetric dial race, or a fresh conn racing a stale
// one) still remembers its peer and is promoted by forget when the
// registered conn dies, so the peer never becomes unroutable (clients are
// not in the directory) and the read hot path stays one atomic load.
// Learned routes always occupy slot 0 — a multiplexed peer may reach us
// over several sockets, and any one of them suffices for the way back
// (the mux demultiplexes responses by request id and session, not by
// socket).
func (n *tcpNode) learn(peer wire.Addr, tc *tcpConn) {
	tc.peer.Store(uint32(peer))
	n.mu.Lock()
	if _, dup := n.conns[connKey{peer, 0}]; !dup {
		n.conns[connKey{peer, 0}] = tc
	}
	n.mu.Unlock()
}

// forget removes tc from both connection maps. If tc held the routing
// entry for its peer, another live conn that knows the same peer (a learn
// race loser) is promoted in its place.
func (n *tcpNode) forget(tc *tcpConn) {
	n.mu.Lock()
	delete(n.all, tc)
	key := connKey{wire.Addr(tc.peer.Load()), tc.slot}
	if key.addr.Valid() && n.conns[key] == tc {
		delete(n.conns, key)
		// Promotion only applies to learned (slot-0) routes: dialed pool
		// slots are re-dialed on demand through the directory.
		if tc.slot == 0 {
			for other := range n.all {
				if wire.Addr(other.peer.Load()) == key.addr && other.slot == 0 {
					n.conns[key] = other
					break
				}
			}
		}
	}
	n.mu.Unlock()
}

// readLoop decodes frames from tc, learning the peer's address from the
// first envelope carrying a valid source. Responses are matched to pending
// Calls inline; requests go to the worker pool.
func (n *tcpNode) readLoop(tc *tcpConn) {
	defer n.wg.Done()
	defer func() {
		n.forget(tc)
		tc.close()
	}()
	br := bufio.NewReaderSize(tc.c, readBufSize)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[:])
		if size > maxFrame {
			return
		}
		f := wire.GetFrameLen(int(size))
		if _, err := io.ReadFull(br, f.B); err != nil {
			wire.PutFrame(f)
			return
		}
		env, err := wire.DecodeEnvelope(f.B)
		wire.PutFrame(f) // DecodeEnvelope copies fields out; safe to recycle
		if err != nil {
			n.t.stats.Dropped.Add(1)
			continue
		}
		if !wire.Addr(tc.peer.Load()).Valid() && env.Src.Valid() {
			n.learn(env.Src, tc)
		}
		if env.Resp {
			n.deliverResponse(env)
			continue
		}
		n.dispatch(env)
	}
}

// dispatch hands a request to the worker pool only when an idle worker is
// reserved for it, spilling to a fresh goroutine otherwise. Spilling on a
// busy pool — not merely a full queue — is a liveness requirement: handlers
// may park on cluster state (a COPS dep check waiting for replication), and
// the very message that would unblock them must never sit queued behind
// them with every worker parked. The spill lane is deliberately unbounded:
// any cap on concurrently running handlers recreates that deadlock for the
// requests beyond the cap, so under saturation this degrades to the (safe)
// goroutine-per-request design and HandlerOverflow records how often.
//
// Client-sourced requests are the exception: they first pass the admission
// gate (when configured), and excess client load is shed with a typed Busy
// or parked in the gate's tenant-fair queues instead of growing the spill
// lane. The deadlock argument does not apply to them — no cluster-state
// transition waits on a client request — so capping client handlers is
// safe, and it is what keeps a client stampede from starving the
// intra-cluster traffic that must stay unbounded.
//
// A frame carrying the id of a registered session (a direct server push to
// one session of this mux) runs that session's handler against the session
// node; the session id is the frame's destination there, so src carries no
// session. Everything else runs the endpoint handler with the full origin.
func (n *tcpNode) dispatch(env *wire.Envelope) {
	in := inbound{
		node:  Node(n),
		h:     n.h,
		src:   wire.From{Addr: env.Src, Sess: env.Session},
		reqID: env.ReqID,
		msg:   env.Msg,
	}
	if env.Session != 0 {
		if s, ok := n.sessions.Load(uint32(env.Session)); ok {
			sess := s.(*tcpSession)
			in.node, in.h, in.src = sess, sess.h, wire.At(env.Src)
		}
	}
	if in.h == nil {
		// A mux endpoint has no base handler: a frame for no live session
		// (or a push to one registered without a handler) has nowhere to
		// go and is dropped with accounting.
		n.t.stats.Dropped.Add(1)
		wire.Recycle(env.Msg)
		return
	}
	if n.gate != nil && env.Src.IsClient() {
		in.gate = n.gate
		// Hold a wg slot across Submit: a parked waiter's run/drop fires
		// from a Release or gate.Close after this readLoop iteration moved
		// on, and Close's Wait must cover it.
		n.wg.Add(1)
		run := in
		switch n.gate.Submit(env.Session.Tenant(), func() {
			defer n.wg.Done()
			run.h.Handle(run.node, run.src, run.reqID, run.msg)
			wire.Recycle(run.msg)
			run.gate.Release()
		}, func() {
			wire.Recycle(run.msg)
			n.t.stats.Dropped.Add(1)
			n.wg.Done()
		}) {
		case AdmitShed:
			n.wg.Done()
			n.shed(env)
			return
		case AdmitQueued:
			return
		case AdmitGranted:
			n.wg.Done()
		}
	}
	if n.idle.Add(-1) >= 0 {
		// Reserved one worker receive; exactly one worker iteration will
		// consume what we queue, so this request cannot strand.
		select {
		case n.workq <- in:
			return
		default:
			// Queue full despite the reservation (only possible if the
			// worker count ever exceeds handlerQueueLen); give it back.
			n.idle.Add(1)
		}
	} else {
		n.idle.Add(1)
	}
	n.t.stats.HandlerOverflow.Add(1)
	// Safe to Add here: the calling readLoop holds a wg slot, so the
	// counter cannot be zero while Close's Wait is racing us.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		in.h.Handle(in.node, in.src, in.reqID, in.msg)
		wire.Recycle(in.msg)
		if in.gate != nil {
			in.gate.Release()
		}
	}()
}

// shed answers one declined client request with Busy, off the read path:
// the note goes to a bounded queue served by the shed responder, so a
// congested send path can never park the readLoop behind a Busy write. A
// request that is neither awaited (reqID) nor correlated has no address to
// send Busy to and is dropped with accounting.
func (n *tcpNode) shed(env *wire.Envelope) {
	note := shedNote{src: env.Src, sess: env.Session, reqID: env.ReqID}
	if note.reqID == 0 {
		corr, ok := env.Msg.(wire.Correlated)
		if !ok {
			wire.Recycle(env.Msg)
			n.t.stats.Dropped.Add(1)
			return
		}
		note.echo = corr.CorrelationID()
	}
	wire.Recycle(env.Msg)
	select {
	case n.shedq <- note:
	default:
		n.t.stats.Dropped.Add(1)
	}
}

// shedResponder turns queued shed notes into Busy responses, hinted by the
// shed tenant's queue pressure and routed back to the shed session.
func (n *tcpNode) shedResponder() {
	defer n.wg.Done()
	for {
		select {
		case note := <-n.shedq:
			hint := busyHintMicros(n.gate, note.sess.Tenant())
			to := wire.From{Addr: note.src, Sess: note.sess}
			if note.reqID != 0 {
				_ = n.Respond(to, note.reqID, &wire.Busy{RetryAfterMicros: hint})
			} else {
				_ = n.SendTo(to, &wire.Busy{Echo: note.echo, RetryAfterMicros: hint})
			}
		case <-n.stop:
			return
		}
	}
}

// worker is one member of the node's inbound handler pool. Each loop
// iteration publishes one idle token before receiving, pairing every queued
// request with a worker receive.
func (n *tcpNode) worker() {
	defer n.wg.Done()
	for {
		n.idle.Add(1)
		select {
		case in := <-n.workq:
			in.h.Handle(in.node, in.src, in.reqID, in.msg)
			wire.Recycle(in.msg)
			if in.gate != nil {
				in.gate.Release()
			}
		case <-n.stop:
			return
		}
	}
}

// getConn returns the connection to dst on the given pool slot, dialing
// through the directory if none is learned yet. The dial respects ctx, so
// a Call deadline bounds connection establishment too, not just queueing.
//
// Dials are single-flighted per (dst, slot): when many sessions' first
// calls land on the same cold slot at once (a mux starting a thousand
// sessions), exactly one goroutine dials and the rest wait on its latch —
// without this, each racer briefly opens its own socket and the "small
// fixed pool" is a fiction at startup (observed: 258 sockets open at peak
// for an 8×2 pool before the latch existed).
func (n *tcpNode) getConn(ctx context.Context, dst wire.Addr, slot uint8) (*tcpConn, error) {
	key := connKey{dst, slot}
	n.mu.Lock()
	for {
		if tc, ok := n.conns[key]; ok {
			n.mu.Unlock()
			return tc, nil
		}
		latch, inflight := n.dialing[key]
		if !inflight {
			break
		}
		n.mu.Unlock()
		select {
		case <-latch:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-n.stop:
			return nil, ErrClosed
		}
		// The winner either registered a conn (found on re-check) or
		// failed (this caller retries the dial itself).
		n.mu.Lock()
	}
	latch := make(chan struct{})
	n.dialing[key] = latch
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.dialing, key)
		n.mu.Unlock()
		close(latch)
	}()

	n.t.mu.Lock()
	hp, ok := n.t.dir[dst]
	n.t.mu.Unlock()
	if !ok {
		// A session slot with no dialable directory entry falls back to
		// any learned route to the peer (responses to an accepted client
		// conn never dial).
		if slot != 0 {
			return n.getConn(ctx, dst, 0)
		}
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, dst)
	}
	// Abort the dial on node shutdown too: Send/Respond dial with a
	// Background context, and Close must not sit in wg.Wait for the
	// kernel connect timeout behind a blackholed peer.
	dialCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-n.stop:
			cancel()
		case <-dialCtx.Done():
		}
	}()
	var d net.Dialer
	c, err := d.DialContext(dialCtx, "tcp", hp)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %v at %s: %w", dst, hp, err)
	}
	tc := newTCPConn(c, n.t.pol, &n.t.stats)
	tc.peer.Store(uint32(dst))
	tc.slot = slot
	n.mu.Lock()
	if prev, dup := n.conns[key]; dup {
		n.mu.Unlock()
		// Tear the whole loser endpoint down, not just its socket: close()
		// also stops the Batcher, so a frame enqueued on the loser before
		// registration could never strand in a writerless queue.
		tc.close()
		return prev, nil
	}
	n.conns[key] = tc
	n.mu.Unlock()
	if !n.startConn(tc) {
		return nil, ErrClosed
	}
	return tc, nil
}

func (n *tcpNode) send(ctx context.Context, env *wire.Envelope, slot uint8) error {
	if n.closed.Load() {
		return ErrClosed
	}
	tc, err := n.getConn(ctx, env.Dst, slot)
	if err != nil {
		return err
	}
	f := wire.GetFrame()
	f.AppendEnvelope(env)
	// Exclude the 4-byte length prefix so BytesSent counts envelope bytes
	// on both transports (Local has no framing), keeping the paper's
	// communication-overhead metrics comparable across deployments. Sized
	// before enqueue (which takes ownership of f) and counted only after
	// it succeeds, so aborted sends don't inflate the traffic metrics.
	bytes := uint64(len(f.B) - wire.FrameHdrLen)
	if err := tc.b.Enqueue(ctx, f); err != nil {
		return err
	}
	n.t.stats.MsgsSent.Add(1)
	n.t.stats.BytesSent.Add(bytes)
	return nil
}

// Send delivers a one-way message. Backpressure from a stalled peer blocks
// until the connection or node closes.
func (n *tcpNode) Send(dst wire.Addr, m wire.Message) error {
	return n.send(context.Background(), &wire.Envelope{Src: n.addr, Dst: dst, Msg: m}, 0)
}

// SendTo delivers a one-way message to a full destination, stamping the
// target session so a multiplexed client can demultiplex the push.
func (n *tcpNode) SendTo(to wire.From, m wire.Message) error {
	return n.send(context.Background(), &wire.Envelope{Src: n.addr, Dst: to.Addr, Session: to.Sess, Msg: m}, 0)
}

// Respond answers request reqID at the full origin to.
func (n *tcpNode) Respond(to wire.From, reqID uint64, m wire.Message) error {
	return n.send(context.Background(), &wire.Envelope{Src: n.addr, Dst: to.Addr, Session: to.Sess, ReqID: reqID, Resp: true, Msg: m}, 0)
}

// Call sends a request and waits for the matching response.
func (n *tcpNode) Call(ctx context.Context, dst wire.Addr, m wire.Message) (wire.Message, error) {
	return n.call(ctx, dst, m, 0, 0)
}

// call is the shared Call engine: sessions stamp their id into the request
// envelope and spread over pool slots, but share the node's request-id
// space and pending table, so responses demultiplex by reqID alone no
// matter which socket carries them.
func (n *tcpNode) call(ctx context.Context, dst wire.Addr, m wire.Message, sess wire.SessionID, slot uint8) (wire.Message, error) {
	id := n.reqSeq.Add(1)
	ch := make(chan *wire.Envelope, 1)
	n.pending.Store(id, ch)
	defer n.pending.Delete(id)
	if err := n.send(ctx, &wire.Envelope{Src: n.addr, Dst: dst, Session: sess, ReqID: id, Msg: m}, slot); err != nil {
		return nil, err
	}
	select {
	case env := <-ch:
		return unwrapResp(env)
	case <-n.stop:
		// Node shut down while waiting. Prefer a response that already
		// arrived (select picks ready cases at random) over reporting a
		// completed operation as failed; otherwise return promptly —
		// this also lets handler workers parked in nested Calls finish,
		// so Close's wg.Wait cannot hang on them.
		select {
		case env := <-ch:
			return unwrapResp(env)
		default:
		}
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deliverResponse matches one response to its waiting Call. A response
// nobody claims — the Call's context expired and deleted the pending entry,
// or a duplicate already filled the channel — is dropped WITH accounting:
// no waiter will ever retain the message, so pooled decodes go back to the
// pool and stats.Dropped records the loss.
func (n *tcpNode) deliverResponse(env *wire.Envelope) {
	if ch, ok := n.pending.Load(env.ReqID); ok {
		select {
		case ch.(chan *wire.Envelope) <- env:
			return
		default:
		}
	}
	n.t.stats.Dropped.Add(1)
	wire.Recycle(env.Msg)
}

// Close shuts the node down: listener, handler workers, admission gate,
// sessions, and every live connection — learned or not — so no
// readLoop/writeLoop goroutine or file descriptor outlives the node.
func (n *tcpNode) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	if n.ln != nil {
		n.ln.Close()
	}
	close(n.stop)
	// Drain the gate's park queues before waiting out the goroutines:
	// parked waiters hold wg slots their drop closures release.
	if n.gate != nil {
		n.gate.Close()
	}
	n.sessions.Range(func(k, s any) bool {
		if !s.(*tcpSession).closed.Swap(true) {
			n.t.stats.Sessions.Add(-1)
		}
		n.sessions.Delete(k)
		return true
	})
	n.mu.Lock()
	conns := make([]*tcpConn, 0, len(n.all))
	for tc := range n.all {
		conns = append(conns, tc)
	}
	n.mu.Unlock()
	for _, tc := range conns {
		tc.close()
	}
	n.t.mu.Lock()
	delete(n.t.nodes, n.addr)
	n.t.mu.Unlock()
	n.wg.Wait()
	return nil
}

// tcpSession is one logical session on a mux endpoint. It shares the
// endpoint's sockets, worker pool, request-id space, and pending table;
// only the envelopes differ (they carry the session id) and inbound pushes
// addressed to the id run h.
type tcpSession struct {
	n      *tcpNode
	id     wire.SessionID
	h      Handler
	closed atomic.Bool
}

func (s *tcpSession) Addr() wire.Addr    { return s.n.addr }
func (s *tcpSession) ID() wire.SessionID { return s.id }

// slot spreads sessions across the endpoint's socket pool with a cheap
// integer hash, so tenants (high half) and local ids (low half) both
// contribute to the spread.
func (s *tcpSession) slot() uint8 {
	h := uint32(s.id)
	h ^= h >> 16
	h *= 0x45d9f3b
	h ^= h >> 16
	return uint8(h % uint32(s.n.pool))
}

// env builds a session-stamped envelope toward to. A destination that
// already carries a session (a client relaying a server's From — unusual
// but well-formed) wins over the session's own id.
func (s *tcpSession) env(to wire.From, reqID uint64, resp bool, m wire.Message) *wire.Envelope {
	sess := s.id
	if to.Sess != 0 {
		sess = to.Sess
	}
	return &wire.Envelope{Src: s.n.addr, Dst: to.Addr, Session: sess, ReqID: reqID, Resp: resp, Msg: m}
}

// Send delivers a one-way message carrying the session id.
func (s *tcpSession) Send(dst wire.Addr, m wire.Message) error {
	return s.SendTo(wire.At(dst), m)
}

// SendTo delivers a one-way message to a full destination.
func (s *tcpSession) SendTo(to wire.From, m wire.Message) error {
	if s.closed.Load() {
		return ErrClosed
	}
	return s.n.send(context.Background(), s.env(to, 0, false, m), s.slot())
}

// Respond answers request reqID at to.
func (s *tcpSession) Respond(to wire.From, reqID uint64, m wire.Message) error {
	if s.closed.Load() {
		return ErrClosed
	}
	return s.n.send(context.Background(), s.env(to, reqID, true, m), s.slot())
}

// Call sends a request and waits for the matching response.
func (s *tcpSession) Call(ctx context.Context, dst wire.Addr, m wire.Message) (wire.Message, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	return s.n.call(ctx, dst, m, s.id, s.slot())
}

// Close deregisters the session. The endpoint's sockets stay up — they are
// shared — and any in-flight push to the session is dropped with
// accounting (and its pooled message recycled) by dispatch.
func (s *tcpSession) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.n.sessions.Delete(uint32(s.id))
	s.n.t.stats.Sessions.Add(-1)
	return nil
}
