package transport

import (
	"container/heap"
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// LatencyModel computes one-way message delays for the in-process network.
// The defaults approximate the paper's testbed: a fast LAN within a DC and
// an emulated WAN between DCs (the paper itself runs DCs over a LAN and
// argues that suffices, §5.2).
type LatencyModel struct {
	// IntraDC is the one-way delay between two nodes in the same DC.
	IntraDC time.Duration
	// InterDC is the one-way delay between nodes in different DCs.
	InterDC time.Duration
	// JitterFrac adds uniform jitter in [0, JitterFrac] of the base delay.
	JitterFrac float64
	// InterDCLoss drops this fraction of cross-DC messages, modelling WAN
	// loss; replication must mask it by retrying (acked batches).
	InterDCLoss float64
}

// DefaultLatency mirrors a 10 Gbps LAN plus an emulated remote DC.
func DefaultLatency() LatencyModel {
	return LatencyModel{IntraDC: 100 * time.Microsecond, InterDC: time.Millisecond, JitterFrac: 0.1}
}

// Drop reports whether a message from src to dst should be lost.
func (l LatencyModel) Drop(src, dst wire.Addr) bool {
	return l.InterDCLoss > 0 && src.DC() != dst.DC() && rand.Float64() < l.InterDCLoss
}

// Delay returns the one-way delay from src to dst.
func (l LatencyModel) Delay(src, dst wire.Addr) time.Duration {
	base := l.IntraDC
	if src.DC() != dst.DC() {
		base = l.InterDC
	}
	if base <= 0 {
		return 0
	}
	if l.JitterFrac > 0 {
		base += time.Duration(rand.Float64() * l.JitterFrac * float64(base))
	}
	return base
}

// Local is an in-process Network. Every message is marshalled through the
// wire codec on send and unmarshalled on delivery, so serialization CPU
// cost is faithfully charged, and delivery is delayed per the LatencyModel.
//
// Sends flow through the same batching engine as the TCP transport (see
// batch.go), one Batcher per (source DC, destination node) link — the
// simulator's stand-in for a shared egress pipe. A coalesced batch is
// charged ONE latency sample and its frames arrive together, so the
// batching behaviour real deployments get from scatter-gather socket
// writes shows up in simulated latencies and the same Stats columns.
//
// Delayed delivery does not use runtime timers: on stock kernels their
// granularity (≥1 ms on this class of machine) would swamp the sub-ms LAN
// latencies under study. Instead, sharded delivery wheels block on a
// channel while idle and spin only when the next delivery is imminent,
// giving microsecond-accurate injection (see DESIGN.md).
type Local struct {
	latency    LatencyModel
	pol        BatchPolicy
	stats      Stats
	admit      AdmitConfig
	admitStats AdmitStats
	wheels     []*wheel

	// lossBits holds the current cross-DC loss fraction (float64 bits),
	// runtime-adjustable so fault tests can sever and heal the WAN
	// mid-workload (SetInterDCLoss). Seeded from latency.InterDCLoss.
	lossBits atomic.Uint64

	// links holds the per-(source DC, destination) batchers, created
	// lazily on first send and torn down with the network. Lookups on the
	// send hot path are lock-free (sync.Map); linkMu only serializes
	// creation and close.
	linkMu     sync.Mutex
	links      sync.Map // link key (srcDC<<32|dst) -> *Batcher
	linkWG     sync.WaitGroup
	linkClosed bool

	mu     sync.RWMutex
	nodes  map[wire.Addr]*localNode
	closed bool
}

// numWheels shards delayed delivery to avoid a single dispatcher
// bottleneck at high message rates.
const numWheels = 4

// NewLocal returns an empty in-process network with the default adaptive
// batch policy.
func NewLocal(latency LatencyModel) *Local {
	return NewLocalOpts(latency, DefaultPolicy())
}

// NewLocalOpts is NewLocal with an explicit batch policy (cluster.Config
// wires its flush knobs through here).
func NewLocalOpts(latency LatencyModel, pol BatchPolicy) *Local {
	l := &Local{
		latency: latency,
		pol:     pol.withDefaults(),
		nodes:   make(map[wire.Addr]*localNode),
	}
	l.lossBits.Store(math.Float64bits(latency.InterDCLoss))
	for i := 0; i < numWheels; i++ {
		w := &wheel{net: l, ch: make(chan delivery, 8192), stop: make(chan struct{})}
		l.wheels = append(l.wheels, w)
		go w.run()
	}
	return l
}

// link returns (creating if needed) the batcher for the src→dst flight.
// Links are keyed by source DC, not source node: the latency model only
// distinguishes DCs, so nodes in one DC share the egress pipe to each
// destination, which keeps the link table proportional to nodes, not
// node pairs.
func (l *Local) link(src, dst wire.Addr) (*Batcher, error) {
	key := uint64(src.DC())<<32 | uint64(dst)
	if b, ok := l.links.Load(key); ok {
		return b.(*Batcher), nil
	}
	l.linkMu.Lock()
	defer l.linkMu.Unlock()
	if l.linkClosed {
		return nil, ErrClosed
	}
	if b, ok := l.links.Load(key); ok {
		return b.(*Batcher), nil
	}
	b := NewBatcher(&localSink{l: l, src: src, dst: dst}, l.pol, &l.stats)
	l.links.Store(key, b)
	l.linkWG.Add(1)
	go func() {
		defer l.linkWG.Done()
		b.Run()
	}()
	return b, nil
}

// localSink delivers one coalesced batch as a single simulated flight: the
// whole batch is charged one latency sample and its frames arrive
// together, mirroring how a TCP batch shares one scatter-gather write.
// Only src's DC matters for the delay (see link).
type localSink struct {
	l        *Local
	src, dst wire.Addr
}

func (s *localSink) WriteBatch(frames []*wire.FrameBuf) error {
	if d := s.l.latency.Delay(s.src, s.dst); d > 0 {
		// The delivery outlives this call and the Batcher reuses its batch
		// slice, so the wheel gets a copy.
		batch := make([]*wire.FrameBuf, len(frames))
		copy(batch, frames)
		w := s.l.wheels[int(s.dst)%numWheels]
		select {
		case w.ch <- delivery{at: time.Now().Add(d), bufs: batch}:
			return nil
		case <-w.stop:
			for _, f := range batch {
				wire.PutFrame(f)
			}
			return ErrClosed
		}
	}
	// Zero delay: dispatchBatch only spawns per-frame goroutines, so it
	// neither blocks nor retains the slice — no copy, no wrapper goroutine.
	s.l.dispatchBatch(frames)
	return nil
}

// Stats exposes the network's traffic counters.
func (l *Local) Stats() *Stats { return &l.stats }

// AdmitStats exposes the admission-control counters (all zero while
// admission is disabled).
func (l *Local) AdmitStats() *AdmitStats { return &l.admitStats }

// SetAdmission configures client admission control for nodes attached
// AFTER the call, exactly as on the TCP transport: each server-address
// node gets its own gate, applied only to requests whose source carries
// the client flag. Call it before attaching servers.
func (l *Local) SetAdmission(cfg AdmitConfig) {
	l.mu.Lock()
	l.admit = cfg
	l.mu.Unlock()
}

// SetInterDCLoss changes the cross-DC loss fraction at runtime. Fault
// tests use 1.0 to sever the WAN (isolating a DC while it keeps serving
// locally) and 0 to heal it.
func (l *Local) SetInterDCLoss(frac float64) {
	l.lossBits.Store(math.Float64bits(frac))
}

// dropMsg applies the current loss fraction to one src→dst flight, using
// the shared LatencyModel predicate so the loss semantics live in one
// place.
func (l *Local) dropMsg(src, dst wire.Addr) bool {
	return LatencyModel{InterDCLoss: math.Float64frombits(l.lossBits.Load())}.Drop(src, dst)
}

// Attach registers addr with handler h.
func (l *Local) Attach(addr wire.Addr, h Handler) (Node, error) {
	return l.attach(addr, h)
}

// AttachMux registers addr as a multiplexed client endpoint. The simulator
// has no sockets, so the pool size is ignored, but sessions travel the
// same envelope fields and demultiplex through the same per-session
// handler routing as on TCP — internal/check exercises the mux paths on
// this transport.
func (l *Local) AttachMux(addr wire.Addr, _ int) (Mux, error) {
	return l.attach(addr, nil)
}

func (l *Local) attach(addr wire.Addr, h Handler) (*localNode, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if _, dup := l.nodes[addr]; dup {
		return nil, ErrAttached
	}
	n := &localNode{net: l, addr: addr, h: h, stop: make(chan struct{})}
	if addr.IsServer() && l.admit.Enabled() {
		n.gate = NewAdmitGate(l.admit, &l.admitStats)
	}
	l.nodes[addr] = n
	return n, nil
}

// Close detaches every node. In-flight messages are dropped.
func (l *Local) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for a, n := range l.nodes {
		n.shutdown()
		delete(l.nodes, a)
	}
	l.mu.Unlock()
	// Stop the link batchers and wait them out BEFORE stopping the wheels:
	// a final flush must find its wheel alive (frames to already-closed
	// nodes are dropped at dispatch, as before).
	l.linkMu.Lock()
	l.linkClosed = true
	l.links.Range(func(_, b any) bool {
		b.(*Batcher).Close()
		return true
	})
	l.linkMu.Unlock()
	l.linkWG.Wait()
	for _, w := range l.wheels {
		close(w.stop)
	}
	return nil
}

func (l *Local) lookup(addr wire.Addr) *localNode {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.nodes[addr]
}

// dispatchBatch fans a delivered batch out to per-frame dispatch
// goroutines: the frames arrive at the same instant (one latency charge),
// but each handler gets its own goroutine — handlers may block on cluster
// state another frame of the same batch would satisfy, so sequential
// in-batch handling could deadlock.
func (l *Local) dispatchBatch(bufs []*wire.FrameBuf) {
	for _, f := range bufs {
		go l.dispatch(f)
	}
}

// dispatch routes a marshalled envelope after its simulated flight. It
// consumes f, returning it to the frame pool once decoded.
func (l *Local) dispatch(f *wire.FrameBuf) {
	env, err := wire.DecodeEnvelope(f.B)
	wire.PutFrame(f) // DecodeEnvelope copies fields out; safe to recycle
	if err != nil {
		l.stats.Dropped.Add(1)
		return
	}
	dst := l.lookup(env.Dst)
	if dst == nil || dst.closed.Load() {
		l.stats.Dropped.Add(1)
		wire.Recycle(env.Msg)
		return
	}
	if env.Resp {
		dst.deliverResponse(env)
		return
	}
	// Demultiplex direct pushes to a registered session exactly as the TCP
	// read loop does: the session's handler runs against the session node,
	// and src carries no session (the id was the frame's destination).
	node, h, src := Node(dst), dst.h, wire.From{Addr: env.Src, Sess: env.Session}
	if env.Session != 0 {
		if s, ok := dst.sessions.Load(uint32(env.Session)); ok {
			ls := s.(*localSession)
			node, h, src = ls, ls.h, wire.At(env.Src)
		}
	}
	if h == nil {
		// Mux endpoint, no live session for the frame: drop with accounting.
		l.stats.Dropped.Add(1)
		wire.Recycle(env.Msg)
		return
	}
	// Client admission control, mirroring tcpNode.dispatch: shed excess
	// client load with a typed Busy; cluster-sourced traffic is never
	// gated (handlers may park on cluster state, and the message that
	// unblocks them must always dispatch). Shedding here runs on this
	// dispatch goroutine — Local already pays one goroutine per frame, so
	// there is no read path to protect — while parked requests resume on a
	// gate-spawned goroutine when a token frees.
	if dst.gate != nil && env.Src.IsClient() {
		exec := func() {
			h.Handle(node, src, env.ReqID, env.Msg)
			wire.Recycle(env.Msg)
			dst.gate.Release()
		}
		switch dst.gate.Submit(env.Session.Tenant(), exec, func() {
			wire.Recycle(env.Msg)
			l.stats.Dropped.Add(1)
		}) {
		case AdmitShed:
			l.shed(dst, env)
			return
		case AdmitQueued:
			return
		case AdmitGranted:
		}
		exec()
		return
	}
	h.Handle(node, src, env.ReqID, env.Msg)
	wire.Recycle(env.Msg)
}

// shed answers one declined client request with Busy (or drops it with
// accounting when it is neither awaited nor correlated).
func (l *Local) shed(dst *localNode, env *wire.Envelope) {
	reqID, echo := env.ReqID, uint64(0)
	if reqID == 0 {
		corr, ok := env.Msg.(wire.Correlated)
		if !ok {
			wire.Recycle(env.Msg)
			l.stats.Dropped.Add(1)
			return
		}
		echo = corr.CorrelationID()
	}
	wire.Recycle(env.Msg)
	hint := busyHintMicros(dst.gate, env.Session.Tenant())
	to := wire.From{Addr: env.Src, Sess: env.Session}
	if reqID != 0 {
		_ = dst.Respond(to, reqID, &wire.Busy{RetryAfterMicros: hint})
	} else {
		_ = dst.SendTo(to, &wire.Busy{Echo: echo, RetryAfterMicros: hint})
	}
}

// delivery is one in-flight coalesced batch.
type delivery struct {
	at   time.Time
	bufs []*wire.FrameBuf
}

// deliveryHeap is a min-heap of deliveries by due time.
type deliveryHeap []delivery

func (h deliveryHeap) Len() int           { return len(h) }
func (h deliveryHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h deliveryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)        { *h = append(*h, x.(delivery)) }
func (h *deliveryHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	*h = old[:n-1]
	return d
}

// spinHorizon is how close a due time must be before the wheel spins for
// it rather than sleeping; it exceeds the host timer slack so sleeps never
// overshoot a due time.
const spinHorizon = 2 * time.Millisecond

// wheel delivers delayed messages with microsecond accuracy.
type wheel struct {
	net  *Local
	ch   chan delivery
	h    deliveryHeap
	stop chan struct{}
}

func (w *wheel) run() {
	for {
		// Idle: block until work or shutdown (channel wakes are fast).
		if len(w.h) == 0 {
			select {
			case d := <-w.ch:
				heap.Push(&w.h, d)
			case <-w.stop:
				return
			}
		}
		// Drain whatever else arrived.
		for {
			select {
			case d := <-w.ch:
				heap.Push(&w.h, d)
				continue
			case <-w.stop:
				return
			default:
			}
			break
		}
		// Deliver everything due.
		now := time.Now()
		for len(w.h) > 0 && !w.h[0].at.After(now) {
			d := heap.Pop(&w.h).(delivery)
			w.net.dispatchBatch(d.bufs)
		}
		if len(w.h) == 0 {
			continue
		}
		// Far-future head: sleep most of the gap, waking early for new
		// messages; imminent head: spin.
		wait := time.Until(w.h[0].at)
		if wait > spinHorizon {
			t := time.NewTimer(wait - spinHorizon)
			select {
			case d := <-w.ch:
				heap.Push(&w.h, d)
			case <-t.C:
			case <-w.stop:
				t.Stop()
				return
			}
			t.Stop()
		} else {
			runtime.Gosched()
		}
	}
}

type localNode struct {
	net    *Local
	addr   wire.Addr
	h      Handler    // nil for mux endpoints
	gate   *AdmitGate // client admission gate; nil unless SetAdmission enabled it
	closed atomic.Bool

	// sessions holds the registered logical sessions of a mux endpoint
	// (uint32(wire.SessionID) → *localSession); empty on plain nodes.
	sessions sync.Map

	// stop fires when the node (or its network) closes, so Calls waiting
	// on responses that can never arrive — dispatch drops in-flight
	// messages at close — abort promptly instead of riding out their ctx.
	stop     chan struct{}
	stopOnce sync.Once

	reqSeq  atomic.Uint64
	pending sync.Map // reqID -> chan *wire.Envelope
}

// shutdown marks the node closed, drains the admission gate's park queues,
// and releases its waiting Calls and sessions.
func (n *localNode) shutdown() {
	n.closed.Store(true)
	n.stopOnce.Do(func() { close(n.stop) })
	if n.gate != nil {
		n.gate.Close()
	}
	n.sessions.Range(func(k, s any) bool {
		if !s.(*localSession).closed.Swap(true) {
			n.net.stats.Sessions.Add(-1)
		}
		n.sessions.Delete(k)
		return true
	})
}

func (n *localNode) Addr() wire.Addr { return n.addr }

// Session registers a logical session on this endpoint, mirroring the TCP
// mux: frames the session sends carry its id, and inbound one-way frames
// carrying the id reach h.
func (n *localNode) Session(id wire.SessionID, h Handler) (Session, error) {
	if id == 0 {
		return nil, errors.New("transport: zero session id")
	}
	if n.closed.Load() {
		return nil, ErrClosed
	}
	s := &localSession{n: n, id: id, h: h}
	if _, dup := n.sessions.LoadOrStore(uint32(id), s); dup {
		return nil, ErrAttached
	}
	n.net.stats.Sessions.Add(1)
	return s, nil
}

func (n *localNode) send(ctx context.Context, env *wire.Envelope) error {
	if n.closed.Load() {
		return ErrClosed
	}
	f := wire.GetFrame()
	f.Envelope(env)
	bytes := uint64(len(f.B))
	if n.net.dropMsg(env.Src, env.Dst) {
		n.net.stats.Dropped.Add(1)
		wire.PutFrame(f) // lost in flight; sender cannot tell
	} else {
		b, err := n.net.link(env.Src, env.Dst)
		if err != nil {
			wire.PutFrame(f)
			return err
		}
		// A full link queue exerts backpressure until ctx is done or the
		// link (network) closes — one-way Sends carry a Background ctx and
		// simply block, while a Call's deadline bounds its queueing too,
		// matching the TCP enqueue semantics.
		if err := b.Enqueue(ctx, f); err != nil {
			return err
		}
	}
	// Counted only once the message is committed to the network (or
	// charged as lost in flight), matching the TCP path: sends aborted by
	// shutdown must not inflate the traffic metrics benchmarks report.
	n.net.stats.MsgsSent.Add(1)
	n.net.stats.BytesSent.Add(bytes)
	return nil
}

// Send delivers a one-way message. Backpressure from a full link queue
// blocks until the link or network closes.
func (n *localNode) Send(dst wire.Addr, m wire.Message) error {
	return n.send(context.Background(), &wire.Envelope{Src: n.addr, Dst: dst, Msg: m})
}

// SendTo delivers a one-way message to a full destination, stamping the
// target session so a multiplexed client can demultiplex the push.
func (n *localNode) SendTo(to wire.From, m wire.Message) error {
	return n.send(context.Background(), &wire.Envelope{Src: n.addr, Dst: to.Addr, Session: to.Sess, Msg: m})
}

// Respond answers request reqID at the full origin to.
func (n *localNode) Respond(to wire.From, reqID uint64, m wire.Message) error {
	return n.send(context.Background(), &wire.Envelope{Src: n.addr, Dst: to.Addr, Session: to.Sess, ReqID: reqID, Resp: true, Msg: m})
}

// Call sends a request and waits for the matching response.
func (n *localNode) Call(ctx context.Context, dst wire.Addr, m wire.Message) (wire.Message, error) {
	return n.call(ctx, dst, m, 0)
}

// call is the shared Call engine: sessions stamp their id into the request
// envelope but share the node's request-id space and pending table, so
// responses demultiplex by reqID alone.
func (n *localNode) call(ctx context.Context, dst wire.Addr, m wire.Message, sess wire.SessionID) (wire.Message, error) {
	id := n.reqSeq.Add(1)
	ch := make(chan *wire.Envelope, 1)
	n.pending.Store(id, ch)
	defer n.pending.Delete(id)
	err := n.send(ctx, &wire.Envelope{Src: n.addr, Dst: dst, Session: sess, ReqID: id, Msg: m})
	if err != nil {
		return nil, err
	}
	select {
	case env := <-ch:
		return unwrapResp(env)
	case <-n.stop:
		// Node (or network) shut down while waiting; dispatch drops
		// in-flight messages, so no further response can arrive. Prefer
		// one that already did (select picks ready cases at random) over
		// reporting a completed operation as failed.
		select {
		case env := <-ch:
			return unwrapResp(env)
		default:
		}
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deliverResponse hands a response to its waiting Call. A response nobody
// is waiting for — the Call's ctx expired and deleted the pending entry,
// or a duplicate already filled the channel — must still be accounted and
// its pooled message recycled; silently discarding it leaked pool capacity
// and hid the drop from the stats.
func (n *localNode) deliverResponse(env *wire.Envelope) {
	if ch, ok := n.pending.Load(env.ReqID); ok {
		select {
		case ch.(chan *wire.Envelope) <- env:
			return
		default: // duplicate response
		}
	}
	n.net.stats.Dropped.Add(1)
	wire.Recycle(env.Msg)
}

// Close detaches the node from the network.
func (n *localNode) Close() error {
	n.shutdown()
	n.net.mu.Lock()
	delete(n.net.nodes, n.addr)
	n.net.mu.Unlock()
	return nil
}

// localSession is one logical session on a mux endpoint, mirroring
// tcpSession: it shares the endpoint's request-id space and pending table,
// stamps its id into outbound envelopes, and receives inbound pushes
// addressed to the id.
type localSession struct {
	n      *localNode
	id     wire.SessionID
	h      Handler
	closed atomic.Bool
}

func (s *localSession) Addr() wire.Addr    { return s.n.addr }
func (s *localSession) ID() wire.SessionID { return s.id }

// env builds a session-stamped envelope toward to (an explicit session in
// to wins over the session's own id, as on TCP).
func (s *localSession) env(to wire.From, reqID uint64, resp bool, m wire.Message) *wire.Envelope {
	sess := s.id
	if to.Sess != 0 {
		sess = to.Sess
	}
	return &wire.Envelope{Src: s.n.addr, Dst: to.Addr, Session: sess, ReqID: reqID, Resp: resp, Msg: m}
}

// Send delivers a one-way message carrying the session id.
func (s *localSession) Send(dst wire.Addr, m wire.Message) error {
	return s.SendTo(wire.At(dst), m)
}

// SendTo delivers a one-way message to a full destination.
func (s *localSession) SendTo(to wire.From, m wire.Message) error {
	if s.closed.Load() {
		return ErrClosed
	}
	return s.n.send(context.Background(), s.env(to, 0, false, m))
}

// Respond answers request reqID at to.
func (s *localSession) Respond(to wire.From, reqID uint64, m wire.Message) error {
	if s.closed.Load() {
		return ErrClosed
	}
	return s.n.send(context.Background(), s.env(to, reqID, true, m))
}

// Call sends a request and waits for the matching response.
func (s *localSession) Call(ctx context.Context, dst wire.Addr, m wire.Message) (wire.Message, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	return s.n.call(ctx, dst, m, s.id)
}

// Close deregisters the session; in-flight pushes to it are dropped with
// accounting (and their pooled messages recycled) by dispatch.
func (s *localSession) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.n.sessions.Delete(uint32(s.id))
	s.n.net.stats.Sessions.Add(-1)
	return nil
}
