// Package transport moves wire messages between processes.
//
// Two implementations share one interface: Local, an in-process network
// that marshals every message and injects configurable per-link latency
// (the benchmark substrate standing in for the paper's 10 Gbps LAN), and
// TCP, a real network transport making the same servers deployable across
// processes (cmd/kvserver).
//
// The model is asynchronous messaging with a request/response convenience:
// Send delivers a one-way message; Call delivers a request and blocks until
// the matching response or context cancellation. Incoming messages are
// dispatched to a Handler off the receive path — TCP uses a bounded worker
// pool that spills to fresh goroutines under saturation — so handlers may
// block and issue nested Calls (the readers check in CC-LO does exactly
// that).
package transport

import (
	"context"
	"errors"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// Transport errors.
var (
	ErrClosed   = errors.New("transport: closed")
	ErrNoRoute  = errors.New("transport: no route to destination")
	ErrAttached = errors.New("transport: address already attached")
)

// Handler receives messages addressed to a node. src names the sender:
// its endpoint address plus, for multiplexed client traffic, the logical
// session on it — handlers pass src back to Respond/SendTo unchanged and
// the reply reaches the right session. reqID is nonzero when the sender
// awaits a response via Call; the handler must eventually call
// node.Respond(src, reqID, resp) for such messages. Handlers run on
// dedicated goroutines and may block.
//
// Ownership: the transport recycles pooled message types after Handle
// returns (wire.Recycle), so a handler must not retain the message struct —
// nor the container slices its Reset recycles (e.g. RepBatch.Ups, the Keys
// of the read requests) — past its return. Deep data the protocols do keep
// (key strings, value bytes, vectors, dependency lists) is allocated fresh
// by every decode and safe to retain; each pooled type's Reset documents
// its policy.
type Handler interface {
	Handle(node Node, src wire.From, reqID uint64, m wire.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(node Node, src wire.From, reqID uint64, m wire.Message)

// Handle calls f.
func (f HandlerFunc) Handle(node Node, src wire.From, reqID uint64, m wire.Message) {
	f(node, src, reqID, m)
}

// Node is one attached endpoint of a network.
type Node interface {
	// Addr returns the node's address.
	Addr() wire.Addr
	// Send delivers a one-way message to dst.
	Send(dst wire.Addr, m wire.Message) error
	// SendTo delivers a one-way message to a full destination — endpoint
	// plus session — so servers can push directly to one session of a
	// multiplexed client (the 1 1/2-round ROT's direct answers, Busy
	// echoes). SendTo(wire.At(dst), m) is Send(dst, m).
	SendTo(to wire.From, m wire.Message) error
	// Call sends a request to dst and waits for the response. If the
	// responder answered with *wire.ErrorResp, Call returns it as the
	// error.
	Call(ctx context.Context, dst wire.Addr, m wire.Message) (wire.Message, error)
	// Respond answers a request previously delivered with reqID, routing
	// by the full origin the handler received.
	Respond(to wire.From, reqID uint64, m wire.Message) error
	// Close detaches the node.
	Close() error
}

// Session is one logical client session on a multiplexed endpoint. It is a
// full Node — its Sends and Calls stamp the session id into every frame,
// and inbound frames carrying the id (direct server pushes) reach its
// handler — but any number of sessions share the endpoint's sockets.
type Session interface {
	Node
	// ID returns the session's identity (tenant + local id).
	ID() wire.SessionID
}

// Mux is a multiplexed client endpoint: one attached address carrying any
// number of logical sessions over a small fixed pool of connections.
type Mux interface {
	// Addr returns the endpoint's address.
	Addr() wire.Addr
	// Session registers a logical session with its push handler (h may be
	// nil when the session never receives direct server pushes). The id
	// must be nonzero and unused.
	Session(id wire.SessionID, h Handler) (Session, error)
	// Close detaches the endpoint and every session on it.
	Close() error
}

// Network attaches nodes to a message fabric.
type Network interface {
	// Attach registers addr with handler h and returns the node.
	Attach(addr wire.Addr, h Handler) (Node, error)
	// AttachMux registers addr as a multiplexed client endpoint whose
	// sessions share a pool of at most pool connections per destination
	// (pool ≤ 1 means a single shared connection; the Local simulator has
	// no sockets and ignores it).
	AttachMux(addr wire.Addr, pool int) (Mux, error)
	// Close shuts the fabric down.
	Close() error
}

// Stats counts network traffic. Benchmarks read these to report the
// communication overhead analyses of Sections 5.4–5.6 and the transport
// efficiency of the write path (frame coalescing, flush counts and
// latency, queue depth). Both transports feed the batching counters
// through the shared engine (see batch.go), so the same columns describe
// simulated and real deployments.
type Stats struct {
	MsgsSent  metrics.Counter
	BytesSent metrics.Counter
	Dropped   metrics.Counter

	// Flushes counts batches cut by the batching engine — on TCP one
	// scatter-gather socket write each (a giant batch may need more than
	// one writev at the kernel boundary); on Local one delivered batch
	// with a single latency charge. FramesCoalesced counts frames that
	// joined an earlier frame's batch. Msgs/Flushes and
	// FramesCoalesced/Msgs together describe how well the engine batches.
	Flushes         metrics.Counter
	FramesCoalesced metrics.Counter

	// FlushDelay is the enqueue→flush latency distribution: how long
	// frames waited in a send queue plus the batch they joined. Under the
	// adaptive policy its p99 stays at or under the configured
	// FlushBudget as long as the sink keeps up with the offered load.
	FlushDelay metrics.StaticHist

	// WritevBytes counts frame bytes written through the scatter-gather
	// path — chained as their own writev iovec instead of being copied
	// into the staging buffer. TCP only; Local has no copy to skip.
	WritevBytes metrics.Counter

	// HandlerOverflow counts inbound requests that found no idle worker
	// in the bounded pool and ran on a spilled goroutine instead.
	HandlerOverflow metrics.Counter

	// SendQueue tracks frames sitting in send queues (current level and
	// high-water mark).
	SendQueue metrics.Gauge

	// OpenConns tracks live sockets (TCP only; the Local simulator has
	// none). With the session mux this stays O(nodes × pool) while
	// Sessions grows with offered client load — their ratio is the
	// multiplexing factor the connection-scale smoke asserts on.
	OpenConns metrics.Gauge

	// Sessions tracks registered logical client sessions across the
	// network's multiplexed endpoints.
	Sessions metrics.Gauge
}

// Snapshot returns a plain copy of the three traffic counters (legacy
// signature; see View for the full set).
func (s *Stats) Snapshot() (msgs, bytes, dropped uint64) {
	return s.MsgsSent.Load(), s.BytesSent.Load(), s.Dropped.Load()
}

// StatsView is a frozen copy of every transport counter. FlushP99Delay is
// a whole-run percentile (like the queue peak), not a window delta.
type StatsView struct {
	MsgsSent        uint64
	BytesSent       uint64
	Dropped         uint64
	Flushes         uint64
	FramesCoalesced uint64
	FlushP99Delay   time.Duration
	WritevBytes     uint64
	HandlerOverflow uint64
	SendQueueDepth  int64
	SendQueuePeak   int64
	OpenConns       int64
	OpenConnsPeak   int64
	Sessions        int64
	SessionsPeak    int64
}

// View returns a frozen copy of all counters.
func (s *Stats) View() StatsView {
	return StatsView{
		MsgsSent:        s.MsgsSent.Load(),
		BytesSent:       s.BytesSent.Load(),
		Dropped:         s.Dropped.Load(),
		Flushes:         s.Flushes.Load(),
		FramesCoalesced: s.FramesCoalesced.Load(),
		FlushP99Delay:   s.FlushDelay.Percentile(99),
		WritevBytes:     s.WritevBytes.Load(),
		HandlerOverflow: s.HandlerOverflow.Load(),
		SendQueueDepth:  s.SendQueue.Load(),
		SendQueuePeak:   s.SendQueue.HighWater(),
		OpenConns:       s.OpenConns.Load(),
		OpenConnsPeak:   s.OpenConns.HighWater(),
		Sessions:        s.Sessions.Load(),
		SessionsPeak:    s.Sessions.HighWater(),
	}
}

// Register exposes every transport counter under the given registry with
// the caller's labels (typically none: one transport serves the whole
// process). Registration only hands the registry pointers; the send-path
// hot code is untouched.
func (s *Stats) Register(r *metrics.Registry, labels ...metrics.Label) {
	r.Counter("kv_transport_msgs_sent_total", "Frames sent.", &s.MsgsSent, labels...)
	r.Counter("kv_transport_bytes_sent_total", "Frame bytes sent (headers included).", &s.BytesSent, labels...)
	r.Counter("kv_transport_dropped_total", "Frames dropped at a closed or full sink.", &s.Dropped, labels...)
	r.Counter("kv_transport_flushes_total", "Batches cut by the batching engine.", &s.Flushes, labels...)
	r.Counter("kv_transport_frames_coalesced_total", "Frames that joined an earlier frame's batch.", &s.FramesCoalesced, labels...)
	r.Histogram("kv_transport_flush_delay_seconds", "Enqueue-to-flush latency of batched frames.", &s.FlushDelay, labels...)
	r.Counter("kv_transport_writev_bytes_total", "Frame bytes sent through the scatter-gather path.", &s.WritevBytes, labels...)
	r.Counter("kv_transport_handler_overflow_total", "Inbound requests spilled past the bounded worker pool.", &s.HandlerOverflow, labels...)
	r.Gauge("kv_transport_send_queue_frames", "Frames currently sitting in send queues.", &s.SendQueue, labels...)
	r.Gauge("kv_transport_open_conns", "Live sockets (zero on the in-process transport).", &s.OpenConns, labels...)
	r.Gauge("kv_transport_sessions", "Registered logical client sessions across multiplexed endpoints.", &s.Sessions, labels...)
}

// RespondError is a small helper servers use to answer a Call with an
// error message.
func RespondError(n Node, to wire.From, reqID uint64, code uint16, text string) {
	_ = n.Respond(to, reqID, &wire.ErrorResp{Code: code, Text: text})
}

// unwrapResp converts a response envelope into Call's return values,
// surfacing *wire.ErrorResp and the admission gate's *wire.Busy as the
// error (both implement error), so every Call path sees shedding uniformly.
func unwrapResp(env *wire.Envelope) (wire.Message, error) {
	switch e := env.Msg.(type) {
	case *wire.ErrorResp:
		return nil, e
	case *wire.Busy:
		return nil, e
	}
	return env.Msg, nil
}
