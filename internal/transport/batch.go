package transport

import (
	"context"
	"sync"
	"time"

	"repro/internal/wire"
)

// This file is the batching engine shared by both transports. A Batcher
// owns one send path — a bounded frame queue drained by a single writer
// goroutine — and decides when a coalesced batch is handed to its sink:
//
//	frames ──Enqueue──▶ [bounded queue] ──gather──▶ sink.WriteBatch(batch)
//
// The gather policy is the latency/throughput knob. A batch is cut when
//
//	(a) the queue goes idle (nothing more to coalesce — flush now),
//	(b) the oldest gathered frame has waited FlushBudget (adaptive flush:
//	    latency is bounded even while frames keep arriving), or
//	(c) the batch reaches MaxBatchBytes (bound memory and write size).
//
// FlushBudget = 0 disables (b): that is the seed's greedy drain-until-idle,
// still reachable for ablations. TCP turns a batch into one scatter-gather
// socket write (see tcpSink); the Local simulator turns it into one
// delivery with a single latency charge (see localSink), so simulated and
// real deployments share this one batching model.

// DefaultFlushBudget is the adaptive flush latency budget applied by the
// configuration layers (cluster.Config, causalkv.Options, kvserver flags)
// when none is given: it caps how long a queued frame can wait for the
// batch it joined to be cut, while staying well under the intra-DC RTT it
// is amortizing syscalls against.
const DefaultFlushBudget = 200 * time.Microsecond

// Batch sizing defaults.
const (
	// defaultMaxBatchBytes caps one coalesced batch. It deliberately
	// exceeds the seed's 64 KiB bufio buffer (whose implicit flushes used
	// to cut batches at frame granularity): with the budget bounding
	// latency, bigger batches are pure syscall amortization.
	defaultMaxBatchBytes = 256 << 10
	// defaultWritevBytes is the frame size at which the TCP sink stops
	// copying the frame into its staging buffer and chains it as its own
	// writev iovec instead (the copy would cost more than the extra
	// scatter-gather entry).
	defaultWritevBytes = 16 << 10
	// defaultQueueLen bounds the per-path send queue. Senders block
	// (backpressure) once it is full.
	defaultQueueLen = 1024
)

// BatchPolicy configures one Batcher.
type BatchPolicy struct {
	// FlushBudget bounds how long one batch may stay open gathering more
	// frames, so the coalescing delay a batch imposes on its oldest frame
	// is at most the budget (total enqueue→flush delay is queue wait plus
	// this — ≤ the budget whenever the sink keeps up with the offered
	// load). 0 means greedy drain-until-idle (the seed policy: a batch is
	// cut only by queue idleness or the byte cap). DefaultPolicy applies
	// DefaultFlushBudget.
	FlushBudget time.Duration
	// MaxBatchBytes cuts a batch once it holds this many frame bytes
	// (0 = default 256 KiB).
	MaxBatchBytes int
	// WritevBytes is the frame size at or above which the TCP sink skips
	// the staging-buffer copy and scatter-gathers the frame's own bytes
	// (0 = default 16 KiB). The Local simulator has no copy to skip and
	// ignores it.
	WritevBytes int
	// QueueLen bounds the send queue (0 = default 1024).
	QueueLen int
}

// DefaultPolicy is the adaptive policy the plain NewTCP/NewLocal
// constructors use.
func DefaultPolicy() BatchPolicy {
	return BatchPolicy{FlushBudget: DefaultFlushBudget}
}

// ResolveFlushBudget maps a configuration-level flush budget — where the
// zero value must mean "default" (struct configs can't distinguish unset
// from zero) and negative means greedy drain — onto the engine convention
// (0 = greedy).
func ResolveFlushBudget(d time.Duration) time.Duration {
	switch {
	case d == 0:
		return DefaultFlushBudget
	case d < 0:
		return 0
	default:
		return d
	}
}

func (p BatchPolicy) withDefaults() BatchPolicy {
	if p.MaxBatchBytes <= 0 {
		p.MaxBatchBytes = defaultMaxBatchBytes
	}
	if p.WritevBytes <= 0 {
		p.WritevBytes = defaultWritevBytes
	}
	if p.QueueLen <= 0 {
		p.QueueLen = defaultQueueLen
	}
	return p
}

// BatchSink consumes coalesced batches.
type BatchSink interface {
	// WriteBatch consumes one batch in order. Ownership of every frame
	// transfers to the sink, which must PutFrame each once its bytes are
	// consumed; the slice itself is the Batcher's and is reused after
	// WriteBatch returns, so a sink that defers consumption (localSink)
	// must copy the slice, not retain it. A non-nil error stops the
	// Batcher: Run returns after draining the queue.
	WriteBatch(frames []*wire.FrameBuf) error
}

// batchItem is one queued frame plus its enqueue time, the start of the
// enqueue→flush delay the FlushDelay histogram reports.
type batchItem struct {
	f  *wire.FrameBuf
	at time.Time
}

// Batcher is one batched send path: Enqueue feeds the bounded queue, Run
// (one goroutine, started by the owner) gathers per the policy and hands
// batches to the sink.
type Batcher struct {
	sink  BatchSink
	pol   BatchPolicy
	stats *Stats

	q      chan batchItem
	closed chan struct{}
	once   sync.Once
}

// NewBatcher builds a Batcher over sink. The caller must run Run on its
// own goroutine and eventually Close.
func NewBatcher(sink BatchSink, pol BatchPolicy, stats *Stats) *Batcher {
	pol = pol.withDefaults()
	return &Batcher{
		sink:   sink,
		pol:    pol,
		stats:  stats,
		q:      make(chan batchItem, pol.QueueLen),
		closed: make(chan struct{}),
	}
}

// Close stops the Batcher. Idempotent; queued frames that Run no longer
// writes are recycled (by Run's teardown or a racing Enqueue).
func (b *Batcher) Close() {
	b.once.Do(func() { close(b.closed) })
}

// Enqueue hands a framed envelope to the writer, blocking while the queue
// is full (backpressure). A blocked enqueue aborts when ctx is done, so a
// Call deadline is honoured even while the sink is stalled. Ownership of f
// transfers to the Batcher on success.
func (b *Batcher) Enqueue(ctx context.Context, f *wire.FrameBuf) error {
	select {
	case <-b.closed:
		wire.PutFrame(f)
		return ErrClosed
	default:
	}
	// Count the frame before committing it so the writer's decrement can
	// never be observed ahead of the increment (a transiently negative
	// gauge).
	b.stats.SendQueue.Add(1)
	select {
	case b.q <- batchItem{f: f, at: time.Now()}:
		select {
		case <-b.closed:
			// The Batcher closed while we were queueing; Run (and its
			// teardown drain) may already be gone, stranding f. Sweep the
			// queue ourselves so no frame or gauge count leaks, and report
			// the send as failed — the frame may never be written.
			b.drain()
			return ErrClosed
		default:
		}
		return nil
	case <-b.closed:
		b.stats.SendQueue.Add(-1)
		wire.PutFrame(f)
		return ErrClosed
	case <-ctx.Done():
		b.stats.SendQueue.Add(-1)
		wire.PutFrame(f)
		return ctx.Err()
	}
}

// Run is the writer loop: block for the first queued frame, gather per the
// flush policy, hand the batch to the sink, repeat. It returns when the
// Batcher is closed or the sink fails (closing the Batcher either way), so
// the owner can tear down its endpoint when Run returns.
func (b *Batcher) Run() {
	// Teardown order matters (defers run LIFO): Close FIRST, drain second.
	// An Enqueue racing teardown re-checks closed after committing its
	// frame; only with closed already set can it self-drain, so a drain
	// that ran before Close could leave a just-committed frame stranded
	// (leaked FrameBuf, SendQueue gauge permanently high).
	defer b.drain()
	defer b.Close()
	var (
		frames []*wire.FrameBuf
		times  []time.Time
	)
	for {
		var it batchItem
		select {
		case it = <-b.q:
		case <-b.closed:
			return
		}
		frames, times = frames[:0], times[:0]
		bytes := 0
		var deadline time.Time
		if b.pol.FlushBudget > 0 {
			// The budget bounds how long the batch stays OPEN, from gather
			// start — not from the first frame's enqueue. Anchoring on
			// enqueue time would cut one-frame batches whenever a backlog
			// is older than the budget (a stalled sink coming back), i.e.
			// give up coalescing exactly when it matters most.
			deadline = time.Now().Add(b.pol.FlushBudget)
		}
		for {
			b.stats.SendQueue.Add(-1)
			frames = append(frames, it.f)
			times = append(times, it.at)
			bytes += len(it.f.B)
			if bytes >= b.pol.MaxBatchBytes {
				break
			}
			if b.pol.FlushBudget > 0 && !time.Now().Before(deadline) {
				break
			}
			select {
			case it = <-b.q:
				continue
			default:
			}
			break // queue idle: flush what we have
		}
		if err := b.sink.WriteBatch(frames); err != nil {
			return
		}
		now := time.Now()
		for _, at := range times {
			b.stats.FlushDelay.Record(now.Sub(at))
		}
		b.stats.Flushes.Add(1)
		b.stats.FramesCoalesced.Add(uint64(len(frames) - 1))
	}
}

// drain empties the queue after close so the queue-depth gauge does not
// count frames that will never be written.
func (b *Batcher) drain() {
	for {
		select {
		case it := <-b.q:
			b.stats.SendQueue.Add(-1)
			wire.PutFrame(it.f)
		default:
			return
		}
	}
}
