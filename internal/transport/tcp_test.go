package transport

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestTCPClientZeroAddr is the regression test for the ClientAddr(0, 0)
// collision: that address used to encode to Addr(0), matching the
// "unlearned peer" sentinel in readLoop, so the server never learned the
// client's connection and responses failed with ErrNoRoute.
func TestTCPClientZeroAddr(t *testing.T) {
	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): freeAddr(t)}
	net := NewTCP(dir)
	defer net.Close()
	if _, err := net.Attach(wire.ServerAddr(0, 0), &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach(wire.ClientAddr(0, 0), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := cli.Call(ctx, wire.ServerAddr(0, 0), &wire.Ping{Nonce: 99})
	if err != nil {
		t.Fatalf("Call as client (0,0): %v", err)
	}
	if pong, ok := resp.(*wire.Pong); !ok || pong.Nonce != 99 {
		t.Fatalf("resp = %+v", resp)
	}
}

// slowHandler responds to Ping after a delay, so a Call can be in flight
// when the network shuts down.
type slowHandler struct{ delay time.Duration }

func (s *slowHandler) Handle(n Node, src wire.From, reqID uint64, m wire.Message) {
	if reqID == 0 {
		return
	}
	time.Sleep(s.delay)
	if p, ok := m.(*wire.Ping); ok {
		n.Respond(src, reqID, &wire.Pong{Nonce: p.Nonce})
	}
}

// TestTCPCloseReleasesResources asserts that Close tears down every
// goroutine and socket the transport created — including accepted
// connections that never sent a frame (half-open, unlearned) and calls
// still in flight. The seed leaked both: send forgot broken conns without
// closing them, and Close only closed learned conns.
func TestTCPCloseReleasesResources(t *testing.T) {
	before := runtime.NumGoroutine()

	hp := freeAddr(t)
	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): hp}
	tnet := NewTCP(dir)
	if _, err := tnet.Attach(wire.ServerAddr(0, 0), &slowHandler{delay: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	cli, err := tnet.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}

	// A half-open connection: accepted by the server, never sends a frame,
	// so the server cannot learn its address.
	raw, err := net.Dial("tcp", hp)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// An in-flight Call: the handler is still sleeping when Close runs.
	callErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := cli.Call(ctx, wire.ServerAddr(0, 0), &wire.Ping{Nonce: 1})
		callErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call reach the handler

	if err := tnet.Close(); err != nil {
		t.Fatal(err)
	}

	// The in-flight call must fail fast, not hang until its deadline.
	select {
	case err := <-callErr:
		if err == nil {
			t.Fatal("in-flight call succeeded across Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call hung across Close")
	}

	// The server must have closed the accepted half-open socket.
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("half-open conn read err = %v, want EOF", err)
	}

	// Every transport goroutine (accept/read/write loops, worker pools)
	// must exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines: %d before, %d after Close\n%s",
			before, g, buf[:runtime.Stack(buf, true)])
	}
}

// TestTCPLearnRaceLoserPromoted pins the learn-race semantics: when two
// connections to the same peer race (symmetric dials, or a reconnect while
// the stale conn lingers), the loser must be promoted into the routing map
// once the winner is forgotten. The loser used to stay stranded forever —
// the peer became unroutable because clients are not in the directory.
func TestTCPLearnRaceLoserPromoted(t *testing.T) {
	n := &tcpNode{conns: make(map[connKey]*tcpConn), all: make(map[*tcpConn]struct{})}
	peer := wire.ClientAddr(0, 7)
	key := connKey{addr: peer, slot: 0}
	stale, fresh := &tcpConn{}, &tcpConn{}
	n.all[stale] = struct{}{}
	n.all[fresh] = struct{}{}
	n.learn(peer, stale)
	n.learn(peer, fresh) // loses the race but remembers its peer
	if n.conns[key] != stale {
		t.Fatal("first learner did not win the routing entry")
	}
	n.forget(stale)
	if n.conns[key] != fresh {
		t.Fatal("surviving conn not promoted after forget; peer unroutable")
	}
	n.forget(fresh)
	if _, ok := n.conns[key]; ok {
		t.Fatal("routing entry survived its last conn")
	}
}

// parkHandler parks every Ping request until a one-way Pong releases them,
// modelling handlers that block on cluster state (a COPS dep check waiting
// for replication).
type parkHandler struct {
	release chan struct{}
	parked  atomic.Int64
}

func (p *parkHandler) Handle(n Node, src wire.From, reqID uint64, m wire.Message) {
	switch m.(type) {
	case *wire.Ping:
		p.parked.Add(1)
		<-p.release
		n.Respond(src, reqID, &wire.Pong{})
	case *wire.Pong:
		close(p.release)
	}
}

// TestTCPDispatchSpillsWhenWorkersBusy is the regression test for the
// worker-pool liveness bug: with every pool worker parked in a blocking
// handler, the message that unblocks them used to sit in the (non-full)
// work queue forever — a distributed deadlock. Dispatch must spill to a
// fresh goroutine whenever no worker is idle, not only on queue overflow.
func TestTCPDispatchSpillsWhenWorkersBusy(t *testing.T) {
	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): freeAddr(t)}
	tnet := NewTCP(dir)
	defer tnet.Close()
	h := &parkHandler{release: make(chan struct{})}
	if _, err := tnet.Attach(wire.ServerAddr(0, 0), h); err != nil {
		t.Fatal(err)
	}
	cli, err := tnet.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}

	// Park as many handlers as the pool has workers.
	workers := handlerWorkers()
	callErrs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := cli.Call(ctx, wire.ServerAddr(0, 0), &wire.Ping{Nonce: 1})
			callErrs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.parked.Load() < int64(workers) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := h.parked.Load(); got < int64(workers) {
		t.Fatalf("only %d/%d handlers parked", got, workers)
	}

	// The release message must run even though every worker is parked.
	if err := cli.Send(wire.ServerAddr(0, 0), &wire.Pong{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		select {
		case err := <-callErrs:
			if err != nil {
				t.Fatalf("parked call failed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("parked calls never released: dispatch did not spill (%d/%d done)", i, workers)
		}
	}
}

// TestTCPCallDeadlineUnderBackpressure asserts that a Call whose frame
// cannot even be queued — the peer reads nothing, so the send queue is
// full and the writer is blocked on the socket — still honours its
// context deadline instead of blocking until the connection dies.
func TestTCPCallDeadlineUnderBackpressure(t *testing.T) {
	// A peer that accepts the connection and then never reads.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): ln.Addr().String()}
	tnet := NewTCP(dir)
	defer tnet.Close()
	cli, err := tnet.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}

	// Fill kernel buffers and then the send queue; the filler eventually
	// blocks in enqueue and is freed by the deferred Close.
	payload := &wire.PutReq{Key: "k", Value: make([]byte, 64<<10)}
	go func() {
		for {
			if err := cli.Send(wire.ServerAddr(0, 0), payload); err != nil {
				return
			}
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for tnet.Stats().SendQueue.Load() < defaultQueueLen && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q := tnet.Stats().SendQueue.Load(); q < defaultQueueLen {
		t.Fatalf("send queue never filled (depth %d)", q)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cli.Call(ctx, wire.ServerAddr(0, 0), &wire.Ping{Nonce: 1})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("Call blocked %v past its 200ms deadline", since)
	}
	select {
	case c := <-accepted:
		c.Close()
	default:
	}
}

// TestTCPCloseAbortsPendingDial asserts that node shutdown cancels an
// in-progress dial: a Send dialing a blackholed peer with a Background
// context used to pin Close in wg.Wait for the kernel connect timeout
// (minutes) when the sender ran on a transport-tracked goroutine.
func TestTCPCloseAbortsPendingDial(t *testing.T) {
	// TEST-NET-1 (RFC 5737) is never allocated: the SYN usually
	// blackholes (dial hangs, the case under test); environments where it
	// fails fast or is transparently accepted pass trivially.
	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): "192.0.2.1:9"}
	tnet := NewTCP(dir)
	cli, err := tnet.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}
	sendErr := make(chan error, 1)
	go func() {
		sendErr <- cli.Send(wire.ServerAddr(0, 0), &wire.Ping{Nonce: 1})
	}()
	time.Sleep(50 * time.Millisecond) // let the Send reach the dial
	done := make(chan struct{})
	go func() {
		tnet.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung behind an in-flight dial")
	}
	select {
	case <-sendErr:
		// The error value is environment-dependent (a NAT/proxy may even
		// accept the dial); what matters is that the Send unblocked.
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked in dial after Close")
	}
}

// TestTCPCoalescingUnderLoad pins coalescing on a real socket
// deterministically: the peer accepts but does not read, so the writer
// blocks in its socket write while the send queue builds a known backlog;
// once the peer starts draining, that backlog MUST be retired in shared
// batches, and the counters must observe it.
func TestTCPCoalescingUnderLoad(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): ln.Addr().String()}
	tnet := NewTCP(dir)
	defer tnet.Close()
	cli, err := tnet.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}

	// Enough volume that the un-read peer's kernel buffers (which can
	// auto-tune to several MB) cannot absorb it all: the send queue MUST
	// build the asserted backlog.
	const frames, backlog = 4000, 600
	payload := &wire.PutReq{Key: "k", Value: make([]byte, 8192)}
	sendErrs := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			if err := cli.Send(wire.ServerAddr(0, 0), payload); err != nil {
				sendErrs <- err
				return
			}
		}
		sendErrs <- nil
	}()

	// Kernel buffers fill, the writer blocks, the queue builds.
	deadline := time.Now().Add(30 * time.Second)
	for tnet.Stats().SendQueue.Load() < backlog && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q := tnet.Stats().SendQueue.Load(); q < backlog {
		t.Fatalf("send queue built only %d/%d frames", q, backlog)
	}

	// Unblock: drain the socket; the queued backlog must flush in batches.
	var peer net.Conn
	select {
	case peer = <-accepted:
	case <-time.After(10 * time.Second):
		t.Fatal("peer never accepted")
	}
	defer peer.Close()
	go io.Copy(io.Discard, peer)

	if err := <-sendErrs; err != nil {
		t.Fatal(err)
	}
	for tnet.Stats().SendQueue.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q := tnet.Stats().SendQueue.Load(); q > 0 {
		t.Fatalf("send queue never drained (%d left)", q)
	}

	v := tnet.Stats().View()
	if v.Flushes == 0 {
		t.Fatal("Flushes = 0; writer never flushed")
	}
	// The observed 600-frame backlog alone must have coalesced into
	// ≤256 KiB batches (32 of these 8 KiB frames each): well over 400
	// frames shared a flush even if everything else went out solo.
	if v.FramesCoalesced < 400 {
		t.Fatalf("FramesCoalesced = %d; a %d-frame backlog was not batched", v.FramesCoalesced, backlog)
	}
	if v.Flushes+v.FramesCoalesced < frames {
		t.Fatalf("flushes %d + coalesced %d < %d frames sent", v.Flushes, v.FramesCoalesced, frames)
	}
	if v.SendQueuePeak < backlog {
		t.Fatalf("SendQueuePeak = %d; gauge not wired", v.SendQueuePeak)
	}
	if v.FlushP99Delay == 0 {
		t.Fatal("FlushP99Delay = 0; delay histogram not wired")
	}
	t.Logf("msgs=%d flushes=%d coalesced=%d (%.1f frames/flush) queuePeak=%d p99=%v",
		v.MsgsSent, v.Flushes, v.FramesCoalesced,
		float64(v.Flushes+v.FramesCoalesced)/float64(v.Flushes), v.SendQueuePeak, v.FlushP99Delay)
}

// TestTCPScatterGatherInterleaving is the framing property test for the
// writev path: pseudorandom small (staged, copied) and large
// (scatter-gathered, zero-copy) frames interleave on one connection, and
// every payload must reassemble byte-exactly on the peer — any
// pooled-buffer reuse before the writev consumed its bytes, or any
// mis-spliced staging chunk, corrupts a payload. Run under -race in CI.
func TestTCPScatterGatherInterleaving(t *testing.T) {
	const (
		writevMin = 4096
		msgs      = 400
	)
	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): freeAddr(t)}
	tnet := NewTCPOpts(dir, BatchPolicy{FlushBudget: DefaultFlushBudget, WritevBytes: writevMin})
	defer tnet.Close()

	// value derives every byte from the key's sequence number, so the
	// receiver can verify content without assuming arrival order.
	value := func(seq, size int) []byte {
		v := make([]byte, size)
		for i := range v {
			v[i] = byte(seq*31 + i*7)
		}
		return v
	}
	sizeOf := func(rng *rand.Rand) int {
		switch rng.Intn(4) {
		case 0: // large: writev path, well past the threshold
			return writevMin + rng.Intn(128<<10)
		case 1: // boundary straddlers
			return writevMin - 64 + rng.Intn(128)
		default: // small: staging path
			return 16 + rng.Intn(2048)
		}
	}

	var (
		verified atomic.Uint64
		bad      atomic.Uint64
	)
	srv := HandlerFunc(func(n Node, src wire.From, reqID uint64, m wire.Message) {
		pr, ok := m.(*wire.PutReq)
		if !ok {
			return
		}
		seq, err := strconv.Atoi(pr.Key)
		if err != nil {
			bad.Add(1)
			return
		}
		want := value(seq, len(pr.Value))
		if !bytes.Equal(pr.Value, want) {
			bad.Add(1)
			t.Errorf("seq %d: payload of %d bytes corrupted", seq, len(pr.Value))
			return
		}
		verified.Add(1)
	})
	if _, err := tnet.Attach(wire.ServerAddr(0, 0), srv); err != nil {
		t.Fatal(err)
	}
	cli, err := tnet.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}

	seed := time.Now().UnixNano()
	t.Logf("seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, msgs)
	for i := range sizes {
		sizes[i] = sizeOf(rng)
	}
	for i, size := range sizes {
		if err := cli.Send(wire.ServerAddr(0, 0), &wire.PutReq{Key: strconv.Itoa(i), Value: value(i, size)}); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for verified.Load()+bad.Load() < msgs && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := verified.Load(); got != msgs || bad.Load() != 0 {
		t.Fatalf("verified %d/%d payloads (%d corrupt)", got, msgs, bad.Load())
	}
	v := tnet.Stats().View()
	if v.WritevBytes == 0 {
		t.Fatal("WritevBytes = 0: no frame took the scatter-gather path")
	}
	t.Logf("writev bytes=%d of %d total", v.WritevBytes, v.BytesSent)
}

// TestTCPReconnectAfterPeerRestart exercises the forget-and-redial path:
// after the server is torn down and replaced, the client's next call must
// detect the dead connection and dial fresh.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): freeAddr(t)}
	net1 := NewTCP(dir)
	if _, err := net1.Attach(wire.ServerAddr(0, 0), &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	net2 := NewTCP(dir)
	defer net2.Close()
	cli, err := net2.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cli.Call(ctx, wire.ServerAddr(0, 0), &wire.Ping{Nonce: 1}); err != nil {
		t.Fatal(err)
	}

	net1.Close()
	net3 := NewTCP(dir)
	defer net3.Close()
	if _, err := net3.Attach(wire.ServerAddr(0, 0), &echoHandler{}); err != nil {
		t.Fatal(err)
	}

	// The first call(s) after the restart may fail while the client still
	// holds the dead connection; it must recover within a few attempts.
	var lastErr error
	for i := 0; i < 50; i++ {
		cctx, ccancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		_, lastErr = cli.Call(cctx, wire.ServerAddr(0, 0), &wire.Ping{Nonce: 2})
		ccancel()
		if lastErr == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("client never recovered after peer restart: %v", lastErr)
}

var benchSink atomic.Uint64

func BenchmarkTCPCall(b *testing.B) {
	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): freeAddr(b)}
	tnet := NewTCP(dir)
	defer tnet.Close()
	if _, err := tnet.Attach(wire.ServerAddr(0, 0), &echoHandler{}); err != nil {
		b.Fatal(err)
	}
	cli, err := tnet.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cli.Call(ctx, wire.ServerAddr(0, 0), &wire.Ping{Nonce: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		benchSink.Add(resp.(*wire.Pong).Nonce)
	}
}

func BenchmarkTCPOneWayPipelined(b *testing.B) {
	// One-way sends through a single connection: the coalescing writer's
	// best case (many frames per flush).
	dir := map[wire.Addr]string{wire.ServerAddr(0, 0): freeAddr(b)}
	tnet := NewTCP(dir)
	defer tnet.Close()
	h := &echoHandler{}
	if _, err := tnet.Attach(wire.ServerAddr(0, 0), h); err != nil {
		b.Fatal(err)
	}
	cli, err := tnet.Attach(wire.ClientAddr(0, 1), HandlerFunc(func(Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		b.Fatal(err)
	}
	msg := &wire.PutReq{Key: "k", Value: make([]byte, 128)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Send(wire.ServerAddr(0, 0), msg); err != nil {
			b.Fatal(err)
		}
	}
	for h.oneways.Load() < uint64(b.N) {
		time.Sleep(time.Millisecond)
	}
}
