// Admission control for client-facing traffic.
//
// The dispatch spill lane is deliberately unbounded for intra-cluster
// traffic — handlers may park on cluster state, and capping them recreates
// the deadlock the lane exists to prevent — but that design is wrong for
// clients: under client overload it grows goroutines without limit and
// silently queues work the server cannot retire. The AdmitGate closes that
// hole for requests whose source carries the Addr client flag: a token
// semaphore caps concurrently running client handlers, an overload detector
// keyed on the send-queue depth and WAL fsync-delay signals sheds earlier
// when the server is already falling behind, and shed requests are answered
// with a typed wire.Busy carrying a retry-after hint instead of being
// queued or dropped. Cluster-sourced traffic never touches the gate.

package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// ErrOverloaded is surfaced by clients once an operation's Busy-retry
// budget is exhausted: the server kept shedding for the whole backoff
// schedule, so the caller should treat the cluster as overloaded rather
// than retry harder.
var ErrOverloaded = errors.New("transport: server overloaded")

// DefaultRetryAfter is the Busy hint when AdmitConfig.RetryAfter is unset.
const DefaultRetryAfter = 2 * time.Millisecond

// admitProbeEvery rate-limits the overload detector's signal probes: the
// admit hot path pays two atomic loads, and at most one goroutine per
// interval pays the probe functions.
const admitProbeEvery = time.Millisecond

// AdmitConfig parameterizes client admission control on a network. Limit
// is the cap on concurrently admitted client requests per attached server
// node; zero disables the gate entirely (the default, so existing
// deployments and every no-overload benchmark are untouched).
type AdmitConfig struct {
	// Limit caps concurrently running client handlers per server node.
	Limit int
	// ShedQueueFrames trips the overload detector when the transport's
	// send-queue depth reaches it (0 = signal unused).
	ShedQueueFrames int64
	// ShedFsyncP99 trips the overload detector when the WAL's p99 fsync
	// delay reaches it (0 = signal unused).
	ShedFsyncP99 time.Duration
	// QueueDepth probes the current send-queue depth (nil = signal unused).
	QueueDepth func() int64
	// FsyncP99 probes the current p99 fsync delay (nil = signal unused).
	FsyncP99 func() time.Duration
	// RetryAfter is the backoff hint carried in Busy responses
	// (0 = DefaultRetryAfter).
	RetryAfter time.Duration
}

// Enabled reports whether the config creates gates at Attach.
func (c AdmitConfig) Enabled() bool { return c.Limit > 0 }

// AdmitStats counts admission-control outcomes. One struct serves a whole
// network (all gated nodes share it), mirroring how Stats is per-network.
type AdmitStats struct {
	// Admitted counts client requests that took a token and ran.
	Admitted metrics.Counter
	// Shed counts client requests answered with Busy.
	Shed metrics.Counter
	// Depth tracks currently admitted client requests (level + high water).
	Depth metrics.Gauge
	// Overloaded is 1 while the queue/fsync overload detector is tripped.
	Overloaded metrics.Gauge
}

// View is a frozen copy of the admission counters.
type AdmitStatsView struct {
	Admitted   uint64
	Shed       uint64
	Depth      int64
	DepthPeak  int64
	Overloaded bool
}

// View returns a frozen copy of all counters.
func (s *AdmitStats) View() AdmitStatsView {
	return AdmitStatsView{
		Admitted:   s.Admitted.Load(),
		Shed:       s.Shed.Load(),
		Depth:      s.Depth.Load(),
		DepthPeak:  s.Depth.HighWater(),
		Overloaded: s.Overloaded.Load() > 0,
	}
}

// Register exposes the admission series under the given registry.
func (s *AdmitStats) Register(r *metrics.Registry, labels ...metrics.Label) {
	r.Counter("kv_admission_admitted_total", "Client requests admitted past the gate.", &s.Admitted, labels...)
	r.Counter("kv_admission_shed_total", "Client requests shed with a Busy retry-after response.", &s.Shed, labels...)
	r.Gauge("kv_admission_depth", "Client requests currently admitted (running handlers).", &s.Depth, labels...)
	r.Gauge("kv_admission_overloaded", "1 while the queue-depth/fsync-delay overload detector is tripped.", &s.Overloaded, labels...)
}

// AdmitGate is one server node's client admission gate: a token semaphore
// plus a hysteretic overload detector. Admit/Release are safe for
// concurrent use and allocation-free.
type AdmitGate struct {
	cfg    AdmitConfig
	stats  *AdmitStats
	tokens chan struct{}

	// lastProbe (unix nanos) rate-limits detector probes; overloaded holds
	// the detector's current verdict between probes.
	lastProbe  atomic.Int64
	overloaded atomic.Bool
}

// NewAdmitGate builds a gate, or returns nil when cfg leaves admission
// disabled. stats must be non-nil for an enabled config.
func NewAdmitGate(cfg AdmitConfig, stats *AdmitStats) *AdmitGate {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	g := &AdmitGate{cfg: cfg, stats: stats, tokens: make(chan struct{}, cfg.Limit)}
	for i := 0; i < cfg.Limit; i++ {
		g.tokens <- struct{}{}
	}
	return g
}

// Admit decides one client request: true means run it (the caller must
// call Release exactly once when the handler returns), false means shed it
// with Busy. It never blocks — admission is a gate, not a queue; queueing
// behind a saturated server is exactly what shedding replaces.
func (g *AdmitGate) Admit() bool {
	if g.overloadedNow() {
		g.stats.Shed.Add(1)
		return false
	}
	select {
	case <-g.tokens:
		g.stats.Admitted.Add(1)
		g.stats.Depth.Add(1)
		return true
	default:
		g.stats.Shed.Add(1)
		return false
	}
}

// Release returns an admitted request's token.
func (g *AdmitGate) Release() {
	g.stats.Depth.Add(-1)
	g.tokens <- struct{}{}
}

// RetryAfter is the hint carried in this gate's Busy responses.
func (g *AdmitGate) RetryAfter() time.Duration { return g.cfg.RetryAfter }

// overloadedNow evaluates the queue-depth/fsync-delay detector with
// hysteresis: it trips at a threshold and clears only once every used
// signal has fallen below half of its threshold, so admission does not
// flap at the boundary. At most one caller per admitProbeEvery pays the
// probe functions; everyone else reuses the cached verdict.
func (g *AdmitGate) overloadedNow() bool {
	now := time.Now().UnixNano()
	last := g.lastProbe.Load()
	if now-last < int64(admitProbeEvery) || !g.lastProbe.CompareAndSwap(last, now) {
		return g.overloaded.Load()
	}
	trip, clear := false, true
	if g.cfg.ShedQueueFrames > 0 && g.cfg.QueueDepth != nil {
		d := g.cfg.QueueDepth()
		if d >= g.cfg.ShedQueueFrames {
			trip = true
		}
		if d > g.cfg.ShedQueueFrames/2 {
			clear = false
		}
	}
	if g.cfg.ShedFsyncP99 > 0 && g.cfg.FsyncP99 != nil {
		p := g.cfg.FsyncP99()
		if p >= g.cfg.ShedFsyncP99 {
			trip = true
		}
		if p > g.cfg.ShedFsyncP99/2 {
			clear = false
		}
	}
	switch {
	case trip && !g.overloaded.Load():
		g.overloaded.Store(true)
		g.stats.Overloaded.Add(1)
	case clear && g.overloaded.Load():
		g.overloaded.Store(false)
		g.stats.Overloaded.Add(-1)
	}
	return g.overloaded.Load()
}

// busyHintMicros renders a gate's retry-after hint for the wire.
func busyHintMicros(g *AdmitGate) uint32 {
	return uint32(g.RetryAfter() / time.Microsecond)
}

// Client-side overload handling.

// DefaultBusyRetries bounds Busy retries per client operation; exhausting
// it surfaces ErrOverloaded to the caller.
const DefaultBusyRetries = 10

// maxBusyBackoff caps the exponential backoff between Busy retries.
const maxBusyBackoff = 50 * time.Millisecond

// BusyBackoff returns the jittered exponential backoff before retry
// attempt (0-based) of an operation shed with the given hint: the hint
// doubled per attempt, capped, with uniform jitter in [1/2, 1] of that so
// synchronized clients do not re-collide.
func BusyBackoff(attempt int, hint time.Duration) time.Duration {
	if hint <= 0 {
		hint = DefaultRetryAfter
	}
	d := hint
	for i := 0; i < attempt && d < maxBusyBackoff; i++ {
		d *= 2
	}
	if d > maxBusyBackoff {
		d = maxBusyBackoff
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// AwaitRetry sleeps the attempt's jittered backoff, honoring ctx.
func AwaitRetry(ctx context.Context, attempt int, hint time.Duration) error {
	t := time.NewTimer(BusyBackoff(attempt, hint))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CallRetry is Call plus overload handling: a Busy response triggers a
// jittered exponential backoff honoring the server's retry-after hint, up
// to DefaultBusyRetries attempts; exhaustion returns ErrOverloaded.
// onRetry (may be nil) runs before each backoff, so clients can count
// retries.
func CallRetry(ctx context.Context, n Node, dst wire.Addr, m wire.Message, onRetry func()) (wire.Message, error) {
	for attempt := 0; ; attempt++ {
		resp, err := n.Call(ctx, dst, m)
		var busy *wire.Busy
		if !errors.As(err, &busy) {
			return resp, err
		}
		if attempt >= DefaultBusyRetries {
			return nil, fmt.Errorf("%w: %v still shedding after %d retries", ErrOverloaded, dst, attempt)
		}
		if onRetry != nil {
			onRetry()
		}
		if err := AwaitRetry(ctx, attempt, busy.RetryAfter()); err != nil {
			return nil, err
		}
	}
}
