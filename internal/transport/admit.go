// Admission control for client-facing traffic.
//
// The dispatch spill lane is deliberately unbounded for intra-cluster
// traffic — handlers may park on cluster state, and capping them recreates
// the deadlock the lane exists to prevent — but that design is wrong for
// clients: under client overload it grows goroutines without limit and
// silently queues work the server cannot retire. The AdmitGate closes that
// hole for requests whose source carries the Addr client flag: a token
// semaphore caps concurrently running client handlers, an overload detector
// keyed on the send-queue depth and WAL fsync-delay signals sheds earlier
// when the server is already falling behind, and shed requests are answered
// with a typed wire.Busy carrying a retry-after hint instead of being
// queued or dropped. Cluster-sourced traffic never touches the gate.
//
// With the session mux the gate is also the fairness point between
// tenants: tokens freed by finishing handlers go to parked waiters in
// round-robin order over tenants (a deficit round-robin with unit
// quantum), each tenant holding at most a small bounded park queue. One
// hot tenant can saturate its own queue and get shed; a trickle tenant's
// requests wait at worst one round of the rotation, so its goodput and
// tail latency survive a neighbouring stampede.

package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// ErrOverloaded is surfaced by clients once an operation's Busy-retry
// budget is exhausted: the server kept shedding for the whole backoff
// schedule, so the caller should treat the cluster as overloaded rather
// than retry harder.
var ErrOverloaded = errors.New("transport: server overloaded")

// DefaultRetryAfter is the Busy hint when AdmitConfig.RetryAfter is unset.
const DefaultRetryAfter = 2 * time.Millisecond

// DefaultParkPerTenant bounds each tenant's park queue when
// AdmitConfig.ParkPerTenant is unset.
const DefaultParkPerTenant = 32

// admitProbeEvery rate-limits the overload detector's signal probes: the
// admit hot path pays two atomic loads, and at most one goroutine per
// interval pays the probe functions.
const admitProbeEvery = time.Millisecond

// AdmitConfig parameterizes client admission control on a network. Limit
// is the cap on concurrently admitted client requests per attached server
// node; zero disables the gate entirely (the default, so existing
// deployments and every no-overload benchmark are untouched).
type AdmitConfig struct {
	// Limit caps concurrently running client handlers per server node.
	Limit int
	// ParkPerTenant bounds how many requests of one tenant may wait parked
	// for a token before further ones are shed (0 = DefaultParkPerTenant).
	ParkPerTenant int
	// ShedQueueFrames trips the overload detector when the transport's
	// send-queue depth reaches it (0 = signal unused).
	ShedQueueFrames int64
	// ShedFsyncP99 trips the overload detector when the WAL's p99 fsync
	// delay reaches it (0 = signal unused).
	ShedFsyncP99 time.Duration
	// QueueDepth probes the current send-queue depth (nil = signal unused).
	QueueDepth func() int64
	// FsyncP99 probes the current p99 fsync delay (nil = signal unused).
	FsyncP99 func() time.Duration
	// RetryAfter is the backoff hint carried in Busy responses
	// (0 = DefaultRetryAfter).
	RetryAfter time.Duration
}

// Enabled reports whether the config creates gates at Attach.
func (c AdmitConfig) Enabled() bool { return c.Limit > 0 }

// AdmitStats counts admission-control outcomes. One struct serves a whole
// network (all gated nodes share it), mirroring how Stats is per-network.
type AdmitStats struct {
	// Admitted counts client requests that took a token and ran.
	Admitted metrics.Counter
	// Shed counts client requests answered with Busy.
	Shed metrics.Counter
	// Depth tracks currently admitted client requests (level + high water).
	Depth metrics.Gauge
	// Parked tracks client requests waiting in tenant park queues.
	Parked metrics.Gauge
	// Overloaded is 1 while the queue/fsync overload detector is tripped.
	Overloaded metrics.Gauge

	// Per-tenant shed counters, created on a tenant's first shed and
	// registered lazily under kv_admission_tenant_shed_total{tenant=...}
	// once (and if) Register ran. tenantMu serializes creation; lookups on
	// the shed path are one sync.Map load.
	tenantShed sync.Map // uint16 -> *metrics.Counter
	tenantMu   sync.Mutex
	reg        *metrics.Registry
	regLabels  []metrics.Label
}

// View is a frozen copy of the admission counters.
type AdmitStatsView struct {
	Admitted   uint64
	Shed       uint64
	Depth      int64
	DepthPeak  int64
	Parked     int64
	ParkedPeak int64
	Overloaded bool
}

// View returns a frozen copy of all counters.
func (s *AdmitStats) View() AdmitStatsView {
	return AdmitStatsView{
		Admitted:   s.Admitted.Load(),
		Shed:       s.Shed.Load(),
		Depth:      s.Depth.Load(),
		DepthPeak:  s.Depth.HighWater(),
		Parked:     s.Parked.Load(),
		ParkedPeak: s.Parked.HighWater(),
		Overloaded: s.Overloaded.Load() > 0,
	}
}

// TenantShed returns how many requests of tenant t were shed.
func (s *AdmitStats) TenantShed(t uint16) uint64 {
	if c, ok := s.tenantShed.Load(t); ok {
		return c.(*metrics.Counter).Load()
	}
	return 0
}

// shedTenant counts one shed for tenant t, creating (and, when a registry
// is attached, registering) the tenant's counter on first use.
func (s *AdmitStats) shedTenant(t uint16) {
	s.Shed.Add(1)
	if c, ok := s.tenantShed.Load(t); ok {
		c.(*metrics.Counter).Add(1)
		return
	}
	s.tenantMu.Lock()
	c, ok := s.tenantShed.Load(t)
	if !ok {
		cc := new(metrics.Counter)
		if s.reg != nil {
			s.registerTenant(t, cc)
		}
		s.tenantShed.Store(t, cc)
		c = cc
	}
	s.tenantMu.Unlock()
	c.(*metrics.Counter).Add(1)
}

// registerTenant exposes one tenant's shed counter; call with tenantMu held.
func (s *AdmitStats) registerTenant(t uint16, c *metrics.Counter) {
	labels := make([]metrics.Label, 0, len(s.regLabels)+1)
	labels = append(labels, s.regLabels...)
	labels = append(labels, metrics.Label{Name: "tenant", Value: strconv.Itoa(int(t))})
	s.reg.Counter("kv_admission_tenant_shed_total", "Client requests shed, by tenant.", c, labels...)
}

// Register exposes the admission series under the given registry. Tenant
// shed counters that already exist are registered now; tenants appearing
// later register on first shed.
func (s *AdmitStats) Register(r *metrics.Registry, labels ...metrics.Label) {
	r.Counter("kv_admission_admitted_total", "Client requests admitted past the gate.", &s.Admitted, labels...)
	r.Counter("kv_admission_shed_total", "Client requests shed with a Busy retry-after response.", &s.Shed, labels...)
	r.Gauge("kv_admission_depth", "Client requests currently admitted (running handlers).", &s.Depth, labels...)
	r.Gauge("kv_admission_parked", "Client requests waiting in tenant park queues.", &s.Parked, labels...)
	r.Gauge("kv_admission_overloaded", "1 while the queue-depth/fsync-delay overload detector is tripped.", &s.Overloaded, labels...)
	s.tenantMu.Lock()
	s.reg, s.regLabels = r, labels
	s.tenantShed.Range(func(t, c any) bool {
		s.registerTenant(t.(uint16), c.(*metrics.Counter))
		return true
	})
	s.tenantMu.Unlock()
}

// AdmitOutcome is Submit's verdict on one client request.
type AdmitOutcome uint8

const (
	// AdmitGranted: a token was taken; the caller runs the request and
	// calls Release exactly once when its handler returns.
	AdmitGranted AdmitOutcome = iota
	// AdmitQueued: no token was free; the request parked and its run
	// closure fires on a fresh goroutine when a token frees up (run must
	// end in Release). The caller does nothing further.
	AdmitQueued
	// AdmitShed: the request was declined; answer it with Busy.
	AdmitShed
)

// admitWaiter is one parked request: run fires when a token is granted,
// drop when the gate closes first.
type admitWaiter struct {
	run, drop func()
}

// AdmitGate is one server node's client admission gate: a token counter, a
// hysteretic overload detector, and per-tenant park queues granted in
// round-robin order. Submit never blocks its caller — the TCP read loop
// sits behind it — and maintains the invariant that a request parks only
// while no token is free (Release hands freed tokens to parked waiters
// before banking them).
type AdmitGate struct {
	cfg   AdmitConfig
	stats *AdmitStats

	mu     sync.Mutex
	free   int
	parked map[uint16][]admitWaiter
	rr     []uint16 // rotation of tenants with non-empty park queues
	closed bool

	// lastProbe (unix nanos) rate-limits detector probes; overloaded holds
	// the detector's current verdict between probes.
	lastProbe  atomic.Int64
	overloaded atomic.Bool
}

// NewAdmitGate builds a gate, or returns nil when cfg leaves admission
// disabled. stats must be non-nil for an enabled config.
func NewAdmitGate(cfg AdmitConfig, stats *AdmitStats) *AdmitGate {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.ParkPerTenant <= 0 {
		cfg.ParkPerTenant = DefaultParkPerTenant
	}
	return &AdmitGate{
		cfg:    cfg,
		stats:  stats,
		free:   cfg.Limit,
		parked: make(map[uint16][]admitWaiter),
	}
}

// Submit decides one client request from the given tenant. Granted: the
// caller runs it now and Releases after. Queued: the gate runs the run
// closure later, on its own goroutine, when a token frees (run must end in
// Release; drop fires instead if the gate closes first). Shed: answer Busy.
// It never blocks.
func (g *AdmitGate) Submit(tenant uint16, run, drop func()) AdmitOutcome {
	if g.overloadedNow() {
		g.stats.shedTenant(tenant)
		return AdmitShed
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.stats.shedTenant(tenant)
		return AdmitShed
	}
	if g.free > 0 {
		g.free--
		g.mu.Unlock()
		g.stats.Admitted.Add(1)
		g.stats.Depth.Add(1)
		return AdmitGranted
	}
	q := g.parked[tenant]
	if len(q) >= g.cfg.ParkPerTenant {
		g.mu.Unlock()
		g.stats.shedTenant(tenant)
		return AdmitShed
	}
	if len(q) == 0 {
		g.rr = append(g.rr, tenant)
	}
	g.parked[tenant] = append(q, admitWaiter{run: run, drop: drop})
	g.mu.Unlock()
	g.stats.Parked.Add(1)
	return AdmitQueued
}

// Release returns an admitted request's token. If waiters are parked, the
// token passes directly to the next tenant in the rotation (so free > 0
// and parked waiters never coexist) and its run closure fires on a fresh
// goroutine; otherwise the token is banked.
func (g *AdmitGate) Release() {
	g.stats.Depth.Add(-1)
	g.mu.Lock()
	if len(g.rr) == 0 {
		if g.free < g.cfg.Limit {
			g.free++
		}
		g.mu.Unlock()
		return
	}
	t := g.rr[0]
	q := g.parked[t]
	w := q[0]
	q[0] = admitWaiter{}
	if len(q) == 1 {
		delete(g.parked, t)
		g.rr = g.rr[1:]
	} else {
		g.parked[t] = q[1:]
		// Rotate: the tenant goes to the back, so each freed token serves
		// a different tenant before any tenant is served twice.
		g.rr = append(g.rr[1:], t)
	}
	g.mu.Unlock()
	g.stats.Parked.Add(-1)
	g.stats.Admitted.Add(1)
	g.stats.Depth.Add(1)
	go w.run()
}

// Close drains the park queues, firing each waiter's drop closure. Further
// Submits shed. Call before waiting out the node's handler goroutines —
// parked waiters hold shutdown accounting their drop must release.
func (g *AdmitGate) Close() {
	g.mu.Lock()
	g.closed = true
	var drops []func()
	for t, q := range g.parked {
		for _, w := range q {
			drops = append(drops, w.drop)
		}
		delete(g.parked, t)
	}
	g.rr = nil
	g.mu.Unlock()
	for _, d := range drops {
		g.stats.Parked.Add(-1)
		if d != nil {
			d()
		}
	}
}

// RetryAfter is the base hint carried in this gate's Busy responses.
func (g *AdmitGate) RetryAfter() time.Duration { return g.cfg.RetryAfter }

// RetryAfterTenant scales the base hint by the tenant's own queue
// pressure: a tenant with a deep park queue is told to back off harder,
// one that was shed only because the detector tripped gets the base hint.
// Capped at 8× so a full queue cannot push clients to multi-second waits.
func (g *AdmitGate) RetryAfterTenant(tenant uint16) time.Duration {
	g.mu.Lock()
	depth := len(g.parked[tenant])
	g.mu.Unlock()
	scale := 1 + time.Duration(depth*7)/time.Duration(g.cfg.ParkPerTenant)
	return g.cfg.RetryAfter * scale
}

// overloadedNow evaluates the queue-depth/fsync-delay detector with
// hysteresis: it trips at a threshold and clears only once every used
// signal has fallen below half of its threshold, so admission does not
// flap at the boundary. At most one caller per admitProbeEvery pays the
// probe functions; everyone else reuses the cached verdict.
func (g *AdmitGate) overloadedNow() bool {
	now := time.Now().UnixNano()
	last := g.lastProbe.Load()
	if now-last < int64(admitProbeEvery) || !g.lastProbe.CompareAndSwap(last, now) {
		return g.overloaded.Load()
	}
	trip, clear := false, true
	if g.cfg.ShedQueueFrames > 0 && g.cfg.QueueDepth != nil {
		d := g.cfg.QueueDepth()
		if d >= g.cfg.ShedQueueFrames {
			trip = true
		}
		if d > g.cfg.ShedQueueFrames/2 {
			clear = false
		}
	}
	if g.cfg.ShedFsyncP99 > 0 && g.cfg.FsyncP99 != nil {
		p := g.cfg.FsyncP99()
		if p >= g.cfg.ShedFsyncP99 {
			trip = true
		}
		if p > g.cfg.ShedFsyncP99/2 {
			clear = false
		}
	}
	switch {
	case trip && !g.overloaded.Load():
		g.overloaded.Store(true)
		g.stats.Overloaded.Add(1)
	case clear && g.overloaded.Load():
		g.overloaded.Store(false)
		g.stats.Overloaded.Add(-1)
	}
	return g.overloaded.Load()
}

// busyHintMicros renders a gate's per-tenant retry-after hint for the wire.
func busyHintMicros(g *AdmitGate, tenant uint16) uint32 {
	return uint32(g.RetryAfterTenant(tenant) / time.Microsecond)
}

// Client-side overload handling.

// DefaultBusyRetries bounds Busy retries per client operation; exhausting
// it surfaces ErrOverloaded to the caller.
const DefaultBusyRetries = 10

// maxBusyBackoff caps the exponential backoff between Busy retries.
const maxBusyBackoff = 50 * time.Millisecond

// BusyBackoff returns the jittered exponential backoff before retry
// attempt (0-based) of an operation shed with the given hint: the hint
// doubled per attempt, capped, with uniform jitter in [1/2, 1] of that so
// synchronized clients do not re-collide.
func BusyBackoff(attempt int, hint time.Duration) time.Duration {
	if hint <= 0 {
		hint = DefaultRetryAfter
	}
	d := hint
	for i := 0; i < attempt && d < maxBusyBackoff; i++ {
		d *= 2
	}
	if d > maxBusyBackoff {
		d = maxBusyBackoff
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// AwaitRetry sleeps the attempt's jittered backoff, honoring ctx.
func AwaitRetry(ctx context.Context, attempt int, hint time.Duration) error {
	t := time.NewTimer(BusyBackoff(attempt, hint))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CallRetry is Call plus overload handling: a Busy response triggers a
// jittered exponential backoff honoring the server's retry-after hint, up
// to DefaultBusyRetries attempts; exhaustion returns ErrOverloaded. The
// backoff state is per invocation, so sessions sharing a socket back off
// independently. onRetry (may be nil) runs before each backoff, so clients
// can count retries.
func CallRetry(ctx context.Context, n Node, dst wire.Addr, m wire.Message, onRetry func()) (wire.Message, error) {
	for attempt := 0; ; attempt++ {
		resp, err := n.Call(ctx, dst, m)
		var busy *wire.Busy
		if !errors.As(err, &busy) {
			return resp, err
		}
		if attempt >= DefaultBusyRetries {
			return nil, fmt.Errorf("%w: %v still shedding after %d retries", ErrOverloaded, dst, attempt)
		}
		if onRetry != nil {
			onRetry()
		}
		if err := AwaitRetry(ctx, attempt, busy.RetryAfter()); err != nil {
			return nil, err
		}
	}
}
