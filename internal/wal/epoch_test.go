package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestEpochPersistAndRecover: SetEpoch survives restart, survives snapshot
// truncation, and Epoch() reflects the newest record.
func TestEpochPersistAndRecover(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	if got := l.Epoch(); got != 0 {
		t.Fatalf("fresh log epoch = %d, want 0", got)
	}
	if err := l.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := mustOpen(t, Options{Dir: dir})
	replayAll(t, l2)
	if got := l2.Epoch(); got != 1 {
		t.Fatalf("recovered epoch = %d, want 1", got)
	}
	// Bump again (the recovery contract: epoch+1), then snapshot: the
	// epoch's segment is truncated, so the snapshot must carry it.
	if err := l2.SetEpoch(2); err != nil {
		t.Fatal(err)
	}
	l2.SetSnapshotSource(func(emit func(Record) error) error { return emit(rec(0)) })
	if err := l2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	l3 := mustOpen(t, Options{Dir: dir})
	replayAll(t, l3)
	if got := l3.Epoch(); got != 2 {
		t.Fatalf("epoch after snapshot truncation = %d, want 2", got)
	}
}

// TestReaderRecordRoundtrip: RecReaders records replay with their version
// identity and entries intact, and the ReaderRecords counter tracks them
// separately from installs.
func TestReaderRecordRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	rr := Record{
		Kind: RecReaders, Key: "marked", TS: 42, SrcDC: 1,
		Readers: []wire.ReaderEntry{{RotID: 7, T: 3}, {RotID: 1 << 40, T: 88}},
	}
	if err := l.Append(rr, rec(1)); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().View(); got.ReaderRecords != 1 || got.Appends != 2 {
		t.Fatalf("stats = %d reader records / %d appends, want 1/2", got.ReaderRecords, got.Appends)
	}
	l.Close()

	l2 := mustOpen(t, Options{Dir: dir})
	recs := replayAll(t, l2)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	got := recs[0]
	if got.Kind != RecReaders || got.Key != "marked" || got.TS != 42 || got.SrcDC != 1 {
		t.Fatalf("reader record corrupted: %+v", got)
	}
	if len(got.Readers) != 2 || got.Readers[0] != rr.Readers[0] || got.Readers[1] != rr.Readers[1] {
		t.Fatalf("reader entries corrupted: %+v", got.Readers)
	}
}

// TestMixedFormatReplay is the format-bump compatibility test: a log
// written by this build, relabelled with the previous format magic
// (CKVWAL02 — record encodings for pre-existing kinds are byte-identical),
// must replay cleanly, and the segments the reopened log writes must carry
// the current magic.
func TestMixedFormatReplay(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 512}) // several segments
	const n = 24
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendCursor(Cursor{DstDC: 1, Seq: 9, HighTS: 24}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Downgrade every segment's magic to the pre-bump format.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	downgraded := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(prevSegMagic[:], 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		downgraded++
	}
	if downgraded < 2 {
		t.Fatalf("only %d segments downgraded; test needs several", downgraded)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	recs := replayAll(t, l2)
	if len(recs) != n {
		t.Fatalf("replayed %d records from pre-bump segments, want %d", len(recs), n)
	}
	for i, r := range recs {
		if !recEqual(r, rec(i)) {
			t.Fatalf("record %d corrupted across the format bump: %+v", i, r)
		}
	}
	if cur := l2.Cursors(); len(cur) != 1 || cur[0].Seq != 9 {
		t.Fatalf("cursor lost across the format bump: %+v", cur)
	}
	// New writes land in a current-format segment.
	if err := l2.Append(rec(n)); err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	f, err := os.Open(l2.activePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if hdr != segMagic {
		t.Fatalf("reopened log writes magic %q, want current %q", hdr, segMagic)
	}

	// An unknown (format 01) magic still fails loudly rather than misparse.
	bad := filepath.Join(dir, segName(l2.activeSeq))
	l2.Close()
	f2, err := os.OpenFile(bad, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.WriteAt([]byte("CKVWAL01"), 0); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	l3 := mustOpen(t, Options{Dir: dir})
	if err := l3.Replay(func(Record) error { return nil }); err == nil {
		t.Fatal("format-01 magic replayed without error")
	}
}

// TestEpochSurvivesSecondCrash pins SetEpoch's fsync-before-serve
// contract under background sync: an epoch bump followed immediately by a
// power cut must still be there, or two incarnations would share an epoch
// and the ROT fence would miss the restart between them.
func TestEpochSurvivesSecondCrash(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncBackground, FsyncEvery: time.Hour})
	if err := l.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil { // power cut right after the bump
		t.Fatal(err)
	}
	l2 := mustOpen(t, Options{Dir: dir, Sync: SyncBackground})
	replayAll(t, l2)
	if got := l2.Epoch(); got != 5 {
		t.Fatalf("epoch after crash-on-bump = %d, want 5: SetEpoch acked before its fsync", got)
	}
}
