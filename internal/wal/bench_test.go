package wal

import (
	"testing"
)

// BenchmarkAppendSerial is the worst case for group commit: one writer, so
// every append pays a full fsync.
func BenchmarkAppendSerial(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	r := rec(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	v := l.Stats().View()
	b.ReportMetric(v.AppendsPerFsync(), "appends/fsync")
}

// BenchmarkAppendGroupCommit measures the amortization under concurrent
// writers: many blocked appenders share each fsync, so appends/fsync rises
// well above 1 (the acceptance bar for the durability subsystem) and
// per-append cost falls accordingly.
func BenchmarkAppendGroupCommit(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	r := rec(1)
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.Append(r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	v := l.Stats().View()
	b.ReportMetric(v.AppendsPerFsync(), "appends/fsync")
	b.ReportMetric(float64(v.BatchPeak), "peak-batch")
}
