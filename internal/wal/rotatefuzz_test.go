package wal

import (
	"bytes"
	"fmt"
	"testing"
)

// fuzzRec builds the i-th fuzz record: a unique key (so replay folding is
// trivially last-write-wins with one version per key) and a value bulky
// enough that tiny segments rotate every handful of appends.
func fuzzRec(i int) Record {
	r := rec(i)
	r.Key = fmt.Sprintf("fz-%05d", i)
	r.Value = bytes.Repeat([]byte{byte(i)}, 64+i%128)
	return r
}

// FuzzWALRotationCrash drives a WAL with 1 KiB segments — so rotation
// happens every few appends — through a fuzzer-chosen interleaving of
// appends, explicit snapshots, cursor updates, and epoch bumps, then
// crashes it (truncate to the fsynced prefix, the in-process kill -9) and
// checks the full recovery contract:
//
//   - replay succeeds — rotation boundaries, snapshot cuts, and the torn
//     tail never break recovery;
//   - every acknowledged append is recovered byte-for-byte (SyncAlways:
//     acked ⇒ fsynced), whether it comes back from a snapshot or a segment;
//   - nothing is fabricated: every replayed record matches an acked one;
//   - the restart epoch and replication cursor survive;
//   - and the recovered log is reusable: post-recovery appends survive a
//     clean close/reopen together with the pre-crash state.
//
// CI runs the seed corpus on every `go test` plus a short -fuzz burst.
func FuzzWALRotationCrash(f *testing.F) {
	f.Add([]byte{})                                                                       // open, crash empty
	f.Add(bytes.Repeat([]byte{0}, 64))                                                    // appends only: pure rotation
	f.Add(bytes.Repeat([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 12))                               // everything interleaved
	f.Add(append(append(bytes.Repeat([]byte{0}, 30), 5), bytes.Repeat([]byte{2}, 30)...)) // snapshot mid-stream
	f.Add(bytes.Repeat([]byte{6, 7, 5}, 20))                                              // cursor/epoch/snapshot churn

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		dir := t.TempDir()
		opts := Options{Dir: dir, SegmentBytes: 1 << 10}
		l, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}

		acked := make(map[string]Record) // key -> the durably acknowledged record
		l.SetSnapshotSource(func(emit func(Record) error) error {
			for _, r := range acked {
				if err := emit(r); err != nil {
					return err
				}
			}
			return nil
		})

		seq, epoch, cursorSeq := 0, uint64(0), uint64(0)
		for _, b := range script {
			switch b % 8 {
			case 5: // explicit snapshot: rotate, compact, truncate old segments
				if err := l.Snapshot(); err != nil {
					t.Fatalf("snapshot: %v", err)
				}
			case 6:
				cursorSeq++
				if err := l.AppendCursor(Cursor{DstDC: 1, Seq: cursorSeq, HighTS: cursorSeq}); err != nil {
					t.Fatalf("cursor: %v", err)
				}
			case 7:
				epoch++
				if err := l.SetEpoch(epoch); err != nil {
					t.Fatalf("epoch: %v", err)
				}
			default: // the common op: an acknowledged durable append
				r := fuzzRec(seq)
				seq++
				if err := l.Append(r); err != nil {
					t.Fatalf("append: %v", err)
				}
				acked[r.Key] = r
			}
		}
		if err := l.Crash(); err != nil {
			t.Fatal(err)
		}

		check := func(l *Log, phase string) {
			recovered := make(map[string]bool)
			if err := l.Replay(func(r Record) error {
				orig, ok := acked[r.Key]
				if !ok {
					return fmt.Errorf("replayed record %q was never acked", r.Key)
				}
				if !recEqual(orig, r) {
					return fmt.Errorf("record %q corrupted: %+v != %+v", r.Key, r, orig)
				}
				recovered[r.Key] = true
				return nil
			}); err != nil {
				t.Fatalf("%s replay: %v", phase, err)
			}
			for k := range acked {
				if !recovered[k] {
					t.Fatalf("%s: acked record %q lost", phase, k)
				}
			}
			if got := l.Epoch(); got != epoch {
				t.Fatalf("%s: epoch %d, want %d", phase, got, epoch)
			}
			if cursorSeq > 0 {
				cs := l.Cursors()
				if len(cs) != 1 || cs[0].Seq != cursorSeq {
					t.Fatalf("%s: cursors %+v, want one at seq %d", phase, cs, cursorSeq)
				}
			}
		}

		l2, err := Open(opts)
		if err != nil {
			t.Fatalf("reopen after crash: %v", err)
		}
		check(l2, "post-crash")

		// The recovered log must be fully writable again, and a clean
		// shutdown must preserve old and new state alike.
		post := fuzzRec(seq)
		if err := l2.Append(post); err != nil {
			t.Fatalf("post-recovery append: %v", err)
		}
		acked[post.Key] = post
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, err := Open(opts)
		if err != nil {
			t.Fatalf("reopen after clean close: %v", err)
		}
		defer l3.Close()
		check(l3, "post-close")
	})
}
