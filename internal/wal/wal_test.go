package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
	"repro/internal/wire"
)

func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func replayAll(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func rec(i int) Record {
	return Record{
		Key:   fmt.Sprintf("key-%04d", i),
		Value: []byte(fmt.Sprintf("value-%04d", i)),
		TS:    uint64(i + 1),
		SrcDC: uint8(i % 3),
		DV:    vclock.Vec{uint64(i + 1), uint64(i)},
		Deps:  []wire.LoDep{{Key: "dep-a", TS: uint64(i)}, {Key: "dep-b", TS: 7}},
	}
}

func recEqual(a, b Record) bool {
	if a.Key != b.Key || a.TS != b.TS || a.SrcDC != b.SrcDC ||
		!bytes.Equal(a.Value, b.Value) || len(a.DV) != len(b.DV) || len(a.Deps) != len(b.Deps) {
		return false
	}
	for i := range a.DV {
		if a.DV[i] != b.DV[i] {
			return false
		}
	}
	for i := range a.Deps {
		if a.Deps[i] != b.Deps[i] {
			return false
		}
	}
	return true
}

// TestAppendReplayRoundTrip checks that every field of every record — DV
// vectors, COPS dependency lists, values — survives close and reopen.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	const n = 100
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Also exercise the multi-record form (a replication batch).
	batch := []Record{rec(n), rec(n + 1), rec(n + 2)}
	if err := l.Append(batch...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	got := replayAll(t, l2)
	if len(got) != n+3 {
		t.Fatalf("replayed %d records, want %d", len(got), n+3)
	}
	for i, g := range got {
		if !recEqual(g, rec(i)) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, g, rec(i))
		}
	}
	if v := l2.Stats().View(); v.RecoveredRecords != n+3 || v.RecoveryNanos == 0 {
		t.Fatalf("recovery stats: %+v", v)
	}
}

// TestEmptyDirReplay checks a fresh log replays nothing.
func TestEmptyDirReplay(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
}

// newestSegment returns the path of the highest-sequence segment file.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	sort.Strings(segs)
	return filepath.Join(dir, segs[len(segs)-1])
}

// TestTornFinalRecordTolerated simulates a crash mid-append: a half-written
// record at the tail of the last segment must not block recovery of the
// records before it, for each of the three ways a tear can look (short
// header, short body, CRC mismatch).
func TestTornFinalRecordTolerated(t *testing.T) {
	tears := map[string][]byte{
		// Claims a 512-byte body but delivers 10: torn body.
		"short-body": append([]byte{0, 2, 0, 0, 0xde, 0xad, 0xbe, 0xef}, make([]byte, 10)...),
		// Fewer than 8 bytes: torn header.
		"short-header": {0x42, 0x42, 0x42},
		// Full frame, wrong CRC: bits lost in the page cache.
		"bad-crc": {4, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4},
	}
	for name, junk := range tears {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, Options{Dir: dir})
			const n = 25
			for i := 0; i < n; i++ {
				if err := l.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()

			seg := newestSegment(t, dir)
			f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(junk); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l2 := mustOpen(t, Options{Dir: dir})
			got := replayAll(t, l2)
			if len(got) != n {
				t.Fatalf("replayed %d records after torn tail, want %d", len(got), n)
			}
			if v := l2.Stats().View(); v.TornTails != 1 {
				t.Fatalf("TornTails = %d, want 1", v.TornTails)
			}
			// The log must still accept appends after a torn-tail recovery.
			if err := l2.Append(rec(n)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTornHeaderFinalSegmentDiscarded simulates a crash mid-rotation: the
// new active segment's header was being written when the machine died, so
// the newest file on disk has a short or garbled header. openSegment fsyncs
// the header before the first append ever lands, so such a segment provably
// holds no durable record — recovery must delete it and carry on, for each
// of the ways the tear can look.
func TestTornHeaderFinalSegmentDiscarded(t *testing.T) {
	badMagic := make([]byte, fileHdrLen)
	copy(badMagic, "NOTAWAL0")
	tears := map[string][]byte{
		"short-header": {0x43, 0x4b, 0x56}, // first bytes of the magic, then the crash
		"empty-file":   {},
		"bad-magic":    badMagic,
	}
	for name, junk := range tears {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, Options{Dir: dir})
			const n = 25
			for i := 0; i < n; i++ {
				if err := l.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()

			// Manufacture the mid-rotate debris: a next-sequence segment
			// whose header never finished.
			prev := newestSegment(t, dir)
			var seq uint64
			if _, err := fmt.Sscanf(filepath.Base(prev), "seg-%d.wal", &seq); err != nil {
				t.Fatal(err)
			}
			torn := filepath.Join(dir, segName(seq+1))
			if err := os.WriteFile(torn, junk, 0o644); err != nil {
				t.Fatal(err)
			}

			l2 := mustOpen(t, Options{Dir: dir})
			got := replayAll(t, l2)
			if len(got) != n {
				t.Fatalf("replayed %d records after torn-header segment, want %d", len(got), n)
			}
			if v := l2.Stats().View(); v.TornSegments != 1 {
				t.Fatalf("TornSegments = %d, want 1", v.TornSegments)
			}
			// The debris was deleted; the same sequence number is then
			// reused for the fresh active segment, so the path exists again
			// but now with a fully synced header.
			if err := checkHeader(torn, [][8]byte{segMagic}, seq+1); err != nil {
				t.Fatalf("active segment after torn-header recovery: %v", err)
			}
			// The log must keep working after discarding the debris.
			if err := l2.Append(rec(n)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTornHeaderMidStreamRejected: a bad header on a NON-final segment is
// not rotation debris — records were durably appended after it, so the
// segment was once valid and its loss is real corruption. Recovery must
// fail loudly, not skip it.
func TestTornHeaderMidStreamRejected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	const n = 10
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Garble the (only) sealed segment's magic, then add a structurally
	// valid empty segment after it so the damaged one is mid-stream.
	seg := newestSegment(t, dir)
	var seq uint64
	if _, err := fmt.Sscanf(filepath.Base(seg), "seg-%d.wal", &seq); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	copy(data[:8], "NOTAWAL0")
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	next := make([]byte, fileHdrLen)
	copy(next[:8], segMagic[:])
	for i, b := range u64le(seq + 1) {
		next[8+i] = b
	}
	if err := os.WriteFile(filepath.Join(dir, segName(seq+1)), next, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	if err := l2.Replay(func(Record) error { return nil }); err == nil {
		t.Fatal("mid-stream torn header silently skipped: durable records were lost without a report")
	}
}

// u64le is a test helper: seq encoded the way segment headers store it.
func u64le(v uint64) [8]byte {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// TestCorruptMidSegmentRejected: damage before the final segment's tail is
// unrecoverable data loss and must be reported, not skipped.
func TestCorruptMidSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so the corruption lands mid-stream.
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 0; i < 50; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Corrupt a record body in the FIRST segment.
	entries, _ := os.ReadDir(dir)
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	if len(segs) < 3 {
		t.Fatalf("rotation produced only %d segments", len(segs))
	}
	first := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < fileHdrLen+recHdrLen+4 {
		t.Fatalf("first segment too small to corrupt (%d bytes)", len(data))
	}
	data[fileHdrLen+recHdrLen+2] ^= 0xff // flip a byte inside the first record body
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	err = l2.Replay(func(Record) error { return nil })
	if err == nil {
		t.Fatal("mid-segment corruption silently skipped")
	}
}

// TestSegmentRotation checks that a small SegmentBytes produces multiple
// segments and that replay stitches them back in order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 512})
	const n = 64
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if v := l.Stats().View(); v.Segments < 3 {
		t.Fatalf("expected >= 3 segments, got %d", v.Segments)
	}
	l.Close()
	l2 := mustOpen(t, Options{Dir: dir})
	got := replayAll(t, l2)
	if len(got) != n {
		t.Fatalf("replayed %d, want %d", len(got), n)
	}
	for i := range got {
		if got[i].TS != uint64(i+1) {
			t.Fatalf("replay out of order at %d: ts %d", i, got[i].TS)
		}
	}
}

// TestSnapshotTruncatesAndRecovers: a snapshot must cover the sealed
// segments (which are then deleted) while later appends replay from the
// remaining tail.
func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 512})

	// The "store": latest version per key, as a protocol server would hold.
	var mu sync.Mutex
	store := map[string]Record{}
	install := func(r Record) {
		mu.Lock()
		if cur, ok := store[r.Key]; !ok || r.TS > cur.TS {
			store[r.Key] = r
		}
		mu.Unlock()
	}
	l.SetSnapshotSource(func(emit func(Record) error) error {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range store {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	})

	append1 := 40
	for i := 0; i < append1; i++ {
		r := rec(i)
		install(r)
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if v := l.Stats().View(); v.Snapshots != 1 || v.SnapshotRecords != uint64(append1) || v.Truncated == 0 {
		t.Fatalf("snapshot stats: %+v", v)
	}
	// Overwrite some keys and add new ones after the snapshot.
	for i := 35; i < 50; i++ {
		r := rec(i)
		r.TS = uint64(100 + i) // newer than any pre-snapshot version
		install(r)
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2 := mustOpen(t, Options{Dir: dir})
	latest := map[string]Record{}
	if err := l2.Replay(func(r Record) error {
		if cur, ok := latest[r.Key]; !ok || r.TS > cur.TS {
			latest[r.Key] = r
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(latest) != 50 {
		t.Fatalf("recovered %d keys, want 50", len(latest))
	}
	mu.Lock()
	defer mu.Unlock()
	for k, want := range store {
		if got, ok := latest[k]; !ok || !recEqual(got, want) {
			t.Fatalf("key %s: got %+v want %+v", k, latest[k], want)
		}
	}
}

// TestSnapshotWithoutSourceFails documents that Snapshot needs a source.
func TestSnapshotWithoutSourceFails(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if err := l.Snapshot(); err == nil {
		t.Fatal("Snapshot without a source succeeded")
	}
}

// TestPeriodicSnapshots checks the snapshot loop fires on its own.
func TestPeriodicSnapshots(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), SnapshotEvery: 10 * time.Millisecond})
	l.SetSnapshotSource(func(emit func(Record) error) error { return emit(rec(0)) })
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().View().Snapshots < 2 {
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshots never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGroupCommitCoalesces drives concurrent appenders and checks that the
// committer retires many records per fsync — the amortization that makes
// durable writes affordable (appends/fsync > 1 is also the acceptance bar
// for the bench plumbing).
func TestGroupCommitCoalesces(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	const (
		writers = 32
		perW    = 16
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := l.Append(rec(w*perW + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	v := l.Stats().View()
	if v.Appends != writers*perW {
		t.Fatalf("Appends = %d, want %d", v.Appends, writers*perW)
	}
	if v.Fsyncs >= v.Appends {
		t.Fatalf("no group-commit amortization: %d fsyncs for %d appends", v.Fsyncs, v.Appends)
	}
	if v.BatchPeak < 2 {
		t.Fatalf("BatchPeak = %d, want >= 2", v.BatchPeak)
	}
	t.Logf("group commit: %d appends, %d fsyncs (%.1f appends/fsync, peak batch %d)",
		v.Appends, v.Fsyncs, v.AppendsPerFsync(), v.BatchPeak)
}

// TestWriteFailurePoisonsLog: after any segment write/rotate failure, a
// partial record may sit mid-file where recovery cannot see past it, so
// the log must refuse every later append (sticky error) instead of
// acknowledging records that replay would silently drop — even if the
// underlying condition clears.
func TestWriteFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1 forces a rotation before every commit after the first
	// header write; pre-creating the next segment makes that rotation fail
	// deterministically (openSegment uses O_EXCL).
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 1})
	blocker := filepath.Join(dir, segName(2))
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(0)); err == nil {
		t.Fatal("append succeeded through a failed rotation")
	}
	if err := l.Append(rec(1)); err == nil {
		t.Fatal("append succeeded on a poisoned log")
	}
	// Clearing the condition must NOT revive the log: the damage already
	// on disk is permanent until restart-time recovery.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(2)); err == nil {
		t.Fatal("poisoned log revived after the failure cleared")
	}
}

// TestAppendAfterCloseFails checks shutdown fails cleanly.
func TestAppendAfterCloseFails(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if err := l.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(rec(1)); err == nil {
		t.Fatal("append after Close succeeded")
	}
}
