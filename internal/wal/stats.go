package wal

import "repro/internal/metrics"

// Stats counts durability events, built on the same lock-free counters the
// transport uses so benchmarks can report deltas over a measurement window.
type Stats struct {
	// Appends counts records made durable; Fsyncs counts the syncs that
	// retired them. Appends/Fsyncs is the group-commit amortization factor.
	Appends metrics.Counter
	Fsyncs  metrics.Counter
	// FsyncDelay is the latency distribution of the fsync calls themselves
	// (device sync time, not the group-commit queueing ahead of it).
	FsyncDelay metrics.StaticHist
	// AppendBytes counts bytes written to segments (headers included).
	AppendBytes metrics.Counter
	// Batch pulses by each group commit's record count; its high-water mark
	// is the largest batch a single fsync ever retired.
	Batch metrics.Gauge

	// Segments counts segment files created; Snapshots counts snapshots
	// taken, SnapshotRecords the records they serialized, SnapshotErrors
	// failed periodic attempts, and Truncated the files snapshots deleted.
	Segments        metrics.Counter
	Snapshots       metrics.Counter
	SnapshotRecords metrics.Counter
	SnapshotErrors  metrics.Counter
	Truncated       metrics.Counter

	// RecoveredRecords counts install records replayed at Open-time
	// recovery, RecoveryNanos the time Replay spent, TornTails the torn
	// final records recovery tolerated, and TornSegments the torn-header
	// final segments (a crash mid-rotation, before the new segment's header
	// fsync) recovery discarded.
	RecoveredRecords metrics.Counter
	RecoveryNanos    metrics.Counter
	TornTails        metrics.Counter
	TornSegments     metrics.Counter

	// CursorAppends counts replication-cursor updates persisted;
	// CursorsRecovered counts cursor records folded back in at recovery.
	CursorAppends    metrics.Counter
	CursorsRecovered metrics.Counter

	// ReaderRecords counts CC-LO old-reader records persisted (a subset of
	// Appends): install-path metadata, so exactly-once assertions can
	// subtract them from the append count.
	ReaderRecords metrics.Counter
}

// StatsView is a frozen copy of every WAL counter.
type StatsView struct {
	Appends          uint64
	Fsyncs           uint64
	AppendBytes      uint64
	BatchPeak        int64
	Segments         uint64
	Snapshots        uint64
	SnapshotRecords  uint64
	SnapshotErrors   uint64
	Truncated        uint64
	RecoveredRecords uint64
	RecoveryNanos    uint64
	TornTails        uint64
	TornSegments     uint64
	CursorAppends    uint64
	CursorsRecovered uint64
	ReaderRecords    uint64
}

// View returns a frozen copy of all counters.
func (s *Stats) View() StatsView {
	return StatsView{
		Appends:          s.Appends.Load(),
		Fsyncs:           s.Fsyncs.Load(),
		AppendBytes:      s.AppendBytes.Load(),
		BatchPeak:        s.Batch.HighWater(),
		Segments:         s.Segments.Load(),
		Snapshots:        s.Snapshots.Load(),
		SnapshotRecords:  s.SnapshotRecords.Load(),
		SnapshotErrors:   s.SnapshotErrors.Load(),
		Truncated:        s.Truncated.Load(),
		RecoveredRecords: s.RecoveredRecords.Load(),
		RecoveryNanos:    s.RecoveryNanos.Load(),
		TornTails:        s.TornTails.Load(),
		TornSegments:     s.TornSegments.Load(),
		CursorAppends:    s.CursorAppends.Load(),
		CursorsRecovered: s.CursorsRecovered.Load(),
		ReaderRecords:    s.ReaderRecords.Load(),
	}
}

// AppendsPerFsync is the group-commit amortization factor: how many records
// the average fsync retired.
func (v StatsView) AppendsPerFsync() float64 {
	if v.Fsyncs == 0 {
		return 0
	}
	return float64(v.Appends) / float64(v.Fsyncs)
}

// Merge accumulates o into v (cluster-wide aggregation over per-partition
// logs): counters sum, the batch peak takes the max.
func (v *StatsView) Merge(o StatsView) {
	v.Appends += o.Appends
	v.Fsyncs += o.Fsyncs
	v.AppendBytes += o.AppendBytes
	v.BatchPeak = max(v.BatchPeak, o.BatchPeak)
	v.Segments += o.Segments
	v.Snapshots += o.Snapshots
	v.SnapshotRecords += o.SnapshotRecords
	v.SnapshotErrors += o.SnapshotErrors
	v.Truncated += o.Truncated
	v.RecoveredRecords += o.RecoveredRecords
	v.RecoveryNanos += o.RecoveryNanos
	v.TornTails += o.TornTails
	v.TornSegments += o.TornSegments
	v.CursorAppends += o.CursorAppends
	v.CursorsRecovered += o.CursorsRecovered
	v.ReaderRecords += o.ReaderRecords
}

// Register exposes every WAL counter under the given registry. Callers pass
// partition/dc labels so one registry can hold every log in a process; the
// append/commit hot paths are untouched — the registry reads the same
// atomics at scrape time.
func (s *Stats) Register(r *metrics.Registry, labels ...metrics.Label) {
	r.Counter("kv_wal_appends_total", "Records made durable.", &s.Appends, labels...)
	r.Counter("kv_wal_fsyncs_total", "Fsyncs that retired appends (appends/fsyncs = group-commit factor).", &s.Fsyncs, labels...)
	r.Histogram("kv_wal_fsync_delay_seconds", "Latency of the fsync calls themselves.", &s.FsyncDelay, labels...)
	r.Counter("kv_wal_append_bytes_total", "Bytes written to segments, headers included.", &s.AppendBytes, labels...)
	r.Gauge("kv_wal_batch_records", "Records retired by the most recent group commit.", &s.Batch, labels...)
	r.Counter("kv_wal_segments_total", "Segment files created.", &s.Segments, labels...)
	r.Counter("kv_wal_snapshots_total", "Snapshots taken.", &s.Snapshots, labels...)
	r.Counter("kv_wal_snapshot_records_total", "Records serialized into snapshots.", &s.SnapshotRecords, labels...)
	r.Counter("kv_wal_snapshot_errors_total", "Failed periodic snapshot attempts.", &s.SnapshotErrors, labels...)
	r.Counter("kv_wal_truncated_segments_total", "Segment files deleted by snapshot truncation.", &s.Truncated, labels...)
	r.Counter("kv_wal_recovered_records_total", "Install records replayed at open-time recovery.", &s.RecoveredRecords, labels...)
	r.Counter("kv_wal_recovery_nanos_total", "Nanoseconds spent replaying at recovery.", &s.RecoveryNanos, labels...)
	r.Counter("kv_wal_torn_tails_total", "Torn final records recovery tolerated.", &s.TornTails, labels...)
	r.Counter("kv_wal_torn_segments_total", "Torn-header final segments recovery discarded.", &s.TornSegments, labels...)
	r.Counter("kv_wal_cursor_appends_total", "Replication-cursor updates persisted.", &s.CursorAppends, labels...)
	r.Counter("kv_wal_cursors_recovered_total", "Cursor records folded back in at recovery.", &s.CursorsRecovered, labels...)
	r.Counter("kv_wal_reader_records_total", "CC-LO old-reader records persisted.", &s.ReaderRecords, labels...)
}
