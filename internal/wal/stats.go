package wal

import "repro/internal/metrics"

// Stats counts durability events, built on the same lock-free counters the
// transport uses so benchmarks can report deltas over a measurement window.
type Stats struct {
	// Appends counts records made durable; Fsyncs counts the syncs that
	// retired them. Appends/Fsyncs is the group-commit amortization factor.
	Appends metrics.Counter
	Fsyncs  metrics.Counter
	// AppendBytes counts bytes written to segments (headers included).
	AppendBytes metrics.Counter
	// Batch pulses by each group commit's record count; its high-water mark
	// is the largest batch a single fsync ever retired.
	Batch metrics.Gauge

	// Segments counts segment files created; Snapshots counts snapshots
	// taken, SnapshotRecords the records they serialized, SnapshotErrors
	// failed periodic attempts, and Truncated the files snapshots deleted.
	Segments        metrics.Counter
	Snapshots       metrics.Counter
	SnapshotRecords metrics.Counter
	SnapshotErrors  metrics.Counter
	Truncated       metrics.Counter

	// RecoveredRecords counts install records replayed at Open-time
	// recovery, RecoveryNanos the time Replay spent, TornTails the torn
	// final records recovery tolerated, and TornSegments the torn-header
	// final segments (a crash mid-rotation, before the new segment's header
	// fsync) recovery discarded.
	RecoveredRecords metrics.Counter
	RecoveryNanos    metrics.Counter
	TornTails        metrics.Counter
	TornSegments     metrics.Counter

	// CursorAppends counts replication-cursor updates persisted;
	// CursorsRecovered counts cursor records folded back in at recovery.
	CursorAppends    metrics.Counter
	CursorsRecovered metrics.Counter

	// ReaderRecords counts CC-LO old-reader records persisted (a subset of
	// Appends): install-path metadata, so exactly-once assertions can
	// subtract them from the append count.
	ReaderRecords metrics.Counter
}

// StatsView is a frozen copy of every WAL counter.
type StatsView struct {
	Appends          uint64
	Fsyncs           uint64
	AppendBytes      uint64
	BatchPeak        int64
	Segments         uint64
	Snapshots        uint64
	SnapshotRecords  uint64
	SnapshotErrors   uint64
	Truncated        uint64
	RecoveredRecords uint64
	RecoveryNanos    uint64
	TornTails        uint64
	TornSegments     uint64
	CursorAppends    uint64
	CursorsRecovered uint64
	ReaderRecords    uint64
}

// View returns a frozen copy of all counters.
func (s *Stats) View() StatsView {
	return StatsView{
		Appends:          s.Appends.Load(),
		Fsyncs:           s.Fsyncs.Load(),
		AppendBytes:      s.AppendBytes.Load(),
		BatchPeak:        s.Batch.HighWater(),
		Segments:         s.Segments.Load(),
		Snapshots:        s.Snapshots.Load(),
		SnapshotRecords:  s.SnapshotRecords.Load(),
		SnapshotErrors:   s.SnapshotErrors.Load(),
		Truncated:        s.Truncated.Load(),
		RecoveredRecords: s.RecoveredRecords.Load(),
		RecoveryNanos:    s.RecoveryNanos.Load(),
		TornTails:        s.TornTails.Load(),
		TornSegments:     s.TornSegments.Load(),
		CursorAppends:    s.CursorAppends.Load(),
		CursorsRecovered: s.CursorsRecovered.Load(),
		ReaderRecords:    s.ReaderRecords.Load(),
	}
}

// AppendsPerFsync is the group-commit amortization factor: how many records
// the average fsync retired.
func (v StatsView) AppendsPerFsync() float64 {
	if v.Fsyncs == 0 {
		return 0
	}
	return float64(v.Appends) / float64(v.Fsyncs)
}

// Merge accumulates o into v (cluster-wide aggregation over per-partition
// logs): counters sum, the batch peak takes the max.
func (v *StatsView) Merge(o StatsView) {
	v.Appends += o.Appends
	v.Fsyncs += o.Fsyncs
	v.AppendBytes += o.AppendBytes
	v.BatchPeak = max(v.BatchPeak, o.BatchPeak)
	v.Segments += o.Segments
	v.Snapshots += o.Snapshots
	v.SnapshotRecords += o.SnapshotRecords
	v.SnapshotErrors += o.SnapshotErrors
	v.Truncated += o.Truncated
	v.RecoveredRecords += o.RecoveredRecords
	v.RecoveryNanos += o.RecoveryNanos
	v.TornTails += o.TornTails
	v.TornSegments += o.TornSegments
	v.CursorAppends += o.CursorAppends
	v.CursorsRecovered += o.CursorsRecovered
	v.ReaderRecords += o.ReaderRecords
}
