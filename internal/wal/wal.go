// Package wal is the durability subsystem: a segmented append-only
// write-ahead log with group commit, periodic snapshots, and crash
// recovery.
//
// Every acknowledged install is appended as one length-prefixed,
// CRC-checked record (encoded with the internal/wire codecs into pooled
// frame buffers, so the hot path allocates nothing). Concurrent appends are
// group-committed: a single committer goroutine drains everything queued,
// writes it to the active segment, and retires the whole batch with one
// fsync — the same coalescing lever the TCP transport applies to frames,
// applied to disk syncs. Callers block until their record is durable, so an
// acknowledged write always survives a crash.
//
// The log is segmented so it can be truncated: a snapshot serializes the
// owning store's latest versions (via its ForEachLatest-style iterator)
// into a snapshot file covering every sealed segment, after which those
// segments and older snapshots are deleted. Recovery loads the newest valid
// snapshot and replays the remaining segments in order; a torn final record
// — the half-written tail of a crash mid-commit — is detected by the CRC
// (or a short read) and tolerated, because a torn record was by definition
// never acknowledged.
//
// Beyond installs, the log persists per-stream replication cursors: the
// highest (sequence, timestamp) a remote DC has acknowledged back to this
// partition. Cursors make the durability and replication state recover
// together — a restarted partition knows exactly which prefix of its local
// writes every remote DC already holds, re-enqueues the rest, and resumes
// its stream sequences where the receivers expect them. Cursor records ride
// the same segments as installs and are folded into snapshots so truncation
// never loses them; losing the tail of cursor updates is always safe (the
// sender merely re-ships an acknowledged suffix, which receivers apply
// idempotently).
//
// Two sync modes are offered. SyncAlways (the default) is the classic
// contract: Append returns only after the covering fsync, so an
// acknowledged write always survives a crash. SyncBackground acknowledges
// once the record is written to the OS and fsyncs on a timer, trading a
// bounded loss window (FsyncEvery) for write latency — the measurable
// latency/durability trade-off of the figures. Callers that must never act
// on un-fsynced data (the replication gates) use AppendSynced, whose
// callback fires only after the real fsync in either mode.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vclock"
	"repro/internal/wire"
)

// WAL errors.
var (
	ErrClosed  = errors.New("wal: closed")
	ErrCorrupt = errors.New("wal: corrupt record before final segment tail")

	errNoSource = errors.New("wal: no snapshot source registered")
)

// Record kinds.
const (
	// RecInstall is one durable version install (the default zero value).
	RecInstall uint8 = 0
	// RecCursor is a replication-cursor update: SrcDC holds the destination
	// DC, Seq the acknowledged stream sequence, TS the acknowledged HighTS.
	RecCursor uint8 = 1
	// RecEpoch is the partition's restart epoch: Seq holds the epoch value.
	// The epoch bumps once per recovery (see SetEpoch) and fences CC-LO
	// read-only transactions across restarts: a ROT that observes two
	// incarnations of a partition cannot rely on the soft reader state the
	// crash destroyed, so it retries.
	RecEpoch uint8 = 2
	// RecReaders is an old-reader record: the invisibility marks of the
	// version identified by (Key, TS, SrcDC). Key/TS/SrcDC name the version
	// and Readers lists the ROTs it is hidden from. Persisting the marks is
	// what lets recovery rebuild rewind protection for ROTs that were in
	// flight at the crash — the one piece of reader state epoch fencing
	// alone cannot reconstruct.
	RecReaders uint8 = 3
)

// Record is one durable log entry. Installs carry the union of the version
// metadata the three protocol families persist: the timestamp engine's
// dependency vector (DV), COPS' nearest-dependency list (Deps), or neither
// (CC-LO). Cursor records reuse SrcDC/Seq/TS as documented on RecCursor.
type Record struct {
	Kind    uint8
	Key     string
	Value   []byte
	TS      uint64
	SrcDC   uint8
	Seq     uint64             // cursor records: acknowledged stream sequence; epoch records: the epoch
	DV      vclock.Vec         // timestamp-based engine; nil otherwise
	Deps    []wire.LoDep       // COPS; nil otherwise
	Readers []wire.ReaderEntry // reader records: the version's invisibility marks
}

// Cursor is one stream's durable replication frontier: the receiver in
// DstDC has acknowledged every batch up to Seq, covering every local update
// with timestamp ≤ HighTS. A partition recovering its WAL re-enqueues local
// updates above HighTS and resumes the stream at Seq.
type Cursor struct {
	DstDC  uint8
	Seq    uint64
	HighTS uint64
}

// SnapshotSource streams the current durable state of a store, one Record
// per key (its latest version). emit returns a non-nil error when the
// snapshot writer fails; the source must stop and return it.
type SnapshotSource func(emit func(Record) error) error

// Durability is what a protocol server needs from a durability backend. A
// nil Durability means the server runs purely in memory (the default, so
// benchmark figures are unaffected unless a data dir is configured).
type Durability interface {
	// Append makes recs durable per the log's SyncMode before returning:
	// under SyncAlways the covering fsync has completed; under
	// SyncBackground the records are written to the OS and the fsync is
	// pending (the bounded loss window). Concurrent Appends are
	// group-committed into shared fsyncs.
	Append(recs ...Record) error
	// AppendSynced is Append plus a real-durability notification: synced
	// fires with nil exactly when the fsync covering recs has completed
	// (under SyncAlways, before AppendSynced returns). Callbacks fire in
	// log order, from the committer goroutine — keep them short and never
	// call back into the log. On failure, synced fires at most once with
	// the error — possibly in addition to AppendSynced returning it, or
	// not at all when the request never reached the committer — so error
	// cleanup must be idempotent; act only on synced(nil).
	AppendSynced(recs []Record, synced func(error)) error
	// AppendCursor persists a replication-cursor update (per SyncMode) and
	// folds it into the in-memory cursor table.
	AppendCursor(c Cursor) error
	// Cursors returns the recovered-plus-appended cursor table, one entry
	// per destination DC, sorted by DC. Recovery fills it during Replay,
	// so call Replay first; it is stable to read before serving starts.
	Cursors() []Cursor
	// Epoch returns the current restart epoch (0 before any SetEpoch).
	// Recovery fills it during Replay, so call Replay first.
	Epoch() uint64
	// SetEpoch durably records a new restart epoch, waiting for the real
	// fsync regardless of SyncMode: an epoch the next crash could take back
	// would let two distinct incarnations share one epoch, and the fence
	// would miss restarts between them. Call it once, after Replay and
	// before serving.
	SetEpoch(e uint64) error
	// Replay streams every recovered install — newest valid snapshot first,
	// then the log tail — in apply order. Cursor records are consumed into
	// the cursor table and not passed to apply. Call it once, before
	// serving.
	Replay(apply func(Record) error) error
	// SetSnapshotSource registers the store serializer used by snapshots.
	SetSnapshotSource(src SnapshotSource)
}

// SyncMode selects when Append acknowledges relative to fsync.
type SyncMode uint8

const (
	// SyncAlways acknowledges only after the covering fsync: an
	// acknowledged write always survives a crash.
	SyncAlways SyncMode = iota
	// SyncBackground acknowledges once the record is written to the OS and
	// fsyncs on the FsyncEvery timer: a crash may lose up to one window of
	// acknowledged writes, never more. Replication gates still wait for
	// the real fsync (AppendSynced), so a write lost to the window is lost
	// everywhere — replicas never diverge.
	SyncBackground
)

// String names the mode as the -wal-sync flag spells it.
func (m SyncMode) String() string {
	if m == SyncBackground {
		return "async"
	}
	return "sync"
}

// ParseSyncMode parses "sync" or "async".
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "sync":
		return SyncAlways, nil
	case "async":
		return SyncBackground, nil
	default:
		return SyncAlways, fmt.Errorf("wal: unknown sync mode %q (want sync|async)", s)
	}
}

// Options parameterizes Open.
type Options struct {
	// Dir is the log directory (required; created if absent).
	Dir string
	// SegmentBytes is the size at which the active segment is sealed and a
	// new one opened (default 64 MiB).
	SegmentBytes int64
	// SnapshotEvery is the periodic snapshot interval; 0 disables periodic
	// snapshots (Snapshot can still be called explicitly).
	SnapshotEvery time.Duration
	// Sync selects the acknowledgment contract (default SyncAlways).
	Sync SyncMode
	// FsyncEvery bounds the SyncBackground loss window (default 2ms).
	FsyncEvery time.Duration
}

const (
	defaultSegmentBytes = 64 << 20

	// recHdrLen prefixes every record: u32 body length, u32 CRC32-C.
	recHdrLen = 8
	// fileHdrLen prefixes every segment and snapshot file: 8-byte magic
	// plus the u64 segment sequence (or snapshot cut).
	fileHdrLen = 16
	// maxRecordLen bounds a single record body, mirroring the wire codec's
	// field limit; larger lengths in a file mean corruption.
	maxRecordLen = 1 << 26

	// maxBatchReqs caps how many queued appends one group commit retires,
	// bounding the latency of the first waiter in a deep queue.
	maxBatchReqs = 1024
)

var (
	// Format 03: two new record kinds (restart epochs and old-reader
	// records). Existing kinds encode byte-identically to format 02, so
	// replay accepts 02 files written by older builds (prevMagic below);
	// new files are always written with the current magic. Format 01
	// predates the Kind byte and still fails the check rather than
	// misparse.
	segMagic      = [8]byte{'C', 'K', 'V', 'W', 'A', 'L', '0', '3'}
	snapMagic     = [8]byte{'C', 'K', 'V', 'S', 'N', 'P', '0', '3'}
	prevSegMagic  = [8]byte{'C', 'K', 'V', 'W', 'A', 'L', '0', '2'}
	prevSnapMagic = [8]byte{'C', 'K', 'V', 'S', 'N', 'P', '0', '2'}

	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

func segName(seq uint64) string  { return fmt.Sprintf("seg-%016d.wal", seq) }
func snapName(cut uint64) string { return fmt.Sprintf("snap-%016d.snap", cut) }

// Log is a durable write-ahead log rooted at a directory. It implements
// Durability. All methods are safe for concurrent use.
type Log struct {
	opts  Options
	stats Stats

	appendCh chan *commitReq
	stop     chan struct{} // closed by Close; stops intake
	dead     chan struct{} // closed when the committer has exited
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Recovery set, fixed at Open and consumed by Replay.
	snapPath string
	snapCut  uint64
	segPaths []string // ascending by sequence, excludes the active segment

	// Active segment state, owned by the committer goroutine after Open.
	active     *os.File
	activePath string
	activeSeq  uint64
	activeSize int64
	// syncedSize is how much of the active segment the last fsync covered.
	// Crash() truncates back to it, modelling the kernel page-cache loss a
	// power cut inflicts on un-fsynced writes. Written by the committer,
	// read after wg.Wait (the WaitGroup orders the accesses).
	syncedSize int64
	// pendingSynced holds, in log order, the synced callbacks of records
	// written but not yet covered by an fsync (SyncBackground only; under
	// SyncAlways every commit fsyncs, so the list never survives a batch).
	pendingSynced []func(error)
	// broken latches the first write/sync/rotate failure. A partial record
	// may now sit mid-file, and anything appended after it would be
	// unreachable to recovery (replay stops at the first bad CRC), so the
	// committer must never acknowledge another append: every subsequent
	// request fails with this error until the process restarts and
	// recovery truncates its view at the damage.
	broken error

	// crashed marks a Crash() shutdown: skip the final fsync so the
	// truncation to syncedSize faithfully discards the loss window.
	crashed atomic.Bool

	cursorMu sync.Mutex
	cursors  map[uint8]Cursor

	// epoch is the partition's restart epoch: recovered by Replay (max over
	// epoch records), advanced by SetEpoch.
	epoch atomic.Uint64

	snapMu sync.Mutex // serializes Snapshot runs
	srcMu  sync.Mutex
	src    SnapshotSource
	looped bool
}

// commitReq is one queued unit of committer work: an append (buf non-nil)
// or a rotation request (rotated non-nil). done always receives exactly one
// result; rotated receives the new active sequence before done on success.
// synced, when non-nil, fires once the records' covering fsync completes.
type commitReq struct {
	buf        *wire.FrameBuf
	recs       int
	readerRecs int // RecReaders among recs (metadata, counted separately)
	// forceSync makes the committer fsync this batch immediately even under
	// SyncBackground (SetEpoch's recovery-time contract must not wait out
	// the background timer). The batch fsync covers every request in it.
	forceSync bool
	synced    func(error)
	done      chan error
	rotated   chan uint64
}

// Open opens (or creates) the log at opts.Dir, scans it for recovery, and
// starts the committer. Appends go to a fresh segment; call Replay to
// recover the pre-crash state before serving.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 2 * time.Millisecond
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		opts:     opts,
		appendCh: make(chan *commitReq, maxBatchReqs),
		stop:     make(chan struct{}),
		dead:     make(chan struct{}),
		cursors:  make(map[uint8]Cursor),
	}
	maxSeq, err := l.scan()
	if err != nil {
		return nil, err
	}
	if err := l.openSegment(max(maxSeq, l.snapCut) + 1); err != nil {
		return nil, err
	}
	l.wg.Add(1)
	go l.run()
	return l, nil
}

// scan inventories the directory: it removes leftover temp files, picks the
// newest snapshot with a valid header, and lists the segments recovery must
// replay. It returns the highest segment sequence present.
func (l *Log) scan() (uint64, error) {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	type seg struct {
		seq  uint64
		path string
	}
	var segs []seg
	var snaps []seg // seq is the snapshot cut
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(l.opts.Dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(path) // incomplete snapshot; never activated
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
			if seq, err := strconv.ParseUint(name[4:len(name)-4], 10, 64); err == nil {
				segs = append(segs, seg{seq, path})
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if cut, err := strconv.ParseUint(name[5:len(name)-5], 10, 64); err == nil {
				snaps = append(snaps, seg{cut, path})
			}
		}
	}
	// Newest snapshot with a valid header wins; an unreadable one falls
	// back to the next (its covered segments may already be gone, but a
	// partial recovery beats none — and headers are written before rename,
	// so this is a can't-happen guard, not an expected path).
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq > snaps[j].seq })
	for _, s := range snaps {
		if checkHeader(s.path, [][8]byte{snapMagic, prevSnapMagic}, s.seq) == nil {
			l.snapPath, l.snapCut = s.path, s.seq
			break
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	// A crash during rotation can leave the NEWEST segment with a torn
	// header: openSegment writes header+fsync before the first append, so a
	// header-or-shorter file with a bad header provably holds no durable
	// record — discard it. The size guard matters: bytes PAST the header
	// mean appends once succeeded, so the header was once valid and its
	// damage is real corruption that recovery must refuse (replay fails
	// loudly), never debris to sweep. Deletion (not mere tolerance) also
	// matters: after this restart the file would no longer be final.
	if n := len(segs); n > 0 {
		last := segs[n-1]
		st, err := os.Stat(last.path)
		if err != nil {
			return 0, fmt.Errorf("wal: %w", err)
		}
		if st.Size() <= fileHdrLen &&
			checkHeader(last.path, [][8]byte{segMagic, prevSegMagic}, last.seq) != nil {
			if err := os.Remove(last.path); err != nil {
				return 0, fmt.Errorf("wal: %w", err)
			}
			if err := syncDir(l.opts.Dir); err != nil {
				return 0, err
			}
			segs = segs[:n-1]
			l.stats.TornSegments.Add(1)
		}
	}
	var maxSeq uint64
	for _, s := range segs {
		maxSeq = s.seq
		if s.seq >= l.snapCut {
			l.segPaths = append(l.segPaths, s.path)
		}
	}
	return maxSeq, nil
}

// checkHeader validates a file's magic and sequence field. Each accepted
// magic names a format this build can replay: the current one plus the
// previous, whose record encodings are a strict subset.
func checkHeader(path string, magics [][8]byte, want uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [fileHdrLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return err
	}
	ok := false
	for _, m := range magics {
		if [8]byte(hdr[:8]) == m {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("wal: %s: bad magic", path)
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != want {
		return fmt.Errorf("wal: %s: header seq %d != filename %d", path, got, want)
	}
	return nil
}

// openSegment creates and syncs a fresh active segment.
func (l *Log) openSegment(seq uint64) error {
	path := filepath.Join(l.opts.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [fileHdrLen]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr[:]); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.active, l.activePath, l.activeSeq = f, path, seq
	l.activeSize, l.syncedSize = fileHdrLen, fileHdrLen
	l.stats.Segments.Add(1)
	return nil
}

// syncDir flushes directory metadata so created/renamed files survive a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Stats exposes the log's counters.
func (l *Log) Stats() *Stats { return &l.stats }

// Append makes recs durable per the log's SyncMode before returning.
// Concurrent Appends from different goroutines are coalesced by the
// committer into shared write+fsync batches (group commit).
func (l *Log) Append(recs ...Record) error {
	return l.AppendSynced(recs, nil)
}

// AppendSynced is Append plus a real-fsync notification (see Durability).
func (l *Log) AppendSynced(recs []Record, synced func(error)) error {
	if len(recs) == 0 {
		if synced != nil {
			synced(nil)
		}
		return nil
	}
	f := wire.GetFrame()
	readerRecs := 0
	for i := range recs {
		encodeRecord(&f.Buffer, &recs[i])
		if recs[i].Kind == RecReaders {
			readerRecs++
		}
	}
	req := &commitReq{buf: f, recs: len(recs), readerRecs: readerRecs, synced: synced, done: make(chan error, 1)}
	select {
	case l.appendCh <- req:
	case <-l.stop:
		wire.PutFrame(f)
		return ErrClosed
	}
	return l.wait(req)
}

// AppendAndSync appends recs and blocks until the covering fsync has
// completed regardless of the log's SyncMode. Replication receivers use it:
// the sender retires a batch (and advances its durable cursor) on our ack,
// so the ack must never outrun our own fsync — otherwise a receiver crash
// could lose data the sender will never re-send, and the DCs would diverge.
func AppendAndSync(d Durability, recs []Record) error {
	ch := make(chan error, 1)
	if err := d.AppendSynced(recs, func(err error) { ch <- err }); err != nil {
		return err
	}
	return <-ch
}

// AppendCursor persists a replication-cursor update and folds it into the
// in-memory cursor table. Cursor loss is always safe (the stream re-ships
// an acknowledged suffix receivers dedup), so callers may ignore the error
// beyond logging.
func (l *Log) AppendCursor(c Cursor) error {
	l.cursorMu.Lock()
	if prev, ok := l.cursors[c.DstDC]; !ok || c.Seq >= prev.Seq {
		l.cursors[c.DstDC] = c
	}
	l.cursorMu.Unlock()
	l.stats.CursorAppends.Add(1)
	return l.Append(Record{Kind: RecCursor, SrcDC: c.DstDC, Seq: c.Seq, TS: c.HighTS})
}

// Epoch returns the current restart epoch (0 before any SetEpoch).
func (l *Log) Epoch() uint64 { return l.epoch.Load() }

// SetEpoch durably records a new restart epoch. The record's batch is
// fsynced immediately regardless of SyncMode (see Durability.SetEpoch): an
// epoch a crash could take back would let two incarnations share one epoch
// and blind the ROT fence to restarts between them — and recovery must not
// sit out a background-fsync window to get that guarantee.
func (l *Log) SetEpoch(e uint64) error {
	f := wire.GetFrame()
	r := Record{Kind: RecEpoch, Seq: e}
	encodeRecord(&f.Buffer, &r)
	req := &commitReq{buf: f, recs: 1, forceSync: true, done: make(chan error, 1)}
	select {
	case l.appendCh <- req:
	case <-l.stop:
		wire.PutFrame(f)
		return ErrClosed
	}
	if err := l.wait(req); err != nil {
		return err
	}
	if cur := l.epoch.Load(); e > cur {
		l.epoch.Store(e)
	}
	return nil
}

// Cursors returns the current cursor table, sorted by destination DC.
func (l *Log) Cursors() []Cursor {
	l.cursorMu.Lock()
	out := make([]Cursor, 0, len(l.cursors))
	for _, c := range l.cursors {
		out = append(out, c)
	}
	l.cursorMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DstDC < out[j].DstDC })
	return out
}

// wait blocks for req's result, falling back to ErrClosed if the committer
// died without reaching it (a request buffered after the shutdown drain).
func (l *Log) wait(req *commitReq) error {
	select {
	case err := <-req.done:
		return err
	case <-l.dead:
		select {
		case err := <-req.done:
			return err
		default:
			return ErrClosed
		}
	}
}

// rotate asks the committer to seal the active segment and open the next;
// it returns the new active sequence. Every record appended before rotate
// returned lives in a segment below the returned cut.
func (l *Log) rotate() (uint64, error) {
	req := &commitReq{done: make(chan error, 1), rotated: make(chan uint64, 1)}
	select {
	case l.appendCh <- req:
	case <-l.stop:
		return 0, ErrClosed
	}
	if err := l.wait(req); err != nil {
		return 0, err
	}
	return <-req.rotated, nil
}

// run is the committer: it blocks for the first queued request, greedily
// drains everything else already queued, writes the whole batch to the
// active segment, and retires it with a single fsync (SyncAlways) or leaves
// it for the background fsync timer (SyncBackground).
func (l *Log) run() {
	defer l.wg.Done()
	defer close(l.dead)
	var tick <-chan time.Time
	if l.opts.Sync == SyncBackground {
		t := time.NewTicker(l.opts.FsyncEvery)
		defer t.Stop()
		tick = t.C
	}
	batch := make([]*commitReq, 0, maxBatchReqs)
	for {
		var req *commitReq
		select {
		case req = <-l.appendCh:
		case <-tick:
			l.backgroundSync()
			continue
		case <-l.stop:
			l.shutdown()
			return
		}
		batch = batch[:0]
		var rot *commitReq
		if req.rotated != nil {
			rot = req
		} else {
			batch = append(batch, req)
		drain:
			for len(batch) < maxBatchReqs {
				select {
				case r := <-l.appendCh:
					if r.rotated != nil {
						rot = r
						break drain
					}
					batch = append(batch, r)
				default:
					break drain
				}
			}
		}
		if len(batch) > 0 {
			l.commit(batch)
		}
		if rot != nil {
			err := l.broken
			if err == nil {
				err = l.rotateSegment()
				if err != nil {
					l.broken = fmt.Errorf("wal: log poisoned by earlier failure: %w", err)
				}
			}
			if err == nil {
				rot.rotated <- l.activeSeq
			}
			rot.done <- err
		}
	}
}

// commit writes one group-commit batch. Under SyncAlways it retires the
// whole batch with a single fsync; under SyncBackground the records are
// acknowledged as written and their synced callbacks queue for the next
// background fsync.
func (l *Log) commit(batch []*commitReq) {
	err := l.broken
	if err == nil && l.activeSize >= l.opts.SegmentBytes {
		err = l.rotateSegment()
	}
	recs, readerRecs, bytes := 0, 0, 0
	force := false
	for _, r := range batch {
		if err == nil {
			var n int
			n, err = l.active.Write(r.buf.B)
			l.activeSize += int64(n)
			recs += r.recs
			readerRecs += r.readerRecs
			bytes += n
		}
		force = force || r.forceSync
		wire.PutFrame(r.buf)
		r.buf = nil
	}
	synced := l.opts.Sync == SyncAlways || force
	if err == nil && synced {
		err = l.fsync()
	}
	if err != nil && l.broken == nil {
		l.broken = fmt.Errorf("wal: log poisoned by earlier failure: %w", err)
	}
	if err == nil {
		l.stats.Appends.Add(uint64(recs))
		l.stats.ReaderRecords.Add(uint64(readerRecs))
		l.stats.AppendBytes.Add(uint64(bytes))
		// Pulse the gauge by the batch size so its high-water mark records
		// the largest group commit (committer-only, so pulses never overlap).
		l.stats.Batch.Add(int64(recs))
		l.stats.Batch.Add(-int64(recs))
	}
	for _, r := range batch {
		if r.synced != nil {
			if err != nil || synced {
				// Failure, or the batch fsync above already covered it.
				r.synced(err)
			} else {
				l.pendingSynced = append(l.pendingSynced, r.synced)
			}
		}
		r.done <- err
	}
}

// fsync flushes the active segment, records the covered size, and fires
// every pending synced callback in log order.
func (l *Log) fsync() error {
	start := time.Now()
	if err := l.active.Sync(); err != nil {
		l.firePending(err)
		return err
	}
	l.stats.FsyncDelay.Record(time.Since(start))
	l.syncedSize = l.activeSize
	l.stats.Fsyncs.Add(1)
	l.firePending(nil)
	return nil
}

// firePending drains the pendingSynced callbacks with err.
func (l *Log) firePending(err error) {
	for _, fn := range l.pendingSynced {
		fn(err)
	}
	l.pendingSynced = l.pendingSynced[:0]
}

// backgroundSync is the SyncBackground timer body: flush anything written
// since the last fsync.
func (l *Log) backgroundSync() {
	if l.broken != nil {
		l.firePending(l.broken)
		return
	}
	if l.syncedSize == l.activeSize && len(l.pendingSynced) == 0 {
		return
	}
	if err := l.fsync(); err != nil && l.broken == nil {
		l.broken = fmt.Errorf("wal: log poisoned by earlier failure: %w", err)
	}
}

// rotateSegment seals the active segment and opens the next one. The seal
// fsync covers every record written so far, so pending callbacks fire.
func (l *Log) rotateSegment() error {
	dirty := l.syncedSize < l.activeSize || len(l.pendingSynced) > 0
	if err := l.active.Sync(); err != nil {
		l.firePending(err)
		return fmt.Errorf("wal: %w", err)
	}
	l.syncedSize = l.activeSize
	if dirty {
		l.stats.Fsyncs.Add(1)
	}
	l.firePending(nil)
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.openSegment(l.activeSeq + 1)
}

// shutdown closes the active segment — syncing it first unless this is a
// Crash(), whose whole point is to lose the unsynced window — then fails
// whatever is still queued.
func (l *Log) shutdown() {
	if l.crashed.Load() {
		l.firePending(ErrClosed)
	} else {
		dirty := l.syncedSize < l.activeSize || len(l.pendingSynced) > 0
		if l.broken == nil && l.active.Sync() == nil {
			l.syncedSize = l.activeSize
			if dirty {
				l.stats.Fsyncs.Add(1)
			}
			l.firePending(nil)
		} else {
			l.firePending(ErrClosed)
		}
	}
	l.active.Close()
	for {
		select {
		case r := <-l.appendCh:
			if r.buf != nil {
				wire.PutFrame(r.buf)
			}
			if r.synced != nil {
				r.synced(ErrClosed)
			}
			r.done <- ErrClosed
		default:
			return
		}
	}
}

// Close flushes the log and stops its goroutines. Appends in flight either
// complete durably or report ErrClosed.
func (l *Log) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
	return nil
}

// Crash is the fault-injection shutdown: it stops the log WITHOUT the final
// fsync and truncates the active segment back to the last fsync-covered
// offset, discarding the same bytes a power cut would take from the kernel
// page cache. Under SyncAlways every acknowledged append survives; under
// SyncBackground up to one FsyncEvery window of acknowledged appends is
// lost — exactly the documented contract. Tests use it as the in-process
// kill -9.
func (l *Log) Crash() error {
	l.crashed.Store(true)
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
	if err := os.Truncate(l.activePath, l.syncedSize); err != nil {
		return fmt.Errorf("wal: crash truncate: %w", err)
	}
	return nil
}

// Replay streams every recovered record to apply: the newest valid snapshot
// first (one record per key), then the sealed segments in order. A torn
// final record — a short or CRC-failing tail of the last segment — ends the
// replay silently; the same damage anywhere else is reported as ErrCorrupt.
func (l *Log) Replay(apply func(Record) error) error {
	start := time.Now()
	defer func() { l.stats.RecoveryNanos.Add(uint64(time.Since(start))) }()
	if l.snapPath != "" {
		if err := l.replayFile(l.snapPath, [][8]byte{snapMagic, prevSnapMagic}, l.snapCut, false, apply); err != nil {
			return err
		}
	}
	for i, p := range l.segPaths {
		final := i == len(l.segPaths)-1
		base := filepath.Base(p)
		seq, _ := strconv.ParseUint(base[4:len(base)-4], 10, 64)
		if err := l.replayFile(p, [][8]byte{segMagic, prevSegMagic}, seq, final, apply); err != nil {
			return err
		}
	}
	return nil
}

// replayFile replays one segment or snapshot. tolerateTail permits a
// truncated or corrupt trailing record (the final segment only).
func (l *Log) replayFile(path string, magics [][8]byte, seq uint64, tolerateTail bool, apply func(Record) error) error {
	if err := checkHeader(path, magics, seq); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	if _, err := br.Discard(fileHdrLen); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	torn := func() error {
		if tolerateTail {
			l.stats.TornTails.Add(1)
			return nil
		}
		return fmt.Errorf("%w (%s)", ErrCorrupt, path)
	}
	var hdr [recHdrLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return torn() // short header: torn mid-write
		}
		size := binary.LittleEndian.Uint32(hdr[:4])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if size > maxRecordLen {
			return torn() // garbage length: torn header
		}
		body := wire.GetFrameLen(int(size))
		if _, err := io.ReadFull(br, body.B); err != nil {
			wire.PutFrame(body)
			return torn()
		}
		if crc32.Checksum(body.B, crcTable) != sum {
			wire.PutFrame(body)
			return torn()
		}
		rec, derr := decodeRecord(body.B)
		wire.PutFrame(body)
		if derr != nil {
			// The CRC passed, so this is structural corruption (or a format
			// bug), not a torn write; never skip it silently.
			return fmt.Errorf("%w (%s): %v", ErrCorrupt, path, derr)
		}
		if rec.Kind == RecCursor {
			// Replication cursors are the log's own state, not the store's:
			// fold into the table (max by sequence — snapshot entries replay
			// before newer segment entries) instead of handing to apply.
			l.cursorMu.Lock()
			if prev, ok := l.cursors[rec.SrcDC]; !ok || rec.Seq >= prev.Seq {
				l.cursors[rec.SrcDC] = Cursor{DstDC: rec.SrcDC, Seq: rec.Seq, HighTS: rec.TS}
			}
			l.cursorMu.Unlock()
			l.stats.CursorsRecovered.Add(1)
			continue
		}
		if rec.Kind == RecEpoch {
			// Restart epochs are log-owned state too: fold the max (replay
			// is single-goroutine, so Load+Store does not race).
			if rec.Seq > l.epoch.Load() {
				l.epoch.Store(rec.Seq)
			}
			continue
		}
		if err := apply(rec); err != nil {
			return err
		}
		l.stats.RecoveredRecords.Add(1)
	}
}

// SetSnapshotSource registers the store serializer and, if periodic
// snapshots are configured, starts the snapshot loop.
func (l *Log) SetSnapshotSource(src SnapshotSource) {
	l.srcMu.Lock()
	defer l.srcMu.Unlock()
	l.src = src
	if src != nil && l.opts.SnapshotEvery > 0 && !l.looped {
		l.looped = true
		l.wg.Add(1)
		go l.snapshotLoop()
	}
}

func (l *Log) snapshotLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			if err := l.Snapshot(); err != nil && !errors.Is(err, ErrClosed) {
				l.stats.SnapshotErrors.Add(1)
			}
		}
	}
}

// Snapshot serializes the registered source into a new snapshot file and
// truncates the segments (and older snapshots) it supersedes. The cut is a
// fresh segment sealed just before serialization starts: because every
// record is installed in the store before its Append returns, the store at
// that point is a superset of every sealed segment, so replaying snapshot
// + remaining segments reconstructs the full durable state.
func (l *Log) Snapshot() error {
	l.srcMu.Lock()
	src := l.src
	l.srcMu.Unlock()
	if src == nil {
		return errNoSource
	}
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	cut, err := l.rotate()
	if err != nil {
		return err
	}
	tmp := filepath.Join(l.opts.Dir, snapName(cut)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [fileHdrLen]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], cut)
	_, err = bw.Write(hdr[:])
	recs := uint64(0)
	if err == nil {
		frame := wire.GetFrame()
		err = src(func(rec Record) error {
			frame.B = frame.B[:0]
			encodeRecord(&frame.Buffer, &rec)
			recs++
			_, werr := bw.Write(frame.B)
			return werr
		})
		if err == nil {
			// The snapshot supersedes sealed segments, so it must carry the
			// cursor table those segments held: the current table is at
			// least as fresh as any cursor record below the cut (newer ones
			// live in the active segment and replay after).
			for _, c := range l.Cursors() {
				frame.B = frame.B[:0]
				encodeRecord(&frame.Buffer, &Record{Kind: RecCursor, SrcDC: c.DstDC, Seq: c.Seq, TS: c.HighTS})
				recs++
				if _, werr := bw.Write(frame.B); werr != nil {
					err = werr
					break
				}
			}
		}
		if err == nil {
			// Same story for the restart epoch: its record may live only in
			// a sealed segment the snapshot is about to truncate.
			if e := l.epoch.Load(); e > 0 {
				frame.B = frame.B[:0]
				encodeRecord(&frame.Buffer, &Record{Kind: RecEpoch, Seq: e})
				recs++
				if _, werr := bw.Write(frame.B); werr != nil {
					err = werr
				}
			}
		}
		wire.PutFrame(frame)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.opts.Dir, snapName(cut))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := syncDir(l.opts.Dir); err != nil {
		return err
	}
	l.stats.Snapshots.Add(1)
	l.stats.SnapshotRecords.Add(recs)
	l.truncate(cut)
	return nil
}

// truncate removes segments and snapshots superseded by a snapshot at cut.
// Best-effort: leftovers are re-deleted by the next truncation.
func (l *Log) truncate(cut uint64) {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		var perr error
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
			seq, perr = strconv.ParseUint(name[4:len(name)-4], 10, 64)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			seq, perr = strconv.ParseUint(name[5:len(name)-5], 10, 64)
			if seq == cut {
				continue
			}
		default:
			continue
		}
		if perr == nil && seq < cut {
			if os.Remove(filepath.Join(l.opts.Dir, name)) == nil {
				l.stats.Truncated.Add(1)
			}
		}
	}
}

//
// Record codec.
//

// encodeRecord appends rec's framed representation (length, CRC, body) to b.
func encodeRecord(b *wire.Buffer, rec *Record) {
	off := len(b.B)
	b.B = append(b.B, 0, 0, 0, 0, 0, 0, 0, 0)
	b.U8(rec.Kind)
	switch rec.Kind {
	case RecCursor:
		b.U8(rec.SrcDC)
		b.U64(rec.Seq)
		b.U64(rec.TS)
	case RecEpoch:
		b.U64(rec.Seq)
	case RecReaders:
		b.String(rec.Key)
		b.U64(rec.TS)
		b.U8(rec.SrcDC)
		b.Uvarint(uint64(len(rec.Readers)))
		for i := range rec.Readers {
			b.U64(rec.Readers[i].RotID)
			b.U64(rec.Readers[i].T)
		}
	default:
		b.String(rec.Key)
		b.Bytes(rec.Value)
		b.U64(rec.TS)
		b.U8(rec.SrcDC)
		b.Vec(rec.DV)
		b.Uvarint(uint64(len(rec.Deps)))
		for i := range rec.Deps {
			b.String(rec.Deps[i].Key)
			b.U64(rec.Deps[i].TS)
			b.U8(rec.Deps[i].Src)
		}
	}
	body := b.B[off+recHdrLen:]
	binary.LittleEndian.PutUint32(b.B[off:], uint32(len(body)))
	binary.LittleEndian.PutUint32(b.B[off+4:], crc32.Checksum(body, crcTable))
}

// decodeRecord parses one record body (the CRC has already been verified).
func decodeRecord(body []byte) (Record, error) {
	r := wire.NewReader(body)
	kind := r.U8()
	switch kind {
	case RecCursor:
		rec := Record{Kind: kind, SrcDC: r.U8(), Seq: r.U64(), TS: r.U64()}
		return rec, finish(r)
	case RecEpoch:
		rec := Record{Kind: kind, Seq: r.U64()}
		return rec, finish(r)
	case RecReaders:
		rec := Record{Kind: kind, Key: r.String(), TS: r.U64(), SrcDC: r.U8()}
		n := r.Uvarint()
		// Each entry is exactly 16 wire bytes; a count the body cannot hold
		// is corruption, caught before the preallocation can balloon.
		if n > uint64(r.Remaining())/16 {
			return Record{}, fmt.Errorf("readers length %d", n)
		}
		if n > 0 && r.Err() == nil {
			rec.Readers = make([]wire.ReaderEntry, 0, n)
			for i := uint64(0); i < n && r.Err() == nil; i++ {
				rec.Readers = append(rec.Readers, wire.ReaderEntry{RotID: r.U64(), T: r.U64()})
			}
		}
		return rec, finish(r)
	case RecInstall:
	default:
		return Record{}, fmt.Errorf("unknown record kind %d", kind)
	}
	rec := Record{
		Key:   r.String(),
		Value: r.Bytes(),
		TS:    r.U64(),
		SrcDC: r.U8(),
		DV:    r.Vec(),
	}
	// A dep is at least 10 wire bytes (1-byte key length + u64 + u8); a
	// count the body cannot hold is corruption, caught before the
	// preallocation can balloon.
	n := r.Uvarint()
	if n > uint64(r.Remaining())/10 {
		return Record{}, fmt.Errorf("deps length %d", n)
	}
	if n > 0 && r.Err() == nil {
		rec.Deps = make([]wire.LoDep, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			rec.Deps = append(rec.Deps, wire.LoDep{Key: r.String(), TS: r.U64(), Src: r.U8()})
		}
	}
	if err := finish(r); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// finish reports a decode error or undrained trailing bytes.
func finish(r *wire.Reader) error {
	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%d trailing bytes", r.Remaining())
	}
	return nil
}
