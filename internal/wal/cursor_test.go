package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCursorPersistRecover checks the durable cursor table: appended
// cursors survive close + reopen, later appends supersede earlier ones by
// sequence, and the table is folded into snapshots so segment truncation
// never loses it.
func TestCursorPersistRecover(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 10; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendCursor(Cursor{DstDC: 1, Seq: 3, HighTS: 30}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCursor(Cursor{DstDC: 2, Seq: 9, HighTS: 80}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCursor(Cursor{DstDC: 1, Seq: 5, HighTS: 44}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := mustOpen(t, Options{Dir: dir})
	if n := len(replayAll(t, l2)); n != 10 {
		t.Fatalf("replayed %d installs, want 10 (cursor records must not reach apply)", n)
	}
	cur := l2.Cursors()
	if len(cur) != 2 {
		t.Fatalf("cursors = %+v, want 2 entries", cur)
	}
	if cur[0] != (Cursor{DstDC: 1, Seq: 5, HighTS: 44}) || cur[1] != (Cursor{DstDC: 2, Seq: 9, HighTS: 80}) {
		t.Fatalf("recovered cursors %+v", cur)
	}
	if v := l2.Stats().View(); v.CursorsRecovered != 3 {
		t.Fatalf("CursorsRecovered = %d, want 3", v.CursorsRecovered)
	}

	// Snapshot: truncates every sealed segment (where all cursor records
	// live) — the table must ride along in the snapshot file.
	l2.SetSnapshotSource(func(emit func(Record) error) error {
		return emit(rec(99))
	})
	if err := l2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	l3 := mustOpen(t, Options{Dir: dir})
	replayAll(t, l3) // recovery (and the cursor table) fills during Replay
	cur = l3.Cursors()
	if len(cur) != 2 || cur[0].Seq != 5 || cur[1].Seq != 9 {
		t.Fatalf("cursors after snapshot truncation: %+v", cur)
	}
}

// TestTornCursorTailTolerated: a torn cursor record at the log tail (the
// crash landed mid-cursor-write) must be shrugged off, falling back to the
// previous durable cursor.
func TestTornCursorTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	if err := l.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCursor(Cursor{DstDC: 1, Seq: 7, HighTS: 70}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Append a half-written record to the newest segment.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			segs = append(segs, e.Name())
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, segs[len(segs)-1]), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'x'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := mustOpen(t, Options{Dir: dir})
	if n := len(replayAll(t, l2)); n != 1 {
		t.Fatalf("replayed %d installs, want 1", n)
	}
	cur := l2.Cursors()
	if len(cur) != 1 || cur[0] != (Cursor{DstDC: 1, Seq: 7, HighTS: 70}) {
		t.Fatalf("cursors after torn tail: %+v", cur)
	}
	if v := l2.Stats().View(); v.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", v.TornTails)
	}
}

// TestCrashSyncModeKeepsAcked: under SyncAlways, Crash() — which discards
// everything the last fsync did not cover — must keep every append that
// returned successfully.
func TestCrashSyncModeKeepsAcked(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, Options{Dir: dir})
	if got := len(replayAll(t, l2)); got != n {
		t.Fatalf("replayed %d records after crash, want %d (sync mode: acked ⇒ durable)", got, n)
	}
}

// TestAsyncModeLossWindowBounded pins the SyncBackground contract with a
// deterministic fsync boundary: a segment rotation fsyncs everything before
// it, so records appended before the rotation survive a crash and records
// after it (acknowledged inside the window, fsync still pending) are lost —
// and only those.
func TestAsyncModeLossWindowBounded(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{
		Dir:          dir,
		Sync:         SyncBackground,
		FsyncEvery:   time.Hour, // never: the rotation is the only fsync
		SegmentBytes: 1,         // every commit rotates first
	})
	if err != nil {
		t.Fatal(err)
	}
	synced := make(chan error, 1)
	if err := l.AppendSynced([]Record{rec(0)}, func(e error) { synced <- e }); err != nil {
		t.Fatal(err)
	}
	// rec(0) is written but not fsynced; its synced callback is pending.
	select {
	case <-synced:
		t.Fatal("synced fired before any fsync")
	default:
	}
	// The next append rotates the segment first, fsyncing rec(0).
	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	if e := <-synced; e != nil {
		t.Fatalf("synced(err=%v) after covering rotation", e)
	}
	// rec(1) sits un-fsynced in the new active segment: the loss window.
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, Options{Dir: dir})
	recs := replayAll(t, l2)
	if len(recs) != 1 || !recEqual(recs[0], rec(0)) {
		t.Fatalf("after async crash: %d records (%+v), want exactly the fsynced rec(0)", len(recs), recs)
	}
}

// TestAsyncModeAmortizesFsyncs: with background fsync, even a SERIAL writer
// shares fsyncs across many appends — the amortization sync mode only
// reaches with concurrent writers. The acceptance bar is ≥2x over serial
// sync mode (which is exactly 1 append/fsync).
func TestAsyncModeAmortizesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncBackground, FsyncEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			// Let a few background fsync ticks fire mid-stream.
			time.Sleep(25 * time.Millisecond)
		}
	}
	l.Close() // final flush
	v := l.Stats().View()
	if v.Appends != n {
		t.Fatalf("appends = %d, want %d", v.Appends, n)
	}
	if perF := v.AppendsPerFsync(); perF < 2 {
		t.Fatalf("async AppendsPerFsync = %.1f (%d fsyncs), want ≥ 2 (serial sync mode is 1.0)", perF, v.Fsyncs)
	}
}

// TestCursorTrackerFrontier exercises the out-of-order ack frontier.
func TestCursorTrackerFrontier(t *testing.T) {
	var tr CursorTracker
	for _, ts := range []uint64{10, 20, 30, 40} {
		tr.Enqueue(ts)
	}
	if high, adv := tr.Ack(20); adv || high != 9 {
		t.Fatalf("ack(20) = (%d, %v), want frontier 9, no advance", high, adv)
	}
	// 10 and 20 acked, 30 outstanding: everything below 30 is covered.
	if high, adv := tr.Ack(10); !adv || high != 29 {
		t.Fatalf("ack(10) = (%d, %v), want frontier 29", high, adv)
	}
	if high, adv := tr.Ack(40); adv || high != 29 {
		t.Fatalf("ack(40) = (%d, %v), want frontier 29", high, adv)
	}
	if high, adv := tr.Ack(30); !adv || high != 40 {
		t.Fatalf("ack(30) = (%d, %v), want frontier 40 (all acked)", high, adv)
	}
	// New traffic after a fully drained window.
	tr.Enqueue(50)
	if high, adv := tr.Ack(50); !adv || high != 50 {
		t.Fatalf("ack(50) = (%d, %v), want 50", high, adv)
	}
}
