package wal

import (
	"container/heap"
	"sync"
)

// CursorTracker computes the durable replication frontier for window-based
// streams (CC-LO, COPS) whose acknowledgments complete out of order. The
// frontier HighTS is the largest timestamp T such that every enqueued
// update with timestamp ≤ T has been acknowledged — the only value safe to
// persist as a cursor, because recovery re-enqueues exactly the updates
// above it. Timestamps may be enqueued in any order (the put path assigns
// them outside any fence), so the tracker keeps a min-heap of unacked
// timestamps with lazy deletion rather than assuming contiguity.
type CursorTracker struct {
	mu       sync.Mutex
	unacked  tsHeap
	acked    map[uint64]int // acked-but-not-yet-popped timestamp → count
	maxAcked uint64
}

// Enqueue records that an update with timestamp ts has entered the stream.
func (t *CursorTracker) Enqueue(ts uint64) {
	t.mu.Lock()
	heap.Push(&t.unacked, ts)
	t.mu.Unlock()
}

// Ack records the acknowledgment of ts and returns the new frontier HighTS
// plus whether it advanced (callers persist a cursor only when it did).
func (t *CursorTracker) Ack(ts uint64) (highTS uint64, advanced bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	before := t.frontier()
	if t.acked == nil {
		t.acked = make(map[uint64]int)
	}
	t.acked[ts]++
	if ts > t.maxAcked {
		t.maxAcked = ts
	}
	// Pop every heap head whose ack has arrived.
	for len(t.unacked) > 0 {
		head := t.unacked[0]
		n := t.acked[head]
		if n == 0 {
			break
		}
		if n == 1 {
			delete(t.acked, head)
		} else {
			t.acked[head] = n - 1
		}
		heap.Pop(&t.unacked)
	}
	after := t.frontier()
	return after, after > before
}

// frontier is the current HighTS: everything below the smallest unacked
// timestamp, or everything acked when nothing is outstanding. Callers hold
// t.mu.
func (t *CursorTracker) frontier() uint64 {
	if len(t.unacked) > 0 {
		return t.unacked[0] - 1
	}
	return t.maxAcked
}

// tsHeap is a min-heap of uint64 timestamps.
type tsHeap []uint64

func (h tsHeap) Len() int           { return len(h) }
func (h tsHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h tsHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *tsHeap) Push(x any)        { *h = append(*h, x.(uint64)) }
func (h *tsHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
