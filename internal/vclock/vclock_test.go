package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(4)
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("v[%d] = %d, want 0", i, x)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vec{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatalf("mutating clone changed original: %v", v)
	}
	if Vec(nil).Clone() != nil {
		t.Fatalf("Clone(nil) should be nil")
	}
}

func TestMaxInto(t *testing.T) {
	v := Vec{1, 5, 3}
	v.MaxInto(Vec{2, 4, 9})
	want := Vec{2, 5, 9}
	if !v.Equal(want) {
		t.Fatalf("MaxInto = %v, want %v", v, want)
	}
}

func TestMinInto(t *testing.T) {
	v := Vec{1, 5, 3}
	v.MinInto(Vec{2, 4, 9})
	want := Vec{1, 4, 3}
	if !v.Equal(want) {
		t.Fatalf("MinInto = %v, want %v", v, want)
	}
}

func TestLEQ(t *testing.T) {
	cases := []struct {
		a, b Vec
		want bool
	}{
		{Vec{1, 2}, Vec{1, 2}, true},
		{Vec{1, 2}, Vec{2, 2}, true},
		{Vec{3, 2}, Vec{2, 2}, false},
		{Vec{}, Vec{1}, true},
		{Vec{0, 0}, Vec{}, true},  // zero-extension
		{Vec{0, 1}, Vec{}, false}, // zero-extension
	}
	for _, c := range cases {
		if got := c.a.LEQ(c.b); got != c.want {
			t.Errorf("%v.LEQ(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	v := Vec{7, 1, 4}
	if v.Max() != 7 {
		t.Errorf("Max = %d, want 7", v.Max())
	}
	if v.Min() != 1 {
		t.Errorf("Min = %d, want 1", v.Min())
	}
	if (Vec{}).Max() != 0 || (Vec{}).Min() != 0 {
		t.Errorf("empty Max/Min should be 0")
	}
}

func TestString(t *testing.T) {
	if s := (Vec{1, 2}).String(); s != "[1 2]" {
		t.Fatalf("String = %q", s)
	}
}

// randVecs yields two random equal-length vectors for property tests.
func randVecs(r *rand.Rand) (Vec, Vec) {
	n := 1 + r.Intn(8)
	a, b := New(n), New(n)
	for i := 0; i < n; i++ {
		a[i] = uint64(r.Intn(100))
		b[i] = uint64(r.Intn(100))
	}
	return a, b
}

// Property: a ≤ max(a,b), b ≤ max(a,b), min(a,b) ≤ a, min(a,b) ≤ b.
func TestQuickLattice(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVecs(r)
		mx := a.Clone()
		mx.MaxInto(b)
		mn := a.Clone()
		mn.MinInto(b)
		return a.LEQ(mx) && b.LEQ(mx) && mn.LEQ(a) && mn.LEQ(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxInto is commutative and idempotent.
func TestQuickMaxCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVecs(r)
		ab := a.Clone()
		ab.MaxInto(b)
		ba := b.Clone()
		ba.MaxInto(a)
		aa := ab.Clone()
		aa.MaxInto(ab)
		return ab.Equal(ba) && aa.Equal(ab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LEQ is a partial order (reflexive, antisymmetric, transitive).
func TestQuickPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVecs(r)
		c, _ := randVecs(r)
		if !a.LEQ(a) {
			return false
		}
		if a.LEQ(b) && b.LEQ(a) && !a.Equal(b) {
			return false
		}
		// transitivity over min/max constructions
		mn := a.Clone()
		mn.MinInto(b)
		mx := b.Clone()
		mx.MaxInto(c[:min(len(c), len(b))])
		return !mn.LEQ(b) || !b.LEQ(mx) || mn.LEQ(mx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
