// Package vclock provides fixed-width version and dependency vectors.
//
// A Vec has one entry per data center. Contrarian and Cure (internal/core)
// use Vecs for three related purposes described in Section 4 of the paper:
//
//   - VV: a partition's version vector (latest timestamp seen per DC),
//   - GSS: the Global Stable Snapshot, the entry-wise minimum of the VVs of
//     all partitions in a DC,
//   - DV: the dependency vector stored with each item version, and
//   - SV: the snapshot vector assigned to a read-only transaction.
//
// Vecs are plain slices; all operations either mutate the receiver in place
// (MaxInto, MinInto) or allocate (Clone). Callers own their synchronization.
package vclock

import (
	"fmt"
	"strings"
)

// Vec is a vector of timestamps indexed by data-center id.
type Vec []uint64

// New returns a zero vector with n entries.
func New(n int) Vec { return make(Vec, n) }

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	if v == nil {
		return nil
	}
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// CopyFrom overwrites v with src. The two vectors must have equal length.
func (v Vec) CopyFrom(src Vec) {
	copy(v, src)
}

// MaxInto sets each entry of v to the maximum of v and o.
// Vectors of unequal length are compared over the shorter prefix.
func (v Vec) MaxInto(o Vec) {
	n := min(len(v), len(o))
	for i := 0; i < n; i++ {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// MinInto sets each entry of v to the minimum of v and o.
func (v Vec) MinInto(o Vec) {
	n := min(len(v), len(o))
	for i := 0; i < n; i++ {
		if o[i] < v[i] {
			v[i] = o[i]
		}
	}
}

// LEQ reports whether v ≤ o entry-wise. Vectors of unequal length are
// compared as if the shorter were zero-extended.
func (v Vec) LEQ(o Vec) bool {
	for i := range v {
		var ov uint64
		if i < len(o) {
			ov = o[i]
		}
		if v[i] > ov {
			return false
		}
	}
	return true
}

// Equal reports whether v and o hold identical entries.
func (v Vec) Equal(o Vec) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Max returns the largest entry of v, or 0 for an empty vector.
func (v Vec) Max() uint64 {
	var m uint64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest entry of v, or 0 for an empty vector.
func (v Vec) Min() uint64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// String formats v as "[t0 t1 ...]".
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(']')
	return b.String()
}
