// Package theory is an executable model of Section 6 of the paper: the
// proof that latency-optimal ROTs inherently impose on writes a
// communication overhead that grows linearly with the number of clients
// (Theorem 1).
//
// The proof's structure is reproduced as a small discrete-event simulation
// specialized to the two-partition scenario of Figure 10. The canonical
// schedule is:
//
//	X0, Y0 visible  →  t1: every client in R issues ROT{x, y}
//	t2: px receives the x-reads, py receives the y-reads
//	t3: PUT(x, X1)  →  t4: PUT(y, Y1)  →  τY1: Y1 visible
//
// For each protocol model we can (a) record the communication string of
// messages px and py exchange before τY1 — the strings Lemma 1 proves must
// differ across reader sets — and (b) build the adversarial execution E*
// where a subset of reads is delayed past τY1, and check whether the late
// ROT still observes a causally consistent snapshot.
//
// Three models are provided:
//
//   - LatencyOptimal: the CC-LO/COPS-SNOW write path; the readers check
//     communicates reader identities, so communication grows with |R| and
//     E* stays consistent.
//   - LamportStrawMan: the straw man discussed after Theorem 1 — writes
//     carry only Lamport timestamps. Communication is independent of WHICH
//     clients read, Lemma 1's distinctness fails, and E* exhibits the
//     causal violation the proof constructs.
//   - NonOptimal: a Contrarian-like design; it escapes the theorem by
//     giving up the one-round property (reads carry snapshot information),
//     so writes need no reader communication at all.
package theory

import (
	"fmt"
	"sort"
	"strings"
)

// The fixed schedule of the §6 construction.
const (
	tVisible = 0  // X0, Y0 visible
	t1       = 10 // clients issue ROT{x,y}
	t2       = 20 // reads received by px and py
	t3       = 30 // PUT(x, X1) issued
	t4       = 40 // PUT(y, Y1) issued
	tauY1    = 50 // Y1 complete (visible)
	tLate    = 60 // delayed reads of E* arrive
)

// Model is one protocol under the §6 system model.
type Model interface {
	// Name identifies the model.
	Name() string
	// LatencyOptimal reports whether the model's ROTs are one-round,
	// one-version and nonblocking (the theorem's hypothesis).
	LatencyOptimal() bool
	// CommString runs the canonical execution E(R) with the given reader
	// set (client ids, subset of 0..n-1) and returns the concatenation of
	// the messages px and py exchange with each other before τY1 — the
	// string of Lemma 1.
	CommString(readers []int, n int) string
	// RunEStar builds the execution E* from E(R2) in which the clients in
	// R1\R2 are old readers: their x-reads arrive at t2 but their y-reads
	// are delayed past τY1. It returns the snapshot those clients observe.
	RunEStar(r1, r2 []int, n int) Snapshot
}

// Snapshot is what a delayed ROT of E* returned.
type Snapshot struct {
	X, Y string // version names: "X0"/"X1" and "Y0"/"Y1"
}

// Consistent reports whether the snapshot is causally consistent under
// X0 ; X1 ; Y1: the combination {X0, Y1} is the Figure 1 anomaly.
func (s Snapshot) Consistent() bool { return !(s.X == "X0" && s.Y == "Y1") }

func keyOf(readers []int) string {
	sorted := append([]int(nil), readers...)
	sort.Ints(sorted)
	parts := make([]string, len(sorted))
	for i, r := range sorted {
		parts[i] = fmt.Sprint(r)
	}
	return strings.Join(parts, ",")
}

// diff returns the elements of a not in b.
func diff(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out []int
	for _, x := range a {
		if !inB[x] {
			out = append(out, x)
		}
	}
	return out
}

//
// LatencyOptimal: the CC-LO write path.
//

// LatencyOptimal models COPS-SNOW: px records the readers of X0; the PUT
// of Y1 triggers a readers check whose response carries their identities.
type LatencyOptimal struct{}

// Name implements Model.
func (LatencyOptimal) Name() string { return "CC-LO (readers check)" }

// LatencyOptimal implements Model.
func (LatencyOptimal) LatencyOptimal() bool { return true }

// CommString returns the readers-check response: the identities of the old
// readers of x, which is exactly the reader set R. Its length grows
// linearly with |R| — and across the 2^|D| executions all strings are
// distinct, matching Lemma 1.
func (LatencyOptimal) CommString(readers []int, n int) string {
	// At t2 px records R as readers of X0. At t3 X1 supersedes X0, making
	// them old readers. At t4 py interrogates px; the response lists R.
	return "old-readers(x):{" + keyOf(readers) + "}"
}

// RunEStar: the delayed y-readers are in py's old-reader record (their
// identities arrived with the readers check), so py serves them Y0.
func (LatencyOptimal) RunEStar(r1, r2 []int, n int) Snapshot {
	old := diff(r1, r2)
	if len(old) == 0 {
		return Snapshot{X: "X1", Y: "Y1"}
	}
	// The old readers read X0 at t2 (before X1); their late y-read finds
	// their id in the old-reader record and is redirected to Y0.
	return Snapshot{X: "X0", Y: "Y0"}
}

//
// LamportStrawMan: timestamps only.
//

// LamportStrawMan models the straw man of §6.3's closing remark: every
// message carries only Lamport clock values. The clock advances by the
// NUMBER of reads, so two reader sets of equal size produce identical
// communication — Lemma 1's distinctness fails, and the E* construction
// yields a causally inconsistent snapshot.
type LamportStrawMan struct{}

// Name implements Model.
func (LamportStrawMan) Name() string { return "Lamport straw man" }

// LatencyOptimal implements Model.
func (LamportStrawMan) LatencyOptimal() bool { return true }

// CommString carries only clock values: px's clock after serving |R|
// reads, and the dependency timestamp of X1 sent with PUT(y, Y1).
func (LamportStrawMan) CommString(readers []int, n int) string {
	clockAfterReads := t2 + len(readers) // ticks once per read
	tsX1 := clockAfterReads + 1
	return fmt.Sprintf("dep(x):ts=%d;clock=%d", tsX1, clockAfterReads)
}

// RunEStar: py has no idea which clients read X0; the late y-read is
// served the latest version Y1, and the delayed clients assemble the
// anomalous snapshot {X0, Y1}.
func (LamportStrawMan) RunEStar(r1, r2 []int, n int) Snapshot {
	old := diff(r1, r2)
	if len(old) == 0 {
		return Snapshot{X: "X1", Y: "Y1"}
	}
	return Snapshot{X: "X0", Y: "Y1"} // violation
}

//
// NonOptimal: a Contrarian-like coordinator design.
//

// NonOptimal models a design that is NOT latency optimal: reads take an
// extra half round through a coordinator and carry a snapshot timestamp.
// Writes communicate nothing about readers; the snapshot carried by the
// read itself prevents the anomaly. This shows the theorem's overhead is
// specific to latency optimality, not to causal consistency.
type NonOptimal struct{}

// Name implements Model.
func (NonOptimal) Name() string { return "Contrarian (not latency-optimal)" }

// LatencyOptimal implements Model.
func (NonOptimal) LatencyOptimal() bool { return false }

// CommString is constant: the write path exchanges no reader information.
func (NonOptimal) CommString(readers []int, n int) string { return "" }

// RunEStar: the late y-read carries the ROT's snapshot timestamp (chosen
// at t1, before X1); py serves the freshest version within the snapshot,
// which is Y0.
func (NonOptimal) RunEStar(r1, r2 []int, n int) Snapshot {
	old := diff(r1, r2)
	if len(old) == 0 {
		return Snapshot{X: "X1", Y: "Y1"}
	}
	return Snapshot{X: "X0", Y: "Y0"}
}

//
// The theorem's counting argument.
//

// subsets enumerates all subsets of {0..n-1}.
func subsets(n int) [][]int {
	out := make([][]int, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		var s []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, i)
			}
		}
		out = append(out, s)
	}
	return out
}

// LemmaOneReport summarizes the distinctness check of Lemma 1 over all
// 2^n executions of E.
type LemmaOneReport struct {
	Model      string
	N          int  // |D|
	Executions int  // 2^N
	Distinct   int  // distinct communication strings
	Holds      bool // all strings pairwise distinct
	// WorstCaseBits is the longest communication string in bits; by the
	// pigeonhole argument of Lemma 2 it must be ≥ N when Holds.
	WorstCaseBits int
	// A witness collision when !Holds.
	CollisionA, CollisionB []int
}

// CheckLemmaOne enumerates every reader subset and checks whether the
// model's communication strings are pairwise distinct (Lemma 1). For a
// correct LO protocol they must be; for the straw man they collide.
func CheckLemmaOne(m Model, n int) LemmaOneReport {
	rep := LemmaOneReport{Model: m.Name(), N: n, Executions: 1 << n, Holds: true}
	seen := make(map[string][]int, 1<<n)
	for _, r := range subsets(n) {
		str := m.CommString(r, n)
		if bits := len(str) * 8; bits > rep.WorstCaseBits {
			rep.WorstCaseBits = bits
		}
		if prev, dup := seen[str]; dup {
			if rep.Holds {
				rep.CollisionA, rep.CollisionB = prev, r
			}
			rep.Holds = false
			continue
		}
		seen[str] = r
	}
	rep.Distinct = len(seen)
	return rep
}

// EStarReport records the outcome of the E* construction for a collision.
type EStarReport struct {
	Model      string
	R1, R2     []int
	Snapshot   Snapshot
	Consistent bool
}

// BuildEStar constructs E* for reader sets r1, r2 (r1\r2 nonempty) and
// reports the snapshot observed by the delayed readers.
func BuildEStar(m Model, r1, r2 []int, n int) EStarReport {
	s := m.RunEStar(r1, r2, n)
	return EStarReport{Model: m.Name(), R1: r1, R2: r2, Snapshot: s, Consistent: s.Consistent()}
}

// TheoremOneRow is one |D| step of the lower-bound growth table: the
// worst-case write-side communication of a correct LO protocol.
type TheoremOneRow struct {
	N             int
	Executions    int
	WorstCaseBits int // ≥ N by Lemma 2
}

// TheoremOneTable computes the worst-case communication for |D| = 1..n —
// the theoretical counterpart of the measured Figure 6.
func TheoremOneTable(m Model, maxN int) []TheoremOneRow {
	rows := make([]TheoremOneRow, 0, maxN)
	for n := 1; n <= maxN; n++ {
		rep := CheckLemmaOne(m, n)
		rows = append(rows, TheoremOneRow{N: n, Executions: rep.Executions, WorstCaseBits: rep.WorstCaseBits})
	}
	return rows
}
