package theory

import (
	"testing"
	"testing/quick"
)

func TestSubsets(t *testing.T) {
	ss := subsets(3)
	if len(ss) != 8 {
		t.Fatalf("subsets(3) = %d sets, want 8", len(ss))
	}
	seen := map[string]bool{}
	for _, s := range ss {
		k := keyOf(s)
		if seen[k] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[k] = true
	}
}

func TestDiff(t *testing.T) {
	got := diff([]int{1, 2, 3}, []int{2})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("diff = %v", got)
	}
}

// Lemma 1 for the latency-optimal model: every reader subset yields a
// distinct communication string.
func TestLemmaOneHoldsForLO(t *testing.T) {
	for n := 1; n <= 10; n++ {
		rep := CheckLemmaOne(LatencyOptimal{}, n)
		if !rep.Holds {
			t.Fatalf("|D|=%d: LO model produced a collision: %v vs %v", n, rep.CollisionA, rep.CollisionB)
		}
		if rep.Distinct != 1<<n {
			t.Fatalf("|D|=%d: %d distinct strings, want %d", n, rep.Distinct, 1<<n)
		}
	}
}

// Lemma 2: with all 2^|D| strings distinct, the worst case is at least |D|
// bits.
func TestLemmaTwoLowerBound(t *testing.T) {
	for n := 1; n <= 12; n++ {
		rep := CheckLemmaOne(LatencyOptimal{}, n)
		if rep.WorstCaseBits < n {
			t.Fatalf("|D|=%d: worst case %d bits < |D|", n, rep.WorstCaseBits)
		}
	}
}

// Theorem 1's growth: the worst-case communication grows (at least)
// linearly in |D|.
func TestTheoremOneLinearGrowth(t *testing.T) {
	rows := TheoremOneTable(LatencyOptimal{}, 10)
	for i := 1; i < len(rows); i++ {
		if rows[i].WorstCaseBits <= rows[i-1].WorstCaseBits {
			t.Fatalf("worst-case bits not increasing: %+v", rows)
		}
	}
	// Linearity: bits per client bounded on both sides.
	last := rows[len(rows)-1]
	perClient := float64(last.WorstCaseBits) / float64(last.N)
	if perClient < 1 || perClient > 64 {
		t.Fatalf("bits per client = %v, expected linear-scale constant", perClient)
	}
}

// The straw man collides: Lemma 1 fails for same-size reader sets.
func TestStrawManCollides(t *testing.T) {
	rep := CheckLemmaOne(LamportStrawMan{}, 4)
	if rep.Holds {
		t.Fatal("straw man must produce colliding communication strings")
	}
	if rep.CollisionA == nil && rep.CollisionB == nil {
		t.Fatal("no collision witness recorded")
	}
	if len(rep.CollisionA) != len(rep.CollisionB) {
		t.Fatalf("straw-man collisions must have equal size: %v vs %v", rep.CollisionA, rep.CollisionB)
	}
}

// E* on the straw man's collision exhibits the causal violation the proof
// of Lemma 1 constructs.
func TestEStarViolationForStrawMan(t *testing.T) {
	rep := CheckLemmaOne(LamportStrawMan{}, 4)
	r1, r2 := rep.CollisionA, rep.CollisionB
	if len(diff(r1, r2)) == 0 {
		r1, r2 = r2, r1
	}
	es := BuildEStar(LamportStrawMan{}, r1, r2, 4)
	if es.Consistent {
		t.Fatalf("straw man E* returned a consistent snapshot %v; the proof requires a violation", es.Snapshot)
	}
	if es.Snapshot.X != "X0" || es.Snapshot.Y != "Y1" {
		t.Fatalf("expected the {X0, Y1} anomaly, got %+v", es.Snapshot)
	}
}

// E* on the LO model stays consistent: the communicated reader identities
// let py redirect the delayed read.
func TestEStarConsistentForLO(t *testing.T) {
	es := BuildEStar(LatencyOptimal{}, []int{0, 1, 2}, []int{1}, 4)
	if !es.Consistent {
		t.Fatalf("LO model E* violated consistency: %+v", es.Snapshot)
	}
	if es.Snapshot.Y != "Y0" {
		t.Fatalf("old readers must be served Y0, got %+v", es.Snapshot)
	}
}

// The non-optimal (Contrarian-like) model stays consistent with ZERO
// write-side communication — the theorem's overhead is specific to LO.
func TestNonOptimalEscapesTheTheorem(t *testing.T) {
	m := NonOptimal{}
	if m.LatencyOptimal() {
		t.Fatal("model must not claim latency optimality")
	}
	rep := CheckLemmaOne(m, 6)
	if rep.Holds {
		t.Fatal("non-LO model should NOT satisfy Lemma 1 distinctness (it communicates nothing)")
	}
	if rep.WorstCaseBits != 0 {
		t.Fatalf("non-LO write-side communication = %d bits, want 0", rep.WorstCaseBits)
	}
	es := BuildEStar(m, []int{0, 2}, []int{}, 4)
	if !es.Consistent {
		t.Fatalf("non-LO model must stay consistent: %+v", es.Snapshot)
	}
}

// Property: for any pair of subsets, E* under the LO model is consistent.
func TestQuickEStarAlwaysConsistentForLO(t *testing.T) {
	f := func(mask1, mask2 uint8) bool {
		const n = 8
		var r1, r2 []int
		for i := 0; i < n; i++ {
			if mask1&(1<<i) != 0 {
				r1 = append(r1, i)
			}
			if mask2&(1<<i) != 0 {
				r2 = append(r2, i)
			}
		}
		return BuildEStar(LatencyOptimal{}, r1, r2, n).Consistent
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the straw man violates consistency exactly when there is at
// least one delayed old reader.
func TestQuickStrawManViolationCondition(t *testing.T) {
	f := func(mask1, mask2 uint8) bool {
		const n = 8
		var r1, r2 []int
		for i := 0; i < n; i++ {
			if mask1&(1<<i) != 0 {
				r1 = append(r1, i)
			}
			if mask2&(1<<i) != 0 {
				r2 = append(r2, i)
			}
		}
		es := BuildEStar(LamportStrawMan{}, r1, r2, n)
		wantViolation := len(diff(r1, r2)) > 0
		return es.Consistent != wantViolation
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotConsistent(t *testing.T) {
	if (Snapshot{X: "X0", Y: "Y1"}).Consistent() {
		t.Fatal("{X0,Y1} is the anomaly")
	}
	for _, s := range []Snapshot{{X: "X0", Y: "Y0"}, {X: "X1", Y: "Y0"}, {X: "X1", Y: "Y1"}} {
		if !s.Consistent() {
			t.Fatalf("%+v should be consistent", s)
		}
	}
}
