package bench

import (
	"testing"

	"repro/internal/wal"
)

func walView(appends, fsyncs uint64) wal.StatsView {
	return wal.StatsView{Appends: appends, Fsyncs: fsyncs}
}

// TestSpillWarning pins the spill-rate alarm's threshold behaviour: quiet
// under the threshold (including the zero-dispatch corner), loud above it.
func TestSpillWarning(t *testing.T) {
	point := func(msgs, spills uint64) Point {
		return Point{Transport: TransportStats{Msgs: msgs, HandlerSpills: spills}}
	}
	cases := []struct {
		name string
		p    Point
		want string
	}{
		{"no-traffic", point(0, 0), ""},
		{"no-spills", point(100_000, 0), ""},
		{"at-threshold", point(100_000, 1000), ""}, // exactly 1%: not yet alarming
		{"above-threshold", point(100_000, 2500), "!2.5%"},
		{"saturated", point(1000, 1000), "!100.0%"},
		// Spills with zero recorded dispatches (stats raced a quiet window):
		// SpillFrac treats it as no signal rather than dividing by zero.
		{"spills-no-msgs", point(0, 7), ""},
	}
	for _, tc := range cases {
		if got := spillWarning(tc.p); got != tc.want {
			t.Errorf("%s: spillWarning = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestWALDeltaAmortization checks the bench-facing group-commit stat.
func TestWALDeltaAmortization(t *testing.T) {
	p := walDelta(
		walView(100, 90),
		walView(1300, 390),
		"sync",
	)
	if p.Appends != 1200 || p.Fsyncs != 300 {
		t.Fatalf("delta: %+v", p)
	}
	if p.AppendsPerFsync != 4.0 {
		t.Fatalf("AppendsPerFsync = %v, want 4.0", p.AppendsPerFsync)
	}
	if z := walDelta(walView(5, 5), walView(5, 5), "async"); z.AppendsPerFsync != 0 {
		t.Fatalf("idle window AppendsPerFsync = %v, want 0", z.AppendsPerFsync)
	}
}
