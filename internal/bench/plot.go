package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// PlotSeries renders throughput-vs-average-ROT-latency curves as an ASCII
// chart in the style of the paper's figures: throughput on the x axis,
// latency on a log-scale y axis, one symbol per series.
func PlotSeries(out io.Writer, title string, series []Series) {
	const (
		width  = 68
		height = 16
	)
	symbols := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	var maxT float64
	minL, maxL := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			if p.ROT.Count == 0 {
				continue
			}
			maxT = math.Max(maxT, p.Throughput)
			l := float64(p.ROT.Mean)
			minL = math.Min(minL, l)
			maxL = math.Max(maxL, l)
		}
	}
	if maxT == 0 || math.IsInf(minL, 1) {
		fmt.Fprintf(out, "%s: no data to plot\n", title)
		return
	}
	if minL == maxL {
		maxL = minL * 2
	}
	logMin, logMax := math.Log(minL), math.Log(maxL)

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		sym := symbols[si%len(symbols)]
		for _, p := range s.Points {
			if p.ROT.Count == 0 {
				continue
			}
			x := int(p.Throughput / maxT * float64(width-1))
			y := int((math.Log(float64(p.ROT.Mean)) - logMin) / (logMax - logMin) * float64(height-1))
			row := height - 1 - y // y axis grows upward
			if x >= 0 && x < width && row >= 0 && row < height {
				grid[row][x] = sym
			}
		}
	}

	fmt.Fprintf(out, "\n%s\n", title)
	fmt.Fprintf(out, "avg ROT latency (log) vs throughput\n")
	for i, row := range grid {
		frac := float64(height-1-i) / float64(height-1)
		lat := time.Duration(math.Exp(logMin + frac*(logMax-logMin)))
		label := ""
		if i == 0 || i == height/2 || i == height-1 {
			label = lat.Round(10 * time.Microsecond).String()
		}
		fmt.Fprintf(out, "%10s |%s|\n", label, row)
	}
	fmt.Fprintf(out, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(out, "%10s 0%sthroughput: %.0f op/s\n", "", strings.Repeat(" ", width-30), maxT)
	for si, s := range series {
		fmt.Fprintf(out, "%12c %s\n", symbols[si%len(symbols)], s.Label)
	}
}
