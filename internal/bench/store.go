package bench

import (
	"fmt"
	"hash/maphash"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	rtmetrics "runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/mvstore"
	"repro/internal/vclock"
)

// This file is the storage-engine figure: the generic sharded engine
// (internal/store, lock-free reads, arena-pooled versions) against the
// pre-refactor locked store, vendored below, at multi-million-key scale.
// Same machine, same trace, same process — fill throughput, read
// throughput with and without concurrent writers, allocation volume, GC
// pause tail, live heap, and RSS.

// kvStore is the surface both implementations expose to the driver.
type kvStore interface {
	Install(key string, v mvstore.Version) bool
	ReadLatest(key string) (mvstore.Version, bool)
	ReadAtSnapshot(key string, sv vclock.Vec) (mvstore.Version, bool)
	Keys() int
}

// lockedStore is the pre-refactor mvstore, vendored as the benchmark
// baseline: 64 fixed shards, one RWMutex each, chains mutated in place
// under the lock, every value individually allocated. Reads and iteration
// take the read lock; installs take the write lock.
type lockedStore struct {
	shards      [64]lockedShard
	maxVersions int
	seed        maphash.Seed
}

type lockedShard struct {
	mu sync.RWMutex
	m  map[string]*lockedChain
}

type lockedChain struct {
	versions []mvstore.Version
	trimmed  bool
}

func newLockedStore(maxVersions int) *lockedStore {
	s := &lockedStore{maxVersions: maxVersions, seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*lockedChain)
	}
	return s
}

func (s *lockedStore) shard(key string) *lockedShard {
	return &s.shards[maphash.String(s.seed, key)%64]
}

func (s *lockedStore) Install(key string, v mvstore.Version) bool {
	// The old store did not copy values into arenas; keep that behavior so
	// the baseline's allocation profile is the pre-refactor one. Values
	// handed to the benchmark are already private per install.
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c := sh.m[key]
	if c == nil {
		c = &lockedChain{}
		sh.m[key] = c
	}
	i := len(c.versions)
	for i > 0 && v.Before(&c.versions[i-1]) {
		i--
	}
	if i > 0 && c.versions[i-1].TS == v.TS && c.versions[i-1].SrcDC == v.SrcDC {
		return i == len(c.versions)
	}
	c.versions = append(c.versions, mvstore.Version{})
	copy(c.versions[i+1:], c.versions[i:])
	c.versions[i] = v
	newest := i == len(c.versions)-1
	if len(c.versions) > s.maxVersions {
		drop := len(c.versions) - s.maxVersions
		c.versions = append(c.versions[:0:0], c.versions[drop:]...)
		c.trimmed = true
	}
	return newest
}

func (s *lockedStore) ReadLatest(key string) (mvstore.Version, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c := sh.m[key]
	if c == nil || len(c.versions) == 0 {
		return mvstore.Version{}, false
	}
	return c.versions[len(c.versions)-1], true
}

func (s *lockedStore) ReadAtSnapshot(key string, sv vclock.Vec) (mvstore.Version, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c := sh.m[key]
	if c == nil || len(c.versions) == 0 {
		return mvstore.Version{}, false
	}
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].DV.LEQ(sv) {
			return c.versions[i], true
		}
	}
	if c.trimmed {
		return c.versions[0], true
	}
	return mvstore.Version{}, false
}

func (s *lockedStore) Keys() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// engineStore adapts the engine-backed mvstore to the benchmark surface.
type engineStore struct{ *mvstore.Store }

// StorePhase is one measured phase of the store figure.
type StorePhase struct {
	Name      string
	Ops       uint64
	OpsPerSec float64
	// AllocsPerOp counts heap objects per operation (the GC-mark-cost
	// driver the engine's slabs and arenas amortize away);
	// AllocBytesPerOp counts bytes. The engine trades slightly more bytes
	// on writes (it copies values into arenas instead of retaining the
	// caller's buffer) for orders of magnitude fewer objects.
	AllocsPerOp     float64
	AllocBytesPerOp float64
}

// StoreStats is one implementation's full store-figure measurement.
type StoreStats struct {
	Impl   string
	Keys   int
	Shards int // 0 = auto (engine); the baseline is fixed at 64
	Phases []StorePhase
	// GCPauseP99 is the 99th-percentile stop-the-world GC pause observed
	// across this implementation's phases.
	GCPauseP99 time.Duration
	// LiveHeapBytes is HeapAlloc after a forced GC with the filled store
	// live; RSSBytes is the OS-resident set at the same point.
	LiveHeapBytes uint64
	RSSBytes      uint64
}

// gcPauses reads the runtime's GC pause histogram.
func gcPauses() *rtmetrics.Float64Histogram {
	samples := []rtmetrics.Sample{{Name: "/gc/pauses:seconds"}}
	rtmetrics.Read(samples)
	if samples[0].Value.Kind() != rtmetrics.KindFloat64Histogram {
		return nil
	}
	return samples[0].Value.Float64Histogram()
}

// pauseP99 computes the p99 of the pause-histogram delta b−a.
func pauseP99(a, b *rtmetrics.Float64Histogram) time.Duration {
	if a == nil || b == nil {
		return 0
	}
	counts := make([]uint64, len(b.Counts))
	var total uint64
	for i := range counts {
		c := b.Counts[i]
		if i < len(a.Counts) {
			c -= a.Counts[i]
		}
		counts[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	target := total - total/100 // ceil-ish p99 rank
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			// Buckets[i+1] is the bucket's upper bound in seconds.
			if i+1 < len(b.Buckets) {
				return time.Duration(b.Buckets[i+1] * float64(time.Second))
			}
			return time.Duration(b.Buckets[len(b.Buckets)-1] * float64(time.Second))
		}
	}
	return 0
}

// rssBytes reads the process resident set from /proc/self/statm (0 where
// unsupported).
func rssBytes() uint64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	f := strings.Fields(string(b))
	if len(f) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}

// storeKeyName formats the i'th benchmark key. Keys are pregenerated so key
// formatting is outside the measured loop.
func storeKeyName(i int) string { return "key-" + strconv.Itoa(i) }

// runStorePhases drives one implementation through the figure's phases and
// returns its measurement. workers is the goroutine count per phase.
func runStorePhases(impl string, st kvStore, keys, workers, valueSize int) StoreStats {
	stats := StoreStats{Impl: impl, Keys: keys}
	names := make([]string, keys)
	for i := range names {
		names[i] = storeKeyName(i)
	}
	phase := func(name string, ops int, fn func(w, lo, hi int)) {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		var wg sync.WaitGroup
		per := (ops + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * per
			hi := min(lo+per, ops)
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				fn(w, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		dur := time.Since(start)
		runtime.ReadMemStats(&m1)
		stats.Phases = append(stats.Phases, StorePhase{
			Name:            name,
			Ops:             uint64(ops),
			OpsPerSec:       float64(ops) / dur.Seconds(),
			AllocsPerOp:     float64(m1.Mallocs-m0.Mallocs) / float64(ops),
			AllocBytesPerOp: float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops),
		})
	}

	pauses0 := gcPauses()

	// Every install carries a freshly allocated value, like the decoded wire
	// buffer the real write path hands the store: the baseline retains it
	// verbatim, the engine copies it into an arena and lets it die young.
	// Sharing one buffer across installs would hand the baseline the whole
	// value population for free.

	// Fill: every key once, ascending timestamps per worker stripe.
	phase("fill", keys, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			ts := uint64(i + 1)
			st.Install(names[i], mvstore.Version{Value: make([]byte, valueSize), TS: ts, DV: vclock.Vec{ts, 0}})
		}
	})

	// Overwrite: a second version for 10% of keys — exercises chain
	// insert/extend on warm keys rather than map growth.
	over := keys / 10
	phase("overwrite", over, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			k := i * 10 % keys
			ts := uint64(keys + i + 1)
			st.Install(names[k], mvstore.Version{Value: make([]byte, valueSize), TS: ts, DV: vclock.Vec{ts, 0}})
		}
	})

	// Read-latest: uniform random point reads, no writers.
	reads := keys * 2
	phase("read-latest", reads, func(w, lo, hi int) {
		r := rand.New(rand.NewSource(int64(w)*7919 + 1))
		for i := lo; i < hi; i++ {
			if _, ok := st.ReadLatest(names[r.Intn(keys)]); !ok {
				panic("benchmark read missed a filled key")
			}
		}
	})

	// Snapshot reads: chain scans under the visibility rule.
	phase("read-snapshot", reads, func(w, lo, hi int) {
		r := rand.New(rand.NewSource(int64(w)*104729 + 1))
		sv := vclock.Vec{uint64(2 * keys), uint64(2 * keys)}
		for i := lo; i < hi; i++ {
			if _, ok := st.ReadAtSnapshot(names[r.Intn(keys)], sv); !ok {
				panic("benchmark snapshot read missed a filled key")
			}
		}
	})

	// Read-under-write: the contended case the refactor targets — every
	// worker but one reads while the last streams installs over hot keys.
	phase("read-under-write", reads, func(w, lo, hi int) {
		if w == workers-1 && workers > 1 {
			for i := lo; i < hi; i++ {
				k := i % (keys / 100)
				ts := uint64(2*keys + i + 1)
				st.Install(names[k], mvstore.Version{Value: make([]byte, valueSize), TS: ts, DV: vclock.Vec{ts, 0}})
			}
			return
		}
		r := rand.New(rand.NewSource(int64(w)*31337 + 1))
		for i := lo; i < hi; i++ {
			st.ReadLatest(names[r.Intn(keys)])
		}
	})

	stats.GCPauseP99 = pauseP99(pauses0, gcPauses())

	// Footprint with the filled store live.
	runtime.GC()
	debug.FreeOSMemory()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	stats.LiveHeapBytes = m.HeapAlloc
	stats.RSSBytes = rssBytes()
	if got := st.Keys(); got != keys {
		panic(fmt.Sprintf("store bench: %d keys present, want %d", got, keys))
	}
	return stats
}

// FigureStore measures the engine-backed store against the vendored
// pre-refactor baseline at `keys` scale and returns one Series per
// implementation. shards parameterizes the engine (0 = auto); the baseline
// always runs its historical fixed 64. workers ≤ 0 auto-sizes.
func FigureStore(keys, shards, workers int, out io.Writer) ([]Series, error) {
	if keys <= 0 {
		keys = 10_000_000
	}
	if workers <= 0 {
		workers = max(4, runtime.GOMAXPROCS(0))
	}
	const valueSize = 64
	const maxVersions = 4
	fmt.Fprintf(out, "store figure: %d keys, value %dB, %d workers\n", keys, valueSize, workers)

	var series []Series
	run := func(impl string, st kvStore, shards int) {
		s := runStorePhases(impl, st, keys, workers, valueSize)
		s.Shards = shards
		pt := Point{System: impl, Store: &s}
		series = append(series, Series{Label: "store/" + impl, Points: []Point{pt}})
		for _, ph := range s.Phases {
			fmt.Fprintf(out, "  %-16s %-18s %12.0f ops/s  %6.3f allocs/op  %8.1f B/op\n",
				impl, ph.Name, ph.OpsPerSec, ph.AllocsPerOp, ph.AllocBytesPerOp)
		}
		fmt.Fprintf(out, "  %-16s gc-pause p99 %v, live heap %.1f MiB, RSS %.1f MiB\n",
			impl, s.GCPauseP99, float64(s.LiveHeapBytes)/(1<<20), float64(s.RSSBytes)/(1<<20))
	}

	// Baseline first so its RSS high-water mark is not inflated by pages
	// the engine run already faulted in.
	base := newLockedStore(maxVersions)
	run("locked-baseline", base, 64)
	releaseStore(&base.shards)

	eng := engineStore{mvstore.NewSharded(maxVersions, shards)}
	run("engine", eng, shards)

	sort.Slice(series, func(i, j int) bool { return series[i].Label < series[j].Label })
	return series, nil
}

// releaseStore drops the baseline's memory and returns it to the OS before
// the next implementation is measured.
func releaseStore(shards *[64]lockedShard) {
	for i := range shards {
		shards[i].m = nil
	}
	runtime.GC()
	debug.FreeOSMemory()
}
