package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// AblationRow is one clock configuration's remote-visibility measurement.
type AblationRow struct {
	Clock      string
	Visibility metrics.Summary // put in DC0 → visible in DC1
}

// AblationClockFreshness quantifies Section 4's "Freshness of the
// snapshots" design discussion: Contrarian runs on HLCs because with plain
// logical clocks the Global Stable Snapshot only advances when every
// partition keeps writing — a single laggard pins it and remote visibility
// suffers. The ablation runs the same engine with both clock modes and
// measures how long a DC0 write takes to become visible to a DC1 reader,
// while a background writer keeps all partitions mildly active (without
// background traffic, logical clocks would never converge at all; see
// cluster.TestLogicalClockLaggardPinsGSS).
func AblationClockFreshness(o Opts, samples int) ([]AblationRow, error) {
	fmt.Fprintf(o.Out, "\n=== Ablation: GSS freshness, HLC vs logical clocks (2 DCs) ===\n")
	fmt.Fprintf(o.Out, "%-10s %12s %12s %12s\n", "clock", "vis-avg", "vis-p99", "vis-max")
	var rows []AblationRow
	for _, mode := range []struct {
		name  string
		clock core.ClockMode
	}{{"HLC", core.ClockHLC}, {"Logical", core.ClockLogical}} {
		sum, err := measureVisibility(o, mode.clock, samples)
		if err != nil {
			return rows, fmt.Errorf("ablation %s: %w", mode.name, err)
		}
		rows = append(rows, AblationRow{Clock: mode.name, Visibility: sum})
		fmt.Fprintf(o.Out, "%-10s %12v %12v %12v\n", mode.name,
			sum.Mean.Round(time.Millisecond), sum.P99.Round(time.Millisecond), sum.Max.Round(time.Millisecond))
	}
	return rows, nil
}

func measureVisibility(o Opts, clock core.ClockMode, samples int) (metrics.Summary, error) {
	lat := transport.DefaultLatency()
	c, err := cluster.Start(cluster.Config{
		Protocol:      cluster.Contrarian,
		DCs:           2,
		Partitions:    o.Partitions,
		Latency:       &lat,
		MaxSkew:       o.MaxSkew,
		ClockOverride: &clock,
	})
	if err != nil {
		return metrics.Summary{}, err
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(samples)*5*time.Second+30*time.Second)
	defer cancel()
	writer, err := c.NewClient(0)
	if err != nil {
		return metrics.Summary{}, err
	}
	defer writer.Close()
	reader, err := c.NewClient(1)
	if err != nil {
		return metrics.Summary{}, err
	}
	defer reader.Close()

	// Background writer touching every partition keeps logical clocks
	// moving; with HLCs physical time does this for free.
	bgCtx, bgCancel := context.WithCancel(ctx)
	defer bgCancel()
	bg, err := c.NewClient(0)
	if err != nil {
		return metrics.Summary{}, err
	}
	defer bg.Close()
	// A deliberately slow background writer (one partition every 10 ms)
	// models a mostly-idle system: logical clocks advance only on writes,
	// so the GSS lags by up to a full round over the partitions, while
	// HLCs stay fresh regardless.
	go func() {
		i := 0
		for bgCtx.Err() == nil {
			key := fmt.Sprintf("bg-%d", i%(o.Partitions*4))
			_, _ = bg.Put(bgCtx, key, []byte("tick"))
			i++
			time.Sleep(10 * time.Millisecond)
		}
	}()

	hist := metrics.NewHistogram()
	for i := 0; i < samples; i++ {
		key := fmt.Sprintf("vis-%d", i)
		want := []byte(fmt.Sprintf("v%d", i))
		if _, err := writer.Put(ctx, key, want); err != nil {
			return metrics.Summary{}, err
		}
		start := time.Now()
		for {
			got, err := reader.Get(ctx, key)
			if err != nil {
				return metrics.Summary{}, err
			}
			if string(got) == string(want) {
				hist.Record(time.Since(start))
				break
			}
			if time.Since(start) > 10*time.Second {
				return metrics.Summary{}, fmt.Errorf("sample %d never became visible", i)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	return hist.Snapshot(), nil
}
