package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Opts scales a figure reproduction. The zero value is NOT usable; start
// from DefaultOpts (laptop-scale, minutes) or PaperOpts (paper-scale,
// hours).
type Opts struct {
	Partitions       int
	KeysPerPartition int
	Clients          []int // clients per DC, the load sweep
	Duration         time.Duration
	Warmup           time.Duration
	MaxSkew          time.Duration
	Out              io.Writer
}

// DefaultOpts runs each figure in minutes on one machine while preserving
// the paper's relative effects.
func DefaultOpts(out io.Writer) Opts {
	return Opts{
		Partitions:       8,
		KeysPerPartition: 20_000,
		Clients:          []int{4, 16, 64, 192},
		Duration:         4 * time.Second,
		Warmup:           time.Second,
		MaxSkew:          time.Millisecond,
		Out:              out,
	}
}

// PaperOpts mirrors the paper's §5.2 testbed parameters (32 partitions,
// 1M keys/partition, 90 s runs). Expect hours of runtime.
func PaperOpts(out io.Writer) Opts {
	return Opts{
		Partitions:       32,
		KeysPerPartition: 1_000_000,
		Clients:          []int{10, 60, 120, 240, 360, 560},
		Duration:         90 * time.Second,
		Warmup:           10 * time.Second,
		MaxSkew:          time.Millisecond,
		Out:              out,
	}
}

func (o Opts) defaultWorkload() workload.Config {
	wl := workload.Default(o.Partitions, o.KeysPerPartition)
	return wl
}

// SpillWarnFrac is the handler-pool overflow rate above which a load point
// is flagged: past it, a meaningful share of dispatches ran on spilled
// goroutines, so the figure's latencies include pool-saturation scheduling
// noise and the worker pool should be considered undersized for the load.
const SpillWarnFrac = 0.01

// spillWarning renders the spill column for one load point: empty while
// overflow is rare, "!N.N%" once HandlerOverflow exceeds SpillWarnFrac of
// the window's dispatches.
func spillWarning(p Point) string {
	frac := p.Transport.SpillFrac()
	if frac <= SpillWarnFrac {
		return ""
	}
	return fmt.Sprintf("!%.1f%%", frac*100)
}

func (o Opts) printHeader(title string) {
	fmt.Fprintf(o.Out, "\n=== %s ===\n", title)
	fmt.Fprintf(o.Out, "%-28s %8s %12s %10s %10s %10s %10s %8s %8s %9s %9s %7s\n",
		"system", "clients", "tput(op/s)", "rot-avg", "rot-p99", "put-avg", "put-p99",
		"errs", "msg/fl", "fl-p99", "writev", "spill")
}

func (o Opts) printSeries(s Series) {
	for _, p := range s.Points {
		fmt.Fprintf(o.Out, "%-28s %8d %12.0f %10v %10v %10v %10v %8d %8.1f %9v %9s %7s\n",
			p.System, p.ClientsPerDC, p.Throughput,
			p.ROT.Mean.Round(10*time.Microsecond), p.ROT.P99.Round(10*time.Microsecond),
			p.PUT.Mean.Round(10*time.Microsecond), p.PUT.P99.Round(10*time.Microsecond),
			p.Errors, p.Transport.MsgsPerFlush,
			p.Transport.FlushP99Delay.Round(10*time.Microsecond),
			fmtBytes(p.Transport.WritevBytes), spillWarning(p))
	}
}

// fmtBytes renders a byte count compactly for the figure tables.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func (o Opts) sweepAndPrint(sys System, wl workload.Config) (Series, error) {
	s, err := Sweep(sys, wl, o.Clients, o.Duration, o.Warmup)
	if err != nil {
		return s, err
	}
	o.printSeries(s)
	return s, nil
}

// Figure4 reproduces the paper's Figure 4: Contrarian 1 1/2 rounds vs
// 2 rounds vs Cure, 2 DCs, default workload — throughput vs average ROT
// latency. Expected shape: Cure's latency floor sits ≈3× above Contrarian
// at low load (clock skew blocking); the 2-round variant is slightly slower
// at low load but reaches a slightly higher peak throughput.
func Figure4(o Opts) ([]Series, error) {
	o.printHeader("Figure 4: Contrarian design (2 DCs, default workload)")
	wl := o.defaultWorkload()
	var out []Series
	for _, proto := range []cluster.Protocol{cluster.ContrarianTwoRound, cluster.Contrarian, cluster.Cure} {
		s, err := o.sweepAndPrint(System{
			Protocol: proto, DCs: 2, Partitions: o.Partitions, MaxSkew: o.MaxSkew,
		}, wl)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure5 reproduces Figure 5: Contrarian vs CC-LO under the default
// workload in 1-DC and 2-DC deployments; the harness prints both average
// (5a) and 99th-percentile (5b) ROT latencies, plus PUT latencies (the
// "order of magnitude" aside of §5.2).
func Figure5(o Opts) ([]Series, error) {
	o.printHeader("Figure 5: Contrarian vs CC-LO (default workload, 1 and 2 DCs)")
	wl := o.defaultWorkload()
	var out []Series
	for _, dcs := range []int{1, 2} {
		for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO} {
			s, err := o.sweepAndPrint(System{
				Protocol: proto, DCs: dcs, Partitions: o.Partitions, MaxSkew: o.MaxSkew,
			}, wl)
			if err != nil {
				return out, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// Figure6 reproduces Figure 6: the ROT ids collected per readers check in
// CC-LO (cumulative and distinct) as a function of the number of clients,
// single DC, default workload. The paper's claim: both grow linearly with
// the client count (matching the Section 6 lower bound), with cumulative a
// small multiple of distinct.
func Figure6(o Opts) (Series, error) {
	fmt.Fprintf(o.Out, "\n=== Figure 6: ROT ids per readers check (CC-LO, 1 DC) ===\n")
	fmt.Fprintf(o.Out, "%8s %12s %12s %12s %12s %12s %8s\n",
		"clients", "checks", "distinct", "cumulative", "keys/chk", "parts/chk", "fenced")
	wl := o.defaultWorkload()
	sys := System{Protocol: cluster.CCLO, DCs: 1, Partitions: o.Partitions, MaxSkew: o.MaxSkew}
	s, err := Sweep(sys, wl, o.Clients, o.Duration, o.Warmup)
	if err != nil {
		return s, err
	}
	for _, p := range s.Points {
		fmt.Fprintf(o.Out, "%8d %12d %12.1f %12.1f %12.1f %12.1f %8d\n",
			p.ClientsPerDC, p.Lo.Checks, p.Lo.AvgDistinct, p.Lo.AvgCumulative,
			p.Lo.AvgKeys, p.Lo.AvgPartitions, p.Lo.FenceRetries)
	}
	return s, nil
}

// Figure7 reproduces Figure 7: the write-ratio sweep w ∈ {0.01, 0.05, 0.1}
// for both systems in 1-DC (7a) and 2-DC (7b) deployments. Expected shape:
// Contrarian's throughput grows with w while CC-LO's degrades (more
// frequent readers checks); CC-LO is competitive only at w=0.01 in 1 DC.
func Figure7(o Opts, dcs int) ([]Series, error) {
	o.printHeader(fmt.Sprintf("Figure 7: write-ratio sweep (%d DC)", dcs))
	var out []Series
	for _, w := range []float64{0.01, 0.05, 0.1} {
		wl := o.defaultWorkload()
		wl.WriteRatio = w
		for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO} {
			s, err := Sweep(System{
				Protocol: proto, DCs: dcs, Partitions: o.Partitions, MaxSkew: o.MaxSkew,
			}, wl, o.Clients, o.Duration, o.Warmup)
			if err != nil {
				return out, err
			}
			s.Label = fmt.Sprintf("%s w=%.2f", s.Label, w)
			for i := range s.Points {
				s.Points[i].System = s.Label
			}
			o.printSeries(s)
			out = append(out, s)
		}
	}
	return out, nil
}

// Figure8 reproduces Figure 8: the skew sweep z ∈ {0, 0.8, 0.99}, 1 DC.
// Expected shape: skew barely moves Contrarian but hurts CC-LO (longer
// dependency chains make readers checks heavier).
func Figure8(o Opts) ([]Series, error) {
	o.printHeader("Figure 8: key-popularity skew sweep (1 DC)")
	var out []Series
	for _, z := range []float64{0, 0.8, 0.99} {
		wl := o.defaultWorkload()
		wl.Zipf = z
		for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO} {
			s, err := Sweep(System{
				Protocol: proto, DCs: 1, Partitions: o.Partitions, MaxSkew: o.MaxSkew,
			}, wl, o.Clients, o.Duration, o.Warmup)
			if err != nil {
				return out, err
			}
			s.Label = fmt.Sprintf("%s z=%.2f", s.Label, z)
			for i := range s.Points {
				s.Points[i].System = s.Label
			}
			o.printSeries(s)
			out = append(out, s)
		}
	}
	return out, nil
}

// Figure9 reproduces Figure 9: the ROT-size sweep p ∈ {4, 8, 24}, 1 DC.
// Expected shape: CC-LO's low-load latency edge shrinks as p grows
// (Contrarian's extra hop amortizes); Contrarian's throughput advantage
// shrinks with p (more forwarded messages per ROT).
func Figure9(o Opts) ([]Series, error) {
	o.printHeader("Figure 9: ROT size sweep (1 DC)")
	var out []Series
	sizes := []int{4, 8, 24}
	for _, p := range sizes {
		if p > o.Partitions {
			p = o.Partitions
		}
		wl := o.defaultWorkload()
		wl.RotSize = p
		for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO} {
			s, err := Sweep(System{
				Protocol: proto, DCs: 1, Partitions: o.Partitions, MaxSkew: o.MaxSkew,
			}, wl, o.Clients, o.Duration, o.Warmup)
			if err != nil {
				return out, err
			}
			s.Label = fmt.Sprintf("%s p=%d", s.Label, p)
			for i := range s.Points {
				s.Points[i].System = s.Label
			}
			o.printSeries(s)
			out = append(out, s)
		}
	}
	return out, nil
}

// ValueSizes reproduces §5.8: the value-size sweep b ∈ {8, 128, 2048},
// 1 DC. Expected shape: the performance gap between the systems shrinks as
// marshalling dominates, with Contrarian retaining higher throughput.
func ValueSizes(o Opts) ([]Series, error) {
	o.printHeader("Section 5.8: value size sweep (1 DC)")
	var out []Series
	for _, b := range []int{8, 128, 2048} {
		wl := o.defaultWorkload()
		wl.ValueSize = b
		for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO} {
			s, err := Sweep(System{
				Protocol: proto, DCs: 1, Partitions: o.Partitions, MaxSkew: o.MaxSkew,
			}, wl, o.Clients, o.Duration, o.Warmup)
			if err != nil {
				return out, err
			}
			s.Label = fmt.Sprintf("%s b=%d", s.Label, b)
			for i := range s.Points {
				s.Points[i].System = s.Label
			}
			o.printSeries(s)
			out = append(out, s)
		}
	}
	return out, nil
}

// SystemRow is one row of the paper's Table 2, the qualitative
// characterization of CC systems with ROT support.
type SystemRow struct {
	Name        string
	Nonblocking bool
	Rounds      string
	Versions    string
	WriteCostSS string // inter-server communication on writes
	Metadata    string
	Clock       string
}

// Table2 returns the characterization of the systems implemented in this
// repository (the corresponding rows of the paper's Table 2).
func Table2() []SystemRow {
	return []SystemRow{
		{"COPS", true, "<= 2", "<= 2", "-", "|deps|", "Logical"},
		{"Cure", false, "2", "1", "-", "M", "Physical"},
		{"COPS-SNOW (CC-LO)", true, "1", "1", "O(N) readers check", "O(K) old readers", "Logical"},
		{"Contrarian", true, "1 1/2 (or 2)", "1", "-", "M", "Hybrid"},
	}
}

// PrintTable2 renders Table2.
func PrintTable2(out io.Writer) {
	fmt.Fprintf(out, "\n=== Table 2: systems characterization (N=partitions, M=DCs, K=clients/DC) ===\n")
	fmt.Fprintf(out, "%-20s %-12s %-14s %-9s %-20s %-18s %-9s\n",
		"system", "nonblocking", "rounds", "versions", "write s<->s cost", "write meta-data", "clock")
	for _, r := range Table2() {
		nb := "no"
		if r.Nonblocking {
			nb = "yes"
		}
		fmt.Fprintf(out, "%-20s %-12s %-14s %-9s %-20s %-18s %-9s\n",
			r.Name, nb, r.Rounds, r.Versions, r.WriteCostSS, r.Metadata, r.Clock)
	}
}

// FigureWAL is the durability extension table: Contrarian with no WAL,
// with a synchronous WAL (acked ⇒ fsynced), and with the background-fsync
// WAL (acked ⇒ written; bounded loss window), so the latency price of each
// durability contract — and the group-commit amortization that pays part
// of it back — is measurable side by side. dataDir hosts the WALs (a
// temporary directory; pass "" to let the harness create one).
func FigureWAL(o Opts, dataDir string) ([]Series, error) {
	o.printHeader("Durability: WAL off vs sync vs async (Contrarian, 1 DC)")
	modes := []struct {
		label string
		sync  wal.SyncMode
		wal   bool
	}{
		{"no-wal", wal.SyncAlways, false},
		{"wal-sync", wal.SyncAlways, true},
		{"wal-async", wal.SyncBackground, true},
	}
	var out []Series
	for _, m := range modes {
		sys := System{
			Protocol: cluster.Contrarian, DCs: 1, Partitions: o.Partitions, MaxSkew: o.MaxSkew,
		}
		if m.wal {
			dir := dataDir
			if dir == "" {
				tmp, err := os.MkdirTemp("", "benchwal-*")
				if err != nil {
					return out, err
				}
				defer os.RemoveAll(tmp)
				dir = tmp
			}
			sys.DataDir = filepath.Join(dir, m.label)
			sys.WALSync = m.sync
		}
		s, err := Sweep(sys, o.defaultWorkload(), o.Clients, o.Duration, o.Warmup)
		if err != nil {
			return out, err
		}
		s.Label = m.label
		for i := range s.Points {
			s.Points[i].System = m.label
		}
		o.printSeries(s)
		for _, p := range s.Points {
			if p.WAL.Appends > 0 {
				fmt.Fprintf(o.Out, "%-28s %8d   appends/fsync %.1f (peak batch %d, cursors %d)\n",
					"  └ "+m.label, p.ClientsPerDC, p.WAL.AppendsPerFsync, p.WAL.BatchPeak, p.WAL.CursorAppends)
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// FigureTransport is the batching-engine extension table: Contrarian under
// the default workload with the transport's flush policy swept from greedy
// drain (the seed behavior, budget off) through the adaptive default to a
// deliberately loose budget, so the latency/coalescing trade-off — frames
// per flush vs p99 enqueue→flush delay — is measured side by side. Run on
// the Local simulator, whose delivery wheels share the same engine, so the
// flush columns describe exactly what a TCP deployment's writer does.
func FigureTransport(o Opts, dcs int) ([]Series, error) {
	o.printHeader(fmt.Sprintf("Transport: greedy vs adaptive flush (Contrarian, %d DC)", dcs))
	budgets := []struct {
		label  string
		budget time.Duration
	}{
		{"greedy (no budget)", -1},
		{"adaptive 200µs", 0}, // 0 resolves to the default budget
		{"adaptive 1ms", time.Millisecond},
	}
	var out []Series
	for _, b := range budgets {
		sys := System{
			Protocol: cluster.Contrarian, DCs: dcs, Partitions: o.Partitions,
			MaxSkew: o.MaxSkew, FlushBudget: b.budget,
		}
		s, err := Sweep(sys, o.defaultWorkload(), o.Clients, o.Duration, o.Warmup)
		if err != nil {
			return out, err
		}
		s.Label = b.label
		for i := range s.Points {
			s.Points[i].System = b.label
		}
		o.printSeries(s)
		out = append(out, s)
	}
	return out, nil
}

// FigureOverload is the admission-control extension table: Contrarian
// driven far past saturation with and without the client admission gate.
// The claim under test is the overload-safety property, not a paper
// figure: with the gate, goodput plateaus near the gated capacity instead
// of collapsing under unbounded queueing — excess requests are shed with
// Busy and retried (or surfaced as ErrOverloaded once the retry budget is
// gone) while replication and the other intra-cluster traffic stay
// ungated. Shed/retry columns come from the admission counters; "errs"
// counts operations whose whole retry budget was consumed.
//
// The cluster runs with a synchronous WAL: handlers then hold their
// admission token for the group-committed fsync, which is what gives the
// server a real per-request service time to protect. A purely in-memory
// run retires requests in microseconds and never accumulates the handler
// concurrency the gate exists to bound.
func FigureOverload(o Opts, dcs int) ([]Series, error) {
	fmt.Fprintf(o.Out, "\n=== Overload: ungated vs admission gate (Contrarian, %d DC, wal-sync) ===\n", dcs)
	fmt.Fprintf(o.Out, "%-28s %8s %13s %10s %10s %8s %12s %12s %9s %7s\n",
		"system", "clients", "goodput(op/s)", "rot-p99", "put-p99",
		"errs", "shed", "retries", "depth-pk", "spill")
	gates := []struct {
		label string
		limit int
	}{
		{"ungated", 0},
		{"admit-limit 2", 2},
	}
	tmp, err := os.MkdirTemp("", "benchoverload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	wl := o.defaultWorkload()
	var out []Series
	for _, g := range gates {
		sys := System{
			Protocol: cluster.Contrarian, DCs: dcs, Partitions: o.Partitions,
			MaxSkew: o.MaxSkew, AdmitLimit: g.limit, WALSync: wal.SyncAlways,
		}
		s := Series{Label: g.label}
		for _, n := range o.Clients {
			sys.DataDir = filepath.Join(tmp, fmt.Sprintf("%s-%d", g.label, n))
			p, err := Run(sys, RunSpec{
				Workload: wl, ClientsPerDC: n,
				Duration: o.Duration, Warmup: o.Warmup,
				AllowOverloadErrors: true,
			})
			if err != nil {
				return out, fmt.Errorf("%s @%d clients: %w", g.label, n, err)
			}
			p.System = g.label
			s.Points = append(s.Points, p)
			var shed, retries uint64
			var depthPeak int64
			if p.Admission != nil {
				shed, retries, depthPeak = p.Admission.Shed, p.Admission.ClientRetries, p.Admission.DepthPeak
			}
			fmt.Fprintf(o.Out, "%-28s %8d %13.0f %10v %10v %8d %12d %12d %9d %7s\n",
				p.System, p.ClientsPerDC, p.Throughput,
				p.ROT.P99.Round(10*time.Microsecond), p.PUT.P99.Round(10*time.Microsecond),
				p.Errors, shed, retries, depthPeak, spillWarning(p))
		}
		out = append(out, s)
	}
	return out, nil
}

// FigureSessions is the session-multiplexing extension table: Contrarian
// under the default workload with the legacy one-endpoint-per-client model
// versus the same client population run as logical sessions multiplexed
// over one shared endpoint per DC (4 tenants, round robin). The claim
// under test: goodput and latency stay within noise of the per-client
// model while the endpoint count collapses to one mux per DC — on a TCP
// deployment that is the socket-pool bound the connection-scale smoke
// asserts (sessions grow with load, sockets stay O(pool)).
func FigureSessions(o Opts, dcs int) ([]Series, error) {
	fmt.Fprintf(o.Out, "\n=== Sessions: per-client endpoints vs multiplexed sessions (Contrarian, %d DC) ===\n", dcs)
	fmt.Fprintf(o.Out, "%-28s %8s %12s %10s %10s %10s %8s %10s %7s\n",
		"system", "clients", "tput(op/s)", "rot-avg", "rot-p99", "put-p99",
		"errs", "sessions", "spill")
	modes := []struct {
		label   string
		tenants int
	}{
		{"per-client endpoints", 0},
		{"sessions (4 tenants)", 4},
	}
	wl := o.defaultWorkload()
	var out []Series
	for _, m := range modes {
		sys := System{
			Protocol: cluster.Contrarian, DCs: dcs, Partitions: o.Partitions,
			MaxSkew: o.MaxSkew, Tenants: m.tenants,
		}
		s := Series{Label: m.label}
		for _, n := range o.Clients {
			p, err := Run(sys, RunSpec{Workload: wl, ClientsPerDC: n, Duration: o.Duration, Warmup: o.Warmup})
			if err != nil {
				return out, fmt.Errorf("%s @%d clients: %w", m.label, n, err)
			}
			p.System = m.label
			s.Points = append(s.Points, p)
			fmt.Fprintf(o.Out, "%-28s %8d %12.0f %10v %10v %10v %8d %10d %7s\n",
				p.System, p.ClientsPerDC, p.Throughput,
				p.ROT.Mean.Round(10*time.Microsecond), p.ROT.P99.Round(10*time.Microsecond),
				p.PUT.P99.Round(10*time.Microsecond),
				p.Errors, p.Transport.SessionsPeak, spillWarning(p))
		}
		out = append(out, s)
	}
	return out, nil
}

// CompareAll is an extension beyond the paper's figures: all five protocol
// configurations under the default workload in one table (1 DC), placing
// COPS — the design Section 3 starts from — alongside the paper's systems.
func CompareAll(o Opts) ([]Series, error) {
	o.printHeader("Extension: all protocols, default workload (1 DC)")
	var out []Series
	for _, proto := range []cluster.Protocol{
		cluster.Contrarian, cluster.ContrarianTwoRound, cluster.Cure, cluster.COPS, cluster.CCLO,
	} {
		s, err := o.sweepAndPrint(System{
			Protocol: proto, DCs: 1, Partitions: o.Partitions, MaxSkew: o.MaxSkew,
		}, o.defaultWorkload())
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}
