// Package bench is the measurement harness behind every table and figure
// of the paper's evaluation (Section 5). It stands up a cluster, preloads
// the key population, drives closed-loop clients (the paper's methodology:
// "clients issue operations in closed loop", load varied by the number of
// client threads), and reports throughput (PUTs + ROTs per second), average
// and 99th-percentile latencies, and CC-LO's readers-check overhead.
package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cclo"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/workload"
)

// System names a cluster configuration under test.
type System struct {
	Protocol   cluster.Protocol
	DCs        int
	Partitions int
	// Latency overrides the default network latency model.
	Latency *transport.LatencyModel
	// MaxSkew bounds physical clock skew (Cure's blocking source).
	MaxSkew time.Duration
	// DataDir, when non-empty, runs the cluster with durable WALs rooted
	// there, so the measurement includes group-committed fsyncs on the
	// write path. Empty (the default, and what every paper figure uses)
	// keeps the run purely in memory.
	DataDir string
	// WALSync selects the WAL acknowledgment contract when DataDir is set:
	// wal.SyncAlways (acked ⇒ fsynced) or wal.SyncBackground (acked ⇒
	// written; fsync within the loss window) — the measurable
	// latency/durability trade-off.
	WALSync wal.SyncMode
	// FlushBudget is the transport's adaptive flush latency budget
	// (0 = default ~200µs, negative = greedy drain) — the measurable
	// latency/coalescing trade-off of the batching engine.
	FlushBudget time.Duration
	// AdmitLimit enables client admission control (0 = disabled, the
	// default for every paper figure): the per-server cap on concurrently
	// running client handlers; excess client requests are shed with Busy
	// and retried by the clients with jittered backoff.
	AdmitLimit int
	// ShedQueueFrames/ShedFsyncP99 are the overload detector's early-shed
	// thresholds (0 = signal unused).
	ShedQueueFrames int64
	ShedFsyncP99    time.Duration
	// Tenants, when positive, runs the closed-loop clients as logical
	// sessions multiplexed over one shared endpoint per DC — client i as
	// tenant i mod Tenants — instead of one attached endpoint per client.
	// 0 (the default for every paper figure) keeps the legacy model.
	Tenants int
}

// Label names the system as the paper's figure legends do.
func (s System) Label() string {
	return fmt.Sprintf("%s %dDC", s.Protocol, s.DCs)
}

// RunSpec fixes the workload and load point for one measurement.
type RunSpec struct {
	Workload     workload.Config
	ClientsPerDC int
	Duration     time.Duration // measurement window
	Warmup       time.Duration // discarded leading window
	// Registry, when non-nil, has the whole cluster's metric series
	// registered into it right after Start — so a caller serving an obs
	// surface (benchfig -obs-addr) can watch the run live. Registration
	// adds no locks to any hot path; a nil Registry costs nothing.
	Registry *metrics.Registry
	// Slow, when non-nil, is handed to every partition server as its
	// slow-op trace ring.
	Slow *metrics.SlowRing
	// AllowOverloadErrors skips the run's error-budget check. Overload
	// sweeps set it: driving load far past an admission gate makes some
	// operations exhaust their Busy-retry budget by design, and those
	// ErrOverloaded results are the measurement, not a broken run.
	AllowOverloadErrors bool
}

// LoCheckStats summarizes readers-check overhead per check (Figure 6 and
// the overhead analyses of §5.4–5.6).
type LoCheckStats struct {
	Checks        uint64  // readers checks in the window
	AvgKeys       float64 // dependencies examined per check
	AvgPartitions float64 // remote partitions interrogated per check
	AvgDistinct   float64 // distinct ROT ids collected per check
	AvgCumulative float64 // ROT ids scanned per check (before dedup)
	FenceRetries  uint64  // whole-ROT retries forced by the restart-epoch fence (0 unless a partition recovered mid-window)
}

// TransportStats summarizes write-path efficiency: counter-derived fields
// (Msgs, Flushes, Coalesced, MsgsPerFlush, CoalescedFrac, WritevBytes,
// HandlerSpills) are deltas over the measurement window, while the
// SendQueue gauge fields and FlushP99Delay are whole-run values — the peak
// in particular may reflect preload/warmup congestion, not just the
// window's load. Both transports feed the flush fields through the shared
// batching engine; WritevBytes is TCP-only (Local has no copy to skip).
type TransportStats struct {
	Msgs           uint64        // messages sent in the window (≈ dispatches)
	Flushes        uint64        // coalesced batches cut (≈ write syscalls on TCP)
	Coalesced      uint64        // frames that shared a flush with an earlier frame
	MsgsPerFlush   float64       // average frames retired per flush
	CoalescedFrac  float64       // fraction of sent frames that cost no syscall
	FlushP99Delay  time.Duration // p99 enqueue→flush delay (whole run)
	WritevBytes    uint64        // frame bytes sent via scatter-gather, no staging copy
	HandlerSpills  uint64        // inbound requests that overflowed the worker pool
	SendQueuePeak  int64         // high-water mark of queued frames (whole run)
	SendQueueDepth int64         // queued frames at window end
	OpenConnsPeak  int64         // high-water mark of live sockets (whole run; 0 on Local)
	SessionsPeak   int64         // high-water mark of registered sessions (whole run)
}

// SpillFrac is the fraction of dispatches that overflowed the handler
// worker pool; sustained values above SpillWarnFrac mean the pool is
// undersized for the load (see ROADMAP: spill-rate alarm).
func (ts TransportStats) SpillFrac() float64 {
	if ts.Msgs == 0 {
		return 0
	}
	return float64(ts.HandlerSpills) / float64(ts.Msgs)
}

func transportDelta(a, b transport.StatsView) TransportStats {
	ts := TransportStats{
		Msgs:           b.MsgsSent - a.MsgsSent,
		Flushes:        b.Flushes - a.Flushes,
		Coalesced:      b.FramesCoalesced - a.FramesCoalesced,
		FlushP99Delay:  b.FlushP99Delay,
		WritevBytes:    b.WritevBytes - a.WritevBytes,
		HandlerSpills:  b.HandlerOverflow - a.HandlerOverflow,
		SendQueuePeak:  b.SendQueuePeak,
		SendQueueDepth: b.SendQueueDepth,
		OpenConnsPeak:  b.OpenConnsPeak,
		SessionsPeak:   b.SessionsPeak,
	}
	if ts.Msgs > 0 {
		ts.CoalescedFrac = float64(ts.Coalesced) / float64(ts.Msgs)
	}
	if ts.Flushes > 0 {
		ts.MsgsPerFlush = float64(ts.Coalesced+ts.Flushes) / float64(ts.Flushes)
	}
	return ts
}

// WALStats summarizes durability-path efficiency over the measurement
// window. All zero when the run has no data dir (the default), so figure
// numbers are unaffected by the subsystem's existence.
type WALStats struct {
	Mode            string  // "sync" | "async" ("" when no WAL)
	Appends         uint64  // records made durable in the window
	Fsyncs          uint64  // fsyncs that retired them
	AppendsPerFsync float64 // group-commit amortization (>1 under load)
	BatchPeak       int64   // largest single group commit (whole run)
	CursorAppends   uint64  // replication cursors persisted in the window
	RecoveryTime    time.Duration
}

func walDelta(a, b wal.StatsView, mode string) WALStats {
	w := WALStats{
		Mode:          mode,
		Appends:       b.Appends - a.Appends,
		Fsyncs:        b.Fsyncs - a.Fsyncs,
		BatchPeak:     b.BatchPeak,
		CursorAppends: b.CursorAppends - a.CursorAppends,
		RecoveryTime:  time.Duration(b.RecoveryNanos),
	}
	if w.Fsyncs > 0 {
		w.AppendsPerFsync = float64(w.Appends) / float64(w.Fsyncs)
	}
	return w
}

// AdmissionStats summarizes admission-control activity over the
// measurement window (counter deltas; DepthPeak is whole-run).
type AdmissionStats struct {
	Admitted      uint64 // client requests admitted past the gate
	Shed          uint64 // client requests answered with Busy
	ClientRetries uint64 // client-side retries those Busies triggered
	DepthPeak     int64  // high-water mark of concurrently admitted requests
}

func admissionDelta(a, b cluster.AdmissionView) AdmissionStats {
	return AdmissionStats{
		Admitted:      b.Admitted - a.Admitted,
		Shed:          b.Shed - a.Shed,
		ClientRetries: b.ClientRetries - a.ClientRetries,
		DepthPeak:     b.DepthPeak,
	}
}

// Point is one measured load point.
type Point struct {
	System       string
	ClientsPerDC int
	Throughput   float64 // PUTs + ROTs per second
	ROT          metrics.Summary
	PUT          metrics.Summary
	Errors       uint64
	Lo           LoCheckStats
	MsgsPerSec   float64
	BytesPerSec  float64
	Transport    TransportStats
	WAL          WALStats
	// Store is set only by FigureStore (the storage-engine figure); nil
	// for the load-point figures.
	Store *StoreStats `json:",omitempty"`
	// Admission is set only when the run had an admission gate
	// (System.AdmitLimit > 0); nil otherwise.
	Admission *AdmissionStats `json:",omitempty"`
}

// Run measures one load point.
func Run(sys System, spec RunSpec) (Point, error) {
	cfg := cluster.Config{
		Protocol:        sys.Protocol,
		DCs:             sys.DCs,
		Partitions:      sys.Partitions,
		Latency:         sys.Latency,
		MaxSkew:         sys.MaxSkew,
		Seed:            1,
		DataDir:         sys.DataDir,
		WALSync:         sys.WALSync,
		FlushBudget:     sys.FlushBudget,
		Slow:            spec.Slow,
		AdmitLimit:      sys.AdmitLimit,
		SocketPool:      8,
		ShedQueueFrames: sys.ShedQueueFrames,
		ShedFsyncP99:    sys.ShedFsyncP99,
	}
	c, err := cluster.Start(cfg)
	if err != nil {
		return Point{}, err
	}
	defer c.Close()
	if spec.Registry != nil {
		c.RegisterMetrics(spec.Registry)
	}

	wl := spec.Workload
	wl.Partitions = sys.Partitions
	ks := workload.BuildKeySpace(wl, c.Ring())
	if err := c.Preload(ks.Keys, wl.ValueSize); err != nil {
		return Point{}, err
	}
	// Let stabilization produce a first GSS before clients arrive.
	time.Sleep(30 * time.Millisecond)

	var (
		rotHist   = metrics.NewHistogram()
		putHist   = metrics.NewHistogram()
		errs      atomic.Uint64
		measuring atomic.Bool
		stop      atomic.Bool
		wg        sync.WaitGroup
	)

	total := sys.DCs * spec.ClientsPerDC
	wl.Tenants = sys.Tenants
	clients := make([]cluster.Client, 0, total)
	for dc := 0; dc < sys.DCs; dc++ {
		for i := 0; i < spec.ClientsPerDC; i++ {
			var cli cluster.Client
			var err error
			if sys.Tenants > 0 {
				cli, err = c.NewSessionClient(dc, wl.TenantOf(i))
			} else {
				cli, err = c.NewClient(dc)
			}
			if err != nil {
				return Point{}, err
			}
			clients = append(clients, cli)
		}
	}
	defer func() {
		for _, cli := range clients {
			cli.Close()
		}
	}()

	ctx := context.Background()
	for i, cli := range clients {
		wg.Add(1)
		go func(i int, cli cluster.Client) {
			defer wg.Done()
			gen := workload.NewGen(wl, ks, int64(i)*7919+1)
			for !stop.Load() {
				op := gen.Next()
				start := time.Now()
				var err error
				if op.Kind == workload.OpPut {
					_, err = cli.Put(ctx, op.Keys[0], op.Value)
				} else {
					_, err = cli.ROT(ctx, op.Keys)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				if measuring.Load() {
					if op.Kind == workload.OpPut {
						putHist.Record(time.Since(start))
					} else {
						rotHist.Record(time.Since(start))
					}
				}
			}
		}(i, cli)
	}

	time.Sleep(spec.Warmup)
	loStart := c.CCLOStats()
	view0 := c.Net().Stats().View()
	wal0 := c.WALView()
	adm0 := c.Admission()
	rotHist.Reset()
	putHist.Reset()
	measuring.Store(true)
	winStart := time.Now()
	time.Sleep(spec.Duration)
	measuring.Store(false)
	window := time.Since(winStart)
	loEnd := c.CCLOStats()
	view1 := c.Net().Stats().View()
	wal1 := c.WALView()
	adm1 := c.Admission()
	stop.Store(true)
	wg.Wait()

	rot := rotHist.Snapshot()
	put := putHist.Snapshot()
	p := Point{
		System:       sys.Label(),
		ClientsPerDC: spec.ClientsPerDC,
		Throughput:   float64(rot.Count+put.Count) / window.Seconds(),
		ROT:          rot,
		PUT:          put,
		Errors:       errs.Load(),
		MsgsPerSec:   float64(view1.MsgsSent-view0.MsgsSent) / window.Seconds(),
		BytesPerSec:  float64(view1.BytesSent-view0.BytesSent) / window.Seconds(),
		Lo:           loDelta(loStart, loEnd),
		Transport:    transportDelta(view0, view1),
	}
	if sys.DataDir != "" {
		p.WAL = walDelta(wal0, wal1, sys.WALSync.String())
	}
	if sys.AdmitLimit > 0 {
		adm := admissionDelta(adm0, adm1)
		p.Admission = &adm
	}
	if !spec.AllowOverloadErrors && p.Errors > (rot.Count+put.Count)/100+10 {
		return p, fmt.Errorf("bench: %d operation errors in window (tput %.0f)", p.Errors, p.Throughput)
	}
	return p, nil
}

func loDelta(a, b cclo.StatsSnapshot) LoCheckStats {
	checks := b.Checks - a.Checks
	if checks == 0 {
		return LoCheckStats{FenceRetries: b.FenceRetries - a.FenceRetries}
	}
	return LoCheckStats{
		Checks:        checks,
		AvgKeys:       float64(b.KeysChecked-a.KeysChecked) / float64(checks),
		AvgPartitions: float64(b.PartitionsAsked-a.PartitionsAsked) / float64(checks),
		AvgDistinct:   float64(b.IDsDistinct-a.IDsDistinct) / float64(checks),
		AvgCumulative: float64(b.IDsCumulative-a.IDsCumulative) / float64(checks),
		FenceRetries:  b.FenceRetries - a.FenceRetries,
	}
}

// Series is a labelled sweep over client counts.
type Series struct {
	Label  string
	Points []Point
}

// Sweep measures sys under wl at each client count.
func Sweep(sys System, wl workload.Config, clients []int, dur, warm time.Duration) (Series, error) {
	s := Series{Label: sys.Label()}
	for _, n := range clients {
		p, err := Run(sys, RunSpec{Workload: wl, ClientsPerDC: n, Duration: dur, Warmup: warm})
		if err != nil {
			return s, fmt.Errorf("%s @%d clients: %w", sys.Label(), n, err)
		}
		s.Points = append(s.Points, p)
	}
	return s, nil
}
