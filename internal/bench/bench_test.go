package bench

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func tinyOpts() Opts {
	return Opts{
		Partitions:       4,
		KeysPerPartition: 500,
		Clients:          []int{4},
		Duration:         300 * time.Millisecond,
		Warmup:           100 * time.Millisecond,
		MaxSkew:          time.Millisecond,
		Out:              io.Discard,
	}
}

func TestRunProducesSanePoint(t *testing.T) {
	o := tinyOpts()
	wl := workload.Default(o.Partitions, o.KeysPerPartition)
	p, err := Run(System{
		Protocol: cluster.Contrarian, DCs: 1, Partitions: o.Partitions,
	}, RunSpec{Workload: wl, ClientsPerDC: 4, Duration: o.Duration, Warmup: o.Warmup})
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput <= 0 {
		t.Fatalf("throughput = %v", p.Throughput)
	}
	if p.ROT.Count == 0 || p.PUT.Count == 0 {
		t.Fatalf("no ops measured: %+v", p)
	}
	if p.ROT.Mean <= 0 || p.ROT.P99 < p.ROT.Mean/2 {
		t.Fatalf("suspicious ROT latencies: %+v", p.ROT)
	}
	if p.MsgsPerSec <= 0 || p.BytesPerSec <= 0 {
		t.Fatalf("network counters missing: %+v", p)
	}
}

// TestRunDurableReportsWALStats runs a small durable load point and checks
// the acceptance bar for the durability subsystem: group commit amortizes
// fsyncs across concurrent writers (appends/fsync > 1) and the stat flows
// through bench.Point. The plain in-memory run above must keep WAL at zero.
func TestRunDurableReportsWALStats(t *testing.T) {
	o := tinyOpts()
	// One partition concentrates every append on a single log so the
	// committer visibly coalesces; write-heavy so the window sees appends.
	wl := workload.Default(1, o.KeysPerPartition)
	wl.WriteRatio = 0.5
	p, err := Run(System{
		Protocol: cluster.Contrarian, DCs: 1, Partitions: 1,
		DataDir: t.TempDir(),
	}, RunSpec{Workload: wl, ClientsPerDC: 32, Duration: o.Duration, Warmup: o.Warmup})
	if err != nil {
		t.Fatal(err)
	}
	if p.WAL.Appends == 0 || p.WAL.Fsyncs == 0 {
		t.Fatalf("durable run reported no WAL activity: %+v", p.WAL)
	}
	if p.WAL.AppendsPerFsync <= 1 {
		t.Fatalf("group commit did not amortize: %.2f appends/fsync (batch peak %d)",
			p.WAL.AppendsPerFsync, p.WAL.BatchPeak)
	}
	t.Logf("durable point: %.0f op/s, %.1f appends/fsync, peak batch %d",
		p.Throughput, p.WAL.AppendsPerFsync, p.WAL.BatchPeak)

	// Off-by-default: an in-memory run must report an all-zero WAL block.
	p2, err := Run(System{
		Protocol: cluster.Contrarian, DCs: 1, Partitions: o.Partitions,
	}, RunSpec{Workload: wl, ClientsPerDC: 2, Duration: o.Duration, Warmup: o.Warmup})
	if err != nil {
		t.Fatal(err)
	}
	if p2.WAL != (WALStats{}) {
		t.Fatalf("in-memory run reported WAL activity: %+v", p2.WAL)
	}
}

func TestRunCCLOCollectsCheckStats(t *testing.T) {
	o := tinyOpts()
	wl := workload.Default(o.Partitions, o.KeysPerPartition)
	p, err := Run(System{
		Protocol: cluster.CCLO, DCs: 1, Partitions: o.Partitions,
	}, RunSpec{Workload: wl, ClientsPerDC: 8, Duration: o.Duration, Warmup: o.Warmup})
	if err != nil {
		t.Fatal(err)
	}
	if p.Lo.Checks == 0 {
		t.Fatal("CC-LO run recorded no readers checks")
	}
	if p.Lo.AvgDistinct <= 0 {
		t.Fatalf("no ROT ids collected: %+v", p.Lo)
	}
}

func TestFigure6DistinctGrowsWithClients(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	o := tinyOpts()
	o.Clients = []int{4, 24}
	o.Duration = 500 * time.Millisecond
	s, err := Figure6(o)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Points[0].Lo, s.Points[1].Lo
	if hi.AvgDistinct <= lo.AvgDistinct {
		t.Fatalf("distinct ids per check did not grow with clients: %v -> %v",
			lo.AvgDistinct, hi.AvgDistinct)
	}
}

func TestSweepLabels(t *testing.T) {
	o := tinyOpts()
	wl := workload.Default(o.Partitions, o.KeysPerPartition)
	s, err := Sweep(System{Protocol: cluster.Contrarian, DCs: 1, Partitions: o.Partitions},
		wl, []int{2}, o.Duration, o.Warmup)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 1 || !strings.Contains(s.Label, "Contrarian") {
		t.Fatalf("bad series: %+v", s)
	}
}

func TestPrintTable2(t *testing.T) {
	var sb strings.Builder
	PrintTable2(&sb)
	out := sb.String()
	for _, want := range []string{"Contrarian", "COPS-SNOW", "COPS", "Cure", "O(N) readers check", "Hybrid"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

// TestTable2MatchesImplementations cross-checks the qualitative claims
// against the code: Contrarian and CC-LO must be nonblocking, Cure not.
func TestTable2MatchesImplementations(t *testing.T) {
	rows := map[string]SystemRow{}
	for _, r := range Table2() {
		rows[r.Name] = r
	}
	if !rows["Contrarian"].Nonblocking || rows["Contrarian"].Clock != "Hybrid" {
		t.Fatal("Contrarian row inconsistent")
	}
	if rows["Cure"].Nonblocking {
		t.Fatal("Cure must be blocking (physical clocks)")
	}
	if rows["COPS-SNOW (CC-LO)"].Rounds != "1" {
		t.Fatal("CC-LO must be one round (that is its latency optimality)")
	}
}

// TestCompareAllSmoke exercises the five-way extension harness end to end
// at a tiny scale.
func TestCompareAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster sweep")
	}
	o := tinyOpts()
	o.Clients = []int{2}
	series, err := CompareAll(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("expected 5 protocol series, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 1 || s.Points[0].Throughput <= 0 {
			t.Fatalf("series %q has no sane point: %+v", s.Label, s.Points)
		}
	}
}

// TestAblationSmoke runs the clock-freshness ablation with two samples.
func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster measurement")
	}
	o := tinyOpts()
	rows, err := AblationClockFreshness(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Visibility.Count != 2 {
		t.Fatalf("ablation rows: %+v", rows)
	}
}

func TestPlotSeries(t *testing.T) {
	mk := func(tput float64, lat time.Duration) Point {
		p := Point{Throughput: tput}
		p.ROT.Count = 1
		p.ROT.Mean = lat
		return p
	}
	series := []Series{
		{Label: "fast", Points: []Point{mk(1000, 400*time.Microsecond), mk(50000, 2*time.Millisecond)}},
		{Label: "slow", Points: []Point{mk(800, 300*time.Microsecond), mk(9000, 20*time.Millisecond)}},
	}
	var sb strings.Builder
	PlotSeries(&sb, "test plot", series)
	out := sb.String()
	for _, want := range []string{"test plot", "fast", "slow", "*", "o", "throughput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotSeriesEmpty(t *testing.T) {
	var sb strings.Builder
	PlotSeries(&sb, "empty", []Series{{Label: "none"}})
	if !strings.Contains(sb.String(), "no data") {
		t.Fatalf("empty plot output: %q", sb.String())
	}
}

// TestRunWithRegistryExposesClusterSeries is the in-process version of the
// CI observability smoke: a small durable 2-DC run with a registry attached
// must expose every layer — transport, WAL, store, per-op histograms, and a
// replication-lag gauge — in one Prometheus-parseable scrape, and a
// zero-threshold slow-op ring must have captured traffic.
func TestRunWithRegistryExposesClusterSeries(t *testing.T) {
	o := tinyOpts()
	wl := workload.Default(2, o.KeysPerPartition)
	wl.WriteRatio = 0.2
	reg := metrics.NewRegistry()
	ring := metrics.NewSlowRing(64, 0)
	p, err := Run(System{
		Protocol: cluster.Contrarian, DCs: 2, Partitions: 2,
		Latency: cluster.NoLatency(),
		DataDir: t.TempDir(),
	}, RunSpec{
		Workload: wl, ClientsPerDC: 4,
		Duration: o.Duration, Warmup: o.Warmup,
		Registry: reg, Slow: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", p)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	for _, want := range []string{
		"kv_transport_msgs_sent_total",
		"kv_wal_fsync_delay_seconds_bucket",
		"kv_store_keys{",
		`kv_server_op_seconds_count{`,
		`op="put"`,
		"kv_replication_last_update_age_seconds{",
	} {
		if !strings.Contains(exp, want) {
			t.Fatalf("scrape missing %q; exposition:\n%.2000s", want, exp)
		}
	}
	if ring.Len() == 0 {
		t.Fatal("zero-threshold slow-op ring captured nothing")
	}
	ops := ring.Snapshot()
	if len(ops) == 0 || ops[0].Total <= 0 {
		t.Fatalf("bad slow-op snapshot: %+v", ops)
	}
}
