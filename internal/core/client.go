package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Client is a session against the timestamp-based engine. It tracks the
// causal context of Section 4: the highest local timestamp and the highest
// GSS it has observed, piggybacked on every operation so the client sees
// monotonically increasing snapshots (and its own writes).
//
// A Client is safe for concurrent use, though the benchmark drivers use one
// per closed-loop thread, as the paper's clients do.
type Client struct {
	dc     int
	numDCs int
	mode   ROTMode
	ring   ring.Ring
	node   transport.Node

	mu   sync.Mutex
	seen vclock.Vec // seen[dc] = highest local ts; others = GSS view

	rotSeq atomic.Uint64
	rots   sync.Map // rotID -> chan wire.Message

	// busyRetries counts operations re-sent after the server shed them
	// with wire.Busy (admission control); benchmarks report the sum.
	busyRetries atomic.Uint64
}

// ClientConfig parameterizes a client session.
type ClientConfig struct {
	DC     int
	ID     int
	NumDCs int
	Ring   ring.Ring
	Mode   ROTMode
}

// NewClient attaches a client session to net at its own address (one
// endpoint — on TCP, one socket set — per client).
func NewClient(cfg ClientConfig, net transport.Network) (*Client, error) {
	return newClient(cfg, func(h transport.Handler) (transport.Node, error) {
		return net.Attach(wire.ClientAddr(cfg.DC, cfg.ID), h)
	})
}

// NewSessionClient runs the client as logical session id on mux: every
// frame it sends carries the session id, and the 1 1/2-round ROT's direct
// partition-to-client answers are demultiplexed back to this client even
// though any number of sessions share the mux's connection pool.
func NewSessionClient(cfg ClientConfig, mux transport.Mux, id wire.SessionID) (*Client, error) {
	return newClient(cfg, func(h transport.Handler) (transport.Node, error) {
		return mux.Session(id, h)
	})
}

func newClient(cfg ClientConfig, attach func(transport.Handler) (transport.Node, error)) (*Client, error) {
	if cfg.Mode == 0 {
		cfg.Mode = OneAndHalfRounds
	}
	c := &Client{
		dc:     cfg.DC,
		numDCs: max(cfg.NumDCs, 1),
		mode:   cfg.Mode,
		ring:   cfg.Ring,
		seen:   vclock.New(max(cfg.NumDCs, 1)),
	}
	node, err := attach(transport.HandlerFunc(c.handle))
	if err != nil {
		return nil, err
	}
	c.node = node
	return c, nil
}

// Close detaches the client.
func (c *Client) Close() error { return c.node.Close() }

// Addr returns the client's wire address.
func (c *Client) Addr() wire.Addr { return c.node.Addr() }

// Ping checks liveness of one partition. Over connection-oriented
// transports it also warms the connection, letting the partition answer
// this client directly (the 1 1/2-round ROT's partition-to-client leg).
func (c *Client) Ping(ctx context.Context, part int) error {
	resp, err := transport.CallRetry(ctx, c.node, wire.ServerAddr(c.dc, part), &wire.Ping{Nonce: uint64(part)}, c.countRetry)
	if err != nil {
		return err
	}
	if _, ok := resp.(*wire.Pong); !ok {
		return fmt.Errorf("core: ping: unexpected response %T", resp)
	}
	return nil
}

// Warm pings every partition in the client's DC, establishing return paths
// before the first ROT. Required for TCP deployments; a no-op concern for
// the in-process transport.
func (c *Client) Warm(ctx context.Context) error {
	for p := 0; p < c.ring.Parts(); p++ {
		if err := c.Ping(ctx, p); err != nil {
			return err
		}
	}
	return nil
}

// BusyRetries returns how many times this client's operations were shed
// with Busy and retried.
func (c *Client) BusyRetries() uint64 { return c.busyRetries.Load() }

func (c *Client) countRetry() { c.busyRetries.Add(1) }

// Seen returns a copy of the client's causal context (for tests).
func (c *Client) Seen() vclock.Vec {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen.Clone()
}

// handle routes direct server-to-client ROT messages (1 1/2-round mode).
// A shed coordinator request comes back as a one-way Busy whose Echo
// carries the RotID (the request was un-awaited, so there is no reqID to
// answer); it is routed to the same waiter, which retries the whole ROT.
func (c *Client) handle(_ transport.Node, _ wire.From, _ uint64, m wire.Message) {
	var rotID uint64
	switch msg := m.(type) {
	case *wire.RotSnap:
		rotID = msg.RotID
	case *wire.RotVals:
		rotID = msg.RotID
	case *wire.Busy:
		rotID = msg.Echo
	default:
		return
	}
	if ch, ok := c.rots.Load(rotID); ok {
		select {
		case ch.(chan wire.Message) <- m:
		default:
		}
	}
}

func (c *Client) observe(sv vclock.Vec) {
	c.mu.Lock()
	c.seen.MaxInto(sv)
	c.mu.Unlock()
}

// Put installs a new version of key and returns its timestamp.
func (c *Client) Put(ctx context.Context, key string, value []byte) (uint64, error) {
	c.mu.Lock()
	deps := c.seen.Clone()
	c.mu.Unlock()
	owner := wire.ServerAddr(c.dc, c.ring.Owner(key))
	resp, err := transport.CallRetry(ctx, c.node, owner, &wire.PutReq{Key: key, Value: value, Deps: deps}, c.countRetry)
	if err != nil {
		return 0, fmt.Errorf("core: put %q: %w", key, err)
	}
	pr, ok := resp.(*wire.PutResp)
	if !ok {
		return 0, fmt.Errorf("core: put %q: unexpected response %T", key, resp)
	}
	c.mu.Lock()
	c.seen.MaxInto(pr.GSS)
	c.seen[c.dc] = max(c.seen[c.dc], pr.TS)
	c.mu.Unlock()
	return pr.TS, nil
}

// Get reads a single key causally (a one-key ROT).
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	kvs, err := c.ROT(ctx, []string{key})
	if err != nil {
		return nil, err
	}
	return kvs[0].Value, nil
}

// ROT executes a causally consistent read-only transaction over keys and
// returns one KV per key, in key order. A missing key yields a nil Value.
func (c *Client) ROT(ctx context.Context, keys []string) ([]wire.KV, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	groups := c.groups(keys)
	var (
		vals map[string]wire.KV
		err  error
	)
	if c.mode == TwoRounds {
		vals, err = c.rotTwoRounds(ctx, keys, groups)
	} else {
		vals, err = c.rotOneAndHalf(ctx, keys, groups)
	}
	if err != nil {
		return nil, err
	}
	out := make([]wire.KV, len(keys))
	for i, k := range keys {
		if kv, ok := vals[k]; ok {
			out[i] = kv
		} else {
			out[i] = wire.KV{Key: k}
		}
	}
	return out, nil
}

// groups splits keys by partition into a deterministic order; the first
// group's partition acts as coordinator.
func (c *Client) groups(keys []string) []wire.ReadGroup {
	m := c.ring.Group(keys)
	parts := make([]int, 0, len(m))
	for p := range m {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	// Rotate so coordination load spreads over partitions: the owner of
	// the first key coordinates.
	lead := c.ring.Owner(keys[0])
	groups := make([]wire.ReadGroup, 0, len(parts))
	groups = append(groups, wire.ReadGroup{Part: uint32(lead), Keys: m[lead]})
	for _, p := range parts {
		if p != lead {
			groups = append(groups, wire.ReadGroup{Part: uint32(p), Keys: m[p]})
		}
	}
	return groups
}

// rotOneAndHalf runs the 1 1/2-round ROT, retrying the whole transaction
// when the coordinator sheds it: the coordinator request is a one-way Send
// (the responses come straight from the partitions), so the gate's Busy
// arrives as a one-way message routed back by Echo==RotID rather than as a
// Call error. Each retry uses a fresh RotID after a jittered backoff.
func (c *Client) rotOneAndHalf(ctx context.Context, keys []string, groups []wire.ReadGroup) (map[string]wire.KV, error) {
	for attempt := 0; ; attempt++ {
		vals, busy, err := c.rotOneAndHalfOnce(ctx, keys, groups)
		if err != nil || busy == nil {
			return vals, err
		}
		if attempt >= transport.DefaultBusyRetries {
			return nil, fmt.Errorf("core: rot: %w: coordinator still shedding after %d retries", transport.ErrOverloaded, attempt)
		}
		c.busyRetries.Add(1)
		if err := transport.AwaitRetry(ctx, attempt, busy.RetryAfter()); err != nil {
			return nil, fmt.Errorf("core: rot: %w", err)
		}
	}
}

func (c *Client) rotOneAndHalfOnce(ctx context.Context, keys []string, groups []wire.ReadGroup) (map[string]wire.KV, *wire.Busy, error) {
	rotID := c.rotSeq.Add(1)
	ch := make(chan wire.Message, len(groups))
	c.rots.Store(rotID, ch)
	defer c.rots.Delete(rotID)

	c.mu.Lock()
	seenLocal := c.seen[c.dc]
	seenGSS := c.seen.Clone()
	c.mu.Unlock()

	coord := wire.ServerAddr(c.dc, int(groups[0].Part))
	err := c.node.Send(coord, &wire.RotCoordReq{
		RotID:     rotID,
		Mode:      uint8(OneAndHalfRounds),
		SeenLocal: seenLocal,
		SeenGSS:   seenGSS,
		Groups:    groups,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: rot: %w", err)
	}

	vals := make(map[string]wire.KV, len(keys))
	var sv vclock.Vec
	for got := 0; got < len(groups); got++ {
		select {
		case m := <-ch:
			switch msg := m.(type) {
			case *wire.RotSnap:
				sv = msg.SV
				for _, kv := range msg.Vals {
					vals[kv.Key] = kv
				}
			case *wire.RotVals:
				for _, kv := range msg.Vals {
					vals[kv.Key] = kv
				}
			case *wire.Busy:
				return nil, msg, nil
			}
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("core: rot: %w", ctx.Err())
		}
	}
	if sv != nil {
		c.observe(sv)
	}
	return vals, nil, nil
}

func (c *Client) rotTwoRounds(ctx context.Context, keys []string, groups []wire.ReadGroup) (map[string]wire.KV, error) {
	rotID := c.rotSeq.Add(1)
	c.mu.Lock()
	seenLocal := c.seen[c.dc]
	seenGSS := c.seen.Clone()
	c.mu.Unlock()

	coord := wire.ServerAddr(c.dc, int(groups[0].Part))
	resp, err := transport.CallRetry(ctx, c.node, coord, &wire.RotCoordReq{
		RotID:     rotID,
		Mode:      uint8(TwoRounds),
		SeenLocal: seenLocal,
		SeenGSS:   seenGSS,
	}, c.countRetry)
	if err != nil {
		return nil, fmt.Errorf("core: rot coord: %w", err)
	}
	cr, ok := resp.(*wire.RotCoordResp)
	if !ok {
		return nil, fmt.Errorf("core: rot coord: unexpected response %T", resp)
	}
	sv := cr.SV

	type result struct {
		vals []wire.KV
		err  error
	}
	ch := make(chan result, len(groups))
	for _, g := range groups {
		go func(g wire.ReadGroup) {
			dst := wire.ServerAddr(c.dc, int(g.Part))
			resp, err := transport.CallRetry(ctx, c.node, dst, &wire.RotReadReq{SV: sv, Keys: g.Keys}, c.countRetry)
			if err != nil {
				ch <- result{err: err}
				return
			}
			rr, ok := resp.(*wire.RotReadResp)
			if !ok {
				ch <- result{err: fmt.Errorf("unexpected response %T", resp)}
				return
			}
			ch <- result{vals: rr.Vals}
		}(g)
	}
	vals := make(map[string]wire.KV, len(keys))
	for range groups {
		r := <-ch
		if r.err != nil {
			return nil, fmt.Errorf("core: rot read: %w", r.err)
		}
		for _, kv := range r.vals {
			vals[kv.Key] = kv
		}
	}
	c.observe(sv)
	return vals, nil
}
