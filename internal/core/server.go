package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hlc"
	"repro/internal/metrics"
	"repro/internal/mvstore"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Server is one partition replica of the timestamp-based engine.
type Server struct {
	cfg   Config
	clock hlc.Clock
	store *mvstore.Store
	node  transport.Node
	repl  *replicator

	mu     sync.RWMutex
	vv     vclock.Vec // vv[i], i ≠ local: latest ts received from DC i's replica
	gss    vclock.Vec // latest Global Stable Snapshot broadcast
	nextIn []uint64   // next expected replication sequence, per source DC

	// putMu is the partition's ordering fence. A PUT assigns its timestamp,
	// installs, and enqueues for replication inside the write lock; snapshot
	// reads take the read lock after moving the clock to the snapshot, and
	// the replicator drains its queue and reads the replication cut inside
	// the write lock. This guarantees two protocol invariants:
	//   1. after a reader moves the clock to SV[local], every version with
	//      ts ≤ SV[local] that will ever exist is already installed;
	//   2. a replication batch's HighTS never runs ahead of an update that
	//      has not been enqueued yet.
	putMu sync.RWMutex

	// durGate tracks local puts whose fsync is still pending, so snapshot
	// reads can refuse to serve a version a crash could take back (nil
	// without a WAL). Local installs must stay inside the put fence
	// (invariant 1 above), so unlike the lo-families core cannot simply
	// install after the fsync — instead the read path waits out the
	// sub-millisecond gap between install and group commit.
	durGate *durGate

	// Observability (obs.go): per-op latency histograms, the process-wide
	// slow-op trace ring (nil-safe), per-peer last-replication receipt
	// stamps, and the server's start time as their pre-first-batch floor.
	ops     metrics.OpHists
	slow    *metrics.SlowRing
	lastRep []atomic.Int64 // unix nanos, indexed by source DC
	started int64          // unix nanos at construction

	stop chan struct{}
	wg   sync.WaitGroup
}

// durGate is the read-side durability watermark: pending holds the
// timestamps of local puts between install and fsync, in assignment order
// (timestamps are ticked inside the put fence, so adds are sorted).
// Completions arrive in WAL order, which may differ, hence the lazy
// deletion. Readers block while any pending timestamp is inside their
// snapshot.
type durGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []uint64
	inGate  map[uint64]bool // membership of pending, for idempotent complete
	fin     map[uint64]bool
	closed  bool
}

func newDurGate() *durGate {
	g := &durGate{inGate: make(map[uint64]bool), fin: make(map[uint64]bool)}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// add registers a just-installed, not-yet-durable local put. Callers hold
// the put fence, so timestamps arrive in increasing order.
func (g *durGate) add(ts uint64) {
	g.mu.Lock()
	g.pending = append(g.pending, ts)
	g.inGate[ts] = true
	g.mu.Unlock()
}

// complete marks ts durable (or abandoned — a poisoned log must not pin
// readers forever) and releases any waiters it unblocks. Idempotent: the
// WAL may both fire the synced callback with an error AND return the error
// from AppendSynced, so a timestamp can be completed twice.
func (g *durGate) complete(ts uint64) {
	g.mu.Lock()
	if !g.inGate[ts] {
		g.mu.Unlock()
		return
	}
	g.fin[ts] = true
	for len(g.pending) > 0 && g.fin[g.pending[0]] {
		delete(g.fin, g.pending[0])
		delete(g.inGate, g.pending[0])
		g.pending = g.pending[1:]
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// waitClear blocks until no pending put has a timestamp ≤ ts (or the gate
// closes with the server).
func (g *durGate) waitClear(ts uint64) {
	g.mu.Lock()
	for !g.closed && len(g.pending) > 0 && g.pending[0] <= ts {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// clearBelow reports, without blocking, whether no pending put has a
// timestamp ≤ ts.
func (g *durGate) clearBelow(ts uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed || len(g.pending) == 0 || g.pending[0] > ts
}

// close releases all waiters permanently (server shutdown).
func (g *durGate) close() {
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// NewServer builds the partition server and attaches it to net. Call Start
// to begin background replication and VV reporting, and Close to stop.
func NewServer(cfg Config, net transport.Network) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		clock: cfg.newClock(),
		store: mvstore.NewSharded(cfg.MaxVersions, cfg.StoreShards),
		vv:    vclock.New(cfg.NumDCs),
		gss:   vclock.New(cfg.NumDCs),
		stop:  make(chan struct{}),
	}
	s.nextIn = make([]uint64, cfg.NumDCs)
	for i := range s.nextIn {
		s.nextIn[i] = 1
	}
	s.slow = cfg.Slow
	s.lastRep = make([]atomic.Int64, cfg.NumDCs)
	s.started = time.Now().UnixNano()
	var recovered []wire.Update
	if cfg.Durable != nil {
		s.durGate = newDurGate()
		var err error
		if recovered, err = s.recover(); err != nil {
			return nil, err
		}
	}
	// The replicator must exist before the server is reachable: the first
	// PUT to arrive enqueues into its streams.
	s.repl = newReplicator(s, recovered)
	// The server is reachable the instant Attach returns, but handlers need
	// s.node: gate dispatch on construction completing so an early message
	// cannot observe a half-built server.
	ready := make(chan struct{})
	node, err := net.Attach(wire.ServerAddr(cfg.DC, cfg.Part), transport.HandlerFunc(
		func(n transport.Node, src wire.From, reqID uint64, m wire.Message) {
			<-ready
			s.Handle(n, src, reqID, m)
		}))
	if err != nil {
		return nil, err
	}
	s.node = node
	close(ready)
	return s, nil
}

// recover replays the durable log into the store and prepares snapshots.
// It runs before the server attaches to the network, so no locks are
// needed. The clock is advanced past the highest recovered timestamp so new
// PUTs can never be assigned timestamps the last-writer-wins order would
// place below already-acknowledged versions (with a physical clock — Cure —
// this Update waits out the apparent skew, exactly as it does for remote
// timestamps). Remote VV entries are rebuilt from recovered installs: a
// replication stream is logged in receipt order, so the highest recovered
// timestamp from a DC understates — never overstates — what was received,
// which is the safe direction for the GSS.
//
// It returns the recovered LOCAL updates in timestamp order: the
// replicator re-enqueues the suffix each remote DC has not acknowledged
// (per the durable cursors), closing the gap between a write surviving the
// crash locally and it ever reaching the other DCs.
func (s *Server) recover() ([]wire.Update, error) {
	var maxTS uint64
	var local []wire.Update
	err := s.cfg.Durable.Replay(func(rec wal.Record) error {
		s.store.Install(rec.Key, mvstore.Version{
			Value: rec.Value, TS: rec.TS, SrcDC: rec.SrcDC, DV: rec.DV,
		})
		maxTS = max(maxTS, rec.TS)
		if dc := int(rec.SrcDC); dc != s.cfg.DC && dc < len(s.vv) && rec.TS > s.vv[dc] {
			s.vv[dc] = rec.TS
		}
		if int(rec.SrcDC) == s.cfg.DC {
			local = append(local, wire.Update{Key: rec.Key, Value: rec.Value, TS: rec.TS, DV: rec.DV})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Replay order is append order, which group commit may leave slightly
	// off timestamp order; the replication cut assumes its queue is
	// timestamp-sorted.
	sort.Slice(local, func(i, j int) bool { return local[i].TS < local[j].TS })
	if maxTS > 0 {
		s.clock.Update(maxTS)
	}
	s.cfg.Durable.SetSnapshotSource(func(emit func(wal.Record) error) error {
		var ferr error
		s.store.ForEachLatest(func(key string, v mvstore.Version) {
			if ferr != nil {
				return
			}
			ferr = emit(wal.Record{Key: key, Value: v.Value, TS: v.TS, SrcDC: v.SrcDC, DV: v.DV})
		})
		return ferr
	})
	return local, nil
}

// logInstall makes one local install durable per the WAL's sync mode; it
// must be called outside the put fence (fsync latency must not serialize
// the partition) and before the acknowledgment. The durable gate flips only
// on the real fsync — under background sync the client may be acked inside
// the loss window, but replication never ships a version the origin could
// still lose. On error the version stays in memory unacknowledged, which a
// crash is allowed to lose.
func (s *Server) logInstall(key string, value []byte, ts uint64, dv vclock.Vec, durable *atomic.Bool) error {
	err := s.cfg.Durable.AppendSynced([]wal.Record{{
		Key: key, Value: value, TS: ts, SrcDC: uint8(s.cfg.DC), DV: dv,
	}}, func(err error) {
		if err == nil {
			durable.Store(true)
		}
		// Unpin readers even on failure: the log is poisoned and the
		// version will never replicate, but a frozen read path on top of a
		// dying partition helps no one.
		s.durGate.complete(ts)
	})
	if err != nil {
		s.durGate.complete(ts)
	}
	return err
}

// Addr returns the server's wire address.
func (s *Server) Addr() wire.Addr { return s.node.Addr() }

// Store exposes the underlying storage for tests and convergence checks.
func (s *Server) Store() *mvstore.Store { return s.store }

// Clock exposes the server clock for tests.
func (s *Server) Clock() hlc.Clock { return s.clock }

// NextIn exposes the replication dedup cursor for dc (tests: a restarted
// sender must resume exactly at the receiver's cursor).
func (s *Server) NextIn(dc int) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if dc < 0 || dc >= len(s.nextIn) {
		return 0
	}
	return s.nextIn[dc]
}

// Start launches replication streams and the VV reporting loop.
func (s *Server) Start() {
	s.repl.start()
	s.wg.Add(1)
	go s.reportLoop()
}

// Close stops background work and detaches from the network.
func (s *Server) Close() error {
	close(s.stop)
	if s.durGate != nil {
		s.durGate.close()
	}
	s.repl.stopAll()
	s.wg.Wait()
	return s.node.Close()
}

// Handle dispatches one incoming message. It runs on a fresh goroutine per
// message (see transport) and may block.
func (s *Server) Handle(n transport.Node, src wire.From, reqID uint64, m wire.Message) {
	switch msg := m.(type) {
	case *wire.PutReq:
		s.handlePut(src, reqID, msg)
	case *wire.RotCoordReq:
		s.handleRotCoord(src, reqID, msg)
	case *wire.RotFwd:
		s.handleRotFwd(msg)
	case *wire.RotReadReq:
		s.handleRotRead(src, reqID, msg)
	case *wire.RepBatch:
		s.handleRepBatch(src, reqID, msg)
	case *wire.GSSBcast:
		s.applyGSS(msg.GSS)
	case *wire.Ping:
		_ = n.Respond(src, reqID, &wire.Pong{Nonce: msg.Nonce})
	default:
		if reqID != 0 {
			transport.RespondError(n, src, reqID, 400, "core: unexpected message")
		}
	}
}

// gssSnapshot returns a copy of the current GSS.
func (s *Server) gssSnapshot() vclock.Vec {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gss.Clone()
}

// applyGSS merges a broadcast GSS, keeping monotonicity under reordering.
func (s *Server) applyGSS(g vclock.Vec) {
	s.mu.Lock()
	s.gss.MaxInto(g)
	s.mu.Unlock()
}

// vvSnapshot returns the server's version vector with the local entry set
// to the current clock reading. With HLC or physical clocks the local entry
// advances even when the partition is idle, which is the heartbeat that
// keeps the GSS fresh (Section 4).
func (s *Server) vvSnapshot() vclock.Vec {
	s.mu.RLock()
	v := s.vv.Clone()
	s.mu.RUnlock()
	v[s.cfg.DC] = s.clock.Now()
	return v
}

// handlePut installs a new local version (Section 4, PUT path).
func (s *Server) handlePut(src wire.From, reqID uint64, m *wire.PutReq) {
	start := time.Now()
	var fsyncDur time.Duration
	defer func() {
		total := time.Since(start)
		s.ops.Put.Record(total)
		s.slow.Record(metrics.SlowOp{
			Start: start.UnixNano(), Op: "put", KeyHash: metrics.KeyHash(m.Key),
			Total: total, Fsync: fsyncDur,
		})
	}()
	deps := m.Deps
	if len(deps) != s.cfg.NumDCs {
		d := vclock.New(s.cfg.NumDCs)
		d.MaxInto(deps)
		deps = d
	}
	// The new version's timestamp must exceed every dependency entry so
	// that DV[src] dominates the vector. With a physical clock this Update
	// may wait out clock skew — Cure's write-side blocking. The blocking
	// part runs outside the fence; the final Tick inside it is instant.
	s.clock.Update(deps.Max())

	var durable *atomic.Bool
	if s.cfg.Durable != nil {
		durable = new(atomic.Bool)
	}
	s.putMu.Lock()
	ts := s.clock.Tick()
	dv := deps.Clone()
	dv[s.cfg.DC] = ts
	v := mvstore.Version{Value: m.Value, TS: ts, SrcDC: uint8(s.cfg.DC), DV: dv}
	s.store.Install(m.Key, v)
	if s.durGate != nil {
		s.durGate.add(ts)
	}
	s.repl.enqueue(wire.Update{Key: m.Key, Value: m.Value, TS: ts, DV: dv}, durable)
	s.putMu.Unlock()

	// Durability gates both the acknowledgment and replication, but not
	// the install: group commit runs outside the fence so concurrent PUTs
	// share fsyncs, and the enqueued update only becomes shippable once
	// the flag flips on the real fsync (see repStream.cut and logInstall)
	// — a version the origin could still lose must never be durably
	// applied at a remote DC.
	if s.cfg.Durable != nil {
		fs := time.Now()
		err := s.logInstall(m.Key, m.Value, ts, dv, durable)
		fsyncDur = time.Since(fs)
		if err != nil {
			transport.RespondError(s.node, src, reqID, 500, "core: wal: "+err.Error())
			return
		}
	}
	_ = s.node.Respond(src, reqID, &wire.PutResp{TS: ts, GSS: s.gssSnapshot()})
}

// makeSV picks the snapshot vector for a ROT: remote entries from the GSS
// (never ahead of what every local partition has installed, hence
// nonblocking), local entry from the coordinator clock (fresh).
func (s *Server) makeSV(seenLocal uint64, seenGSS vclock.Vec) vclock.Vec {
	sv := s.gssSnapshot()
	sv.MaxInto(seenGSS)
	sv[s.cfg.DC] = max(s.clock.Now(), seenLocal)
	return sv
}

// handleRotCoord runs the coordinator role (Figure 3).
func (s *Server) handleRotCoord(src wire.From, reqID uint64, m *wire.RotCoordReq) {
	start := time.Now()
	sv := s.makeSV(m.SeenLocal, m.SeenGSS)
	if m.Mode == uint8(TwoRounds) {
		_ = s.node.Respond(src, reqID, &wire.RotCoordResp{RotID: m.RotID, SV: sv})
		s.ops.ROT.Record(time.Since(start))
		return
	}
	// 1 1/2 rounds: forward reads; partitions answer the client directly.
	var own []string
	for _, g := range m.Groups {
		if int(g.Part) == s.cfg.Part {
			own = g.Keys
			continue
		}
		_ = s.node.Send(wire.ServerAddr(s.cfg.DC, int(g.Part)), &wire.RotFwd{
			RotID:  m.RotID,
			Client: src.Addr,
			Sess:   src.Sess,
			SV:     sv,
			Keys:   g.Keys,
		})
	}
	vals, wait := s.readAt(sv, own)
	_ = s.node.SendTo(src, &wire.RotSnap{RotID: m.RotID, SV: sv, Vals: vals})
	s.recordRead(start, wait, "rot", own)
}

// handleRotFwd serves the coordinator-forwarded leg of a 1 1/2-round ROT.
func (s *Server) handleRotFwd(m *wire.RotFwd) {
	start := time.Now()
	vals, wait := s.readAt(m.SV, m.Keys)
	_ = s.node.SendTo(wire.From{Addr: m.Client, Sess: m.Sess}, &wire.RotVals{RotID: m.RotID, Vals: vals})
	s.recordRead(start, wait, "rot", m.Keys)
}

// handleRotRead serves the second round of a 2-round ROT.
func (s *Server) handleRotRead(src wire.From, reqID uint64, m *wire.RotReadReq) {
	start := time.Now()
	vals, wait := s.readAt(m.SV, m.Keys)
	_ = s.node.Respond(src, reqID, &wire.RotReadResp{Vals: vals})
	op := "rot"
	if len(m.Keys) == 1 {
		op = "get"
	}
	s.recordRead(start, wait, op, m.Keys)
}

// recordRead feeds the read-side observability: per-op histogram plus a
// slow-op trace whose queue phase is the durability-gate wait.
func (s *Server) recordRead(start time.Time, gateWait time.Duration, op string, keys []string) {
	total := time.Since(start)
	if op == "get" {
		s.ops.Get.Record(total)
	} else {
		s.ops.ROT.Record(total)
	}
	var kh uint64
	if len(keys) > 0 {
		kh = metrics.KeyHash(keys[0])
	}
	s.slow.Record(metrics.SlowOp{
		Start: start.UnixNano(), Op: op, KeyHash: kh, Total: total, Queue: gateWait,
	})
}

// readAt returns the freshest version of each key within snapshot sv.
//
// The partition first brings its clock up to the snapshot's local entry so
// no later PUT can be assigned a timestamp inside the snapshot. Clocks that
// can jump (HLC, Lamport) make this instantaneous — nonblocking ROTs; a
// physical clock sleeps out the difference — Cure's read-side blocking.
// It also returns how long the read waited on the durability gate (the
// slow-op trace's queue phase).
func (s *Server) readAt(sv vclock.Vec, keys []string) ([]wire.KV, time.Duration) {
	if len(keys) == 0 {
		return nil, 0
	}
	var gateWait time.Duration
	local := uint64(0)
	if s.cfg.DC < len(sv) {
		local = sv[s.cfg.DC]
	}
	if s.clock.Now() < local {
		s.clock.Update(local)
	}
	// A durable partition additionally waits until every local put inside
	// the snapshot has been fsynced: serving a version the WAL could still
	// lose would let a crash un-happen an observed state. The wait is the
	// tail of a group commit (sub-millisecond in sync mode, up to the
	// background window in async mode — the documented trade-off).
	//
	// The gate must be re-checked UNDER the fence: a put already inside the
	// fence with ts ≤ SV[local] registers with the gate there, so a plain
	// wait-then-lock could slip between its timestamp assignment and its
	// registration. Once the read lock is held with the gate clear, no new
	// pending put at ts ≤ SV[local] can appear (writers are excluded, and
	// the clock move above pushes future puts past the snapshot).
	//
	// After the clock move, any in-flight PUT that has not yet entered the
	// fence will be timestamped above SV[local]; waiting for the fence
	// flushes the ones already inside it.
	if s.durGate != nil {
		gs := time.Now()
		for {
			s.durGate.waitClear(local)
			s.putMu.RLock()
			if s.durGate.clearBelow(local) {
				break
			}
			s.putMu.RUnlock()
		}
		gateWait = time.Since(gs)
	} else {
		s.putMu.RLock()
	}
	defer s.putMu.RUnlock()
	vals := make([]wire.KV, len(keys))
	for i, k := range keys {
		v, ok := s.store.ReadAtSnapshot(k, sv)
		if ok {
			vals[i] = wire.KV{Key: k, Value: v.Value, TS: v.TS}
		} else {
			vals[i] = wire.KV{Key: k}
		}
	}
	return vals, gateWait
}

// handleRepBatch applies a replication batch from a sibling replica.
//
// Deduplication: a batch is dropped only when BOTH its sequence is stale
// (below the per-source cursor) and its HighTS is covered by our version
// vector. The second condition is what makes the drop provably safe: every
// update in the batch has ts ≤ HighTS, and vv[src] = H means the origin's
// cut invariant already delivered us every origin update with ts ≤ H — so
// the batch's content is a subset of what we hold. Sequence alone is NOT
// proof: a sender recovering from a crash resumes from its durable cursor,
// which may trail what we acknowledged (the cursor fsync raced the crash),
// so stale-sequence batches with fresh HighTS carry the re-shipped
// recovered tail and must be applied (installs are idempotent).
func (s *Server) handleRepBatch(src wire.From, reqID uint64, m *wire.RepBatch) {
	srcDC := int(m.SrcDC)
	if srcDC == s.cfg.DC || srcDC >= s.cfg.NumDCs {
		transport.RespondError(s.node, src, reqID, 400, "core: bad replication source")
		return
	}
	start := time.Now()
	var fsyncDur time.Duration
	defer func() {
		s.noteRep(srcDC)
		total := time.Since(start)
		s.ops.Rep.Record(total)
		var kh uint64
		if len(m.Ups) > 0 {
			kh = metrics.KeyHash(m.Ups[0].Key)
		}
		s.slow.Record(metrics.SlowOp{
			Start: start.UnixNano(), Op: "rep", KeyHash: kh, Total: total, Fsync: fsyncDur,
		})
	}()
	s.mu.Lock()
	if m.Seq < s.nextIn[srcDC] && m.HighTS <= s.vv[srcDC] {
		// Provable duplicate (lost or delayed ack); already applied.
		s.mu.Unlock()
		_ = s.node.Respond(src, reqID, &wire.RepAck{Seq: m.Seq})
		return
	}
	prevNextIn := s.nextIn[srcDC]
	if m.Seq >= s.nextIn[srcDC] {
		s.nextIn[srcDC] = m.Seq + 1
	}
	s.mu.Unlock()

	// Replicated installs are logged as one multi-record append (one group
	// commit) BEFORE they become visible and before the batch is
	// acknowledged, waiting for the real fsync even in background-sync
	// mode: a pre-fsync install could be observed by a local ROT and then
	// taken back by a crash, and our ack advances the sender's durable
	// cursor, after which it will never re-send this batch, so acking
	// inside our loss window could diverge the DCs. A WAL failure
	// withholds the ack and the (idempotent) batch is retried.
	if s.cfg.Durable != nil && len(m.Ups) > 0 {
		recs := make([]wal.Record, len(m.Ups))
		for i := range m.Ups {
			u := &m.Ups[i]
			recs[i] = wal.Record{Key: u.Key, Value: u.Value, TS: u.TS, SrcDC: m.SrcDC, DV: u.DV}
		}
		fs := time.Now()
		err := wal.AppendAndSync(s.cfg.Durable, recs)
		fsyncDur = time.Since(fs)
		if err != nil {
			// Withholding the ack makes the sender retry; roll the dedup
			// cursor back (unless a later batch already advanced it) so the
			// retry is not mistaken for an applied duplicate and the
			// records get another chance at durability.
			s.mu.Lock()
			if s.nextIn[srcDC] == m.Seq+1 {
				s.nextIn[srcDC] = prevNextIn
			}
			s.mu.Unlock()
			transport.RespondError(s.node, src, reqID, 500, "core: wal: "+err.Error())
			return
		}
	}
	for i := range m.Ups {
		u := &m.Ups[i]
		s.store.Install(u.Key, mvstore.Version{
			Value: u.Value, TS: u.TS, SrcDC: m.SrcDC, DV: u.DV,
		})
	}
	s.mu.Lock()
	if m.HighTS > s.vv[srcDC] {
		s.vv[srcDC] = m.HighTS
	}
	s.mu.Unlock()
	_ = s.node.Respond(src, reqID, &wire.RepAck{Seq: m.Seq})
}

// reportLoop periodically reports the server's VV to the DC stabilizer.
func (s *Server) reportLoop() {
	defer s.wg.Done()
	t := newTicker(s.cfg.StabilizeEvery)
	defer t.Stop()
	stab := wire.StabilizerAddr(s.cfg.DC)
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			_ = s.node.Send(stab, &wire.VVReport{
				Part: uint32(s.cfg.Part),
				VV:   s.vvSnapshot(),
			})
		}
	}
}
