package core

import (
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Stabilizer is one DC's stabilization service. Partitions report their
// version vectors every stabilization period; the stabilizer aggregates the
// entry-wise minimum — the Global Stable Snapshot — and broadcasts it back.
//
// The paper describes partitions exchanging VVs directly; a depth-1
// aggregation tree (this service) computes the identical GSS with O(N)
// messages per round instead of O(N²) (see DESIGN.md, Known deviations).
type Stabilizer struct {
	dc     int
	parts  int
	period time.Duration
	node   transport.Node

	mu  sync.Mutex
	vvs map[uint32]vclock.Vec
	gss vclock.Vec

	stop chan struct{}
	done chan struct{}
}

// NewStabilizer attaches a stabilization service for dc to net.
func NewStabilizer(dc, numParts, numDCs int, period time.Duration, net transport.Network) (*Stabilizer, error) {
	if period <= 0 {
		period = 5 * time.Millisecond
	}
	st := &Stabilizer{
		dc:     dc,
		parts:  numParts,
		period: period,
		vvs:    make(map[uint32]vclock.Vec, numParts),
		gss:    vclock.New(numDCs),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	node, err := net.Attach(wire.StabilizerAddr(dc), st)
	if err != nil {
		return nil, err
	}
	st.node = node
	return st, nil
}

// Start launches the aggregation loop.
func (st *Stabilizer) Start() { go st.loop() }

// Close stops the service.
func (st *Stabilizer) Close() error {
	close(st.stop)
	<-st.done
	return st.node.Close()
}

// GSS returns the latest aggregated Global Stable Snapshot.
func (st *Stabilizer) GSS() vclock.Vec {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gss.Clone()
}

// Handle receives partition VV reports.
func (st *Stabilizer) Handle(_ transport.Node, _ wire.From, _ uint64, m wire.Message) {
	if r, ok := m.(*wire.VVReport); ok {
		st.mu.Lock()
		st.vvs[r.Part] = r.VV
		st.mu.Unlock()
	}
}

func (st *Stabilizer) loop() {
	defer close(st.done)
	t := newTicker(st.period)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-t.C:
			if g := st.aggregate(); g != nil {
				for p := 0; p < st.parts; p++ {
					_ = st.node.Send(wire.ServerAddr(st.dc, p), &wire.GSSBcast{GSS: g})
				}
			}
		}
	}
}

// aggregate computes min over all reported VVs once every partition has
// reported at least once; the result is kept monotone.
func (st *Stabilizer) aggregate() vclock.Vec {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.vvs) < st.parts {
		return nil
	}
	var agg vclock.Vec
	for _, vv := range st.vvs {
		if agg == nil {
			agg = vv.Clone()
		} else {
			agg.MinInto(vv)
		}
	}
	st.gss.MaxInto(agg)
	return st.gss.Clone()
}
