package core
