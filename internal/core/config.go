// Package core implements the timestamp-based causal-consistency engine of
// Section 4 of the paper. One Server instance is one partition replica.
//
// The engine is Contrarian when configured with hybrid logical-physical
// clocks (nonblocking ROTs in 1 1/2 or 2 rounds) and Cure when configured
// with loosely synchronized physical clocks (2-round ROTs that block on
// clock skew). Both variants share:
//
//   - dependency vectors DV (one entry per DC) on every version, with
//     DV[src] = the version's timestamp, enforced ≥ every other entry;
//   - a per-DC stabilization protocol aggregating partition version
//     vectors into the Global Stable Snapshot (GSS);
//   - asynchronous multi-master geo-replication with per-stream ordering
//     and replication heartbeats.
package core

import (
	"time"

	"repro/internal/hlc"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// ROTMode selects the read-only transaction protocol (Figure 3).
type ROTMode uint8

const (
	// OneAndHalfRounds is Contrarian's default: client → coordinator →
	// partitions → client, three communication steps.
	OneAndHalfRounds ROTMode = 1
	// TwoRounds is the classic coordinator protocol: client → coordinator
	// → client → partitions → client, four steps, fewer messages.
	TwoRounds ROTMode = 2
)

// ClockMode selects the timestamp source for servers.
type ClockMode uint8

const (
	// ClockHLC is Contrarian: hybrid clocks that can jump forward, giving
	// nonblocking ROTs and fresh snapshots.
	ClockHLC ClockMode = iota
	// ClockPhysical is Cure/GentleRain: physical clocks that cannot jump,
	// so reads whose snapshot is ahead of the local clock block.
	ClockPhysical
	// ClockLogical is a plain Lamport clock; nonblocking, but the GSS goes
	// stale under idle partitions (the "laggard" problem of Section 4).
	ClockLogical
)

// Config parameterizes one partition server.
type Config struct {
	DC       int // this server's data center
	Part     int // this server's partition index
	NumDCs   int
	NumParts int

	Clock ClockMode
	// Skew is this node's physical clock offset, drawn by the cluster
	// builder from ±MaxSkew to model NTP-quality synchronization.
	Skew time.Duration

	// StabilizeEvery is the stabilization protocol period (paper: 5 ms).
	StabilizeEvery time.Duration
	// RepFlushEvery bounds replication batching delay.
	RepFlushEvery time.Duration
	// RepBatchMax caps updates per replication batch.
	RepBatchMax int
	// CallTimeout bounds internal server-to-server calls.
	CallTimeout time.Duration
	// RepRetryTimeout bounds one replication batch attempt before the
	// (idempotent) batch is retried; it masks WAN loss quickly.
	RepRetryTimeout time.Duration
	// MaxVersions caps per-key version chains (0 = default).
	MaxVersions int
	// StoreShards sets the store's shard count (0 = auto-size from
	// GOMAXPROCS; values are rounded up to a power of two).
	StoreShards int

	// Durable, when non-nil, makes every install durable before it is
	// acknowledged: NewServer replays the recovered state into the store and
	// registers the snapshot source, and the PUT/replication paths append to
	// the log (group-committed) before responding. Nil keeps the server
	// purely in memory.
	Durable wal.Durability

	// Slow, when non-nil, receives a trace record for every handler
	// invocation that exceeds the ring's threshold (shared process-wide;
	// see metrics.SlowRing). Nil disables capture at zero cost.
	Slow *metrics.SlowRing
}

// withDefaults fills zero fields with production defaults.
func (c Config) withDefaults() Config {
	if c.NumDCs <= 0 {
		c.NumDCs = 1
	}
	if c.NumParts <= 0 {
		c.NumParts = 1
	}
	if c.StabilizeEvery <= 0 {
		c.StabilizeEvery = 5 * time.Millisecond
	}
	if c.RepFlushEvery <= 0 {
		c.RepFlushEvery = 2 * time.Millisecond
	}
	if c.RepBatchMax <= 0 {
		c.RepBatchMax = 256
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 10 * time.Second
	}
	if c.RepRetryTimeout <= 0 {
		c.RepRetryTimeout = time.Second
	}
	return c
}

// newClock builds this node's clock per the configured mode and skew.
func (c Config) newClock() hlc.Clock {
	src := hlc.WallSource(c.Skew)
	switch c.Clock {
	case ClockPhysical:
		return hlc.NewPhysical(src)
	case ClockLogical:
		return hlc.NewLamport(0)
	default:
		return hlc.NewHLC(src)
	}
}
