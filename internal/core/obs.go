package core

import (
	"strconv"
	"time"

	"repro/internal/hlc"
	"repro/internal/metrics"
)

// Observability surface of a core partition server: per-op latency
// histograms, the shared slow-op trace ring, and replication-lag gauges.
//
// The histograms and the last-receipt timestamps are recorded inline by the
// handlers (lock-free atomics, nil-safe ring); everything else is computed
// at scrape time from state the server already maintains, so a partition
// that is never scraped pays only the histogram Record per op.

// RegisterMetrics exposes the server's per-op histograms, store occupancy,
// and replication-lag gauges under r. Labels should identify the partition
// (dc, partition, family); every partition in a process shares r.
func (s *Server) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	s.ops.Register(r, "kv_server_op_seconds",
		"End-to-end server handler latency by operation.", labels...)
	s.store.Register(r, labels...)
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		dc := dc
		peer := metrics.Label{Name: "peer_dc", Value: strconv.Itoa(dc)}
		r.GaugeFunc("kv_replication_last_update_age_seconds",
			"Seconds since the last replication batch was received from the peer DC (server start if none yet).",
			func() float64 { return s.lastRepAge(dc).Seconds() }, withLabel(labels, peer)...)
		if s.cfg.Clock != ClockLogical {
			r.GaugeFunc("kv_replication_lag_seconds",
				"Clock-derived replication cursor lag behind the peer DC: local clock minus the newest timestamp received from it.",
				func() float64 { return s.replicationLag(dc) }, withLabel(labels, peer)...)
		}
	}
	if s.cfg.Clock != ClockLogical {
		r.GaugeFunc("kv_visibility_lag_seconds",
			"Visibility lag: local clock minus the Global Stable Snapshot's oldest entry — how stale a fresh ROT snapshot is.",
			func() float64 { return s.visibilityLag() }, labels...)
	}
}

// withLabel returns labels plus l in a fresh slice (append would share the
// backing array across the registration loop).
func withLabel(labels []metrics.Label, l metrics.Label) []metrics.Label {
	out := make([]metrics.Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, l)
}

// lastRepAge returns the wall-clock age of the newest replication batch
// received from dc, falling back to the server's start time before the
// first batch so the gauge is meaningful (and monotone) from boot.
func (s *Server) lastRepAge(dc int) time.Duration {
	if dc < 0 || dc >= len(s.lastRep) {
		return 0
	}
	at := s.lastRep[dc].Load()
	if at == 0 {
		at = s.started
	}
	return time.Duration(nanotimeSince(at))
}

// nanotimeSince is time.Since over stored UnixNano values.
func nanotimeSince(unixNano int64) int64 {
	return time.Now().UnixNano() - unixNano
}

// noteRep stamps receipt of a replication batch from dc.
func (s *Server) noteRep(dc int) {
	if dc >= 0 && dc < len(s.lastRep) {
		s.lastRep[dc].Store(time.Now().UnixNano())
	}
}

// replicationLag is the clock-derived cursor lag behind dc in seconds:
// the microsecond component of the local clock minus that of vv[dc].
// Timestamps pack wall micros in their upper bits (hlc.Pack), so the
// difference is real time as long as the DCs' clocks are synchronized —
// the same NTP assumption Cure already makes. Meaningless under Lamport
// clocks; RegisterMetrics gates on the clock mode.
func (s *Server) replicationLag(dc int) float64 {
	s.mu.RLock()
	var ts uint64
	if dc >= 0 && dc < len(s.vv) {
		ts = s.vv[dc]
	}
	s.mu.RUnlock()
	return microsLagSeconds(s.clock.Now(), ts)
}

// visibilityLag is the local clock minus the GSS's oldest entry, in
// seconds: an upper bound on how far behind real time a freshly-taken ROT
// snapshot is.
func (s *Server) visibilityLag() float64 {
	g := s.gssSnapshot()
	if len(g) == 0 {
		return 0
	}
	oldest := g[0]
	for _, e := range g[1:] {
		if e < oldest {
			oldest = e
		}
	}
	return microsLagSeconds(s.clock.Now(), oldest)
}

// microsLagSeconds converts a timestamp difference to seconds via the
// packed microsecond components, clamping at zero.
func microsLagSeconds(now, then uint64) float64 {
	n, t := hlc.Micros(now), hlc.Micros(then)
	if t >= n {
		return 0
	}
	return float64(n-t) / 1e6
}
