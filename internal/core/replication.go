package core

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/wal"
	"repro/internal/wire"
)

// newTicker wraps time.NewTicker, flooring the period at a safe minimum.
func newTicker(d time.Duration) *time.Ticker {
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	return time.NewTicker(d)
}

// replicator ships this partition's local PUTs to its sibling replicas in
// every other DC.
//
// Queues are appended inside the server's put fence (putMu) and drained
// inside it too, so the replication cut — the HighTS a batch carries — is
// exact: every local version with ts ≤ HighTS is in this or an earlier
// batch. The receiver advances its VV[src] to HighTS, and through the
// stabilization protocol that entry flows into the GSS; an over-advanced
// cut would let remote readers observe snapshots missing local versions,
// which is precisely the anomaly the paper's Figure 1 illustrates.
//
// An empty batch with a fresh cut is the replication heartbeat of Section 4
// that keeps remote VVs moving while a partition is idle.
type replicator struct {
	s       *Server
	streams []*repStream
}

// repUpdate is one queued update plus its durability gate: nil means the
// update needs no fsync (in-memory server), otherwise the flag flips true
// once the origin's WAL append has committed. Replication ships only
// durable updates — a write the origin could still lose in a crash must
// never be durably applied at a remote DC, or the replicas diverge the
// moment the origin recovers without it.
type repUpdate struct {
	wire.Update
	durable *atomic.Bool
}

func (u *repUpdate) ready() bool { return u.durable == nil || u.durable.Load() }

type repStream struct {
	s     *Server
	dst   wire.Addr
	dstDC int
	// seq is the last sequence this stream used; seeded from the durable
	// cursor so a restarted sender resumes exactly where the receiver's
	// dedup expects it (see ROADMAP: this replaced the wall-clock base).
	seq uint64

	queue []repUpdate // guarded by s.putMu

	ctx    context.Context // cancelled on stop so in-flight calls abort
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}
}

// newReplicator builds one stream per remote DC. recovered holds this
// partition's WAL-recovered local updates in timestamp order; each stream
// is seeded with its durable cursor and re-enqueues the recovered updates
// the cursor says that DC has not acknowledged — the tail a crash stranded
// between local fsync and remote delivery.
func newReplicator(s *Server, recovered []wire.Update) *replicator {
	cursors := make(map[int]wal.Cursor)
	if s.cfg.Durable != nil {
		for _, c := range s.cfg.Durable.Cursors() {
			cursors[int(c.DstDC)] = c
		}
	}
	r := &replicator{s: s}
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		st := &repStream{
			s:      s,
			dst:    wire.ServerAddr(dc, s.cfg.Part),
			dstDC:  dc,
			seq:    cursors[dc].Seq,
			ctx:    ctx,
			cancel: cancel,
			stop:   make(chan struct{}),
			done:   make(chan struct{}),
		}
		for _, u := range recovered {
			if u.TS > cursors[dc].HighTS {
				// Recovered from the WAL, so durable by definition: no gate.
				st.queue = append(st.queue, repUpdate{Update: u})
			}
		}
		r.streams = append(r.streams, st)
	}
	return r
}

func (r *replicator) start() {
	for _, st := range r.streams {
		go st.run()
	}
}

func (r *replicator) stopAll() {
	for _, st := range r.streams {
		close(st.stop)
		st.cancel()
	}
	for _, st := range r.streams {
		<-st.done
	}
}

// enqueue records one local update for every remote DC. The caller must
// hold s.putMu (it is called from the PUT fence). durable is the update's
// durability gate (nil when the server has no WAL).
func (r *replicator) enqueue(u wire.Update, durable *atomic.Bool) {
	for _, st := range r.streams {
		st.queue = append(st.queue, repUpdate{Update: u, durable: durable})
	}
}

// cut drains up to RepBatchMax queued DURABLE updates and computes the
// replication cut. Draining stops at the first update whose WAL append has
// not committed yet, and the cut is clamped below that update's timestamp:
// updates are enqueued in timestamp order inside the fence, so everything
// below the clamp is in this or an earlier batch, and nothing the origin
// could still lose is ever shipped. A fully drained queue cuts at the
// current clock reading (safe because enqueueing is atomic with timestamp
// assignment under putMu).
func (st *repStream) cut() ([]wire.Update, uint64) {
	st.s.putMu.Lock()
	defer st.s.putMu.Unlock()
	n := min(len(st.queue), st.s.cfg.RepBatchMax)
	k := 0
	for k < n && st.queue[k].ready() {
		k++
	}
	batch := make([]wire.Update, k)
	for i := range batch {
		batch[i] = st.queue[i].Update
	}
	st.queue = st.queue[k:]
	if len(st.queue) == 0 {
		st.queue = nil // release the drained backing array eventually
		return batch, st.s.clock.Now()
	}
	if !st.queue[0].ready() {
		// Blocked on an in-flight (or failed) group commit: the cut must
		// stay strictly below the undurable head so remote snapshots never
		// cover a version that might not survive the origin.
		return batch, st.queue[0].TS - 1
	}
	return batch, batch[k-1].TS
}

func (st *repStream) run() {
	defer close(st.done)
	// st.seq resumes from the durable cursor (zero without a WAL), so a
	// recovered sender continues exactly where the receiver's dedup cursor
	// expects. Receivers no longer trust sequence alone: a batch is dropped
	// as a duplicate only when its sequence is stale AND its HighTS is
	// covered by the receiver's version vector, which makes sequence
	// discontinuities across restarts (heartbeat sequences are not
	// persisted) safe in both directions.
	flush := newTicker(st.s.cfg.RepFlushEvery)
	defer flush.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-flush.C:
		}
		for {
			batch, high := st.cut()
			st.seq++
			acked := st.deliver(&wire.RepBatch{
				SrcDC:   uint8(st.s.cfg.DC),
				SrcPart: uint32(st.s.cfg.Part),
				Seq:     st.seq,
				HighTS:  high,
				Ups:     batch,
			})
			// Persist the acknowledged frontier — but only for batches that
			// carried updates: heartbeats advance the cut every few
			// milliseconds and journaling each would turn an idle system
			// into constant fsync traffic. A stale cursor only means the
			// recovered sender re-ships an acknowledged suffix, which the
			// receiver detects and drops.
			if acked && len(batch) > 0 && st.s.cfg.Durable != nil {
				_ = st.s.cfg.Durable.AppendCursor(wal.Cursor{
					DstDC: uint8(st.dstDC), Seq: st.seq, HighTS: high,
				})
			}
			// Keep draining without waiting for the ticker while there is
			// backlog; an idle queue returns to heartbeat pacing.
			if !acked || len(batch) < st.s.cfg.RepBatchMax {
				break
			}
		}
	}
}

// deliver retries the batch until acknowledged (true) or the stream stops.
func (st *repStream) deliver(msg *wire.RepBatch) bool {
	for {
		ctx, cancel := context.WithTimeout(st.ctx, st.s.cfg.RepRetryTimeout)
		resp, err := st.s.node.Call(ctx, st.dst, msg)
		cancel()
		if err == nil {
			if _, ok := resp.(*wire.RepAck); ok {
				return true
			}
		}
		if st.ctx.Err() != nil {
			return false
		}
		select {
		case <-st.stop:
			return false
		case <-time.After(10 * time.Millisecond):
		}
	}
}
