package core

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// newTicker wraps time.NewTicker, flooring the period at a safe minimum.
func newTicker(d time.Duration) *time.Ticker {
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	return time.NewTicker(d)
}

// replicator ships this partition's local PUTs to its sibling replicas in
// every other DC.
//
// Queues are appended inside the server's put fence (putMu) and drained
// inside it too, so the replication cut — the HighTS a batch carries — is
// exact: every local version with ts ≤ HighTS is in this or an earlier
// batch. The receiver advances its VV[src] to HighTS, and through the
// stabilization protocol that entry flows into the GSS; an over-advanced
// cut would let remote readers observe snapshots missing local versions,
// which is precisely the anomaly the paper's Figure 1 illustrates.
//
// An empty batch with a fresh cut is the replication heartbeat of Section 4
// that keeps remote VVs moving while a partition is idle.
type replicator struct {
	s       *Server
	streams []*repStream
}

// repUpdate is one queued update plus its durability gate: nil means the
// update needs no fsync (in-memory server), otherwise the flag flips true
// once the origin's WAL append has committed. Replication ships only
// durable updates — a write the origin could still lose in a crash must
// never be durably applied at a remote DC, or the replicas diverge the
// moment the origin recovers without it.
type repUpdate struct {
	wire.Update
	durable *atomic.Bool
}

func (u *repUpdate) ready() bool { return u.durable == nil || u.durable.Load() }

type repStream struct {
	s   *Server
	dst wire.Addr

	queue []repUpdate // guarded by s.putMu

	ctx    context.Context // cancelled on stop so in-flight calls abort
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}
}

func newReplicator(s *Server) *replicator {
	r := &replicator{s: s}
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		r.streams = append(r.streams, &repStream{
			s:      s,
			dst:    wire.ServerAddr(dc, s.cfg.Part),
			ctx:    ctx,
			cancel: cancel,
			stop:   make(chan struct{}),
			done:   make(chan struct{}),
		})
	}
	return r
}

func (r *replicator) start() {
	for _, st := range r.streams {
		go st.run()
	}
}

func (r *replicator) stopAll() {
	for _, st := range r.streams {
		close(st.stop)
		st.cancel()
	}
	for _, st := range r.streams {
		<-st.done
	}
}

// enqueue records one local update for every remote DC. The caller must
// hold s.putMu (it is called from the PUT fence). durable is the update's
// durability gate (nil when the server has no WAL).
func (r *replicator) enqueue(u wire.Update, durable *atomic.Bool) {
	for _, st := range r.streams {
		st.queue = append(st.queue, repUpdate{Update: u, durable: durable})
	}
}

// cut drains up to RepBatchMax queued DURABLE updates and computes the
// replication cut. Draining stops at the first update whose WAL append has
// not committed yet, and the cut is clamped below that update's timestamp:
// updates are enqueued in timestamp order inside the fence, so everything
// below the clamp is in this or an earlier batch, and nothing the origin
// could still lose is ever shipped. A fully drained queue cuts at the
// current clock reading (safe because enqueueing is atomic with timestamp
// assignment under putMu).
func (st *repStream) cut() ([]wire.Update, uint64) {
	st.s.putMu.Lock()
	defer st.s.putMu.Unlock()
	n := min(len(st.queue), st.s.cfg.RepBatchMax)
	k := 0
	for k < n && st.queue[k].ready() {
		k++
	}
	batch := make([]wire.Update, k)
	for i := range batch {
		batch[i] = st.queue[i].Update
	}
	st.queue = st.queue[k:]
	if len(st.queue) == 0 {
		st.queue = nil // release the drained backing array eventually
		return batch, st.s.clock.Now()
	}
	if !st.queue[0].ready() {
		// Blocked on an in-flight (or failed) group commit: the cut must
		// stay strictly below the undurable head so remote snapshots never
		// cover a version that might not survive the origin.
		return batch, st.queue[0].TS - 1
	}
	return batch, batch[k-1].TS
}

func (st *repStream) run() {
	defer close(st.done)
	// Receivers deduplicate batches by requiring seq to advance, so the
	// stream's base must be monotone across process restarts: a durable
	// partition that crashes and recovers must not resume at seq 1, or a
	// surviving receiver (whose cursor is high) would ack-and-drop every
	// post-restart batch as a duplicate. Wall-clock nanoseconds outpace
	// any achievable batch rate, so as long as the host clock does not
	// step back past the previous process's start (NTP slew is fine; a VM
	// snapshot restore is not), a restarted stream starts above where its
	// predecessor stopped. Persisting per-stream cursors in the WAL would
	// remove the assumption (see ROADMAP).
	seq := uint64(time.Now().UnixNano())
	flush := newTicker(st.s.cfg.RepFlushEvery)
	defer flush.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-flush.C:
		}
		for {
			batch, high := st.cut()
			seq++
			st.deliver(&wire.RepBatch{
				SrcDC:   uint8(st.s.cfg.DC),
				SrcPart: uint32(st.s.cfg.Part),
				Seq:     seq,
				HighTS:  high,
				Ups:     batch,
			})
			// Keep draining without waiting for the ticker while there is
			// backlog; an idle queue returns to heartbeat pacing.
			if len(batch) < st.s.cfg.RepBatchMax {
				break
			}
		}
	}
}

// deliver retries the batch until acknowledged or the stream stops.
func (st *repStream) deliver(msg *wire.RepBatch) {
	for {
		ctx, cancel := context.WithTimeout(st.ctx, st.s.cfg.RepRetryTimeout)
		resp, err := st.s.node.Call(ctx, st.dst, msg)
		cancel()
		if err == nil {
			if _, ok := resp.(*wire.RepAck); ok {
				return
			}
		}
		if st.ctx.Err() != nil {
			return
		}
		select {
		case <-st.stop:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}
