package core

import (
	"context"
	"time"

	"repro/internal/wire"
)

// newTicker wraps time.NewTicker, flooring the period at a safe minimum.
func newTicker(d time.Duration) *time.Ticker {
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	return time.NewTicker(d)
}

// replicator ships this partition's local PUTs to its sibling replicas in
// every other DC.
//
// Queues are appended inside the server's put fence (putMu) and drained
// inside it too, so the replication cut — the HighTS a batch carries — is
// exact: every local version with ts ≤ HighTS is in this or an earlier
// batch. The receiver advances its VV[src] to HighTS, and through the
// stabilization protocol that entry flows into the GSS; an over-advanced
// cut would let remote readers observe snapshots missing local versions,
// which is precisely the anomaly the paper's Figure 1 illustrates.
//
// An empty batch with a fresh cut is the replication heartbeat of Section 4
// that keeps remote VVs moving while a partition is idle.
type replicator struct {
	s       *Server
	streams []*repStream
}

type repStream struct {
	s   *Server
	dst wire.Addr

	queue []wire.Update // guarded by s.putMu

	ctx    context.Context // cancelled on stop so in-flight calls abort
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}
}

func newReplicator(s *Server) *replicator {
	r := &replicator{s: s}
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		r.streams = append(r.streams, &repStream{
			s:      s,
			dst:    wire.ServerAddr(dc, s.cfg.Part),
			ctx:    ctx,
			cancel: cancel,
			stop:   make(chan struct{}),
			done:   make(chan struct{}),
		})
	}
	return r
}

func (r *replicator) start() {
	for _, st := range r.streams {
		go st.run()
	}
}

func (r *replicator) stopAll() {
	for _, st := range r.streams {
		close(st.stop)
		st.cancel()
	}
	for _, st := range r.streams {
		<-st.done
	}
}

// enqueue records one local update for every remote DC. The caller must
// hold s.putMu (it is called from the PUT fence).
func (r *replicator) enqueue(u wire.Update) {
	for _, st := range r.streams {
		st.queue = append(st.queue, u)
	}
}

// cut drains up to RepBatchMax queued updates and computes the replication
// cut: if the queue drained fully the cut is the current clock reading
// (safe because enqueueing is atomic with timestamp assignment under
// putMu); otherwise it is the last drained update's timestamp.
func (st *repStream) cut() ([]wire.Update, uint64) {
	st.s.putMu.Lock()
	defer st.s.putMu.Unlock()
	n := min(len(st.queue), st.s.cfg.RepBatchMax)
	batch := st.queue[:n:n]
	st.queue = st.queue[n:]
	if len(st.queue) == 0 {
		st.queue = nil // release the drained backing array eventually
		return batch, st.s.clock.Now()
	}
	return batch, batch[n-1].TS
}

func (st *repStream) run() {
	defer close(st.done)
	seq := uint64(0)
	flush := newTicker(st.s.cfg.RepFlushEvery)
	defer flush.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-flush.C:
		}
		for {
			batch, high := st.cut()
			seq++
			st.deliver(&wire.RepBatch{
				SrcDC:   uint8(st.s.cfg.DC),
				SrcPart: uint32(st.s.cfg.Part),
				Seq:     seq,
				HighTS:  high,
				Ups:     batch,
			})
			// Keep draining without waiting for the ticker while there is
			// backlog; an idle queue returns to heartbeat pacing.
			if len(batch) < st.s.cfg.RepBatchMax {
				break
			}
		}
	}
}

// deliver retries the batch until acknowledged or the stream stops.
func (st *repStream) deliver(msg *wire.RepBatch) {
	for {
		ctx, cancel := context.WithTimeout(st.ctx, st.s.cfg.RepRetryTimeout)
		resp, err := st.s.node.Call(ctx, st.dst, msg)
		cancel()
		if err == nil {
			if _, ok := resp.(*wire.RepAck); ok {
				return
			}
		}
		if st.ctx.Err() != nil {
			return
		}
		select {
		case <-st.stop:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}
