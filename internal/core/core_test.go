package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// testDeployment wires servers, stabilizers and a client over a zero-latency
// local network inside the core package (white-box tests).
type testDeployment struct {
	net     *transport.Local
	servers []*Server
	stabs   []*Stabilizer
	ring    ring.Ring
}

func deploy(t *testing.T, dcs, parts int, clock ClockMode) *testDeployment {
	t.Helper()
	d := &testDeployment{
		net:  transport.NewLocal(transport.LatencyModel{}),
		ring: ring.New(parts),
	}
	for dc := 0; dc < dcs; dc++ {
		for p := 0; p < parts; p++ {
			s, err := NewServer(Config{
				DC: dc, Part: p, NumDCs: dcs, NumParts: parts,
				Clock: clock, StabilizeEvery: time.Millisecond,
				RepFlushEvery: time.Millisecond,
			}, d.net)
			if err != nil {
				t.Fatal(err)
			}
			d.servers = append(d.servers, s)
		}
		st, err := NewStabilizer(dc, parts, dcs, time.Millisecond, d.net)
		if err != nil {
			t.Fatal(err)
		}
		d.stabs = append(d.stabs, st)
		st.Start()
	}
	for _, s := range d.servers {
		s.Start()
	}
	t.Cleanup(func() {
		for _, s := range d.servers {
			s.Close()
		}
		for _, st := range d.stabs {
			st.Close()
		}
		d.net.Close()
	})
	return d
}

func (d *testDeployment) client(t *testing.T, dc, id int, mode ROTMode) *Client {
	t.Helper()
	dcs := d.servers[len(d.servers)-1].cfg.NumDCs
	c, err := NewClient(ClientConfig{DC: dc, ID: id, NumDCs: dcs, Ring: d.ring, Mode: mode}, d.net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestMakeSV(t *testing.T) {
	d := deploy(t, 2, 1, ClockHLC)
	s := d.servers[0] // dc0
	s.applyGSS(vclock.Vec{50, 40})
	sv := s.makeSV(999999, vclock.Vec{10, 60})
	if sv[1] != 60 {
		t.Fatalf("sv[1] = %d, want max(GSS, seen) = 60", sv[1])
	}
	if sv[0] < 999999 {
		t.Fatalf("sv[0] = %d, must cover client's seen local ts", sv[0])
	}
}

func TestGSSAdvancesWhenIdle(t *testing.T) {
	d := deploy(t, 2, 2, ClockHLC)
	// With HLCs and replication heartbeats, the GSS must advance with
	// physical time even though no PUT ever happens.
	g0 := d.servers[0].gssSnapshot()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		g1 := d.servers[0].gssSnapshot()
		if g1[0] > g0[0] && g1[1] > g0[1] && g1.Min() > 0 {
			return
		}
	}
	t.Fatalf("GSS did not advance while idle: %v -> %v", g0, d.servers[0].gssSnapshot())
}

func TestPutRespCarriesGSS(t *testing.T) {
	d := deploy(t, 1, 1, ClockHLC)
	cli := d.client(t, 0, 1, OneAndHalfRounds)
	ctx := context.Background()
	time.Sleep(20 * time.Millisecond) // let stabilization produce a GSS
	if _, err := cli.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	seen := cli.Seen()
	if seen[0] == 0 {
		t.Fatalf("client causal context not updated: %v", seen)
	}
}

func TestClientSeenMonotone(t *testing.T) {
	d := deploy(t, 1, 2, ClockHLC)
	cli := d.client(t, 0, 1, OneAndHalfRounds)
	ctx := context.Background()
	var prev vclock.Vec
	for i := 0; i < 10; i++ {
		if _, err := cli.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.ROT(ctx, []string{"k0", fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatal(err)
		}
		cur := cli.Seen()
		if prev != nil && !prev.LEQ(cur) {
			t.Fatalf("client context went backwards: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestROTSnapshotTimestampsWithinSV(t *testing.T) {
	d := deploy(t, 1, 2, ClockHLC)
	cli := d.client(t, 0, 1, OneAndHalfRounds)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		cli.Put(ctx, fmt.Sprintf("a%d", i), []byte("v"))
	}
	kvs, err := cli.ROT(ctx, []string{"a0", "a1", "a2", "a3", "a4"})
	if err != nil {
		t.Fatal(err)
	}
	sv := cli.Seen()
	for _, kv := range kvs {
		if kv.TS > sv[0] {
			t.Fatalf("returned version ts %d above snapshot %v", kv.TS, sv)
		}
		if kv.TS == 0 {
			t.Fatalf("key %s missing from snapshot read", kv.Key)
		}
	}
}

func TestStabilizerAggregatesMin(t *testing.T) {
	net := transport.NewLocal(transport.LatencyModel{})
	defer net.Close()
	st, err := NewStabilizer(0, 2, 2, time.Millisecond, net)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Start()

	gssCh := make(chan vclock.Vec, 16)
	// Fake partitions that capture GSS broadcasts.
	for p := 0; p < 2; p++ {
		_, err := net.Attach(wire.ServerAddr(0, p), transport.HandlerFunc(
			func(_ transport.Node, _ wire.From, _ uint64, m wire.Message) {
				if g, ok := m.(*wire.GSSBcast); ok {
					select {
					case gssCh <- g.GSS:
					default:
					}
				}
			}))
		if err != nil {
			t.Fatal(err)
		}
	}
	reporter, _ := net.Attach(wire.ClientAddr(0, 77), transport.HandlerFunc(func(transport.Node, wire.From, uint64, wire.Message) {}))
	reporter.Send(wire.StabilizerAddr(0), &wire.VVReport{Part: 0, VV: vclock.Vec{100, 30}})
	reporter.Send(wire.StabilizerAddr(0), &wire.VVReport{Part: 1, VV: vclock.Vec{80, 50}})

	deadline := time.After(3 * time.Second)
	for {
		select {
		case g := <-gssCh:
			if g.Equal(vclock.Vec{80, 30}) {
				return
			}
		case <-deadline:
			t.Fatal("expected GSS [80 30] never broadcast")
		}
	}
}

func TestStabilizerWaitsForAllPartitions(t *testing.T) {
	net := transport.NewLocal(transport.LatencyModel{})
	defer net.Close()
	st, err := NewStabilizer(0, 3, 2, time.Millisecond, net)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Start()
	reporter, _ := net.Attach(wire.ClientAddr(0, 77), transport.HandlerFunc(func(transport.Node, wire.From, uint64, wire.Message) {}))
	reporter.Send(wire.StabilizerAddr(0), &wire.VVReport{Part: 0, VV: vclock.Vec{100, 30}})
	time.Sleep(50 * time.Millisecond)
	if g := st.GSS(); g.Max() != 0 {
		t.Fatalf("GSS advanced with only 1/3 partitions reporting: %v", g)
	}
}

func TestReplicationDuplicateBatchIgnored(t *testing.T) {
	d := deploy(t, 2, 1, ClockHLC)
	s := d.servers[1] // dc1
	sender, _ := d.net.Attach(wire.ClientAddr(0, 50), transport.HandlerFunc(func(transport.Node, wire.From, uint64, wire.Message) {}))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	batch := &wire.RepBatch{
		SrcDC: 0, SrcPart: 0, Seq: 1, HighTS: 10,
		Ups: []wire.Update{{Key: "dup", Value: []byte("v"), TS: 10, DV: vclock.Vec{10, 0}}},
	}
	if _, err := sender.Call(ctx, s.Addr(), batch); err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Call(ctx, s.Addr(), batch); err != nil {
		t.Fatal(err) // duplicate must still be acked
	}
	if got := s.store.ChainLen("dup"); got != 1 {
		t.Fatalf("duplicate batch installed twice: chain len %d", got)
	}
}

func TestTwoRoundROTReadsOwnCoordinatorPartition(t *testing.T) {
	d := deploy(t, 1, 1, ClockHLC) // single partition: coordinator serves all keys
	cli := d.client(t, 0, 1, TwoRounds)
	ctx := context.Background()
	if _, err := cli.Put(ctx, "only", []byte("x")); err != nil {
		t.Fatal(err)
	}
	kvs, err := cli.ROT(ctx, []string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	if string(kvs[0].Value) != "x" {
		t.Fatalf("got %q", kvs[0].Value)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.StabilizeEvery != 5*time.Millisecond {
		t.Fatalf("default stabilization = %v, want 5ms (paper §5.2)", c.StabilizeEvery)
	}
	if c.NumDCs != 1 || c.NumParts != 1 || c.RepBatchMax <= 0 || c.CallTimeout <= 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
}

func TestClockModes(t *testing.T) {
	if !(Config{Clock: ClockHLC}).newClock().CanJump() {
		t.Fatal("HLC must jump")
	}
	if (Config{Clock: ClockPhysical}).newClock().CanJump() {
		t.Fatal("physical must not jump")
	}
	if !(Config{Clock: ClockLogical}).newClock().CanJump() {
		t.Fatal("logical must jump")
	}
}

func TestClientGroupsCoordinatorIsFirstKeyOwner(t *testing.T) {
	d := deploy(t, 1, 4, ClockHLC)
	cli := d.client(t, 0, 1, OneAndHalfRounds)
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	groups := cli.groups(keys)
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	if int(groups[0].Part) != d.ring.Owner(keys[0]) {
		t.Fatalf("coordinator = partition %d, want owner of %q (%d)",
			groups[0].Part, keys[0], d.ring.Owner(keys[0]))
	}
	// Every key appears exactly once, in its owner's group.
	seen := map[string]int{}
	for _, g := range groups {
		for _, k := range g.Keys {
			seen[k]++
			if d.ring.Owner(k) != int(g.Part) {
				t.Fatalf("key %q grouped under %d, owned by %d", k, g.Part, d.ring.Owner(k))
			}
		}
	}
	for _, k := range keys {
		if seen[k] != 1 {
			t.Fatalf("key %q appears %d times", k, seen[k])
		}
	}
}

func TestWarmAndPing(t *testing.T) {
	d := deploy(t, 1, 3, ClockHLC)
	cli := d.client(t, 0, 1, OneAndHalfRounds)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cli.Warm(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cli.Ping(ctx, 0); err != nil {
		t.Fatal(err)
	}
}
