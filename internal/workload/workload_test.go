package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ring"
)

func TestPutProbability(t *testing.T) {
	// w = q/(q + (1-q)p): verify the inversion for the paper's parameters.
	for _, c := range []struct {
		w    float64
		p    int
		want float64
	}{
		{0.05, 4, 0.05 * 4 / (1 - 0.05 + 0.05*4)},
		{0.01, 4, 0.01 * 4 / (1 - 0.01 + 0.01*4)},
		{0.1, 24, 0.1 * 24 / (1 - 0.1 + 0.1*24)},
	} {
		cfg := Config{WriteRatio: c.w, RotSize: c.p}
		got := cfg.PutProbability()
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PutProbability(w=%v,p=%d) = %v, want %v", c.w, c.p, got, c.want)
		}
		// Round trip: with probability q, the realized w matches.
		q := got
		realized := q / (q + (1-q)*float64(c.p))
		if math.Abs(realized-c.w) > 1e-12 {
			t.Errorf("round trip w = %v, want %v", realized, c.w)
		}
	}
	if (Config{WriteRatio: 0, RotSize: 4}).PutProbability() != 0 {
		t.Error("w=0 must never put")
	}
	if (Config{WriteRatio: 1, RotSize: 4}).PutProbability() != 1 {
		t.Error("w=1 must always put")
	}
}

func TestBuildKeySpace(t *testing.T) {
	r := ring.New(8)
	cfg := Config{Partitions: 8, KeysPerPartition: 100}
	ks := BuildKeySpace(cfg, r)
	for p, pool := range ks.Keys {
		if len(pool) != 100 {
			t.Fatalf("partition %d has %d keys, want 100", p, len(pool))
		}
		for _, k := range pool {
			if r.Owner(k) != p {
				t.Fatalf("key %q in pool %d but owned by %d", k, p, r.Owner(k))
			}
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n = 1000
	z := NewZipfian(n, 0.99)
	r := rand.New(rand.NewSource(7))
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next(r)
		if v >= n {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must be much hotter than the median rank, and the head must
	// dominate: with theta=0.99, the top 10% of keys get well over half
	// the accesses.
	if counts[0] < draws/20 {
		t.Fatalf("rank 0 drew %d/%d, expected heavy head", counts[0], draws)
	}
	head := 0
	for i := 0; i < n/10; i++ {
		head += counts[i]
	}
	if float64(head) < 0.5*draws {
		t.Fatalf("top 10%% drew %.1f%%, want > 50%%", 100*float64(head)/draws)
	}
}

func TestZipfianUniform(t *testing.T) {
	const n = 100
	z := NewZipfian(n, 0)
	r := rand.New(rand.NewSource(7))
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next(r)]++
	}
	for i, c := range counts {
		if c < draws/n/2 || c > draws/n*2 {
			t.Fatalf("uniform draw skewed at rank %d: %d", i, c)
		}
	}
}

func TestZipfianModerate(t *testing.T) {
	// z=0.8 must be strictly between uniform and z=0.99 in head mass.
	const n, draws = 1000, 100000
	r := rand.New(rand.NewSource(3))
	headMass := func(theta float64) float64 {
		z := NewZipfian(n, theta)
		head := 0
		for i := 0; i < draws; i++ {
			if z.Next(r) < n/100 {
				head++
			}
		}
		return float64(head) / draws
	}
	h0, h8, h99 := headMass(0), headMass(0.8), headMass(0.99)
	if !(h0 < h8 && h8 < h99) {
		t.Fatalf("head mass not ordered: z0=%v z0.8=%v z0.99=%v", h0, h8, h99)
	}
}

func TestGenOpMix(t *testing.T) {
	r := ring.New(4)
	cfg := Default(4, 50)
	ks := BuildKeySpace(cfg, r)
	g := NewGen(cfg, ks, 1)
	var puts, rots, reads int
	for i := 0; i < 50000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpPut:
			puts++
			if len(op.Keys) != 1 {
				t.Fatalf("PUT with %d keys", len(op.Keys))
			}
			if len(op.Value) != cfg.ValueSize {
				t.Fatalf("value size %d, want %d", len(op.Value), cfg.ValueSize)
			}
		case OpROT:
			rots++
			reads += len(op.Keys)
			if len(op.Keys) != cfg.RotSize {
				t.Fatalf("ROT with %d keys, want %d", len(op.Keys), cfg.RotSize)
			}
			seen := map[int]bool{}
			for _, k := range op.Keys {
				p := r.Owner(k)
				if seen[p] {
					t.Fatalf("ROT reads two keys from partition %d", p)
				}
				seen[p] = true
			}
		}
	}
	w := float64(puts) / float64(puts+reads)
	if math.Abs(w-cfg.WriteRatio) > 0.01 {
		t.Fatalf("realized w = %v, want ≈ %v", w, cfg.WriteRatio)
	}
}

func TestGenDeterministic(t *testing.T) {
	r := ring.New(4)
	cfg := Default(4, 50)
	ks := BuildKeySpace(cfg, r)
	g1 := NewGen(cfg, ks, 42)
	g2 := NewGen(cfg, ks, 42)
	for i := 0; i < 10_000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind || len(a.Keys) != len(b.Keys) {
			t.Fatalf("same seed diverged at op %d", i)
		}
		for j := range a.Keys {
			if a.Keys[j] != b.Keys[j] {
				t.Fatalf("same seed diverged on keys at op %d", i)
			}
		}
		// Value bytes are part of the stream too (PUT payload mutation).
		if a.Kind == OpPut && !bytes.Equal(a.Value, b.Value) {
			t.Fatalf("same seed diverged on value at op %d", i)
		}
	}
}

// TestGenSeedsDiverge is the counterpart: distinct seeds must not replay
// the same stream (a constant generator would pass the test above).
func TestGenSeedsDiverge(t *testing.T) {
	r := ring.New(4)
	cfg := Default(4, 50)
	ks := BuildKeySpace(cfg, r)
	g1 := NewGen(cfg, ks, 1)
	g2 := NewGen(cfg, ks, 2)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind {
			return
		}
		for j := range a.Keys {
			if j < len(b.Keys) && a.Keys[j] != b.Keys[j] {
				return
			}
		}
	}
	t.Fatal("seeds 1 and 2 produced identical 1000-op streams")
}

// TestZipfianHottestKeyGrowsWithTheta pins the skew knob to its effect:
// the frequency of the single hottest key (rank 0) must grow strictly with
// theta across the paper's Table 1 settings z ∈ {0, 0.8, 0.99}.
func TestZipfianHottestKeyGrowsWithTheta(t *testing.T) {
	const n, draws = 1000, 200_000
	rank0Freq := func(theta float64) float64 {
		z := NewZipfian(n, theta)
		r := rand.New(rand.NewSource(11))
		hits := 0
		for i := 0; i < draws; i++ {
			if z.Next(r) == 0 {
				hits++
			}
		}
		return float64(hits) / draws
	}
	f0, f8, f99 := rank0Freq(0), rank0Freq(0.8), rank0Freq(0.99)
	if !(f0 < f8 && f8 < f99) {
		t.Fatalf("hottest-key frequency not monotone in theta: z=0 %.4f, z=0.8 %.4f, z=0.99 %.4f",
			f0, f8, f99)
	}
	// Sanity on the magnitudes: uniform ≈ 1/n; z=0.99 concentrates a few
	// percent of all draws on the single hottest key.
	if f0 > 5.0/n {
		t.Fatalf("uniform hottest-key freq %.4f implausibly high", f0)
	}
	if f99 < 10.0/n {
		t.Fatalf("z=0.99 hottest-key freq %.4f shows no real skew", f99)
	}
}

func TestRotSizeClampedToPartitions(t *testing.T) {
	r := ring.New(2)
	cfg := Default(2, 10)
	cfg.RotSize = 8 // more than partitions
	ks := BuildKeySpace(cfg, r)
	g := NewGen(cfg, ks, 1)
	for i := 0; i < 100; i++ {
		op := g.Next()
		if op.Kind == OpROT && len(op.Keys) > 2 {
			t.Fatalf("ROT spans %d keys with 2 partitions", len(op.Keys))
		}
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(1_000_000, 0.99)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer() // exclude the one-time zeta precomputation
	for i := 0; i < b.N; i++ {
		z.Next(r)
	}
}

func BenchmarkGenNext(b *testing.B) {
	rg := ring.New(8)
	cfg := Default(8, 1000)
	ks := BuildKeySpace(cfg, rg)
	g := NewGen(cfg, ks, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
