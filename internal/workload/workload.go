// Package workload generates the YCSB-style workloads of the paper's
// Table 1. Clients issue PUTs and ROTs in a closed loop; the knobs are:
//
//   - w, the write/read ratio #PUT/(#PUT + #individual reads), where a ROT
//     over p keys counts as p reads (default 0.05);
//   - p, the number of partitions a ROT spans, one key per partition
//     (default 4);
//   - b, the value size in bytes (default 8);
//   - z, the zipfian skew of key popularity within a partition
//     (default 0.99).
//
// Keys are pre-bucketed per partition so a ROT can draw exactly one key
// from each of p uniformly chosen partitions, as in §5.2.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ring"
)

// Config captures one column of Table 1.
type Config struct {
	// WriteRatio is w = #PUT/(#PUT + #reads); a p-key ROT counts p reads.
	WriteRatio float64
	// RotSize is p, the number of partitions a ROT spans.
	RotSize int
	// ValueSize is b, the constant item size in bytes.
	ValueSize int
	// Zipf is z, the zipfian parameter (0 = uniform).
	Zipf float64
	// KeysPerPartition sizes each partition's key population.
	KeysPerPartition int
	// Partitions is the cluster partition count.
	Partitions int
	// Tenants, when positive, spreads the driver's client population over
	// this many admission tenants: client i runs as tenant i mod Tenants
	// (see TenantOf). 0 keeps the legacy single-endpoint-per-client model
	// with every request on the default tenant.
	Tenants int
}

// TenantOf maps a client index onto one of c.Tenants tenants (round
// robin). It is only meaningful when Tenants > 0.
func (c Config) TenantOf(client int) uint16 {
	if c.Tenants <= 0 {
		return 0
	}
	return uint16(client % c.Tenants)
}

// Default returns the paper's default workload: w=0.05, p=4, b=8, z=0.99
// (Table 1, bold values), with a configurable key population.
func Default(partitions, keysPerPartition int) Config {
	return Config{
		WriteRatio:       0.05,
		RotSize:          4,
		ValueSize:        8,
		Zipf:             0.99,
		KeysPerPartition: keysPerPartition,
		Partitions:       partitions,
	}
}

// PutProbability converts w into the per-operation probability q of
// issuing a PUT, accounting for a ROT counting as p reads:
// w = q / (q + (1-q)·p)  ⇒  q = w·p / (1 - w + w·p).
func (c Config) PutProbability() float64 {
	w, p := c.WriteRatio, float64(c.RotSize)
	if w <= 0 {
		return 0
	}
	if w >= 1 {
		return 1
	}
	return w * p / (1 - w + w*p)
}

// KeySpace holds per-partition key pools: Keys[p][i] is the i-th key of
// partition p, and ring.Owner(Keys[p][i]) == p.
type KeySpace struct {
	Keys [][]string
}

// BuildKeySpace enumerates deterministic keys and buckets them by owning
// partition until every partition holds c.KeysPerPartition keys.
func BuildKeySpace(c Config, r ring.Ring) *KeySpace {
	ks := &KeySpace{Keys: make([][]string, c.Partitions)}
	for p := range ks.Keys {
		ks.Keys[p] = make([]string, 0, c.KeysPerPartition)
	}
	remaining := c.Partitions
	for i := 0; remaining > 0; i++ {
		key := fmt.Sprintf("key%08x", i)
		p := r.Owner(key)
		if len(ks.Keys[p]) < c.KeysPerPartition {
			ks.Keys[p] = append(ks.Keys[p], key)
			if len(ks.Keys[p]) == c.KeysPerPartition {
				remaining--
			}
		}
	}
	return ks
}

// Zipfian is the YCSB/Gray bounded zipfian generator over [0, n). Unlike
// math/rand's Zipf it supports the sub-1 exponents of Table 1 (z = 0.8,
// 0.99). A zero theta degenerates to the uniform distribution.
type Zipfian struct {
	n               uint64
	theta           float64
	alpha, zetan    float64
	eta, zeta2theta float64
}

// NewZipfian prepares a generator over [0, n) with parameter theta ∈ [0,1).
func NewZipfian(n uint64, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta}
	if theta <= 0 {
		return z
	}
	z.zetan = zeta(n, theta)
	z.zeta2theta = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next rank; rank 0 is the most popular.
func (z *Zipfian) Next(r *rand.Rand) uint64 {
	if z.theta <= 0 {
		return uint64(r.Int63n(int64(z.n)))
	}
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// OpKind distinguishes generated operations.
type OpKind uint8

const (
	// OpPut writes one key on one partition.
	OpPut OpKind = iota
	// OpROT reads one key from each of RotSize partitions.
	OpROT
)

// Op is one generated operation.
type Op struct {
	Kind  OpKind
	Keys  []string
	Value []byte
}

// Gen is a per-client operation generator. It is not safe for concurrent
// use; give each closed-loop client its own Gen.
type Gen struct {
	cfg     Config
	ks      *KeySpace
	rng     *rand.Rand
	zipf    *Zipfian
	putProb float64
	value   []byte
	keys    []string
	parts   []int
}

// NewGen returns a generator seeded deterministically per client.
func NewGen(cfg Config, ks *KeySpace, seed int64) *Gen {
	g := &Gen{
		cfg:     cfg,
		ks:      ks,
		rng:     rand.New(rand.NewSource(seed)),
		zipf:    NewZipfian(uint64(cfg.KeysPerPartition), cfg.Zipf),
		putProb: cfg.PutProbability(),
		value:   make([]byte, cfg.ValueSize),
		keys:    make([]string, 0, cfg.RotSize),
		parts:   make([]int, cfg.Partitions),
	}
	g.rng.Read(g.value)
	for i := range g.parts {
		g.parts[i] = i
	}
	return g
}

// Next produces the next closed-loop operation. The returned Op's slices
// are reused by subsequent calls.
func (g *Gen) Next() Op {
	if g.rng.Float64() < g.putProb {
		p := g.rng.Intn(g.cfg.Partitions)
		g.keys = g.keys[:0]
		g.keys = append(g.keys, g.pick(p))
		// Value contents are irrelevant; size matters. Mutate one byte so
		// versions differ.
		g.value[0]++
		return Op{Kind: OpPut, Keys: g.keys, Value: g.value}
	}
	// ROT: RotSize distinct partitions chosen uniformly, one key each.
	n := min(g.cfg.RotSize, g.cfg.Partitions)
	g.keys = g.keys[:0]
	for i := 0; i < n; i++ {
		j := i + g.rng.Intn(g.cfg.Partitions-i)
		g.parts[i], g.parts[j] = g.parts[j], g.parts[i]
		g.keys = append(g.keys, g.pick(g.parts[i]))
	}
	return Op{Kind: OpROT, Keys: g.keys}
}

// pick draws a zipfian-popular key from partition p.
func (g *Gen) pick(p int) string {
	rank := g.zipf.Next(g.rng)
	pool := g.ks.Keys[p]
	if rank >= uint64(len(pool)) {
		rank = uint64(len(pool) - 1)
	}
	return pool[rank]
}
