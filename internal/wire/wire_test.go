package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func TestAddr(t *testing.T) {
	s := ServerAddr(3, 17)
	if !s.IsServer() || s.DC() != 3 || s.Index() != 17 {
		t.Fatalf("server addr fields wrong: %v dc=%d idx=%d", s, s.DC(), s.Index())
	}
	c := ClientAddr(2, 40)
	if c.IsServer() || c.DC() != 2 || c.Index() != 40 {
		t.Fatalf("client addr fields wrong: %v", c)
	}
	st := StabilizerAddr(1)
	if !st.IsStabilizer() || st.DC() != 1 {
		t.Fatalf("stabilizer addr wrong: %v", st)
	}
	if s.IsStabilizer() || c.IsStabilizer() {
		t.Fatal("non-stabilizers flagged as stabilizer")
	}
	for _, a := range []Addr{s, c, st} {
		if a.String() == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestAddrZeroInvalid(t *testing.T) {
	// ClientAddr(0, 0) used to encode to Addr(0), colliding with the
	// transport's "unlearned peer" sentinel; the client flag bit now keeps
	// every constructed address nonzero and Valid.
	c := ClientAddr(0, 0)
	if c == 0 || !c.Valid() || !c.IsClient() || c.IsServer() {
		t.Fatalf("ClientAddr(0,0) = %#x valid=%v", uint32(c), c.Valid())
	}
	if c.DC() != 0 || c.Index() != 0 {
		t.Fatalf("fields: dc=%d idx=%d", c.DC(), c.Index())
	}
	var zero Addr
	if zero.Valid() {
		t.Fatal("zero Addr must be invalid")
	}
	if zero.String() == "" {
		t.Fatal("zero Addr must still format")
	}
	if s := ServerAddr(0, 0); !s.Valid() || s.IsClient() {
		t.Fatalf("ServerAddr(0,0) = %#x", uint32(s))
	}
}

// TestAddrOutOfRangePanics pins the constructors' refusal to silently mask
// out-of-range fields: dc 16384 used to wrap onto dc 0 and alias another
// data center's addresses.
func TestAddrOutOfRangePanics(t *testing.T) {
	cases := map[string]func(){
		"server dc high":   func() { ServerAddr(dcMask+1, 0) },
		"server dc neg":    func() { ServerAddr(-1, 0) },
		"server part high": func() { ServerAddr(0, stabilizer+1) },
		"server part neg":  func() { ServerAddr(0, -1) },
		"server part stab": func() { ServerAddr(0, stabilizer) }, // would alias StabilizerAddr
		"stabilizer dc":    func() { StabilizerAddr(dcMask + 1) },
		"client dc high":   func() { ClientAddr(dcMask+1, 0) },
		"client id high":   func() { ClientAddr(0, 0x10000) },
		"client id neg":    func() { ClientAddr(0, -1) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: constructor masked instead of panicking", name)
				}
			}()
			f()
		}()
	}
	// The extremes of the legal ranges must still construct.
	if a := ServerAddr(dcMask, stabilizer-1); !a.IsServer() || a.IsStabilizer() || a.DC() != dcMask {
		t.Fatalf("max server addr wrong: %v", a)
	}
	if a := StabilizerAddr(dcMask); !a.IsStabilizer() || a.DC() != dcMask {
		t.Fatalf("max stabilizer addr wrong: %v", a)
	}
	if a := ClientAddr(dcMask, 0xFFFF); !a.IsClient() || a.Index() != 0xFFFF {
		t.Fatalf("max client addr wrong: %v", a)
	}
}

func TestAddrDistinct(t *testing.T) {
	seen := make(map[Addr]bool)
	for dc := 0; dc < 4; dc++ {
		for i := 0; i < 64; i++ {
			for _, a := range []Addr{ServerAddr(dc, i), ClientAddr(dc, i)} {
				if seen[a] {
					t.Fatalf("address collision: %v", a)
				}
				seen[a] = true
			}
		}
	}
}

// sampleMessages returns one populated instance of every message type.
func sampleMessages(r *rand.Rand) []Message {
	vec := func() vclock.Vec {
		v := vclock.New(1 + r.Intn(3))
		for i := range v {
			v[i] = r.Uint64() >> 8
		}
		return v
	}
	val := make([]byte, r.Intn(64))
	r.Read(val)
	kvs := []KV{{Key: "a", Value: val, TS: r.Uint64()}, {Key: "", Value: nil, TS: 0}}
	deps := []LoDep{{Key: "x", TS: 12}, {Key: "yy", TS: 999}}
	readers := []ReaderEntry{{RotID: 7, T: 3}, {RotID: 1 << 40, T: 88}}
	return []Message{
		&PutReq{Key: "k1", Value: val, Deps: vec()},
		&PutResp{TS: r.Uint64(), GSS: vec()},
		&RotCoordReq{
			RotID: r.Uint64(), Mode: 1, SeenLocal: 42, SeenGSS: vec(),
			Groups: []ReadGroup{{Part: 3, Keys: []string{"a", "b"}}, {Part: 9, Keys: nil}},
		},
		&RotCoordResp{RotID: 5, SV: vec()},
		&RotFwd{RotID: 9, Client: ClientAddr(1, 2), SV: vec(), Keys: []string{"z"}},
		&RotVals{RotID: 11, Vals: kvs},
		&RotSnap{RotID: 12, SV: vec(), Vals: kvs},
		&RotReadReq{SV: vec(), Keys: []string{"q", "w"}},
		&RotReadResp{Vals: kvs},
		&RepBatch{SrcDC: 1, SrcPart: 7, Seq: 100, HighTS: 2000, Ups: []Update{
			{Key: "u", Value: val, TS: 5, DV: vec()},
			{Key: "v", Value: nil, TS: 6, DV: vec()},
		}},
		&RepAck{Seq: 100},
		&VVReport{Part: 4, VV: vec()},
		&GSSBcast{GSS: vec()},
		&LoPutReq{Key: "lk", Value: val, Deps: deps},
		&LoPutResp{TS: 77},
		&LoRotReq{RotID: 1<<33 | 4, Epochs: []uint64{2, 0, 7}, Keys: []string{"m", "n"}},
		&LoRotResp{Vals: kvs, Epochs: []uint64{3, 1}},
		&OldReadersReq{Deps: deps, Epochs: []uint64{0, 5}},
		&OldReadersResp{Readers: readers, Cumulative: 42, Epochs: []uint64{1, 1, 4}},
		&LoRepUpdate{
			Seq: 1, SrcDC: 1, SrcPart: 3, Key: "rk", Value: val, TS: 10,
			Deps: deps, OldReaders: readers,
		},
		&LoRepAck{Seq: 1},
		&DepCheckReq{Key: "d", TS: 44},
		&DepCheckResp{},
		&ErrorResp{Code: 2, Text: "boom"},
		&Ping{Nonce: 1},
		&Pong{Nonce: 1},
		&Busy{Echo: 1 << 50, RetryAfterMicros: 2500},
	}
}

func roundtrip(t *testing.T, m Message) Message {
	t.Helper()
	var b Buffer
	m.Encode(&b)
	out, err := New(m.Type())
	if err != nil {
		t.Fatalf("New(%d): %v", m.Type(), err)
	}
	r := NewReader(b.B)
	out.Decode(r)
	if r.Err() != nil {
		t.Fatalf("decode %T: %v", m, r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("decode %T left %d bytes", m, r.Remaining())
	}
	return out
}

// normalize maps empty slices to nil so reflect.DeepEqual treats a decoded
// empty collection and an encoded nil collection as equal.
func normalize(m Message) {
	v := reflect.ValueOf(m).Elem()
	var walk func(reflect.Value)
	walk = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Slice:
			if v.Len() == 0 && !v.IsNil() {
				v.Set(reflect.Zero(v.Type()))
			}
			for i := 0; i < v.Len(); i++ {
				walk(v.Index(i))
			}
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				walk(v.Field(i))
			}
		}
	}
	walk(v)
}

func TestRoundTripAllMessages(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, m := range sampleMessages(r) {
		got := roundtrip(t, m)
		normalize(m)
		normalize(got)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T round trip mismatch:\n in: %+v\nout: %+v", m, m, got)
		}
	}
}

func TestQuickRoundTripPutReq(t *testing.T) {
	f := func(key string, value []byte, a, b, c uint64) bool {
		in := &PutReq{Key: key, Value: value, Deps: vclock.Vec{a, b, c}}
		var buf Buffer
		in.Encode(&buf)
		out := new(PutReq)
		r := NewReader(buf.B)
		out.Decode(r)
		if r.Err() != nil {
			return false
		}
		normalize(in)
		normalize(out)
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	e := &Envelope{
		Src:   ClientAddr(0, 5),
		Dst:   ServerAddr(1, 2),
		ReqID: 77,
		Resp:  true,
		Msg:   &PutResp{TS: 9, GSS: vclock.Vec{1, 2}},
	}
	buf := EncodeEnvelope(nil, e)
	got, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != e.Src || got.Dst != e.Dst || got.ReqID != 77 || !got.Resp {
		t.Fatalf("header mismatch: %+v", got)
	}
	if resp, ok := got.Msg.(*PutResp); !ok || resp.TS != 9 {
		t.Fatalf("payload mismatch: %+v", got.Msg)
	}
}

func TestDecodeTruncated(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, m := range sampleMessages(r) {
		var b Buffer
		b.U16(m.Type())
		b.U8(0)
		b.U32(0)
		b.U32(0)
		b.Uvarint(1)
		m.Encode(&b)
		full := b.B
		// Every strict prefix must fail cleanly, not panic.
		for cut := 0; cut < len(full); cut += 1 + len(full)/37 {
			if _, err := DecodeEnvelope(full[:cut]); err == nil {
				// A prefix may accidentally decode if the message has
				// trailing optional content; all our decoders consume fixed
				// structure, so an error is expected except at full length.
				t.Errorf("%T: truncation at %d/%d decoded successfully", m, cut, len(full))
			}
		}
		if _, err := DecodeEnvelope(full); err != nil {
			t.Errorf("%T: full decode failed: %v", m, err)
		}
	}
}

func TestDecodeUnknownType(t *testing.T) {
	var b Buffer
	b.U16(200)
	b.U8(0)
	b.U32(0)
	b.U32(0)
	b.Uvarint(0)
	if _, err := DecodeEnvelope(b.B); err == nil {
		t.Fatal("expected unknown-type error")
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U64() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	if got := r.U32(); got != 0 {
		t.Fatalf("post-error read = %d, want 0", got)
	}
	if s := r.String(); s != "" {
		t.Fatalf("post-error string = %q", s)
	}
}

func TestOversizeFieldRejected(t *testing.T) {
	var b Buffer
	b.Uvarint(maxFieldLen + 1)
	r := NewReader(b.B)
	if r.Bytes() != nil || r.Err() == nil {
		t.Fatal("oversize field must be rejected")
	}
}

func TestBufferPrimitives(t *testing.T) {
	var b Buffer
	b.U8(1)
	b.U16(2)
	b.U32(3)
	b.U64(4)
	b.Uvarint(300)
	b.String("hi")
	b.Bytes([]byte{9, 9})
	r := NewReader(b.B)
	if r.U8() != 1 || r.U16() != 2 || r.U32() != 3 || r.U64() != 4 ||
		r.Uvarint() != 300 || r.String() != "hi" {
		t.Fatal("primitive round trip mismatch")
	}
	bs := r.Bytes()
	if len(bs) != 2 || bs[0] != 9 {
		t.Fatalf("bytes mismatch: %v", bs)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}
