package wire

import (
	"encoding/binary"
	"sync"
)

// FrameBuf is a reusable encode/decode buffer. Transports obtain one with
// GetFrame, fill it (AppendEnvelope on the send side, a socket read on the
// receive side), and return it with PutFrame once the bytes have been
// written out or decoded. DecodeEnvelope copies every variable-length field
// out of its input, so a FrameBuf may be recycled immediately after decode.
//
// FrameBuf embeds Buffer so message encoding targets pool-resident memory:
// passing &f.Buffer to Message.Encode does not force a fresh Buffer
// allocation the way EncodeEnvelope's stack Buffer does.
type FrameBuf struct{ Buffer }

// maxPooledCap bounds the capacity of buffers kept in the pool so a burst
// of giant frames (e.g. 64 MiB replication batches) cannot pin memory for
// the lifetime of the process.
const maxPooledCap = 1 << 20 // 1 MiB

var framePool = sync.Pool{
	New: func() any { return &FrameBuf{Buffer{B: make([]byte, 0, 4096)}} },
}

// GetFrame returns an empty FrameBuf from the pool.
func GetFrame() *FrameBuf {
	f := framePool.Get().(*FrameBuf)
	f.B = f.B[:0]
	return f
}

// GetFrameLen returns a FrameBuf whose B has length n (for reading a frame
// body off a socket).
func GetFrameLen(n int) *FrameBuf {
	f := framePool.Get().(*FrameBuf)
	if cap(f.B) < n {
		f.B = make([]byte, n)
	} else {
		f.B = f.B[:n]
	}
	return f
}

// PutFrame returns f to the pool. It is safe to pass nil.
func PutFrame(f *FrameBuf) {
	if f == nil || cap(f.B) > maxPooledCap {
		return
	}
	framePool.Put(f)
}

// FrameHdrLen is the size of the length prefix AppendEnvelope reserves
// ahead of each encoded envelope.
const FrameHdrLen = 4

// AppendEnvelope appends the length-prefixed wire frame for e to f: a
// 4-byte little-endian body length followed by the encoded envelope. The
// prefix is reserved inside the same buffer before encoding and patched
// afterwards, so framing adds no copy and — with f from the pool — no
// allocation at all.
func (f *FrameBuf) AppendEnvelope(e *Envelope) {
	off := len(f.B)
	f.B = append(f.B, 0, 0, 0, 0)
	f.Envelope(e)
	binary.LittleEndian.PutUint32(f.B[off:off+FrameHdrLen], uint32(len(f.B)-off-FrameHdrLen))
}
