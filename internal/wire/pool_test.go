package wire

import (
	"encoding/binary"
	"testing"

	"repro/internal/vclock"
)

func frameEnvelope() *Envelope {
	return &Envelope{
		Src:   ClientAddr(0, 1),
		Dst:   ServerAddr(0, 2),
		ReqID: 42,
		Msg:   &PutReq{Key: "key00001234", Value: make([]byte, 64), Deps: vclock.Vec{1, 2}},
	}
}

func TestAppendFrameRoundTrip(t *testing.T) {
	e := frameEnvelope()
	f := GetFrame()
	defer PutFrame(f)
	f.AppendEnvelope(e)
	buf := f.B
	size := binary.LittleEndian.Uint32(buf[:4])
	if int(size) != len(buf)-4 {
		t.Fatalf("length prefix %d, body %d", size, len(buf)-4)
	}
	got, err := DecodeEnvelope(buf[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != e.Src || got.Dst != e.Dst || got.ReqID != e.ReqID {
		t.Fatalf("header mismatch: %+v", got)
	}
	if p, ok := got.Msg.(*PutReq); !ok || p.Key != "key00001234" || len(p.Value) != 64 {
		t.Fatalf("payload mismatch: %+v", got.Msg)
	}
}

func TestAppendFrameStacks(t *testing.T) {
	// Multiple frames appended to one buffer (the coalescing writer's view)
	// must each decode independently.
	f := GetFrame()
	defer PutFrame(f)
	for i := 0; i < 3; i++ {
		e := frameEnvelope()
		e.ReqID = uint64(i + 1)
		f.AppendEnvelope(e)
	}
	buf := f.B
	for i := 0; i < 3; i++ {
		size := binary.LittleEndian.Uint32(buf[:4])
		env, err := DecodeEnvelope(buf[4 : 4+size])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.ReqID != uint64(i+1) {
			t.Fatalf("frame %d: reqID %d", i, env.ReqID)
		}
		buf = buf[4+size:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestGetFrameLen(t *testing.T) {
	f := GetFrameLen(100)
	if len(f.B) != 100 {
		t.Fatalf("len = %d, want 100", len(f.B))
	}
	PutFrame(f)
	f = GetFrameLen(8)
	if len(f.B) != 8 {
		t.Fatalf("len = %d, want 8", len(f.B))
	}
	PutFrame(f)
	PutFrame(nil) // must not panic
}

func TestOversizeFrameNotPooled(t *testing.T) {
	f := &FrameBuf{Buffer{B: make([]byte, maxPooledCap+1)}}
	PutFrame(f) // must silently drop, not retain
	g := GetFrame()
	if cap(g.B) > maxPooledCap {
		t.Fatalf("pool retained %d-byte buffer", cap(g.B))
	}
	PutFrame(g)
}

// TestEncodeFramePooledAllocFree pins down the PR's alloc win: encoding and
// framing a message through a pooled buffer must not allocate at steady
// state (the seed path allocated 7 times per envelope growing a nil slice).
func TestEncodeFramePooledAllocFree(t *testing.T) {
	e := frameEnvelope()
	// Warm the pool so steady state is measured, not first touch.
	f := GetFrame()
	f.AppendEnvelope(e)
	PutFrame(f)
	n := testing.AllocsPerRun(200, func() {
		f := GetFrame()
		f.AppendEnvelope(e)
		PutFrame(f)
	})
	if n >= 1 {
		t.Fatalf("encode+frame allocs/op = %v, want 0", n)
	}
}

// TestDecodeAllocsBounded guards the decode path: message instantiation and
// field copies are inherent, but alloc count per envelope must stay small
// and independent of pooling churn.
func TestDecodeAllocsBounded(t *testing.T) {
	f := GetFrame()
	defer PutFrame(f)
	f.AppendEnvelope(frameEnvelope())
	body := f.B[4:]
	n := testing.AllocsPerRun(200, func() {
		if _, err := DecodeEnvelope(body); err != nil {
			t.Fatal(err)
		}
	})
	if n > 6 {
		t.Fatalf("decode allocs/op = %v, want ≤ 6", n)
	}
}
