package wire

import (
	"bytes"
	"testing"

	"repro/internal/vclock"
)

func decodeMsg(t *testing.T, m Message) Message {
	t.Helper()
	f := GetFrame()
	defer PutFrame(f)
	f.AppendEnvelope(&Envelope{Src: ServerAddr(0, 1), Dst: ServerAddr(0, 2), Msg: m})
	env, err := DecodeEnvelope(f.B[FrameHdrLen:])
	if err != nil {
		t.Fatal(err)
	}
	return env.Msg
}

// TestRecycleNoBleedThrough decodes a large message, recycles it, and
// decodes a smaller one of the same type: no field of the first message may
// leak into the second, and previously retained deep data must stay intact.
func TestRecycleNoBleedThrough(t *testing.T) {
	big := &RepBatch{
		SrcDC: 2, SrcPart: 7, Seq: 100, HighTS: 999,
		Ups: []Update{
			{Key: "aaa", Value: []byte("old-value-1"), TS: 1, DV: vclock.Vec{1, 0}},
			{Key: "bbb", Value: []byte("old-value-2"), TS: 2, DV: vclock.Vec{2, 0}},
			{Key: "ccc", Value: []byte("old-value-3"), TS: 3, DV: vclock.Vec{3, 0}},
		},
	}
	m1 := decodeMsg(t, big).(*RepBatch)
	// A handler would retain the decoded updates' deep fields (store
	// install); keep copies of the slice headers to check they survive.
	keptVal := m1.Ups[0].Value
	keptDV := m1.Ups[0].DV
	Recycle(m1)

	small := &RepBatch{SrcDC: 1, Seq: 5, HighTS: 6,
		Ups: []Update{{Key: "zzz", Value: []byte("new"), TS: 9, DV: vclock.Vec{9, 9}}}}
	m2 := decodeMsg(t, small).(*RepBatch)
	if m2.SrcDC != 1 || m2.SrcPart != 0 || m2.Seq != 5 || m2.HighTS != 6 || len(m2.Ups) != 1 {
		t.Fatalf("recycled decode bled through: %+v", m2)
	}
	if m2.Ups[0].Key != "zzz" || string(m2.Ups[0].Value) != "new" {
		t.Fatalf("recycled decode wrong payload: %+v", m2.Ups[0])
	}
	// Data retained from the first decode must be untouched by the second.
	if !bytes.Equal(keptVal, []byte("old-value-1")) || keptDV[0] != 1 {
		t.Fatalf("recycling corrupted retained data: %q %v", keptVal, keptDV)
	}
	Recycle(m2)
}

// TestRecycleUnpooledNoop checks Recycle ignores unpooled types and nil.
func TestRecycleUnpooledNoop(t *testing.T) {
	Recycle(nil)
	Recycle(&PutResp{TS: 1}) // response type: never pooled
}

// TestResetPolicies spot-checks the retention contracts: fields a handler
// may keep are dropped (nil), containers nobody retains keep capacity.
func TestResetPolicies(t *testing.T) {
	pr := &PutReq{Key: "k", Value: []byte("v"), Deps: vclock.Vec{1}}
	pr.Reset()
	if pr.Key != "" || pr.Value != nil || pr.Deps != nil {
		t.Fatalf("PutReq.Reset kept retainable fields: %+v", pr)
	}

	rb := &RepBatch{Seq: 9, Ups: make([]Update, 8, 16)}
	rb.Reset()
	if rb.Seq != 0 || len(rb.Ups) != 0 || cap(rb.Ups) != 16 {
		t.Fatalf("RepBatch.Reset: %+v (cap %d)", rb, cap(rb.Ups))
	}

	lp := &LoPutReq{Key: "k", Value: []byte("v"), Deps: []LoDep{{Key: "d", TS: 1}}}
	lp.Reset()
	if lp.Value != nil || lp.Deps != nil {
		t.Fatalf("LoPutReq.Reset kept retainable fields: %+v", lp)
	}

	lr := &LoRepUpdate{Deps: []LoDep{{Key: "d"}}, OldReaders: make([]ReaderEntry, 3, 8)}
	lr.Reset()
	if lr.Deps != nil { // COPS stores the Deps slice: must be dropped
		t.Fatalf("LoRepUpdate.Reset kept Deps")
	}
	if len(lr.OldReaders) != 0 || cap(lr.OldReaders) != 8 {
		t.Fatalf("LoRepUpdate.Reset lost OldReaders capacity")
	}

	rot := &LoRotReq{RotID: 1, Keys: make([]string, 2, 4)}
	rot.Reset()
	if rot.RotID != 0 || len(rot.Keys) != 0 || cap(rot.Keys) != 4 {
		t.Fatalf("LoRotReq.Reset: %+v", rot)
	}
}

// TestEveryPooledTypeRoundTrips drives each pooled type through a
// decode → Recycle → decode cycle, checking the second decode is exact.
func TestEveryPooledTypeRoundTrips(t *testing.T) {
	msgs := []Message{
		&PutReq{Key: "k", Value: []byte("v"), Deps: vclock.Vec{1, 2}},
		&RotCoordReq{RotID: 3, Mode: 1, SeenLocal: 4, SeenGSS: vclock.Vec{5},
			Groups: []ReadGroup{{Part: 1, Keys: []string{"a", "b"}}}},
		&RotFwd{RotID: 1, Client: uint32ToAddr(t), SV: vclock.Vec{1}, Keys: []string{"x"}},
		&RotReadReq{SV: vclock.Vec{2}, Keys: []string{"y", "z"}},
		&RepBatch{SrcDC: 1, Seq: 2, HighTS: 3, Ups: []Update{{Key: "u", TS: 4, DV: vclock.Vec{4}}}},
		&VVReport{Part: 2, VV: vclock.Vec{7, 8}},
		&GSSBcast{GSS: vclock.Vec{9}},
		&LoPutReq{Key: "k", Value: []byte("v"), Deps: []LoDep{{Key: "d", TS: 1}}},
		&LoRotReq{RotID: 5, Keys: []string{"p", "q"}},
		&OldReadersReq{Deps: []LoDep{{Key: "d", TS: 2}}},
		&LoRepUpdate{Seq: 1, SrcDC: 2, SrcPart: 3, Key: "k", Value: []byte("v"),
			TS: 4, Deps: []LoDep{{Key: "d", TS: 5}}, OldReaders: []ReaderEntry{{RotID: 6, T: 7}}},
		&DepCheckReq{Key: "k", TS: 8},
		&Ping{Nonce: 42},
		&CopsRotReq{Keys: []string{"m", "n"}},
		&CopsVerReq{Key: "k", TS: 10},
	}
	for _, m := range msgs {
		first := decodeMsg(t, m)
		Recycle(first)
		second := decodeMsg(t, m)
		f1, f2 := GetFrame(), GetFrame()
		second.Encode(&f2.Buffer)
		m.Encode(&f1.Buffer)
		if !bytes.Equal(f1.B, f2.B) {
			t.Errorf("type %d: recycled re-decode differs from original", m.Type())
		}
		PutFrame(f1)
		PutFrame(f2)
		Recycle(second)
	}
}

func uint32ToAddr(t *testing.T) Addr {
	t.Helper()
	return ClientAddr(0, 7)
}
