package wire

import "fmt"

// SessionID identifies one logical client session multiplexed over a
// shared transport endpoint. The high half is the tenant (the admission
// gate's fairness unit), the low half a tenant-local session number.
//
// The zero SessionID means "no session": intra-cluster traffic and legacy
// one-socket-per-client endpoints never carry one, and the codec omits the
// field entirely for them, so pre-session frames and session-less frames
// are byte-identical. MakeSession therefore rejects (0, 0); give the first
// session of tenant 0 a nonzero local id.
type SessionID uint32

// MakeSession builds a session id from a tenant and a tenant-local session
// number. It panics on (0, 0), which would alias the "no session" sentinel.
func MakeSession(tenant, local uint16) SessionID {
	if tenant == 0 && local == 0 {
		panic("wire: session (0, 0) is the no-session sentinel")
	}
	return SessionID(uint32(tenant)<<16 | uint32(local))
}

// Tenant returns the session's tenant (0 for the no-session sentinel, so
// ungated legacy clients all land in tenant 0).
func (s SessionID) Tenant() uint16 { return uint16(s >> 16) }

// Local returns the tenant-local session number.
func (s SessionID) Local() uint16 { return uint16(s) }

// String formats s for logs.
func (s SessionID) String() string {
	if s == 0 {
		return "sess(none)"
	}
	return fmt.Sprintf("sess(t%d,%d)", s.Tenant(), s.Local())
}

// From names the full origin — or, symmetrically, the full destination —
// of a client-path frame: the transport endpoint plus the logical session
// on it. Handlers receive one and pass it back to Respond/SendTo
// unchanged, which is what routes a reply to the right session of a
// multiplexed endpoint. Sess is zero for intra-cluster traffic.
type From struct {
	Addr Addr
	Sess SessionID
}

// At wraps a bare address as a session-less From (intra-cluster
// destinations, legacy clients).
func At(a Addr) From { return From{Addr: a} }

// String formats f for logs.
func (f From) String() string {
	if f.Sess == 0 {
		return f.Addr.String()
	}
	return f.Addr.String() + "/" + f.Sess.String()
}
