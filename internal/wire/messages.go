package wire

import (
	"time"

	"repro/internal/vclock"
)

// Message type identifiers. The 1–19 range belongs to the timestamp-based
// engine (Contrarian/Cure), 20–39 to CC-LO (COPS-SNOW), 40+ to generic
// infrastructure.
const (
	TPutReq       = 1
	TPutResp      = 2
	TRotCoordReq  = 3
	TRotCoordResp = 4
	TRotFwd       = 5
	TRotVals      = 6
	TRotSnap      = 7
	TRotReadReq   = 8
	TRotReadResp  = 9
	TRepBatch     = 10
	TRepAck       = 11
	TVVReport     = 12
	TGSSBcast     = 13

	TLoPutReq       = 20
	TLoPutResp      = 21
	TLoRotReq       = 22
	TLoRotResp      = 23
	TOldReadersReq  = 24
	TOldReadersResp = 25
	TLoRepUpdate    = 26
	TLoRepAck       = 27
	TDepCheckReq    = 28
	TDepCheckResp   = 29

	TErrorResp = 40
	TPing      = 41
	TPong      = 42
	TBusy      = 43

	TCopsRotReq  = 50
	TCopsRotResp = 51
	TCopsVerReq  = 52
	TCopsVerResp = 53
)

func init() {
	Register(TPutReq, func() Message { return new(PutReq) })
	Register(TPutResp, func() Message { return new(PutResp) })
	Register(TRotCoordReq, func() Message { return new(RotCoordReq) })
	Register(TRotCoordResp, func() Message { return new(RotCoordResp) })
	Register(TRotFwd, func() Message { return new(RotFwd) })
	Register(TRotVals, func() Message { return new(RotVals) })
	Register(TRotSnap, func() Message { return new(RotSnap) })
	Register(TRotReadReq, func() Message { return new(RotReadReq) })
	Register(TRotReadResp, func() Message { return new(RotReadResp) })
	Register(TRepBatch, func() Message { return new(RepBatch) })
	Register(TRepAck, func() Message { return new(RepAck) })
	Register(TVVReport, func() Message { return new(VVReport) })
	Register(TGSSBcast, func() Message { return new(GSSBcast) })

	Register(TLoPutReq, func() Message { return new(LoPutReq) })
	Register(TLoPutResp, func() Message { return new(LoPutResp) })
	Register(TLoRotReq, func() Message { return new(LoRotReq) })
	Register(TLoRotResp, func() Message { return new(LoRotResp) })
	Register(TOldReadersReq, func() Message { return new(OldReadersReq) })
	Register(TOldReadersResp, func() Message { return new(OldReadersResp) })
	Register(TLoRepUpdate, func() Message { return new(LoRepUpdate) })
	Register(TLoRepAck, func() Message { return new(LoRepAck) })
	Register(TDepCheckReq, func() Message { return new(DepCheckReq) })
	Register(TDepCheckResp, func() Message { return new(DepCheckResp) })

	Register(TCopsRotReq, func() Message { return new(CopsRotReq) })
	Register(TCopsRotResp, func() Message { return new(CopsRotResp) })
	Register(TCopsVerReq, func() Message { return new(CopsVerReq) })
	Register(TCopsVerResp, func() Message { return new(CopsVerResp) })

	Register(TErrorResp, func() Message { return new(ErrorResp) })
	Register(TPing, func() Message { return new(Ping) })
	Register(TPong, func() Message { return new(Pong) })
	Register(TBusy, func() Message { return new(Busy) })

	// Hot request-path messages are pooled on decode the way encode buffers
	// already are (see Pool/Recycle in codec.go). Only messages consumed by
	// server Handle methods qualify: responses are handed to Call waiters,
	// which retain them, and the client-bound one-way messages (RotSnap,
	// RotVals) are retained by client ROT state. Each pooled type's Reset
	// documents which container slices are recycled; everything else a
	// handler might keep (keys, values, vectors, dependency lists) is
	// allocated fresh by every decode.
	Pool(TPutReq)
	Pool(TRotCoordReq)
	Pool(TRotFwd)
	Pool(TRotReadReq)
	Pool(TRepBatch)
	Pool(TVVReport)
	Pool(TGSSBcast)
	Pool(TLoPutReq)
	Pool(TLoRotReq)
	Pool(TOldReadersReq)
	Pool(TLoRepUpdate)
	Pool(TDepCheckReq)
	Pool(TPing)
	Pool(TCopsRotReq)
	Pool(TCopsVerReq)
}

// KV is one read result: a key, the version's value, its timestamp (the
// source-DC timestamp for the timestamp-based engine, the Lamport
// timestamp for CC-LO), and the version's origin DC. (TS, Src) is the
// version's identity: Lamport timestamps collide freely across DCs, so a
// timestamp alone cannot name a version.
type KV struct {
	Key   string
	Value []byte
	TS    uint64
	Src   uint8
}

func encodeKVs(b *Buffer, kvs []KV) {
	b.Uvarint(uint64(len(kvs)))
	for i := range kvs {
		b.String(kvs[i].Key)
		b.Bytes(kvs[i].Value)
		b.U64(kvs[i].TS)
		b.U8(kvs[i].Src)
	}
}

func decodeKVs(r *Reader) []KV {
	n := r.Uvarint()
	if n > maxFieldLen {
		r.fail(ErrTooLarge)
		return nil
	}
	kvs := make([]KV, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		kvs = append(kvs, KV{Key: r.String(), Value: r.Bytes(), TS: r.U64(), Src: r.U8()})
	}
	return kvs
}

func encodeStrings(b *Buffer, ss []string) {
	b.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		b.String(s)
	}
}

func decodeStrings(r *Reader) []string {
	return decodeStringsInto(nil, r)
}

// decodeStringsInto appends the decoded strings to dst[:0], reusing its
// backing array — the capacity-recycling half of message pooling.
func decodeStringsInto(dst []string, r *Reader) []string {
	dst = dst[:0]
	n := r.Uvarint()
	if n > maxFieldLen {
		r.fail(ErrTooLarge)
		return nil
	}
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		dst = append(dst, r.String())
	}
	return dst
}

//
// Timestamp-based engine (Contrarian / Cure).
//

// PutReq installs a new version of Key. Deps is the client's causal view
// ("seen" vector): one entry per DC; the local entry is the highest local
// timestamp the client has observed, remote entries its GSS view.
type PutReq struct {
	Key   string
	Value []byte
	Deps  vclock.Vec
}

func (*PutReq) Type() uint16 { return TPutReq }
func (m *PutReq) Encode(b *Buffer) {
	b.String(m.Key)
	b.Bytes(m.Value)
	b.Vec(m.Deps)
}
func (m *PutReq) Decode(r *Reader) {
	m.Key = r.String()
	m.Value = r.Bytes()
	m.Deps = r.Vec()
}

// Reset recycles no slices: Value is retained by the store and the
// replication queue, and Deps may be kept as the new version's vector.
func (m *PutReq) Reset() { *m = PutReq{} }

// PutResp acknowledges a PUT with the new version's timestamp and the
// partition's current GSS so the client's causal view stays fresh.
type PutResp struct {
	TS  uint64
	GSS vclock.Vec
}

func (*PutResp) Type() uint16 { return TPutResp }
func (m *PutResp) Encode(b *Buffer) {
	b.U64(m.TS)
	b.Vec(m.GSS)
}
func (m *PutResp) Decode(r *Reader) {
	m.TS = r.U64()
	m.GSS = r.Vec()
}

// ReadGroup names the keys a single partition must serve for a ROT.
type ReadGroup struct {
	Part uint32
	Keys []string
}

// RotCoordReq asks a coordinator to start a ROT. Mode 1 is the paper's
// 1 1/2-round protocol (Figure 3a): the coordinator forwards reads and
// partitions answer the client directly. Mode 2 is the classic 2-round
// protocol (Figure 3b): the coordinator only returns the snapshot vector.
type RotCoordReq struct {
	RotID     uint64
	Mode      uint8
	SeenLocal uint64
	SeenGSS   vclock.Vec
	Groups    []ReadGroup
}

func (*RotCoordReq) Type() uint16 { return TRotCoordReq }
func (m *RotCoordReq) Encode(b *Buffer) {
	b.U64(m.RotID)
	b.U8(m.Mode)
	b.U64(m.SeenLocal)
	b.Vec(m.SeenGSS)
	b.Uvarint(uint64(len(m.Groups)))
	for i := range m.Groups {
		b.U32(m.Groups[i].Part)
		encodeStrings(b, m.Groups[i].Keys)
	}
}
func (m *RotCoordReq) Decode(r *Reader) {
	m.RotID = r.U64()
	m.Mode = r.U8()
	m.SeenLocal = r.U64()
	m.SeenGSS = r.Vec()
	m.Groups = m.Groups[:0]
	n := r.Uvarint()
	if n > maxFieldLen {
		r.fail(ErrTooLarge)
		return
	}
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		m.Groups = append(m.Groups, ReadGroup{Part: r.U32(), Keys: decodeStrings(r)})
	}
}

// Reset recycles the Groups container (the coordinator forwards the inner
// key slices only through synchronously encoded Sends).
func (m *RotCoordReq) Reset() {
	clear(m.Groups)
	*m = RotCoordReq{Groups: m.Groups[:0]}
}

// RotCoordResp returns the chosen snapshot vector (2-round mode).
type RotCoordResp struct {
	RotID uint64
	SV    vclock.Vec
}

func (*RotCoordResp) Type() uint16 { return TRotCoordResp }
func (m *RotCoordResp) Encode(b *Buffer) {
	b.U64(m.RotID)
	b.Vec(m.SV)
}
func (m *RotCoordResp) Decode(r *Reader) {
	m.RotID = r.U64()
	m.SV = r.Vec()
}

// RotFwd is the coordinator-to-partition leg of the 1 1/2-round protocol.
// Client and Sess together name the client session the partition answers
// directly (Sess is zero for session-less endpoints).
type RotFwd struct {
	RotID  uint64
	Client Addr
	Sess   SessionID
	SV     vclock.Vec
	Keys   []string
}

func (*RotFwd) Type() uint16 { return TRotFwd }
func (m *RotFwd) Encode(b *Buffer) {
	b.U64(m.RotID)
	b.U32(uint32(m.Client))
	b.U32(uint32(m.Sess))
	b.Vec(m.SV)
	encodeStrings(b, m.Keys)
}
func (m *RotFwd) Decode(r *Reader) {
	m.RotID = r.U64()
	m.Client = Addr(r.U32())
	m.Sess = SessionID(r.U32())
	m.SV = r.Vec()
	m.Keys = decodeStringsInto(m.Keys, r)
}

// Reset recycles the Keys container (readAt copies the string headers it
// needs into its reply).
func (m *RotFwd) Reset() {
	clear(m.Keys)
	*m = RotFwd{Keys: m.Keys[:0]}
}

// RotVals is a partition's direct-to-client answer (1 1/2-round mode).
type RotVals struct {
	RotID uint64
	Vals  []KV
}

func (*RotVals) Type() uint16 { return TRotVals }
func (m *RotVals) Encode(b *Buffer) {
	b.U64(m.RotID)
	encodeKVs(b, m.Vals)
}
func (m *RotVals) Decode(r *Reader) {
	m.RotID = r.U64()
	m.Vals = decodeKVs(r)
}

// RotSnap is the coordinator's direct-to-client answer (1 1/2-round mode):
// the snapshot vector plus the coordinator's own keys.
type RotSnap struct {
	RotID uint64
	SV    vclock.Vec
	Vals  []KV
}

func (*RotSnap) Type() uint16 { return TRotSnap }
func (m *RotSnap) Encode(b *Buffer) {
	b.U64(m.RotID)
	b.Vec(m.SV)
	encodeKVs(b, m.Vals)
}
func (m *RotSnap) Decode(r *Reader) {
	m.RotID = r.U64()
	m.SV = r.Vec()
	m.Vals = decodeKVs(r)
}

// RotReadReq reads Keys at snapshot SV (2-round mode, second round).
type RotReadReq struct {
	SV   vclock.Vec
	Keys []string
}

func (*RotReadReq) Type() uint16 { return TRotReadReq }
func (m *RotReadReq) Encode(b *Buffer) {
	b.Vec(m.SV)
	encodeStrings(b, m.Keys)
}
func (m *RotReadReq) Decode(r *Reader) {
	m.SV = r.Vec()
	m.Keys = decodeStringsInto(m.Keys, r)
}

// Reset recycles the Keys container.
func (m *RotReadReq) Reset() {
	clear(m.Keys)
	*m = RotReadReq{Keys: m.Keys[:0]}
}

// RotReadResp carries the versions read at the requested snapshot.
type RotReadResp struct {
	Vals []KV
}

func (*RotReadResp) Type() uint16       { return TRotReadResp }
func (m *RotReadResp) Encode(b *Buffer) { encodeKVs(b, m.Vals) }
func (m *RotReadResp) Decode(r *Reader) { m.Vals = decodeKVs(r) }

// Update is one replicated version inside a RepBatch.
type Update struct {
	Key   string
	Value []byte
	TS    uint64
	DV    vclock.Vec
}

// RepBatch ships a sequence of versions from a partition to its replica in
// another DC. HighTS is the sender's clock reading after the last update;
// an empty batch with a fresh HighTS is a replication heartbeat keeping the
// receiver's VV (and hence the GSS) moving.
type RepBatch struct {
	SrcDC   uint8
	SrcPart uint32
	Seq     uint64
	HighTS  uint64
	Ups     []Update
}

func (*RepBatch) Type() uint16 { return TRepBatch }
func (m *RepBatch) Encode(b *Buffer) {
	b.U8(m.SrcDC)
	b.U32(m.SrcPart)
	b.U64(m.Seq)
	b.U64(m.HighTS)
	b.Uvarint(uint64(len(m.Ups)))
	for i := range m.Ups {
		b.String(m.Ups[i].Key)
		b.Bytes(m.Ups[i].Value)
		b.U64(m.Ups[i].TS)
		b.Vec(m.Ups[i].DV)
	}
}
func (m *RepBatch) Decode(r *Reader) {
	m.SrcDC = r.U8()
	m.SrcPart = r.U32()
	m.Seq = r.U64()
	m.HighTS = r.U64()
	m.Ups = m.Ups[:0]
	n := r.Uvarint()
	if n > maxFieldLen {
		r.fail(ErrTooLarge)
		return
	}
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		m.Ups = append(m.Ups, Update{
			Key: r.String(), Value: r.Bytes(), TS: r.U64(), DV: r.Vec(),
		})
	}
}

// Reset recycles the Ups container — the replication hot path — which the
// receiver only iterates, copying each update's fields into its store.
func (m *RepBatch) Reset() {
	clear(m.Ups)
	*m = RepBatch{Ups: m.Ups[:0]}
}

// RepAck acknowledges a RepBatch.
type RepAck struct{ Seq uint64 }

func (*RepAck) Type() uint16       { return TRepAck }
func (m *RepAck) Encode(b *Buffer) { b.U64(m.Seq) }
func (m *RepAck) Decode(r *Reader) { m.Seq = r.U64() }

// VVReport is a partition's periodic version-vector report to the
// stabilization service.
type VVReport struct {
	Part uint32
	VV   vclock.Vec
}

func (*VVReport) Type() uint16 { return TVVReport }
func (m *VVReport) Encode(b *Buffer) {
	b.U32(m.Part)
	b.Vec(m.VV)
}
func (m *VVReport) Decode(r *Reader) {
	m.Part = r.U32()
	m.VV = r.Vec()
}

// Reset recycles nothing: the stabilizer retains VV.
func (m *VVReport) Reset() { *m = VVReport{} }

// GSSBcast distributes the freshly aggregated Global Stable Snapshot.
type GSSBcast struct{ GSS vclock.Vec }

func (*GSSBcast) Type() uint16       { return TGSSBcast }
func (m *GSSBcast) Encode(b *Buffer) { b.Vec(m.GSS) }
func (m *GSSBcast) Decode(r *Reader) { m.GSS = r.Vec() }

// Reset recycles nothing (receivers merge GSS entry-wise, but Vec decode
// always allocates fresh).
func (m *GSSBcast) Reset() { *m = GSSBcast{} }

//
// CC-LO (COPS-SNOW).
//

// LoDep is one COPS-style nearest dependency: a key plus the (Lamport
// timestamp, origin DC) identity of the version depended upon. The origin
// DC matters: Lamport timestamps collide across DCs, and a dependency
// check satisfied by a same-timestamp version from the wrong DC would
// break the causal install order.
type LoDep struct {
	Key string
	TS  uint64
	Src uint8
}

func encodeDeps(b *Buffer, deps []LoDep) {
	b.Uvarint(uint64(len(deps)))
	for i := range deps {
		b.String(deps[i].Key)
		b.U64(deps[i].TS)
		b.U8(deps[i].Src)
	}
}

func decodeDeps(r *Reader) []LoDep {
	return decodeDepsInto(nil, r)
}

// decodeDepsInto appends the decoded deps to dst[:0], reusing its backing
// array.
func decodeDepsInto(dst []LoDep, r *Reader) []LoDep {
	dst = dst[:0]
	n := r.Uvarint()
	if n > maxFieldLen {
		r.fail(ErrTooLarge)
		return nil
	}
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		dst = append(dst, LoDep{Key: r.String(), TS: r.U64(), Src: r.U8()})
	}
	return dst
}

// Epoch vectors: one restart epoch per partition of the serving DC, index
// = partition. A partition's epoch bumps once per crash recovery; servers
// gossip the newest epochs they have heard along readers-check and ROT
// traffic, which is exactly the causal channel a dependent write must have
// used before it could endanger a ROT whose reader records the crash
// destroyed. Clients cross-compare the vectors of a multi-partition ROT's
// legs to detect a restart the ROT straddled.

func encodeEpochs(b *Buffer, es []uint64) {
	b.Uvarint(uint64(len(es)))
	for _, e := range es {
		b.U64(e)
	}
}

// decodeEpochsInto appends the decoded epochs to dst[:0], reusing its
// backing array.
func decodeEpochsInto(dst []uint64, r *Reader) []uint64 {
	dst = dst[:0]
	n := r.Uvarint()
	if n > maxFieldLen {
		r.fail(ErrTooLarge)
		return nil
	}
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		dst = append(dst, r.U64())
	}
	return dst
}

// Reader identifies a ROT that has read a (possibly by now old) version,
// together with the Lamport time of that read. These are the "old readers"
// whose communication Section 6 proves is inherent to latency optimality.
type ReaderEntry struct {
	RotID uint64
	T     uint64
}

func encodeReaders(b *Buffer, rs []ReaderEntry) {
	b.Uvarint(uint64(len(rs)))
	for i := range rs {
		b.U64(rs[i].RotID)
		b.U64(rs[i].T)
	}
}

func decodeReaders(r *Reader) []ReaderEntry {
	return decodeReadersInto(nil, r)
}

// decodeReadersInto appends the decoded entries to dst[:0], reusing its
// backing array.
func decodeReadersInto(dst []ReaderEntry, r *Reader) []ReaderEntry {
	dst = dst[:0]
	n := r.Uvarint()
	if n > maxFieldLen {
		r.fail(ErrTooLarge)
		return nil
	}
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		dst = append(dst, ReaderEntry{RotID: r.U64(), T: r.U64()})
	}
	return dst
}

// LoPutReq installs a new version of Key in CC-LO. Deps carries the
// client's nearest dependencies; the receiving partition runs the readers
// check against every dependency's partition before installing.
type LoPutReq struct {
	Key   string
	Value []byte
	Deps  []LoDep
}

func (*LoPutReq) Type() uint16 { return TLoPutReq }
func (m *LoPutReq) Encode(b *Buffer) {
	b.String(m.Key)
	b.Bytes(m.Value)
	encodeDeps(b, m.Deps)
}
func (m *LoPutReq) Decode(r *Reader) {
	m.Key = r.String()
	m.Value = r.Bytes()
	m.Deps = decodeDeps(r)
}

// Reset recycles nothing: Value is retained by the store and Deps rides
// into the enqueued LoRepUpdate (CC-LO) or the stored version (COPS).
func (m *LoPutReq) Reset() { *m = LoPutReq{} }

// LoPutResp acknowledges a CC-LO PUT with the new version's timestamp.
type LoPutResp struct{ TS uint64 }

func (*LoPutResp) Type() uint16       { return TLoPutResp }
func (m *LoPutResp) Encode(b *Buffer) { b.U64(m.TS) }
func (m *LoPutResp) Decode(r *Reader) { m.TS = r.U64() }

// LoRotReq is CC-LO's one-round read: the client sends it directly to every
// involved partition.
type LoRotReq struct {
	RotID uint64
	// SeenTS is the session's Lamport high-water mark (the newest timestamp
	// it has observed through reads and put acks). The serving partition
	// folds it into its clock before assigning read times, so a recorded
	// old-reader entry is never below state the session already saw — the
	// rewind a later dependent write triggers can then never serve this
	// session something older than its own past.
	SeenTS uint64
	// Epochs is the client's current view of the DC's per-partition restart
	// epochs (possibly empty); the serving partition folds it into its own
	// vector, so fence knowledge gossips both ways.
	Epochs []uint64
	Keys   []string
}

func (*LoRotReq) Type() uint16 { return TLoRotReq }
func (m *LoRotReq) Encode(b *Buffer) {
	b.U64(m.RotID)
	b.U64(m.SeenTS)
	encodeEpochs(b, m.Epochs)
	encodeStrings(b, m.Keys)
}
func (m *LoRotReq) Decode(r *Reader) {
	m.RotID = r.U64()
	m.SeenTS = r.U64()
	m.Epochs = decodeEpochsInto(m.Epochs, r)
	m.Keys = decodeStringsInto(m.Keys, r)
}

// Reset recycles the Keys and Epochs containers (the read path copies
// string headers into its synchronously encoded response and folds the
// epochs before returning).
func (m *LoRotReq) Reset() {
	clear(m.Keys)
	*m = LoRotReq{Keys: m.Keys[:0], Epochs: m.Epochs[:0]}
}

// LoRotResp carries CC-LO read results plus the serving partition's epoch
// vector (Epochs[p] is its newest known restart epoch of partition p; its
// own entry is authoritative). The client's fence cross-compares the
// vectors of a multi-partition ROT's legs: a leg that knows a newer epoch
// of partition p than p's own leg reported proves p restarted while the
// ROT was in flight, so its reader records — the ROT's rewind protection —
// may be gone and the ROT retries.
type LoRotResp struct {
	Vals   []KV
	Epochs []uint64
}

func (*LoRotResp) Type() uint16 { return TLoRotResp }
func (m *LoRotResp) Encode(b *Buffer) {
	encodeKVs(b, m.Vals)
	encodeEpochs(b, m.Epochs)
}
func (m *LoRotResp) Decode(r *Reader) {
	m.Vals = decodeKVs(r)
	m.Epochs = decodeEpochsInto(nil, r)
}

// OldReadersReq is the readers check: it asks a partition for the old
// readers of each listed dependency. Epochs carries the requester's epoch
// vector so restart knowledge propagates along the check.
type OldReadersReq struct {
	Deps   []LoDep
	Epochs []uint64
}

func (*OldReadersReq) Type() uint16 { return TOldReadersReq }
func (m *OldReadersReq) Encode(b *Buffer) {
	encodeDeps(b, m.Deps)
	encodeEpochs(b, m.Epochs)
}
func (m *OldReadersReq) Decode(r *Reader) {
	m.Deps = decodeDepsInto(m.Deps, r)
	m.Epochs = decodeEpochsInto(m.Epochs, r)
}

// Reset recycles the Deps and Epochs containers (the readers check only
// scans them).
func (m *OldReadersReq) Reset() {
	clear(m.Deps)
	*m = OldReadersReq{Deps: m.Deps[:0], Epochs: m.Epochs[:0]}
}

// OldReadersResp returns the collected old readers. Cumulative counts the
// entries before the at-most-one-per-client filter so benchmarks can report
// both series of Figure 6. Epochs is the responder's epoch vector: the
// requester folds it into its own BEFORE installing the version being
// checked, which is what makes a restarted partition's new epoch reach
// every version that could have skipped its lost reader records — and from
// there, any ROT leg that serves such a version.
type OldReadersResp struct {
	Readers    []ReaderEntry
	Cumulative uint32
	Epochs     []uint64
}

func (*OldReadersResp) Type() uint16 { return TOldReadersResp }
func (m *OldReadersResp) Encode(b *Buffer) {
	encodeReaders(b, m.Readers)
	b.U32(m.Cumulative)
	encodeEpochs(b, m.Epochs)
}
func (m *OldReadersResp) Decode(r *Reader) {
	m.Readers = decodeReaders(r)
	m.Cumulative = r.U32()
	m.Epochs = decodeEpochsInto(nil, r)
}

// LoRepUpdate replicates one CC-LO version with its dependency list and the
// old readers gathered at the origin DC; the receiver performs its own
// dependency check and readers check before install.
type LoRepUpdate struct {
	Seq        uint64
	SrcDC      uint8
	SrcPart    uint32
	Key        string
	Value      []byte
	TS         uint64
	Deps       []LoDep
	OldReaders []ReaderEntry
}

func (*LoRepUpdate) Type() uint16 { return TLoRepUpdate }
func (m *LoRepUpdate) Encode(b *Buffer) {
	b.U64(m.Seq)
	b.U8(m.SrcDC)
	b.U32(m.SrcPart)
	b.String(m.Key)
	b.Bytes(m.Value)
	b.U64(m.TS)
	encodeDeps(b, m.Deps)
	encodeReaders(b, m.OldReaders)
}
func (m *LoRepUpdate) Decode(r *Reader) {
	m.Seq = r.U64()
	m.SrcDC = r.U8()
	m.SrcPart = r.U32()
	m.Key = r.String()
	m.Value = r.Bytes()
	m.TS = r.U64()
	m.Deps = decodeDeps(r)
	m.OldReaders = decodeReadersInto(m.OldReaders, r)
}

// Reset recycles the OldReaders container (entries are merged by value);
// Value and Deps are retained by the receiving store, so they are dropped.
func (m *LoRepUpdate) Reset() {
	*m = LoRepUpdate{OldReaders: m.OldReaders[:0]}
}

// LoRepAck acknowledges a LoRepUpdate.
type LoRepAck struct{ Seq uint64 }

func (*LoRepAck) Type() uint16       { return TLoRepAck }
func (m *LoRepAck) Encode(b *Buffer) { b.U64(m.Seq) }
func (m *LoRepAck) Decode(r *Reader) { m.Seq = r.U64() }

// DepCheckReq asks whether the receiver has installed the version of Key
// identified by (TS, Src); the receiver delays its response until it has
// (COPS-style dependency checking).
type DepCheckReq struct {
	Key string
	TS  uint64
	Src uint8
}

func (*DepCheckReq) Type() uint16 { return TDepCheckReq }
func (m *DepCheckReq) Encode(b *Buffer) {
	b.String(m.Key)
	b.U64(m.TS)
	b.U8(m.Src)
}
func (m *DepCheckReq) Decode(r *Reader) {
	m.Key = r.String()
	m.TS = r.U64()
	m.Src = r.U8()
}

// Reset clears the scalar fields.
func (m *DepCheckReq) Reset() { *m = DepCheckReq{} }

// DepCheckResp signals the dependency is present.
type DepCheckResp struct{}

func (*DepCheckResp) Type() uint16   { return TDepCheckResp }
func (*DepCheckResp) Encode(*Buffer) {}
func (*DepCheckResp) Decode(*Reader) {}

//
// Infrastructure.
//

// ErrorResp reports a server-side failure to a caller.
type ErrorResp struct {
	Code uint16
	Text string
}

func (*ErrorResp) Type() uint16 { return TErrorResp }
func (m *ErrorResp) Encode(b *Buffer) {
	b.U16(m.Code)
	b.String(m.Text)
}
func (m *ErrorResp) Decode(r *Reader) {
	m.Code = r.U16()
	m.Text = r.String()
}

func (m *ErrorResp) Error() string { return m.Text }

// Ping is a liveness probe.
type Ping struct{ Nonce uint64 }

func (*Ping) Type() uint16       { return TPing }
func (m *Ping) Encode(b *Buffer) { b.U64(m.Nonce) }
func (m *Ping) Decode(r *Reader) { m.Nonce = r.U64() }

// Reset clears the nonce.
func (m *Ping) Reset() { *m = Ping{} }

// Pong answers a Ping.
type Pong struct{ Nonce uint64 }

func (*Pong) Type() uint16       { return TPong }
func (m *Pong) Encode(b *Buffer) { b.U64(m.Nonce) }
func (m *Pong) Decode(r *Reader) { m.Nonce = r.U64() }

// Busy is the typed shed response of the transport's admission gate: the
// server declined to run a client request and the client should retry after
// roughly the carried hint (with its own jitter). For Call-style requests it
// travels as the response envelope; for one-way correlated requests (the
// 1 1/2-round ROT's coordinator leg) it travels as a one-way message whose
// Echo carries the request's correlation id. It is deliberately NOT pooled:
// Call waiters and client ROT state retain it past the handler's return.
type Busy struct {
	// Echo is the shed request's correlation id (Correlated.CorrelationID)
	// when the request was one-way; 0 for reqID-matched responses.
	Echo uint64
	// RetryAfterMicros is the server's backoff hint in microseconds.
	RetryAfterMicros uint32
}

func (*Busy) Type() uint16 { return TBusy }
func (m *Busy) Encode(b *Buffer) {
	b.U64(m.Echo)
	b.U32(m.RetryAfterMicros)
}
func (m *Busy) Decode(r *Reader) {
	m.Echo = r.U64()
	m.RetryAfterMicros = r.U32()
}

// Error makes Busy returnable as a Call error (transport.unwrapResp).
func (m *Busy) Error() string { return "server busy, retry later" }

// RetryAfter returns the backoff hint as a duration.
func (m *Busy) RetryAfter() time.Duration {
	return time.Duration(m.RetryAfterMicros) * time.Microsecond
}

// Correlated is implemented by one-way request messages that carry their
// own correlation id. The admission gate uses it to shed such requests with
// an addressable Busy: there is no reqID to respond to, so the Busy's Echo
// carries this id and the client routes it like the direct server-to-client
// messages the request would have produced.
type Correlated interface {
	CorrelationID() uint64
}

// CorrelationID makes the 1 1/2-round ROT's one-way coordinator request
// sheddable (the Busy's Echo routes to the client's waiting ROT by RotID).
func (m *RotCoordReq) CorrelationID() uint64 { return m.RotID }

//
// COPS (two-round, two-version ROTs; §3 of the paper).
//

// DepKV is a read result together with the version's nearest dependencies;
// COPS' first ROT round returns these so the client can detect snapshot
// gaps (Figure 1: "Y1 depends on X1").
type DepKV struct {
	KV   KV
	Deps []LoDep
}

// CopsRotReq is the first round of a COPS read-only transaction.
type CopsRotReq struct{ Keys []string }

func (*CopsRotReq) Type() uint16       { return TCopsRotReq }
func (m *CopsRotReq) Encode(b *Buffer) { encodeStrings(b, m.Keys) }
func (m *CopsRotReq) Decode(r *Reader) { m.Keys = decodeStringsInto(m.Keys, r) }

// Reset recycles the Keys container.
func (m *CopsRotReq) Reset() {
	clear(m.Keys)
	*m = CopsRotReq{Keys: m.Keys[:0]}
}

// CopsRotResp returns the latest versions plus their dependency lists.
type CopsRotResp struct{ Vals []DepKV }

func (*CopsRotResp) Type() uint16 { return TCopsRotResp }
func (m *CopsRotResp) Encode(b *Buffer) {
	b.Uvarint(uint64(len(m.Vals)))
	for i := range m.Vals {
		b.String(m.Vals[i].KV.Key)
		b.Bytes(m.Vals[i].KV.Value)
		b.U64(m.Vals[i].KV.TS)
		b.U8(m.Vals[i].KV.Src)
		encodeDeps(b, m.Vals[i].Deps)
	}
}
func (m *CopsRotResp) Decode(r *Reader) {
	n := r.Uvarint()
	if n > maxFieldLen {
		r.fail(ErrTooLarge)
		return
	}
	m.Vals = make([]DepKV, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		m.Vals = append(m.Vals, DepKV{
			KV:   KV{Key: r.String(), Value: r.Bytes(), TS: r.U64(), Src: r.U8()},
			Deps: decodeDeps(r),
		})
	}
}

// CopsVerReq is the second ROT round: fetch the specific version (TS, Src)
// of Key (the causal cut computed from the first round's dependencies).
type CopsVerReq struct {
	Key string
	TS  uint64
	Src uint8
}

func (*CopsVerReq) Type() uint16 { return TCopsVerReq }
func (m *CopsVerReq) Encode(b *Buffer) {
	b.String(m.Key)
	b.U64(m.TS)
	b.U8(m.Src)
}
func (m *CopsVerReq) Decode(r *Reader) {
	m.Key = r.String()
	m.TS = r.U64()
	m.Src = r.U8()
}

// Reset clears the scalar fields.
func (m *CopsVerReq) Reset() { *m = CopsVerReq{} }

// CopsVerResp returns the requested version.
type CopsVerResp struct{ Val KV }

func (*CopsVerResp) Type() uint16 { return TCopsVerResp }
func (m *CopsVerResp) Encode(b *Buffer) {
	b.String(m.Val.Key)
	b.Bytes(m.Val.Value)
	b.U64(m.Val.TS)
}
func (m *CopsVerResp) Decode(r *Reader) {
	m.Val = KV{Key: r.String(), Value: r.Bytes(), TS: r.U64()}
}
