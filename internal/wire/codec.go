package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/vclock"
)

// Codec errors.
var (
	ErrTruncated   = errors.New("wire: truncated message")
	ErrTooLarge    = errors.New("wire: field exceeds size limit")
	ErrUnknownType = errors.New("wire: unknown message type")
)

// maxFieldLen bounds any single length-prefixed field; it protects decoders
// from corrupt frames.
const maxFieldLen = 1 << 26 // 64 MiB

// Buffer is an append-only encoder.
type Buffer struct{ B []byte }

// U8 appends a byte.
func (b *Buffer) U8(v uint8) { b.B = append(b.B, v) }

// U16 appends a fixed-width 16-bit value.
func (b *Buffer) U16(v uint16) { b.B = binary.LittleEndian.AppendUint16(b.B, v) }

// U32 appends a fixed-width 32-bit value.
func (b *Buffer) U32(v uint32) { b.B = binary.LittleEndian.AppendUint32(b.B, v) }

// U64 appends a fixed-width 64-bit value.
func (b *Buffer) U64(v uint64) { b.B = binary.LittleEndian.AppendUint64(b.B, v) }

// Uvarint appends a variable-width unsigned value.
func (b *Buffer) Uvarint(v uint64) { b.B = binary.AppendUvarint(b.B, v) }

// Bytes appends a length-prefixed byte slice.
func (b *Buffer) Bytes(v []byte) {
	b.Uvarint(uint64(len(v)))
	b.B = append(b.B, v...)
}

// String appends a length-prefixed string.
func (b *Buffer) String(v string) {
	b.Uvarint(uint64(len(v)))
	b.B = append(b.B, v...)
}

// Vec appends a length-prefixed timestamp vector.
func (b *Buffer) Vec(v vclock.Vec) {
	b.Uvarint(uint64(len(v)))
	for _, x := range v {
		b.U64(x)
	}
}

// Reader is a sticky-error decoder over a byte slice. After the first
// error, every accessor returns a zero value; callers check Err once.
type Reader struct {
	b   []byte
	pos int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b; decoded
// byte slices are copied out so messages do not alias network buffers.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.pos }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.b) {
		r.fail(ErrTruncated)
		return nil
	}
	s := r.b[r.pos : r.pos+n]
	r.pos += n
	return s
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// U16 reads a fixed-width 16-bit value.
func (r *Reader) U16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

// U32 reads a fixed-width 32-bit value.
func (r *Reader) U32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

// U64 reads a fixed-width 64-bit value.
func (r *Reader) U64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// Uvarint reads a variable-width unsigned value.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.pos += n
	return v
}

func (r *Reader) length() int {
	n := r.Uvarint()
	if n > maxFieldLen {
		r.fail(ErrTooLarge)
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice into fresh storage. Zero-length
// fields decode as nil: the wire format does not distinguish empty from
// absent values (callers signal presence separately, e.g. via KV.TS).
func (r *Reader) Bytes() []byte {
	n := r.length()
	if n == 0 {
		return nil
	}
	s := r.take(n)
	if s == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, s)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length()
	s := r.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

// Vec reads a length-prefixed timestamp vector.
func (r *Reader) Vec() vclock.Vec {
	n := r.length()
	if n > 1<<16 {
		r.fail(ErrTooLarge)
		return nil
	}
	if r.err != nil {
		return nil
	}
	v := make(vclock.Vec, n)
	for i := range v {
		v[i] = r.U64()
	}
	if r.err != nil {
		return nil
	}
	return v
}

// Message is a unit of communication. Implementations register themselves
// via Register in their init functions.
type Message interface {
	// Type identifies the concrete message on the wire.
	Type() uint16
	// Encode appends the message body to b.
	Encode(b *Buffer)
	// Decode parses the message body from r.
	Decode(r *Reader)
}

var (
	registry [256]func() Message
	msgPools [256]*sync.Pool
)

// Register records the factory for message type t. It panics on duplicate
// registration; call it from init only.
func Register(t uint16, fn func() Message) {
	if int(t) >= len(registry) {
		panic(fmt.Sprintf("wire: message type %d out of range", t))
	}
	if registry[t] != nil {
		panic(fmt.Sprintf("wire: duplicate message type %d", t))
	}
	registry[t] = fn
}

// Resettable is implemented by pooled message types: Reset clears the
// message for reuse, nilling any field a handler may legitimately retain
// (values, dependency lists kept by stores) and truncating — but keeping
// the capacity of — container slices no handler retains, so a recycled
// decode reuses their backing arrays.
type Resettable interface {
	Message
	Reset()
}

// Pool marks the already-registered message type t as pooled: New draws
// instances from a sync.Pool and Recycle returns them, mirroring on the
// decode side what GetFrame/PutFrame do for encode buffers. The type's
// factory must produce a Resettable. Call from init only.
func Pool(t uint16) {
	if int(t) >= len(registry) || registry[t] == nil {
		panic(fmt.Sprintf("wire: Pool(%d) before Register", t))
	}
	if _, ok := registry[t]().(Resettable); !ok {
		panic(fmt.Sprintf("wire: message type %d is not Resettable", t))
	}
	fn := registry[t]
	msgPools[t] = &sync.Pool{New: func() any { return fn() }}
}

// New instantiates an empty message of type t, drawing pooled types from
// their pool (their Decode must overwrite every field; see Resettable).
func New(t uint16) (Message, error) {
	if int(t) >= len(registry) || registry[t] == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
	if p := msgPools[t]; p != nil {
		return p.Get().(Message), nil
	}
	return registry[t](), nil
}

// Recycle returns a decoded message to its type's pool; it is a no-op for
// unpooled types and nil. Transports call it after the handler for an
// inbound request returns — handlers must not retain the message struct or
// its recycled container slices past that point (see transport.Handler).
// Responses handed to Call waiters are never recycled.
func Recycle(m Message) {
	if m == nil {
		return
	}
	t := m.Type()
	if int(t) >= len(msgPools) || msgPools[t] == nil {
		return
	}
	m.(Resettable).Reset()
	msgPools[t].Put(m)
}

// Envelope wraps a message with routing and correlation metadata.
type Envelope struct {
	Src   Addr
	Dst   Addr
	ReqID uint64 // nonzero for request/response pairs
	Resp  bool   // true when this is a response to ReqID
	// Session is the client-side session the frame belongs to, whichever
	// direction it travels: the source session on client→server frames,
	// the destination session on server→client frames. Zero (intra-cluster
	// traffic, session-less endpoints) is omitted from the encoding, so
	// such frames carry no session overhead at all.
	Session SessionID
	Msg     Message
}

// Envelope appends the wire representation of e (header and message body,
// no length prefix) to b. Encoding through an already-heap-resident Buffer
// (e.g. a pooled FrameBuf) keeps the hot path allocation-free; the
// b-by-value wrapper EncodeEnvelope pays one escape allocation for the
// Buffer itself.
func (b *Buffer) Envelope(e *Envelope) {
	b.U16(e.Msg.Type())
	var flags uint8
	if e.Resp {
		flags |= 1
	}
	if e.Session != 0 {
		flags |= 2
	}
	b.U8(flags)
	b.U32(uint32(e.Src))
	b.U32(uint32(e.Dst))
	if e.Session != 0 {
		b.U32(uint32(e.Session))
	}
	b.Uvarint(e.ReqID)
	e.Msg.Encode(b)
}

// EncodeEnvelope appends the full framed representation of e to buf and
// returns the extended slice.
func EncodeEnvelope(buf []byte, e *Envelope) []byte {
	b := Buffer{B: buf}
	b.Envelope(e)
	return b.B
}

// DecodeEnvelope parses an envelope from p.
func DecodeEnvelope(p []byte) (*Envelope, error) {
	r := NewReader(p)
	t := r.U16()
	flags := r.U8()
	src := Addr(r.U32())
	dst := Addr(r.U32())
	var sess SessionID
	if flags&2 != 0 {
		sess = SessionID(r.U32())
	}
	reqID := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	m, err := New(t)
	if err != nil {
		return nil, err
	}
	m.Decode(r)
	if r.Err() != nil {
		return nil, fmt.Errorf("decoding type %d: %w", t, r.Err())
	}
	return &Envelope{
		Src:     src,
		Dst:     dst,
		ReqID:   reqID,
		Resp:    flags&1 != 0,
		Session: sess,
		Msg:     m,
	}, nil
}
