package wire

import (
	"testing"

	"repro/internal/vclock"
)

// Micro-benchmarks for the codec: every protocol message crosses it twice
// (encode at the sender, decode at the receiver), so its cost is part of
// every latency the macro-benchmarks report.

func benchEnvelope(value []byte) []byte {
	return EncodeEnvelope(nil, &Envelope{
		Src:   ClientAddr(0, 1),
		Dst:   ServerAddr(0, 2),
		ReqID: 42,
		Msg:   &PutReq{Key: "key00001234", Value: value, Deps: vclock.Vec{1, 2}},
	})
}

func BenchmarkEncodePutReq8(b *testing.B) {
	val := make([]byte, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := benchEnvelope(val)
		_ = buf
	}
}

func BenchmarkEncodePutReq2048(b *testing.B) {
	val := make([]byte, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := benchEnvelope(val)
		_ = buf
	}
}

// benchFramePooled is the transport send path after this PR: pooled buffer,
// length prefix reserved in the same buffer, zero allocations at steady
// state (vs 7 allocs/op for the seed's EncodeEnvelope(nil, ...)).
func benchFramePooled(b *testing.B, valSize int) {
	b.Helper()
	val := make([]byte, valSize)
	env := &Envelope{
		Src:   ClientAddr(0, 1),
		Dst:   ServerAddr(0, 2),
		ReqID: 42,
		Msg:   &PutReq{Key: "key00001234", Value: val, Deps: vclock.Vec{1, 2}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := GetFrame()
		f.AppendEnvelope(env)
		PutFrame(f)
	}
}

func BenchmarkEncodeFramePooled8(b *testing.B)    { benchFramePooled(b, 8) }
func BenchmarkEncodeFramePooled2048(b *testing.B) { benchFramePooled(b, 2048) }

func BenchmarkDecodePutReq8(b *testing.B) {
	buf := benchEnvelope(make([]byte, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePutReq2048(b *testing.B) {
	buf := benchEnvelope(make([]byte, 2048))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDecodeRecycled is the receive path after decode-side message-struct
// pooling: the transport recycles the message once the handler returns, so
// the next decode of the same type reuses the struct (and, for container
// types like RepBatch.Ups, its backing array) instead of allocating.
//
// Measured against the unpooled loops on the dev machine (2.1 GHz Xeon):
//
//	DecodePutReq8:              428 ns/op    200 B/op    6 allocs/op
//	DecodePutReq8Recycled:      197 ns/op    136 B/op    5 allocs/op
//	DecodeRepBatch64:          9145 ns/op  13200 B/op  202 allocs/op
//	DecodeRepBatch64Recycled:  6030 ns/op   2656 B/op  194 allocs/op
//
// The struct alloc disappears for every pooled type; for container messages
// the recycled backing array (RepBatch.Ups: 64 updates ≈ 10 KiB) is the
// bulk of the win. Refresh with `go test ./internal/wire -bench Decode`.
func benchDecodeRecycled(b *testing.B, buf []byte) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := DecodeEnvelope(buf)
		if err != nil {
			b.Fatal(err)
		}
		Recycle(env.Msg)
	}
}

func BenchmarkDecodePutReq8Recycled(b *testing.B) {
	benchDecodeRecycled(b, benchEnvelope(make([]byte, 8)))
}

func benchRepBatchEnvelope() []byte {
	ups := make([]Update, 64)
	for i := range ups {
		ups[i] = Update{
			Key: "key00001234", Value: make([]byte, 8),
			TS: uint64(i), DV: vclock.Vec{uint64(i), 2},
		}
	}
	return EncodeEnvelope(nil, &Envelope{Src: 1, Dst: 2, ReqID: 9, Msg: &RepBatch{
		SrcDC: 1, SrcPart: 3, Seq: 77, HighTS: 99, Ups: ups,
	}})
}

func BenchmarkDecodeRepBatch64(b *testing.B) {
	buf := benchRepBatchEnvelope()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRepBatch64Recycled(b *testing.B) {
	benchDecodeRecycled(b, benchRepBatchEnvelope())
}

func BenchmarkEncodeOldReadersResp(b *testing.B) {
	// A readers-check response carrying 256 old readers — the CC-LO write
	// path's signature payload (§5.4: ~855 ids per check at peak).
	readers := make([]ReaderEntry, 256)
	for i := range readers {
		readers[i] = ReaderEntry{RotID: uint64(i)<<32 | uint64(i), T: uint64(i)}
	}
	msg := &OldReadersResp{Readers: readers, Cumulative: 855}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := EncodeEnvelope(nil, &Envelope{Src: 1, Dst: 2, ReqID: 1, Resp: true, Msg: msg})
		_ = buf
	}
}

func BenchmarkDecodeRotSnap(b *testing.B) {
	kvs := make([]KV, 4)
	for i := range kvs {
		kvs[i] = KV{Key: "key00001234", Value: make([]byte, 8), TS: uint64(i)}
	}
	buf := EncodeEnvelope(nil, &Envelope{Src: 1, Dst: 2, Msg: &RotSnap{
		RotID: 9, SV: vclock.Vec{1, 2}, Vals: kvs,
	}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(buf); err != nil {
			b.Fatal(err)
		}
	}
}
