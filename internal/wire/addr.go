// Package wire defines the binary message format spoken between clients,
// partition servers, and per-DC stabilizers. It plays the role Google
// protobuf plays in the paper's C++ code base: every message crossing the
// (simulated or TCP) network is marshalled through this package, so
// serialization CPU costs are part of what the benchmarks measure.
package wire

import "fmt"

// Addr is a compact process address.
//
// Layout: bit 31 = server flag, bits 30..16 = data-center id,
// bits 15..0 = partition index (servers) or client id (clients).
// Partition index 0xFFFF addresses the DC's stabilization service.
type Addr uint32

const (
	serverBit  = 1 << 31
	stabilizer = 0xFFFF
)

// ServerAddr returns the address of partition part in data center dc.
func ServerAddr(dc, part int) Addr {
	return Addr(serverBit | dc<<16 | part&0xFFFF)
}

// StabilizerAddr returns the address of dc's stabilization service.
func StabilizerAddr(dc int) Addr { return ServerAddr(dc, stabilizer) }

// ClientAddr returns the address of client id homed in data center dc.
func ClientAddr(dc, id int) Addr { return Addr(dc<<16 | id&0xFFFF) }

// DC returns the data-center id of a.
func (a Addr) DC() int { return int(a) &^ serverBit >> 16 }

// Index returns the partition index (servers) or client id (clients).
func (a Addr) Index() int { return int(a & 0xFFFF) }

// IsServer reports whether a addresses a partition server or stabilizer.
func (a Addr) IsServer() bool { return a&serverBit != 0 }

// IsStabilizer reports whether a addresses a stabilization service.
func (a Addr) IsStabilizer() bool { return a.IsServer() && a.Index() == stabilizer }

// String formats a for logs.
func (a Addr) String() string {
	switch {
	case a.IsStabilizer():
		return fmt.Sprintf("stab(dc%d)", a.DC())
	case a.IsServer():
		return fmt.Sprintf("srv(dc%d,p%d)", a.DC(), a.Index())
	default:
		return fmt.Sprintf("cli(dc%d,%d)", a.DC(), a.Index())
	}
}
