// Package wire defines the binary message format spoken between clients,
// partition servers, and per-DC stabilizers. It plays the role Google
// protobuf plays in the paper's C++ code base: every message crossing the
// (simulated or TCP) network is marshalled through this package, so
// serialization CPU costs are part of what the benchmarks measure.
package wire

import "fmt"

// Addr is a compact process address.
//
// Layout: bit 31 = server flag, bit 30 = client flag,
// bits 29..16 = data-center id, bits 15..0 = partition index (servers) or
// client id (clients). Partition index 0xFFFF addresses the DC's
// stabilization service.
//
// Exactly one of the two role bits is set in every valid address, so the
// zero Addr is never a legal endpoint: transports use it as an "unknown
// peer" sentinel (see tcpNode.readLoop) and ClientAddr(0, 0) must not
// collide with it.
type Addr uint32

const (
	serverBit  = 1 << 31
	clientBit  = 1 << 30
	dcMask     = 0x3FFF
	stabilizer = 0xFFFF
)

// Field capacity limits. Code accepting dc/partition/client ids from
// external input (config files, flags) should bound-check against these
// and report an error rather than let the constructors panic.
const (
	MaxDC        = dcMask         // highest data-center id
	MaxPartition = stabilizer - 1 // highest ordinary partition index
	MaxClientID  = 0xFFFF         // highest client id
)

// checkRange panics when v does not fit its address field. Masking out of
// range values instead would silently alias another process's address —
// e.g. dc 16384 wrapping onto dc 0 — which is strictly worse than failing
// at construction time.
func checkRange(what string, v, max int) {
	if v < 0 || v > max {
		panic(fmt.Sprintf("wire: %s %d out of range [0, %d]", what, v, max))
	}
}

// ServerAddr returns the address of partition part in data center dc.
// It panics if dc or part does not fit the address layout; the top index
// is excluded because it addresses the stabilizer, and aliasing it would
// misroute a partition's traffic to the stabilization service.
func ServerAddr(dc, part int) Addr {
	checkRange("dc", dc, MaxDC)
	checkRange("partition", part, MaxPartition)
	return Addr(serverBit | dc<<16 | part)
}

// StabilizerAddr returns the address of dc's stabilization service.
func StabilizerAddr(dc int) Addr {
	checkRange("dc", dc, MaxDC)
	return Addr(serverBit | dc<<16 | stabilizer)
}

// ClientAddr returns the address of client id homed in data center dc.
// It panics if dc or id does not fit the address layout.
func ClientAddr(dc, id int) Addr {
	checkRange("dc", dc, MaxDC)
	checkRange("client id", id, MaxClientID)
	return Addr(clientBit | dc<<16 | id)
}

// DC returns the data-center id of a.
func (a Addr) DC() int { return int(a>>16) & dcMask }

// Index returns the partition index (servers) or client id (clients).
func (a Addr) Index() int { return int(a & 0xFFFF) }

// IsServer reports whether a addresses a partition server or stabilizer.
func (a Addr) IsServer() bool { return a&serverBit != 0 }

// IsClient reports whether a addresses a client.
func (a Addr) IsClient() bool { return a&clientBit != 0 }

// IsStabilizer reports whether a addresses a stabilization service.
func (a Addr) IsStabilizer() bool { return a.IsServer() && a.Index() == stabilizer }

// Valid reports whether a is a well-formed endpoint address. The zero Addr
// (and any value missing a role bit) is invalid by construction.
func (a Addr) Valid() bool { return a&(serverBit|clientBit) != 0 }

// String formats a for logs.
func (a Addr) String() string {
	switch {
	case a.IsStabilizer():
		return fmt.Sprintf("stab(dc%d)", a.DC())
	case a.IsServer():
		return fmt.Sprintf("srv(dc%d,p%d)", a.DC(), a.Index())
	case a.IsClient():
		return fmt.Sprintf("cli(dc%d,%d)", a.DC(), a.Index())
	default:
		return fmt.Sprintf("invalid(%#x)", uint32(a))
	}
}
