// Package ring maps keys to partitions with a deterministic hash, the
// "hash function that deterministically assigns each key to a partition"
// of Section 2.3. FNV-1a is used so clients and servers in different
// processes (TCP deployments) agree without exchanging a seed.
package ring

// Ring assigns keys to n partitions.
type Ring struct{ n int }

// New returns a ring over n partitions. n must be positive.
func New(n int) Ring {
	if n <= 0 {
		panic("ring: non-positive partition count")
	}
	return Ring{n: n}
}

// Parts returns the number of partitions.
func (r Ring) Parts() int { return r.n }

// Owner returns the partition owning key.
func (r Ring) Owner(key string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(r.n))
}

// Group splits keys by owning partition, preserving order within groups.
func (r Ring) Group(keys []string) map[int][]string {
	g := make(map[int][]string)
	for _, k := range keys {
		p := r.Owner(k)
		g[p] = append(g[p], k)
	}
	return g
}
