package ring

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministicAndInRange(t *testing.T) {
	r := New(32)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		p := r.Owner(k)
		if p < 0 || p >= 32 {
			t.Fatalf("Owner(%q) = %d out of range", k, p)
		}
		if p != r.Owner(k) {
			t.Fatalf("Owner(%q) not deterministic", k)
		}
	}
}

func TestOwnerSpread(t *testing.T) {
	r := New(8)
	counts := make([]int, 8)
	const n = 8000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for p, c := range counts {
		if c < n/8/2 || c > n/8*2 {
			t.Errorf("partition %d has %d keys, want ≈%d", p, c, n/8)
		}
	}
}

func TestGroup(t *testing.T) {
	r := New(4)
	keys := []string{"a", "b", "c", "d", "e", "f"}
	g := r.Group(keys)
	total := 0
	for p, ks := range g {
		total += len(ks)
		for _, k := range ks {
			if r.Owner(k) != p {
				t.Fatalf("key %q grouped under %d but owned by %d", k, p, r.Owner(k))
			}
		}
	}
	if total != len(keys) {
		t.Fatalf("grouped %d keys, want %d", total, len(keys))
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
