package cclo

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wire"
)

// crashRig is a 1-DC, 2-partition CC-LO deployment with one WAL per
// partition, built for kill -9 + restart of individual partitions: the
// in-flight-ROT crash scenarios ROADMAP called the last correctness hole.
type crashRig struct {
	t    *testing.T
	net  *transport.Local
	ring ring.Ring
	dirs [2]string
	logs [2]*wal.Log
	srvs [2]*Server
	kx   string // owned by partition 0
	ky   string // owned by partition 1
}

func newCrashRig(t *testing.T, durable bool) *crashRig {
	t.Helper()
	rig := &crashRig{
		t:    t,
		net:  transport.NewLocal(transport.LatencyModel{}),
		ring: ring.New(2),
	}
	t.Cleanup(func() { rig.net.Close() })
	rig.kx = keyOwnedBy(rig.ring, 0)
	rig.ky = keyOwnedBy(rig.ring, 1)
	for p := 0; p < 2; p++ {
		if durable {
			rig.dirs[p] = t.TempDir()
		}
		rig.start(p)
	}
	t.Cleanup(func() {
		for p := 0; p < 2; p++ {
			if rig.srvs[p] != nil {
				rig.srvs[p].Close()
			}
			if rig.logs[p] != nil {
				rig.logs[p].Close()
			}
		}
	})
	return rig
}

func (r *crashRig) start(p int) {
	cfg := Config{DC: 0, Part: p, NumDCs: 1, NumParts: 2, GCWindow: time.Minute}
	if r.dirs[p] != "" {
		l, err := wal.Open(wal.Options{Dir: r.dirs[p]})
		if err != nil {
			r.t.Fatal(err)
		}
		r.logs[p] = l
		cfg.Durable = l
	}
	s, err := NewServer(cfg, r.net)
	if err != nil {
		r.t.Fatal(err)
	}
	s.Start()
	r.srvs[p] = s
}

// crashRestart is the in-process kill -9: the WAL loses everything the
// last fsync did not cover, the server dies with its soft state, and a
// fresh server recovers over the same directory.
func (r *crashRig) crashRestart(p int) {
	r.t.Helper()
	if r.logs[p] == nil {
		r.t.Fatal("crashRestart needs a durable rig")
	}
	if err := r.logs[p].Crash(); err != nil {
		r.t.Fatal(err)
	}
	r.srvs[p].Close()
	r.start(p)
}

func (r *crashRig) client(id int) *Client {
	r.t.Helper()
	c, err := NewClient(ClientConfig{DC: 0, ID: id, Ring: r.ring}, r.net)
	if err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(func() { c.Close() })
	return c
}

func (r *crashRig) put(cli *Client, key, val string) uint64 {
	r.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ts, err := cli.Put(ctx, key, []byte(val))
	if err != nil {
		r.t.Fatal(err)
	}
	return ts
}

// rawRot plays one leg of a multi-partition ROT by hand: the only way to
// make a leg land after a crash its sibling leg preceded.
func (r *crashRig) rawRot(node transport.Node, part int, rotID uint64, key string) *wire.LoRotResp {
	r.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		resp, err := node.Call(ctx, wire.ServerAddr(0, part), &wire.LoRotReq{RotID: rotID, Keys: []string{key}})
		cancel()
		if err == nil {
			rr, ok := resp.(*wire.LoRotResp)
			if !ok {
				r.t.Fatalf("unexpected response %T", resp)
			}
			return rr
		}
		if time.Now().After(deadline) {
			r.t.Fatalf("leg to p%d never served: %v", part, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func keyOwnedBy(r ring.Ring, part int) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("ck%d", i)
		if r.Owner(k) == part {
			return k
		}
	}
}

// readerNode attaches a raw client-address node for hand-played ROT legs.
func (r *crashRig) readerNode(id int) (transport.Node, uint64) {
	r.t.Helper()
	n, err := r.net.Attach(wire.ClientAddr(0, id), transport.HandlerFunc(
		func(transport.Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(func() { n.Close() })
	return n, uint64(n.Addr())<<32 | 1
}

// TestStraddlingROTRewindAcrossCrash is the tentpole regression test: a
// multi-partition ROT reads p0, p1 is kill -9'd and restarted, and the ROT
// reads p1 — the version a concurrent dependent write marked invisible to
// it BEFORE the crash must stay invisible, i.e. the ROT still rewinds.
// Before old-reader records were persisted (wal.RecReaders), the restart
// dropped the mark and this test read y2 next to x1: the Figure 1 anomaly,
// resurrected by recovery.
func TestStraddlingROTRewindAcrossCrash(t *testing.T) {
	rig := newCrashRig(t, true)
	w := rig.client(1)
	rig.put(w, rig.kx, "x1")
	rig.put(w, rig.ky, "y1")

	node, rotID := rig.readerNode(77)
	// Leg 1: read x1 at p0; p0 records this ROT as a reader of kx.
	leg1 := rig.rawRot(node, 0, rotID, rig.kx)
	if got := string(leg1.Vals[0].Value); got != "x1" {
		t.Fatalf("leg1 read %q, want x1", got)
	}

	// A dependent write supersedes both keys: y2 depends on x2, so the
	// readers check at p0 finds our ROT (old reader of x) and marks y2
	// invisible to it at p1 — and persists the mark with the install.
	rig.put(w, rig.kx, "x2")
	rig.put(w, rig.ky, "y2")

	rig.crashRestart(1)

	// Leg 2 after the restart: recovery must have rebuilt y2's mark.
	leg2 := rig.rawRot(node, 1, rotID, rig.ky)
	if got := string(leg2.Vals[0].Value); got != "y1" {
		t.Fatalf("straddling ROT read %s=%q after p1's restart, want the rewind to y1: "+
			"the crash stripped the persisted invisibility mark", rig.ky, got)
	}
}

// TestEpochFenceSignalOnRestartedFirstLeg covers the half of the crash gap
// persisted marks cannot: the CRASHED partition held the ROT's reader
// record (leg 1 landed there before the kill), so the dependent write's
// readers check finds nothing and the new version is installed with no
// mark at an intact partition. No rewind is possible — but the readers
// check that skipped the lost record also carried p0's new epoch to p1, so
// the sibling leg's response must expose the restart and let the client
// fence the ROT.
func TestEpochFenceSignalOnRestartedFirstLeg(t *testing.T) {
	rig := newCrashRig(t, true)
	w := rig.client(1)
	rig.put(w, rig.kx, "x1")
	rig.put(w, rig.ky, "y1")

	node, rotID := rig.readerNode(78)
	leg1 := rig.rawRot(node, 0, rotID, rig.kx)
	if got := string(leg1.Vals[0].Value); got != "x1" {
		t.Fatalf("leg1 read %q, want x1", got)
	}
	e0 := leg1.Epochs[0]
	if e0 == 0 {
		t.Fatal("durable partition reported epoch 0; the restart fence has no base")
	}

	// p0 restarts: our reader record on kx dies with it.
	rig.crashRestart(0)

	// The dependent write now misses us: y2 installs at p1 unmarked. Its
	// readers check to (post-restart) p0 is the causal channel that hands
	// p1 the new epoch before y2 becomes visible.
	w2 := rig.client(2)
	rig.put(w2, rig.kx, "x2")
	rig.put(w2, rig.ky, "y2")

	leg2 := rig.rawRot(node, 1, rotID, rig.ky)
	if got := string(leg2.Vals[0].Value); got != "y2" {
		t.Fatalf("leg2 read %q; expected the unprotected y2 — the scenario did not reproduce", got)
	}
	if leg2.Epochs[0] <= e0 {
		t.Fatalf("p1's leg reports epoch %d for p0, leg1 saw %d: the restart never propagated, "+
			"the client fence cannot catch this straddle", leg2.Epochs[0], e0)
	}
}

// TestClientFenceRetriesTransparently drives the real client through the
// lost-reader-record straddle: leg p0 is served, p0 is kill -9'd and
// restarted (dropping the record), a dependent write supersedes both keys,
// and only then is the held p1 leg released. The client must detect the
// epoch skew, retry the whole ROT once, and return a causally consistent
// snapshot. Without the fence the ROT returns x1 next to y2.
func TestClientFenceRetriesTransparently(t *testing.T) {
	rig := newCrashRig(t, true)
	w := rig.client(1)
	rig.put(w, rig.kx, "x1")
	rig.put(w, rig.ky, "y1")

	reader := rig.client(9)
	release := make(chan struct{})
	var held atomic.Bool
	reader.legGate = func(part int) {
		// Hold only the FIRST p1 leg; the fence's retry must sail through.
		if part == 1 && held.CompareAndSwap(false, true) {
			<-release
		}
	}

	type rotResult struct {
		kvs []wire.KV
		err error
	}
	done := make(chan rotResult, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		kvs, err := reader.ROT(ctx, []string{rig.kx, rig.ky})
		done <- rotResult{kvs, err}
	}()

	// Wait for leg p0 to be served: its reader record appears in p0's store.
	waitFor(t, func() bool {
		readers, _ := rig.srvs[0].store.readerSizes(rig.kx)
		return readers > 0
	})

	rig.crashRestart(0)
	w2 := rig.client(2)
	rig.put(w2, rig.kx, "x2")
	rig.put(w2, rig.ky, "y2") // readers check to p0 gossips the new epoch to p1
	close(release)

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	var xv, yv string
	for _, kv := range res.kvs {
		switch kv.Key {
		case rig.kx:
			xv = string(kv.Value)
		case rig.ky:
			yv = string(kv.Value)
		}
	}
	if yv == "y2" && xv != "x2" {
		t.Fatalf("ROT returned %s=%q with %s=%q: y2 depends on x2 — the epoch fence did not fire", rig.ky, yv, rig.kx, xv)
	}
	if got := reader.FenceRetries(); got != 1 {
		t.Fatalf("FenceRetries = %d, want exactly 1 (one straddle, one transparent retry)", got)
	}
}

// TestFirstVersionStartupRace is the un-crashed half of the startup race
// that made internal/check seed its keyspace: a ROT that probes a missing
// key is recorded as a (vts 0) reader, so a first version installed next —
// and anything depending on it — still rewinds for that ROT. This is the
// direct regression guard for deleting the checker's seeding workaround.
func TestFirstVersionStartupRace(t *testing.T) {
	rig := newCrashRig(t, false)
	node, rotID := rig.readerNode(79)

	// Leg 1 probes ky before any version exists.
	leg1 := rig.rawRot(node, 1, rotID, rig.ky)
	if leg1.Vals[0].Value != nil {
		t.Fatalf("probe returned %q, want missing", leg1.Vals[0].Value)
	}

	// First version of ky, then a write depending on it at p0: the readers
	// check must surface the probing ROT and hide x1 from it.
	w := rig.client(1)
	rig.put(w, rig.ky, "y1")
	rig.put(w, rig.kx, "x1") // deps: {ky@y1}

	leg2 := rig.rawRot(node, 0, rotID, rig.kx)
	if leg2.Vals[0].Value != nil {
		t.Fatalf("ROT that missed %s read %s=%q: first-version dependents must stay invisible (the Figure 1 anomaly with a missing key)",
			rig.ky, rig.kx, leg2.Vals[0].Value)
	}
}

// TestFirstVersionStartupRaceAcrossCrash is the crashed half: the
// negative-read record is soft state, so a kill -9 of the probed partition
// drops it and x1 installs unhidden — but the dependent write's readers
// check gossips the probed partition's new epoch, so the sibling leg
// exposes the straddle to the fence exactly as in the non-empty-key case.
func TestFirstVersionStartupRaceAcrossCrash(t *testing.T) {
	rig := newCrashRig(t, true)
	node, rotID := rig.readerNode(80)

	leg1 := rig.rawRot(node, 1, rotID, rig.ky)
	if leg1.Vals[0].Value != nil {
		t.Fatalf("probe returned %q, want missing", leg1.Vals[0].Value)
	}
	e1 := leg1.Epochs[1]

	rig.crashRestart(1) // the probe record dies here

	w := rig.client(1)
	rig.put(w, rig.ky, "y1")
	rig.put(w, rig.kx, "x1") // readers check to p1 carries p1's new epoch to p0

	leg2 := rig.rawRot(node, 0, rotID, rig.kx)
	if leg2.Vals[0].Value == nil {
		t.Fatal("x1 hidden despite the lost probe record; scenario did not reproduce")
	}
	if leg2.Epochs[1] <= e1 {
		t.Fatalf("p0's leg reports epoch %d for p1, probe saw %d: restart invisible to the fence", leg2.Epochs[1], e1)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
