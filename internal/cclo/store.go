// Package cclo implements CC-LO, the latency-optimal causal-consistency
// design of COPS-SNOW as characterized in Sections 3 and 5.2 of the paper.
//
// ROTs are one round, one version and nonblocking. The price is paid on
// writes: every PUT performs the "readers check", interrogating the
// partition of each causal dependency for the ROTs that read a version of
// that dependency now superseded ("old readers"), and marks the written
// version invisible to each of them before it becomes readable. A read by
// such a ROT is served the newest version NOT marked invisible to it,
// preserving causally consistent snapshots without coordination on the
// read path.
//
// Invisibility is tracked per VERSION, not as a per-key time cutoff: a
// time cutoff either fails to hide a dependent version whose origin
// timestamp trails the reader's local clock (per-partition Lamport clocks
// drift apart under geo-replication — the Figure 1 anomaly reappears), or,
// if clamped, also hides CONCURRENT versions the session may already have
// observed, breaking read-your-writes and monotonic reads. Marking exactly
// the dependent versions hides exactly what causality requires.
//
// The implementation includes the two optimizations the paper applied to
// its CC-LO code base (§5.2): reader entries are garbage-collected 500 ms
// after insertion, and a readers-check response carries at most one ROT id
// per client (the most recent, valid because clients issue one ROT at a
// time).
package cclo

import (
	"sync/atomic"
	"time"

	storeeng "repro/internal/store"
	"repro/internal/wire"
)

// loExtra is the per-version payload CC-LO attaches to the shared engine's
// versions: the dependency list (locally originated versions only — it is
// what the WAL snapshot serializer emits so a crash-recovered re-enqueue
// still carries the deps the receiving DC's dependency check needs) and the
// set of ROTs the version is invisible to.
//
// Mutation rules (see internal/store): the invisible MAP INTERIOR may be
// mutated under the shard lock — lock-free readers (latest, hasVersion,
// forEachLatest) never look inside it — but the invisible FIELD of a
// published version must never be reassigned; when it is nil and marks must
// land, the chain is republished via SetExtra.
type loExtra struct {
	deps      []wire.LoDep
	invisible map[uint64]orEntry
}

// loVersion is one version of a key under CC-LO as the adapter's callers see
// it: Lamport timestamp plus source DC for last-writer-wins convergence.
type loVersion struct {
	value []byte
	ts    uint64
	srcDC uint8
	deps  []wire.LoDep
}

// orEntry is one old reader of a key: the ROT id, the logical time of its
// read, the timestamp of the version it was served (what "old" is judged
// against), and when the entry was created (for GC).
type orEntry struct {
	rotID   uint64
	t       uint64
	vts     uint64
	addedAt time.Time
}

// loAux is the per-key reader state, read and written only under the shard
// lock (it is the aux slot of the shared engine's key entry).
type loAux struct {
	// readers holds the ROTs that have read the *current* latest version,
	// with the logical time of the read. They become old readers when a
	// newer version is installed.
	readers map[uint64]orEntry

	// oldReaders holds ROTs known to have read superseded versions; it is
	// what a readers check on this key returns (filtered by the version
	// each actually read).
	oldReaders map[uint64]orEntry

	// readersSweepAt/oldReadersSweepAt throttle the size-triggered sweeps:
	// a map pinned at the bound by IN-window entries would otherwise be
	// fully rescanned on every operation, reclaiming nothing.
	readersSweepAt    time.Time
	oldReadersSweepAt time.Time
}

// Shorthand for the engine instantiation backing CC-LO.
type (
	loEngine = storeeng.Engine[loExtra, loAux]
	loChain  = storeeng.Chain[loExtra]
	loEngVer = storeeng.Version[loExtra]
	loKeyRef = storeeng.Key[loExtra, loAux]
)

// softReaderBound is the map size at which the reader-tracking maps
// (readers and oldReaders) are swept in place before inserting more. It
// caps idle growth without a background goroutine: any map at the bound is
// reduced to the entries still inside the GC window.
const softReaderBound = 128

// sweepReaders runs the size-triggered sweep of m when it is due: at or
// above the bound, and not swept within the last quarter GC window. The
// throttle keeps a genuinely hot map (≥ bound of in-window entries) from
// paying a full fruitless rescan on every single read under the shard
// lock. It returns the next due time for the caller to store.
func (s *loStore) sweepReaders(m map[uint64]orEntry, at time.Time, now time.Time) time.Time {
	if len(m) < softReaderBound || now.Before(at) {
		return at
	}
	gcSweep(m, s.gcWindow, now)
	return now.Add(s.gcWindow / 4)
}

// loStore is the CC-LO partition storage: a thin adapter over the shared
// engine (internal/store). read/collectOldReaders/install/addMarks mutate
// reader state and run under the per-shard write lock; latest, hasVersion
// and forEachLatest are lock-free.
type loStore struct {
	eng      *loEngine
	gcWindow time.Duration

	approxReads atomic.Uint64
}

func newLoStore(maxVersions, shards int, gcWindow time.Duration) *loStore {
	if gcWindow <= 0 {
		gcWindow = 500 * time.Millisecond
	}
	return &loStore{
		eng:      storeeng.New[loExtra, loAux](maxVersions, shards),
		gcWindow: gcWindow,
	}
}

// expired reports whether e is past the GC window.
func (s *loStore) expired(e orEntry, now time.Time) bool {
	return now.Sub(e.addedAt) > s.gcWindow
}

// read serves a ROT read of key: the newest version not marked invisible
// to rotID. It records rotID as a reader of the version it was served at
// logical time t. ok is false if the key does not exist.
func (s *loStore) read(key string, rotID uint64, t uint64, now time.Time) (val []byte, ts uint64, src uint8, ok bool) {
	s.eng.Update(key, true, func(k *loKeyRef) {
		aux := k.Aux()
		c := k.Chain()
		if c.Len() == 0 {
			// Record the negative read. "No version" is an observation too:
			// when the key's first version arrives, this ROT must surface as
			// its old reader (vts 0), or a write depending on that version
			// could become readable next to this ROT's "not found" — the
			// Figure 1 anomaly with a missing key in the role of the stale
			// permissions.
			if aux.readers == nil {
				aux.readers = make(map[uint64]orEntry)
			}
			// Keys that are only ever probed have no install or readers check
			// to GC their entries, so sweep here once the map grows; what
			// remains is bounded by the probe rate times the GC window.
			aux.readersSweepAt = s.sweepReaders(aux.readers, aux.readersSweepAt, now)
			aux.readers[rotID] = orEntry{rotID: rotID, t: t, vts: 0, addedAt: now}
			return
		}
		vs := c.Versions
		for i := len(vs) - 1; i >= 0; i-- {
			v := &vs[i]
			if e, hidden := v.Extra.invisible[rotID]; hidden {
				if !s.expired(e, now) {
					continue
				}
				delete(v.Extra.invisible, rotID)
			}
			if i == len(vs)-1 {
				// Served the latest: record the read so a future write that
				// supersedes it can find this ROT among its old readers. A hot
				// key under a read-heavy, install-free workload accumulates one
				// entry per ROT with no install or readers check to GC them, so
				// sweep in-place once the map grows; what survives is bounded by
				// the read rate times the GC window.
				if aux.readers == nil {
					aux.readers = make(map[uint64]orEntry)
				}
				aux.readersSweepAt = s.sweepReaders(aux.readers, aux.readersSweepAt, now)
				aux.readers[rotID] = orEntry{rotID: rotID, t: t, vts: v.TS, addedAt: now}
			}
			val, ts, src, ok = v.Value, v.TS, v.Src, true
			return
		}
		// Every retained version is invisible to this ROT. On a chain that has
		// actually been trimmed, versions older than the marks were dropped,
		// so fall back to the oldest retained one (an approximation, counted).
		// On an untrimmed chain — even one that merely grew to capacity —
		// nothing was ever dropped: the ROT genuinely predates the key's FIRST
		// version (it probed the key while missing and a dependent write
		// collected it), so the only consistent answer is "not found". Serving
		// versions[0] here was the first-version startup race the checker's
		// keyspace seeding used to paper over.
		if c.Trimmed {
			s.approxReads.Add(1)
			val, ts, src, ok = vs[0].Value, vs[0].TS, vs[0].Src, true
		}
	})
	return val, ts, src, ok
}

// collectOldReaders returns the old readers of key relevant to a dependency
// on version depTS — every ROT whose served version of this key trails
// depTS, i.e. every ROT that would be inconsistent if it now saw a version
// depending on key@depTS. Three sources, all filtered precisely (an
// over-collected ROT would be hidden from versions it may legitimately
// have observed, breaking its session guarantees):
//
//   - oldReaders: ROTs that read a since-superseded latest; collected when
//     the version they read (vts) trails depTS.
//   - readers: ROTs on the current latest; collected only when the latest
//     itself trails depTS (the dependency has not replicated here yet).
//   - invisibility marks: a ROT hidden from every retained version at or
//     above depTS was served something older — the transitive propagation
//     that keeps a rewound ROT visible to later dependent writes.
//
// Expired entries are dropped. The result maps ROT id → entry.
func (s *loStore) collectOldReaders(key string, depTS uint64, now time.Time, out map[uint64]orEntry) (scanned int) {
	s.eng.Update(key, false, func(k *loKeyRef) {
		aux := k.Aux()
		gcSweep(aux.oldReaders, s.gcWindow, now)
		for id, e := range aux.oldReaders {
			scanned++
			if e.vts < depTS {
				merge(out, id, e)
			}
		}
		c := k.Chain()
		latestTS := uint64(0)
		if l := c.Latest(); l != nil {
			latestTS = l.TS
		}
		if latestTS < depTS {
			gcSweep(aux.readers, s.gcWindow, now)
			for id, e := range aux.readers {
				scanned++
				merge(out, id, e)
			}
		} else {
			// Not collected, but a probe-heavy dependency key with a current
			// latest never takes the branch above; keep its reader map bounded
			// here too.
			aux.readersSweepAt = s.sweepReaders(aux.readers, aux.readersSweepAt, now)
		}
		// Invisibility-derived old readers: every ROT marked on ANY version of
		// this key missed something in that version's causal past, so it is
		// conservatively treated as an old reader of the dependency too. The
		// conservatism is what keeps transitive propagation unbroken — a
		// concurrent newer version can mask a ROT's miss timestamp-wise
		// without covering the missed version's causal past on OTHER keys —
		// and it is session-safe: marks only ever exist on versions installed
		// during the marked ROT's own lifetime, so the extra hiding can never
		// take back state its session observed before. Chains are bounded by
		// maxVersions and marks are GC-swept, so this walk is small — and it
		// is write-path cost, which is exactly where CC-LO pays (§3).
		if c != nil {
			for i := range c.Versions {
				inv := c.Versions[i].Extra.invisible
				for id, e := range inv {
					if s.expired(e, now) {
						delete(inv, id)
						continue
					}
					scanned++
					merge(out, id, e)
				}
			}
		}
	})
	return scanned
}

// merge keeps the safest (earliest-time) entry per ROT id.
func merge(out map[uint64]orEntry, id uint64, e orEntry) {
	if prev, ok := out[id]; !ok || e.t < prev.t {
		out[id] = e
	}
}

func gcSweep(m map[uint64]orEntry, window time.Duration, now time.Time) {
	for id, e := range m {
		if now.Sub(e.addedAt) > window {
			delete(m, id)
		}
	}
}

// install inserts a version of key, moves the key's current readers to its
// old readers, and marks the version invisible to the collected old
// readers of the PUT's dependencies. It returns true if the version is now
// the latest.
func (s *loStore) install(key string, v loVersion, collected map[uint64]orEntry, now time.Time) bool {
	newest := false
	s.eng.Update(key, true, func(k *loKeyRef) {
		ev := loEngVer{Value: v.value, TS: v.ts, Src: v.srcDC, Extra: loExtra{deps: v.deps}}
		if len(collected) > 0 {
			inv := make(map[uint64]orEntry, len(collected))
			for id, e := range collected {
				e.addedAt = now
				inv[id] = e
			}
			ev.Extra.invisible = inv
		}
		idx, isNewest, dup := k.Install(ev)
		if dup {
			if len(collected) > 0 {
				// A re-delivered update (lost ack, or a retry against a
				// recovered replica) arrives with freshly collected old
				// readers; the marks must land on the existing version or the
				// retry's readers check was for nothing and a rewound ROT
				// could see the version anyway.
				ex := &k.Chain().Versions[idx]
				if ex.Extra.invisible == nil {
					// The published version has no mark map to grow in place;
					// republish the chain with one (never assign the field).
					k.SetExtra(idx, loExtra{deps: ex.Extra.deps, invisible: ev.Extra.invisible})
				} else {
					for id, e := range collected {
						e.addedAt = now
						merge(ex.Extra.invisible, id, e)
					}
				}
			}
			return
		}
		newest = isNewest
		aux := k.Aux()
		if newest && len(aux.readers) > 0 {
			// The previous latest version is now superseded: its readers are
			// old readers from here on. An install-heavy key with no readers
			// checks (nothing ever depends on it) would grow oldReaders without
			// bound, so apply the same size-triggered sweep the reader map gets.
			if aux.oldReaders == nil {
				aux.oldReaders = make(map[uint64]orEntry, len(aux.readers))
			} else {
				aux.oldReadersSweepAt = s.sweepReaders(aux.oldReaders, aux.oldReadersSweepAt, now)
			}
			for id, e := range aux.readers {
				e.addedAt = now
				merge(aux.oldReaders, id, e)
			}
			clear(aux.readers)
		}
	})
	return newest
}

// addMarks rebuilds invisibility marks on the version of key identified by
// (ts, src) — WAL recovery replaying persisted old-reader records. Marks
// land with addedAt = now: the original insertion time did not survive the
// crash, so the GC window restarts, which only errs toward hiding longer —
// safe, because marks exist only on versions installed during the marked
// ROT's lifetime, so extra hiding can never take back state its session
// already observed. Records whose version is gone (trimmed, superseded out
// of the snapshot, or torn from the log tail) are dropped.
func (s *loStore) addMarks(key string, ts uint64, src uint8, entries []wire.ReaderEntry, now time.Time) {
	if len(entries) == 0 {
		return
	}
	s.eng.Update(key, false, func(k *loKeyRef) {
		c := k.Chain()
		idx := c.Find(ts, src)
		if idx < 0 {
			return
		}
		v := &c.Versions[idx]
		if v.Extra.invisible == nil {
			inv := make(map[uint64]orEntry, len(entries))
			for _, e := range entries {
				merge(inv, e.RotID, orEntry{rotID: e.RotID, t: e.T, addedAt: now})
			}
			k.SetExtra(idx, loExtra{deps: v.Extra.deps, invisible: inv})
			return
		}
		for _, e := range entries {
			merge(v.Extra.invisible, e.RotID, orEntry{rotID: e.RotID, t: e.T, addedAt: now})
		}
	})
}

// versionMarks is one retained version's identity and its non-expired
// invisibility marks, as collected for WAL snapshot emission.
type versionMarks struct {
	ts      uint64
	src     uint8
	entries []wire.ReaderEntry
}

// markedVersions returns, for every retained version of key carrying at
// least one non-expired invisibility mark, the version identity and its
// marks (oldest first; nil when none). It takes the shard lock briefly —
// mark maps are interior-mutable state — so the WAL snapshot serializer can
// collect marks per key and emit them with no lock held.
func (s *loStore) markedVersions(key string, now time.Time) []versionMarks {
	var out []versionMarks
	s.eng.Update(key, false, func(k *loKeyRef) {
		c := k.Chain()
		if c == nil {
			return
		}
		for i := range c.Versions {
			v := &c.Versions[i]
			var rs []wire.ReaderEntry
			for id, e := range v.Extra.invisible {
				if s.expired(e, now) {
					continue
				}
				rs = append(rs, wire.ReaderEntry{RotID: id, T: e.t})
			}
			if len(rs) > 0 {
				out = append(out, versionMarks{ts: v.TS, src: v.Src, entries: rs})
			}
		}
	})
	return out
}

// latest returns the newest version of key. Lock-free.
func (s *loStore) latest(key string) (loVersion, bool) {
	v := s.eng.Latest(key)
	if v == nil {
		return loVersion{}, false
	}
	return loVersion{value: v.Value, ts: v.TS, srcDC: v.Src, deps: v.Extra.deps}, true
}

// hasVersion reports whether the version of key identified by (ts, src)
// has been installed here (dependency-check predicate). The check is
// EXACT, not "any newer version": a newer CONCURRENT version can satisfy a
// ≥ check while being invisible to some rewound ROT, which would let a
// dependent update become readable before the one version that ROT could
// consistently be served has arrived — and a same-timestamp version from a
// DIFFERENT DC is a different version entirely (Lamport timestamps collide
// across DCs). A chain whose oldest retained version is already LWW-above
// (ts, src) proves the version was installed and trimmed. Lock-free.
func (s *loStore) hasVersion(key string, ts uint64, src uint8) bool {
	c := s.eng.View(key)
	if c.Len() == 0 {
		return false
	}
	want := loEngVer{TS: ts, Src: src}
	if c.Trimmed && want.Before(&c.Versions[0]) {
		// Only a chain that actually trimmed can have dropped the asked
		// version; on an untrimmed chain (even one exactly at capacity)
		// "LWW-below the oldest" just means never installed.
		return true
	}
	return c.Find(ts, src) >= 0
}

// forEachChain visits every key's retained chain (lock-free; chains are
// immutable snapshots, so fn may block without stalling writers).
func (s *loStore) forEachChain(fn func(key string, c *loChain)) {
	s.eng.ForEach(func(key string, c *loChain) bool {
		fn(key, c)
		return true
	})
}

// forEachLatest visits every key's newest version (tests, convergence).
// Lock-free.
func (s *loStore) forEachLatest(fn func(key string, v loVersion)) {
	s.forEachChain(func(key string, c *loChain) {
		l := c.Latest()
		fn(key, loVersion{value: l.Value, ts: l.TS, srcDC: l.Src, deps: l.Extra.deps})
	})
}

// readerSizes reports the sizes of key's reader-tracking maps (tests).
func (s *loStore) readerSizes(key string) (readers, oldReaders int) {
	s.eng.Update(key, false, func(k *loKeyRef) {
		readers, oldReaders = len(k.Aux().readers), len(k.Aux().oldReaders)
	})
	return readers, oldReaders
}
