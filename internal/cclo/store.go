// Package cclo implements CC-LO, the latency-optimal causal-consistency
// design of COPS-SNOW as characterized in Sections 3 and 5.2 of the paper.
//
// ROTs are one round, one version and nonblocking. The price is paid on
// writes: every PUT performs the "readers check", interrogating the
// partition of each causal dependency for the ROTs that read a version of
// that dependency now superseded ("old readers"), and records them — with
// the logical time of their reads — in the written key's old-reader record
// before the new version becomes visible. A read by a recorded old reader
// is served the newest version older than its recorded time, preserving
// causally consistent snapshots without coordination on the read path.
//
// The implementation includes the two optimizations the paper applied to
// its CC-LO code base (§5.2): reader entries are garbage-collected 500 ms
// after insertion, and a readers-check response carries at most one ROT id
// per client (the most recent, valid because clients issue one ROT at a
// time).
package cclo

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"
)

// loVersion is one version of a key under CC-LO: Lamport timestamp plus
// source DC for last-writer-wins convergence.
type loVersion struct {
	value []byte
	ts    uint64
	srcDC uint8
}

func (v *loVersion) before(o *loVersion) bool {
	if v.ts != o.ts {
		return v.ts < o.ts
	}
	return v.srcDC < o.srcDC
}

// orEntry is one old reader of a key: the ROT id, the logical time of its
// read, and when the entry was created (for GC).
type orEntry struct {
	rotID   uint64
	t       uint64
	addedAt time.Time
}

// loKey is the per-key state.
type loKey struct {
	versions []loVersion // ascending (ts, srcDC)

	// readers holds the ROTs that have read the *current* latest version,
	// with the logical time of the read. They become old readers when a
	// newer version is installed.
	readers map[uint64]orEntry

	// oldReaders holds ROTs known to have read superseded versions; it is
	// what a readers check on this key returns.
	oldReaders map[uint64]orEntry

	// orRecord is the old-reader record consulted when serving reads of
	// this key: ROT id → the logical time before which the ROT must read.
	orRecord map[uint64]orEntry
}

const loShards = 64

// loStore is the CC-LO partition storage engine.
type loStore struct {
	shards      [loShards]loShard
	maxVersions int
	gcWindow    time.Duration
	seed        maphash.Seed

	approxReads atomic.Uint64
}

type loShard struct {
	mu sync.Mutex
	m  map[string]*loKey
}

func newLoStore(maxVersions int, gcWindow time.Duration) *loStore {
	if maxVersions <= 0 {
		maxVersions = 64
	}
	if gcWindow <= 0 {
		gcWindow = 500 * time.Millisecond
	}
	s := &loStore{maxVersions: maxVersions, gcWindow: gcWindow, seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*loKey)
	}
	return s
}

func (s *loStore) shard(key string) *loShard {
	return &s.shards[maphash.String(s.seed, key)%loShards]
}

func (s *loStore) get(key string, create bool) (*loShard, *loKey) {
	sh := s.shard(key)
	lk := sh.m[key]
	if lk == nil && create {
		lk = &loKey{}
		sh.m[key] = lk
	}
	return sh, lk
}

// expired reports whether e is past the GC window.
func (s *loStore) expired(e orEntry, now time.Time) bool {
	return now.Sub(e.addedAt) > s.gcWindow
}

// read serves a ROT read of key: the latest version, unless rotID is in the
// key's old-reader record, in which case the newest version older than the
// recorded time. It records rotID as a reader of the version it was served
// at logical time t. ok is false if the key does not exist.
func (s *loStore) read(key string, rotID uint64, t uint64, now time.Time) (val []byte, ts uint64, ok bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lk := sh.m[key]
	if lk == nil || len(lk.versions) == 0 {
		return nil, 0, false
	}
	if rec, isOld := lk.orRecord[rotID]; isOld {
		if s.expired(rec, now) {
			delete(lk.orRecord, rotID)
		} else {
			// Serve the newest version with ts < rec.t.
			for i := len(lk.versions) - 1; i >= 0; i-- {
				if lk.versions[i].ts < rec.t {
					return lk.versions[i].value, lk.versions[i].ts, true
				}
			}
			// All retained versions are too new (trimmed chain); fall back
			// to the oldest retained one.
			s.approxReads.Add(1)
			return lk.versions[0].value, lk.versions[0].ts, true
		}
	}
	v := &lk.versions[len(lk.versions)-1]
	if lk.readers == nil {
		lk.readers = make(map[uint64]orEntry)
	}
	lk.readers[rotID] = orEntry{rotID: rotID, t: t, addedAt: now}
	return v.value, v.ts, true
}

// collectOldReaders returns the old readers of key relevant to a dependency
// on version depTS: every recorded old reader, plus — when the latest
// retained version is itself older than depTS (it has not arrived here
// yet) — the current readers, since they too read a version older than
// depTS. Expired entries are dropped. The result maps ROT id → entry.
func (s *loStore) collectOldReaders(key string, depTS uint64, now time.Time, out map[uint64]orEntry) (scanned int) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lk := sh.m[key]
	if lk == nil {
		return 0
	}
	gcSweep(lk.oldReaders, s.gcWindow, now)
	for id, e := range lk.oldReaders {
		scanned++
		merge(out, id, e)
	}
	// Entries in this key's own old-reader record are old readers too: an
	// entry (R, t) constrains R to read a version older than t, so R will
	// miss the dependency's version as well. Without this, a ROT that was
	// served an old version would be invisible to later dependent writes.
	gcSweep(lk.orRecord, s.gcWindow, now)
	for id, e := range lk.orRecord {
		scanned++
		merge(out, id, e)
	}
	latestTS := uint64(0)
	if len(lk.versions) > 0 {
		latestTS = lk.versions[len(lk.versions)-1].ts
	}
	if latestTS < depTS {
		gcSweep(lk.readers, s.gcWindow, now)
		for id, e := range lk.readers {
			scanned++
			merge(out, id, e)
		}
	}
	return scanned
}

// merge keeps the safest (earliest-time) entry per ROT id.
func merge(out map[uint64]orEntry, id uint64, e orEntry) {
	if prev, ok := out[id]; !ok || e.t < prev.t {
		out[id] = e
	}
}

func gcSweep(m map[uint64]orEntry, window time.Duration, now time.Time) {
	for id, e := range m {
		if now.Sub(e.addedAt) > window {
			delete(m, id)
		}
	}
}

// install inserts a version of key, moves the key's current readers to its
// old readers, and merges the collected old readers of the PUT's
// dependencies into the key's old-reader record. It returns true if the
// version is now the latest.
func (s *loStore) install(key string, v loVersion, collected map[uint64]orEntry, now time.Time) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lk := sh.m[key]
	if lk == nil {
		lk = &loKey{}
		sh.m[key] = lk
	}
	i := len(lk.versions)
	for i > 0 && v.before(&lk.versions[i-1]) {
		i--
	}
	dup := i > 0 && lk.versions[i-1].ts == v.ts && lk.versions[i-1].srcDC == v.srcDC
	newest := false
	if !dup {
		lk.versions = append(lk.versions, loVersion{})
		copy(lk.versions[i+1:], lk.versions[i:])
		lk.versions[i] = v
		// Decide "newest" before trimming: trimming shortens the slice and
		// would misclassify every install on a full chain, silently
		// skipping the readers → old-readers move for hot keys.
		newest = i == len(lk.versions)-1
		if len(lk.versions) > s.maxVersions {
			drop := len(lk.versions) - s.maxVersions
			lk.versions = append(lk.versions[:0:0], lk.versions[drop:]...)
		}
	}
	if newest && len(lk.readers) > 0 {
		// The previous latest version is now superseded: its readers are
		// old readers from here on.
		if lk.oldReaders == nil {
			lk.oldReaders = make(map[uint64]orEntry, len(lk.readers))
		}
		for id, e := range lk.readers {
			e.addedAt = now
			merge(lk.oldReaders, id, e)
		}
		clear(lk.readers)
	}
	if len(collected) > 0 {
		if lk.orRecord == nil {
			lk.orRecord = make(map[uint64]orEntry, len(collected))
		}
		for id, e := range collected {
			e.addedAt = now
			merge(lk.orRecord, id, e)
		}
	}
	return newest
}

// latest returns the newest version of key.
func (s *loStore) latest(key string) (loVersion, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lk := sh.m[key]
	if lk == nil || len(lk.versions) == 0 {
		return loVersion{}, false
	}
	return lk.versions[len(lk.versions)-1], true
}

// hasVersion reports whether key has a version with timestamp ≥ ts
// (dependency-check predicate).
func (s *loStore) hasVersion(key string, ts uint64) bool {
	v, ok := s.latest(key)
	return ok && v.ts >= ts
}

// forEachLatest visits every key's newest version (tests, convergence).
func (s *loStore) forEachLatest(fn func(key string, v loVersion)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, lk := range sh.m {
			if len(lk.versions) > 0 {
				fn(k, lk.versions[len(lk.versions)-1])
			}
		}
		sh.mu.Unlock()
	}
}
