// Package cclo implements CC-LO, the latency-optimal causal-consistency
// design of COPS-SNOW as characterized in Sections 3 and 5.2 of the paper.
//
// ROTs are one round, one version and nonblocking. The price is paid on
// writes: every PUT performs the "readers check", interrogating the
// partition of each causal dependency for the ROTs that read a version of
// that dependency now superseded ("old readers"), and marks the written
// version invisible to each of them before it becomes readable. A read by
// such a ROT is served the newest version NOT marked invisible to it,
// preserving causally consistent snapshots without coordination on the
// read path.
//
// Invisibility is tracked per VERSION, not as a per-key time cutoff: a
// time cutoff either fails to hide a dependent version whose origin
// timestamp trails the reader's local clock (per-partition Lamport clocks
// drift apart under geo-replication — the Figure 1 anomaly reappears), or,
// if clamped, also hides CONCURRENT versions the session may already have
// observed, breaking read-your-writes and monotonic reads. Marking exactly
// the dependent versions hides exactly what causality requires.
//
// The implementation includes the two optimizations the paper applied to
// its CC-LO code base (§5.2): reader entries are garbage-collected 500 ms
// after insertion, and a readers-check response carries at most one ROT id
// per client (the most recent, valid because clients issue one ROT at a
// time).
package cclo

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// loVersion is one version of a key under CC-LO: Lamport timestamp plus
// source DC for last-writer-wins convergence, plus the set of ROTs this
// version is invisible to (they read one of its causal dependencies too
// early; nil when no readers check collected anyone).
//
// deps is kept ONLY for locally originated versions: it is what the WAL
// snapshot serializer emits so a crash-recovered re-enqueue still carries
// the dependency list the receiving DC's dependency check needs — without
// it, a local update whose log record was folded into a snapshot would
// replicate with no deps and skip dependency checks entirely. Replicated
// versions carry nil (only local writes are ever re-shipped).
type loVersion struct {
	value     []byte
	ts        uint64
	srcDC     uint8
	deps      []wire.LoDep
	invisible map[uint64]orEntry
}

func (v *loVersion) before(o *loVersion) bool {
	if v.ts != o.ts {
		return v.ts < o.ts
	}
	return v.srcDC < o.srcDC
}

// orEntry is one old reader of a key: the ROT id, the logical time of its
// read, the timestamp of the version it was served (what "old" is judged
// against), and when the entry was created (for GC).
type orEntry struct {
	rotID   uint64
	t       uint64
	vts     uint64
	addedAt time.Time
}

// loKey is the per-key state.
type loKey struct {
	versions []loVersion // ascending (ts, srcDC)

	// trimmed records that install() has ever dropped versions off this
	// chain's old end. It disambiguates "every retained version is
	// invisible" (see read) and "LWW-below the oldest retained" (see
	// hasVersion): a chain that merely GREW to capacity without trimming
	// must not take the trimmed-chain fallbacks — at-capacity and trimmed
	// are indistinguishable by length alone.
	trimmed bool

	// readers holds the ROTs that have read the *current* latest version,
	// with the logical time of the read. They become old readers when a
	// newer version is installed.
	readers map[uint64]orEntry

	// oldReaders holds ROTs known to have read superseded versions; it is
	// what a readers check on this key returns (filtered by the version
	// each actually read).
	oldReaders map[uint64]orEntry

	// readersSweepAt/oldReadersSweepAt throttle the size-triggered sweeps:
	// a map pinned at the bound by IN-window entries would otherwise be
	// fully rescanned on every operation, reclaiming nothing.
	readersSweepAt    time.Time
	oldReadersSweepAt time.Time
}

const loShards = 64

// softReaderBound is the map size at which the reader-tracking maps
// (readers and oldReaders) are swept in place before inserting more. It
// caps idle growth without a background goroutine: any map at the bound is
// reduced to the entries still inside the GC window.
const softReaderBound = 128

// sweepReaders runs the size-triggered sweep of m when it is due: at or
// above the bound, and not swept within the last quarter GC window. The
// throttle keeps a genuinely hot map (≥ bound of in-window entries) from
// paying a full fruitless rescan on every single read under the shard
// lock. It returns the next due time for the caller to store.
func (s *loStore) sweepReaders(m map[uint64]orEntry, at time.Time, now time.Time) time.Time {
	if len(m) < softReaderBound || now.Before(at) {
		return at
	}
	gcSweep(m, s.gcWindow, now)
	return now.Add(s.gcWindow / 4)
}

// loStore is the CC-LO partition storage engine.
type loStore struct {
	shards      [loShards]loShard
	maxVersions int
	gcWindow    time.Duration
	seed        maphash.Seed

	approxReads atomic.Uint64
}

type loShard struct {
	mu sync.Mutex
	m  map[string]*loKey
}

func newLoStore(maxVersions int, gcWindow time.Duration) *loStore {
	if maxVersions <= 0 {
		maxVersions = 64
	}
	if gcWindow <= 0 {
		gcWindow = 500 * time.Millisecond
	}
	s := &loStore{maxVersions: maxVersions, gcWindow: gcWindow, seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*loKey)
	}
	return s
}

func (s *loStore) shard(key string) *loShard {
	return &s.shards[maphash.String(s.seed, key)%loShards]
}

func (s *loStore) get(key string, create bool) (*loShard, *loKey) {
	sh := s.shard(key)
	lk := sh.m[key]
	if lk == nil && create {
		lk = &loKey{}
		sh.m[key] = lk
	}
	return sh, lk
}

// expired reports whether e is past the GC window.
func (s *loStore) expired(e orEntry, now time.Time) bool {
	return now.Sub(e.addedAt) > s.gcWindow
}

// read serves a ROT read of key: the newest version not marked invisible
// to rotID. It records rotID as a reader of the version it was served at
// logical time t. ok is false if the key does not exist.
func (s *loStore) read(key string, rotID uint64, t uint64, now time.Time) (val []byte, ts uint64, src uint8, ok bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lk := sh.m[key]
	if lk == nil || len(lk.versions) == 0 {
		// Record the negative read. "No version" is an observation too:
		// when the key's first version arrives, this ROT must surface as
		// its old reader (vts 0), or a write depending on that version
		// could become readable next to this ROT's "not found" — the
		// Figure 1 anomaly with a missing key in the role of the stale
		// permissions.
		if lk == nil {
			lk = &loKey{}
			sh.m[key] = lk
		}
		if lk.readers == nil {
			lk.readers = make(map[uint64]orEntry)
		}
		// Keys that are only ever probed have no install or readers check
		// to GC their entries, so sweep here once the map grows; what
		// remains is bounded by the probe rate times the GC window.
		lk.readersSweepAt = s.sweepReaders(lk.readers, lk.readersSweepAt, now)
		lk.readers[rotID] = orEntry{rotID: rotID, t: t, vts: 0, addedAt: now}
		return nil, 0, 0, false
	}
	for i := len(lk.versions) - 1; i >= 0; i-- {
		v := &lk.versions[i]
		if e, hidden := v.invisible[rotID]; hidden {
			if !s.expired(e, now) {
				continue
			}
			delete(v.invisible, rotID)
		}
		if i == len(lk.versions)-1 {
			// Served the latest: record the read so a future write that
			// supersedes it can find this ROT among its old readers. A hot
			// key under a read-heavy, install-free workload accumulates one
			// entry per ROT with no install or readers check to GC them, so
			// sweep in-place once the map grows; what survives is bounded by
			// the read rate times the GC window.
			if lk.readers == nil {
				lk.readers = make(map[uint64]orEntry)
			}
			lk.readersSweepAt = s.sweepReaders(lk.readers, lk.readersSweepAt, now)
			lk.readers[rotID] = orEntry{rotID: rotID, t: t, vts: v.ts, addedAt: now}
		}
		return v.value, v.ts, v.srcDC, true
	}
	// Every retained version is invisible to this ROT. On a chain that has
	// actually been trimmed, versions older than the marks were dropped,
	// so fall back to the oldest retained one (an approximation, counted).
	// On an untrimmed chain — even one that merely grew to capacity —
	// nothing was ever dropped: the ROT genuinely predates the key's FIRST
	// version (it probed the key while missing and a dependent write
	// collected it), so the only consistent answer is "not found". Serving
	// versions[0] here was the first-version startup race the checker's
	// keyspace seeding used to paper over.
	if lk.trimmed {
		s.approxReads.Add(1)
		return lk.versions[0].value, lk.versions[0].ts, lk.versions[0].srcDC, true
	}
	return nil, 0, 0, false
}

// collectOldReaders returns the old readers of key relevant to a dependency
// on version depTS — every ROT whose served version of this key trails
// depTS, i.e. every ROT that would be inconsistent if it now saw a version
// depending on key@depTS. Three sources, all filtered precisely (an
// over-collected ROT would be hidden from versions it may legitimately
// have observed, breaking its session guarantees):
//
//   - oldReaders: ROTs that read a since-superseded latest; collected when
//     the version they read (vts) trails depTS.
//   - readers: ROTs on the current latest; collected only when the latest
//     itself trails depTS (the dependency has not replicated here yet).
//   - invisibility marks: a ROT hidden from every retained version at or
//     above depTS was served something older — the transitive propagation
//     that keeps a rewound ROT visible to later dependent writes.
//
// Expired entries are dropped. The result maps ROT id → entry.
func (s *loStore) collectOldReaders(key string, depTS uint64, now time.Time, out map[uint64]orEntry) (scanned int) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lk := sh.m[key]
	if lk == nil {
		return 0
	}
	gcSweep(lk.oldReaders, s.gcWindow, now)
	for id, e := range lk.oldReaders {
		scanned++
		if e.vts < depTS {
			merge(out, id, e)
		}
	}
	latestTS := uint64(0)
	if len(lk.versions) > 0 {
		latestTS = lk.versions[len(lk.versions)-1].ts
	}
	if latestTS < depTS {
		gcSweep(lk.readers, s.gcWindow, now)
		for id, e := range lk.readers {
			scanned++
			merge(out, id, e)
		}
	} else {
		// Not collected, but a probe-heavy dependency key with a current
		// latest never takes the branch above; keep its reader map bounded
		// here too.
		lk.readersSweepAt = s.sweepReaders(lk.readers, lk.readersSweepAt, now)
	}
	// Invisibility-derived old readers: every ROT marked on ANY version of
	// this key missed something in that version's causal past, so it is
	// conservatively treated as an old reader of the dependency too. The
	// conservatism is what keeps transitive propagation unbroken — a
	// concurrent newer version can mask a ROT's miss timestamp-wise
	// without covering the missed version's causal past on OTHER keys —
	// and it is session-safe: marks only ever exist on versions installed
	// during the marked ROT's own lifetime, so the extra hiding can never
	// take back state its session observed before. Chains are bounded by
	// maxVersions and marks are GC-swept, so this walk is small — and it
	// is write-path cost, which is exactly where CC-LO pays (§3).
	for i := range lk.versions {
		inv := lk.versions[i].invisible
		for id, e := range inv {
			if s.expired(e, now) {
				delete(inv, id)
				continue
			}
			scanned++
			merge(out, id, e)
		}
	}
	return scanned
}

// merge keeps the safest (earliest-time) entry per ROT id.
func merge(out map[uint64]orEntry, id uint64, e orEntry) {
	if prev, ok := out[id]; !ok || e.t < prev.t {
		out[id] = e
	}
}

func gcSweep(m map[uint64]orEntry, window time.Duration, now time.Time) {
	for id, e := range m {
		if now.Sub(e.addedAt) > window {
			delete(m, id)
		}
	}
}

// install inserts a version of key, moves the key's current readers to its
// old readers, and marks the version invisible to the collected old
// readers of the PUT's dependencies. It returns true if the version is now
// the latest.
func (s *loStore) install(key string, v loVersion, collected map[uint64]orEntry, now time.Time) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lk := sh.m[key]
	if lk == nil {
		lk = &loKey{}
		sh.m[key] = lk
	}
	i := len(lk.versions)
	for i > 0 && v.before(&lk.versions[i-1]) {
		i--
	}
	dup := i > 0 && lk.versions[i-1].ts == v.ts && lk.versions[i-1].srcDC == v.srcDC
	if dup && len(collected) > 0 {
		// A re-delivered update (lost ack, or a retry against a recovered
		// replica) arrives with freshly collected old readers; the marks
		// must land on the existing version or the retry's readers check
		// was for nothing and a rewound ROT could see the version anyway.
		ex := &lk.versions[i-1]
		if ex.invisible == nil {
			ex.invisible = make(map[uint64]orEntry, len(collected))
		}
		for id, e := range collected {
			e.addedAt = now
			merge(ex.invisible, id, e)
		}
	}
	newest := false
	if !dup {
		if len(collected) > 0 {
			v.invisible = make(map[uint64]orEntry, len(collected))
			for id, e := range collected {
				e.addedAt = now
				v.invisible[id] = e
			}
		}
		lk.versions = append(lk.versions, loVersion{})
		copy(lk.versions[i+1:], lk.versions[i:])
		lk.versions[i] = v
		// Decide "newest" before trimming: trimming shortens the slice and
		// would misclassify every install on a full chain, silently
		// skipping the readers → old-readers move for hot keys.
		newest = i == len(lk.versions)-1
		if len(lk.versions) > s.maxVersions {
			drop := len(lk.versions) - s.maxVersions
			lk.versions = append(lk.versions[:0:0], lk.versions[drop:]...)
			lk.trimmed = true
		}
	}
	if newest && len(lk.readers) > 0 {
		// The previous latest version is now superseded: its readers are
		// old readers from here on. An install-heavy key with no readers
		// checks (nothing ever depends on it) would grow oldReaders without
		// bound, so apply the same size-triggered sweep the reader map gets.
		if lk.oldReaders == nil {
			lk.oldReaders = make(map[uint64]orEntry, len(lk.readers))
		} else {
			lk.oldReadersSweepAt = s.sweepReaders(lk.oldReaders, lk.oldReadersSweepAt, now)
		}
		for id, e := range lk.readers {
			e.addedAt = now
			merge(lk.oldReaders, id, e)
		}
		clear(lk.readers)
	}
	return newest
}

// addMarks rebuilds invisibility marks on the version of key identified by
// (ts, src) — WAL recovery replaying persisted old-reader records. Marks
// land with addedAt = now: the original insertion time did not survive the
// crash, so the GC window restarts, which only errs toward hiding longer —
// safe, because marks exist only on versions installed during the marked
// ROT's lifetime, so extra hiding can never take back state its session
// already observed. Records whose version is gone (trimmed, superseded out
// of the snapshot, or torn from the log tail) are dropped.
func (s *loStore) addMarks(key string, ts uint64, src uint8, entries []wire.ReaderEntry, now time.Time) {
	if len(entries) == 0 {
		return
	}
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lk := sh.m[key]
	if lk == nil {
		return
	}
	for i := range lk.versions {
		v := &lk.versions[i]
		if v.ts != ts || v.srcDC != src {
			continue
		}
		if v.invisible == nil {
			v.invisible = make(map[uint64]orEntry, len(entries))
		}
		for _, e := range entries {
			merge(v.invisible, e.RotID, orEntry{rotID: e.RotID, t: e.T, addedAt: now})
		}
		return
	}
}

// marksOf returns the version's non-expired invisibility marks as wire
// entries (nil when none); the caller must hold the shard lock — it is the
// WAL snapshot serializer, which runs inside forEachLatest.
func (s *loStore) marksOf(v *loVersion, now time.Time) []wire.ReaderEntry {
	var out []wire.ReaderEntry
	for id, e := range v.invisible {
		if s.expired(e, now) {
			continue
		}
		out = append(out, wire.ReaderEntry{RotID: id, T: e.t})
	}
	return out
}

// latest returns the newest version of key.
func (s *loStore) latest(key string) (loVersion, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lk := sh.m[key]
	if lk == nil || len(lk.versions) == 0 {
		return loVersion{}, false
	}
	return lk.versions[len(lk.versions)-1], true
}

// hasVersion reports whether the version of key identified by (ts, src)
// has been installed here (dependency-check predicate). The check is
// EXACT, not "any newer version": a newer CONCURRENT version can satisfy a
// ≥ check while being invisible to some rewound ROT, which would let a
// dependent update become readable before the one version that ROT could
// consistently be served has arrived — and a same-timestamp version from a
// DIFFERENT DC is a different version entirely (Lamport timestamps collide
// across DCs). A chain whose oldest retained version is already LWW-above
// (ts, src) proves the version was installed and trimmed.
func (s *loStore) hasVersion(key string, ts uint64, src uint8) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lk := sh.m[key]
	if lk == nil || len(lk.versions) == 0 {
		return false
	}
	want := loVersion{ts: ts, srcDC: src}
	if lk.trimmed && want.before(&lk.versions[0]) {
		// Only a chain that actually trimmed can have dropped the asked
		// version; on an untrimmed chain (even one exactly at capacity)
		// "LWW-below the oldest" just means never installed.
		return true
	}
	for i := len(lk.versions) - 1; i >= 0 && lk.versions[i].ts >= ts; i-- {
		if lk.versions[i].ts == ts && lk.versions[i].srcDC == src {
			return true
		}
	}
	return false
}

// forEachLatest visits every key's newest version (tests, convergence).
func (s *loStore) forEachLatest(fn func(key string, v loVersion)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, lk := range sh.m {
			if len(lk.versions) > 0 {
				fn(k, lk.versions[len(lk.versions)-1])
			}
		}
		sh.mu.Unlock()
	}
}
