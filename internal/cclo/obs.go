package cclo

import (
	"strconv"
	"time"

	"repro/internal/metrics"
)

// Observability surface of a CC-LO partition server. CC-LO runs on Lamport
// clocks, whose timestamps carry no wall-time component, so its
// replication-lag gauge is the wall-clock age of the last replicated update
// received from each peer DC rather than a clock difference.

// RegisterMetrics exposes the server's per-op histograms, store occupancy,
// readers-check overhead counters, restart epoch, and replication-receipt
// ages under r. Labels should identify the partition (dc, partition,
// family).
func (s *Server) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	s.ops.Register(r, "kv_server_op_seconds",
		"End-to-end server handler latency by operation.", labels...)
	s.store.eng.Register(r, labels...)
	r.CounterFunc("kv_store_approx_reads_total",
		"Snapshot reads served with the oldest retained version because the exact one was trimmed.",
		func() float64 { return float64(s.store.approxReads.Load()) }, labels...)
	r.CounterFunc("kv_cclo_readers_checks_total", "Readers checks performed.",
		func() float64 { return float64(s.stats.Checks.Load()) }, labels...)
	r.CounterFunc("kv_cclo_keys_checked_total", "Dependencies examined by readers checks.",
		func() float64 { return float64(s.stats.KeysChecked.Load()) }, labels...)
	r.CounterFunc("kv_cclo_partitions_asked_total", "Remote partitions interrogated by readers checks.",
		func() float64 { return float64(s.stats.PartitionsAsked.Load()) }, labels...)
	r.CounterFunc("kv_cclo_rot_ids_total", "ROT ids scanned by readers checks, before dedup.",
		func() float64 { return float64(s.stats.IDsCumulative.Load()) }, labels...)
	r.CounterFunc("kv_cclo_rot_ids_distinct_total", "Distinct ROT ids after readers-check merge.",
		func() float64 { return float64(s.stats.IDsDistinct.Load()) }, labels...)
	r.CounterFunc("kv_cclo_check_bytes_total", "Readers-check response payload bytes.",
		func() float64 { return float64(s.stats.CheckBytes.Load()) }, labels...)
	r.CounterFunc("kv_cclo_replication_checks_total", "Readers checks run for replicated updates.",
		func() float64 { return float64(s.stats.ReplicationChecks.Load()) }, labels...)
	r.GaugeFunc("kv_cclo_restart_epoch", "This partition's durable restart epoch (0 = in-memory).",
		func() float64 { return float64(s.epoch) }, labels...)
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		dc := dc
		r.GaugeFunc("kv_replication_last_update_age_seconds",
			"Seconds since the last replication batch was received from the peer DC (server start if none yet).",
			func() float64 { return s.lastRepAge(dc).Seconds() },
			append(append([]metrics.Label(nil), labels...), metrics.Label{Name: "peer_dc", Value: strconv.Itoa(dc)})...)
	}
}

// lastRepAge returns the wall-clock age of the newest replicated update
// received from dc, falling back to the server's start time before the
// first one.
func (s *Server) lastRepAge(dc int) time.Duration {
	if dc < 0 || dc >= len(s.lastRep) {
		return 0
	}
	at := s.lastRep[dc].Load()
	if at == 0 {
		at = s.started
	}
	return time.Duration(time.Now().UnixNano() - at)
}

// noteRep stamps receipt of a replicated update from dc.
func (s *Server) noteRep(dc int) {
	if dc >= 0 && dc < len(s.lastRep) {
		s.lastRep[dc].Store(time.Now().UnixNano())
	}
}
