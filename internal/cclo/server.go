package cclo

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hlc"
	"repro/internal/metrics"
	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Config parameterizes one CC-LO partition server.
type Config struct {
	DC       int
	Part     int
	NumDCs   int
	NumParts int

	// GCWindow is how long reader entries live (paper: 500 ms).
	GCWindow time.Duration
	// CallTimeout bounds readers-check and dependency-check calls.
	CallTimeout time.Duration
	// RepWindow is the number of replication updates in flight per remote
	// DC; receivers order installs by dependency checks, not sequencing.
	RepWindow int
	// RepRetryTimeout bounds one replication attempt before the
	// (idempotent) update is retried; it masks WAN loss quickly.
	RepRetryTimeout time.Duration
	// MaxVersions caps per-key version chains.
	MaxVersions int
	// StoreShards is the storage engine shard count (0 = auto from
	// GOMAXPROCS; see internal/store).
	StoreShards int

	// Durable, when non-nil, makes every install durable before it is
	// acknowledged (see wal.Durability), and closes CC-LO's crash gap for
	// ROTs in flight at the crash with two durable fences. Invisibility
	// marks are persisted as old-reader records in the same append as the
	// install they protect, so recovery rebuilds per-version rewind state;
	// and every recovery durably bumps the partition's restart epoch, which
	// servers gossip along readers checks and clients use to abort-and-retry
	// a multi-partition ROT that straddled a restart (the reader/old-reader
	// MAPS stay soft — the epoch fence is what covers their loss). Both
	// durable footprints are bounded by the GC window.
	Durable wal.Durability

	// Slow, when non-nil, receives a trace record for every handler
	// invocation that exceeds the ring's threshold (shared process-wide;
	// see metrics.SlowRing). Nil disables capture at zero cost.
	Slow *metrics.SlowRing
}

func (c Config) withDefaults() Config {
	if c.NumDCs <= 0 {
		c.NumDCs = 1
	}
	if c.NumParts <= 0 {
		c.NumParts = 1
	}
	if c.GCWindow <= 0 {
		c.GCWindow = 500 * time.Millisecond
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 10 * time.Second
	}
	if c.RepWindow <= 0 {
		c.RepWindow = 64
	}
	if c.RepRetryTimeout <= 0 {
		c.RepRetryTimeout = 2 * time.Second
	}
	return c
}

// Stats aggregates the readers-check overhead counters behind the paper's
// Figure 6 and the overhead analyses of Sections 5.4–5.6.
type Stats struct {
	Checks            atomic.Uint64 // readers checks performed
	KeysChecked       atomic.Uint64 // dependencies examined
	PartitionsAsked   atomic.Uint64 // remote partitions interrogated
	IDsCumulative     atomic.Uint64 // ROT ids scanned, before dedup/filter
	IDsDistinct       atomic.Uint64 // distinct ROT ids after merge
	CheckBytes        atomic.Uint64 // readers-check response payload bytes
	ReplicationChecks atomic.Uint64 // readers checks run for replicated updates
}

// StatsSnapshot is a plain copy of Stats. FenceRetries is client-side
// state (see Client.FenceRetries) aggregated in by the cluster layer; a
// single server's Snapshot always reports it as zero.
type StatsSnapshot struct {
	Checks, KeysChecked, PartitionsAsked   uint64
	IDsCumulative, IDsDistinct, CheckBytes uint64
	ReplicationChecks                      uint64
	FenceRetries                           uint64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Checks:            s.Checks.Load(),
		KeysChecked:       s.KeysChecked.Load(),
		PartitionsAsked:   s.PartitionsAsked.Load(),
		IDsCumulative:     s.IDsCumulative.Load(),
		IDsDistinct:       s.IDsDistinct.Load(),
		CheckBytes:        s.CheckBytes.Load(),
		ReplicationChecks: s.ReplicationChecks.Load(),
	}
}

// Server is one CC-LO partition replica.
type Server struct {
	cfg   Config
	clock *hlc.Lamport
	store *loStore
	node  transport.Node
	ring  ring.Ring
	stats Stats

	// epoch is this partition's restart epoch: 0 for in-memory servers
	// (which cannot restart in place), otherwise bumped durably on every
	// recovery. Fixed after construction. epochVec is the newest epoch this
	// server knows per partition of its DC (own entry authoritative);
	// remote entries advance as readers-check traffic gossips them — the
	// same causal channel a dependent write must cross before it can skip a
	// crashed partition's lost reader records, which is what makes the ROT
	// fence sound (see wire.LoRotResp.Epochs).
	epoch    uint64
	epochMu  sync.Mutex
	epochVec []uint64

	// installMu/installCond wake blocked dependency checks on installs.
	installMu   sync.Mutex
	installCond *sync.Cond
	installGen  uint64

	// Observability (obs.go): per-op latency histograms, the process-wide
	// slow-op trace ring (nil-safe), per-peer last-replication receipt
	// stamps, and the server's start time as their pre-first-update floor.
	ops     metrics.OpHists
	slow    *metrics.SlowRing
	lastRep []atomic.Int64 // unix nanos, indexed by source DC
	started int64          // unix nanos at construction

	repl *loReplicator
	stop chan struct{}
}

// NewServer builds the partition server and attaches it to net.
func NewServer(cfg Config, net transport.Network) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		clock:    hlc.NewLamport(0),
		store:    newLoStore(cfg.MaxVersions, cfg.StoreShards, cfg.GCWindow),
		ring:     ring.New(cfg.NumParts),
		epochVec: make([]uint64, cfg.NumParts),
		stop:     make(chan struct{}),
	}
	s.slow = cfg.Slow
	s.lastRep = make([]atomic.Int64, cfg.NumDCs)
	s.started = time.Now().UnixNano()
	s.installCond = sync.NewCond(&s.installMu)
	var recovered []*wire.LoRepUpdate
	if cfg.Durable != nil {
		var err error
		if recovered, err = s.recover(); err != nil {
			return nil, err
		}
	}
	// The replicator must exist before the server is reachable: the first
	// PUT to arrive enqueues into its streams.
	s.repl = newLoReplicator(s, recovered)
	// The server is reachable the instant Attach returns, but handlers need
	// s.node: gate dispatch on construction completing so an early message
	// cannot observe a half-built server.
	ready := make(chan struct{})
	node, err := net.Attach(wire.ServerAddr(cfg.DC, cfg.Part), transport.HandlerFunc(
		func(n transport.Node, src wire.From, reqID uint64, m wire.Message) {
			<-ready
			s.Handle(n, src, reqID, m)
		}))
	if err != nil {
		return nil, err
	}
	s.node = node
	close(ready)
	return s, nil
}

// recover replays the durable log into the store, rebuilds per-version
// invisibility marks from persisted old-reader records, durably bumps the
// partition's restart epoch, advances the Lamport clock past every
// recovered timestamp (so new writes order above acknowledged ones), and
// registers the snapshot source. It returns the recovered LOCAL updates —
// dependency lists and recovered old readers included — in timestamp order
// for the replicator's re-enqueue.
func (s *Server) recover() ([]*wire.LoRepUpdate, error) {
	now := time.Now()
	var maxTS uint64
	var local []*wire.LoRepUpdate
	// verID names a recovered version for mark rebuilding: reader records
	// may replay before their install (snapshots) or after a duplicate of
	// it (re-delivered updates), so marks are accumulated here and applied
	// once the full replay has settled the version chains.
	type verID struct {
		key string
		ts  uint64
		src uint8
	}
	marks := make(map[verID][]wire.ReaderEntry)
	err := s.cfg.Durable.Replay(func(rec wal.Record) error {
		if rec.Kind == wal.RecReaders {
			id := verID{key: rec.Key, ts: rec.TS, src: rec.SrcDC}
			marks[id] = append(marks[id], rec.Readers...)
			return nil
		}
		// Local versions keep their dependency lists in the store so the
		// next snapshot re-emits them (see loVersion.deps).
		var deps []wire.LoDep
		if int(rec.SrcDC) == s.cfg.DC {
			deps = rec.Deps
		}
		s.store.install(rec.Key, loVersion{value: rec.Value, ts: rec.TS, srcDC: rec.SrcDC, deps: deps}, nil, now)
		maxTS = max(maxTS, rec.TS)
		if int(rec.SrcDC) == s.cfg.DC {
			local = append(local, &wire.LoRepUpdate{
				SrcDC:   rec.SrcDC,
				SrcPart: uint32(s.cfg.Part),
				Key:     rec.Key,
				Value:   rec.Value,
				TS:      rec.TS,
				Deps:    rec.Deps,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for id, entries := range marks {
		s.store.addMarks(id.key, id.ts, id.src, entries, now)
	}
	// Re-enqueued local updates carry their recovered old readers, exactly
	// as the pre-crash enqueue did: the receiving DC merges them into its
	// own readers check before installing.
	for _, u := range local {
		if entries := marks[verID{key: u.Key, ts: u.TS, src: u.SrcDC}]; len(entries) > 0 {
			u.OldReaders = entries
		}
	}
	sort.Slice(local, func(i, j int) bool { return local[i].TS < local[j].TS })
	if maxTS > 0 {
		s.clock.Update(maxTS)
	}
	// Fence this incarnation: the epoch bump must be durable before the
	// server serves anything, or a second crash could resurrect the old
	// epoch and hide this restart from straddling ROTs.
	s.epoch = s.cfg.Durable.Epoch() + 1
	if err := s.cfg.Durable.SetEpoch(s.epoch); err != nil {
		return nil, err
	}
	s.epochVec[s.cfg.Part] = s.epoch
	// Snapshot records carry each local version's dependency list (the
	// store keeps it alongside the version, see loVersion.deps), so a local
	// update that is BOTH unacked by some DC and already folded into a
	// snapshot still re-enqueues with its deps — the receiving DC's
	// dependency check must never be skipped just because the origin
	// compacted its log. Versions at or below every stream's durable ack
	// frontier are never re-enqueued, so their deps are omitted to keep
	// snapshot growth bounded by the unacked window, not the keyspace.
	// The source iterates the store lock-free (chains are immutable
	// snapshots), so emission — disk I/O — no longer stalls writers; only
	// the per-key mark collection briefly takes the shard lock.
	s.cfg.Durable.SetSnapshotSource(func(emit func(wal.Record) error) error {
		frontier := s.ackedFrontier()
		snapNow := time.Now()
		var ferr error
		s.store.forEachChain(func(key string, c *loChain) {
			if ferr != nil {
				return
			}
			// Still-live invisibility marks ride along so truncating the
			// segment that held a version's old-reader record cannot strip
			// an in-window ROT of its rewind protection; expired marks are
			// dropped here, which is what bounds the durable footprint to
			// the GC window. Marks live on NON-latest versions too (the
			// rewound ROT's targets), so a key carrying any in-window mark
			// emits its whole retained chain — marks are useless without
			// the versions they hide and the versions they rewind to — while
			// unmarked keys emit only their latest, keeping snapshot growth
			// bounded by the keyspace plus the GC window's marked chains.
			marked := s.store.markedVersions(key, snapNow)
			vs := c.Versions
			if len(marked) == 0 {
				vs = vs[len(vs)-1:]
			}
			for i := range vs {
				v := &vs[i]
				deps := v.Extra.deps
				if v.TS <= frontier {
					deps = nil
				}
				if ferr = emit(wal.Record{Key: key, Value: v.Value, TS: v.TS, SrcDC: v.Src, Deps: deps}); ferr != nil {
					return
				}
			}
			for _, m := range marked {
				if ferr = emit(wal.Record{Kind: wal.RecReaders, Key: key, TS: m.ts, SrcDC: m.src, Readers: m.entries}); ferr != nil {
					return
				}
			}
		})
		return ferr
	})
	return local, nil
}

// foldEpochs max-merges a peer's epoch vector into this server's view. The
// own entry is never folded — this partition is the sole authority on its
// epoch, and it is fixed for the life of the incarnation.
func (s *Server) foldEpochs(vec []uint64) {
	if len(vec) == 0 {
		return
	}
	s.epochMu.Lock()
	for i := 0; i < len(vec) && i < len(s.epochVec); i++ {
		if i != s.cfg.Part && vec[i] > s.epochVec[i] {
			s.epochVec[i] = vec[i]
		}
	}
	s.epochMu.Unlock()
}

// epochsView copies the server's current epoch vector for stamping onto a
// response.
func (s *Server) epochsView() []uint64 {
	s.epochMu.Lock()
	out := append([]uint64(nil), s.epochVec...)
	s.epochMu.Unlock()
	return out
}

// ackedFrontier returns the timestamp at or below which every remote DC
// has durably acknowledged this partition's local updates (MaxUint64 with
// no remote DCs). A missing cursor means that DC has acked nothing.
func (s *Server) ackedFrontier() uint64 {
	if s.cfg.NumDCs <= 1 {
		return ^uint64(0)
	}
	byDC := make(map[uint8]uint64)
	for _, c := range s.cfg.Durable.Cursors() {
		byDC[c.DstDC] = c.HighTS
	}
	frontier := ^uint64(0)
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		frontier = min(frontier, byDC[uint8(dc)])
	}
	return frontier
}

// Addr returns the server's wire address.
func (s *Server) Addr() wire.Addr { return s.node.Addr() }

// Stats returns the server's readers-check counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Preload installs an initial version (ts 1, DC 0) of each key directly,
// bypassing the protocol; used by benchmarks to stand up the data set.
func (s *Server) Preload(keys []string, val []byte) {
	now := time.Now()
	for _, k := range keys {
		s.store.install(k, loVersion{value: val, ts: 1, srcDC: 0}, nil, now)
	}
	s.clock.Update(1)
}

// ForEachLatest visits every key's newest version (tests, convergence
// checks).
func (s *Server) ForEachLatest(fn func(key string, value []byte, ts uint64, srcDC uint8)) {
	s.store.forEachLatest(func(k string, v loVersion) {
		fn(k, v.value, v.ts, v.srcDC)
	})
}

// Start launches replication streams.
func (s *Server) Start() { s.repl.start() }

// Close stops background work and detaches from the network.
func (s *Server) Close() error {
	close(s.stop)
	s.repl.stopAll()
	s.installMu.Lock()
	s.installCond.Broadcast()
	s.installMu.Unlock()
	return s.node.Close()
}

// Handle dispatches one incoming message.
func (s *Server) Handle(n transport.Node, src wire.From, reqID uint64, m wire.Message) {
	switch msg := m.(type) {
	case *wire.LoRotReq:
		s.handleRot(src, reqID, msg)
	case *wire.LoPutReq:
		s.handlePut(src, reqID, msg)
	case *wire.OldReadersReq:
		s.handleOldReaders(src, reqID, msg)
	case *wire.LoRepUpdate:
		s.handleRepUpdate(src, reqID, msg)
	case *wire.DepCheckReq:
		s.handleDepCheck(src, reqID, msg)
	case *wire.Ping:
		_ = n.Respond(src, reqID, &wire.Pong{Nonce: msg.Nonce})
	default:
		if reqID != 0 {
			transport.RespondError(n, src, reqID, 400, "cclo: unexpected message")
		}
	}
}

// handleRot serves CC-LO's one-round read: latest version, or — for a
// recorded old reader — the newest version older than its recorded time.
func (s *Server) handleRot(src wire.From, reqID uint64, m *wire.LoRotReq) {
	start := time.Now()
	defer func() {
		total := time.Since(start)
		s.ops.ReadHist(len(m.Keys)).Record(total)
		var kh uint64
		if len(m.Keys) > 0 {
			kh = metrics.KeyHash(m.Keys[0])
		}
		op := "rot"
		if len(m.Keys) == 1 {
			op = "get"
		}
		s.slow.Record(metrics.SlowOp{
			Start: start.UnixNano(), Op: op, KeyHash: kh, Total: total,
		})
	}()
	// Fold the session's high-water mark into this partition's clock
	// before assigning read times: per-partition Lamport clocks know
	// nothing of what a session observed elsewhere, and an old-reader
	// entry recorded below the session's past would let a later rewind
	// serve this session versions older than state it already saw.
	s.clock.Update(m.SeenTS)
	s.foldEpochs(m.Epochs)
	now := time.Now()
	vals := make([]wire.KV, len(m.Keys))
	for i, k := range m.Keys {
		t := s.clock.Tick()
		val, ts, src, ok := s.store.read(k, m.RotID, t, now)
		if ok {
			vals[i] = wire.KV{Key: k, Value: val, TS: ts, Src: src}
		} else {
			vals[i] = wire.KV{Key: k}
		}
	}
	// The epoch stamp is taken AFTER the reads: any version these reads
	// observed was installed before the snapshot, so an epoch its readers
	// check carried is already folded in — the client's fence can compare
	// legs without a lost-update window on this side.
	_ = s.node.Respond(src, reqID, &wire.LoRotResp{Vals: vals, Epochs: s.epochsView()})
}

// handlePut runs a client PUT: readers check first, then install, then
// replicate (Figure 2's write path).
func (s *Server) handlePut(src wire.From, reqID uint64, m *wire.LoPutReq) {
	start := time.Now()
	var checkDur, fsyncDur time.Duration
	defer func() {
		total := time.Since(start)
		s.ops.Put.Record(total)
		s.slow.Record(metrics.SlowOp{
			Start: start.UnixNano(), Op: "put", KeyHash: metrics.KeyHash(m.Key),
			Total: total, Queue: checkDur, Fsync: fsyncDur,
		})
	}()
	collected, maxT, err := s.readersCheck(m.Deps, false)
	checkDur = time.Since(start)
	if err != nil {
		transport.RespondError(s.node, src, reqID, 500, "cclo: readers check: "+err.Error())
		return
	}
	// The new version's timestamp must exceed every dependency timestamp
	// and every collected read time, so that "old" is well defined.
	high := maxT
	for _, d := range m.Deps {
		high = max(high, d.TS)
	}
	ts := s.clock.Update(high)
	// Register the timestamp with the replication cursor trackers BEFORE
	// the append: once the record is durable, a crash at any point must
	// find the cursor frontier still below it, or recovery would not
	// re-ship it.
	s.repl.track(ts)
	// Durability gates VISIBILITY, not just the acknowledgment: the fsync
	// runs before the install, so no read or dependency check can ever
	// observe a version a crash could still take back. A dep check passing
	// on an un-fsynced version would permanently unblock dependents in
	// other DCs that recovery can never satisfy again. The same order
	// keeps replication honest (never ship what the origin could lose; the
	// enqueue-after-durable order also keeps same-partition dependencies
	// launching no later than their dependents), and the dependency list
	// is persisted with the install so a crash-recovered re-enqueue still
	// carries it.
	if s.cfg.Durable != nil {
		recs := installRecords(wal.Record{
			Key: m.Key, Value: m.Value, TS: ts, SrcDC: uint8(s.cfg.DC), Deps: m.Deps,
		}, collected)
		fs := time.Now()
		err := wal.AppendAndSync(s.cfg.Durable, recs)
		fsyncDur = time.Since(fs)
		if err != nil {
			transport.RespondError(s.node, src, reqID, 500, "cclo: wal: "+err.Error())
			return
		}
	}
	s.install(m.Key, loVersion{value: m.Value, ts: ts, srcDC: uint8(s.cfg.DC), deps: m.Deps}, collected)
	s.repl.enqueue(&wire.LoRepUpdate{
		SrcDC:      uint8(s.cfg.DC),
		SrcPart:    uint32(s.cfg.Part),
		Key:        m.Key,
		Value:      m.Value,
		TS:         ts,
		Deps:       m.Deps,
		OldReaders: entriesToWire(collected),
	})
	_ = s.node.Respond(src, reqID, &wire.LoPutResp{TS: ts})
}

// installRecords pairs an install record with the old-reader record
// persisting its invisibility marks (when it has any). The reader record
// goes FIRST: the two land in one group commit, but a real crash can still
// tear the batch's unfsynced tail, and a torn reader record behind a
// surviving install would resurrect the version without its rewind
// protection — the exact bug this PR closes. Torn the other way round, the
// version is lost too and the orphaned marks are dropped at recovery.
func installRecords(install wal.Record, collected map[uint64]orEntry) []wal.Record {
	if len(collected) == 0 {
		return []wal.Record{install}
	}
	return []wal.Record{
		{Kind: wal.RecReaders, Key: install.Key, TS: install.TS, SrcDC: install.SrcDC, Readers: entriesToWire(collected)},
		install,
	}
}

// install writes the version and wakes dependency checks.
func (s *Server) install(key string, v loVersion, collected map[uint64]orEntry) {
	s.store.install(key, v, collected, time.Now())
	s.installMu.Lock()
	s.installGen++
	s.installCond.Broadcast()
	s.installMu.Unlock()
}

// readersCheck interrogates the partition of every dependency for old
// readers and merges the results. It returns the merged entries and the
// highest read time seen. replicated marks checks run on behalf of a
// replicated update (they are counted separately; §5.4 attributes CC-LO's
// poor geo-scaling to them).
func (s *Server) readersCheck(deps []wire.LoDep, replicated bool) (map[uint64]orEntry, uint64, error) {
	s.stats.Checks.Add(1)
	if replicated {
		s.stats.ReplicationChecks.Add(1)
	}
	s.stats.KeysChecked.Add(uint64(len(deps)))
	if len(deps) == 0 {
		return nil, 0, nil
	}
	byPart := make(map[int][]wire.LoDep)
	for _, d := range deps {
		p := s.ring.Owner(d.Key)
		byPart[p] = append(byPart[p], d)
	}
	collected := make(map[uint64]orEntry)
	now := time.Now()
	var scanned int

	// Local dependencies are checked with a direct store access.
	if local, ok := byPart[s.cfg.Part]; ok {
		for _, d := range local {
			scanned += s.store.collectOldReaders(d.Key, d.TS, now, collected)
		}
		delete(byPart, s.cfg.Part)
	}

	// Remote dependencies are interrogated in parallel. Every response
	// carries the responder's epoch vector, folded into ours before this
	// check returns — i.e. before the version being checked installs —
	// which is the propagation that lets ROT legs expose a restart to the
	// client fence.
	type answer struct {
		readers    []wire.ReaderEntry
		cumulative uint32
		bytes      int
		epochs     []uint64
		err        error
	}
	reqEpochs := s.epochsView()
	ch := make(chan answer, len(byPart))
	for p, ds := range byPart {
		go func(p int, ds []wire.LoDep) {
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CallTimeout)
			defer cancel()
			resp, err := s.node.Call(ctx, wire.ServerAddr(s.cfg.DC, p), &wire.OldReadersReq{Deps: ds, Epochs: reqEpochs})
			if err != nil {
				ch <- answer{err: err}
				return
			}
			or, ok := resp.(*wire.OldReadersResp)
			if !ok {
				ch <- answer{err: wire.ErrUnknownType}
				return
			}
			ch <- answer{readers: or.Readers, cumulative: or.Cumulative, epochs: or.Epochs, bytes: 16 * len(or.Readers)}
		}(p, ds)
	}
	s.stats.PartitionsAsked.Add(uint64(len(byPart)))
	var firstErr error
	for range byPart {
		a := <-ch
		if a.err != nil {
			if firstErr == nil {
				firstErr = a.err
			}
			continue
		}
		s.foldEpochs(a.epochs)
		scanned += int(a.cumulative)
		s.stats.CheckBytes.Add(uint64(a.bytes))
		for _, r := range a.readers {
			merge(collected, r.RotID, orEntry{rotID: r.RotID, t: r.T, addedAt: now})
		}
	}
	if firstErr != nil {
		return nil, 0, firstErr
	}
	// Apply the paper's one-id-per-client optimization to the merged set.
	collected = filterOnePerClient(collected)
	s.stats.IDsCumulative.Add(uint64(scanned))
	s.stats.IDsDistinct.Add(uint64(len(collected)))
	var maxT uint64
	for _, e := range collected {
		maxT = max(maxT, e.t)
	}
	return collected, maxT, nil
}

// handleOldReaders answers a readers check for dependencies on this
// partition's keys.
func (s *Server) handleOldReaders(src wire.From, reqID uint64, m *wire.OldReadersReq) {
	s.foldEpochs(m.Epochs)
	now := time.Now()
	collected := make(map[uint64]orEntry)
	scanned := 0
	for _, d := range m.Deps {
		scanned += s.store.collectOldReaders(d.Key, d.TS, now, collected)
	}
	collected = filterOnePerClient(collected)
	// Receiving the check updates our Lamport clock with nothing (the
	// times flow the other way); the response carries our entries' times
	// plus our epoch vector (our own entry says which incarnation answered
	// — the whole point of the fence).
	_ = s.node.Respond(src, reqID, &wire.OldReadersResp{
		Readers:    entriesToWire(collected),
		Cumulative: uint32(scanned),
		Epochs:     s.epochsView(),
	})
}

// handleDepCheck blocks until this partition holds the version of Key at
// TS, then responds (COPS dependency checking). A shutdown abort answers
// with an error — never success: the caller would otherwise durably
// install a dependent whose dependency this partition never had.
func (s *Server) handleDepCheck(src wire.From, reqID uint64, m *wire.DepCheckReq) {
	if !s.waitForVersion(m.Key, m.TS, m.Src) {
		transport.RespondError(s.node, src, reqID, 503, "cclo: dep check aborted: server stopping")
		return
	}
	_ = s.node.Respond(src, reqID, &wire.DepCheckResp{})
}

// waitForVersion blocks until key@ts is installed; false means the server
// is stopping and the dependency was NOT verified.
func (s *Server) waitForVersion(key string, ts uint64, src uint8) bool {
	if s.store.hasVersion(key, ts, src) {
		return true
	}
	s.installMu.Lock()
	defer s.installMu.Unlock()
	for !s.store.hasVersion(key, ts, src) {
		select {
		case <-s.stop:
			return false
		default:
		}
		s.installCond.Wait()
	}
	return true
}

// handleRepUpdate installs a replicated update: dependency check, then a
// readers check in this DC, then install (§3, "Challenges of
// geo-replication"; the two checks are the combined protocol).
func (s *Server) handleRepUpdate(src wire.From, reqID uint64, m *wire.LoRepUpdate) {
	start := time.Now()
	var checkDur, fsyncDur time.Duration
	defer func() {
		s.noteRep(int(m.SrcDC))
		total := time.Since(start)
		s.ops.Rep.Record(total)
		s.slow.Record(metrics.SlowOp{
			Start: start.UnixNano(), Op: "rep", KeyHash: metrics.KeyHash(m.Key),
			Total: total, Queue: checkDur, Fsync: fsyncDur,
		})
	}()
	// 1. Dependency check: every dependency must be installed in this DC.
	// A failed or shutdown-aborted check withholds the install AND the ack
	// — installing an unverified dependent would be durably wrong, while
	// the origin simply retries the (idempotent) update later.
	var wg sync.WaitGroup
	errCh := make(chan error, len(m.Deps))
	for _, d := range m.Deps {
		p := s.ring.Owner(d.Key)
		if p == s.cfg.Part {
			wg.Add(1)
			go func(d wire.LoDep) {
				defer wg.Done()
				if !s.waitForVersion(d.Key, d.TS, d.Src) {
					errCh <- transport.ErrClosed
				}
			}(d)
			continue
		}
		wg.Add(1)
		go func(p int, d wire.LoDep) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CallTimeout)
			defer cancel()
			if _, err := s.node.Call(ctx, wire.ServerAddr(s.cfg.DC, p), &wire.DepCheckReq{Key: d.Key, TS: d.TS, Src: d.Src}); err != nil {
				errCh <- err
			}
		}(p, d)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		transport.RespondError(s.node, src, reqID, 500, "cclo: dep check: "+err.Error())
		return
	default:
	}

	// 2. Readers check in this DC, merged with the origin's old readers.
	collected, maxT, err := s.readersCheck(m.Deps, true)
	checkDur = time.Since(start)
	if err != nil {
		transport.RespondError(s.node, src, reqID, 500, "cclo: readers check: "+err.Error())
		return
	}
	now := time.Now()
	for _, r := range m.OldReaders {
		merge(collected, r.RotID, orEntry{rotID: r.RotID, t: r.T, addedAt: now})
	}
	// 3. Durability before visibility AND before the ack, waiting for the
	// real fsync even in background-sync mode: an install visible to reads
	// or dependency checks before its fsync could be taken back by a
	// crash after dependents elsewhere already cleared their checks, and
	// the ack advances the origin's durable cursor, after which this
	// update is never re-sent. An unacked update is retried (idempotently)
	// by the origin.
	s.clock.Update(max(m.TS, maxT))
	if s.cfg.Durable != nil {
		recs := installRecords(wal.Record{
			Key: m.Key, Value: m.Value, TS: m.TS, SrcDC: m.SrcDC,
		}, collected)
		fs := time.Now()
		err := wal.AppendAndSync(s.cfg.Durable, recs)
		fsyncDur = time.Since(fs)
		if err != nil {
			transport.RespondError(s.node, src, reqID, 500, "cclo: wal: "+err.Error())
			return
		}
	}
	// 4. Install with the origin timestamp; Lamport clocks stay related.
	s.install(m.Key, loVersion{value: m.Value, ts: m.TS, srcDC: m.SrcDC}, collected)
	_ = s.node.Respond(src, reqID, &wire.LoRepAck{Seq: m.Seq})
}

// filterOnePerClient keeps, per client, only the most recent ROT id (the
// paper's §5.2 optimization; sound for clients that issue one ROT at a
// time, because any older ROT has completed all its reads).
func filterOnePerClient(in map[uint64]orEntry) map[uint64]orEntry {
	best := make(map[uint64]orEntry, len(in))
	for id, e := range in {
		client := id >> 32
		if prev, ok := best[client]; !ok || id > prev.rotID {
			best[client] = e
		}
	}
	out := make(map[uint64]orEntry, len(best))
	for _, e := range best {
		out[e.rotID] = e
	}
	return out
}

func entriesToWire(m map[uint64]orEntry) []wire.ReaderEntry {
	if len(m) == 0 {
		return nil
	}
	out := make([]wire.ReaderEntry, 0, len(m))
	for id, e := range m {
		out = append(out, wire.ReaderEntry{RotID: id, T: e.t})
	}
	return out
}
