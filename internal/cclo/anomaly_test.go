package cclo

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/transport"
)

func seqVal(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

func seqOf(b []byte) uint64 {
	if len(b) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// samePartKeys returns two keys owned by the same partition.
func samePartKeys(r ring.Ring) (string, string) {
	x := "x"
	for i := 0; ; i++ {
		y := fmt.Sprintf("y%d", i)
		if r.Owner(y) == r.Owner(x) {
			return x, y
		}
	}
}

// runSnapshotChecker drives one chained writer (PUT x=i; PUT y=i) against
// concurrent ROT{x,y} readers and fails on a snapshot where y is newer
// than x.
func runSnapshotChecker(t *testing.T, lat transport.LatencyModel, pick func(ring.Ring) (string, string)) {
	t.Helper()
	net := transport.NewLocal(lat)
	defer net.Close()
	const parts = 4
	r := ring.New(parts)
	var servers []*Server
	for p := 0; p < parts; p++ {
		s, err := NewServer(Config{DC: 0, Part: p, NumDCs: 1, NumParts: parts}, net)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		servers = append(servers, s)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	x, y := pick(r)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	wg.Add(1)
	go func() {
		defer wg.Done()
		w, err := NewClient(ClientConfig{DC: 0, ID: 1, Ring: r}, net)
		if err != nil {
			errCh <- err
			return
		}
		defer w.Close()
		for i := uint64(1); !stop.Load(); i++ {
			if _, err := w.Put(ctx, x, seqVal(i)); err != nil {
				errCh <- err
				return
			}
			if _, err := w.Put(ctx, y, seqVal(i)); err != nil {
				errCh <- err
				return
			}
		}
	}()

	for rd := 0; rd < 3; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			cli, err := NewClient(ClientConfig{DC: 0, ID: 10 + rd, Ring: r}, net)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			for !stop.Load() {
				kvs, err := cli.ROT(ctx, []string{x, y})
				if err != nil {
					errCh <- err
					return
				}
				xi, yi := seqOf(kvs[0].Value), seqOf(kvs[1].Value)
				if yi > xi {
					errCh <- fmt.Errorf("snapshot violation: x=%d y=%d", xi, yi)
					return
				}
			}
		}(rd)
	}

	time.Sleep(2 * time.Second)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSamePartition is the same-partition variant of the cluster
// checker: both keys on one partition, served by a single LoRotReq. This
// is the configuration that exposed a snapshot violation in the photoalbum
// example.
func TestSnapshotSamePartition(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	runSnapshotChecker(t, transport.LatencyModel{IntraDC: 100 * time.Microsecond, JitterFrac: 0.1}, samePartKeys)
}

// TestSnapshotDistinctPartitions mirrors the cluster-level checker inside
// the package for quick iteration.
func TestSnapshotDistinctPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	runSnapshotChecker(t, transport.LatencyModel{IntraDC: 100 * time.Microsecond, JitterFrac: 0.1},
		func(r ring.Ring) (string, string) {
			x := "x"
			for i := 0; ; i++ {
				y := fmt.Sprintf("y%d", i)
				if r.Owner(y) != r.Owner(x) {
					return x, y
				}
			}
		})
}
