package cclo

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wire"
)

type testDeployment struct {
	net     *transport.Local
	servers []*Server
	ring    ring.Ring
}

func deploy(t *testing.T, dcs, parts int, gc time.Duration) *testDeployment {
	t.Helper()
	d := &testDeployment{
		net:  transport.NewLocal(transport.LatencyModel{}),
		ring: ring.New(parts),
	}
	for dc := 0; dc < dcs; dc++ {
		for p := 0; p < parts; p++ {
			s, err := NewServer(Config{
				DC: dc, Part: p, NumDCs: dcs, NumParts: parts, GCWindow: gc,
			}, d.net)
			if err != nil {
				t.Fatal(err)
			}
			d.servers = append(d.servers, s)
		}
	}
	for _, s := range d.servers {
		s.Start()
	}
	t.Cleanup(func() {
		for _, s := range d.servers {
			s.Close()
		}
		d.net.Close()
	})
	return d
}

func (d *testDeployment) client(t *testing.T, dc, id int) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{DC: dc, ID: id, Ring: d.ring}, d.net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// rawReader issues ROT reads with a fixed ROT id, one partition at a time,
// emulating the asynchrony of Figure 2 where a ROT's read of y arrives
// after causally newer versions were installed.
type rawReader struct {
	node transport.Node
}

func newRawReader(t *testing.T, d *testDeployment, id int) *rawReader {
	t.Helper()
	n, err := d.net.Attach(wire.ClientAddr(0, id), transport.HandlerFunc(
		func(transport.Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return &rawReader{node: n}
}

func (r *rawReader) read(t *testing.T, d *testDeployment, rotID uint64, key string) (string, uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	dst := wire.ServerAddr(0, d.ring.Owner(key))
	resp, err := r.node.Call(ctx, dst, &wire.LoRotReq{RotID: rotID, Keys: []string{key}})
	if err != nil {
		t.Fatal(err)
	}
	kv := resp.(*wire.LoRotResp).Vals[0]
	return string(kv.Value), kv.TS
}

// distinctKeys returns keys on two different partitions of a 2-partition
// ring.
func distinctKeys(r ring.Ring) (x, y string) {
	x = "x"
	for i := 0; ; i++ {
		y = fmt.Sprintf("y%d", i)
		if r.Owner(y) != r.Owner(x) {
			return x, y
		}
	}
}

// TestFigure2Scenario reproduces the paper's Figure 2 deterministically.
// ROT T1 reads x and obtains X0. C2 then overwrites x with X1 and writes
// Y1 with a dependency on X1; the readers check must record T1 in y's
// old-reader record, so T1's late read of y returns Y0, not Y1 — the
// snapshot {X0, Y0} stays causally consistent.
func TestFigure2Scenario(t *testing.T) {
	d := deploy(t, 1, 2, 0)
	ctx := context.Background()
	x, y := distinctKeys(d.ring)

	c2 := d.client(t, 0, 1)
	if _, err := c2.Put(ctx, x, []byte("X0")); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Put(ctx, y, []byte("Y0")); err != nil {
		t.Fatal(err)
	}

	t1 := newRawReader(t, d, 9)
	const rotID = 9<<32 | 1
	if v, _ := t1.read(t, d, rotID, x); v != "X0" {
		t.Fatalf("T1 read x = %q, want X0", v)
	}

	// C2 reads x (to depend on it), writes X1 then Y1.
	if _, err := c2.Get(ctx, x); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Put(ctx, x, []byte("X1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Put(ctx, y, []byte("Y1")); err != nil {
		t.Fatal(err)
	}

	// T1's read of y arrives only now. A naive latest-version read would
	// return Y1 and break the snapshot; the old-reader record prevents it.
	if v, _ := t1.read(t, d, rotID, y); v != "Y0" {
		t.Fatalf("T1 read y = %q, want Y0 (old-reader record must redirect)", v)
	}

	// A fresh ROT is not an old reader and sees the latest values.
	t2 := newRawReader(t, d, 10)
	const rotID2 = 10<<32 | 1
	if v, _ := t2.read(t, d, rotID2, y); v != "Y1" {
		t.Fatalf("fresh ROT read y = %q, want Y1", v)
	}
	if v, _ := t2.read(t, d, rotID2, x); v != "X1" {
		t.Fatalf("fresh ROT read x = %q, want X1", v)
	}
}

// TestOldReaderChainThroughServedRead extends Figure 2: after T1 is served
// the old version of y, a further write z depending on y must also treat
// T1 as an old reader (the old-reader record itself feeds readers checks).
func TestOldReaderChainThroughServedRead(t *testing.T) {
	d := deploy(t, 1, 2, 0)
	ctx := context.Background()
	x, y := distinctKeys(d.ring)
	z := x + "z" // any key; may share a partition with x or y

	c2 := d.client(t, 0, 1)
	c2.Put(ctx, x, []byte("X0"))
	c2.Put(ctx, y, []byte("Y0"))
	c2.Put(ctx, z, []byte("Z0"))

	t1 := newRawReader(t, d, 9)
	const rotID = 9<<32 | 7
	if v, _ := t1.read(t, d, rotID, x); v != "X0" {
		t.Fatal("setup: T1 must read X0")
	}

	c2.Get(ctx, x)
	c2.Put(ctx, x, []byte("X1"))
	c2.Put(ctx, y, []byte("Y1")) // T1 lands in y's old-reader record

	// T1 reads y late and is served Y0.
	if v, _ := t1.read(t, d, rotID, y); v != "Y0" {
		t.Fatalf("T1 read y = %q, want Y0", v)
	}

	// Now a write to z depends on Y1; T1 must not see it either.
	c2.Get(ctx, y)
	c2.Put(ctx, z, []byte("Z1"))
	if v, _ := t1.read(t, d, rotID, z); v != "Z0" {
		t.Fatalf("T1 read z = %q, want Z0 (old-reader status must chain)", v)
	}
}

// TestGCWindowExpiresOldReaders verifies the paper's §5.2 optimization: a
// reader entry older than the GC window is dropped, so a very late read is
// served the (fresher) latest version.
func TestGCWindowExpiresOldReaders(t *testing.T) {
	d := deploy(t, 1, 2, 30*time.Millisecond)
	ctx := context.Background()
	x, y := distinctKeys(d.ring)

	c2 := d.client(t, 0, 1)
	c2.Put(ctx, x, []byte("X0"))
	c2.Put(ctx, y, []byte("Y0"))

	t1 := newRawReader(t, d, 9)
	const rotID = 9<<32 | 1
	t1.read(t, d, rotID, x)

	c2.Get(ctx, x)
	c2.Put(ctx, x, []byte("X1"))
	c2.Put(ctx, y, []byte("Y1"))

	time.Sleep(100 * time.Millisecond) // expire T1's entries
	if v, _ := t1.read(t, d, rotID, y); v != "Y1" {
		t.Fatalf("expired old reader read y = %q, want latest Y1", v)
	}
}

func TestClientDependencyTracking(t *testing.T) {
	d := deploy(t, 1, 2, 0)
	ctx := context.Background()
	c := d.client(t, 0, 1)

	// Writes by another client to read from.
	w := d.client(t, 0, 2)
	for i := 0; i < 4; i++ {
		if _, err := w.Put(ctx, fmt.Sprintf("dep-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	if c.DepCount() != 0 {
		t.Fatalf("fresh client has %d deps", c.DepCount())
	}
	if _, err := c.ROT(ctx, []string{"dep-0", "dep-1", "dep-2"}); err != nil {
		t.Fatal(err)
	}
	if c.DepCount() != 3 {
		t.Fatalf("deps after 3-key ROT = %d, want 3", c.DepCount())
	}
	if _, err := c.ROT(ctx, []string{"dep-3"}); err != nil {
		t.Fatal(err)
	}
	if c.DepCount() != 4 {
		t.Fatalf("deps accumulate: got %d, want 4", c.DepCount())
	}
	// A PUT collapses the context to the write itself.
	if _, err := c.Put(ctx, "mine", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if c.DepCount() != 1 {
		t.Fatalf("deps after PUT = %d, want 1", c.DepCount())
	}
}

func TestReadersCheckStats(t *testing.T) {
	d := deploy(t, 1, 2, 0)
	ctx := context.Background()
	x, y := distinctKeys(d.ring)

	c := d.client(t, 0, 1)
	c.Put(ctx, x, []byte("X0"))

	// A few distinct clients read x, becoming readers.
	for i := 0; i < 5; i++ {
		r := d.client(t, 0, 10+i)
		if _, err := r.ROT(ctx, []string{x}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite x: the 5 readers become old readers. Then write y with a
	// dependency on the new x; its readers check must collect them.
	c.Get(ctx, x)
	c.Put(ctx, x, []byte("X1")) // readers -> old readers
	c.Get(ctx, x)               // depend on X1
	c.Put(ctx, y, []byte("Y1"))

	var total StatsSnapshot
	for _, s := range d.servers {
		snap := s.Stats().Snapshot()
		total.Checks += snap.Checks
		total.IDsDistinct += snap.IDsDistinct
		total.PartitionsAsked += snap.PartitionsAsked
	}
	if total.Checks == 0 {
		t.Fatal("no readers checks recorded")
	}
	if total.IDsDistinct < 5 {
		t.Fatalf("collected %d distinct ids, want ≥ 5 old readers", total.IDsDistinct)
	}
	if total.PartitionsAsked == 0 {
		t.Fatal("no remote partitions interrogated")
	}
}

func TestFilterOnePerClient(t *testing.T) {
	in := map[uint64]orEntry{
		5<<32 | 1: {rotID: 5<<32 | 1, t: 10},
		5<<32 | 3: {rotID: 5<<32 | 3, t: 30},
		6<<32 | 2: {rotID: 6<<32 | 2, t: 20},
	}
	out := filterOnePerClient(in)
	if len(out) != 2 {
		t.Fatalf("filtered to %d entries, want 2 (one per client)", len(out))
	}
	if _, ok := out[5<<32|3]; !ok {
		t.Fatal("must keep the most recent ROT of client 5")
	}
	if _, ok := out[6<<32|2]; !ok {
		t.Fatal("must keep client 6's only ROT")
	}
}

func TestDepCheckBlocksUntilInstalled(t *testing.T) {
	d := deploy(t, 1, 2, 0)
	x, _ := distinctKeys(d.ring)
	owner := wire.ServerAddr(0, d.ring.Owner(x))

	probe, _ := d.net.Attach(wire.ClientAddr(0, 60), transport.HandlerFunc(
		func(transport.Node, wire.From, uint64, wire.Message) {}))
	defer probe.Close()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := probe.Call(ctx, owner, &wire.DepCheckReq{Key: x, TS: 1})
		done <- err
	}()

	select {
	case err := <-done:
		t.Fatalf("dep check returned before install: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	c := d.client(t, 0, 1)
	if _, err := c.Put(context.Background(), x, []byte("v")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dep check never unblocked after install")
	}
}

func TestLWWConvergenceOrder(t *testing.T) {
	s := newLoStore(0, 1, time.Second)
	now := time.Now()
	s.install("k", loVersion{value: []byte("a"), ts: 5, srcDC: 0}, nil, now)
	s.install("k", loVersion{value: []byte("b"), ts: 5, srcDC: 1}, nil, now)
	s.install("k", loVersion{value: []byte("c"), ts: 3, srcDC: 1}, nil, now)
	v, ok := s.latest("k")
	if !ok || string(v.value) != "b" {
		t.Fatalf("latest = %+v, want ts 5 dc 1", v)
	}
	// Same set, different order, same winner.
	s2 := newLoStore(0, 1, time.Second)
	s2.install("k", loVersion{value: []byte("c"), ts: 3, srcDC: 1}, nil, now)
	s2.install("k", loVersion{value: []byte("b"), ts: 5, srcDC: 1}, nil, now)
	s2.install("k", loVersion{value: []byte("a"), ts: 5, srcDC: 0}, nil, now)
	v2, _ := s2.latest("k")
	if string(v2.value) != "b" {
		t.Fatalf("order dependence: latest = %+v", v2)
	}
}

func TestHasVersion(t *testing.T) {
	s := newLoStore(0, 1, time.Second)
	if s.hasVersion("k", 1, 0) {
		t.Fatal("empty store claims version")
	}
	s.install("k", loVersion{ts: 10, srcDC: 1}, nil, time.Now())
	if !s.hasVersion("k", 10, 1) {
		t.Fatal("exact version must hold")
	}
	if s.hasVersion("k", 10, 0) {
		t.Fatal("same timestamp from another DC is a different version")
	}
	if s.hasVersion("k", 5, 1) {
		t.Fatal("never-installed version must fail (exact check, not ≥)")
	}
	if s.hasVersion("k", 11, 1) {
		t.Fatal("hasVersion above latest must fail")
	}
	// A trimmed chain whose oldest retained version is LWW-above the asked
	// identity proves the version was installed and compacted away.
	s2 := newLoStore(2, 1, time.Second)
	now := time.Now()
	for ts := uint64(1); ts <= 5; ts++ {
		s2.install("k", loVersion{ts: ts}, nil, now)
	}
	if !s2.hasVersion("k", 2, 0) {
		t.Fatal("trimmed-past version must count as installed")
	}
}

// TestReadersMoveOnFullChain is the regression test for a subtle bug: once
// a hot key's version chain reached its cap, installs were misclassified as
// "not newest" (the check ran after trimming) and readers were never moved
// to old readers, so readers checks missed them and ROTs could observe
// causally inconsistent snapshots.
func TestReadersMoveOnFullChain(t *testing.T) {
	s := newLoStore(4, 1, time.Minute) // tiny cap
	now := time.Now()
	for ts := uint64(1); ts <= 10; ts++ {
		s.install("k", loVersion{ts: ts}, nil, now)
	}
	// Chain is full (cap 4). A reader reads the latest version...
	if _, ts, _, ok := s.read("k", 42, 100, now); !ok || ts != 10 {
		t.Fatalf("read latest = %d ok=%v", ts, ok)
	}
	// ...and a further install must still move it to old readers.
	s.install("k", loVersion{ts: 11}, nil, now)
	out := make(map[uint64]orEntry)
	s.collectOldReaders("k", 11, now, out)
	if _, ok := out[42]; !ok {
		t.Fatal("reader on a full chain was not moved to old readers on install")
	}
}

func BenchmarkStoreRead(b *testing.B) {
	s := newLoStore(0, 1, time.Minute)
	now := time.Now()
	s.install("k", loVersion{value: make([]byte, 8), ts: 1}, nil, now)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.read("k", uint64(i), uint64(i+2), now)
	}
}

// BenchmarkCollectOldReaders measures the readers-check scan with a
// realistic number of old readers (≈ the per-client linear growth of
// Figure 6 at 256 clients).
func BenchmarkCollectOldReaders(b *testing.B) {
	s := newLoStore(0, 1, time.Minute)
	now := time.Now()
	s.install("k", loVersion{ts: 1}, nil, now)
	for c := uint64(0); c < 256; c++ {
		s.read("k", c<<32|1, c+2, now)
	}
	s.install("k", loVersion{ts: 1000}, nil, now) // readers -> old readers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make(map[uint64]orEntry, 256)
		s.collectOldReaders("k", 1000, now, out)
		if len(out) != 256 {
			b.Fatalf("collected %d", len(out))
		}
	}
}
