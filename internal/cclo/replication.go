package cclo

import (
	"context"
	"time"

	"repro/internal/wire"
)

// loReplicator ships local PUTs — together with their dependency lists and
// collected old readers — to sibling replicas in other DCs. Unlike the
// timestamp-based engine, ordering is enforced by the receiver's dependency
// checks, not by stream sequencing, so each stream keeps a window of
// updates in flight. The per-update payload (deps + old readers) is the
// replication cost Section 5.4 blames for CC-LO's poor multi-DC scaling.
type loReplicator struct {
	s       *Server
	streams []*loStream
}

type loStream struct {
	s      *Server
	dst    wire.Addr
	ch     chan *wire.LoRepUpdate
	sem    chan struct{}   // window of in-flight updates
	ctx    context.Context // cancelled on stop so in-flight calls abort
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}
}

func newLoReplicator(s *Server) *loReplicator {
	r := &loReplicator{s: s}
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		r.streams = append(r.streams, &loStream{
			s:      s,
			dst:    wire.ServerAddr(dc, s.cfg.Part),
			ch:     make(chan *wire.LoRepUpdate, 8192),
			sem:    make(chan struct{}, s.cfg.RepWindow),
			ctx:    ctx,
			cancel: cancel,
			stop:   make(chan struct{}),
			done:   make(chan struct{}),
		})
	}
	return r
}

func (r *loReplicator) start() {
	for _, st := range r.streams {
		go st.run()
	}
}

func (r *loReplicator) stopAll() {
	for _, st := range r.streams {
		close(st.stop)
		st.cancel()
	}
	for _, st := range r.streams {
		<-st.done
	}
}

func (r *loReplicator) enqueue(u *wire.LoRepUpdate) {
	for _, st := range r.streams {
		select {
		case st.ch <- u:
		case <-st.stop:
		}
	}
}

func (st *loStream) run() {
	defer close(st.done)
	seq := uint64(0)
	for {
		select {
		case <-st.stop:
			return
		case u := <-st.ch:
			seq++
			u.Seq = seq
			select {
			case st.sem <- struct{}{}:
			case <-st.stop:
				return
			}
			go func(u *wire.LoRepUpdate) {
				defer func() { <-st.sem }()
				st.deliver(u)
			}(u)
		}
	}
}

// deliver retries the update until acknowledged or the stream stops.
// Launch order preserves the property that an update's same-partition
// dependencies are sent no later than the update itself.
func (st *loStream) deliver(u *wire.LoRepUpdate) {
	for {
		ctx, cancel := context.WithTimeout(st.ctx, st.s.cfg.RepRetryTimeout)
		resp, err := st.s.node.Call(ctx, st.dst, u)
		cancel()
		if err == nil {
			if _, ok := resp.(*wire.LoRepAck); ok {
				return
			}
		}
		if st.ctx.Err() != nil {
			return
		}
		select {
		case <-st.stop:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}
