package cclo

import (
	"context"
	"time"

	"repro/internal/wal"
	"repro/internal/wire"
)

// loReplicator ships local PUTs — together with their dependency lists and
// collected old readers — to sibling replicas in other DCs. Unlike the
// timestamp-based engine, ordering is enforced by the receiver's dependency
// checks, not by stream sequencing, so each stream keeps a window of
// updates in flight. The per-update payload (deps + old readers) is the
// replication cost Section 5.4 blames for CC-LO's poor multi-DC scaling.
//
// Durability: each stream tracks its acknowledged frontier — the highest
// timestamp below which every update has been acked — with a
// wal.CursorTracker (acks complete out of order inside the window) and
// persists it as a replication cursor. A recovering partition re-enqueues
// its recovered local updates above each stream's cursor, so a crash
// between the local fsync and remote delivery no longer strands the tail.
// Window-based streams have no receiver-side sequence cursor, so the
// persisted Seq simply mirrors HighTS (both frontiers coincide).
type loReplicator struct {
	s       *Server
	streams []*loStream
}

type loStream struct {
	s       *Server
	dst     wire.Addr
	dstDC   int
	seq     uint64
	backlog []*wire.LoRepUpdate // recovered-but-unacked tail, sent before ch
	tracker wal.CursorTracker
	ch      chan *wire.LoRepUpdate
	sem     chan struct{}   // window of in-flight updates
	ctx     context.Context // cancelled on stop so in-flight calls abort
	cancel  context.CancelFunc
	stop    chan struct{}
	done    chan struct{}
}

// newLoReplicator builds one stream per remote DC, seeding each with the
// WAL-recovered local updates (timestamp order) its durable cursor says the
// DC has not acknowledged. Re-enqueued updates carry the old readers
// recovered from their persisted reader records (see wal.RecReaders) —
// versions whose readers check collected nobody carry none, exactly as
// their pre-crash enqueue did — and the receiver still merges in its own
// DC's readers check before installing.
func newLoReplicator(s *Server, recovered []*wire.LoRepUpdate) *loReplicator {
	cursors := make(map[int]wal.Cursor)
	if s.cfg.Durable != nil {
		for _, c := range s.cfg.Durable.Cursors() {
			cursors[int(c.DstDC)] = c
		}
	}
	r := &loReplicator{s: s}
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		st := &loStream{
			s:      s,
			dst:    wire.ServerAddr(dc, s.cfg.Part),
			dstDC:  dc,
			ch:     make(chan *wire.LoRepUpdate, 8192),
			sem:    make(chan struct{}, s.cfg.RepWindow),
			ctx:    ctx,
			cancel: cancel,
			stop:   make(chan struct{}),
			done:   make(chan struct{}),
		}
		for _, u := range recovered {
			if u.TS > cursors[dc].HighTS {
				cp := *u
				st.track(cp.TS)
				st.backlog = append(st.backlog, &cp)
			}
		}
		r.streams = append(r.streams, st)
	}
	return r
}

func (r *loReplicator) start() {
	for _, st := range r.streams {
		go st.run()
	}
}

func (r *loReplicator) stopAll() {
	for _, st := range r.streams {
		close(st.stop)
		st.cancel()
	}
	for _, st := range r.streams {
		<-st.done
	}
}

// track registers a local update's timestamp with every stream's
// ack-frontier tracker. It MUST run before the update's WAL append: the
// cursor frontier treats unknown timestamps as acknowledged, so a durable
// update the tracker has not seen could be skipped by the recovery
// re-enqueue if a crash lands between its fsync and its enqueue. A tracked
// update whose put then fails merely pins the frontier (stale cursors are
// safe — recovery re-ships more, receivers dedup).
func (r *loReplicator) track(ts uint64) {
	if r.s.cfg.Durable == nil {
		return
	}
	for _, st := range r.streams {
		st.tracker.Enqueue(ts)
	}
}

func (r *loReplicator) enqueue(u *wire.LoRepUpdate) {
	for _, st := range r.streams {
		// Per-stream copy: run() stamps Seq, and sharing one update across
		// streams would race their stamps.
		cp := *u
		select {
		case st.ch <- &cp:
		case <-st.stop:
		}
	}
}

// track registers ts with the stream's ack-frontier tracker (durable runs
// only; in-memory streams keep no cursors).
func (st *loStream) track(ts uint64) {
	if st.s.cfg.Durable != nil {
		st.tracker.Enqueue(ts)
	}
}

func (st *loStream) run() {
	defer close(st.done)
	for _, u := range st.backlog {
		if !st.launch(u) {
			return
		}
	}
	st.backlog = nil
	for {
		select {
		case <-st.stop:
			return
		case u := <-st.ch:
			if !st.launch(u) {
				return
			}
		}
	}
}

// launch stamps the update's sequence, claims a window slot, and delivers
// in the background. Launch order preserves the property that an update's
// same-partition dependencies are sent no later than the update itself.
func (st *loStream) launch(u *wire.LoRepUpdate) bool {
	st.seq++
	u.Seq = st.seq
	select {
	case st.sem <- struct{}{}:
	case <-st.stop:
		return false
	}
	go func(u *wire.LoRepUpdate) {
		defer func() { <-st.sem }()
		if st.deliver(u) {
			st.ackCursor(u.TS)
		}
	}(u)
	return true
}

// ackCursor folds one acknowledgment into the frontier and persists the
// cursor when it advanced. Cursor write failures are ignored: a stale
// cursor only re-ships an acknowledged suffix on recovery, which receivers
// install idempotently.
func (st *loStream) ackCursor(ts uint64) {
	if st.s.cfg.Durable == nil {
		return
	}
	if high, advanced := st.tracker.Ack(ts); advanced {
		_ = st.s.cfg.Durable.AppendCursor(wal.Cursor{
			DstDC: uint8(st.dstDC), Seq: high, HighTS: high,
		})
	}
}

// deliver retries the update until acknowledged (true) or the stream stops.
func (st *loStream) deliver(u *wire.LoRepUpdate) bool {
	for {
		ctx, cancel := context.WithTimeout(st.ctx, st.s.cfg.RepRetryTimeout)
		resp, err := st.s.node.Call(ctx, st.dst, u)
		cancel()
		if err == nil {
			if _, ok := resp.(*wire.LoRepAck); ok {
				return true
			}
		}
		if st.ctx.Err() != nil {
			return false
		}
		select {
		case <-st.stop:
			return false
		case <-time.After(10 * time.Millisecond):
		}
	}
}
