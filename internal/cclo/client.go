package cclo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is a CC-LO session. It tracks COPS-style nearest dependencies:
// after a PUT the context collapses to that PUT (the new version subsumes
// everything before it); every read adds the read version. The dependency
// list is what PUTs carry and what the readers check walks — its growth
// with reads between writes is the "C2 reads other keys from partitions
// pi" effect of Section 3.
type Client struct {
	dc     int
	id     int
	ring   ring.Ring
	node   transport.Node
	rotSeq atomic.Uint64

	mu     sync.Mutex
	deps   map[string]wire.LoDep // nearest dependencies: key → version identity
	seenTS uint64                // Lamport high-water mark over everything observed
}

// ClientConfig parameterizes a CC-LO client session.
type ClientConfig struct {
	DC   int
	ID   int
	Ring ring.Ring
}

// NewClient attaches a CC-LO client to net.
func NewClient(cfg ClientConfig, net transport.Network) (*Client, error) {
	c := &Client{
		dc:   cfg.DC,
		id:   cfg.ID,
		ring: cfg.Ring,
		deps: make(map[string]wire.LoDep),
	}
	node, err := net.Attach(wire.ClientAddr(cfg.DC, cfg.ID), transport.HandlerFunc(
		func(transport.Node, wire.Addr, uint64, wire.Message) {}))
	if err != nil {
		return nil, err
	}
	c.node = node
	return c, nil
}

// Close detaches the client.
func (c *Client) Close() error { return c.node.Close() }

// Addr returns the client's wire address.
func (c *Client) Addr() wire.Addr { return c.node.Addr() }

// Ping checks liveness of one partition and warms connection-oriented
// transports.
func (c *Client) Ping(ctx context.Context, part int) error {
	resp, err := c.node.Call(ctx, wire.ServerAddr(c.dc, part), &wire.Ping{Nonce: uint64(part)})
	if err != nil {
		return err
	}
	if _, ok := resp.(*wire.Pong); !ok {
		return fmt.Errorf("cclo: ping: unexpected response %T", resp)
	}
	return nil
}

// Warm pings every partition in the client's DC.
func (c *Client) Warm(ctx context.Context) error {
	for p := 0; p < c.ring.Parts(); p++ {
		if err := c.Ping(ctx, p); err != nil {
			return err
		}
	}
	return nil
}

// DepCount returns the current number of nearest dependencies (tests).
func (c *Client) DepCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.deps)
}

func (c *Client) depList() []wire.LoDep {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.LoDep, 0, len(c.deps))
	for _, d := range c.deps {
		out = append(out, d)
	}
	return out
}

// Put installs a new version of key and returns its timestamp. The write
// carries the session's nearest dependencies; afterwards the context is
// just this write.
func (c *Client) Put(ctx context.Context, key string, value []byte) (uint64, error) {
	deps := c.depList()
	owner := wire.ServerAddr(c.dc, c.ring.Owner(key))
	resp, err := c.node.Call(ctx, owner, &wire.LoPutReq{Key: key, Value: value, Deps: deps})
	if err != nil {
		return 0, fmt.Errorf("cclo: put %q: %w", key, err)
	}
	pr, ok := resp.(*wire.LoPutResp)
	if !ok {
		return 0, fmt.Errorf("cclo: put %q: unexpected response %T", key, resp)
	}
	c.mu.Lock()
	clear(c.deps)
	c.deps[key] = wire.LoDep{Key: key, TS: pr.TS, Src: uint8(c.dc)}
	c.seenTS = max(c.seenTS, pr.TS)
	c.mu.Unlock()
	return pr.TS, nil
}

// Get reads one key causally (a one-key ROT).
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	kvs, err := c.ROT(ctx, []string{key})
	if err != nil {
		return nil, err
	}
	return kvs[0].Value, nil
}

// ROT executes CC-LO's one-round read-only transaction: one request to
// each involved partition, no coordinator, no second round, no blocking.
func (c *Client) ROT(ctx context.Context, keys []string) ([]wire.KV, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	rotID := uint64(c.Addr())<<32 | (c.rotSeq.Add(1) & 0xFFFFFFFF)
	groups := c.ring.Group(keys)
	c.mu.Lock()
	seen := c.seenTS
	c.mu.Unlock()

	type result struct {
		vals []wire.KV
		err  error
	}
	ch := make(chan result, len(groups))
	for p, ks := range groups {
		go func(p int, ks []string) {
			resp, err := c.node.Call(ctx, wire.ServerAddr(c.dc, p), &wire.LoRotReq{RotID: rotID, SeenTS: seen, Keys: ks})
			if err != nil {
				ch <- result{err: err}
				return
			}
			rr, ok := resp.(*wire.LoRotResp)
			if !ok {
				ch <- result{err: fmt.Errorf("unexpected response %T", resp)}
				return
			}
			ch <- result{vals: rr.Vals}
		}(p, ks)
	}
	vals := make(map[string]wire.KV, len(keys))
	for range groups {
		r := <-ch
		if r.err != nil {
			return nil, fmt.Errorf("cclo: rot: %w", r.err)
		}
		for _, kv := range r.vals {
			vals[kv.Key] = kv
		}
	}
	// Reads extend the nearest-dependency set and the session's Lamport
	// high-water mark.
	c.mu.Lock()
	for _, kv := range vals {
		if prev, ok := c.deps[kv.Key]; kv.TS > 0 && (!ok || kv.TS > prev.TS || (kv.TS == prev.TS && kv.Src > prev.Src)) {
			c.deps[kv.Key] = wire.LoDep{Key: kv.Key, TS: kv.TS, Src: kv.Src}
		}
		c.seenTS = max(c.seenTS, kv.TS)
	}
	c.mu.Unlock()

	out := make([]wire.KV, len(keys))
	for i, k := range keys {
		if kv, ok := vals[k]; ok {
			out[i] = kv
		} else {
			out[i] = wire.KV{Key: k}
		}
	}
	return out, nil
}
