package cclo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is a CC-LO session. It tracks COPS-style nearest dependencies:
// after a PUT the context collapses to that PUT (the new version subsumes
// everything before it); every read adds the read version. The dependency
// list is what PUTs carry and what the readers check walks — its growth
// with reads between writes is the "C2 reads other keys from partitions
// pi" effect of Section 3.
type Client struct {
	dc     int
	id     int
	ring   ring.Ring
	node   transport.Node
	rotSeq atomic.Uint64

	// fenceRetries counts whole-ROT retries forced by the restart-epoch
	// fence (bench surfaces it; steady state is zero — the retry round is
	// paid only when a ROT actually straddles a crash recovery).
	fenceRetries atomic.Uint64

	// busyRetries counts operations re-sent after the server shed them
	// with wire.Busy (admission control); benchmarks report the sum.
	busyRetries atomic.Uint64

	// legGate, when non-nil, runs before each ROT leg is sent (tests use it
	// to hold one leg while a partition is crashed and restarted, making
	// the straddle deterministic).
	legGate func(part int)

	mu     sync.Mutex
	deps   map[string]wire.LoDep // nearest dependencies: key → version identity
	seenTS uint64                // Lamport high-water mark over everything observed
	epochs []uint64              // newest known restart epoch per partition
}

// ClientConfig parameterizes a CC-LO client session. ID must be unique
// among live clients of the same DC regardless of how the client attaches:
// it seeds the high bits of every rot id, which the readers check records
// server-side, so two live clients sharing (DC, ID) would conflate their
// ROTs' reader records.
type ClientConfig struct {
	DC   int
	ID   int
	Ring ring.Ring
}

// NewClient attaches a CC-LO client to net at its own address.
func NewClient(cfg ClientConfig, net transport.Network) (*Client, error) {
	return newClient(cfg, func(h transport.Handler) (transport.Node, error) {
		return net.Attach(wire.ClientAddr(cfg.DC, cfg.ID), h)
	})
}

// NewSessionClient runs the client as logical session id on mux, sharing
// the mux's connection pool with any number of sibling sessions. cfg.ID
// must still be unique per DC (rot identity); callers typically allocate
// it from the same space as plain client addresses.
func NewSessionClient(cfg ClientConfig, mux transport.Mux, id wire.SessionID) (*Client, error) {
	return newClient(cfg, func(h transport.Handler) (transport.Node, error) {
		return mux.Session(id, h)
	})
}

func newClient(cfg ClientConfig, attach func(transport.Handler) (transport.Node, error)) (*Client, error) {
	c := &Client{
		dc:   cfg.DC,
		id:   cfg.ID,
		ring: cfg.Ring,
		deps: make(map[string]wire.LoDep),
	}
	node, err := attach(transport.HandlerFunc(
		func(transport.Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		return nil, err
	}
	c.node = node
	return c, nil
}

// Close detaches the client.
func (c *Client) Close() error { return c.node.Close() }

// Addr returns the client's wire address.
func (c *Client) Addr() wire.Addr { return c.node.Addr() }

// Ping checks liveness of one partition and warms connection-oriented
// transports.
func (c *Client) Ping(ctx context.Context, part int) error {
	resp, err := transport.CallRetry(ctx, c.node, wire.ServerAddr(c.dc, part), &wire.Ping{Nonce: uint64(part)}, c.countRetry)
	if err != nil {
		return err
	}
	if _, ok := resp.(*wire.Pong); !ok {
		return fmt.Errorf("cclo: ping: unexpected response %T", resp)
	}
	return nil
}

// Warm pings every partition in the client's DC.
func (c *Client) Warm(ctx context.Context) error {
	for p := 0; p < c.ring.Parts(); p++ {
		if err := c.Ping(ctx, p); err != nil {
			return err
		}
	}
	return nil
}

// DepCount returns the current number of nearest dependencies (tests).
func (c *Client) DepCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.deps)
}

func (c *Client) depList() []wire.LoDep {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.LoDep, 0, len(c.deps))
	for _, d := range c.deps {
		out = append(out, d)
	}
	return out
}

// Put installs a new version of key and returns its timestamp. The write
// carries the session's nearest dependencies; afterwards the context is
// just this write.
func (c *Client) Put(ctx context.Context, key string, value []byte) (uint64, error) {
	deps := c.depList()
	owner := wire.ServerAddr(c.dc, c.ring.Owner(key))
	resp, err := transport.CallRetry(ctx, c.node, owner, &wire.LoPutReq{Key: key, Value: value, Deps: deps}, c.countRetry)
	if err != nil {
		return 0, fmt.Errorf("cclo: put %q: %w", key, err)
	}
	pr, ok := resp.(*wire.LoPutResp)
	if !ok {
		return 0, fmt.Errorf("cclo: put %q: unexpected response %T", key, resp)
	}
	c.mu.Lock()
	clear(c.deps)
	c.deps[key] = wire.LoDep{Key: key, TS: pr.TS, Src: uint8(c.dc)}
	c.seenTS = max(c.seenTS, pr.TS)
	c.mu.Unlock()
	return pr.TS, nil
}

// Get reads one key causally (a one-key ROT).
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	kvs, err := c.ROT(ctx, []string{key})
	if err != nil {
		return nil, err
	}
	return kvs[0].Value, nil
}

// FenceRetries returns how many whole-ROT retries the restart-epoch fence
// has forced on this session.
func (c *Client) FenceRetries() uint64 { return c.fenceRetries.Load() }

// BusyRetries returns how many times this client's operations were shed
// with Busy and retried.
func (c *Client) BusyRetries() uint64 { return c.busyRetries.Load() }

func (c *Client) countRetry() { c.busyRetries.Add(1) }

// maxFenceRetries bounds epoch-fence retries per ROT: each retry means a
// partition finished a crash recovery while the ROT was in flight, so more
// than a few in a row is a cluster in a restart loop, not a race to mask.
const maxFenceRetries = 3

// ROT executes CC-LO's one-round read-only transaction: one request to
// each involved partition, no coordinator, no second round, no blocking.
//
// Restart-epoch fence: each leg's response carries the serving partition's
// epoch vector. If some leg returns a NEWER epoch for partition p than p's
// own leg reported, p completed a crash recovery while this ROT was in
// flight — the reader records p kept for this ROT's already-served legs
// (its rewind protection against concurrent dependent writes) died with
// the crash, and the legs served after the restart may already reflect
// writes that skipped them. The whole ROT aborts and retries under a fresh
// id against the new epoch: one extra round, paid only in the
// crash-recovery corner case, so steady-state reads stay one round
// (latency optimality intact). Single-partition ROTs are served atomically
// by one handler and cannot straddle anything; they skip the check.
func (c *Client) ROT(ctx context.Context, keys []string) ([]wire.KV, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	groups := c.ring.Group(keys)
	for attempt := 0; ; attempt++ {
		vals, legEpochs, err := c.rotOnce(ctx, groups, len(keys))
		if err != nil {
			return nil, err
		}
		if !fenceTripped(legEpochs) {
			// Reads extend the nearest-dependency set and the session's
			// Lamport high-water mark.
			c.mu.Lock()
			for _, kv := range vals {
				if prev, ok := c.deps[kv.Key]; kv.TS > 0 && (!ok || kv.TS > prev.TS || (kv.TS == prev.TS && kv.Src > prev.Src)) {
					c.deps[kv.Key] = wire.LoDep{Key: kv.Key, TS: kv.TS, Src: kv.Src}
				}
				c.seenTS = max(c.seenTS, kv.TS)
			}
			c.mu.Unlock()
			out := make([]wire.KV, len(keys))
			for i, k := range keys {
				if kv, ok := vals[k]; ok {
					out[i] = kv
				} else {
					out[i] = wire.KV{Key: k}
				}
			}
			return out, nil
		}
		if attempt >= maxFenceRetries {
			return nil, fmt.Errorf("cclo: rot: epoch fence tripped %d times: partitions kept restarting", attempt+1)
		}
		c.fenceRetries.Add(1)
	}
}

// rotOnce runs one ROT attempt: a fresh rot id, one leg per partition, all
// in parallel. It returns the merged reads and each leg's epoch vector
// (nil entries for partitions outside the ROT). Session epoch knowledge is
// merged in even when the attempt will be fenced — the retry runs against
// the newest epochs.
func (c *Client) rotOnce(ctx context.Context, groups map[int][]string, nkeys int) (map[string]wire.KV, map[int][]uint64, error) {
	// Rot identity comes from (DC, ID), not the attached address: sessions
	// multiplexed over one endpoint share an address, but each still needs
	// globally distinct rot ids for its server-side reader records.
	rotID := uint64(wire.ClientAddr(c.dc, c.id))<<32 | (c.rotSeq.Add(1) & 0xFFFFFFFF)
	c.mu.Lock()
	seen := c.seenTS
	known := append([]uint64(nil), c.epochs...)
	c.mu.Unlock()

	type result struct {
		part   int
		vals   []wire.KV
		epochs []uint64
		err    error
	}
	ch := make(chan result, len(groups))
	for p, ks := range groups {
		go func(p int, ks []string) {
			if c.legGate != nil {
				c.legGate(p)
			}
			resp, err := transport.CallRetry(ctx, c.node, wire.ServerAddr(c.dc, p), &wire.LoRotReq{RotID: rotID, SeenTS: seen, Epochs: known, Keys: ks}, c.countRetry)
			if err != nil {
				ch <- result{part: p, err: err}
				return
			}
			rr, ok := resp.(*wire.LoRotResp)
			if !ok {
				ch <- result{part: p, err: fmt.Errorf("unexpected response %T", resp)}
				return
			}
			ch <- result{part: p, vals: rr.Vals, epochs: rr.Epochs}
		}(p, ks)
	}
	vals := make(map[string]wire.KV, nkeys)
	legEpochs := make(map[int][]uint64, len(groups))
	var firstErr error
	for range groups {
		r := <-ch
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cclo: rot: %w", r.err)
			}
			continue
		}
		legEpochs[r.part] = r.epochs
		for _, kv := range r.vals {
			vals[kv.Key] = kv
		}
	}
	c.mergeEpochs(legEpochs)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return vals, legEpochs, nil
}

// mergeEpochs folds every leg's vector into the session's known epochs.
func (c *Client) mergeEpochs(legEpochs map[int][]uint64) {
	c.mu.Lock()
	for _, vec := range legEpochs {
		if len(vec) > len(c.epochs) {
			c.epochs = append(c.epochs, make([]uint64, len(vec)-len(c.epochs))...)
		}
		for i, e := range vec {
			if e > c.epochs[i] {
				c.epochs[i] = e
			}
		}
	}
	c.mu.Unlock()
}

// fenceTripped reports whether any leg observed a newer restart epoch for
// a contacted partition than that partition's own leg reported — the
// signature of a ROT that straddled a crash recovery. Comparisons run only
// over contacted partitions: a restart elsewhere cannot have destroyed
// records about THIS rot id, because reads record only where they land.
func fenceTripped(legEpochs map[int][]uint64) bool {
	if len(legEpochs) < 2 {
		return false
	}
	for p, own := range legEpochs {
		if p >= len(own) {
			continue
		}
		self := own[p]
		for q, other := range legEpochs {
			if q == p || p >= len(other) {
				continue
			}
			if other[p] > self {
				return true
			}
		}
	}
	return false
}
