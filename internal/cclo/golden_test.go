package cclo

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// refLoStore is the pre-refactor CC-LO store logic, vendored verbatim
// (minus locking and sharding): the golden oracle for the reader-tracking
// and invisibility semantics — reads that rewind past marked versions,
// reader recording, the readers → oldReaders move on install, dup-merge of
// re-collected marks, collectOldReaders' three sources, GC sweeps, and the
// trimmed-chain fallbacks. The trace uses a synthetic clock, so every
// sweep and expiry fires identically in both implementations.
type refLoVersion struct {
	value     []byte
	ts        uint64
	srcDC     uint8
	invisible map[uint64]orEntry
}

func (v *refLoVersion) before(o *refLoVersion) bool {
	if v.ts != o.ts {
		return v.ts < o.ts
	}
	return v.srcDC < o.srcDC
}

type refLoKey struct {
	versions          []refLoVersion
	trimmed           bool
	readers           map[uint64]orEntry
	oldReaders        map[uint64]orEntry
	readersSweepAt    time.Time
	oldReadersSweepAt time.Time
}

type refLoStore struct {
	m           map[string]*refLoKey
	maxVersions int
	gcWindow    time.Duration
	approxReads uint64
}

func newRefLoStore(maxVersions int, gcWindow time.Duration) *refLoStore {
	return &refLoStore{m: make(map[string]*refLoKey), maxVersions: maxVersions, gcWindow: gcWindow}
}

func (s *refLoStore) expired(e orEntry, now time.Time) bool {
	return now.Sub(e.addedAt) > s.gcWindow
}

func (s *refLoStore) sweepReaders(m map[uint64]orEntry, at time.Time, now time.Time) time.Time {
	if len(m) < softReaderBound || now.Before(at) {
		return at
	}
	gcSweep(m, s.gcWindow, now)
	return now.Add(s.gcWindow / 4)
}

func (s *refLoStore) read(key string, rotID uint64, t uint64, now time.Time) (val []byte, ts uint64, src uint8, ok bool) {
	lk := s.m[key]
	if lk == nil || len(lk.versions) == 0 {
		if lk == nil {
			lk = &refLoKey{}
			s.m[key] = lk
		}
		if lk.readers == nil {
			lk.readers = make(map[uint64]orEntry)
		}
		lk.readersSweepAt = s.sweepReaders(lk.readers, lk.readersSweepAt, now)
		lk.readers[rotID] = orEntry{rotID: rotID, t: t, vts: 0, addedAt: now}
		return nil, 0, 0, false
	}
	for i := len(lk.versions) - 1; i >= 0; i-- {
		v := &lk.versions[i]
		if e, hidden := v.invisible[rotID]; hidden {
			if !s.expired(e, now) {
				continue
			}
			delete(v.invisible, rotID)
		}
		if i == len(lk.versions)-1 {
			if lk.readers == nil {
				lk.readers = make(map[uint64]orEntry)
			}
			lk.readersSweepAt = s.sweepReaders(lk.readers, lk.readersSweepAt, now)
			lk.readers[rotID] = orEntry{rotID: rotID, t: t, vts: v.ts, addedAt: now}
		}
		return v.value, v.ts, v.srcDC, true
	}
	if lk.trimmed {
		s.approxReads++
		return lk.versions[0].value, lk.versions[0].ts, lk.versions[0].srcDC, true
	}
	return nil, 0, 0, false
}

func (s *refLoStore) collectOldReaders(key string, depTS uint64, now time.Time, out map[uint64]orEntry) {
	lk := s.m[key]
	if lk == nil {
		return
	}
	gcSweep(lk.oldReaders, s.gcWindow, now)
	for id, e := range lk.oldReaders {
		if e.vts < depTS {
			merge(out, id, e)
		}
	}
	latestTS := uint64(0)
	if len(lk.versions) > 0 {
		latestTS = lk.versions[len(lk.versions)-1].ts
	}
	if latestTS < depTS {
		gcSweep(lk.readers, s.gcWindow, now)
		for id, e := range lk.readers {
			merge(out, id, e)
		}
	} else {
		lk.readersSweepAt = s.sweepReaders(lk.readers, lk.readersSweepAt, now)
	}
	for i := range lk.versions {
		inv := lk.versions[i].invisible
		for id, e := range inv {
			if s.expired(e, now) {
				delete(inv, id)
				continue
			}
			merge(out, id, e)
		}
	}
}

func (s *refLoStore) install(key string, v refLoVersion, collected map[uint64]orEntry, now time.Time) bool {
	lk := s.m[key]
	if lk == nil {
		lk = &refLoKey{}
		s.m[key] = lk
	}
	i := len(lk.versions)
	for i > 0 && v.before(&lk.versions[i-1]) {
		i--
	}
	dup := i > 0 && lk.versions[i-1].ts == v.ts && lk.versions[i-1].srcDC == v.srcDC
	if dup && len(collected) > 0 {
		ex := &lk.versions[i-1]
		if ex.invisible == nil {
			ex.invisible = make(map[uint64]orEntry, len(collected))
		}
		for id, e := range collected {
			e.addedAt = now
			merge(ex.invisible, id, e)
		}
	}
	newest := false
	if !dup {
		if len(collected) > 0 {
			v.invisible = make(map[uint64]orEntry, len(collected))
			for id, e := range collected {
				e.addedAt = now
				v.invisible[id] = e
			}
		}
		lk.versions = append(lk.versions, refLoVersion{})
		copy(lk.versions[i+1:], lk.versions[i:])
		lk.versions[i] = v
		newest = i == len(lk.versions)-1
		if len(lk.versions) > s.maxVersions {
			drop := len(lk.versions) - s.maxVersions
			lk.versions = append(lk.versions[:0:0], lk.versions[drop:]...)
			lk.trimmed = true
		}
	}
	if newest && len(lk.readers) > 0 {
		if lk.oldReaders == nil {
			lk.oldReaders = make(map[uint64]orEntry, len(lk.readers))
		} else {
			lk.oldReadersSweepAt = s.sweepReaders(lk.oldReaders, lk.oldReadersSweepAt, now)
		}
		for id, e := range lk.readers {
			e.addedAt = now
			merge(lk.oldReaders, id, e)
		}
		clear(lk.readers)
	}
	return newest
}

func (s *refLoStore) latest(key string) (refLoVersion, bool) {
	lk := s.m[key]
	if lk == nil || len(lk.versions) == 0 {
		return refLoVersion{}, false
	}
	return lk.versions[len(lk.versions)-1], true
}

func (s *refLoStore) hasVersion(key string, ts uint64, src uint8) bool {
	lk := s.m[key]
	if lk == nil || len(lk.versions) == 0 {
		return false
	}
	want := refLoVersion{ts: ts, srcDC: src}
	if lk.trimmed && want.before(&lk.versions[0]) {
		return true
	}
	for i := len(lk.versions) - 1; i >= 0 && lk.versions[i].ts >= ts; i-- {
		if lk.versions[i].ts == ts && lk.versions[i].srcDC == src {
			return true
		}
	}
	return false
}

func (s *refLoStore) readerSizes(key string) (readers, oldReaders int) {
	if lk := s.m[key]; lk != nil {
		return len(lk.readers), len(lk.oldReaders)
	}
	return 0, 0
}

// sameCollected compares two collected-old-reader maps on the fields that
// drive invisibility (addedAt is a wall-clock both sides share anyway).
func sameCollected(a, b map[uint64]orEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for id, ea := range a {
		eb, ok := b[id]
		if !ok || ea.t != eb.t || ea.vts != eb.vts {
			return false
		}
	}
	return true
}

// TestGoldenTraceMatchesPreRefactorStore replays a deterministic
// synthetic-clock trace — ROT reads, installs with freshly collected old
// readers, dup re-deliveries, dependency probes, GC-window expiries —
// against the engine-backed loStore and the vendored pre-refactor logic,
// requiring identical answers and identical reader-map footprints at every
// step.
func TestGoldenTraceMatchesPreRefactorStore(t *testing.T) {
	const maxVersions = 4
	const gcWindow = 40 * time.Millisecond
	r := rand.New(rand.NewSource(20180413))
	eng := newLoStore(maxVersions, 1, gcWindow)
	ref := newRefLoStore(maxVersions, gcWindow)

	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	t0 := time.Now()
	var clock time.Duration // synthetic time; both sides see the same now
	nextTS := uint64(1)
	for op := 0; op < 6000; op++ {
		// Advance time; occasional jumps push entries past the GC window so
		// expiry paths (read unhide, sweeps, collect drops) execute.
		clock += time.Duration(r.Intn(64)) * time.Microsecond
		if r.Intn(200) == 0 {
			clock += gcWindow + time.Millisecond
		}
		now := t0.Add(clock)
		key := keys[r.Intn(len(keys))]
		rotID := uint64(r.Intn(64) + 1)
		switch r.Intn(6) {
		case 0, 1: // ROT read
			gv, gts, gsrc, gok := eng.read(key, rotID, nextTS, now)
			wv, wts, wsrc, wok := ref.read(key, rotID, nextTS, now)
			if gok != wok || gts != wts || gsrc != wsrc || !bytes.Equal(gv, wv) {
				t.Fatalf("op %d: read(%s, rot %d) = (%q,%d,%d,%v), golden (%q,%d,%d,%v)",
					op, key, rotID, gv, gts, gsrc, gok, wv, wts, wsrc, wok)
			}
			nextTS++
		case 2, 3: // install, with old readers collected from a dependency key
			depKey := keys[r.Intn(len(keys))]
			depTS := uint64(r.Intn(int(nextTS)) + 1)
			gout := make(map[uint64]orEntry)
			wout := make(map[uint64]orEntry)
			eng.collectOldReaders(depKey, depTS, now, gout)
			ref.collectOldReaders(depKey, depTS, now, wout)
			if !sameCollected(gout, wout) {
				t.Fatalf("op %d: collectOldReaders(%s, %d) = %v, golden %v", op, depKey, depTS, gout, wout)
			}
			ts := nextTS
			if r.Intn(4) == 0 && ts > 1 {
				ts = uint64(r.Intn(int(ts)) + 1) // re-delivery: may hit a dup
			} else {
				nextTS++
			}
			val := []byte(fmt.Sprintf("%s@%d", key, ts))
			src := uint8(r.Intn(2))
			gnew := eng.install(key, loVersion{value: val, ts: ts, srcDC: src}, gout, now)
			wnew := ref.install(key, refLoVersion{value: val, ts: ts, srcDC: src}, wout, now)
			if gnew != wnew {
				t.Fatalf("op %d: install(%s, ts=%d src=%d) newest=%v, golden %v", op, key, ts, src, gnew, wnew)
			}
		case 4: // dependency probe
			ts := uint64(r.Intn(int(nextTS)) + 1)
			if got, want := eng.hasVersion(key, ts, 0), ref.hasVersion(key, ts, 0); got != want {
				t.Fatalf("op %d: hasVersion(%s, %d) = %v, golden %v", op, key, ts, got, want)
			}
		case 5: // latest + reader-map footprint
			gv, gok := eng.latest(key)
			wv, wok := ref.latest(key)
			if gok != wok || (gok && (gv.ts != wv.ts || !bytes.Equal(gv.value, wv.value))) {
				t.Fatalf("op %d: latest(%s) = (%+v, %v), golden (%+v, %v)", op, key, gv, gok, wv, wok)
			}
			gr, gor := eng.readerSizes(key)
			wr, wor := ref.readerSizes(key)
			if gr != wr || gor != wor {
				t.Fatalf("op %d: readerSizes(%s) = (%d, %d), golden (%d, %d)", op, key, gr, gor, wr, wor)
			}
		}
	}
	if got, want := eng.approxReads.Load(), ref.approxReads; got != want {
		t.Fatalf("approxReads = %d, golden %d: trimmed-fallback accounting diverged", got, want)
	}
}
