package cclo

import (
	"context"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wire"
)

// TestRecoverAfterSnapshotKeepsDeps is the regression test for the
// recover() gap the ROADMAP named: a local update that was still unacked
// by a remote DC when its log record was folded into a snapshot used to
// re-enqueue with an EMPTY dependency list (the snapshot serializer
// dropped Deps), so the receiving DC's dependency check was silently
// skipped for exactly the updates a crash made most fragile. The store now
// keeps each local version's dependency list and the snapshot re-emits it;
// this test fails on the old behavior.
func TestRecoverAfterSnapshotKeepsDeps(t *testing.T) {
	dir := t.TempDir()
	open := func() *wal.Log {
		l, err := wal.Open(wal.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	net := transport.NewLocal(transport.LatencyModel{})
	defer net.Close()

	// A 2-DC config whose remote DC is never attached: replication cannot
	// be acked, so the durable cursor stays at zero and recovery must
	// re-enqueue everything.
	cfg := Config{DC: 0, Part: 0, NumDCs: 2, NumParts: 1}
	log1 := open()
	cfg.Durable = log1
	srv1, err := NewServer(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	cli, err := NewClient(ClientConfig{DC: 0, ID: 1, Ring: ring.New(1)}, net)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ts1, err := cli.Put(ctx, "k1", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	// The session's second put carries k1@ts1 as its nearest dependency.
	if _, err := cli.Put(ctx, "k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	// Snapshot: both records are compacted out of the segments and now
	// survive only as snapshot entries. Then crash (no clean final fsync).
	if err := log1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	if err := log1.Crash(); err != nil {
		t.Fatal(err)
	}

	log2 := open()
	defer log2.Close()
	cfg.Durable = log2
	srv2, err := NewServer(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	// Inspect the recovered backlog before Start launches the streams
	// (Close requires Start; the backlog is private to the streams after).
	var k2 *wire.LoRepUpdate
	for _, st := range srv2.repl.streams {
		for _, u := range st.backlog {
			if u.Key == "k2" {
				k2 = u
			}
		}
	}
	srv2.Start()
	defer srv2.Close()
	if k2 == nil {
		t.Fatal("k2 was not re-enqueued for the unacked remote DC")
	}
	if len(k2.Deps) == 0 {
		t.Fatal("snapshot-compacted record lost its dependency list: the re-enqueued update would skip dependency checks at the receiver")
	}
	if d := k2.Deps[0]; d.Key != "k1" || d.TS != ts1 || d.Src != 0 {
		t.Fatalf("re-enqueued deps = %+v, want k1@%d from DC0", k2.Deps, ts1)
	}
}
