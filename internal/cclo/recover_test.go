package cclo

import (
	"context"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wire"
)

// TestRecoverAfterSnapshotKeepsDeps is the regression test for the
// recover() gap the ROADMAP named: a local update that was still unacked
// by a remote DC when its log record was folded into a snapshot used to
// re-enqueue with an EMPTY dependency list (the snapshot serializer
// dropped Deps), so the receiving DC's dependency check was silently
// skipped for exactly the updates a crash made most fragile. The store now
// keeps each local version's dependency list and the snapshot re-emits it;
// this test fails on the old behavior.
func TestRecoverAfterSnapshotKeepsDeps(t *testing.T) {
	dir := t.TempDir()
	open := func() *wal.Log {
		l, err := wal.Open(wal.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	net := transport.NewLocal(transport.LatencyModel{})
	defer net.Close()

	// A 2-DC config whose remote DC is never attached: replication cannot
	// be acked, so the durable cursor stays at zero and recovery must
	// re-enqueue everything.
	cfg := Config{DC: 0, Part: 0, NumDCs: 2, NumParts: 1}
	log1 := open()
	cfg.Durable = log1
	srv1, err := NewServer(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	cli, err := NewClient(ClientConfig{DC: 0, ID: 1, Ring: ring.New(1)}, net)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ts1, err := cli.Put(ctx, "k1", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	// The session's second put carries k1@ts1 as its nearest dependency.
	if _, err := cli.Put(ctx, "k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	// Snapshot: both records are compacted out of the segments and now
	// survive only as snapshot entries. Then crash (no clean final fsync).
	if err := log1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	if err := log1.Crash(); err != nil {
		t.Fatal(err)
	}

	log2 := open()
	defer log2.Close()
	cfg.Durable = log2
	srv2, err := NewServer(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	// Inspect the recovered backlog before Start launches the streams
	// (Close requires Start; the backlog is private to the streams after).
	var k2 *wire.LoRepUpdate
	for _, st := range srv2.repl.streams {
		for _, u := range st.backlog {
			if u.Key == "k2" {
				k2 = u
			}
		}
	}
	srv2.Start()
	defer srv2.Close()
	if k2 == nil {
		t.Fatal("k2 was not re-enqueued for the unacked remote DC")
	}
	if len(k2.Deps) == 0 {
		t.Fatal("snapshot-compacted record lost its dependency list: the re-enqueued update would skip dependency checks at the receiver")
	}
	if d := k2.Deps[0]; d.Key != "k1" || d.TS != ts1 || d.Src != 0 {
		t.Fatalf("re-enqueued deps = %+v, want k1@%d from DC0", k2.Deps, ts1)
	}
}

// TestSnapshotKeepsMarksOnNonLatestVersions closes the gap PR 5 named: the
// snapshot serializer only emitted each key's LATEST version and its marks,
// so compaction dropped both the invisibility marks on non-latest versions
// and the older versions a rewound ROT must be served. After a snapshot +
// crash, an in-window ROT hidden from every newer version of a key used to
// get "not found" (its rewind target was gone) — the Figure 1 anomaly
// reappearing across a recovery. Marked keys now emit their whole retained
// chain plus per-version reader records; this test fails on the old
// serializer.
func TestSnapshotKeepsMarksOnNonLatestVersions(t *testing.T) {
	dir := t.TempDir()
	open := func() *wal.Log {
		l, err := wal.Open(wal.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	net := transport.NewLocal(transport.LatencyModel{})
	defer net.Close()

	// Long GC window so the marks are still in-window across the crash.
	cfg := Config{DC: 0, Part: 0, NumDCs: 1, NumParts: 1, GCWindow: 30 * time.Second}
	log1 := open()
	cfg.Durable = log1
	srv1, err := NewServer(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()

	// A ROT read k@ts1; two dependent writes superseded it, each marked
	// invisible to the ROT by its readers check. ts1 is the one version the
	// ROT can consistently be served, and it is NOT the latest.
	const rot = uint64(77)
	now := time.Now()
	marked := map[uint64]orEntry{rot: {rotID: rot, t: 5}}
	srv1.store.install("k", loVersion{value: []byte("v1"), ts: 1, srcDC: 0}, nil, now)
	srv1.store.install("k", loVersion{value: []byte("v2"), ts: 2, srcDC: 0}, marked, now)
	srv1.store.install("k", loVersion{value: []byte("v3"), ts: 3, srcDC: 0}, marked, now)

	// Compact everything into a snapshot, then crash.
	if err := log1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	if err := log1.Crash(); err != nil {
		t.Fatal(err)
	}

	log2 := open()
	defer log2.Close()
	cfg.Durable = log2
	srv2, err := NewServer(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Start()
	defer srv2.Close()

	// The recovered chain must hold all three versions with the marks back
	// on v2 and v3, so the straddling ROT is still rewound to v1.
	val, ts, _, ok := srv2.store.read("k", rot, 6, time.Now())
	if !ok {
		t.Fatal("rewound ROT got 'not found' after snapshot compaction: its rewind target was dropped")
	}
	if string(val) != "v1" || ts != 1 {
		t.Fatalf("rewound ROT read %q@%d, want v1@1: marks on non-latest versions were lost", val, ts)
	}
	// A fresh ROT still sees the latest.
	if val, _, _, ok := srv2.store.read("k", 999, 7, time.Now()); !ok || string(val) != "v3" {
		t.Fatalf("fresh ROT read %q, want v3", val)
	}
}
