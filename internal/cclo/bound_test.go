package cclo

import (
	"testing"
	"time"
)

// mapSizes reads the reader-map sizes of one key under the shard lock.
func mapSizes(s *loStore, key string) (readers, oldReaders int) {
	return s.readerSizes(key)
}

// TestHotKeyReadersBounded: a hot dependency key under a read-heavy,
// install-free workload used to grow its readers map without bound — only
// negative (missing-key) reads size-triggered a sweep. The clock is
// synthetic, so the test is fully deterministic: 10k distinct ROTs read
// the key at 10 reads/ms against a 5 ms GC window, and the map must stay
// near the sweep bound instead of reaching 10k.
func TestHotKeyReadersBounded(t *testing.T) {
	s := newLoStore(4, 1, 5*time.Millisecond)
	t0 := time.Now()
	s.install("hot", loVersion{value: []byte("v"), ts: 1, srcDC: 0}, nil, t0)
	for i := 0; i < 10000; i++ {
		now := t0.Add(time.Duration(i) * 100 * time.Microsecond)
		s.read("hot", uint64(i+1), uint64(i+1), now)
	}
	readers, _ := mapSizes(s, "hot")
	// In-window entries: 5ms × 10/ms = 50; the sweep triggers at
	// softReaderBound, so the map can float up to the bound plus one
	// window's worth of live entries.
	if readers > softReaderBound+64 {
		t.Fatalf("readers map grew to %d entries on a hot key (bound %d): sweep never fired", readers, softReaderBound)
	}
}

// TestOldReadersSweptOnInstall: installs move current readers into
// oldReaders; with nothing ever depending on the key no readers check runs
// and the old code never swept the map. 60 rounds of (10 readers, one
// install) against a 5 ms window must not retain all 600 entries.
func TestOldReadersSweptOnInstall(t *testing.T) {
	s := newLoStore(4, 1, 5*time.Millisecond)
	t0 := time.Now()
	s.install("churn", loVersion{value: []byte("v"), ts: 1, srcDC: 0}, nil, t0)
	id := uint64(1)
	for round := 0; round < 60; round++ {
		now := t0.Add(time.Duration(round) * 2 * time.Millisecond)
		for i := 0; i < 10; i++ {
			s.read("churn", id, id, now)
			id++
		}
		s.install("churn", loVersion{value: []byte("v"), ts: uint64(round + 2), srcDC: 0}, nil, now)
	}
	_, old := mapSizes(s, "churn")
	if old > softReaderBound+64 {
		t.Fatalf("oldReaders map grew to %d entries with no readers checks (bound %d): install-path sweep missing", old, softReaderBound)
	}
}

// TestProbeHeavyKeySweptOnCollect: a dependency key whose latest version
// is current never takes the collect path's stale-latest branch, so its
// reader map used to ride only on read-path sweeps. The collect path must
// bound it too (satellite: probe-only keys on the collectOldReaders path).
func TestProbeHeavyKeySweptOnCollect(t *testing.T) {
	s := newLoStore(4, 1, 5*time.Millisecond)
	t0 := time.Now()
	s.install("dep", loVersion{value: []byte("v"), ts: 100, srcDC: 0}, nil, t0)
	// Pile up readers below the read-path sweep trigger... then age them out
	// and let a readers check (latest 100 ≥ depTS 50: not collected) sweep.
	for i := 0; i < softReaderBound; i++ {
		s.read("dep", uint64(i+1), uint64(i+1), t0)
	}
	collected := make(map[uint64]orEntry)
	s.collectOldReaders("dep", 50, t0.Add(50*time.Millisecond), collected)
	if len(collected) != 0 {
		t.Fatalf("collected %d readers for an already-satisfied dependency", len(collected))
	}
	readers, _ := mapSizes(s, "dep")
	if readers != 0 {
		t.Fatalf("readers map holds %d expired entries after a collect pass", readers)
	}
}

// TestAllInvisibleAtCapacityIsNotFound: the trimmed-chain read fallback
// must key on whether versions were actually dropped, not on chain
// length. A chain that merely GREW to capacity with every version
// invisible to a probing ROT answers "not found" (the ROT predates the
// first version); only after a real trim may the store approximate with
// the oldest retained version.
func TestAllInvisibleAtCapacityIsNotFound(t *testing.T) {
	const rot, cap = uint64(7), 4
	s := newLoStore(cap, 1, time.Minute)
	t0 := time.Now()
	marked := map[uint64]orEntry{rot: {rotID: rot, t: 1}}
	for i := 1; i <= cap; i++ { // exactly at capacity, never trimmed
		s.install("k", loVersion{value: []byte{byte(i)}, ts: uint64(i), srcDC: 0}, marked, t0)
	}
	if _, _, _, ok := s.read("k", rot, 99, t0); ok {
		t.Fatal("at-capacity untrimmed chain served a version invisible to the probing ROT")
	}
	if s.hasVersion("k", 0, 0) {
		t.Fatal("hasVersion claimed an uninstalled pre-chain version on an untrimmed chain")
	}
	// One more install trims the oldest; now the fallback (and the trimmed
	// dependency-check shortcut) are legitimate.
	s.install("k", loVersion{value: []byte{cap + 1}, ts: cap + 1, srcDC: 0}, marked, t0)
	if _, _, _, ok := s.read("k", rot, 100, t0); !ok {
		t.Fatal("trimmed chain refused the oldest-retained fallback")
	}
	if !s.hasVersion("k", 1, 0) {
		t.Fatal("hasVersion denied a genuinely trimmed-away version")
	}
}

// TestExpiredMarkUnhidesNewVersion pins the GC-window contract the
// ReaderGCWindow knob exposes: an invisibility mark past the window no
// longer hides the version from the marked ROT (and is dropped).
func TestExpiredMarkUnhidesNewVersion(t *testing.T) {
	const rot = uint64(42)
	s := newLoStore(4, 1, 10*time.Millisecond)
	t0 := time.Now()
	s.install("k", loVersion{value: []byte("v1"), ts: 1, srcDC: 0}, nil, t0)
	s.install("k", loVersion{value: []byte("v2"), ts: 2, srcDC: 0},
		map[uint64]orEntry{rot: {rotID: rot, t: 1}}, t0)

	if val, _, _, ok := s.read("k", rot, 10, t0.Add(time.Millisecond)); !ok || string(val) != "v1" {
		t.Fatalf("in-window read got %q, want the rewind to v1", val)
	}
	if val, _, _, ok := s.read("k", rot, 11, t0.Add(20*time.Millisecond)); !ok || string(val) != "v2" {
		t.Fatalf("post-window read got %q, want v2: an expired reader entry must not keep hiding new versions", val)
	}
}
