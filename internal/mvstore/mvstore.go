// Package mvstore implements the per-partition multi-version storage engine
// used by the timestamp-based protocols (Contrarian, Cure).
//
// Each key holds a short chain of versions totally ordered by (TS, SrcDC) —
// the last-writer-wins rule of Section 2.2 that guarantees convergence.
// Reads select the freshest version whose dependency vector is entry-wise ≤
// a snapshot vector, which is exactly the visibility rule of Section 4.
//
// Chains are capped: once a chain exceeds its cap the oldest versions are
// discarded. A snapshot read that would have needed a discarded version
// falls back to the oldest retained one and the store counts the event, so
// benchmarks can verify the approximation never matters at the GSS lags the
// protocols sustain (it does not; see mvstore tests and EXPERIMENTS.md).
package mvstore

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/vclock"
)

// Version is one immutable version of an item.
type Version struct {
	Value []byte
	TS    uint64 // timestamp assigned at the source DC; DV[SrcDC] == TS
	SrcDC uint8
	DV    vclock.Vec // dependency vector, one entry per DC
}

// Before reports whether v precedes o in the total last-writer-wins order.
func (v *Version) Before(o *Version) bool {
	if v.TS != o.TS {
		return v.TS < o.TS
	}
	return v.SrcDC < o.SrcDC
}

const nShards = 64

// Store is a sharded multi-version key-value map. All methods are safe for
// concurrent use.
type Store struct {
	shards      [nShards]shard
	maxVersions int
	seed        maphash.Seed

	approxReads atomic.Uint64 // snapshot reads served past a trimmed chain
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*chain
}

type chain struct {
	versions []Version // ascending by (TS, SrcDC)
	trimmed  bool      // true once old versions have been discarded
}

// DefaultMaxVersions caps per-key chains. The GSS lags by roughly one
// stabilization interval (5 ms), so even a key written continuously needs
// only (write rate × lag) retained versions; 64 is far above that at our
// scales.
const DefaultMaxVersions = 64

// New returns an empty store keeping at most maxVersions versions per key
// (0 means DefaultMaxVersions).
func New(maxVersions int) *Store {
	if maxVersions <= 0 {
		maxVersions = DefaultMaxVersions
	}
	s := &Store{maxVersions: maxVersions, seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*chain)
	}
	return s
}

func (s *Store) shard(key string) *shard {
	return &s.shards[maphash.String(s.seed, key)%nShards]
}

// ApproxReads returns how many snapshot reads were answered with the oldest
// retained version because the exact version had been trimmed.
func (s *Store) ApproxReads() uint64 { return s.approxReads.Load() }

// Install inserts version v of key, keeping the chain ordered and capped.
// Duplicate (TS, SrcDC) installs are idempotent. It returns true if v is
// now the newest version of key.
func (s *Store) Install(key string, v Version) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c := sh.m[key]
	if c == nil {
		c = &chain{}
		sh.m[key] = c
	}
	// Find insertion point from the tail: installs are usually the newest.
	i := len(c.versions)
	for i > 0 && v.Before(&c.versions[i-1]) {
		i--
	}
	if i > 0 && c.versions[i-1].TS == v.TS && c.versions[i-1].SrcDC == v.SrcDC {
		return i == len(c.versions) // duplicate
	}
	c.versions = append(c.versions, Version{})
	copy(c.versions[i+1:], c.versions[i:])
	c.versions[i] = v
	// Decide "newest" before trimming shortens the slice.
	newest := i == len(c.versions)-1
	if len(c.versions) > s.maxVersions {
		drop := len(c.versions) - s.maxVersions
		c.versions = append(c.versions[:0:0], c.versions[drop:]...)
		c.trimmed = true
	}
	return newest
}

// ReadLatest returns the newest version of key.
func (s *Store) ReadLatest(key string) (Version, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c := sh.m[key]
	if c == nil || len(c.versions) == 0 {
		return Version{}, false
	}
	return c.versions[len(c.versions)-1], true
}

// ReadAtSnapshot returns the freshest version of key whose dependency
// vector is entry-wise ≤ sv. If the key has no version inside the snapshot
// it returns false — the key does not exist yet in this snapshot.
func (s *Store) ReadAtSnapshot(key string, sv vclock.Vec) (Version, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c := sh.m[key]
	if c == nil || len(c.versions) == 0 {
		return Version{}, false
	}
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].DV.LEQ(sv) {
			return c.versions[i], true
		}
	}
	if c.trimmed {
		// The exact version was discarded; serve the oldest retained one
		// rather than blocking. Counted so experiments can prove this is
		// vanishingly rare.
		s.approxReads.Add(1)
		return c.versions[0], true
	}
	return Version{}, false
}

// Keys returns the number of keys present.
func (s *Store) Keys() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// ForEachLatest calls fn with every key's newest version. Used by tests to
// check replica convergence; fn must not call back into the store.
func (s *Store) ForEachLatest(fn func(key string, v Version)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, c := range sh.m {
			if len(c.versions) > 0 {
				fn(k, c.versions[len(c.versions)-1])
			}
		}
		sh.mu.RUnlock()
	}
}

// ChainLen returns the number of retained versions of key.
func (s *Store) ChainLen(key string) int {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if c := sh.m[key]; c != nil {
		return len(c.versions)
	}
	return 0
}
