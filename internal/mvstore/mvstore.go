// Package mvstore implements the per-partition multi-version storage used
// by the timestamp-based protocols (Contrarian, Cure). It is a thin adapter
// over the shared engine in internal/store: version chains, sharding,
// trimming, and lock-free reads live there; this package contributes the
// dependency-vector payload and the snapshot-visibility rule.
//
// Each key holds a short chain of versions totally ordered by (TS, SrcDC) —
// the last-writer-wins rule of Section 2.2 that guarantees convergence.
// Reads select the freshest version whose dependency vector is entry-wise ≤
// a snapshot vector, which is exactly the visibility rule of Section 4.
//
// Chains are capped: once a chain exceeds its cap the oldest versions are
// discarded. A snapshot read that would have needed a discarded version
// falls back to the oldest retained one and the store counts the event, so
// benchmarks can verify the approximation never matters at the GSS lags the
// protocols sustain (it does not; see mvstore tests and EXPERIMENTS.md).
package mvstore

import (
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/vclock"
)

// Version is one immutable version of an item.
type Version struct {
	Value []byte
	TS    uint64 // timestamp assigned at the source DC; DV[SrcDC] == TS
	SrcDC uint8
	DV    vclock.Vec // dependency vector, one entry per DC
}

// Before reports whether v precedes o in the total last-writer-wins order.
func (v *Version) Before(o *Version) bool {
	if v.TS != o.TS {
		return v.TS < o.TS
	}
	return v.SrcDC < o.SrcDC
}

// Store is a sharded multi-version key-value map. All methods are safe for
// concurrent use; reads and iteration are lock-free (see internal/store).
type Store struct {
	eng *store.Engine[vclock.Vec, struct{}]

	approxReads atomic.Uint64 // snapshot reads served past a trimmed chain
}

// DefaultMaxVersions caps per-key chains; see store.DefaultMaxVersions.
const DefaultMaxVersions = store.DefaultMaxVersions

// New returns an empty store keeping at most maxVersions versions per key
// (0 means DefaultMaxVersions) with the default shard count.
func New(maxVersions int) *Store { return NewSharded(maxVersions, 0) }

// NewSharded is New with an explicit shard count (0 = auto from
// GOMAXPROCS).
func NewSharded(maxVersions, shards int) *Store {
	return &Store{eng: store.New[vclock.Vec, struct{}](maxVersions, shards)}
}

func toEngine(v Version) store.Version[vclock.Vec] {
	return store.Version[vclock.Vec]{Value: v.Value, TS: v.TS, Src: v.SrcDC, Extra: v.DV}
}

func fromEngine(ev *store.Version[vclock.Vec]) Version {
	return Version{Value: ev.Value, TS: ev.TS, SrcDC: ev.Src, DV: ev.Extra}
}

// ApproxReads returns how many snapshot reads were answered with the oldest
// retained version because the exact version had been trimmed.
func (s *Store) ApproxReads() uint64 { return s.approxReads.Load() }

// Register exposes the underlying engine's occupancy gauges plus the
// approximate-read counter under the given registry.
func (s *Store) Register(r *metrics.Registry, labels ...metrics.Label) {
	s.eng.Register(r, labels...)
	r.CounterFunc("kv_store_approx_reads_total",
		"Snapshot reads served with the oldest retained version because the exact one was trimmed.",
		func() float64 { return float64(s.approxReads.Load()) }, labels...)
}

// Install inserts version v of key, keeping the chain ordered and capped.
// Duplicate (TS, SrcDC) installs are idempotent. It returns true if v is
// now the newest version of key.
func (s *Store) Install(key string, v Version) bool {
	return s.eng.Install(key, toEngine(v))
}

// ReadLatest returns the newest version of key. Lock-free.
func (s *Store) ReadLatest(key string) (Version, bool) {
	ev := s.eng.Latest(key)
	if ev == nil {
		return Version{}, false
	}
	return fromEngine(ev), true
}

// ReadAtSnapshot returns the freshest version of key whose dependency
// vector is entry-wise ≤ sv. If the key has no version inside the snapshot
// it returns false — the key does not exist yet in this snapshot. Lock-free.
func (s *Store) ReadAtSnapshot(key string, sv vclock.Vec) (Version, bool) {
	ref := s.eng.Ref(key)
	// Fast path: the newest version is usually inside the snapshot (the GSS
	// lags writes by only a stabilization interval), and checking it through
	// the cached latest pointer skips the chain-header load.
	if v := ref.Latest(); v != nil && v.Extra.LEQ(sv) {
		return fromEngine(v), true
	}
	c := ref.View()
	if c.Len() == 0 {
		return Version{}, false
	}
	for i := len(c.Versions) - 1; i >= 0; i-- {
		if c.Versions[i].Extra.LEQ(sv) {
			return fromEngine(&c.Versions[i]), true
		}
	}
	if c.Trimmed {
		// The exact version was discarded; serve the oldest retained one
		// rather than blocking. Counted so experiments can prove this is
		// vanishingly rare.
		s.approxReads.Add(1)
		return fromEngine(&c.Versions[0]), true
	}
	return Version{}, false
}

// Keys returns the number of keys present.
func (s *Store) Keys() int { return s.eng.Keys() }

// ForEachLatest calls fn with every key's newest version. Iteration is
// lock-free over immutable chain snapshots, so fn may block (e.g. on disk
// I/O during WAL snapshot emission) without stalling writers, and may call
// back into the store.
func (s *Store) ForEachLatest(fn func(key string, v Version)) {
	s.eng.ForEach(func(key string, c *store.Chain[vclock.Vec]) bool {
		fn(key, fromEngine(c.Latest()))
		return true
	})
}

// ChainLen returns the number of retained versions of key.
func (s *Store) ChainLen(key string) int { return s.eng.View(key).Len() }
