package mvstore

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vclock"
)

// refStore is the pre-refactor store logic, vendored verbatim (minus
// locking and sharding, which do not affect answers): the golden oracle the
// engine-backed adapter must agree with on every operation of a recorded
// trace. If a refactor of internal/store shifts install ordering, trim
// accounting, or the snapshot-visibility rule, this test names the first
// diverging operation.
type refStore struct {
	m           map[string]*refChain
	maxVersions int
	approxReads uint64
}

type refChain struct {
	versions []Version
	trimmed  bool
}

func newRefStore(maxVersions int) *refStore {
	return &refStore{m: make(map[string]*refChain), maxVersions: maxVersions}
}

func (s *refStore) install(key string, v Version) bool {
	c := s.m[key]
	if c == nil {
		c = &refChain{}
		s.m[key] = c
	}
	i := len(c.versions)
	for i > 0 && v.Before(&c.versions[i-1]) {
		i--
	}
	if i > 0 && c.versions[i-1].TS == v.TS && c.versions[i-1].SrcDC == v.SrcDC {
		return i == len(c.versions)
	}
	c.versions = append(c.versions, Version{})
	copy(c.versions[i+1:], c.versions[i:])
	c.versions[i] = v
	newest := i == len(c.versions)-1
	if len(c.versions) > s.maxVersions {
		drop := len(c.versions) - s.maxVersions
		c.versions = append(c.versions[:0:0], c.versions[drop:]...)
		c.trimmed = true
	}
	return newest
}

func (s *refStore) readLatest(key string) (Version, bool) {
	c := s.m[key]
	if c == nil || len(c.versions) == 0 {
		return Version{}, false
	}
	return c.versions[len(c.versions)-1], true
}

func (s *refStore) readAtSnapshot(key string, sv vclock.Vec) (Version, bool) {
	c := s.m[key]
	if c == nil || len(c.versions) == 0 {
		return Version{}, false
	}
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].DV.LEQ(sv) {
			return c.versions[i], true
		}
	}
	if c.trimmed {
		s.approxReads++
		return c.versions[0], true
	}
	return Version{}, false
}

func (s *refStore) chainLen(key string) int {
	if c := s.m[key]; c != nil {
		return len(c.versions)
	}
	return 0
}

func sameVersion(a, b Version) bool {
	if a.TS != b.TS || a.SrcDC != b.SrcDC || string(a.Value) != string(b.Value) || len(a.DV) != len(b.DV) {
		return false
	}
	for i := range a.DV {
		if a.DV[i] != b.DV[i] {
			return false
		}
	}
	return true
}

// TestGoldenTraceMatchesPreRefactorStore replays a deterministic recorded
// op trace — out-of-order installs, duplicates, tie-breaks, trims, snapshot
// reads on random vectors — against both the engine-backed store and the
// vendored pre-refactor logic, and requires identical answers operation by
// operation.
func TestGoldenTraceMatchesPreRefactorStore(t *testing.T) {
	const maxVersions = 4
	r := rand.New(rand.NewSource(20180413)) // the paper's arXiv date: fixed trace
	eng := New(maxVersions)
	ref := newRefStore(maxVersions)

	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	randVec := func() vclock.Vec {
		return vclock.Vec{uint64(r.Intn(64)), uint64(r.Intn(64))}
	}
	for op := 0; op < 8000; op++ {
		key := keys[r.Intn(len(keys))]
		switch r.Intn(5) {
		case 0, 1: // install: small TS range forces dups, ties, reordering
			ts := uint64(r.Intn(48) + 1)
			v := Version{
				Value: []byte(fmt.Sprintf("%s@%d", key, ts)),
				TS:    ts,
				SrcDC: uint8(r.Intn(3)),
				DV:    vclock.Vec{ts, uint64(r.Intn(int(ts) + 1))},
			}
			got, want := eng.Install(key, v), ref.install(key, v)
			if got != want {
				t.Fatalf("op %d: Install(%s, ts=%d src=%d) newest=%v, golden says %v", op, key, v.TS, v.SrcDC, got, want)
			}
		case 2:
			gv, gok := eng.ReadLatest(key)
			wv, wok := ref.readLatest(key)
			if gok != wok || (gok && !sameVersion(gv, wv)) {
				t.Fatalf("op %d: ReadLatest(%s) = (%+v, %v), golden (%+v, %v)", op, key, gv, gok, wv, wok)
			}
		case 3:
			sv := randVec()
			gv, gok := eng.ReadAtSnapshot(key, sv)
			wv, wok := ref.readAtSnapshot(key, sv)
			if gok != wok || (gok && !sameVersion(gv, wv)) {
				t.Fatalf("op %d: ReadAtSnapshot(%s, %v) = (%+v, %v), golden (%+v, %v)", op, key, sv, gv, gok, wv, wok)
			}
		case 4:
			if got, want := eng.ChainLen(key), ref.chainLen(key); got != want {
				t.Fatalf("op %d: ChainLen(%s) = %d, golden %d", op, key, got, want)
			}
		}
	}
	if got, want := eng.Keys(), len(ref.m); got != want {
		t.Fatalf("Keys() = %d, golden %d", got, want)
	}
	if got, want := eng.ApproxReads(), ref.approxReads; got != want {
		t.Fatalf("ApproxReads() = %d, golden %d: trimmed-fallback accounting diverged", got, want)
	}
	// Final sweep: every key's full visible state agrees (latest + the
	// snapshot answer at every vector in the trace's range).
	for _, key := range keys {
		for x := 0; x < 64; x += 7 {
			for y := 0; y < 64; y += 7 {
				sv := vclock.Vec{uint64(x), uint64(y)}
				gv, gok := eng.ReadAtSnapshot(key, sv)
				wv, wok := ref.readAtSnapshot(key, sv)
				if gok != wok || (gok && !sameVersion(gv, wv)) {
					t.Fatalf("final sweep: ReadAtSnapshot(%s, %v) = (%+v, %v), golden (%+v, %v)", key, sv, gv, gok, wv, wok)
				}
			}
		}
	}
}
