package mvstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func v(ts uint64, dc uint8, dv ...uint64) Version {
	return Version{Value: []byte{byte(ts)}, TS: ts, SrcDC: dc, DV: vclock.Vec(dv)}
}

func TestInstallAndReadLatest(t *testing.T) {
	s := New(0)
	if _, ok := s.ReadLatest("x"); ok {
		t.Fatal("empty store should miss")
	}
	if !s.Install("x", v(10, 0, 10, 0)) {
		t.Fatal("first install should be newest")
	}
	if !s.Install("x", v(20, 0, 20, 0)) {
		t.Fatal("newer install should be newest")
	}
	if s.Install("x", v(15, 0, 15, 0)) {
		t.Fatal("out-of-order install must not report newest")
	}
	got, ok := s.ReadLatest("x")
	if !ok || got.TS != 20 {
		t.Fatalf("latest = %+v ok=%v, want TS=20", got, ok)
	}
	if s.ChainLen("x") != 3 {
		t.Fatalf("chain len = %d, want 3", s.ChainLen("x"))
	}
}

func TestInstallIdempotent(t *testing.T) {
	s := New(0)
	s.Install("x", v(10, 1, 0, 10))
	s.Install("x", v(10, 1, 0, 10))
	if s.ChainLen("x") != 1 {
		t.Fatalf("duplicate install grew chain: %d", s.ChainLen("x"))
	}
}

func TestLWWTieBreakByDC(t *testing.T) {
	s := New(0)
	s.Install("x", v(10, 1, 0, 10))
	s.Install("x", v(10, 0, 10, 0))
	got, _ := s.ReadLatest("x")
	if got.SrcDC != 1 {
		t.Fatalf("tie must be won by higher DC id, got DC %d", got.SrcDC)
	}
}

func TestReadAtSnapshot(t *testing.T) {
	s := New(0)
	s.Install("x", v(10, 0, 10, 0))
	s.Install("x", v(20, 0, 20, 0))
	s.Install("x", v(30, 0, 30, 5)) // depends on remote ts 5

	got, ok := s.ReadAtSnapshot("x", vclock.Vec{25, 100})
	if !ok || got.TS != 20 {
		t.Fatalf("snapshot [25 100]: got %+v ok=%v, want TS=20", got, ok)
	}
	got, ok = s.ReadAtSnapshot("x", vclock.Vec{30, 4})
	if !ok || got.TS != 20 {
		t.Fatalf("snapshot [30 4] must exclude version depending on remote 5: got TS=%d", got.TS)
	}
	got, ok = s.ReadAtSnapshot("x", vclock.Vec{30, 5})
	if !ok || got.TS != 30 {
		t.Fatalf("snapshot [30 5]: got %+v, want TS=30", got)
	}
	if _, ok = s.ReadAtSnapshot("x", vclock.Vec{5, 0}); ok {
		t.Fatal("snapshot below all versions must miss (key not yet created)")
	}
	if _, ok = s.ReadAtSnapshot("nope", vclock.Vec{99, 99}); ok {
		t.Fatal("missing key must miss")
	}
}

func TestTrimmingAndApproxReads(t *testing.T) {
	s := New(4)
	for ts := uint64(1); ts <= 10; ts++ {
		s.Install("x", v(ts, 0, ts, 0))
	}
	if s.ChainLen("x") != 4 {
		t.Fatalf("chain len = %d, want cap 4", s.ChainLen("x"))
	}
	// Snapshot below the retained window: falls back to oldest retained.
	got, ok := s.ReadAtSnapshot("x", vclock.Vec{2, 0})
	if !ok || got.TS != 7 {
		t.Fatalf("trimmed read: got %+v ok=%v, want oldest retained TS=7", got, ok)
	}
	if s.ApproxReads() != 1 {
		t.Fatalf("approxReads = %d, want 1", s.ApproxReads())
	}
}

func TestKeysAndForEachLatest(t *testing.T) {
	s := New(0)
	for i := 0; i < 100; i++ {
		s.Install(fmt.Sprintf("k%d", i), v(uint64(i+1), 0, uint64(i+1), 0))
	}
	if s.Keys() != 100 {
		t.Fatalf("Keys = %d, want 100", s.Keys())
	}
	seen := make(map[string]uint64)
	s.ForEachLatest(func(k string, ver Version) { seen[k] = ver.TS })
	if len(seen) != 100 || seen["k42"] != 43 {
		t.Fatalf("ForEachLatest wrong: len=%d k42=%d", len(seen), seen["k42"])
	}
}

// Property: applying the same set of versions in any order converges to the
// same newest version per key (last-writer-wins convergence, §2.2).
func TestQuickConvergenceOrderIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		versions := make([]Version, n)
		for i := range versions {
			// (TS, SrcDC) uniquely identifies a version in the real system,
			// so derive the rest of the version from that identity.
			ts, dc := uint64(r.Intn(8)+1), uint8(r.Intn(3))
			versions[i] = v(ts, dc, ts+uint64(dc))
		}
		apply := func(perm []int) map[string]Version {
			s := New(0)
			for _, i := range perm {
				s.Install("k", versions[i])
			}
			out := make(map[string]Version)
			s.ForEachLatest(func(k string, ver Version) { out[k] = ver })
			return out
		}
		p1 := r.Perm(n)
		p2 := r.Perm(n)
		return reflect.DeepEqual(apply(p1), apply(p2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a snapshot read never returns a version outside the snapshot
// (unless the chain was trimmed, which we exclude here by keeping chains
// short).
func TestQuickSnapshotContainment(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(0)
		for i := 0; i < 20; i++ {
			ts := uint64(r.Intn(50) + 1)
			rem := uint64(r.Intn(50))
			s.Install("k", v(ts, 0, ts, rem))
		}
		sv := vclock.Vec{uint64(r.Intn(60)), uint64(r.Intn(60))}
		got, ok := s.ReadAtSnapshot("k", sv)
		if !ok {
			return true
		}
		return got.DV.LEQ(sv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInstallRead(t *testing.T) {
	s := New(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 500; i++ {
				key := fmt.Sprintf("k%d", i%17)
				s.Install(key, v(uint64(i*8+w), uint8(w%2), uint64(i*8+w), 0))
				s.ReadLatest(key)
				s.ReadAtSnapshot(key, vclock.Vec{uint64(i * 4), 100})
			}
		}(w)
	}
	wg.Wait()
	// Chains must remain sorted: latest is the max TS ever written to k0.
	got, ok := s.ReadLatest("k0")
	if !ok || got.TS == 0 {
		t.Fatalf("k0 missing after concurrent writes: %+v %v", got, ok)
	}
}

func BenchmarkInstall(b *testing.B) {
	s := New(0)
	dv := vclock.Vec{0, 0}
	val := make([]byte, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := uint64(i + 1)
		dv[0] = ts
		s.Install(fmt.Sprintf("k%d", i%4096), Version{Value: val, TS: ts, DV: dv})
	}
}

func BenchmarkReadAtSnapshot(b *testing.B) {
	s := New(0)
	for i := 0; i < 4096; i++ {
		ts := uint64(i + 1)
		s.Install(fmt.Sprintf("k%d", i), Version{Value: make([]byte, 8), TS: ts, DV: vclock.Vec{ts, 0}})
	}
	sv := vclock.Vec{1 << 62, 1 << 62}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ReadAtSnapshot(fmt.Sprintf("k%d", i%4096), sv)
	}
}
