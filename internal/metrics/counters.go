package metrics

import "sync/atomic"

// Counter is a lock-free monotonically increasing event counter. The zero
// value is ready to use. Transport hot paths (internal/transport) embed
// these, so both methods must stay allocation-free.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous level (e.g. a queue depth) that also
// tracks its high-water mark. The zero value is ready to use.
type Gauge struct {
	v  atomic.Int64
	hw atomic.Int64
}

// Add moves the gauge by d (negative to decrement) and returns the new
// level, updating the high-water mark when the level rises.
func (g *Gauge) Add(d int64) int64 {
	n := g.v.Add(d)
	if d > 0 {
		for {
			old := g.hw.Load()
			if n <= old || g.hw.CompareAndSwap(old, n) {
				break
			}
		}
	}
	return n
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HighWater returns the maximum level ever observed by Add.
func (g *Gauge) HighWater() int64 { return g.hw.Load() }
