package metrics

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Add(3)
	c.Add(4)
	if got := c.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
}

func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-3)
	g.Add(2)
	if got := g.Load(); got != 4 {
		t.Fatalf("Load = %d, want 4", got)
	}
	if hw := g.HighWater(); hw != 5 {
		t.Fatalf("HighWater = %d, want 5", hw)
	}
	g.Add(10)
	if hw := g.HighWater(); hw != 14 {
		t.Fatalf("HighWater = %d, want 14", hw)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 0 {
		t.Fatalf("Load = %d, want 0", got)
	}
	if hw := g.HighWater(); hw < 1 || hw > 8 {
		t.Fatalf("HighWater = %d, want within [1, 8]", hw)
	}
}
