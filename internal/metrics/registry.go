package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a named index over the package's lock-free instruments
// (Counter, Gauge, StaticHist) plus callback series, rendered on demand in
// the Prometheus text exposition format v0.0.4. It exists so the same
// counters the benchmark tables read become scrapeable on a live server.
//
// Registration takes a pointer to an instrument that already lives in a
// stats struct (transport.Stats, wal.Stats, ...): the hot Record/Add paths
// are untouched — no locks, no indirection — and the registry only reads
// the atomics at scrape time. The registry's own mutex guards the name
// index, which only registration and scraping touch.
//
// Labels are "label-lite": a fixed label set is attached at registration
// (dc/partition/family/op suffixes), there is no dynamic label lookup on
// the hot path. Series sharing a metric name must share help text and kind
// and are emitted under one HELP/TYPE block, as the format requires.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// Label is one name="value" pair attached to a series at registration.
type Label struct{ Name, Value string }

type seriesKind uint8

const (
	kindCounter seriesKind = iota
	kindGauge
	kindHistogram
)

func (k seriesKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered time series: exactly one of the value sources is
// set. fn-backed series let composites (replication lag, store occupancy,
// aggregate views) be computed at scrape time.
type series struct {
	labels  string // pre-rendered `{a="b",c="d"}`, or ""
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *StaticHist
}

type family struct {
	name, help string
	kind       seriesKind
	series     []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers c under name with the given labels.
func (r *Registry) Counter(name, help string, c *Counter, labels ...Label) {
	r.add(name, help, kindCounter, &series{counter: c}, labels)
}

// CounterFunc registers a counter whose value is computed at scrape time
// (aggregates over per-partition stats, derived totals). fn must be safe
// for concurrent use and monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindCounter, &series{fn: fn}, labels)
}

// Gauge registers g under name with the given labels.
func (r *Registry) Gauge(name, help string, g *Gauge, labels ...Label) {
	r.add(name, help, kindGauge, &series{gauge: g}, labels)
}

// GaugeFunc registers a gauge computed at scrape time (queue ages,
// replication lag, uptime). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindGauge, &series{fn: fn}, labels)
}

// Histogram registers h under name with the given labels. The exposition
// renders it as a Prometheus histogram in seconds (observations are
// nanoseconds, per StaticHist.Record), with power-of-two bucket bounds.
func (r *Registry) Histogram(name, help string, h *StaticHist, labels ...Label) {
	r.add(name, help, kindHistogram, &series{hist: h}, labels)
}

func (r *Registry) add(name, help string, kind seriesKind, s *series, labels []Label) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind, kind))
	}
	if f.help != help {
		panic(fmt.Sprintf("metrics: %s registered with two help strings", name))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("metrics: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// validName checks the Prometheus metric name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// renderLabels pre-renders a sorted, escaped `{k="v",...}` suffix so the
// scrape path is a plain string concatenation.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("metrics: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// histBounds are the bucket upper bounds, in nanoseconds, that histograms
// expose to Prometheus: every power of two from ~1µs to ~17s. The internal
// StaticHist keeps 32 sub-buckets per power of two; the exposition folds
// them into these 25 coarse cumulative buckets, which is plenty for
// latency dashboards and keeps the scrape small.
var histBounds = func() []uint64 {
	var b []uint64
	for k := 10; k <= 34; k++ {
		b = append(b, 1<<uint(k))
	}
	return b
}()

// cumulative folds the histogram's fine buckets into cumulative counts at
// each bound (counting observations strictly below the bound — within one
// fine bucket of the ≤ semantics Prometheus specifies, i.e. the histogram's
// native resolution) and returns the total observation count as summed over
// the buckets. Using the bucket sum — not the count field — as the total
// keeps the exposition internally consistent when a scrape races Record:
// the +Inf bucket must equal the _count sample.
func (h *StaticHist) cumulative(bounds []uint64) (counts []uint64, total uint64) {
	counts = make([]uint64, len(bounds))
	cuts := make([]int, len(bounds))
	for i, b := range bounds {
		cuts[i] = bucketIndex(b)
	}
	var cum uint64
	j := 0
	for i := 0; i < numBuckets; i++ {
		for j < len(cuts) && i == cuts[j] {
			counts[j] = cum
			j++
		}
		cum += h.buckets[i].Load()
	}
	for ; j < len(cuts); j++ {
		counts[j] = cum
	}
	return counts, cum
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format v0.0.4, families in registration order, series in
// registration order within a family. Durations (histograms) are exposed
// in seconds per the Prometheus base-unit convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.fams {
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.series {
			switch {
			case s.hist != nil:
				writeHist(&b, f.name, s)
			case s.counter != nil:
				writeSample(&b, f.name, "", s.labels, formatUint(s.counter.Load()))
			case s.gauge != nil:
				writeSample(&b, f.name, "", s.labels, strconv.FormatInt(s.gauge.Load(), 10))
			default:
				writeSample(&b, f.name, "", s.labels, formatFloat(s.fn()))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHist renders one histogram series: cumulative _bucket samples with
// seconds-valued le bounds, then _sum (seconds) and _count.
func writeHist(b *strings.Builder, name string, s *series) {
	counts, total := s.hist.cumulative(histBounds)
	for i, c := range counts {
		le := formatFloat(float64(histBounds[i]) / 1e9)
		writeSample(b, name, "_bucket", mergeLabels(s.labels, `le="`+le+`"`), formatUint(c))
	}
	writeSample(b, name, "_bucket", mergeLabels(s.labels, `le="+Inf"`), formatUint(total))
	writeSample(b, name, "_sum", s.labels, formatFloat(float64(s.hist.sum.Load())/1e9))
	writeSample(b, name, "_count", s.labels, formatUint(total))
}

func writeSample(b *strings.Builder, name, suffix, labels, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// mergeLabels splices an extra pre-rendered pair into a rendered label set.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
