package metrics

import (
	"bufio"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestExpositionGolden pins the hand-rolled Prometheus text encoder byte
// for byte: HELP/TYPE lines, label rendering and ordering, counter/gauge
// value formats, histogram bucket bounds in seconds, cumulative bucket
// counts, and the +Inf == _count identity. A format drift here breaks real
// scrapers, so the expectation is exact.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(42)
	r.Counter("test_events_total", "Events seen.", &c, Label{"dc", "0"}, Label{"partition", "1"})
	var g Gauge
	g.Add(7)
	g.Add(-3)
	r.Gauge("test_queue_depth", "Frames queued.", &g)
	r.GaugeFunc("test_lag_seconds", "Computed lag.", func() float64 { return 1.5 }, Label{"peer_dc", "1"})
	var h StaticHist
	h.Record(2 * time.Microsecond)   // < 2^12 ns: first bucket at le=4.096e-06 counts it
	h.Record(100 * time.Microsecond) // 1e5 ns < 2^17
	h.Record(100 * time.Microsecond) //
	h.Record(50 * time.Millisecond)  // 5e7 ns < 2^26
	r.Histogram("test_op_seconds", "Op latency.", &h, Label{"op", "put"})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_events_total Events seen.
# TYPE test_events_total counter
test_events_total{dc="0",partition="1"} 42
# HELP test_queue_depth Frames queued.
# TYPE test_queue_depth gauge
test_queue_depth 4
# HELP test_lag_seconds Computed lag.
# TYPE test_lag_seconds gauge
test_lag_seconds{peer_dc="1"} 1.5
# HELP test_op_seconds Op latency.
# TYPE test_op_seconds histogram
test_op_seconds_bucket{op="put",le="1.024e-06"} 0
test_op_seconds_bucket{op="put",le="2.048e-06"} 1
test_op_seconds_bucket{op="put",le="4.096e-06"} 1
test_op_seconds_bucket{op="put",le="8.192e-06"} 1
test_op_seconds_bucket{op="put",le="1.6384e-05"} 1
test_op_seconds_bucket{op="put",le="3.2768e-05"} 1
test_op_seconds_bucket{op="put",le="6.5536e-05"} 1
test_op_seconds_bucket{op="put",le="0.000131072"} 3
test_op_seconds_bucket{op="put",le="0.000262144"} 3
test_op_seconds_bucket{op="put",le="0.000524288"} 3
test_op_seconds_bucket{op="put",le="0.001048576"} 3
test_op_seconds_bucket{op="put",le="0.002097152"} 3
test_op_seconds_bucket{op="put",le="0.004194304"} 3
test_op_seconds_bucket{op="put",le="0.008388608"} 3
test_op_seconds_bucket{op="put",le="0.016777216"} 3
test_op_seconds_bucket{op="put",le="0.033554432"} 3
test_op_seconds_bucket{op="put",le="0.067108864"} 4
test_op_seconds_bucket{op="put",le="0.134217728"} 4
test_op_seconds_bucket{op="put",le="0.268435456"} 4
test_op_seconds_bucket{op="put",le="0.536870912"} 4
test_op_seconds_bucket{op="put",le="1.073741824"} 4
test_op_seconds_bucket{op="put",le="2.147483648"} 4
test_op_seconds_bucket{op="put",le="4.294967296"} 4
test_op_seconds_bucket{op="put",le="8.589934592"} 4
test_op_seconds_bucket{op="put",le="17.179869184"} 4
test_op_seconds_bucket{op="put",le="+Inf"} 4
test_op_seconds_sum{op="put"} 0.050202
test_op_seconds_count{op="put"} 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionParseable runs a minimal v0.0.4 parser over a registry
// holding one of everything: every sample line must be `name{labels} value`
// with a parseable value, every family must carry HELP and TYPE before its
// first sample, histogram buckets must be cumulative (non-decreasing in le
// order) and end with +Inf == _count.
func TestExpositionParseable(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(3)
	r.Counter("p_total", "c", &c)
	var h StaticHist
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Record(time.Duration(rng.Intn(int(3 * time.Second))))
	}
	r.Histogram("p_seconds", "h", &h, Label{"family", "core"})
	var g Gauge
	g.Add(-5)
	r.Gauge("p_depth", "g", &g)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sawHelp := map[string]bool{}
	sawType := map[string]bool{}
	var lastLe float64
	var lastBucket uint64
	bucketsOpen := false
	var infCount uint64
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			sawHelp[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if !sawHelp[f[2]] {
				t.Fatalf("TYPE before HELP: %s", line)
			}
			sawType[f[2]] = true
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample without value: %q", line)
		}
		name, value := line[:sp], line[sp+1:]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if !sawType[name] && !sawType[base] {
			t.Fatalf("sample before TYPE: %q", line)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.HasSuffix(name, "_bucket") {
			le := line[strings.Index(line, `le="`)+4:]
			le = le[:strings.IndexByte(le, '"')]
			var leV float64
			if le == "+Inf" {
				leV = 1e308
				infCount = uint64(v)
			} else if leV, err = strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("bad le in %q: %v", line, err)
			}
			if bucketsOpen {
				if leV <= lastLe {
					t.Fatalf("le bounds not increasing at %q", line)
				}
				if uint64(v) < lastBucket {
					t.Fatalf("bucket counts not cumulative at %q", line)
				}
			}
			bucketsOpen, lastLe, lastBucket = true, leV, uint64(v)
		} else {
			bucketsOpen = false
		}
		if strings.HasSuffix(name, "_count") && uint64(v) != infCount {
			t.Fatalf("_count %v != +Inf bucket %d", v, infCount)
		}
	}
	if !sawType["p_total"] || !sawType["p_seconds"] || !sawType["p_depth"] {
		t.Fatal("missing families")
	}
}

// TestRegistryPanicsOnConflicts: the registry is configured at boot by
// programmers, so misuse fails loudly.
func TestRegistryPanicsOnConflicts(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	var c Counter
	var g Gauge
	r := NewRegistry()
	r.Counter("dup_total", "h", &c)
	expectPanic("duplicate series", func() { r.Counter("dup_total", "h", &c) })
	expectPanic("kind conflict", func() { r.Gauge("dup_total", "h", &g) })
	expectPanic("help conflict", func() { r.Counter("dup_total", "other", &c, Label{"a", "b"}) })
	expectPanic("bad name", func() { r.Counter("0bad", "h", &c) })
	expectPanic("bad label", func() { r.Counter("ok_total", "h", &c, Label{"0bad", "v"}) })
	// Distinct labels under one name are fine.
	r.Counter("dup_total", "h", &c, Label{"dc", "1"})
}

// TestBucketMidRoundTrip is the regression test for the bucketMid operator
// precedence bug: for random values across the full range, the reported
// bucket midpoint must itself lie within the value's bucket — i.e.
// bucketIndex(bucketMid(bucketIndex(v))) == bucketIndex(v) — and must sit
// at or above the bucket's true midpoint's floor, not collapsed to the
// lower edge.
func TestBucketMidRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	check := func(v uint64) {
		t.Helper()
		i := bucketIndex(v)
		mid := bucketMid(i)
		if gotI := bucketIndex(mid); gotI != i {
			t.Fatalf("bucketMid(%d)=%d escapes bucket: bucketIndex(v=%d)=%d, bucketIndex(mid)=%d",
				i, mid, v, i, gotI)
		}
		if i >= subBuckets {
			// Recompute the bucket's bounds independently and require the
			// midpoint to be centered: lo + width/2.
			exp := uint(i/subBuckets) + subBucketBits - 1
			sub := uint64(i % subBuckets)
			lo := uint64(1)<<exp | sub<<(exp-subBucketBits)
			width := uint64(1) << (exp - subBucketBits)
			if want := lo + width/2; mid != want {
				t.Fatalf("bucketMid(%d) = %d, want centered %d (lo=%d width=%d, v=%d)",
					i, mid, want, lo, width, v)
			}
		}
	}
	for i := 0; i < 200000; i++ {
		// Random magnitudes: uniform exponent, then uniform within it, so
		// large buckets (where the old bug collapsed midpoints) are hit.
		exp := uint(rng.Intn(63))
		v := uint64(1)<<exp | rng.Uint64()&(uint64(1)<<exp-1)
		check(v)
	}
	for _, v := range []uint64{0, 1, 31, 32, 33, subBuckets - 1, subBuckets, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		check(v)
	}
}

// TestPercentileNotBiasedLow pins the user-visible consequence of the
// bucketMid fix: with every observation at the same large value, the
// reported percentile (a bucket midpoint) must land within half a bucket
// width of it. The precedence bug collapsed the midpoint to (nearly) the
// bucket's lower edge, a full width below values in the upper half of the
// bucket, which this tolerance rejects.
func TestPercentileNotBiasedLow(t *testing.T) {
	var h StaticHist
	v := 1536 * time.Millisecond // 1.536e9 ns: upper half of its bucket
	for i := 0; i < 100; i++ {
		h.Record(v)
	}
	// Bucket width for v: exp 30, width 2^25 ns ≈ 33.6ms. Correct midpoint
	// is ~9.3ms below v; the buggy one was ~26ms below — past width/2.
	exp := uint(bucketIndex(uint64(v))/subBuckets) + subBucketBits - 1
	half := time.Duration(1) << (exp - subBucketBits) / 2
	got := h.Percentile(99)
	diff := got - v
	if diff < 0 {
		diff = -diff
	}
	if diff > half {
		t.Fatalf("P99 = %v is %v away from the only recorded value %v (> half bucket width %v: low-bias regression)",
			got, diff, v, half)
	}
}

func ExampleRegistry() {
	r := NewRegistry()
	var puts Counter
	puts.Add(9)
	r.Counter("kv_puts_total", "Client puts served.", &puts, Label{"dc", "0"})
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP kv_puts_total Client puts served.
	// # TYPE kv_puts_total counter
	// kv_puts_total{dc="0"} 9
}
