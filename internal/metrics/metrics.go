// Package metrics provides the lock-free latency histograms and counters
// the benchmark harness uses to report the paper's performance metrics:
// throughput (PUTs + ROTs per second), and average and 99th-percentile
// operation latencies (§5.2, "Performance metrics").
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// subBucketBits fixes the histogram's relative precision: 2^5 = 32
// sub-buckets per power of two keeps quantile error under ~3%, comparable
// to HdrHistogram at 2 significant digits.
const subBucketBits = 5

const (
	subBuckets = 1 << subBucketBits
	numBuckets = 64 * subBuckets
)

// Histogram is a lock-free log-bucketed latency histogram — a
// heap-allocated StaticHist, kept as a distinct named type for its
// constructor-based API.
type Histogram struct{ StaticHist }

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // ≥ subBucketBits
	sub := (v >> (uint(exp) - subBucketBits)) & (subBuckets - 1)
	return (exp-subBucketBits+1)*subBuckets + int(sub)
}

// bucketMid returns a representative value for bucket i (midpoint).
func bucketMid(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	exp := uint(i/subBuckets) + subBucketBits - 1
	sub := uint64(i % subBuckets)
	lo := (1 << exp) | (sub << (exp - subBucketBits))
	// Half the bucket width. The shift must be parenthesized: without it,
	// `1 << (exp-subBucketBits) / 2` parses as `1 << ((exp-subBucketBits)/2)`,
	// which collapsed large-bucket midpoints toward the lower edge and
	// biased reported P50/P99 low (see TestBucketMidRoundTrip).
	return lo + (1<<(exp-subBucketBits))/2
}

// percentile walks a bucket array for the p-th percentile of n
// observations, falling back to maxv past the last bucket.
func percentile(buckets []atomic.Uint64, n uint64, maxv time.Duration, p float64) time.Duration {
	if n == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := range buckets {
		seen += buckets[i].Load()
		if seen > rank {
			return time.Duration(bucketMid(i))
		}
	}
	return maxv
}

// Snapshot copies the histogram into a frozen view for reporting.
func (h *StaticHist) Snapshot() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// Summary is a frozen histogram digest.
type Summary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// StaticHist is a Histogram variant whose zero value is ready to use: the
// bucket array is inline rather than heap-allocated, so it can be embedded
// in always-on stats structs (transport.Stats) that promise a usable zero
// value. Same bucket layout and precision as Histogram.
type StaticHist struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64
}

// Record adds one latency observation.
func (h *StaticHist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *StaticHist) Count() uint64 { return h.count.Load() }

// Mean returns the average observation.
func (h *StaticHist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *StaticHist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Percentile returns the p-th percentile (0 < p ≤ 100).
func (h *StaticHist) Percentile(p float64) time.Duration {
	return percentile(h.buckets[:], h.count.Load(), h.Max(), p)
}

// Reset zeroes the histogram (used at the warmup/measurement boundary).
func (h *StaticHist) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}
