// Package metrics provides the lock-free latency histograms and counters
// the benchmark harness uses to report the paper's performance metrics:
// throughput (PUTs + ROTs per second), and average and 99th-percentile
// operation latencies (§5.2, "Performance metrics").
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// subBucketBits fixes the histogram's relative precision: 2^5 = 32
// sub-buckets per power of two keeps quantile error under ~3%, comparable
// to HdrHistogram at 2 significant digits.
const subBucketBits = 5

const (
	subBuckets = 1 << subBucketBits
	numBuckets = 64 * subBuckets
)

// Histogram is a lock-free log-bucketed latency histogram. The zero value
// is NOT ready; use NewHistogram.
type Histogram struct {
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Uint64, numBuckets)}
}

func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // ≥ subBucketBits
	sub := (v >> (uint(exp) - subBucketBits)) & (subBuckets - 1)
	return (exp-subBucketBits+1)*subBuckets + int(sub)
}

// bucketMid returns a representative value for bucket i (midpoint).
func bucketMid(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	exp := uint(i/subBuckets) + subBucketBits - 1
	sub := uint64(i % subBuckets)
	lo := (1 << exp) | (sub << (exp - subBucketBits))
	return lo + (1 << (exp - subBucketBits) / 2)
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Percentile returns the p-th percentile (0 < p ≤ 100).
func (h *Histogram) Percentile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return time.Duration(bucketMid(i))
		}
	}
	return h.Max()
}

// Reset zeroes the histogram (used at the warmup/measurement boundary).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Snapshot copies the histogram into a frozen view for reporting.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// Summary is a frozen histogram digest.
type Summary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}
