package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestMeanAndMax(t *testing.T) {
	h := NewHistogram()
	h.Record(100 * time.Microsecond)
	h.Record(300 * time.Microsecond)
	if got := h.Mean(); got != 200*time.Microsecond {
		t.Fatalf("Mean = %v, want 200µs", got)
	}
	if got := h.Max(); got != 300*time.Microsecond {
		t.Fatalf("Max = %v, want 300µs", got)
	}
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	r := rand.New(rand.NewSource(1))
	vals := make([]time.Duration, 10000)
	for i := range vals {
		vals[i] = time.Duration(r.Intn(5_000_000)) // up to 5ms
		h.Record(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{50, 90, 99} {
		exact := vals[int(p/100*float64(len(vals)))]
		got := h.Percentile(p)
		// Log-bucketed histograms are accurate to one sub-bucket (~3%).
		lo := time.Duration(float64(exact) * 0.90)
		hi := time.Duration(float64(exact)*1.10) + time.Microsecond
		if got < lo || got > hi {
			t.Errorf("P%.0f = %v, want within 10%% of %v", p, got, exact)
		}
	}
}

func TestReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Percentile(99) != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestSnapshotOrdering(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if !(s.P50 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	if s.Count != 1000 {
		t.Fatalf("Count = %d", s.Count)
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost observations: %d", h.Count())
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 100, 1000, 1 << 20, 1 << 40, 1<<63 + 5} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		if idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		prev = idx
	}
}

func BenchmarkRecord(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Record(123456 * time.Nanosecond)
		}
	})
}

func BenchmarkPercentile(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Percentile(99)
	}
}
