package metrics

import (
	"sync"
	"testing"
	"time"
)

// sumBuckets reads every fine bucket once. Readers use it to cross-check
// the count field against the buckets under concurrency.
func (h *StaticHist) sumBuckets() uint64 {
	var s uint64
	for i := range h.buckets {
		s += h.buckets[i].Load()
	}
	return s
}

// TestSnapshotRacesRecord hammers Snapshot/Percentile/cumulative against
// concurrent Record under -race. A snapshot may be torn, but it must never
// panic, and — because Record bumps the bucket before the count — a reader
// that loads the count FIRST and then sums the buckets must find
// bucketSum ≥ count: every observation included in the count had already
// published its bucket increment.
func TestSnapshotRacesRecord(t *testing.T) {
	var h StaticHist
	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := time.Duration(w+1) * 123 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Record(d)
				}
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		n := h.Count() // load count BEFORE summing buckets
		if bs := h.sumBuckets(); bs < n {
			t.Fatalf("bucket sum %d < count %d: count published before bucket", bs, n)
		}
		// A snapshot racing writers may be torn (its quantiles can even
		// disagree with each other — each Percentile call walks the live
		// buckets at a different instant), but every field must stay sane.
		s := h.Snapshot()
		if s.P50 < 0 || s.P99 < 0 || s.Mean < 0 || s.Max < 0 {
			t.Fatalf("negative torn readout: %+v", s)
		}
		h.Percentile(99)
		h.cumulative(histBounds)
	}
	close(stop)
	wg.Wait()
	// Quiesced: the books must balance exactly.
	if n, bs := h.Count(), h.sumBuckets(); n != bs {
		t.Fatalf("after quiesce: count %d != bucket sum %d", n, bs)
	}
}

// TestResetRacesRecord runs Reset against concurrent Record under -race:
// no panic, readouts stay sane (non-negative, no quantile above the
// tracked max bucket range), and once the LAST reset has quiesced, the
// permanent count/bucket divergence it can leave behind — a Record whose
// bucket increment the reset swept but whose count increment landed after
// — is bounded by the writers that were mid-Record at that reset.
func TestResetRacesRecord(t *testing.T) {
	var h StaticHist
	const writers = 8
	stopW := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopW:
					return
				default:
					h.Record(time.Millisecond)
				}
			}
		}()
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		h.Reset()
		// Mid-race reads must stay sane: quantiles never panic, and the
		// snapshot's fields are individually plausible even when torn.
		// (While a reset is mid-scan the count/bucket books can diverge
		// arbitrarily; the bounded claim below is about what SURVIVES.)
		s := h.Snapshot()
		if s.P99 < 0 || s.Mean < 0 {
			t.Fatalf("negative torn readout: %+v", s)
		}
		h.cumulative(histBounds)
	}
	// Last reset, then let every in-flight Record complete.
	h.Reset()
	close(stopW)
	wg.Wait()
	n, bs := h.Count(), h.sumBuckets()
	diff := int64(n) - int64(bs)
	if diff < 0 {
		diff = -diff
	}
	// Each writer had at most one Record straddling the final reset, which
	// can strand one half of its two increments.
	if diff > writers {
		t.Fatalf("count %d vs bucket sum %d diverged by %d > %d in-flight writers", n, bs, diff, writers)
	}
}

func TestSlowRing(t *testing.T) {
	var nilRing *SlowRing
	nilRing.Record(SlowOp{Total: time.Hour}) // must not panic
	if nilRing.Snapshot() != nil || nilRing.Len() != 0 || nilRing.Threshold() != 0 {
		t.Fatal("nil ring must be inert")
	}

	r := NewSlowRing(16, 10*time.Millisecond)
	r.Record(SlowOp{Op: "put", Total: 5 * time.Millisecond}) // under threshold
	if r.Len() != 0 {
		t.Fatal("fast op captured")
	}
	for i := 0; i < 20; i++ {
		r.Record(SlowOp{Op: "put", KeyHash: uint64(i), Total: time.Duration(i+11) * time.Millisecond})
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("ring kept %d, want 16", len(snap))
	}
	// Newest first, oldest four wrapped away.
	if snap[0].KeyHash != 19 || snap[len(snap)-1].KeyHash != 4 {
		t.Fatalf("wrap order wrong: first=%d last=%d", snap[0].KeyHash, snap[len(snap)-1].KeyHash)
	}
}

func TestSlowRingConcurrent(t *testing.T) {
	r := NewSlowRing(64, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(SlowOp{Op: "rot", KeyHash: uint64(w), Total: time.Second})
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000", r.Len())
	}
	for _, op := range r.Snapshot() {
		if op.Op != "rot" || op.Total != time.Second {
			t.Fatalf("torn slow op: %+v", op)
		}
	}
}

func TestOpHistsReadHist(t *testing.T) {
	var o OpHists
	if o.ReadHist(1) != &o.Get || o.ReadHist(2) != &o.ROT || o.ReadHist(0) != &o.ROT {
		t.Fatal("ReadHist op selection wrong")
	}
	r := NewRegistry()
	o.Put.Record(time.Millisecond)
	o.Register(r, "x_op_seconds", "h", Label{"family", "cclo"})
	var b sbWriter
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`x_op_seconds_count{family="cclo",op="put"} 1`,
		`x_op_seconds_count{family="cclo",op="rot"} 0`,
		`x_op_seconds_count{family="cclo",op="get"} 0`,
		`x_op_seconds_count{family="cclo",op="rep"} 0`,
	} {
		if !contains(b.s, want) {
			t.Fatalf("missing %q in:\n%s", want, b.s)
		}
	}
}

type sbWriter struct{ s string }

func (w *sbWriter) Write(p []byte) (int, error) { w.s += string(p); return len(p), nil }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
