package metrics

import (
	"sync/atomic"
	"time"
)

// SlowOp is one captured slow operation: which op, on which key (hashed —
// the trace must not leak values or full keys into an HTTP surface), and
// where the time went. Phase meanings are family-specific and documented
// by the server that records them; broadly: Queue is the pre-install wait
// (ordering fence, readers check, dependency wait), Fsync the durability
// wait, Repl the replication-side wait. Phases need not sum to Total.
type SlowOp struct {
	Start   int64         // unix nanoseconds at op start
	Op      string        // "put", "get", "rot", "rep"
	KeyHash uint64        // FNV-1a of the (first) key
	Total   time.Duration // end-to-end handler latency
	Queue   time.Duration
	Fsync   time.Duration
	Repl    time.Duration
}

// SlowRing is a fixed-size lock-free trace ring of the slowest-path
// operations: Record keeps an op only when it exceeded the ring's
// threshold. Slots hold atomically-published pointers, so concurrent
// recorders never block each other (a wrapped slot is simply overwritten)
// and Snapshot observes each slot's latest complete record. The one
// allocation per record is confined to ops that already blew a
// multi-millisecond budget.
//
// A nil *SlowRing is a valid no-op recorder, so servers call it
// unconditionally.
type SlowRing struct {
	thresh time.Duration
	next   atomic.Uint64
	slots  []atomic.Pointer[SlowOp]
}

// NewSlowRing returns a ring keeping the last size ops slower than
// threshold. Size is clamped to [16, 65536].
func NewSlowRing(size int, threshold time.Duration) *SlowRing {
	if size < 16 {
		size = 16
	}
	if size > 1<<16 {
		size = 1 << 16
	}
	return &SlowRing{thresh: threshold, slots: make([]atomic.Pointer[SlowOp], size)}
}

// Threshold returns the capture threshold.
func (r *SlowRing) Threshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.thresh
}

// Record captures op if it exceeded the threshold. Safe on a nil ring.
func (r *SlowRing) Record(op SlowOp) {
	if r == nil || op.Total < r.thresh {
		return
	}
	c := op
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(&c)
}

// Len returns how many ops have been captured since start (not clamped to
// the ring size).
func (r *SlowRing) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Snapshot returns the retained ops, newest first.
func (r *SlowRing) Snapshot() []SlowOp {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	size := uint64(len(r.slots))
	if n > size {
		n = size
	}
	out := make([]SlowOp, 0, n)
	head := r.next.Load()
	for k := uint64(1); k <= n; k++ {
		if op := r.slots[(head-k)%size].Load(); op != nil {
			out = append(out, *op)
		}
	}
	return out
}

// KeyHash is FNV-1a over the key, the hash SlowOp carries instead of the
// key itself.
func KeyHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// OpHists is the per-op server-side latency histogram block every protocol
// family embeds: end-to-end handler latency for client puts, single-key
// reads (a 1-key ROT), multi-key ROTs, and replicated-update application.
// The zero value is ready to use; Record stays lock-free.
type OpHists struct {
	Put StaticHist
	Get StaticHist
	ROT StaticHist
	Rep StaticHist
}

// ReadHist returns the Get histogram for single-key reads and the ROT
// histogram otherwise, so handlers serving both through one path pick the
// op in one call.
func (o *OpHists) ReadHist(keys int) *StaticHist {
	if keys == 1 {
		return &o.Get
	}
	return &o.ROT
}

// Register registers the four histograms under name with an op label each,
// plus the caller's labels (family/dc/partition).
func (o *OpHists) Register(r *Registry, name, help string, labels ...Label) {
	for _, e := range []struct {
		op string
		h  *StaticHist
	}{
		{"put", &o.Put}, {"get", &o.Get}, {"rot", &o.ROT}, {"rep", &o.Rep},
	} {
		r.Histogram(name, help, e.h, append(append([]Label(nil), labels...), Label{"op", e.op})...)
	}
}
