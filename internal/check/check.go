// Package check is a black-box causal-consistency checker: it records the
// history of puts and reads each client session performs against a store
// and flags session-guarantee violations online — read-your-writes,
// monotonic reads, and writes-follow-reads — plus the read-only-transaction
// snapshot property (the paper's Figure 1 anomaly: a ROT returning a
// version together with a state older than that version's causal past).
//
// The checker identifies versions by VALUE, so drivers must write a unique
// value per put (e.g. "c<client>-<n>"). Each recorded version carries a
// snapshot of its writer's observed frontier — for every key, the newest
// (timestamp, value) in the writer's causal past at write time. Because
// every read folds the read version's frontier into the reader's own, each
// recorded frontier transitively dominates the version's entire causal
// past, which is what makes the online check sound: a read that returns a
// timestamp below the reader's frontier for that key has provably observed
// a state excluded by causality.
//
// The checker deliberately tolerates indeterminate operations: a put whose
// acknowledgment was lost to a crash may surface later as an unknown value.
// Unknown values still participate in the timestamp checks but contribute
// no dependencies (their causal past is unknowable), so fault-injection
// workloads never produce false positives.
package check

import (
	"fmt"
	"sync"
)

// entry is one frontier cell: the newest observation of a key.
type entry struct {
	ts  uint64
	val string
}

// versionMeta is one recorded version: its key, timestamp, and the
// writer's frontier at write time (the version's causal past).
type versionMeta struct {
	key  string
	ts   uint64
	deps map[string]entry
}

// History records and checks one workload's operations. All methods are
// safe for concurrent use by many Clients.
type History struct {
	mu         sync.Mutex
	versions   map[string]*versionMeta
	violations []error
	puts       uint64
	reads      uint64
}

// New returns an empty history.
func New() *History {
	return &History{versions: make(map[string]*versionMeta)}
}

// Client opens a session recorder. One Client per protocol session; a
// Client's methods must not be called concurrently with each other (the
// session model is a single closed-loop client).
func (h *History) Client(name string) *Client {
	return &Client{h: h, name: name, frontier: make(map[string]entry)}
}

// Err returns the first recorded violation, or nil.
func (h *History) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.violations) == 0 {
		return nil
	}
	return h.violations[0]
}

// Violations returns every recorded violation.
func (h *History) Violations() []error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]error(nil), h.violations...)
}

// Ops returns the number of recorded puts and reads (tests assert the
// workload actually exercised the checker).
func (h *History) Ops() (puts, reads uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.puts, h.reads
}

func (h *History) violatef(format string, args ...any) {
	h.violations = append(h.violations, fmt.Errorf(format, args...))
}

// Read is one ROT result handed to the checker: the key, the returned
// value ("" when the key was missing from the snapshot), and its
// timestamp.
type Read struct {
	Key string
	Val string
	TS  uint64
}

// Client records one session's operations.
type Client struct {
	h        *History
	name     string
	frontier map[string]entry
}

// Put records an acknowledged write of val (globally unique) to key at ts.
// Call it only for acknowledged puts; an indeterminate put (error, crash)
// must NOT be recorded — if it landed anyway, its value is simply an
// unknown version to later readers.
func (c *Client) Put(key, val string, ts uint64) {
	h := c.h
	h.mu.Lock()
	h.puts++
	if prev, ok := c.frontier[key]; ok && ts <= prev.ts {
		h.violatef("check: %s: put %s=%s got ts %d ≤ previously observed %d (%s): own write ordered below observed state",
			c.name, key, val, ts, prev.ts, prev.val)
	}
	deps := make(map[string]entry, len(c.frontier))
	for k, e := range c.frontier {
		deps[k] = e
	}
	if _, dup := h.versions[val]; dup {
		h.violatef("check: %s: duplicate value %q; values must be globally unique", c.name, val)
	}
	h.versions[val] = &versionMeta{key: key, ts: ts, deps: deps}
	h.mu.Unlock()
	c.observe(key, ts, val)
}

// Get records a single-key read; equivalent to a one-item ReadTx.
func (c *Client) Get(key, val string, ts uint64) {
	c.ReadTx([]Read{{Key: key, Val: val, TS: ts}})
}

// ReadTx records the results of one read-only transaction: every item was
// returned from one causally consistent snapshot. It checks each item
// against the session frontier (read-your-writes, monotonic reads,
// writes-follow-reads — the frontier embeds all three) and the items
// against each other (the snapshot property), then advances the frontier.
func (c *Client) ReadTx(reads []Read) {
	h := c.h
	h.mu.Lock()
	h.reads += uint64(len(reads))
	inTx := make(map[string]Read, len(reads))
	for _, r := range reads {
		inTx[r.Key] = r
	}
	for _, r := range reads {
		prev, seen := c.frontier[r.Key]
		if r.Val == "" {
			if seen {
				h.violatef("check: %s: read %s=∅ after observing %s@%d: version vanished",
					c.name, r.Key, prev.val, prev.ts)
			}
			continue
		}
		if seen && r.TS < prev.ts {
			h.violatef("check: %s: read %s=%s@%d below session frontier %s@%d",
				c.name, r.Key, r.Val, r.TS, prev.val, prev.ts)
		}
		// Snapshot property: every dependency of a returned version that
		// falls on another key in this ROT must be covered by that key's
		// returned version (Figure 1's album/permissions anomaly).
		if meta := h.versions[r.Val]; meta != nil {
			for dk, de := range meta.deps {
				if other, ok := inTx[dk]; ok && other.TS < de.ts {
					h.violatef("check: %s: ROT returned %s=%s@%d which depends on %s=%s@%d, but the same ROT returned %s=%s@%d",
						c.name, r.Key, r.Val, r.TS, dk, de.val, de.ts, dk, other.Val, other.TS)
				}
			}
		}
	}
	// Merge only after every item was checked against the pre-ROT state:
	// a ROT is one snapshot, not a sequence.
	metas := make([]*versionMeta, 0, len(reads))
	for _, r := range reads {
		if r.Val == "" {
			continue
		}
		if meta := h.versions[r.Val]; meta != nil {
			metas = append(metas, meta)
		}
	}
	h.mu.Unlock()
	for _, r := range reads {
		if r.Val != "" {
			c.observe(r.Key, r.TS, r.Val)
		}
	}
	for _, meta := range metas {
		for dk, de := range meta.deps {
			c.observe(dk, de.ts, de.val)
		}
	}
}

// observe advances the session frontier for key to at least (ts, val).
func (c *Client) observe(key string, ts uint64, val string) {
	if prev, ok := c.frontier[key]; !ok || ts > prev.ts {
		c.frontier[key] = entry{ts: ts, val: val}
	}
}
