package check

import (
	"strings"
	"testing"
)

func TestLegalHistoryAccepted(t *testing.T) {
	h := New()
	c1 := h.Client("c1")
	c2 := h.Client("c2")

	c1.Put("x", "x1", 1)
	c1.Put("y", "y1", 2) // depends on x1 through c1's session
	c1.Get("x", "x1", 1) // read-your-writes
	c2.ReadTx([]Read{{Key: "x", Val: "x1", TS: 1}, {Key: "y", Val: "y1", TS: 2}})
	c2.Get("x", "x1", 1) // monotonic: same version again is fine
	c2.Put("x", "x2", 3)
	c1.Get("x", "x2", 3) // newer version is always fine
	if err := h.Err(); err != nil {
		t.Fatalf("legal history flagged: %v", err)
	}
	if p, r := h.Ops(); p != 3 || r == 0 {
		t.Fatalf("ops miscounted: %d puts, %d reads", p, r)
	}
}

func TestReadYourWritesViolation(t *testing.T) {
	h := New()
	c := h.Client("c")
	c.Put("x", "x5", 5)
	c.Get("x", "x3", 3) // older than own write
	if err := h.Err(); err == nil || !strings.Contains(err.Error(), "below session frontier") {
		t.Fatalf("RYW violation not flagged: %v", err)
	}
}

func TestMonotonicReadsViolationUnknownVersions(t *testing.T) {
	h := New()
	c := h.Client("c")
	// Both versions are unknown (e.g. written by a client whose ack was
	// lost to a crash); the timestamp order alone must still be enforced.
	c.Get("x", "v5", 5)
	c.Get("x", "v3", 3)
	if err := h.Err(); err == nil {
		t.Fatal("monotonic-reads violation not flagged")
	}
}

func TestVanishedVersionViolation(t *testing.T) {
	h := New()
	c := h.Client("c")
	c.Put("x", "x1", 7)
	c.Get("x", "", 0) // acked write gone
	if err := h.Err(); err == nil || !strings.Contains(err.Error(), "vanished") {
		t.Fatalf("vanished version not flagged: %v", err)
	}
}

func TestWritesFollowReadsViolation(t *testing.T) {
	h := New()
	w := h.Client("w")
	r := h.Client("r")
	w.Put("x", "x1", 1)
	w.Put("y", "y1", 2) // y1's recorded deps include x@1
	r.Get("y", "y1", 2) // r inherits x@1 into its frontier
	r.Get("x", "", 0)   // ...so x may no longer be missing
	if err := h.Err(); err == nil {
		t.Fatal("writes-follow-reads violation not flagged")
	}

	h2 := New()
	w2 := h2.Client("w")
	r2 := h2.Client("r")
	w2.Put("x", "x1", 1)
	w2.Put("y", "y1", 2)
	r2.Get("y", "y1", 2)
	r2.Get("x", "x1", 1) // exactly the causal past: fine
	if err := h2.Err(); err != nil {
		t.Fatalf("legal WFR history flagged: %v", err)
	}
}

func TestROTSnapshotViolation(t *testing.T) {
	h := New()
	w := h.Client("w")
	r := h.Client("r")
	w.Put("x", "x1", 1)
	w.Put("y", "y1", 2)
	// Figure 1: the ROT returns y1 (which causally depends on x@1) next to
	// a pre-x1 state of x.
	r.ReadTx([]Read{{Key: "x", Val: "", TS: 0}, {Key: "y", Val: "y1", TS: 2}})
	if err := h.Err(); err == nil || !strings.Contains(err.Error(), "ROT returned") {
		t.Fatalf("snapshot violation not flagged: %v", err)
	}
}

func TestOwnWriteBelowObservedViolation(t *testing.T) {
	h := New()
	c := h.Client("c")
	c.Get("x", "v9", 9)
	c.Put("x", "mine", 4) // store ordered the own write below observed state
	if err := h.Err(); err == nil || !strings.Contains(err.Error(), "own write") {
		t.Fatalf("own-write ordering violation not flagged: %v", err)
	}
}
