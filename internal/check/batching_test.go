package check_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/transport"
)

// TestCausalityUnderAggressiveBatching runs the causal-consistency checker
// over the unified Local batching engine at both extremes of the flush
// policy — a tiny budget that cuts batches mid-backlog, and a huge-batch
// configuration that coalesces as hard as the engine allows — for all
// three protocol families. Batches arrive as units with one latency charge
// and jitter reorders them across links, so if coalescing could ever
// reorder its way into a causality violation, sessions here would observe
// it. (The paper's guarantees are per-session; the transport itself
// promises no cross-message ordering, which is exactly why this must be
// policed by the checker rather than assumed.)
func TestCausalityUnderAggressiveBatching(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	configs := []struct {
		name   string
		budget time.Duration
		batch  int
	}{
		// Budget of 1ns: every gather re-checks the clock and cuts almost
		// immediately — maximal batch-boundary churn.
		{"tiny-budget", time.Nanosecond, 0},
		// 5ms budget with 1 MiB batches: maximal coalescing; under load a
		// frame may ride a batch for several milliseconds.
		{"huge-batches", 5 * time.Millisecond, 1 << 20},
	}
	for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO, cluster.COPS} {
		for _, bc := range configs {
			t.Run(fmt.Sprintf("%s/%s", proto, bc.name), func(t *testing.T) {
				t.Parallel()
				// Real (small) link latencies with strong jitter, so batches
				// traverse the delivery wheels and can overtake each other.
				lat := &transport.LatencyModel{
					IntraDC:    50 * time.Microsecond,
					InterDC:    300 * time.Microsecond,
					JitterFrac: 0.5,
				}
				c, err := cluster.Start(cluster.Config{
					Protocol:      proto,
					DCs:           2,
					Partitions:    2,
					Latency:       lat,
					MaxVersions:   256,
					Seed:          1,
					FlushBudget:   bc.budget,
					MaxBatchBytes: bc.batch,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()

				keys := make([]string, 8)
				for i := range keys {
					keys[i] = fmt.Sprintf("bk%d", i)
				}
				seedCtx, cancelSeed := context.WithTimeout(context.Background(), 20*time.Second)
				seeder, err := c.NewClient(0)
				if err != nil {
					t.Fatal(err)
				}
				remote, err := c.NewClient(1)
				if err != nil {
					t.Fatal(err)
				}
				for i, k := range keys {
					if _, err := seeder.Put(seedCtx, k, []byte(fmt.Sprintf("seed-%d", i))); err != nil {
						t.Fatal(err)
					}
				}
				for _, k := range keys {
					for {
						v, err := remote.Get(seedCtx, k)
						if err != nil {
							t.Fatal(err)
						}
						if v != nil {
							break
						}
						time.Sleep(2 * time.Millisecond)
					}
				}
				seeder.Close()
				remote.Close()
				cancelSeed()

				h := check.New()
				const clientsPerDC = 3
				const opsPerClient = 120
				var wg sync.WaitGroup
				fail := make(chan error, clientsPerDC*2)
				for dc := 0; dc < 2; dc++ {
					for ci := 0; ci < clientsPerDC; ci++ {
						wg.Add(1)
						go func(dc, ci int) {
							defer wg.Done()
							name := fmt.Sprintf("dc%d-c%d", dc, ci)
							cli, err := c.NewClient(dc)
							if err != nil {
								fail <- err
								return
							}
							defer cli.Close()
							rec := h.Client(name)
							rng := rand.New(rand.NewSource(int64(dc*100 + ci)))
							seq := 0
							for op := 0; op < opsPerClient; op++ {
								ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
								if rng.Intn(100) < 35 {
									key := keys[rng.Intn(len(keys))]
									seq++
									val := fmt.Sprintf("%s-%d", name, seq)
									if ts, err := cli.Put(ctx, key, []byte(val)); err == nil {
										rec.Put(key, val, ts)
									} else {
										fail <- fmt.Errorf("%s put: %w", name, err)
									}
								} else {
									n := 1 + rng.Intn(3)
									ks := make([]string, 0, n)
									seen := map[string]bool{}
									for len(ks) < n {
										k := keys[rng.Intn(len(keys))]
										if !seen[k] {
											seen[k] = true
											ks = append(ks, k)
										}
									}
									if kvs, err := cli.ROT(ctx, ks); err == nil {
										reads := make([]check.Read, len(kvs))
										for i, kv := range kvs {
											reads[i] = check.Read{Key: kv.Key, Val: string(kv.Value), TS: kv.TS}
										}
										rec.ReadTx(reads)
									} else {
										fail <- fmt.Errorf("%s rot: %w", name, err)
									}
								}
								cancel()
							}
						}(dc, ci)
					}
				}
				wg.Wait()
				close(fail)
				if err := <-fail; err != nil {
					t.Fatal(err)
				}
				if err := h.Err(); err != nil {
					for _, v := range h.Violations() {
						t.Error(v)
					}
					t.FailNow()
				}
				puts, reads := h.Ops()
				if puts == 0 || reads == 0 {
					t.Fatalf("vacuous run: %d puts, %d reads recorded", puts, reads)
				}
				t.Logf("checked %d puts, %d reads", puts, reads)
				waitConverged(t, c, keys)
			})
		}
	}
}
