package check_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/wire"
)

// TestRandomizedCausalityAllFamilies is the checker run as a randomized
// property test against every protocol family on the Local transport, with
// durable WALs and a mid-workload crash + restart of a partition: sessions
// in both DCs issue random unique-valued puts and multi-key ROTs, every
// result is fed to the causal-consistency checker, and at the end the DCs
// must converge key by key. Operations that error during the crash window
// are indeterminate and simply not recorded — the checker is built for
// that — but anything that WAS acknowledged stays subject to the session
// guarantees across the restart, which is exactly where a
// durability↔replication gap would surface.
func TestRandomizedCausalityAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO, cluster.COPS} {
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			c, err := cluster.Start(cluster.Config{
				Protocol:        proto,
				DCs:             2,
				Partitions:      2,
				Latency:         cluster.NoLatency(),
				DataDir:         t.TempDir(),
				WALSegmentBytes: 4096, // force rotation so recovery stitches segments
				// Deep chains: the workload rewrites few keys, and a trimmed
				// chain degrades dependency checks to timestamp heuristics.
				MaxVersions: 256,
				Seed:        1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			keys := make([]string, 8)
			for i := range keys {
				keys[i] = fmt.Sprintf("rk%d", i)
			}
			// The keyspace is deliberately NOT seeded: clients race to
			// write and probe cold keys, so the workload exercises the
			// first-version startup case — negative reads recorded as old
			// readers, first versions hidden from ROTs that probed before
			// them — including across the mid-workload crash, where CC-LO's
			// persisted old-reader records and restart-epoch fence are what
			// keep the guarantees. The seeding that used to sit here was the
			// workaround for exactly that hole.
			h := check.New()
			const clientsPerDC = 3
			const opsPerClient = 150

			var wg sync.WaitGroup
			fail := make(chan error, clientsPerDC*2+1)
			for dc := 0; dc < 2; dc++ {
				for ci := 0; ci < clientsPerDC; ci++ {
					wg.Add(1)
					go func(dc, ci int) {
						defer wg.Done()
						name := fmt.Sprintf("dc%d-c%d", dc, ci)
						// Odd clients run as multiplexed sessions on the
						// DC's shared endpoint (two tenants), even clients
						// attach their own address — the checker then
						// exercises both construction paths, and the
						// session mux/demux in particular, under the same
						// causal workload.
						var cli cluster.Client
						var err error
						if ci%2 == 1 {
							cli, err = c.NewSessionClient(dc, uint16(ci%2))
						} else {
							cli, err = c.NewClient(dc)
						}
						if err != nil {
							fail <- err
							return
						}
						defer cli.Close()
						rec := h.Client(name)
						rng := rand.New(rand.NewSource(int64(dc*100 + ci)))
						seq := 0
						for op := 0; op < opsPerClient; op++ {
							ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
							if rng.Intn(100) < 35 {
								key := keys[rng.Intn(len(keys))]
								seq++
								val := fmt.Sprintf("%s-%d", name, seq)
								ts, err := cli.Put(ctx, key, []byte(val))
								if err == nil {
									rec.Put(key, val, ts)
								}
								// An error is indeterminate (the crash window):
								// not recorded, and the value may still surface
								// to readers as an unknown version.
							} else {
								n := 1 + rng.Intn(3)
								ks := make([]string, 0, n)
								seen := map[string]bool{}
								for len(ks) < n {
									k := keys[rng.Intn(len(keys))]
									if !seen[k] {
										seen[k] = true
										ks = append(ks, k)
									}
								}
								kvs, err := cli.ROT(ctx, ks)
								if err == nil {
									reads := make([]check.Read, len(kvs))
									for i, kv := range kvs {
										reads[i] = check.Read{Key: kv.Key, Val: string(kv.Value), TS: kv.TS}
									}
									rec.ReadTx(reads)
								}
							}
							cancel()
						}
					}(dc, ci)
				}
			}

			// Mid-workload: hard-crash one DC0 partition, then bring it back
			// over the same data directory; later, cleanly restart the other.
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(300 * time.Millisecond)
				if err := c.CrashPartition(0, 0); err != nil {
					fail <- err
					return
				}
				time.Sleep(50 * time.Millisecond)
				if err := c.RestartPartition(0, 0); err != nil {
					fail <- err
					return
				}
				time.Sleep(300 * time.Millisecond)
				if err := c.RestartPartition(0, 1); err != nil {
					fail <- err
				}
			}()
			wg.Wait()
			close(fail)
			if err := <-fail; err != nil {
				t.Fatal(err)
			}
			if err := h.Err(); err != nil {
				for _, v := range h.Violations() {
					t.Error(v)
				}
				t.FailNow()
			}
			puts, reads := h.Ops()
			if puts == 0 || reads == 0 {
				t.Fatalf("vacuous run: %d puts, %d reads recorded", puts, reads)
			}
			t.Logf("checked %d puts, %d reads", puts, reads)

			// Convergence: once replication quiesces, sessions in both DCs
			// must read the same latest version of every key.
			waitConverged(t, c, keys)
		})
	}
}

// waitConverged polls until a fresh session in each DC returns identical
// (value, timestamp) for every key.
func waitConverged(t *testing.T, c *cluster.Cluster, keys []string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
	defer cancel()
	var readers []cluster.Client
	for dc := 0; dc < 2; dc++ {
		cli, err := c.NewClient(dc)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		readers = append(readers, cli)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		got := make([][]wire.KV, len(readers))
		ok := true
		for i, r := range readers {
			kvs, err := r.ROT(ctx, keys)
			if err != nil {
				ok = false
				break
			}
			got[i] = kvs
		}
		if ok {
			same := true
			for i := range keys {
				if string(got[0][i].Value) != string(got[1][i].Value) || got[0][i].TS != got[1][i].TS {
					same = false
					break
				}
			}
			if same {
				return
			}
		}
		if time.Now().After(deadline) {
			for i := range keys {
				t.Logf("%s: dc0=(%q,%d) dc1=(%q,%d)", keys[i],
					got[0][i].Value, got[0][i].TS, got[1][i].Value, got[1][i].TS)
			}
			for dc := 0; dc < 2; dc++ {
				for p := 0; p < 2; p++ {
					t.Logf("dc%d-p%d cursors: %+v", dc, p, c.WALCursors(dc, p))
				}
			}
			if srv := c.COPSServers(); srv != nil {
				for i, s := range srv {
					for _, k := range keys {
						t.Logf("server %d chain %s: %v", i, k, s.VersionsOf(k))
					}
				}
			}
			t.Fatal("DCs never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
