// Package store is the sharded multi-version storage engine shared by all
// three protocol families (Contrarian/Cure core, CC-LO, COPS).
//
// Each key holds a short chain of versions totally ordered by (TS, Src) —
// the last-writer-wins rule of Section 2.2. The families differ only in the
// per-version payload they attach (a dependency vector, dependency lists,
// invisibility marks) and in per-key bookkeeping (CC-LO's reader records),
// so the engine is generic over both: Engine[X, A] stores Version[X] chains
// plus one aux value A per key.
//
// Concurrency model:
//
//   - Chains are immutable. Writers build a new Chain and publish it through
//     an atomic.Pointer, so latest-reads, exact-version lookups, and
//     full-store iteration (ForEach) are lock-free and never block on — or
//     are blocked by — writers. In particular WAL snapshot emission iterates
//     the store while installs proceed at full speed.
//   - The key→entry index is a per-shard open-addressing table with
//     set-once slots: keys are never deleted, so a slot, once published by
//     an atomic store, never changes, and readers probe with plain atomic
//     loads — one hash, no locks, no retries. Growing republishes a larger
//     table through an atomic pointer; readers holding the old table still
//     see every key inserted before the swap. The per-shard mutex serializes
//     writers (same key ⇒ same shard ⇒ serialized) and owns the shard's
//     allocators; readers never touch it.
//   - Published versions are never written in place. Adapters that must
//     change a version's Extra republish the chain (Key.SetExtra). The one
//     sanctioned exception: mutating the *interior* of a reference type held
//     by Extra (e.g. inserting into a map) under the shard lock is safe as
//     long as no lock-free reader dereferences that interior state, because
//     readers copying the version struct only read the field's pointer word.
//
// Memory model: values are copied into per-shard bump arenas; version
// slices, chain headers, and key entries come from per-shard slabs
// (alloc.go). None of it is ever reused —
// lock-free readers have unbounded lifetime, so reclamation is left to the
// GC, which frees a chunk once every chain referencing it has been
// republished past it. The point of the arenas is to collapse millions of
// tiny heap objects into a few large ones, which is what cuts GC mark cost
// and pause times at 10M+ keys (benchfig -fig store).
package store

import (
	"hash/maphash"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Version is one immutable version of an item. X is the family-specific
// payload (dependency vector, dep list + marks, ...).
type Version[X any] struct {
	Value []byte
	TS    uint64 // timestamp assigned at the source DC
	Src   uint8  // source DC id
	Extra X
}

// Before reports whether v precedes o in the total last-writer-wins order.
func (v *Version[X]) Before(o *Version[X]) bool {
	if v.TS != o.TS {
		return v.TS < o.TS
	}
	return v.Src < o.Src
}

// Chain is one key's published version chain. It is immutable: neither the
// slice nor any version in it may be written after publication.
type Chain[X any] struct {
	Versions []Version[X] // ascending by (TS, Src)
	Trimmed  bool         // true once old versions have been discarded
}

// Len returns the number of retained versions. Safe on a nil chain.
func (c *Chain[X]) Len() int {
	if c == nil {
		return 0
	}
	return len(c.Versions)
}

// Latest returns the newest version, or nil if the chain is empty or nil.
func (c *Chain[X]) Latest() *Version[X] {
	if c == nil || len(c.Versions) == 0 {
		return nil
	}
	return &c.Versions[len(c.Versions)-1]
}

// Find returns the index of the version with identity (ts, src), or -1.
// Chains are short, so it scans from the tail (lookups are usually recent).
func (c *Chain[X]) Find(ts uint64, src uint8) int {
	if c == nil {
		return -1
	}
	for i := len(c.Versions) - 1; i >= 0; i-- {
		v := &c.Versions[i]
		if v.TS == ts && v.Src == src {
			return i
		}
		if v.TS < ts {
			break
		}
	}
	return -1
}

type entry[X, A any] struct {
	key  string
	hash uint64 // maphash of key; compared before the string on probes
	// chain is the key's published version chain; latest caches a pointer
	// to its newest version so latest-reads skip the chain-header hop (one
	// fewer dependent cache miss on the hottest read path). Both are
	// republished together under the shard lock; a reader may observe one
	// a publication ahead of the other, and either is a state that existed
	// during the read.
	chain  atomic.Pointer[Chain[X]]
	latest atomic.Pointer[Version[X]]
	aux    A // per-key family state; read and written only under the shard lock
}

// table is a shard's open-addressing key index. Slots are set-once (the
// engine never deletes keys): writers publish an entry with an atomic store
// under the shard lock, readers probe with atomic loads and no lock. The
// writer keeps occupancy under 3/4, so every probe terminates at an entry or
// an empty slot. len(slots) is a power of two.
type table[X, A any] struct {
	slots []atomic.Pointer[entry[X, A]]
	mask  uint64
}

// slot returns the probe start for hash h. The low 16 bits picked the shard
// (MaxShards), so the probe uses the remaining, independent bits.
func (t *table[X, A]) slot(h uint64) uint64 { return (h >> 16) & t.mask }

// probeEmpty returns the first free slot for hash h. Callers hold the shard
// lock and have ensured the key is absent.
func (t *table[X, A]) probeEmpty(h uint64) uint64 {
	i := t.slot(h)
	for t.slots[i].Load() != nil {
		i = (i + 1) & t.mask
	}
	return i
}

// initialTableSlots sizes a fresh shard's table.
const initialTableSlots = 16

func newTable[X, A any](n int) *table[X, A] {
	return &table[X, A]{
		slots: make([]atomic.Pointer[entry[X, A]], n),
		mask:  uint64(n - 1),
	}
}

type shard[X, A any] struct {
	tab     atomic.Pointer[table[X, A]]
	used    int        // occupied slots; written under mu
	mu      sync.Mutex // serializes writers; readers never take it
	arena   arena
	slab    slab[Version[X]]
	chains  slab[Chain[X]]    // chain headers, one republished per install
	entries slab[entry[X, A]] // one per key, permanent
}

// grow republishes the shard's table at twice the size. Entries move by
// pointer; readers still holding the old table see every key inserted
// before the swap, which is all of them (the caller holds the shard lock).
func (sh *shard[X, A]) grow(old *table[X, A]) *table[X, A] {
	nt := newTable[X, A](2 * len(old.slots))
	for i := range old.slots {
		if en := old.slots[i].Load(); en != nil {
			nt.slots[nt.probeEmpty(en.hash)].Store(en)
		}
	}
	sh.tab.Store(nt)
	return nt
}

// Engine is a sharded multi-version key→chain map. All methods are safe for
// concurrent use.
type Engine[X, A any] struct {
	keys   atomic.Int64
	shards []shard[X, A]
	mask   uint64
	max    int // per-key version cap
	seed   maphash.Seed
	// Reserved allocator bytes, engine-wide. Bumped only on chunk
	// reservation (alloc.go), so installs pay nothing for the accounting.
	arenaBytes atomic.Int64
	slabBytes  atomic.Int64
}

// DefaultMaxVersions caps per-key chains. The GSS lags by roughly one
// stabilization interval (5 ms), so even a key written continuously needs
// only (write rate × lag) retained versions; 64 is far above that at our
// scales.
const DefaultMaxVersions = 64

// DefaultShards derives the shard count from GOMAXPROCS: enough shards that
// writers rarely collide (16× the parallelism), clamped to [16, 1024] and
// rounded up to a power of two so shard selection is a mask.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0) * 16
	if n < 16 {
		n = 16
	}
	if n > 1024 {
		n = 1024
	}
	return ceilPow2(n)
}

// MaxShards bounds operator-supplied shard counts.
const MaxShards = 1 << 16

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// New returns an empty engine keeping at most maxVersions versions per key
// (0 means DefaultMaxVersions) across `shards` shards (0 means
// DefaultShards; rounded up to a power of two, capped at MaxShards).
func New[X, A any](maxVersions, shards int) *Engine[X, A] {
	if maxVersions <= 0 {
		maxVersions = DefaultMaxVersions
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = ceilPow2(shards)
	if shards > MaxShards {
		shards = MaxShards
	}
	e := &Engine[X, A]{
		shards: make([]shard[X, A], shards),
		mask:   uint64(shards - 1),
		max:    maxVersions,
		seed:   maphash.MakeSeed(),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.tab.Store(newTable[X, A](initialTableSlots))
		sh.arena.bytes = &e.arenaBytes
		sh.slab.init(&e.slabBytes)
		sh.chains.init(&e.slabBytes)
		sh.entries.init(&e.slabBytes)
	}
	return e
}

// MemBytes returns the engine's reserved allocator bytes: value-arena bytes
// and slab (version/chain/entry) bytes. Reserved, not live: the GC reclaims
// a chunk once no published chain references it, which this accounting does
// not observe — it bounds, rather than measures, retained memory.
func (e *Engine[X, A]) MemBytes() (arena, slab int64) {
	return e.arenaBytes.Load(), e.slabBytes.Load()
}

// Register exposes the engine's occupancy gauges under the given registry
// with the caller's labels (family, partition). All series are computed at
// scrape time from atomics the engine already maintains.
func (e *Engine[X, A]) Register(r *metrics.Registry, labels ...metrics.Label) {
	r.GaugeFunc("kv_store_keys", "Keys present (including aux-only keys).",
		func() float64 { return float64(e.keys.Load()) }, labels...)
	r.GaugeFunc("kv_store_shards", "Shards in use.",
		func() float64 { return float64(len(e.shards)) }, labels...)
	r.GaugeFunc("kv_store_arena_bytes", "Value-arena bytes reserved (chunks plus oversized values).",
		func() float64 { return float64(e.arenaBytes.Load()) }, labels...)
	r.GaugeFunc("kv_store_slab_bytes", "Slab bytes reserved for version slices, chain headers, and key entries.",
		func() float64 { return float64(e.slabBytes.Load()) }, labels...)
}

// find returns key's entry (h is its maphash) or nil, lock-free.
func (e *Engine[X, A]) find(h uint64, key string) *entry[X, A] {
	t := e.shards[h&e.mask].tab.Load()
	for i := t.slot(h); ; i = (i + 1) & t.mask {
		en := t.slots[i].Load()
		if en == nil {
			return nil
		}
		if en.hash == h && en.key == key {
			return en
		}
	}
}

// NumShards returns the shard count in use.
func (e *Engine[X, A]) NumShards() int { return len(e.shards) }

// MaxVersions returns the per-key chain cap.
func (e *Engine[X, A]) MaxVersions() int { return e.max }

// View returns key's current chain without locking, or nil if the key has
// never been written. The chain is an immutable snapshot: it remains valid
// (and frozen) indefinitely, however long the caller holds it.
func (e *Engine[X, A]) View(key string) *Chain[X] {
	if en := e.find(maphash.String(e.seed, key), key); en != nil {
		return en.chain.Load()
	}
	return nil
}

// Latest returns key's newest version without locking, or nil.
func (e *Engine[X, A]) Latest(key string) *Version[X] {
	if en := e.find(maphash.String(e.seed, key), key); en != nil {
		return en.latest.Load()
	}
	return nil
}

// Ref is a lock-free handle to one key's published state: one index probe,
// then as many Latest/View loads as the caller needs. The zero Ref (from a
// key that was never written) returns nil from both.
type Ref[X, A any] struct{ en *entry[X, A] }

// Ref returns a handle to key's state, without locking.
func (e *Engine[X, A]) Ref(key string) Ref[X, A] {
	return Ref[X, A]{e.find(maphash.String(e.seed, key), key)}
}

// Latest returns the newest version, or nil.
func (r Ref[X, A]) Latest() *Version[X] {
	if r.en == nil {
		return nil
	}
	return r.en.latest.Load()
}

// View returns the current chain, or nil.
func (r Ref[X, A]) View() *Chain[X] {
	if r.en == nil {
		return nil
	}
	return r.en.chain.Load()
}

// Keys returns the number of keys present (including keys that hold aux
// state but no versions yet).
func (e *Engine[X, A]) Keys() int { return int(e.keys.Load()) }

// ForEach calls fn with every key's current chain, skipping keys with no
// versions, until fn returns false. Iteration is lock-free: fn observes
// immutable chain snapshots while writers proceed concurrently, so fn may
// block for as long as it likes (e.g. on disk I/O during WAL snapshot
// emission) without stalling installs. Keys written mid-iteration may or may
// not be observed; a key is never observed twice (each shard's table holds
// it in exactly one slot, and shards partition the key space).
func (e *Engine[X, A]) ForEach(fn func(key string, c *Chain[X]) bool) {
	for s := range e.shards {
		t := e.shards[s].tab.Load()
		for i := range t.slots {
			en := t.slots[i].Load()
			if en == nil {
				continue
			}
			c := en.chain.Load()
			if c == nil || len(c.Versions) == 0 {
				continue
			}
			if !fn(en.key, c) {
				return
			}
		}
	}
}

// Key is the locked view of one key's state, valid only inside an Update
// callback.
type Key[X, A any] struct {
	e  *Engine[X, A]
	sh *shard[X, A]
	en *entry[X, A]
}

// Chain returns the key's current chain (nil if never written). The returned
// chain is immutable and stays valid after the lock is released.
func (k *Key[X, A]) Chain() *Chain[X] { return k.en.chain.Load() }

// Aux returns the key's aux state. It must not be retained or dereferenced
// after the Update callback returns.
func (k *Key[X, A]) Aux() *A { return &k.en.aux }

// Install inserts v into the chain, keeping it ordered by (TS, Src) and
// capped at the engine's MaxVersions. v.Value is copied into the shard
// arena; the caller's slice is not retained.
//
// It returns the index of v in the resulting chain (-1 if the chain was at
// capacity and v, being oldest, was immediately discarded), whether v is now
// the newest version, and whether an identical (TS, Src) version already
// existed — in which case the chain is unchanged, idx points at the existing
// version, and newest reports whether that version is the newest.
func (k *Key[X, A]) Install(v Version[X]) (idx int, newest, dup bool) {
	return k.e.installLocked(k.sh, k.en, v)
}

// installLocked is the install core; the caller holds sh.mu and en belongs
// to sh.
func (e *Engine[X, A]) installLocked(sh *shard[X, A], en *entry[X, A], v Version[X]) (idx int, newest, dup bool) {
	old := en.chain.Load()
	var vs []Version[X]
	trimmed := false
	if old != nil {
		vs, trimmed = old.Versions, old.Trimmed
	}
	// Find the insertion point from the tail: installs are usually newest.
	i := len(vs)
	for i > 0 && v.Before(&vs[i-1]) {
		i--
	}
	if i > 0 && vs[i-1].TS == v.TS && vs[i-1].Src == v.Src {
		return i - 1, i == len(vs), true
	}
	v.Value = sh.arena.copy(v.Value)
	n := len(vs) + 1
	drop := 0
	if n > e.max {
		drop = n - e.max
	}
	nvs := sh.slab.alloc(n - drop)
	for d, s := 0, drop; s < n; d, s = d+1, s+1 {
		switch {
		case s < i:
			nvs[d] = vs[s]
		case s == i:
			nvs[d] = v
		default:
			nvs[d] = vs[s-1]
		}
	}
	nc := sh.chains.one()
	nc.Versions, nc.Trimmed = nvs, trimmed || drop > 0
	en.chain.Store(nc)
	en.latest.Store(&nvs[len(nvs)-1])
	idx = i - drop
	if idx < 0 {
		idx = -1 // at capacity and older than everything retained
	}
	return idx, i == n-1, false
}

// SetExtra republishes the chain with version idx's Extra replaced by x.
// This is the only sound way to change a field of a published version:
// assigning through Chain().Versions[idx].Extra would race with lock-free
// readers copying the version struct.
func (k *Key[X, A]) SetExtra(idx int, x X) {
	old := k.en.chain.Load()
	nvs := k.sh.slab.alloc(len(old.Versions))
	copy(nvs, old.Versions)
	nvs[idx].Extra = x
	nc := k.sh.chains.one()
	nc.Versions, nc.Trimmed = nvs, old.Trimmed
	k.en.chain.Store(nc)
	k.en.latest.Store(&nvs[len(nvs)-1])
}

// entryLocked returns key's entry, creating it (empty chain, zero aux) when
// create is set. The caller holds sh.mu; a same-key writer therefore holds
// the same lock, so the probe-then-publish pair cannot double-create.
func (e *Engine[X, A]) entryLocked(sh *shard[X, A], h uint64, key string, create bool) *entry[X, A] {
	t := sh.tab.Load()
	i := t.slot(h)
	for {
		en := t.slots[i].Load()
		if en == nil {
			break
		}
		if en.hash == h && en.key == key {
			return en
		}
		i = (i + 1) & t.mask
	}
	if !create {
		return nil
	}
	en := sh.entries.one()
	en.key, en.hash = key, h
	if (sh.used+1)*4 > len(t.slots)*3 {
		t = sh.grow(t)
		i = t.probeEmpty(h)
	}
	t.slots[i].Store(en)
	sh.used++
	e.keys.Add(1)
	return en
}

// Update runs fn with key's state locked against concurrent writers on the
// same shard. If create is false and the key has never been seen, fn is not
// called and Update returns false. With create true the key's entry (empty
// chain, zero aux) is created on demand.
func (e *Engine[X, A]) Update(key string, create bool, fn func(k *Key[X, A])) bool {
	h := maphash.String(e.seed, key)
	sh := &e.shards[h&e.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	en := e.entryLocked(sh, h, key, create)
	if en == nil {
		return false
	}
	fn(&Key[X, A]{e: e, sh: sh, en: en})
	return true
}

// Install inserts version v of key and reports whether v is now the newest
// version of key (duplicates report the existing version's position, so a
// re-install of the current newest version still reports true). Equivalent
// to Update+Key.Install but allocation-free on the call itself — the install
// fast path skips the callback machinery.
func (e *Engine[X, A]) Install(key string, v Version[X]) (newest bool) {
	h := maphash.String(e.seed, key)
	sh := &e.shards[h&e.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	en := e.entryLocked(sh, h, key, true)
	_, newest, _ = e.installLocked(sh, en, v)
	return
}
