package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func v(ts uint64, src uint8) Version[int] {
	return Version[int]{Value: []byte{byte(ts), byte(src)}, TS: ts, Src: src, Extra: int(ts)}
}

func TestInstallOrderAndDup(t *testing.T) {
	e := New[int, struct{}](0, 1)
	if !e.Install("x", v(10, 0)) {
		t.Fatal("first install should be newest")
	}
	if !e.Install("x", v(20, 0)) {
		t.Fatal("newer install should be newest")
	}
	if e.Install("x", v(15, 0)) {
		t.Fatal("out-of-order install must not report newest")
	}
	if !e.Install("x", v(20, 0)) {
		t.Fatal("duplicate of the newest must still report newest")
	}
	if e.Install("x", v(15, 0)) {
		t.Fatal("duplicate of a non-newest must not report newest")
	}
	c := e.View("x")
	if c.Len() != 3 || c.Versions[0].TS != 10 || c.Versions[2].TS != 20 {
		t.Fatalf("chain = %+v, want [10 15 20]", c.Versions)
	}
	if got := e.Latest("x"); got == nil || got.TS != 20 {
		t.Fatalf("latest = %+v, want TS=20", got)
	}
	if e.Latest("y") != nil || e.View("y") != nil {
		t.Fatal("missing key must return nil")
	}
}

func TestTieBreakBySrc(t *testing.T) {
	e := New[int, struct{}](0, 1)
	e.Install("x", v(10, 1))
	e.Install("x", v(10, 0))
	if got := e.Latest("x"); got.Src != 1 {
		t.Fatalf("tie must be won by higher DC id, got %d", got.Src)
	}
}

func TestTrim(t *testing.T) {
	e := New[int, struct{}](4, 1)
	for ts := uint64(1); ts <= 10; ts++ {
		e.Install("x", v(ts, 0))
	}
	c := e.View("x")
	if c.Len() != 4 || !c.Trimmed || c.Versions[0].TS != 7 {
		t.Fatalf("chain = %+v trimmed=%v, want 4 versions from TS=7", c.Versions, c.Trimmed)
	}
	// Installing below the retained window drops the new version itself.
	e.Update("x", false, func(k *Key[int, struct{}]) {
		idx, newest, dup := k.Install(v(1, 0))
		if idx != -1 || newest || dup {
			t.Fatalf("below-window install: idx=%d newest=%v dup=%v", idx, newest, dup)
		}
	})
	if c := e.View("x"); c.Len() != 4 || c.Versions[0].TS != 7 {
		t.Fatalf("chain changed: %+v", c.Versions)
	}
}

func TestInstallIdxReportsPosition(t *testing.T) {
	e := New[int, struct{}](0, 1)
	e.Update("x", true, func(k *Key[int, struct{}]) {
		for _, ts := range []uint64{10, 30} {
			k.Install(v(ts, 0))
		}
		idx, newest, dup := k.Install(v(20, 0))
		if idx != 1 || newest || dup {
			t.Fatalf("middle install: idx=%d newest=%v dup=%v", idx, newest, dup)
		}
		idx, newest, dup = k.Install(v(20, 0))
		if idx != 1 || newest || !dup {
			t.Fatalf("middle dup: idx=%d newest=%v dup=%v", idx, newest, dup)
		}
	})
}

func TestFind(t *testing.T) {
	e := New[int, struct{}](0, 1)
	for _, ts := range []uint64{10, 20, 30} {
		e.Install("x", v(ts, 1))
	}
	c := e.View("x")
	if i := c.Find(20, 1); i != 1 {
		t.Fatalf("Find(20,1) = %d, want 1", i)
	}
	if i := c.Find(20, 0); i != -1 {
		t.Fatalf("Find(20,0) = %d, want -1", i)
	}
	if i := c.Find(25, 1); i != -1 {
		t.Fatalf("Find(25,1) = %d, want -1", i)
	}
	var nc *Chain[int]
	if i := nc.Find(1, 0); i != -1 {
		t.Fatalf("nil chain Find = %d", i)
	}
}

func TestSetExtraRepublishes(t *testing.T) {
	e := New[int, struct{}](0, 1)
	e.Install("x", v(10, 0))
	old := e.View("x")
	e.Update("x", false, func(k *Key[int, struct{}]) { k.SetExtra(0, 99) })
	if old.Versions[0].Extra != 10 {
		t.Fatal("SetExtra mutated the published chain in place")
	}
	if got := e.View("x"); got.Versions[0].Extra != 99 || got.Versions[0].TS != 10 {
		t.Fatalf("new chain = %+v", got.Versions)
	}
}

func TestAuxPersistsAcrossRepublish(t *testing.T) {
	e := New[int, int](0, 1)
	e.Update("x", true, func(k *Key[int, int]) { *k.Aux() = 7 })
	e.Install("x", v(10, 0))
	ok := e.Update("x", false, func(k *Key[int, int]) {
		if *k.Aux() != 7 {
			t.Fatalf("aux = %d, want 7", *k.Aux())
		}
	})
	if !ok {
		t.Fatal("Update(create=false) missed an existing key")
	}
	if e.Update("nope", false, func(*Key[int, int]) {}) {
		t.Fatal("Update(create=false) must not create")
	}
	if e.Keys() != 1 {
		t.Fatalf("Keys = %d, want 1", e.Keys())
	}
}

func TestValueCopiedIntoArena(t *testing.T) {
	e := New[int, struct{}](0, 1)
	val := []byte{1, 2, 3}
	e.Install("x", Version[int]{Value: val, TS: 1})
	val[0] = 9
	if got := e.Latest("x"); got.Value[0] != 1 {
		t.Fatal("Install must copy the caller's value")
	}
	// Large values bypass the arena but must still be copied.
	big := make([]byte, arenaChunk)
	big[0] = 5
	e.Install("y", Version[int]{Value: big, TS: 1})
	big[0] = 6
	if got := e.Latest("y"); got.Value[0] != 5 {
		t.Fatal("large value must be copied too")
	}
}

func TestDefaultShardsBounds(t *testing.T) {
	n := DefaultShards()
	if n < 16 || n > 1024 || n&(n-1) != 0 {
		t.Fatalf("DefaultShards() = %d, want power of two in [16, 1024]", n)
	}
	if got := New[int, struct{}](0, 0).NumShards(); got != n {
		t.Fatalf("auto shards = %d, want %d", got, n)
	}
	if got := New[int, struct{}](0, 3).NumShards(); got != 4 {
		t.Fatalf("shards rounded = %d, want 4", got)
	}
	if got := New[int, struct{}](0, MaxShards*4).NumShards(); got != MaxShards {
		t.Fatalf("shards capped = %d, want %d", got, MaxShards)
	}
}

// Property test: concurrent installs, reads, locked updates, and iteration
// stay linearizable per key — every observed chain is sorted, duplicate-free,
// capped, and contains only versions that were actually written. Run under
// -race this is the engine's main memory-safety gate.
func TestConcurrentEngineOps(t *testing.T) {
	const (
		workers = 8
		keys    = 13
		cap     = 8
		iters   = 400
	)
	e := New[int, int](cap, 4)
	var wg sync.WaitGroup
	var stop atomic.Bool

	check := func(c *Chain[int]) {
		if c.Len() > cap {
			t.Errorf("chain over cap: %d", c.Len())
		}
		for i := 1; i < len(c.Versions); i++ {
			a, b := &c.Versions[i-1], &c.Versions[i]
			if !a.Before(b) {
				t.Errorf("chain unsorted or dup at %d: %+v %+v", i, a, b)
			}
		}
		for i := range c.Versions {
			ver := &c.Versions[i]
			// Every version carries its own TS in Value and Extra.
			if ver.Extra != int(ver.TS) || len(ver.Value) != 2 || ver.Value[0] != byte(ver.TS) {
				t.Errorf("torn version observed: %+v", ver)
			}
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", r.Intn(keys))
				switch r.Intn(4) {
				case 0:
					e.Install(key, v(uint64(r.Intn(64)+1), uint8(w%3)))
				case 1:
					if c := e.View(key); c != nil {
						check(c)
					}
				case 2:
					e.Update(key, true, func(k *Key[int, int]) {
						*k.Aux()++
						if c := k.Chain(); c.Len() > 0 {
							i := r.Intn(c.Len())
							k.SetExtra(i, int(c.Versions[i].TS))
						}
					})
				case 3:
					if l := e.Latest(key); l != nil && l.Extra != int(l.TS) {
						t.Errorf("torn latest: %+v", l)
					}
				}
			}
		}(w)
	}
	// A dedicated iterator hammers ForEach until the writers finish.
	iterDone := make(chan struct{})
	go func() {
		defer close(iterDone)
		for !stop.Load() {
			e.ForEach(func(_ string, c *Chain[int]) bool {
				check(c)
				return true
			})
		}
	}()
	wg.Wait()
	stop.Store(true)
	<-iterDone
}

// Regression test for the tentpole: a slow ForEach callback (WAL snapshot
// emission doing disk I/O) must not stall writers. The pre-refactor stores
// held the shard lock across the callback, so a single slow iteration froze
// every install on that shard.
func TestWritersProgressDuringSlowIteration(t *testing.T) {
	e := New[int, struct{}](0, 1) // one shard: worst case
	for i := 0; i < 8; i++ {
		e.Install(fmt.Sprintf("k%d", i), v(1, 0))
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	iterDone := make(chan struct{})
	go func() {
		first := true
		e.ForEach(func(string, *Chain[int]) bool {
			if first {
				first = false
				close(entered)
				<-release // simulate slow disk I/O mid-iteration
			}
			return true
		})
		close(iterDone)
	}()
	<-entered
	// With the iterator parked inside the callback, a write on the same
	// shard must complete promptly.
	installed := make(chan struct{})
	go func() {
		e.Install("k0", v(2, 0))
		close(installed)
	}()
	select {
	case <-installed:
	case <-time.After(2 * time.Second):
		t.Fatal("install blocked behind a slow iteration callback")
	}
	close(release)
	<-iterDone
	if got := e.Latest("k0"); got.TS != 2 {
		t.Fatalf("latest k0 TS = %d, want 2", got.TS)
	}
}
