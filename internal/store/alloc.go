package store

import (
	"sync/atomic"
	"unsafe"
)

// Bump allocators for version chains and value bytes. Both hand out slices
// of large chunks and NEVER reuse memory: published chains may be held by
// lock-free readers for an unbounded time, so freeing or recycling would
// require epoch-based reclamation. Go's GC already is one — a chunk is
// reclaimed as soon as no live chain references it — so the allocators only
// exist to collapse millions of tiny heap objects into a few large ones,
// which is what cuts GC mark cost and pause time at production key counts.
//
// The trade-off is transient over-retention: a cold, never-rewritten chain
// pins its whole chunk, including bytes that belonged to since-republished
// neighbors. That waste is bounded by one chunk per cold write epoch and
// shows up in the RSS column of `benchfig -fig store`, which is how we keep
// it honest.

// arenaChunk is the value-arena chunk size. Values larger than a quarter
// chunk get a private allocation so one big value cannot pin a mostly-dead
// chunk.
const arenaChunk = 64 << 10

// addBytes accumulates reserved bytes into an engine-wide counter. The
// pointer may be nil (zero-value allocator); the counter is atomic because
// shards allocate concurrently, but it is bumped only when a CHUNK is
// reserved — never per install — so the accounting adds no per-op cost.
func addBytes(c *atomic.Int64, n int64) {
	if c != nil {
		c.Add(n)
	}
}

// arena is a bump allocator for value bytes. Not safe for concurrent use;
// callers hold the shard lock.
type arena struct {
	buf   []byte
	bytes *atomic.Int64 // engine-wide reserved-bytes counter, may be nil
}

// copy returns a stable copy of b backed by the arena.
func (a *arena) copy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if len(b) > arenaChunk/4 {
		addBytes(a.bytes, int64(len(b)))
		return append([]byte(nil), b...)
	}
	if len(a.buf)+len(b) > cap(a.buf) {
		a.buf = make([]byte, 0, arenaChunk)
		addBytes(a.bytes, arenaChunk)
	}
	off := len(a.buf)
	a.buf = append(a.buf, b...)
	// Full slice expression: cap == len, so a later bump can never alias.
	return a.buf[off:len(a.buf):len(a.buf)]
}

// slabChunk is the number of T per slab chunk. Allocations larger than a
// quarter chunk get a private slice.
const slabChunk = 512

// slab is a bump allocator for []T (version slices, chain headers). Not safe
// for concurrent use; callers hold the shard lock.
type slab[T any] struct {
	buf   []T
	next  int
	elem  int64         // unsafe.Sizeof(T), set by init; 0 leaves bytes uncounted
	bytes *atomic.Int64 // engine-wide reserved-bytes counter, may be nil
}

// init wires the slab's reserved-bytes accounting to an engine-wide counter.
func (s *slab[T]) init(bytes *atomic.Int64) {
	var z T
	s.elem = int64(unsafe.Sizeof(z))
	s.bytes = bytes
}

// alloc returns a zeroed []T of length and capacity n.
func (s *slab[T]) alloc(n int) []T {
	if n == 0 {
		return nil
	}
	if n > slabChunk/4 {
		addBytes(s.bytes, int64(n)*s.elem)
		return make([]T, n)
	}
	if s.next+n > len(s.buf) {
		s.buf = make([]T, slabChunk)
		s.next = 0
		addBytes(s.bytes, slabChunk*s.elem)
	}
	out := s.buf[s.next : s.next+n : s.next+n]
	s.next += n
	return out
}

// one returns a pointer to one zeroed T (chain headers, key entries) —
// alloc(1) without the slice header.
func (s *slab[T]) one() *T {
	if s.next >= len(s.buf) {
		s.buf = make([]T, slabChunk)
		s.next = 0
		addBytes(s.bytes, slabChunk*s.elem)
	}
	p := &s.buf[s.next]
	s.next++
	return p
}
