// Georeplication demonstrates multi-master asynchronous replication across
// two data centers (Section 2.3 of the paper): writes in one DC become
// visible in the other within the replication + stabilization lag, remote
// reads still observe causally consistent snapshots, and concurrent writes
// to the same key converge by last-writer-wins.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	causalkv "repro"
)

func main() {
	cluster, err := causalkv.StartCluster(causalkv.Options{
		Protocol:       causalkv.Contrarian,
		DataCenters:    2,
		Partitions:     4,
		InterDCLatency: 5 * time.Millisecond, // emulated WAN
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	europe, err := cluster.NewSession(0)
	if err != nil {
		log.Fatal(err)
	}
	defer europe.Close()
	asia, err := cluster.NewSession(1)
	if err != nil {
		log.Fatal(err)
	}
	defer asia.Close()

	// 1. Eventual visibility: a write in DC 0 reaches DC 1.
	start := time.Now()
	if _, err := europe.Put(ctx, "greeting", []byte("hello from europe")); err != nil {
		log.Fatal(err)
	}
	for {
		v, err := asia.Get(ctx, "greeting")
		if err != nil {
			log.Fatal(err)
		}
		if string(v) == "hello from europe" {
			fmt.Printf("visible in the remote DC after %v\n", time.Since(start).Round(time.Millisecond))
			break
		}
		time.Sleep(time.Millisecond)
	}

	// 2. Causal chains survive replication: europe writes profile then
	// post; asia must never observe the post without the profile.
	if _, err := europe.Put(ctx, "profile:carol", []byte("Carol")); err != nil {
		log.Fatal(err)
	}
	if _, err := europe.Put(ctx, "post:carol:1", []byte("first post")); err != nil {
		log.Fatal(err)
	}
	for {
		items, err := asia.ReadTx(ctx, "profile:carol", "post:carol:1")
		if err != nil {
			log.Fatal(err)
		}
		if items[1].Value != nil {
			if items[0].Value == nil {
				log.Fatal("ANOMALY: post visible without its causally preceding profile")
			}
			fmt.Println("remote ROT observed the post together with its profile")
			break
		}
		time.Sleep(time.Millisecond)
	}

	// 3. Convergence: concurrent writes to one key settle identically
	// everywhere (last-writer-wins, §2.2).
	europe.Put(ctx, "motto", []byte("simplicity"))
	asia.Put(ctx, "motto", []byte("harmony"))
	time.Sleep(200 * time.Millisecond) // replication quiesce
	ve, _ := europe.Get(ctx, "motto")
	va, _ := asia.Get(ctx, "motto")
	if string(ve) != string(va) {
		log.Fatalf("replicas diverged: %q vs %q", ve, va)
	}
	fmt.Printf("replicas converged on motto=%q\n", ve)
}
