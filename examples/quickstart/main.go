// Quickstart: start an in-process Contrarian cluster, write a few keys,
// and read them back atomically with a read-only transaction.
package main

import (
	"context"
	"fmt"
	"log"

	causalkv "repro"
)

func main() {
	cluster, err := causalkv.StartCluster(causalkv.Options{
		Protocol:   causalkv.Contrarian,
		Partitions: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	session, err := cluster.NewSession(0)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	ctx := context.Background()

	// Writes are causally ordered within a session.
	if _, err := session.Put(ctx, "user:alice", []byte("Alice")); err != nil {
		log.Fatal(err)
	}
	if _, err := session.Put(ctx, "user:bob", []byte("Bob")); err != nil {
		log.Fatal(err)
	}
	ts, err := session.Put(ctx, "friends:alice", []byte("bob"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote friends:alice at timestamp %d\n", ts)

	// A single read observes the session's own writes.
	v, err := session.Get(ctx, "user:alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:alice = %s\n", v)

	// A read-only transaction reads all keys from one causally consistent
	// snapshot — in 1 1/2 rounds, nonblocking, one version per key.
	items, err := session.ReadTx(ctx, "user:alice", "user:bob", "friends:alice")
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range items {
		fmt.Printf("ROT: %s = %s (ts %d)\n", it.Key, it.Value, it.Timestamp)
	}

	// Missing keys come back with a nil value.
	items, _ = session.ReadTx(ctx, "user:carol")
	fmt.Printf("missing key value is nil: %v\n", items[0].Value == nil)
}
