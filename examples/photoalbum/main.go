// Photoalbum demonstrates the anomaly that motivates causally consistent
// read-only transactions (Section 1 of the paper, after Lloyd et al.):
//
//	Alice removes Bob from the access list of a photo album and then adds
//	a private photo to it. Without causal consistency (or reading the two
//	keys with separate GETs at unlucky moments), Bob can observe the OLD
//	permissions together with the NEW album content.
//
// The example hammers the two keys from Alice's session while Bob's
// session reads them with ROTs, and verifies the invariant "if Bob sees
// the new photo, he must also see the new ACL" — for every protocol in
// this repository, each of which guarantees it by a different mechanism.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	causalkv "repro"
)

const (
	aclKey   = "album:acl"   // version i of the ACL
	photoKey = "album:photo" // version i of the content, uploaded AFTER acl i
)

func seq(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

func main() {
	for _, proto := range []causalkv.Protocol{
		causalkv.Contrarian, causalkv.ContrarianTwoRound, causalkv.Cure, causalkv.CCLO, causalkv.COPS,
	} {
		if err := run(proto); err != nil {
			log.Fatalf("%v: %v", proto, err)
		}
	}
}

func run(proto causalkv.Protocol) error {
	cluster, err := causalkv.StartCluster(causalkv.Options{Protocol: proto, Partitions: 4})
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx := context.Background()

	alice, err := cluster.NewSession(0)
	if err != nil {
		return err
	}
	defer alice.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 4)

	// Alice: tighten the ACL, then upload the photo that relies on it. The
	// photo causally depends on the ACL through Alice's session.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); !stop.Load(); i++ {
			if _, err := alice.Put(ctx, aclKey, seq(i)); err != nil {
				errCh <- err
				return
			}
			if _, err := alice.Put(ctx, photoKey, seq(i)); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// Bob: read both keys in one ROT and check the invariant.
	var reads atomic.Uint64
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bob, err := cluster.NewSession(0)
			if err != nil {
				errCh <- err
				return
			}
			defer bob.Close()
			for !stop.Load() {
				items, err := bob.ReadTx(ctx, aclKey, photoKey)
				if err != nil {
					errCh <- err
					return
				}
				acl, photo := binary.BigEndian.AppendUint64(nil, 0), items[1].Value
				if items[0].Value != nil {
					acl = items[0].Value
				}
				if photo != nil && binary.BigEndian.Uint64(photo) > binary.BigEndian.Uint64(acl) {
					errCh <- fmt.Errorf("ANOMALY: Bob saw photo v%d with acl v%d",
						binary.BigEndian.Uint64(photo), binary.BigEndian.Uint64(acl))
					return
				}
				reads.Add(1)
			}
		}()
	}

	time.Sleep(1500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	fmt.Printf("%-28v %6d consistent ROTs, zero ACL anomalies\n", proto, reads.Load())
	return nil
}
