// Loadtest runs the paper's headline comparison end to end on the public
// API: the same read-heavy YCSB-like workload against Contrarian and the
// "latency-optimal" CC-LO, printing throughput and ROT/PUT latencies.
//
// Expect the counterintuitive result of the paper: despite CC-LO's
// one-round reads, Contrarian delivers higher throughput AND lower ROT
// latency at any non-trivial load, because CC-LO's writes pay the readers
// check (run with -clients 2 to see CC-LO's low-load advantage).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	causalkv "repro"
)

func main() {
	var (
		clients  = flag.Int("clients", 48, "closed-loop client sessions")
		duration = flag.Duration("duration", 5*time.Second, "measurement window")
		writes   = flag.Float64("w", 0.05, "write/read ratio")
		rotSize  = flag.Int("p", 4, "keys per ROT")
		seed     = flag.Int64("seed", 1, "base RNG seed; client c draws keys from seed+c, so a fixed seed reproduces the op streams")
	)
	flag.Parse()

	fmt.Printf("%-22s %8s %12s %12s %12s %12s\n",
		"protocol", "clients", "ops/s", "rot-avg", "rot-p99", "put-avg")
	for _, proto := range []causalkv.Protocol{causalkv.Contrarian, causalkv.CCLO} {
		if err := run(proto, *clients, *duration, *writes, *rotSize, *seed); err != nil {
			log.Fatalf("%v: %v", proto, err)
		}
	}
}

func run(proto causalkv.Protocol, clients int, duration time.Duration, w float64, p int, seed int64) error {
	cluster, err := causalkv.StartCluster(causalkv.Options{Protocol: proto, Partitions: 8})
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx := context.Background()

	// Key population: 200 keys per partition via a seeding session.
	seeder, err := cluster.NewSession(0)
	if err != nil {
		return err
	}
	keys := make([]string, 1600)
	for i := range keys {
		keys[i] = fmt.Sprintf("item-%04d", i)
		if _, err := seeder.Put(ctx, keys[i], []byte("seed-value")); err != nil {
			return err
		}
	}
	seeder.Close()

	putProb := w * float64(p) / (1 - w + w*float64(p))
	var (
		stop     atomic.Bool
		ops      atomic.Uint64
		wg       sync.WaitGroup
		mu       sync.Mutex
		rotLat   []time.Duration
		putLat   []time.Duration
		firstErr atomic.Value
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s, err := cluster.NewSession(0)
			if err != nil {
				firstErr.Store(err)
				return
			}
			defer s.Close()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			localRot := make([]time.Duration, 0, 4096)
			localPut := make([]time.Duration, 0, 512)
			for !stop.Load() {
				start := time.Now()
				if rng.Float64() < putProb {
					_, err = s.Put(ctx, keys[rng.Intn(len(keys))], []byte("new-value"))
					localPut = append(localPut, time.Since(start))
				} else {
					kset := make([]string, p)
					for i := range kset {
						kset[i] = keys[rng.Intn(len(keys))]
					}
					_, err = s.ReadTx(ctx, kset...)
					localRot = append(localRot, time.Since(start))
				}
				if err != nil {
					firstErr.Store(err)
					return
				}
				ops.Add(1)
			}
			mu.Lock()
			rotLat = append(rotLat, localRot...)
			putLat = append(putLat, localPut...)
			mu.Unlock()
		}(c)
	}

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}

	tput := float64(ops.Load()) / duration.Seconds()
	fmt.Printf("%-22v %8d %12.0f %12v %12v %12v\n",
		proto, clients, tput,
		mean(rotLat).Round(10*time.Microsecond),
		percentile(rotLat, 0.99).Round(10*time.Microsecond),
		mean(putLat).Round(10*time.Microsecond))
	return nil
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[int(q*float64(len(ds)-1))]
}
