package causalkv

import (
	"context"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestPublicAPIBasics(t *testing.T) {
	for _, p := range []Protocol{Contrarian, ContrarianTwoRound, Cure, CCLO, COPS} {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			c, err := StartCluster(Options{Protocol: p, Partitions: 4, IntraDCLatency: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			s, err := c.NewSession(0)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			ctx := testCtx(t)

			ts, err := s.Put(ctx, "k1", []byte("v1"))
			if err != nil {
				t.Fatal(err)
			}
			if ts == 0 {
				t.Fatal("zero timestamp")
			}
			got, err := s.Get(ctx, "k1")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "v1" {
				t.Fatalf("Get = %q", got)
			}
			items, err := s.ReadTx(ctx, "k1", "nope")
			if err != nil {
				t.Fatal(err)
			}
			if string(items[0].Value) != "v1" || items[0].Timestamp == 0 {
				t.Fatalf("ReadTx[0] = %+v", items[0])
			}
			if items[1].Value != nil || items[1].Timestamp != 0 {
				t.Fatalf("missing key = %+v", items[1])
			}
		})
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.DataCenters != 1 || o.Partitions != 8 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.IntraDCLatency <= 0 || o.InterDCLatency <= 0 || o.MaxClockSkew <= 0 {
		t.Fatalf("latency defaults missing: %+v", o)
	}
}

func TestProtocolStrings(t *testing.T) {
	names := map[Protocol]string{}
	for _, p := range []Protocol{Contrarian, ContrarianTwoRound, Cure, CCLO, COPS} {
		s := p.String()
		if s == "" {
			t.Fatalf("empty name for %d", p)
		}
		for q, n := range names {
			if n == s {
				t.Fatalf("protocols %d and %d share name %q", p, q, s)
			}
		}
		names[p] = s
	}
}

func TestTwoDCSessionPlacement(t *testing.T) {
	c, err := StartCluster(Options{DataCenters: 2, Partitions: 2, IntraDCLatency: -1, InterDCLatency: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for dc := 0; dc < 2; dc++ {
		s, err := c.NewSession(dc)
		if err != nil {
			t.Fatal(err)
		}
		if s.DC() != dc {
			t.Fatalf("session DC = %d, want %d", s.DC(), dc)
		}
		s.Close()
	}
	if _, err := c.NewSession(9); err == nil {
		t.Fatal("expected error for unknown DC")
	}
}

func TestCrossDCVisibility(t *testing.T) {
	c, err := StartCluster(Options{DataCenters: 2, Partitions: 2, IntraDCLatency: -1, InterDCLatency: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := testCtx(t)
	w, _ := c.NewSession(0)
	defer w.Close()
	r, _ := c.NewSession(1)
	defer r.Close()
	if _, err := w.Put(ctx, "geo", []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v, err := r.Get(ctx, "geo"); err == nil && string(v) == "v" {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("write never visible across DCs")
}
