// Package causalkv is a causally consistent, partitioned, geo-replicated
// key-value store with read-only transactions (ROTs). It is a from-scratch
// Go reproduction of the systems studied in
//
//	Didona, Guerraoui, Wang, Zwaenepoel.
//	"Causal Consistency and Latency Optimality: Friend or Foe?"
//	VLDB 2018 (arXiv:1803.04237).
//
// Four protocol families are provided behind one API:
//
//   - Contrarian (the paper's design): nonblocking, one-version ROTs in
//     1 1/2 rounds of communication, using hybrid logical-physical clocks
//     and a per-DC stabilization protocol. No write-side overhead.
//   - Cure: the classic physical-clock baseline with 2-round ROTs that
//     block on clock skew.
//   - CCLO (COPS-SNOW): "latency-optimal" one-round ROTs that charge every
//     write a readers check whose cost grows with the number of clients —
//     the trade-off the paper shows to be a net loss.
//   - COPS: the original dependency-list design, with two-round ROTs driven
//     by per-version dependency metadata.
//
// A Cluster runs entirely in-process over a simulated network with
// configurable link latencies, which is how the paper's experiments are
// reproduced; cmd/kvserver deploys the same servers over TCP.
package causalkv

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Protocol selects the consistency protocol a Cluster runs.
type Protocol int

const (
	// Contrarian is the paper's protocol: nonblocking one-version ROTs in
	// 1 1/2 rounds, no write-side overhead.
	Contrarian Protocol = iota
	// ContrarianTwoRound trades one communication step of ROT latency for
	// fewer messages (higher peak throughput, §5.3).
	ContrarianTwoRound
	// Cure is the physical-clock baseline; its ROTs block on clock skew.
	Cure
	// CCLO is the latency-optimal COPS-SNOW design; its writes pay the
	// readers check.
	CCLO
	// COPS is the original dependency-list design: nonblocking ROTs in at
	// most two rounds (and up to two versions), cheap writes, per-version
	// dependency metadata.
	COPS
)

// String names the protocol.
func (p Protocol) String() string { return p.internal().String() }

func (p Protocol) internal() cluster.Protocol {
	switch p {
	case ContrarianTwoRound:
		return cluster.ContrarianTwoRound
	case Cure:
		return cluster.Cure
	case CCLO:
		return cluster.CCLO
	case COPS:
		return cluster.COPS
	default:
		return cluster.Contrarian
	}
}

// Options configures StartCluster. The zero value is a single-DC,
// 8-partition Contrarian cluster with LAN-like latencies.
type Options struct {
	// Protocol selects the consistency protocol (default Contrarian).
	Protocol Protocol
	// DataCenters is the number of replica sites (default 1).
	DataCenters int
	// Partitions is the number of shards per DC (default 8).
	Partitions int
	// IntraDCLatency is the simulated one-way delay within a DC
	// (default 100µs). Negative disables latency injection.
	IntraDCLatency time.Duration
	// InterDCLatency is the simulated one-way delay between DCs
	// (default 1ms). Negative disables latency injection.
	InterDCLatency time.Duration
	// MaxClockSkew bounds each node's physical clock offset (default 1ms).
	MaxClockSkew time.Duration
	// ReaderGCWindow is CC-LO's reader GC window (default 500ms, the
	// paper's setting): how long a partition remembers which read-only
	// transactions read which versions, which bounds both the readers-check
	// cost on writes and the durable footprint of the crash-recovery reader
	// records. Ignored by the other protocols.
	ReaderGCWindow time.Duration
	// StoreShards sets each partition store's shard count — the concurrency
	// grain of the multi-version storage engine. 0 (the default) auto-sizes
	// from GOMAXPROCS; explicit values are rounded up to a power of two.
	// Reads never take a shard lock either way; shards bound write
	// contention.
	StoreShards int
	// DataDir, when non-empty, makes every partition durable: acknowledged
	// writes are group-committed to a segmented write-ahead log under this
	// directory before the client sees the ack, and a cluster restarted
	// over the same directory recovers them. Empty (the default) keeps the
	// cluster purely in memory.
	DataDir string
	// SnapshotEvery enables periodic WAL snapshots (compaction + sealed
	// segment truncation) when DataDir is set; 0 disables them.
	SnapshotEvery time.Duration
	// WALSync selects the durability acknowledgment contract when DataDir
	// is set: "sync" (the default: a write is acknowledged only after its
	// fsync, so acknowledged writes always survive a crash) or "async" (a
	// write is acknowledged once written to the OS and fsynced within
	// WALFsyncEvery — faster writes, with up to one window of acknowledged
	// writes lost on a crash; replication still ships only fsynced writes,
	// so replicas never diverge).
	WALSync string
	// WALFsyncEvery bounds the "async" loss window (0 = default 2ms).
	WALFsyncEvery time.Duration
	// FlushBudget bounds how long the transport keeps a coalesced batch of
	// frames open before flushing (the adaptive flush policy; an idle send
	// queue always flushes immediately). 0 applies the default (~200µs);
	// negative disables the budget, restoring greedy drain-until-idle.
	FlushBudget time.Duration
	// AdmitLimit enables client admission control: it caps concurrently
	// running client handlers per partition server. Excess client requests
	// are shed with a typed busy response and retried by sessions with
	// jittered backoff; a session whose retry budget is exhausted surfaces
	// ErrOverloaded. 0 (the default) disables the gate. Intra-cluster
	// traffic (replication, stabilization, readers checks) is never gated.
	AdmitLimit int
	// ShedQueueFrames sheds client load early once the transport send
	// queue reaches this depth (0 = signal unused).
	ShedQueueFrames int64
	// ShedFsyncP99 sheds client load early once the WAL p99 fsync delay
	// reaches this (0 = signal unused).
	ShedFsyncP99 time.Duration
	// SocketPool caps connections per destination for tenant sessions
	// (NewTenantSession), which share one multiplexed endpoint per DC
	// instead of attaching an address each (0 = 1 shared connection). The
	// in-process transport has no sockets; the knob exists so the same
	// Options shape describes TCP deployments.
	SocketPool int
}

// ErrOverloaded is returned by session operations once the Busy-retry
// budget against a shedding server is exhausted. Callers should back off
// at the application level; errors.Is(err, ErrOverloaded) detects it.
var ErrOverloaded = transport.ErrOverloaded

func (o Options) withDefaults() Options {
	if o.DataCenters <= 0 {
		o.DataCenters = 1
	}
	if o.Partitions <= 0 {
		o.Partitions = 8
	}
	def := transport.DefaultLatency()
	if o.IntraDCLatency == 0 {
		o.IntraDCLatency = def.IntraDC
	}
	if o.InterDCLatency == 0 {
		o.InterDCLatency = def.InterDC
	}
	if o.MaxClockSkew == 0 {
		o.MaxClockSkew = time.Millisecond
	}
	return o
}

// Item is one ROT result: the key, the version's value (nil if the key
// does not exist in the snapshot), and the version's timestamp.
type Item struct {
	Key       string
	Value     []byte
	Timestamp uint64
}

// Cluster is a running in-process deployment.
type Cluster struct {
	opts  Options
	inner *cluster.Cluster
}

// StartCluster builds and starts a cluster.
func StartCluster(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	lat := transport.LatencyModel{
		IntraDC:    max(opts.IntraDCLatency, 0),
		InterDC:    max(opts.InterDCLatency, 0),
		JitterFrac: 0.1,
	}
	mode, err := wal.ParseSyncMode(opts.WALSync)
	if err != nil {
		return nil, fmt.Errorf("causalkv: %w", err)
	}
	inner, err := cluster.Start(cluster.Config{
		Protocol:         opts.Protocol.internal(),
		DCs:              opts.DataCenters,
		Partitions:       opts.Partitions,
		Latency:          &lat,
		MaxSkew:          opts.MaxClockSkew,
		ReaderGCWindow:   opts.ReaderGCWindow,
		StoreShards:      opts.StoreShards,
		DataDir:          opts.DataDir,
		WALSnapshotEvery: opts.SnapshotEvery,
		WALSync:          mode,
		WALFsyncEvery:    opts.WALFsyncEvery,
		FlushBudget:      opts.FlushBudget,
		AdmitLimit:       opts.AdmitLimit,
		ShedQueueFrames:  opts.ShedQueueFrames,
		ShedFsyncP99:     opts.ShedFsyncP99,
		SocketPool:       opts.SocketPool,
	})
	if err != nil {
		return nil, fmt.Errorf("causalkv: %w", err)
	}
	return &Cluster{opts: opts, inner: inner}, nil
}

// Close stops every server and detaches every session.
func (c *Cluster) Close() { c.inner.Close() }

// Options returns the cluster's effective configuration.
func (c *Cluster) Options() Options { return c.opts }

// NewSession opens a client session homed in data center dc. A session
// carries the causal context that makes its reads observe monotonically
// increasing causally consistent snapshots, including its own writes.
func (c *Cluster) NewSession(dc int) (*Session, error) {
	cli, err := c.inner.NewClient(dc)
	if err != nil {
		return nil, fmt.Errorf("causalkv: %w", err)
	}
	return &Session{cli: cli, dc: dc}, nil
}

// NewTenantSession opens a client session homed in dc as a logical
// session of the given tenant, multiplexed with every other tenant session
// of that DC over one shared endpoint (and, over TCP, a small fixed
// connection pool) instead of one endpoint per session. Under admission
// control the server sheds and queues per tenant, so a saturating tenant
// cannot starve a trickle tenant.
func (c *Cluster) NewTenantSession(dc int, tenant uint16) (*Session, error) {
	cli, err := c.inner.NewSessionClient(dc, tenant)
	if err != nil {
		return nil, fmt.Errorf("causalkv: %w", err)
	}
	return &Session{cli: cli, dc: dc}, nil
}

// Session is a client with a causal context. Sessions are safe for
// concurrent use, but the intended model — and the one the paper's
// workloads use — is one session per logical client.
type Session struct {
	cli cluster.Client
	dc  int
}

// DC returns the session's home data center.
func (s *Session) DC() int { return s.dc }

// Close releases the session.
func (s *Session) Close() error { return s.cli.Close() }

// Put installs a new version of key and returns its timestamp. The new
// version causally depends on everything the session has observed.
func (s *Session) Put(ctx context.Context, key string, value []byte) (uint64, error) {
	return s.cli.Put(ctx, key, value)
}

// Get reads one key from a causally consistent snapshot. It returns nil if
// the key does not exist.
func (s *Session) Get(ctx context.Context, key string) ([]byte, error) {
	return s.cli.Get(ctx, key)
}

// ReadTx executes a read-only transaction: all keys are read from one
// causally consistent snapshot (never the Figure 1 anomaly of observing a
// new album entry with stale permissions). Results align with keys.
func (s *Session) ReadTx(ctx context.Context, keys ...string) ([]Item, error) {
	kvs, err := s.cli.ROT(ctx, keys)
	if err != nil {
		return nil, err
	}
	items := make([]Item, len(kvs))
	for i, kv := range kvs {
		items[i] = Item{Key: kv.Key, Value: kv.Value, Timestamp: kv.TS}
	}
	return items, nil
}
