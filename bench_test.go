// Macro-benchmarks: one per table and figure of the paper's evaluation
// (Section 5) plus the Section 6 lower bound. Each benchmark runs a
// scaled-down version of the corresponding experiment and reports
// throughput and latency via custom metrics:
//
//	go test -bench=Figure -benchmem .
//
// For full-scale reproductions (longer sweeps, more clients, paper-scale
// key counts) use cmd/benchfig; EXPERIMENTS.md records a reference run and
// compares the shapes against the paper's claims.
package causalkv_test

import (
	"io"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/theory"
	"repro/internal/workload"
)

// benchSpec is the scaled-down load point used by the figure benchmarks.
const (
	benchPartitions = 4
	benchKeys       = 2000
	benchDuration   = 1500 * time.Millisecond
	benchWarmup     = 400 * time.Millisecond
)

func reportPoint(b *testing.B, p bench.Point) {
	b.Helper()
	b.ReportMetric(p.Throughput, "ops/s")
	b.ReportMetric(float64(p.ROT.Mean.Microseconds()), "µs/rot")
	b.ReportMetric(float64(p.ROT.P99.Microseconds()), "µs/rot-p99")
	b.ReportMetric(float64(p.PUT.Mean.Microseconds()), "µs/put")
}

func runPoint(b *testing.B, sys bench.System, wl workload.Config, clients int) bench.Point {
	b.Helper()
	p, err := bench.Run(sys, bench.RunSpec{
		Workload:     wl,
		ClientsPerDC: clients,
		Duration:     benchDuration,
		Warmup:       benchWarmup,
	})
	if err != nil {
		b.Fatal(err)
	}
	reportPoint(b, p)
	return p
}

func defaultWL() workload.Config {
	return workload.Default(benchPartitions, benchKeys)
}

// BenchmarkFigure4 compares the Contrarian variants and Cure in 2 DCs
// (paper Figure 4): Cure pays a clock-skew latency floor; the 2-round
// variant trades ROT latency for fewer messages.
func BenchmarkFigure4(b *testing.B) {
	for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.ContrarianTwoRound, cluster.Cure} {
		b.Run(proto.String(), func(b *testing.B) {
			runPoint(b, bench.System{
				Protocol: proto, DCs: 2, Partitions: benchPartitions, MaxSkew: time.Millisecond,
			}, defaultWL(), 24)
		})
	}
}

// BenchmarkFigure5 compares Contrarian and CC-LO under the default
// read-heavy workload in 1 and 2 DCs (paper Figure 5, both panels: the
// reported metrics include average and 99th-percentile ROT latency).
func BenchmarkFigure5(b *testing.B) {
	for _, dcs := range []int{1, 2} {
		for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO} {
			name := proto.String() + "-" + map[int]string{1: "1DC", 2: "2DC"}[dcs]
			b.Run(name, func(b *testing.B) {
				runPoint(b, bench.System{
					Protocol: proto, DCs: dcs, Partitions: benchPartitions, MaxSkew: time.Millisecond,
				}, defaultWL(), 24)
			})
		}
	}
}

// BenchmarkFigure6 measures CC-LO's readers-check overhead growth with the
// client count (paper Figure 6): distinct and cumulative ROT ids per
// check, which Section 6 proves grow linearly with the number of clients.
func BenchmarkFigure6(b *testing.B) {
	for _, clients := range []int{8, 32} {
		b.Run(map[int]string{8: "clients-8", 32: "clients-32"}[clients], func(b *testing.B) {
			p, err := bench.Run(bench.System{
				Protocol: cluster.CCLO, DCs: 1, Partitions: benchPartitions,
			}, bench.RunSpec{
				Workload:     defaultWL(),
				ClientsPerDC: clients,
				Duration:     benchDuration,
				Warmup:       benchWarmup,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(p.Lo.AvgDistinct, "ids/check")
			b.ReportMetric(p.Lo.AvgCumulative, "cum-ids/check")
			b.ReportMetric(p.Lo.AvgPartitions, "parts/check")
		})
	}
}

// BenchmarkFigure7 sweeps the write ratio (paper Figure 7): higher write
// intensity helps Contrarian (PUTs are cheap) and hurts CC-LO (more
// readers checks).
func BenchmarkFigure7(b *testing.B) {
	for _, w := range []float64{0.01, 0.05, 0.1} {
		for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO} {
			name := proto.String() + map[float64]string{0.01: "-w0.01", 0.05: "-w0.05", 0.1: "-w0.10"}[w]
			b.Run(name, func(b *testing.B) {
				wl := defaultWL()
				wl.WriteRatio = w
				runPoint(b, bench.System{
					Protocol: proto, DCs: 1, Partitions: benchPartitions,
				}, wl, 24)
			})
		}
	}
}

// BenchmarkFigure8 sweeps key-popularity skew (paper Figure 8): skew
// lengthens causal dependency chains and hurts CC-LO only.
func BenchmarkFigure8(b *testing.B) {
	for _, z := range []float64{0, 0.8, 0.99} {
		for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO} {
			name := proto.String() + map[float64]string{0: "-z0", 0.8: "-z0.8", 0.99: "-z0.99"}[z]
			b.Run(name, func(b *testing.B) {
				wl := defaultWL()
				wl.Zipf = z
				runPoint(b, bench.System{
					Protocol: proto, DCs: 1, Partitions: benchPartitions,
				}, wl, 24)
			})
		}
	}
}

// BenchmarkFigure9 sweeps the ROT size (paper Figure 9): more partitions
// per ROT amortize Contrarian's extra communication step.
func BenchmarkFigure9(b *testing.B) {
	for _, p := range []int{2, 4} { // clamped to benchPartitions
		for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO} {
			name := proto.String() + map[int]string{2: "-p2", 4: "-p4"}[p]
			b.Run(name, func(b *testing.B) {
				wl := defaultWL()
				wl.RotSize = p
				runPoint(b, bench.System{
					Protocol: proto, DCs: 1, Partitions: benchPartitions,
				}, wl, 24)
			})
		}
	}
}

// BenchmarkValueSize sweeps item sizes (paper §5.8): marshalling costs
// grow with b and narrow the gap between the systems.
func BenchmarkValueSize(b *testing.B) {
	for _, size := range []int{8, 128, 2048} {
		for _, proto := range []cluster.Protocol{cluster.Contrarian, cluster.CCLO} {
			name := proto.String() + map[int]string{8: "-b8", 128: "-b128", 2048: "-b2048"}[size]
			b.Run(name, func(b *testing.B) {
				wl := defaultWL()
				wl.ValueSize = size
				runPoint(b, bench.System{
					Protocol: proto, DCs: 1, Partitions: benchPartitions,
				}, wl, 24)
			})
		}
	}
}

// BenchmarkLowerBound runs the Section 6 counting argument (Theorem 1):
// enumerating all 2^|D| executions and checking Lemma 1 distinctness. The
// reported metric is the worst-case write-side communication in bits,
// which must grow linearly with |D| (compare Figure 6's measured ids).
func BenchmarkLowerBound(b *testing.B) {
	const n = 14
	var bits int
	for i := 0; i < b.N; i++ {
		rep := theory.CheckLemmaOne(theory.LatencyOptimal{}, n)
		if !rep.Holds {
			b.Fatal("Lemma 1 distinctness failed")
		}
		bits = rep.WorstCaseBits
	}
	b.ReportMetric(float64(bits)/float64(n), "bits/client")
}

// BenchmarkTable2 sanity-checks the qualitative characterization table
// against the implementations (paper Table 2) — effectively free; kept as
// a bench target so every table has one.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table2()
		if len(rows) != 4 {
			b.Fatal("Table 2 must characterize the four implemented systems")
		}
	}
}

// BenchmarkAblationClockFreshness quantifies the §4 design choice of HLCs
// over plain logical clocks: remote-visibility latency of a DC0 write in
// DC1 under each clock mode (logical clocks go stale behind laggard
// partitions; HLCs advance with physical time).
func BenchmarkAblationClockFreshness(b *testing.B) {
	o := bench.DefaultOpts(io.Discard)
	o.Partitions = benchPartitions
	rows, err := bench.AblationClockFreshness(o, 20)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Visibility.Mean.Microseconds()), "µs/vis-"+r.Clock)
	}
}
