// Command lowerbound demonstrates the theoretical results of Section 6:
// Theorem 1's linear-in-clients lower bound on the write-side
// communication of latency-optimal ROTs, Lemma 1's distinctness of
// communication strings, and the E* construction that breaks the Lamport
// straw man.
package main

import (
	"flag"
	"fmt"

	"repro/internal/theory"
)

func main() {
	maxN := flag.Int("n", 12, "maximum |D| (number of potential reader clients)")
	flag.Parse()

	fmt.Println("Theorem 1 (Section 6): latency-optimal ROTs require write-side")
	fmt.Println("communication that grows linearly with the number of clients.")

	fmt.Println("\n--- Lemma 1: 2^|D| executions must produce distinct communication ---")
	for _, m := range []theory.Model{theory.LatencyOptimal{}, theory.LamportStrawMan{}, theory.NonOptimal{}} {
		rep := theory.CheckLemmaOne(m, 6)
		fmt.Printf("%-36s LO=%-5v executions=%-3d distinct=%-3d distinctness holds=%v\n",
			rep.Model, m.LatencyOptimal(), rep.Executions, rep.Distinct, rep.Holds)
	}

	fmt.Println("\n--- E*: the adversarial schedule with delayed old readers ---")
	r1, r2 := []int{0, 1, 2}, []int{1}
	for _, m := range []theory.Model{theory.LatencyOptimal{}, theory.LamportStrawMan{}, theory.NonOptimal{}} {
		es := theory.BuildEStar(m, r1, r2, 4)
		verdict := "causally consistent"
		if !es.Consistent {
			verdict = "VIOLATION (the {X0,Y1} anomaly)"
		}
		fmt.Printf("%-36s delayed readers %v observe {%s,%s}: %s\n",
			es.Model, r1, es.Snapshot.X, es.Snapshot.Y, verdict)
	}

	fmt.Println("\n--- Lemma 2: worst-case write-side communication vs |D| ---")
	fmt.Printf("%6s %12s %16s %16s\n", "|D|", "executions", "worst-case bits", "bound (|D| bits)")
	for _, row := range theory.TheoremOneTable(theory.LatencyOptimal{}, *maxN) {
		fmt.Printf("%6d %12d %16d %16d\n", row.N, row.Executions, row.WorstCaseBits, row.N)
	}
	fmt.Println("\nCompare with the measured Figure 6 (cmd/benchfig -fig 6): the ROT ids")
	fmt.Println("exchanged per readers check in the CC-LO implementation grow linearly")
	fmt.Println("with the number of clients, matching this bound.")
}
