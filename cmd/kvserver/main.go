// Command kvserver runs one partition server (or one DC stabilizer) of the
// causally consistent store over real TCP, making the same protocol code
// the benchmarks measure deployable across processes and machines.
//
// A deployment is described by a topology file, one line per process:
//
//	# dc  partition|stab  host:port
//	0 0    127.0.0.1:7000
//	0 1    127.0.0.1:7001
//	0 stab 127.0.0.1:7099
//
// Start one kvserver per line:
//
//	kvserver -topology topo.txt -protocol contrarian -dc 0 -partition 0
//	kvserver -topology topo.txt -protocol contrarian -dc 0 -partition 1
//	kvserver -topology topo.txt -protocol contrarian -dc 0 -stabilizer
//
// then interact with cmd/kvctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cclo"
	"repro/internal/cluster"
	"repro/internal/cops"
	"repro/internal/core"
	"repro/internal/transport"
)

func main() {
	var (
		topoPath   = flag.String("topology", "", "topology file (required)")
		protocol   = flag.String("protocol", "contrarian", "contrarian|cure|cclo|cops")
		dc         = flag.Int("dc", 0, "this server's data center")
		partition  = flag.Int("partition", 0, "this server's partition index")
		stabilizer = flag.Bool("stabilizer", false, "run the DC's stabilization service instead of a partition")
	)
	flag.Parse()
	if *topoPath == "" {
		log.Fatal("kvserver: -topology is required")
	}
	f, err := os.Open(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := cluster.ParseTopology(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if *dc < 0 || *dc >= topo.DCs {
		log.Fatalf("kvserver: -dc %d outside topology (have %d DCs)", *dc, topo.DCs)
	}
	if !*stabilizer && (*partition < 0 || *partition >= topo.Partitions) {
		log.Fatalf("kvserver: -partition %d outside topology (have %d partitions)", *partition, topo.Partitions)
	}

	net := transport.NewTCP(topo.Directory)
	defer net.Close()

	var closer interface{ Close() error }
	switch {
	case *stabilizer:
		st, err := core.NewStabilizer(*dc, topo.Partitions, topo.DCs, 0, net)
		if err != nil {
			log.Fatal(err)
		}
		st.Start()
		closer = st
		log.Printf("stabilizer for dc%d up (%d partitions, %d DCs)", *dc, topo.Partitions, topo.DCs)
	case *protocol == "cops":
		s, err := cops.NewServer(cops.Config{
			DC: *dc, Part: *partition, NumDCs: topo.DCs, NumParts: topo.Partitions,
		}, net)
		if err != nil {
			log.Fatal(err)
		}
		s.Start()
		closer = s
		log.Printf("cops partition dc%d/p%d up", *dc, *partition)
	case *protocol == "cclo":
		s, err := cclo.NewServer(cclo.Config{
			DC: *dc, Part: *partition, NumDCs: topo.DCs, NumParts: topo.Partitions,
		}, net)
		if err != nil {
			log.Fatal(err)
		}
		s.Start()
		closer = s
		log.Printf("cclo partition dc%d/p%d up", *dc, *partition)
	case *protocol == "contrarian" || *protocol == "cure":
		clock := core.ClockHLC
		if *protocol == "cure" {
			clock = core.ClockPhysical
		}
		s, err := core.NewServer(core.Config{
			DC: *dc, Part: *partition, NumDCs: topo.DCs, NumParts: topo.Partitions,
			Clock: clock,
		}, net)
		if err != nil {
			log.Fatal(err)
		}
		s.Start()
		closer = s
		log.Printf("%s partition dc%d/p%d up", *protocol, *dc, *partition)
	default:
		log.Fatalf("kvserver: unknown protocol %q", *protocol)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "shutting down")
	closer.Close()
}
